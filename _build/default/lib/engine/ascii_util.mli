(** ASCII dump / load.

    The dump side is the timestamp-based extractor's "output to file"
    path; the load side is the DBMS Loader of Table 1: it parses each
    line and writes the record {e directly into database blocks} — no
    WAL, no per-row index maintenance (indexes are rebuilt once at the
    end), no transaction overhead.  That is why it beats Import. *)

type dump_stats = { rows : int; bytes : int }
type load_stats = { rows : int; bad_lines : int }

val dump :
  Db.t -> table:string -> ?where:Dw_relation.Expr.t -> dest:string -> unit -> dump_stats
(** One ASCII line per matching row ({!Dw_relation.Codec.encode_ascii}). *)

val dump_tuples :
  Dw_storage.Vfs.t -> schema:Dw_relation.Schema.t -> dest:string ->
  Dw_relation.Tuple.t list -> dump_stats
(** Dump an explicit tuple list (used by extractors writing delta files). *)

val load :
  Db.t -> table:string -> src:string -> (load_stats, string) result
(** Direct block load into an existing table.  Lines that fail to decode
    are counted in [bad_lines] and skipped (loader semantics). *)

val iter_lines :
  Dw_storage.Vfs.t -> string -> f:(string -> unit) -> (int, string) result
(** Stream the lines of an ASCII file (no trailing-newline pedantry). *)
