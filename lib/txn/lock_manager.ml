type txid = int

type resource = Table of string | Row of string * Dw_storage.Heap_file.rid
type mode = S | X
type outcome = Granted | Blocked of txid list | Deadlock of txid list

(* per-(table, txid) row-lock tally, so a Table-lock request can find
   conflicting row locks in O(#transactions) instead of O(#locks) *)
type tally = { mutable s_rows : int; mutable x_rows : int }

module Metrics = Dw_util.Metrics

type t = {
  locks : (resource, (txid, mode) Hashtbl.t) Hashtbl.t;
  wait_for : (txid, txid list) Hashtbl.t;  (* waiter -> blockers *)
  held : (txid, (resource, unit) Hashtbl.t) Hashtbl.t;
  row_tally : (string, (txid, tally) Hashtbl.t) Hashtbl.t;
  metrics : Metrics.t;
}

let create ?metrics () =
  {
    locks = Hashtbl.create 64;
    wait_for = Hashtbl.create 16;
    held = Hashtbl.create 16;
    row_tally = Hashtbl.create 16;
    metrics = (match metrics with Some m -> m | None -> Metrics.create ());
  }

let holders_tbl t resource =
  match Hashtbl.find_opt t.locks resource with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 4 in
    Hashtbl.add t.locks resource tbl;
    tbl

let holders t resource =
  match Hashtbl.find_opt t.locks resource with
  | None -> []
  | Some tbl -> Hashtbl.fold (fun tx mode acc -> (tx, mode) :: acc) tbl []

let compatible a b = a = S && b = S

let tally_tbl t tname =
  match Hashtbl.find_opt t.row_tally tname with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 8 in
    Hashtbl.add t.row_tally tname tbl;
    tbl

let tally_for t tname tx =
  let tbl = tally_tbl t tname in
  match Hashtbl.find_opt tbl tx with
  | Some tally -> tally
  | None ->
    let tally = { s_rows = 0; x_rows = 0 } in
    Hashtbl.add tbl tx tally;
    tally

(* conflicting holders of [resource] in [mode], from [tx]'s viewpoint,
   including coarse-grained conflicts between table and row locks *)
let conflicts t tx resource mode =
  let direct =
    holders t resource
    |> List.filter (fun (other, held_mode) -> other <> tx && not (compatible mode held_mode))
    |> List.map fst
  in
  let coarse =
    match resource with
    | Row (tname, _) ->
      (* a row lock conflicts with another transaction's table lock unless
         both are S *)
      holders t (Table tname)
      |> List.filter (fun (other, held_mode) -> other <> tx && not (compatible mode held_mode))
      |> List.map fst
    | Table tname -> (
        (* a table lock conflicts with other transactions' row locks in the
           table (unless both S) *)
        match Hashtbl.find_opt t.row_tally tname with
        | None -> []
        | Some tbl ->
          Hashtbl.fold
            (fun other tally acc ->
              if other = tx then acc
              else if tally.x_rows > 0 then other :: acc
              else if tally.s_rows > 0 && mode = X then other :: acc
              else acc)
            tbl [])
  in
  List.sort_uniq compare (direct @ coarse)

let record_held t tx resource =
  let set =
    match Hashtbl.find_opt t.held tx with
    | Some set -> set
    | None ->
      let set = Hashtbl.create 16 in
      Hashtbl.add t.held tx set;
      set
  in
  if not (Hashtbl.mem set resource) then Hashtbl.replace set resource ()

(* would granting make [waiter] wait on someone who (transitively) waits
   on [waiter]? *)
let closes_cycle t waiter blockers =
  let visited = Hashtbl.create 16 in
  let rec reachable from =
    if from = waiter then true
    else if Hashtbl.mem visited from then false
    else begin
      Hashtbl.add visited from ();
      match Hashtbl.find_opt t.wait_for from with
      | None -> false
      | Some next -> List.exists reachable next
    end
  in
  List.exists reachable blockers

let bump_tally t tx resource ~old_mode ~new_mode =
  match resource with
  | Table _ -> ()
  | Row (tname, _) ->
    let tally = tally_for t tname tx in
    (match old_mode with
     | Some S -> tally.s_rows <- tally.s_rows - 1
     | Some X -> tally.x_rows <- tally.x_rows - 1
     | None -> ());
    (match new_mode with
     | S -> tally.s_rows <- tally.s_rows + 1
     | X -> tally.x_rows <- tally.x_rows + 1)

let acquire t tx resource mode =
  Metrics.incr t.metrics "lock.acquires";
  let blockers = conflicts t tx resource mode in
  match blockers with
  | [] ->
    let tbl = holders_tbl t resource in
    let old_mode = Hashtbl.find_opt tbl tx in
    let new_mode =
      match old_mode, mode with
      | Some X, _ -> X
      | Some S, X -> X
      | Some S, S -> S
      | None, m -> m
    in
    if old_mode <> Some new_mode then begin
      Hashtbl.replace tbl tx new_mode;
      bump_tally t tx resource ~old_mode ~new_mode
    end;
    record_held t tx resource;
    Hashtbl.remove t.wait_for tx;
    Granted
  | _ ->
    if closes_cycle t tx blockers then begin
      Metrics.incr t.metrics "lock.deadlocks";
      Deadlock blockers
    end
    else begin
      Metrics.incr t.metrics "lock.blocks";
      Hashtbl.replace t.wait_for tx blockers;
      Blocked blockers
    end

let release_all t tx =
  (match Hashtbl.find_opt t.held tx with
   | None -> ()
   | Some set ->
     Hashtbl.iter
       (fun resource () ->
         (match Hashtbl.find_opt t.locks resource with
          | Some tbl ->
            Hashtbl.remove tbl tx;
            if Hashtbl.length tbl = 0 then Hashtbl.remove t.locks resource
          | None -> ());
         match resource with
         | Row (tname, _) -> (
             match Hashtbl.find_opt t.row_tally tname with
             | Some tbl -> Hashtbl.remove tbl tx
             | None -> ())
         | Table _ -> ())
       set;
     Hashtbl.remove t.held tx);
  Hashtbl.remove t.wait_for tx;
  (* drop this tx from other waiters' blocker lists *)
  let updates =
    Hashtbl.fold
      (fun waiter blockers acc ->
        if List.mem tx blockers then (waiter, List.filter (fun b -> b <> tx) blockers) :: acc
        else acc)
      t.wait_for []
  in
  List.iter
    (fun (waiter, blockers) ->
      if blockers = [] then Hashtbl.remove t.wait_for waiter
      else Hashtbl.replace t.wait_for waiter blockers)
    updates

let held_by t tx =
  match Hashtbl.find_opt t.held tx with
  | Some set -> Hashtbl.fold (fun r () acc -> r :: acc) set []
  | None -> []

let waiting t tx = Hashtbl.mem t.wait_for tx
