(** Heap files: unordered collections of fixed-width records, one per
    table, stored in pages through the buffer pool.

    Rows are addressed by {!rid} (page number, slot).  RIDs are stable
    across updates (fixed-width update-in-place) but are reused after
    deletion. *)

module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple

type rid = { page : int; slot : int }

val rid_compare : rid -> rid -> int
val rid_to_string : rid -> string

type t

val create : Buffer_pool.t -> Vfs.file -> Schema.t -> t
(** Use on a fresh (empty) file. *)

val attach : Buffer_pool.t -> Vfs.file -> Schema.t -> t
(** Re-open a heap file previously created with the same schema. *)

val schema : t -> Schema.t
val file : t -> Vfs.file
val pool : t -> Buffer_pool.t

val insert : t -> Tuple.t -> rid
(** Validates the tuple; appends a page when no free slot exists. *)

val insert_raw : t -> bytes -> rid
(** Insert an already-encoded record (the ASCII loader's direct-block
    path).  The record must be [Schema.record_size] bytes. *)

val get : t -> rid -> Tuple.t
(** Raises [Invalid_argument] for a free or out-of-range rid. *)

val update : t -> rid -> Tuple.t -> unit
val delete : t -> rid -> unit

val iter : t -> (rid -> Tuple.t -> unit) -> unit
(** Full scan in page order. *)

val iter_pages : t -> from_page:int -> to_page:int -> (rid -> Tuple.t -> unit) -> unit
(** Scan pages [from_page, to_page) in page order (clamped to the file),
    copying each page's records out under its frame latch and decoding
    outside it — the unit of work a partitioned parallel scan hands one
    domain. *)

val fold : t -> init:'a -> f:('a -> rid -> Tuple.t -> 'a) -> 'a
val to_list : t -> (rid * Tuple.t) list
val count : t -> int
(** Number of live records (scans). *)

val page_count : t -> int
val flush : t -> unit

val force_at : t -> rid -> bytes option -> unit
(** Recovery-only: make the slot state exactly [Some record] (occupied with
    these bytes) or [None] (free), regardless of its current state,
    extending the file with formatted pages as needed.  Idempotent. *)

val exists_at : t -> rid -> bool
(** Is the slot currently occupied?  [false] for out-of-range rids. *)

val get_opt : t -> rid -> Tuple.t option
(** [Some] of the slot's tuple if occupied, [None] otherwise — the
    occupancy check and the read happen under one page latch, so a
    concurrent delete cannot slip between them (unlike pairing
    {!exists_at} with {!get}). *)
