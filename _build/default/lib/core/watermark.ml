module Vfs = Dw_storage.Vfs

type mark = { day : int; lsn : Dw_txn.Wal.lsn }

type t = {
  vfs : Vfs.t;
  name : string;
  marks : (string, mark) Hashtbl.t;
}

let parse_line line =
  match String.split_on_char '|' line with
  | [ table; day; lsn ] -> (
      match int_of_string_opt day, int_of_string_opt lsn with
      | Some day, Some lsn -> Some (table, { day; lsn })
      | _ -> None)
  | _ -> None

let load vfs ~name =
  let marks = Hashtbl.create 8 in
  if Vfs.exists vfs name then begin
    let file = Vfs.open_existing vfs name in
    let len = Vfs.size file in
    let data = if len = 0 then "" else Bytes.to_string (Vfs.read_at file ~off:0 ~len) in
    Vfs.close file;
    String.split_on_char '\n' data
    |> List.iter (fun line ->
           match parse_line line with
           | Some (table, mark) -> Hashtbl.replace marks table mark
           | None -> ())
  end;
  { vfs; name; marks }

let get t ~table =
  match Hashtbl.find_opt t.marks table with
  | Some mark -> mark
  | None -> { day = -1; lsn = 0 }

let persist t =
  let buf = Buffer.create 256 in
  Hashtbl.fold (fun table mark acc -> (table, mark) :: acc) t.marks []
  |> List.sort compare
  |> List.iter (fun (table, mark) ->
         Buffer.add_string buf (Printf.sprintf "%s|%d|%d\n" table mark.day mark.lsn));
  let file = Vfs.create t.vfs t.name in
  ignore (Vfs.append file (Buffer.to_bytes buf) : int);
  Vfs.fsync file;
  Vfs.close file

let advance t ~table mark =
  let current = get t ~table in
  if mark.day < current.day || mark.lsn < current.lsn then
    invalid_arg
      (Printf.sprintf "Watermark.advance: regression for %s (day %d->%d, lsn %d->%d)" table
         current.day mark.day current.lsn mark.lsn);
  Hashtbl.replace t.marks table mark;
  persist t

let tables t =
  Hashtbl.fold (fun table _ acc -> table :: acc) t.marks [] |> List.sort String.compare
