examples/parts_warehouse.mli:
