(* Experiment W4: resumable watermark-based bootstrap under live writes.

   A fresh warehouse replica is bootstrapped from a live source while
   hooks inject concurrent committed transactions into the watermark
   windows.  The crash arm kills the run (fail-stop fault VFS) at
   systematic write/fsync events covering every phase — mid-chunk apply,
   between chunk and progress commit, during lease renewal, during the
   final watermark swap — restarts from bytes, resumes, and checks:

   - convergence: warehouse rows equal a quiesced read of the source;
   - resume cost: the resumed run re-does at most one chunk of work
     (vs. [restart_chunks] for a from-scratch load);
   - mutual exclusion: a second start while the lease is live is
     refused.

   [explore_bootstrap] packages the sweep as a {!Crash_sim.report} for
   the @crash alias; [run_bench] is the dwbench "w4" entry. *)

module Vfs = Dw_storage.Vfs
module Fault = Vfs.Fault
module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Tuple = Dw_relation.Tuple
module Workload = Dw_workload.Workload
module Warehouse = Dw_warehouse.Warehouse
module Pq = Dw_transport.Persistent_queue
module Watermark = Dw_core.Watermark
module Opdelta_capture = Dw_core.Opdelta_capture
module Bootstrap = Dw_etl.Bootstrap
module Run_state = Dw_etl.Run_state
module Metrics = Dw_util.Metrics
module Cs = Crash_sim

type spec = {
  rows : int;     (* initial source rows *)
  commits : int;  (* concurrent source txns injected into windows *)
  chunk : int;    (* fixed chunk size (chunk_min = chunk_max: deterministic count) *)
  seed : int;
}

let default_spec = { rows = 96; commits = 10; chunk = 16; seed = 42 }

type env = {
  spec : spec;
  src : Db.t;
  cap : Opdelta_capture.t;
  whvfs : Vfs.t;
  mutable wh : Warehouse.t;
  mutable queue : Pq.t;
  wm : Watermark.t;
  mutable commits_left : int;
  mutable commit_idx : int;
}

(* live writes land at fixed hook points (one txn per window phase), so
   every run with the same spec sees the same schedule — the determinism
   the crash sweep's event counting depends on *)
let live_write env =
  if env.commits_left > 0 then begin
    env.commits_left <- env.commits_left - 1;
    let i = env.commit_idx in
    env.commit_idx <- i + 1;
    let stmts =
      match i mod 3 with
      | 0 ->
        Workload.insert_parts_txn
          ~first_id:(100_000 + (i * 10))
          ~size:2 ~day:(Db.current_day env.src) ()
      | 1 -> [ Workload.update_parts_stmt ~first_id:(1 + (i * 7 mod env.spec.rows)) ~size:3 ]
      | _ -> [ Workload.delete_parts_stmt ~first_id:(1 + (i * 11 mod env.spec.rows)) ~size:1 ]
    in
    match Opdelta_capture.exec_txn env.cap stmts with
    | Ok _ -> ()
    | Error e -> failwith ("w4 live write failed: " ^ e)
  end

let hook env = function
  | Bootstrap.Window_open _ | Bootstrap.After_select _ -> live_write env
  | Bootstrap.Before_chunk _ | Bootstrap.Chunk_done _ | Bootstrap.Catch_up
  | Bootstrap.Before_swap -> ()

let mk_env spec =
  let src = Db.create ~vfs:(Vfs.in_memory ()) ~name:"src" () in
  let (_ : Table.t) = Workload.create_parts_table src in
  Workload.load_parts src ~rows:spec.rows ();
  let cap =
    Opdelta_capture.create ~capture_images:true src ~sink:(Opdelta_capture.To_file "boot.oplog")
  in
  let whvfs = Vfs.in_memory () in
  let wh = Warehouse.create ~vfs:whvfs ~name:"dw" () in
  Warehouse.add_replica wh ~table:Workload.parts_table ~schema:Workload.parts_schema;
  let queue = Pq.open_ whvfs ~name:"boot.q" in
  let wm = Watermark.load (Db.vfs src) ~name:"boot.wm" in
  { spec; src; cap; whvfs; wh; queue; wm; commits_left = spec.commits; commit_idx = 0 }

let config spec =
  {
    Bootstrap.default_config with
    Bootstrap.chunk_max = spec.chunk;
    chunk_min = spec.chunk;
    seed = spec.seed;
  }

let start_bootstrap ?(owner = "w4-primary") env =
  Bootstrap.start ~config:(config env.spec) ~hook:(hook env) ~owner ~source:env.src
    ~capture:env.cap ~table:Workload.parts_table ~queue:env.queue ~warehouse:env.wh
    ~watermark:env.wm ()

(* one bootstrap attempt; a fail-stop fault surfaces as `Crashed with the
   chunk transactions the attempt managed to apply durably *)
let run_attempt ?owner env =
  match start_bootstrap ?owner env with
  | Error (Bootstrap.Lease_held _) -> `Refused
  | Error (Bootstrap.Failed e) -> `Failed e
  | exception Fault.Crash _ -> `Crashed 0
  | Ok b -> (
    match Bootstrap.run b with
    | Ok p -> `Done p
    | Error (Bootstrap.Lease_held _) -> `Failed "lease refused mid-run"
    | Error (Bootstrap.Failed e) -> `Failed e
    | exception Fault.Crash _ -> `Crashed (Bootstrap.progress b).Bootstrap.chunks_this_run)

let catalog =
  [
    (Workload.parts_table, Workload.parts_schema, None);
    (Run_state.table_name, Run_state.schema, None);
  ]

(* restart from bytes: reopen the warehouse database and queue off the
   crashed VFS and re-attach the replica (no table creation) *)
let restart env =
  Vfs.crash_reset env.whvfs;
  let db, (_ : Dw_txn.Recovery.stats) =
    Db.reopen ~pool_pages:64 ~vfs:env.whvfs ~name:"dw" ~tables:catalog ()
  in
  let wh = Warehouse.attach ~db () in
  Warehouse.attach_replica wh ~table:Workload.parts_table;
  env.wh <- wh;
  env.queue <- Pq.open_ env.whvfs ~name:"boot.q"

let sorted_rows db table =
  let rows = ref [] in
  Table.scan (Db.table db table) (fun _ t -> rows := t :: !rows);
  List.sort Tuple.compare !rows

let converged env =
  let s = sorted_rows env.src Workload.parts_table in
  let w = sorted_rows (Warehouse.db env.wh) Workload.parts_table in
  List.length s = List.length w && List.for_all2 Tuple.equal s w

(* fault-free run: counts write/fsync events for the sweep and yields the
   from-scratch chunk cost the resume arm is compared against *)
let baseline spec =
  let env = mk_env spec in
  Vfs.set_fault env.whvfs (Some (Fault.make ~seed:spec.seed ()));
  let p =
    match run_attempt env with
    | `Done p -> p
    | `Crashed _ | `Refused | `Failed _ -> failwith "w4: fault-free bootstrap did not complete"
  in
  if not (converged env) then failwith "w4: fault-free bootstrap did not converge";
  let events = match Vfs.fault env.whvfs with Some f -> Fault.events f | None -> 0 in
  (env, p, events)

(* kill at event [k], restart from bytes, resume, verify.  Returns the
   chunk transactions re-done beyond the durable total on success. *)
let run_crash_point spec ~totals k =
  let env = mk_env spec in
  Vfs.set_fault env.whvfs (Some (Fault.make ~fail_stop_after:k ~seed:(spec.seed + k) ()));
  let first = run_attempt env in
  let result =
    match first with
    | `Failed e -> Error ("first attempt failed: " ^ e)
    | `Refused -> Error "first attempt refused"
    | `Done p ->
      (* the fault fired after the bootstrap's last warehouse write (or
         not at all); nothing to resume *)
      if converged env then Ok (max 0 (p.Bootstrap.chunks_this_run - p.Bootstrap.chunks_done))
      else Error "completed run did not converge"
    | `Crashed chunks_run1 -> (
      restart env;
      match run_attempt env with
      | `Done p ->
        if not p.Bootstrap.complete then Error "resumed run did not complete"
        else if not (converged env) then Error "resumed run did not converge"
        else begin
          let redone = chunks_run1 + p.Bootstrap.chunks_this_run - p.Bootstrap.chunks_done in
          if redone > 1 then
            Error (Printf.sprintf "resume re-did %d chunks (> 1)" redone)
          else if chunks_run1 > 0 && not p.Bootstrap.resumed && p.Bootstrap.chunks_this_run > 0
          then
            (* a durable chunk txn implies a durable state row, so a second
               attempt that re-does chunk work must have picked it up; a
               crash before anything durable legitimately restarts fresh,
               and one after the durable Complete swap legitimately
               reopens as a non-resumed no-op *)
            Error "second attempt did not resume"
          else Ok (max 0 redone)
        end
      | `Crashed _ -> Error "resumed run crashed again (fault plan not inert)"
      | `Refused -> Error "resume refused its own expired lease"
      | `Failed e -> Error ("resume failed: " ^ e))
  in
  Cs.accumulate totals env.whvfs;
  result

let explore_bootstrap ?(spec = default_spec) ?(stride = 1) () =
  let _, _, total_events = baseline spec in
  let totals = Metrics.create () in
  let failures = ref [] in
  let points = Cs.indices ~total:total_events ~stride in
  List.iter
    (fun k ->
      match run_crash_point spec ~totals k with
      | Ok _ -> ()
      | Error msg -> failures := (k, msg) :: !failures)
    points;
  {
    Cs.total_events;
    explored = List.length points;
    failures = List.rev !failures;
    fault_metrics = Metrics.snapshot totals;
  }

let run_bench ~scale =
  Bench_support.section "W4: resumable bootstrap (chunked load + watermark windows)";
  let rows = Bench_support.scaled 2400 ~scale in
  let spec = { default_spec with rows; chunk = max 8 (rows / 12) } in
  let m = Metrics.create () in
  (* arm 1: fault-free baseline, with a lease-refusal probe while the
     primary's lease is live *)
  let env = mk_env spec in
  Vfs.set_fault env.whvfs (Some (Fault.make ~seed:spec.seed ()));
  let primary =
    match start_bootstrap env with
    | Ok b -> b
    | Error _ -> failwith "w4: primary start refused"
  in
  let refused =
    match start_bootstrap ~owner:"w4-intruder" env with
    | Error (Bootstrap.Lease_held _) -> true
    | Ok _ | Error (Bootstrap.Failed _) -> false
  in
  let p =
    match Bootstrap.run primary with
    | Ok p -> p
    | Error (Bootstrap.Failed e) -> failwith ("w4: baseline failed: " ^ e)
    | Error (Bootstrap.Lease_held _) -> failwith "w4: baseline lost its lease"
  in
  if not (converged env) then failwith "w4: baseline did not converge";
  let total_events = match Vfs.fault env.whvfs with Some f -> Fault.events f | None -> 0 in
  (* arm 2: systematic crash sweep with resume, tracking the worst-case
     re-done work *)
  let stride = max 1 (total_events / 40) in
  let totals = Metrics.create () in
  let points = Cs.indices ~total:total_events ~stride in
  let max_extra = ref 0 in
  let failures = ref 0 in
  List.iter
    (fun k ->
      match run_crash_point spec ~totals k with
      | Ok extra -> max_extra := max !max_extra extra
      | Error msg ->
        incr failures;
        Printf.printf "  crash point %d FAILED: %s\n%!" k msg)
    points;
  Metrics.set_gauge m "w4.restart_chunks" (float_of_int p.Bootstrap.chunks_done);
  Metrics.set_gauge m "w4.resume_extra_chunks" (float_of_int !max_extra);
  Metrics.set_gauge m "w4.lease_refused" (if refused then 1.0 else 0.0);
  Metrics.set_gauge m "w4.converged" (if !failures = 0 then 1.0 else 0.0);
  Metrics.set_gauge m "w4.crash_points" (float_of_int (List.length points));
  Metrics.set_gauge m "w4.rows_deduped" (float_of_int p.Bootstrap.rows_deduped);
  Bench_support.print_table ~title:"W4: bootstrap resume cost vs restart"
    ~header:[ "rows"; "chunks"; "crash points"; "failures"; "max re-done chunks"; "deduped" ]
    ~rows:
      [
        [
          string_of_int spec.rows;
          string_of_int p.Bootstrap.chunks_done;
          string_of_int (List.length points);
          string_of_int !failures;
          string_of_int !max_extra;
          string_of_int p.Bootstrap.rows_deduped;
        ];
      ];
  if !failures > 0 then failwith "w4: crash sweep had failures"
