lib/engine/trigger.mli: Dw_relation Dw_storage
