lib/engine/trigger.ml: Dw_relation Dw_storage List
