module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Vfs = Dw_storage.Vfs
module Schema = Dw_relation.Schema
module Value = Dw_relation.Value
module Expr = Dw_relation.Expr
module Ast = Dw_sql.Ast
module Delta = Dw_core.Delta
module Timestamp_extract = Dw_core.Timestamp_extract
module Snapshot_extract = Dw_core.Snapshot_extract
module Trigger_extract = Dw_core.Trigger_extract
module Log_extract = Dw_core.Log_extract
module Opdelta_capture = Dw_core.Opdelta_capture
module Op_delta = Dw_core.Op_delta
module Warehouse = Dw_warehouse.Warehouse
module Metrics = Dw_util.Metrics

type method_ = Timestamp | Snapshot | Trigger | Log | Op_delta

let method_name = function
  | Timestamp -> "timestamp"
  | Snapshot -> "snapshot"
  | Trigger -> "trigger"
  | Log -> "log"
  | Op_delta -> "op-delta"

let all_methods = [ Timestamp; Snapshot; Trigger; Log; Op_delta ]

type observed = {
  table_rows : int;
  rows : float;
  stmts : float;
  insert_rows : float;
  update_rows : float;
  delete_rows : float;
  log_records : float;
  lock_wait_p95_s : float;
  ship_p95_s : float;
  log_available : bool;
}

type coeffs = {
  image_bytes : float;
  stmt_bytes : float;
  update_images : float;
  log_records_per_row : float;
  ts_scan_per_row : float;
  snap_scan_per_row : float;
  row_unit : float;
}

type config = {
  replan_interval : int;
  hysteresis_margin : float;
  probe_rows : int;
  probe_txns : int;
  byte_unit : float;
  contention_weight : float;
  ship_latency_weight : float;
}

let default_config =
  {
    replan_interval = 1;
    hysteresis_margin = 0.2;
    probe_rows = 48;
    probe_txns = 9;
    byte_unit = 0.01;
    contention_weight = 50.0;
    ship_latency_weight = 10.0;
  }

let validate_config c =
  let bad fmt = Printf.ksprintf invalid_arg ("Planner.validate_config: " ^^ fmt) in
  let finite name v = if Float.is_nan v || v = infinity then bad "%s is not finite" name in
  if c.replan_interval < 1 then bad "replan_interval %d < 1" c.replan_interval;
  finite "hysteresis_margin" c.hysteresis_margin;
  if c.hysteresis_margin < 0.0 || c.hysteresis_margin >= 1.0 then
    bad "hysteresis_margin %g outside [0, 1)" c.hysteresis_margin;
  if c.probe_rows < 8 then bad "probe_rows %d < 8" c.probe_rows;
  if c.probe_txns < 3 then bad "probe_txns %d < 3" c.probe_txns;
  finite "byte_unit" c.byte_unit;
  if c.byte_unit <= 0.0 then bad "byte_unit %g <= 0" c.byte_unit;
  finite "contention_weight" c.contention_weight;
  if c.contention_weight < 0.0 then bad "contention_weight %g < 0" c.contention_weight;
  finite "ship_latency_weight" c.ship_latency_weight;
  if c.ship_latency_weight < 0.0 then bad "ship_latency_weight %g < 0" c.ship_latency_weight

type decision = {
  round : int;
  chosen : method_;
  previous : method_ option;
  switched : bool;
  scored : bool;
  costs : (method_ * float) list;
  inputs : observed;
  reason : string;
}

type t = {
  cfg : config;
  metrics : Metrics.t;
  mutable coeffs : coeffs option;
  mutable current : method_ option;
  mutable last_scored_round : int;
  mutable last_costs : (method_ * float) list;
  mutable decisions : decision list;
  mutable switches : int;
}

let create ?(config = default_config) ?metrics () =
  validate_config config;
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  {
    cfg = config;
    metrics;
    coeffs = None;
    current = None;
    last_scored_round = min_int;
    last_costs = [];
    decisions = [];
    switches = 0;
  }

let config t = t.cfg
let calibrated t = t.coeffs <> None
let coeffs t = t.coeffs
let current t = t.current
let decisions t = List.rev t.decisions
let switches t = t.switches

(* ---------- micro-probe calibration ----------

   The probes measure the engine, not the workload: how many delta-table
   images a trigger writes per changed row, how many wire bytes an image
   and a statement cost, how many retained log records one changed row
   leaves behind, how many integration row ops one shipped row causes.
   They are deterministic (seeded in-memory Vfs instances), so two
   planners in one process agree — and the results are memoised for the
   session so only the first planner pays for them. *)

let probe_table = "probe"

let probe_schema =
  Schema.make
    [
      { Schema.name = "id"; ty = Value.Tint; nullable = false };
      { Schema.name = "qty"; ty = Value.Tint; nullable = false };
      { Schema.name = "ts"; ty = Value.Tdate; nullable = false };
    ]

let probe_row ~id ~day = [| Value.Int id; Value.Int (id * 7 mod 100); Value.Date day |]

let probe_insert ~id ~day =
  Ast.Insert { table = probe_table; columns = None; rows = [ Array.to_list (probe_row ~id ~day) ] }

let probe_range ~first ~size =
  Expr.And
    ( Expr.Cmp (Expr.Ge, Expr.Col "id", Expr.Lit (Value.Int first)),
      Expr.Cmp (Expr.Lt, Expr.Col "id", Expr.Lit (Value.Int (first + size))) )

let probe_update ~first ~size =
  Ast.Update
    {
      table = probe_table;
      sets = [ ("qty", Expr.Binop (Expr.Add, Expr.Col "qty", Expr.Lit (Value.Int 1))) ];
      where = Some (probe_range ~first ~size);
    }

let probe_delete ~first ~size =
  Ast.Delete { table = probe_table; where = Some (probe_range ~first ~size) }

let mk_probe_db ?(archive = false) cfg =
  let db = Db.create ~archive_log:archive ~vfs:(Vfs.in_memory ()) ~name:"probe" () in
  ignore (Db.create_table db ~name:probe_table ~ts_column:"ts" probe_schema : Table.t);
  Db.with_txn db (fun txn ->
      for id = 1 to cfg.probe_rows do
        ignore (Db.insert db txn probe_table (probe_row ~id ~day:0) : Dw_storage.Heap_file.rid)
      done);
  db

(* the canonical probe mix, rows touched known by construction: a third
   inserts (2 rows each), a third range updates (4 rows), a third range
   deletes (2 rows).  Updates and deletes stay inside [1, probe_rows/2]
   so they never overlap the fresh inserts. *)
type probe_mix = {
  txn_stmts : Ast.stmt list list;
  mix_inserts : int;
  mix_updates : int;
  mix_deletes : int;
}

let probe_mix cfg =
  let next = ref (cfg.probe_rows + 1) in
  let ins = ref 0 and upd = ref 0 and del = ref 0 in
  let txns =
    List.init cfg.probe_txns (fun i ->
        match i mod 3 with
        | 0 ->
          let first = !next in
          next := first + 2;
          ins := !ins + 2;
          [ probe_insert ~id:first ~day:1; probe_insert ~id:(first + 1) ~day:1 ]
        | 1 ->
          upd := !upd + 4;
          [ probe_update ~first:(1 + (i * 5 mod (cfg.probe_rows / 2))) ~size:4 ]
        | _ ->
          del := !del + 2;
          [ probe_delete ~first:(1 + (i * 7 mod (cfg.probe_rows / 2))) ~size:2 ])
  in
  { txn_stmts = txns; mix_inserts = !ins; mix_updates = !upd; mix_deletes = !del }

let exec_probe_txns db txns =
  Db.advance_day db;
  List.iter
    (fun stmts ->
      Db.with_txn db (fun txn ->
          List.iter (fun s -> ignore (Db.exec db txn s : Db.exec_result)) stmts))
    txns

(* deletes can shrink below the statement's nominal range when a prior
   delete already removed ids; measure actual changed rows from the
   trigger probe's delta instead of trusting the construction *)
let session_coeffs : coeffs option ref = ref None

let run_probes cfg =
  let mix = probe_mix cfg in
  (* trigger probe: images per changed row, wire bytes per image *)
  let trig_db = mk_probe_db cfg in
  let handle = Trigger_extract.install trig_db ~table:probe_table in
  exec_probe_txns trig_db mix.txn_stmts;
  let trig_delta = Trigger_extract.collect trig_db handle in
  let changed = float_of_int (Delta.row_count trig_delta) in
  let images = float_of_int (Delta.image_count trig_delta) in
  let updates =
    List.fold_left
      (fun acc c -> match c with Delta.Update _ -> acc +. 1.0 | _ -> acc)
      0.0 trig_delta.Delta.changes
  in
  let image_bytes = float_of_int (Delta.size_bytes trig_delta) /. Float.max 1.0 images in
  let update_images =
    if updates > 0.0 then ((images -. changed) /. updates) +. 1.0 else 2.0
  in
  (* log probe: retained records per changed row (no trigger installed,
     so the log carries only the user transactions) *)
  let log_db = mk_probe_db ~archive:true cfg in
  exec_probe_txns log_db mix.txn_stmts;
  let _, log_stats = Log_extract.extract log_db ~table:probe_table () in
  let log_records_per_row =
    float_of_int log_stats.Log_extract.records_scanned /. Float.max 1.0 changed
  in
  (* op-delta probe: wire bytes per statement, plus integration row ops
     per changed row measured against a bare replica warehouse *)
  let op_db = mk_probe_db cfg in
  let cap = Opdelta_capture.create op_db ~sink:(Opdelta_capture.To_file "probe.oplog") in
  Db.advance_day op_db;
  List.iter
    (fun stmts ->
      match Opdelta_capture.exec_txn cap stmts with
      | Ok _ -> ()
      | Error e -> invalid_arg ("Planner.calibrate: probe transaction failed: " ^ e))
    mix.txn_stmts;
  let ods = Opdelta_capture.captured cap in
  let stmts = List.fold_left (fun acc od -> acc + List.length od.Op_delta.ops) 0 ods in
  let stmt_bytes =
    float_of_int (Opdelta_capture.captured_bytes cap) /. Float.max 1.0 (float_of_int stmts)
  in
  let wh = Warehouse.create ~vfs:(Vfs.in_memory ()) ~name:"probe_wh" () in
  Warehouse.add_replica wh ~table:probe_table ~schema:probe_schema;
  Warehouse.load_replica wh ~table:probe_table
    (List.init cfg.probe_rows (fun i -> probe_row ~id:(i + 1) ~day:0));
  let wh_stats = Warehouse.integrate_op_deltas wh ods in
  let row_unit = float_of_int wh_stats.Warehouse.row_ops /. Float.max 1.0 changed in
  (* timestamp probe: rows visited per table row (full scan) *)
  let ts_db = mk_probe_db cfg in
  exec_probe_txns ts_db mix.txn_stmts;
  let _, ts_stats =
    Timestamp_extract.extract ts_db ~table:probe_table ~since:0
      ~output:(Timestamp_extract.To_file "probe.ts.asc")
  in
  let ts_table_rows = Table.row_count (Db.table ts_db probe_table) in
  let ts_scan_per_row =
    float_of_int ts_stats.Timestamp_extract.scanned_rows
    /. Float.max 1.0 (float_of_int ts_table_rows)
  in
  (* snapshot probe: rows visited per table row for one diff round
     (dump now + re-read the previous snapshot) *)
  let snap_db = mk_probe_db cfg in
  let snap1 =
    Snapshot_extract.extract snap_db ~table:probe_table ~prev_snapshot:None
      ~snapshot_dest:"probe.snap.1" ~algorithm:Snapshot_extract.Sort_merge
  in
  (match snap1 with
   | Ok _ -> ()
   | Error e -> invalid_arg ("Planner.calibrate: snapshot baseline probe failed: " ^ e));
  exec_probe_txns snap_db mix.txn_stmts;
  (match
     Snapshot_extract.extract snap_db ~table:probe_table ~prev_snapshot:(Some "probe.snap.1")
       ~snapshot_dest:"probe.snap.2" ~algorithm:Snapshot_extract.Sort_merge
   with
   | Error e -> invalid_arg ("Planner.calibrate: snapshot diff probe failed: " ^ e)
   | Ok (_, snap_stats) ->
     let snap_table_rows = Table.row_count (Db.table snap_db probe_table) in
     let prev_rows = cfg.probe_rows in
     let snap_scan_per_row =
       float_of_int (snap_stats.Snapshot_extract.dumped_rows + prev_rows)
       /. Float.max 1.0 (float_of_int snap_table_rows)
     in
     {
       image_bytes;
       stmt_bytes;
       update_images;
       log_records_per_row;
       ts_scan_per_row;
       snap_scan_per_row;
       row_unit;
     })

let calibrate t =
  if t.coeffs = None then begin
    (match !session_coeffs with
     | Some c -> t.coeffs <- Some c
     | None ->
       let c = run_probes t.cfg in
       session_coeffs := Some c;
       t.coeffs <- Some c;
       Metrics.incr t.metrics "planner.calibrations");
    ()
  end

(* ---------- cost models ----------

   All costs are in work units (one unit ≈ one row visit), decomposed as
   extraction + wire + integration + latency/contention penalties, using
   the same per-method hooks the T7 scoring uses — the planner optimises
   the quantity the experiment measures. *)

let predict_with c cfg (o : observed) =
  let wire bytes = bytes *. cfg.byte_unit in
  let integrate = o.rows *. c.row_unit in
  let images =
    o.insert_rows +. o.delete_rows +. (c.update_images *. o.update_rows)
  in
  let ship_pen image_equiv = o.ship_p95_s *. cfg.ship_latency_weight *. image_equiv in
  let cost = function
    | Timestamp ->
      if o.delete_rows > 0.0 then infinity
      else
        let extract =
          Timestamp_extract.work_units
            ~table_rows:(int_of_float (c.ts_scan_per_row *. float_of_int o.table_rows))
            ~delta_rows:0
          +. o.rows
        in
        let bytes = o.rows *. c.image_bytes in
        extract +. wire bytes +. integrate +. ship_pen o.rows
    | Snapshot ->
      let extract =
        (c.snap_scan_per_row *. float_of_int o.table_rows) +. o.rows
      in
      let bytes = o.rows *. c.image_bytes in
      extract +. wire bytes +. integrate +. ship_pen o.rows
    | Trigger ->
      let extract = Trigger_extract.work_units ~images:0 +. images in
      let bytes = images *. c.image_bytes in
      let contention =
        o.lock_wait_p95_s *. cfg.contention_weight *. Trigger_extract.capture_units ~images:0
        +. (o.lock_wait_p95_s *. cfg.contention_weight *. images)
      in
      extract +. wire bytes +. integrate +. ship_pen images +. contention
    | Log ->
      if not o.log_available then infinity
      else
        (* the WAL reports exactly how many records the round retained
           (the log scan visits all of them, including other tables' and
           any capture overhead); the calibrated per-row estimate only
           covers rounds with no direct observation *)
        let records =
          if o.log_records > 0.0 then o.log_records else c.log_records_per_row *. o.rows
        in
        let extract =
          Log_extract.work_units ~log_records:(int_of_float records) ~delta_rows:0
          +. o.rows
        in
        let bytes = images *. c.image_bytes in
        extract +. wire bytes +. integrate +. ship_pen images
    | Op_delta ->
      let extract = Opdelta_capture.work_units ~statements:(int_of_float o.stmts) in
      let bytes = o.stmts *. c.stmt_bytes in
      extract +. wire bytes +. integrate +. ship_pen o.stmts
  in
  List.map (fun m -> (m, cost m)) all_methods

let predict t o =
  calibrate t;
  match t.coeffs with
  | Some c -> predict_with c t.cfg o
  | None -> assert false

let cost_of costs m = try List.assoc m costs with Not_found -> infinity

let record t d =
  t.decisions <- d :: t.decisions;
  if d.switched then begin
    t.switches <- t.switches + 1;
    Metrics.incr t.metrics "planner.switches"
  end;
  if d.scored then Metrics.incr t.metrics "planner.plans"
  else Metrics.incr t.metrics "planner.kept";
  List.iter
    (fun (m, cost) ->
      if cost < infinity then
        Metrics.set_gauge t.metrics ("planner.cost_" ^ method_name m) cost)
    d.costs;
  d

let plan t ~round o =
  calibrate t;
  let due =
    t.current = None || round - t.last_scored_round >= t.cfg.replan_interval
  in
  if not due then
    record t
      {
        round;
        chosen = Option.get t.current;
        previous = t.current;
        switched = false;
        scored = false;
        costs = t.last_costs;
        inputs = o;
        reason = "kept: replan interval not reached";
      }
  else begin
    let costs = predict t o in
    t.last_scored_round <- round;
    t.last_costs <- costs;
    let best, best_cost =
      List.fold_left
        (fun (bm, bc) (m, c) -> if c < bc then (m, c) else (bm, bc))
        (Op_delta, infinity) costs
    in
    let chosen, reason =
      match t.current with
      | None -> (best, Printf.sprintf "initial: %s %.1f units" (method_name best) best_cost)
      | Some cur ->
        let cur_cost = cost_of costs cur in
        if cur_cost = infinity then
          ( best,
            Printf.sprintf "forced off ineligible %s: %s %.1f units" (method_name cur)
              (method_name best) best_cost )
        else if best_cost < cur_cost *. (1.0 -. t.cfg.hysteresis_margin) then
          ( best,
            Printf.sprintf "switched: %s %.1f < %s %.1f x %.2f" (method_name best) best_cost
              (method_name cur) cur_cost
              (1.0 -. t.cfg.hysteresis_margin) )
        else
          ( cur,
            Printf.sprintf "kept %s %.1f (best %s %.1f within margin)" (method_name cur)
              cur_cost (method_name best) best_cost )
    in
    let previous = t.current in
    t.current <- Some chosen;
    record t
      {
        round;
        chosen;
        previous;
        switched = previous <> Some chosen;
        scored = true;
        costs;
        inputs = o;
        reason;
      }
end

let force t ~round m =
  let previous = t.current in
  t.current <- Some m;
  ignore
    (record t
       {
         round;
         chosen = m;
         previous;
         switched = previous <> Some m;
         scored = false;
         costs = t.last_costs;
         inputs =
           {
             table_rows = 0;
             rows = 0.0;
             stmts = 0.0;
             insert_rows = 0.0;
             update_rows = 0.0;
             delete_rows = 0.0;
             log_records = 0.0;
             lock_wait_p95_s = 0.0;
             ship_p95_s = 0.0;
             log_available = false;
           };
         reason = "forced: correctness fallback";
       }
      : decision)

(* ---------- warehouse-resident decision log ---------- *)

let log_table = "__planner_log"

let log_schema =
  Schema.make ~key_arity:2
    [
      { Schema.name = "src_table"; ty = Value.Tstring 40; nullable = false };
      { Schema.name = "round"; ty = Value.Tint; nullable = false };
      { Schema.name = "chosen"; ty = Value.Tstring 12; nullable = false };
      { Schema.name = "switched"; ty = Value.Tint; nullable = false };
      { Schema.name = "scored"; ty = Value.Tint; nullable = false };
      { Schema.name = "cost_timestamp"; ty = Value.Tfloat; nullable = false };
      { Schema.name = "cost_snapshot"; ty = Value.Tfloat; nullable = false };
      { Schema.name = "cost_trigger"; ty = Value.Tfloat; nullable = false };
      { Schema.name = "cost_log"; ty = Value.Tfloat; nullable = false };
      { Schema.name = "cost_op_delta"; ty = Value.Tfloat; nullable = false };
      { Schema.name = "delta_rows"; ty = Value.Tfloat; nullable = false };
      { Schema.name = "table_rows"; ty = Value.Tint; nullable = false };
      { Schema.name = "reason"; ty = Value.Tstring 72; nullable = false };
    ]

let ensure_log_table db =
  match Db.table_opt db log_table with
  | Some _ -> ()
  | None -> ignore (Db.create_table db ~name:log_table log_schema : Table.t)

(* infinities cannot ride in a Tfloat column; store a sentinel *)
let ineligible_cost = -1.0
let encode_cost c = if c = infinity then ineligible_cost else c
let decode_cost c = if c = ineligible_cost then infinity else c

let clip n s = if String.length s <= n then s else String.sub s 0 n

let log_decision wh ~table d =
  let db = Warehouse.db wh in
  ensure_log_table db;
  let cost m = encode_cost (cost_of d.costs m) in
  let row =
    [|
      Value.Str (clip 40 table);
      Value.Int d.round;
      Value.Str (method_name d.chosen);
      Value.Int (if d.switched then 1 else 0);
      Value.Int (if d.scored then 1 else 0);
      Value.Float (cost Timestamp);
      Value.Float (cost Snapshot);
      Value.Float (cost Trigger);
      Value.Float (cost Log);
      Value.Float (cost Op_delta);
      Value.Float d.inputs.rows;
      Value.Int d.inputs.table_rows;
      Value.Str (clip 72 d.reason);
    |]
  in
  Db.with_txn db (fun txn ->
      match Db.find_by_key db txn log_table [| Value.Str (clip 40 table); Value.Int d.round |] with
      | Some (rid, _) -> Db.update_rid db txn log_table rid row
      | None -> ignore (Db.insert_row db txn log_table row : Dw_storage.Heap_file.rid))

type log_row = {
  lr_table : string;
  lr_round : int;
  lr_chosen : string;
  lr_switched : bool;
  lr_scored : bool;
  lr_costs : (string * float) list;
  lr_rows : float;
  lr_table_rows : int;
  lr_reason : string;
}

let read_log wh ~table =
  let db = Warehouse.db wh in
  match Db.table_opt db log_table with
  | None -> []
  | Some _ ->
    let rows =
      Db.with_txn db (fun txn ->
          Db.select db txn log_table
            ~where:(Expr.Cmp (Expr.Eq, Expr.Col "src_table", Expr.Lit (Value.Str table)))
            ())
    in
    let decode = function
      | [|
          Value.Str lr_table;
          Value.Int lr_round;
          Value.Str lr_chosen;
          Value.Int switched;
          Value.Int scored;
          Value.Float c_ts;
          Value.Float c_snap;
          Value.Float c_trig;
          Value.Float c_log;
          Value.Float c_op;
          Value.Float lr_rows;
          Value.Int lr_table_rows;
          Value.Str lr_reason;
        |] ->
        {
          lr_table;
          lr_round;
          lr_chosen;
          lr_switched = switched = 1;
          lr_scored = scored = 1;
          lr_costs =
            [
              ("timestamp", decode_cost c_ts);
              ("snapshot", decode_cost c_snap);
              ("trigger", decode_cost c_trig);
              ("log", decode_cost c_log);
              ("op-delta", decode_cost c_op);
            ];
          lr_rows;
          lr_table_rows;
          lr_reason;
        }
      | _ -> invalid_arg "Planner.read_log: malformed __planner_log row"
    in
    List.sort (fun a b -> compare a.lr_round b.lr_round) (List.map decode rows)
