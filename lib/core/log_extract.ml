module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Wal = Dw_txn.Wal
module Log_record = Dw_txn.Log_record
module Schema = Dw_relation.Schema
module Codec = Dw_relation.Codec
module Heap_file = Dw_storage.Heap_file

type stats = { records_scanned : int; log_bytes : int; committed_txns : int }

let work_units ~log_records ~delta_rows =
  float_of_int log_records +. float_of_int delta_rows

(* one pass to find winners, one pass to pull this table's images *)
let committed_dml ?(since_lsn = 0) db ~table =
  let wal = Db.wal db in
  let committed = Hashtbl.create 32 in
  let scanned = ref 0 in
  Wal.iter_from wal since_lsn (fun _ record ->
      incr scanned;
      match record.Log_record.body with
      | Log_record.Commit -> Hashtbl.replace committed record.Log_record.tx ()
      | Log_record.Begin | Log_record.Abort | Log_record.Insert _ | Log_record.Delete _
      | Log_record.Update _ | Log_record.Checkpoint _ ->
        ());
  let dml = ref [] in
  Wal.iter_from wal since_lsn (fun _ record ->
      if Hashtbl.mem committed record.Log_record.tx then
        match record.Log_record.body with
        | Log_record.Insert { table = t; rid; after } when t = table ->
          dml := (record.Log_record.tx, `Ins (rid, after)) :: !dml
        | Log_record.Delete { table = t; rid; before } when t = table ->
          dml := (record.Log_record.tx, `Del (rid, before)) :: !dml
        | Log_record.Update { table = t; rid; before; after } when t = table ->
          dml := (record.Log_record.tx, `Upd (rid, before, after)) :: !dml
        | Log_record.Insert _ | Log_record.Delete _ | Log_record.Update _ | Log_record.Begin
        | Log_record.Commit | Log_record.Abort | Log_record.Checkpoint _ ->
          ());
  (List.rev !dml, !scanned, Wal.segment_bytes wal)

let to_change schema = function
  | `Ins (_, after) -> Delta.Insert (Codec.decode_binary schema after 0)
  | `Del (_, before) -> Delta.Delete (Codec.decode_binary schema before 0)
  | `Upd (_, before, after) ->
    Delta.Update (Codec.decode_binary schema before 0, Codec.decode_binary schema after 0)

let extract ?since_lsn db ~table () =
  let schema = Table.schema (Db.table db table) in
  let dml, scanned, log_bytes = committed_dml ?since_lsn db ~table in
  let txns = List.sort_uniq compare (List.map fst dml) in
  let changes = List.map (fun (_, op) -> to_change schema op) dml in
  ( Delta.make ~table ~schema changes,
    { records_scanned = scanned; log_bytes; committed_txns = List.length txns } )

let extract_grouped ?since_lsn db ~table () =
  let schema = Table.schema (Db.table db table) in
  let dml, scanned, log_bytes = committed_dml ?since_lsn db ~table in
  let order = ref [] in
  let groups = Hashtbl.create 16 in
  List.iter
    (fun (tx, op) ->
      match Hashtbl.find_opt groups tx with
      | Some cell -> cell := op :: !cell
      | None ->
        order := tx :: !order;
        Hashtbl.add groups tx (ref [ op ]))
    dml;
  let result =
    List.rev_map
      (fun tx ->
        let ops = List.rev !(Hashtbl.find groups tx) in
        (tx, Delta.make ~table ~schema (List.map (to_change schema) ops)))
      !order
  in
  (result, { records_scanned = scanned; log_bytes; committed_txns = Hashtbl.length groups })

let ship ~src ~dest ~table =
  match Db.table_opt src table, Db.table_opt dest table with
  | None, _ -> Error (Printf.sprintf "source has no table %s" table)
  | _, None -> Error (Printf.sprintf "destination has no table %s" table)
  | Some s, Some d ->
    if not (Schema.equal (Table.schema s) (Table.schema d)) then
      Error "log shipping requires identical schemas at source and destination"
    else begin
      let dml, _, _ = committed_dml src ~table in
      let heap = Table.heap d in
      let applied = ref 0 in
      List.iter
        (fun (_, op) ->
          incr applied;
          match op with
          | `Ins (rid, after) -> Heap_file.force_at heap rid (Some after)
          | `Del (rid, _) -> Heap_file.force_at heap rid None
          | `Upd (rid, _, after) -> Heap_file.force_at heap rid (Some after))
        dml;
      Table.rebuild_indexes d;
      Ok !applied
    end
