lib/core/self_maintain.mli: Dw_sql Spj_view
