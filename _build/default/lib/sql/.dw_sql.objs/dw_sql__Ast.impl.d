lib/sql/ast.ml: Dw_relation List
