examples/trigger_vs_opdelta.mli:
