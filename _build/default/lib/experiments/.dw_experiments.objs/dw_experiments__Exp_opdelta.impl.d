lib/experiments/exp_opdelta.ml: Bench_support Dw_core Dw_engine Dw_workload List Printf
