let human_bytes n =
  let f = float_of_int n in
  let units = [| "B"; "KB"; "MB"; "GB"; "TB" |] in
  let rec go f i = if f >= 1024.0 && i < Array.length units - 1 then go (f /. 1024.0) (i + 1) else (f, i) in
  let f, i = go f 0 in
  if i = 0 then Printf.sprintf "%dB" n
  else if Float.rem f 1.0 < 0.05 then Printf.sprintf "%.0f%s" f units.(i)
  else Printf.sprintf "%.1f%s" f units.(i)

let human_duration s =
  if s < 0.001 then Printf.sprintf "%.0fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.0fms" (s *. 1e3)
  else if s < 60.0 then Printf.sprintf "%.2fs" s
  else if s < 3600.0 then
    let m = int_of_float (s /. 60.0) in
    let rest = s -. (float_of_int m *. 60.0) in
    Printf.sprintf "%dmin %.0fs" m rest
  else
    let h = int_of_float (s /. 3600.0) in
    let m = int_of_float ((s -. (float_of_int h *. 3600.0)) /. 60.0) in
    Printf.sprintf "%dhr %dmin" h m

let pad w s =
  let n = String.length s in
  if n >= w then s else s ^ String.make (w - n) ' '

let table ~header ~rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row -> match List.nth_opt row c with Some s -> max acc (String.length s) | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let render_row row =
    List.mapi (fun i w -> pad w (match List.nth_opt row i with Some s -> s | None -> "")) widths
    |> String.concat "  "
  in
  let sep = List.map (fun w -> String.make w '-') widths |> String.concat "  " in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows)
