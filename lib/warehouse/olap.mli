(** OLAP query workload over the warehouse.

    The DSS side of the paper's architecture: a set of analyst queries
    (filters, GROUP BY aggregates) run against replicas and view backing
    tables through the SQL layer.  Used by examples and by availability
    experiments to put concrete read work next to the integrators. *)

type query = {
  name : string;
  sql : string;
}

val standard_queries : table:string -> query list
(** A canned analyst mix over a PARTS-shaped replica: row count, stock
    value, per-quantity histogram, price extremes of low-stock parts,
    and a band filter. *)

type query_result = {
  query : string;
  rows : int;          (** result rows *)
  duration : float;    (** wall-clock seconds *)
}

val run :
  ?mode:[ `Read_write | `Snapshot ] -> Warehouse.t -> query -> (query_result, string) result
(** Each query runs in its own transaction.  The default [`Snapshot]
    mode takes no locks: the query sees a transaction-consistent state
    as of its begin and never waits on (or delays) the integrators.
    [`Read_write] restores the old locking read behaviour — the
    availability experiments use it as the contrast arm. *)

val run_parallel :
  ?partitions:int ->
  pool:Dw_util.Domain_pool.t ->
  Warehouse.t ->
  query ->
  (query_result, string) result
(** Like {!run} in [`Snapshot] mode, but executed by {!Par_scan} across
    the pool's domains: the scan is split into [partitions] page ranges
    (default {!Par_scan.default_partitions}) and results are merged
    byte-identically to the sequential path.  Timed into the
    [olap.query_parallel] histogram on the registry clock. *)

val run_all :
  ?mode:[ `Read_write | `Snapshot ] ->
  Warehouse.t ->
  query list ->
  query_result list * string option
(** Runs queries in order, stopping at the first failure; the results of
    the queries completed before it are always returned, with [Some
    error] describing the one that failed ([None] = all succeeded). *)

val run_all_parallel :
  ?partitions:int ->
  pool:Dw_util.Domain_pool.t ->
  Warehouse.t ->
  query list ->
  query_result list * string option
(** {!run_all}, with each query executed through {!run_parallel}. *)
