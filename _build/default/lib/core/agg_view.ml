module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Value = Dw_relation.Value
module Expr = Dw_relation.Expr

type agg_fn = Count | Sum of string | Min of string | Max of string

type t = {
  name : string;
  table : string;
  schema : Schema.t;
  filter : Expr.t option;
  group_by : string list;
  aggregates : (string * agg_fn) list;
}

let col_of = function Count -> None | Sum c | Min c | Max c -> Some c

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.group_by = [] then err "agg view %s: empty GROUP BY" t.name
  else if t.aggregates = [] then err "agg view %s: no aggregates" t.name
  else begin
    let missing =
      List.filter (fun c -> not (Schema.mem t.schema c)) t.group_by
      @ List.filter_map
          (fun (_, fn) ->
            match col_of fn with
            | Some c when not (Schema.mem t.schema c) -> Some c
            | Some _ | None -> None)
          t.aggregates
    in
    let filter_missing =
      match t.filter with
      | None -> []
      | Some e -> List.filter (fun c -> not (Schema.mem t.schema c)) (Expr.columns e)
    in
    match missing @ filter_missing with
    | c :: _ -> err "agg view %s: unknown column %s" t.name c
    | [] ->
      let out_names = t.group_by @ List.map fst t.aggregates in
      let dups =
        List.filter (fun n -> List.length (List.filter (( = ) n) out_names) > 1) out_names
      in
      (match dups with
       | d :: _ -> err "agg view %s: duplicate output column %s" t.name d
       | [] ->
         let bad_sum =
           List.find_opt
             (fun (_, fn) ->
               match fn with
               | Sum c -> (
                   match (Schema.column t.schema (Schema.index_of t.schema c)).Schema.ty with
                   | Value.Tint | Value.Tfloat -> false
                   | Value.Tbool | Value.Tdate | Value.Tstring _ -> true)
               | Count | Min _ | Max _ -> false)
             t.aggregates
         in
         (match bad_sum with
          | Some (out, _) -> err "agg view %s: SUM over non-numeric column (%s)" t.name out
          | None -> Ok ()))
  end

let output_schema t =
  let group_cols =
    List.map
      (fun c ->
        let col = Schema.column t.schema (Schema.index_of t.schema c) in
        { Schema.name = c; ty = col.Schema.ty; nullable = false })
      t.group_by
  in
  let agg_cols =
    List.map
      (fun (out, fn) ->
        let ty =
          match fn with
          | Count -> Value.Tint
          | Sum c | Min c | Max c ->
            (Schema.column t.schema (Schema.index_of t.schema c)).Schema.ty
        in
        { Schema.name = out; ty; nullable = false })
      t.aggregates
  in
  Schema.make ~key_arity:(List.length group_cols) (group_cols @ agg_cols)

let passes t row =
  match t.filter with None -> true | Some e -> Expr.eval_pred t.schema row e

let group_key t row =
  Array.of_list (List.map (fun c -> row.(Schema.index_of t.schema c)) t.group_by)

let field t row c = row.(Schema.index_of t.schema c)

let agg_value t fn rows =
  match fn with
  | Count -> Value.Int (List.length rows)
  | Sum c ->
    List.fold_left (fun acc row -> Value.add acc (field t row c)) (Value.Int 0) rows
  | Min c -> (
      match rows with
      | [] -> Value.Null
      | first :: rest ->
        List.fold_left
          (fun acc row ->
            let v = field t row c in
            if Value.compare v acc < 0 then v else acc)
          (field t first c) rest)
  | Max c -> (
      match rows with
      | [] -> Value.Null
      | first :: rest ->
        List.fold_left
          (fun acc row ->
            let v = field t row c in
            if Value.compare v acc > 0 then v else acc)
          (field t first c) rest)

module GroupMap = Map.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

let output_row t group rows =
  Array.append group (Array.of_list (List.map (fun (_, fn) -> agg_value t fn rows) t.aggregates))

let eval t ~rows =
  let passing = List.filter (passes t) rows in
  let groups =
    List.fold_left
      (fun acc row ->
        GroupMap.update (group_key t row)
          (function None -> Some [ row ] | Some l -> Some (row :: l))
          acc)
      GroupMap.empty passing
  in
  GroupMap.bindings groups
  |> List.map (fun (group, members) -> (output_row t group members, List.length members))

(* incremental transitions *)

let agg_slot t i = List.length t.group_by + i

let init_group t row = output_row t (group_key t row) [ row ]

let apply_insert t ~current row =
  let out = Array.copy current in
  List.iteri
    (fun i (_, fn) ->
      let slot = agg_slot t i in
      match fn with
      | Count -> out.(slot) <- Value.add out.(slot) (Value.Int 1)
      | Sum c -> out.(slot) <- Value.add out.(slot) (field t row c)
      | Min c ->
        let v = field t row c in
        if Value.compare v out.(slot) < 0 then out.(slot) <- v
      | Max c ->
        let v = field t row c in
        if Value.compare v out.(slot) > 0 then out.(slot) <- v)
    t.aggregates;
  out

type delete_outcome = Updated of Tuple.t | Needs_rescan

let apply_delete t ~current row =
  let out = Array.copy current in
  let rescan = ref false in
  List.iteri
    (fun i (_, fn) ->
      let slot = agg_slot t i in
      match fn with
      | Count -> out.(slot) <- Value.sub out.(slot) (Value.Int 1)
      | Sum c -> out.(slot) <- Value.sub out.(slot) (field t row c)
      | Min c -> if Value.compare (field t row c) out.(slot) <= 0 then rescan := true
      | Max c -> if Value.compare (field t row c) out.(slot) >= 0 then rescan := true)
    t.aggregates;
  if !rescan then Needs_rescan else Updated out

let recompute_group t ~group ~replica_rows =
  let members =
    List.filter
      (fun row -> passes t row && Tuple.equal (group_key t row) group)
      replica_rows
  in
  match members with
  | [] -> None
  | _ -> Some (output_row t group members, List.length members)
