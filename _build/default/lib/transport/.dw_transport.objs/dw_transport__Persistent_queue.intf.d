lib/transport/persistent_queue.mli: Dw_storage
