module Value = Dw_relation.Value
module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Expr = Dw_relation.Expr

type method_ =
  | Hash of int
  | Range of int list

type t = {
  table : string;
  key_column : string;
  method_ : method_;
}

let valid_name s =
  String.length s > 0
  && String.for_all
       (fun c -> not (c = ':' || c = ',' || c = ' ' || c = '\t' || c = '\n' || c = '\r'))
       s

let rec ascending = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as rest) -> a < b && ascending rest

let make ~table ~key_column method_ =
  if not (valid_name table) then
    invalid_arg (Printf.sprintf "Partition.make: bad table name %S" table);
  if not (valid_name key_column) then
    invalid_arg (Printf.sprintf "Partition.make: bad key column %S" key_column);
  (match method_ with
   | Hash n when n < 1 -> invalid_arg "Partition.make: Hash needs >= 1 partitions"
   | Hash _ -> ()
   | Range bounds when not (ascending bounds) ->
     invalid_arg "Partition.make: Range bounds must be strictly ascending"
   | Range _ -> ());
  { table; key_column; method_ }

let table t = t.table
let key_column t = t.key_column
let method_ t = t.method_

let partitions t =
  match t.method_ with Hash n -> n | Range bounds -> List.length bounds + 1

(* a fixed multiplicative mix (splitmix64's odd constant) so hash
   placement is stable across processes and OCaml versions — routing
   must agree between the run that wrote a shard and the one re-adopting
   it after a crash *)
let mix k =
  let h = k * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land max_int

let route_key t k =
  match t.method_ with
  | Hash n -> mix k mod n
  | Range bounds ->
    let rec go i = function
      | [] -> i
      | b :: rest -> if k < b then i else go (i + 1) rest
    in
    go 0 bounds

let route_value t v =
  match v with
  | Value.Int k | Value.Date k -> route_key t k
  | Value.Float _ | Value.Bool _ | Value.Str _ | Value.Null ->
    invalid_arg
      (Printf.sprintf "Partition.route_value: %s key %s is not an integer" t.key_column
         (Value.to_string v))

let route_row t schema row = route_value t row.(Schema.index_of schema t.key_column)

let to_string t =
  match t.method_ with
  | Hash n -> Printf.sprintf "hash:%s:%s:%d" t.table t.key_column n
  | Range bounds ->
    Printf.sprintf "range:%s:%s:%s" t.table t.key_column
      (String.concat "," (List.map string_of_int bounds))

let of_string s =
  match String.split_on_char ':' s with
  | [ "hash"; table; key_column; n ] -> (
      match int_of_string_opt n with
      | Some n -> (
          try Ok (make ~table ~key_column (Hash n)) with Invalid_argument e -> Error e)
      | None -> Error (Printf.sprintf "Partition.of_string: bad hash count %S" n))
  | [ "range"; table; key_column; bounds ] -> (
      let parts = if bounds = "" then [] else String.split_on_char ',' bounds in
      match
        List.fold_right
          (fun b acc ->
            match acc, int_of_string_opt b with
            | Some acc, Some b -> Some (b :: acc)
            | _, _ -> None)
          parts (Some [])
      with
      | Some bounds -> (
          try Ok (make ~table ~key_column (Range bounds)) with Invalid_argument e -> Error e)
      | None -> Error (Printf.sprintf "Partition.of_string: bad range bounds %S" bounds))
  | _ -> Error (Printf.sprintf "Partition.of_string: unrecognised spec %S" s)

let equal a b = a.table = b.table && a.key_column = b.key_column && a.method_ = b.method_

(* ---------- persistence ---------- *)

let spec_table = "__partition_spec"
let spec_len = 240

let spec_schema =
  Schema.make ~key_arity:1
    [
      { Schema.name = "id"; ty = Value.Tint; nullable = false };
      { Schema.name = "shard"; ty = Value.Tint; nullable = false };
      { Schema.name = "spec"; ty = Value.Tstring spec_len; nullable = false };
    ]

let save db ~shard t =
  let s = to_string t in
  if String.length s > spec_len then
    invalid_arg (Printf.sprintf "Partition.save: spec %S too long" s);
  if Db.table_opt db spec_table = None then
    ignore (Db.create_table db ~name:spec_table spec_schema : Table.t);
  Db.with_txn db (fun txn ->
      let row = [| Value.Int 0; Value.Int shard; Value.Str s |] in
      match Db.select db txn spec_table () with
      | [] -> ignore (Db.insert db txn spec_table row : Dw_storage.Heap_file.rid)
      | _ :: _ ->
        ignore
          (Db.update_where db txn spec_table
             ~set:
               [ ("shard", Expr.Lit (Value.Int shard)); ("spec", Expr.Lit (Value.Str s)) ]
             ~where:None
            : int))

let load db =
  match Db.table_opt db spec_table with
  | None -> None
  | Some _ -> (
      match Db.with_txn db (fun txn -> Db.select db txn spec_table ()) with
      | [] -> None
      | [ [| _; Value.Int shard; Value.Str s |] ] -> (
          match of_string s with
          | Ok t -> Some (shard, t)
          | Error e -> invalid_arg ("Partition.load: " ^ e))
      | _ -> invalid_arg "Partition.load: corrupt __partition_spec table")
