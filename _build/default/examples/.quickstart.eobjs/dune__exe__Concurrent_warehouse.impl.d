examples/concurrent_warehouse.ml: Dw_core Dw_engine Dw_storage Dw_util Dw_warehouse Dw_workload List Printf
