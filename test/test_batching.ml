(* Tests for the batching layers: group-commit WAL (policy object, sim
   clock deadlines, scheduler-driven concurrent committers), coalesced
   transport (frame codecs, batch enqueue / run ack, block shipping), and
   the micro-batched warehouse integrator (valve behaviour, and a qcheck
   property that batched apply is equivalent to one-at-a-time apply). *)

module Vfs = Dw_storage.Vfs
module Metrics = Dw_util.Metrics
module Sim_clock = Dw_util.Sim_clock
module Prng = Dw_util.Prng
module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Scheduler = Dw_engine.Scheduler
module Wal = Dw_txn.Wal
module Log_record = Dw_txn.Log_record
module Group_commit = Dw_txn.Group_commit
module Workload = Dw_workload.Workload
module Tuple = Dw_relation.Tuple
module Op_delta = Dw_core.Op_delta
module Pq = Dw_transport.Persistent_queue
module File_ship = Dw_transport.File_ship
module Warehouse = Dw_warehouse.Warehouse

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

(* ---------- group commit ---------- *)

let mk_db () =
  let metrics = Metrics.create () in
  let vfs = Vfs.in_memory ~metrics () in
  let db = Db.create ~vfs ~name:"src" () in
  let _ = Workload.create_parts_table db in
  (metrics, db)

let commit_one db i =
  let day = Db.current_day db in
  Db.with_txn db (fun txn ->
      List.iter
        (fun stmt -> ignore (Db.exec db txn stmt : Db.exec_result))
        (Workload.insert_parts_txn ~first_id:i ~size:1 ~day ()))

let gc_deadline_on_sim_clock () =
  (* the max-wait deadline runs on the registry clock: deterministic
     under Sim_clock, flushed by poll once the clock passes it *)
  let metrics = Metrics.create () in
  let clk = Sim_clock.create () in
  Metrics.use_sim_clock metrics clk;
  let vfs = Vfs.in_memory ~metrics () in
  let wal = Wal.create vfs ~name:"wal" ~archive:false in
  let g = Group_commit.create ~policy:{ max_group = 100; max_wait_s = 5.0 } wal in
  ignore (Wal.append wal { Log_record.tx = 1; body = Log_record.Commit } : Wal.lsn);
  Group_commit.note_commit g;
  check Alcotest.int "pending before deadline" 1 (Group_commit.pending g);
  Group_commit.poll g;
  check Alcotest.int "poll before deadline is a no-op" 1 (Group_commit.pending g);
  Sim_clock.advance clk 6;
  Group_commit.poll g;
  check Alcotest.int "poll after deadline flushes" 0 (Group_commit.pending g);
  check Alcotest.int "one group observed" 1 (Metrics.observed_count metrics "wal.group_size")

let gc_deadline_zero_flushes_every_commit () =
  let metrics = Metrics.create () in
  let clk = Sim_clock.create () in
  Metrics.use_sim_clock metrics clk;
  let vfs = Vfs.in_memory ~metrics () in
  let wal = Wal.create vfs ~name:"wal" ~archive:false in
  let g = Group_commit.create ~policy:{ max_group = 100; max_wait_s = 0.0 } wal in
  ignore (Wal.append wal { Log_record.tx = 1; body = Log_record.Commit } : Wal.lsn);
  Group_commit.note_commit g;
  check Alcotest.int "max_wait 0 degenerates to every-commit" 0 (Group_commit.pending g)

let gc_group_size_histogram () =
  (* 10 commits at group 4 -> flushed groups of 4, 4 and (after sync) 2 *)
  let metrics, db = mk_db () in
  Db.set_sync_mode db (`Group 4);
  let count0 = Metrics.observed_count metrics "wal.group_size" in
  let sum0 = Metrics.observed_sum metrics "wal.group_size" in
  for i = 1 to 10 do
    commit_one db i
  done;
  check Alcotest.int "pending tail group" 2 (Db.pending_group_commits db);
  Db.sync db;
  check Alcotest.int "sync drains the group" 0 (Db.pending_group_commits db);
  check Alcotest.int "three groups flushed" 3
    (Metrics.observed_count metrics "wal.group_size" - count0);
  check (Alcotest.float 0.001) "sizes sum to the commit count" 10.0
    (Metrics.observed_sum metrics "wal.group_size" -. sum0)

let gc_mode_switch_flushes_open_group () =
  let metrics, db = mk_db () in
  Db.set_sync_mode db (`Group 10);
  for i = 1 to 3 do
    commit_one db i
  done;
  check Alcotest.int "3 pending" 3 (Db.pending_group_commits db);
  let fsyncs = Metrics.get metrics "vfs.fsyncs" in
  Db.set_sync_mode db `Every_commit;
  check Alcotest.int "switch flushed the open group" 0 (Db.pending_group_commits db);
  check Alcotest.bool "switch issued the fsync" true (Metrics.get metrics "vfs.fsyncs" > fsyncs)

let gc_policy_deadline_at_statement_boundary () =
  (* a commit lull must not starve the group: the deadline is re-checked
     at every statement boundary (Db drives Group_commit.poll) *)
  let metrics = Metrics.create () in
  let clk = Sim_clock.create () in
  Metrics.use_sim_clock metrics clk;
  let vfs = Vfs.in_memory ~metrics () in
  let db = Db.create ~vfs ~name:"src" () in
  let _ = Workload.create_parts_table db in
  Db.set_sync_mode db (`Group_policy { Group_commit.max_group = 100; max_wait_s = 2.0 });
  commit_one db 1;
  check Alcotest.int "commit pending" 1 (Db.pending_group_commits db);
  Sim_clock.advance clk 3;
  (* a read-only statement from some other session crosses a statement
     boundary; the overdue group must flush before that statement runs *)
  Db.with_txn db (fun txn ->
      ignore (Db.select db txn "parts" () : Tuple.t list);
      check Alcotest.int "boundary poll flushed the overdue group" 0
        (Db.pending_group_commits db))

let gc_scheduler_concurrent_committers () =
  (* logical sessions committing concurrently share group fsyncs *)
  let metrics, db = mk_db () in
  Db.set_sync_mode db (`Group 3);
  let before = Metrics.get metrics "vfs.fsyncs" in
  let sessions =
    List.init 6 (fun i ->
        { Scheduler.name = Printf.sprintf "committer-%d" i;
          start_at = i;
          work = (fun () -> commit_one db (i + 1)) })
  in
  let report = Scheduler.run db sessions in
  check Alcotest.int "no failed sessions" 0
    (List.length (List.filter (fun s -> s.Scheduler.failed <> None) report.Scheduler.sessions));
  Db.sync db;
  let fsyncs = Metrics.get metrics "vfs.fsyncs" - before in
  check Alcotest.bool "6 commits cost at most 3 fsyncs" true (fsyncs <= 3);
  check Alcotest.int "all rows landed" 6 (Table.row_count (Db.table db "parts"))

let gc_policy_validates () =
  let _, db = mk_db () in
  (try
     Db.set_sync_mode db (`Group_policy { Group_commit.max_group = 0; max_wait_s = 1.0 });
     Alcotest.fail "expected max_group failure"
   with Invalid_argument _ -> ());
  try
    Db.set_sync_mode db (`Group_policy { Group_commit.max_group = 4; max_wait_s = -1.0 });
    Alcotest.fail "expected max_wait failure"
  with Invalid_argument _ -> ()

(* ---------- coalesced transport ---------- *)

let frames_roundtrip () =
  let msgs = [ "alpha"; ""; "gamma with spaces"; String.make 300 'x' ] in
  (match Pq.decode_frames (Pq.encode_frames msgs) with
   | Ok back -> check (Alcotest.list Alcotest.string) "roundtrip" msgs back
   | Error e -> Alcotest.fail e);
  (* corrupt one payload byte: the block must be rejected whole *)
  let b = Pq.encode_frames msgs in
  Bytes.set b 9 '!';
  match Pq.decode_frames b with
  | Ok _ -> Alcotest.fail "corrupt frame accepted"
  | Error msg -> check Alcotest.bool "error is descriptive" true (String.length msg > 0)

let batch_and_single_interoperate () =
  (* batched producer, per-message consumer, and vice versa, on the same
     queue file *)
  let vfs = Vfs.in_memory () in
  let q = Pq.open_ vfs ~name:"q" in
  Pq.enqueue_batch q [ "a"; "b"; "c" ];
  Pq.enqueue q "d";
  check Alcotest.int "pending" 4 (Pq.pending q);
  check (Alcotest.option Alcotest.string) "peek sees batch head" (Some "a") (Pq.peek q);
  Pq.ack q;
  check (Alcotest.list Alcotest.string) "run after single ack" [ "b"; "c"; "d" ]
    (Pq.peek_run q ~max:10);
  Pq.ack_run q 2;
  check Alcotest.int "two acked in one run" 1 (Pq.pending q);
  Pq.close q;
  (* reopen: the unacked tail is redelivered *)
  let q2 = Pq.open_ vfs ~name:"q" in
  check (Alcotest.list Alcotest.string) "redelivered after reopen" [ "d" ]
    (Pq.peek_run q2 ~max:10);
  Pq.close q2

let ack_run_validates () =
  let vfs = Vfs.in_memory () in
  let q = Pq.open_ vfs ~name:"q" in
  Pq.enqueue_batch q [ "a"; "b" ];
  (try
     Pq.ack_run q 3;
     Alcotest.fail "expected over-ack failure"
   with Invalid_argument _ -> ());
  Pq.ack_run q 0;
  check Alcotest.int "ack_run 0 is a no-op" 2 (Pq.pending q)

let ship_messages_blocks_and_roundtrip () =
  let msgs = List.init 40 (fun i -> Printf.sprintf "op-delta line %03d" i) in
  let dst = Vfs.in_memory () in
  (match File_ship.ship_messages ~block_size:128 ~dst ~dst_name:"blk" msgs with
   | Error e -> Alcotest.fail e
   | Ok stats ->
     check Alcotest.bool "coalesced into fewer blocks than messages" true
       (stats.File_ship.chunks > 1 && stats.File_ship.chunks < List.length msgs));
  (match File_ship.fetch_messages dst ~name:"blk" with
   | Ok back -> check (Alcotest.list Alcotest.string) "shipped roundtrip" msgs back
   | Error e -> Alcotest.fail e);
  (* an oversized message still ships, in a block of its own *)
  let big = [ String.make 4096 'z'; "small" ] in
  (match File_ship.ship_messages ~block_size:128 ~dst ~dst_name:"big" big with
   | Error e -> Alcotest.fail e
   | Ok stats -> check Alcotest.int "oversize gets its own block" 2 stats.File_ship.chunks);
  match File_ship.fetch_messages dst ~name:"big" with
  | Ok back -> check (Alcotest.list Alcotest.string) "oversize roundtrip" big back
  | Error e -> Alcotest.fail e

let fetch_detects_corruption () =
  let dst = Vfs.in_memory () in
  (match File_ship.ship_messages ~dst ~dst_name:"blk" [ "hello"; "world" ] with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  let f = Vfs.open_existing dst "blk" in
  Vfs.write_at f ~off:9 (Bytes.of_string "X");
  Vfs.close f;
  match File_ship.fetch_messages dst ~name:"blk" with
  | Ok _ -> Alcotest.fail "corrupt shipped block accepted"
  | Error _ -> ()

(* ---------- micro-batched warehouse apply ---------- *)

let mk_wh ~rows =
  let wh = Warehouse.create ~vfs:(Vfs.in_memory ()) ~name:"dw" () in
  Warehouse.add_replica wh ~table:"parts" ~schema:Workload.parts_schema;
  let rng = Prng.create ~seed:5 in
  Warehouse.load_replica wh ~table:"parts"
    (List.init rows (fun i -> Workload.gen_part rng ~id:(i + 1) ~day:0));
  wh

let ods_of_mix ~rows ~txns ~seed =
  let rng = Prng.create ~seed in
  let mix = Workload.gen_mix rng ~existing_ids:rows ~txns ~max_txn_size:6 in
  List.mapi (fun i op -> Op_delta.make ~txn_id:i (Workload.op_to_stmts ~seed ~day:0 op)) mix

let batched_apply_uses_fewer_txns () =
  let rows = 60 in
  let ods = ods_of_mix ~rows ~txns:12 ~seed:21 in
  let wh1 = mk_wh ~rows in
  let seq = Warehouse.integrate_op_deltas wh1 ods in
  let wh2 = mk_wh ~rows in
  let policy = { Warehouse.default_batch_policy with Warehouse.max_batch = 4 } in
  let bat = Warehouse.integrate_op_deltas_batched ~policy wh2 ods in
  check Alcotest.int "sequential: one txn per source txn" 12 seq.Warehouse.txns;
  check Alcotest.int "batched: one txn per run of 4" 3 bat.Warehouse.txns;
  check Alcotest.int "same statements either way" seq.Warehouse.statements
    bat.Warehouse.statements;
  check Alcotest.bool "same replica contents" true
    (Warehouse.replica_rows wh1 "parts" = Warehouse.replica_rows wh2 "parts")

let valve_shrinks_under_lock_waits () =
  let rows = 40 in
  let ods = ods_of_mix ~rows ~txns:40 ~seed:8 in
  let wh = mk_wh ~rows in
  let m = Db.metrics (Warehouse.db wh) in
  (* simulate queued readers: a fat lock-wait tail above the valve's
     threshold keeps halving the target until it hits the floor *)
  for _ = 1 to 50 do
    Metrics.observe m "lock.wait" 0.050
  done;
  let policy = { Warehouse.max_batch = 8; min_batch = 1; lock_wait_p95_s = 0.010 } in
  ignore (Warehouse.integrate_op_deltas_batched ~policy wh ods : Warehouse.stats);
  check (Alcotest.float 0.001) "valve pinned at the floor" 1.0
    (Metrics.gauge m "warehouse.batch_size_target")

let valve_stays_open_without_contention () =
  let rows = 40 in
  let ods = ods_of_mix ~rows ~txns:10 ~seed:8 in
  let wh = mk_wh ~rows in
  let m = Db.metrics (Warehouse.db wh) in
  let policy = { Warehouse.max_batch = 8; min_batch = 1; lock_wait_p95_s = 0.010 } in
  ignore (Warehouse.integrate_op_deltas_batched ~policy wh ods : Warehouse.stats);
  check (Alcotest.float 0.001) "valve at the ceiling" 8.0
    (Metrics.gauge m "warehouse.batch_size_target")

let batch_policy_validates () =
  (try
     Warehouse.validate_batch_policy
       { Warehouse.max_batch = 2; min_batch = 0; lock_wait_p95_s = 0.01 };
     Alcotest.fail "expected min_batch failure"
   with Invalid_argument _ -> ());
  try
    Warehouse.validate_batch_policy
      { Warehouse.max_batch = 1; min_batch = 2; lock_wait_p95_s = 0.01 };
    Alcotest.fail "expected ceiling failure"
  with Invalid_argument _ -> ()

(* the equivalence property: for ANY op-delta stream and ANY batch size,
   batched apply produces the same warehouse state as one-at-a-time
   apply — only the transaction boundaries differ *)
let prop_batched_equals_sequential =
  QCheck2.Test.make
    ~name:"batched apply = one-at-a-time apply for random op-delta streams" ~count:25
    QCheck2.Gen.(triple (int_range 0 10_000) (int_range 1 16) (int_range 1 14))
    (fun (seed, max_batch, txns) ->
      let rows = 50 in
      let ods = ods_of_mix ~rows ~txns ~seed in
      let wh1 = mk_wh ~rows in
      let seq = Warehouse.integrate_op_deltas wh1 ods in
      let wh2 = mk_wh ~rows in
      let policy = { Warehouse.default_batch_policy with Warehouse.max_batch } in
      let bat = Warehouse.integrate_op_deltas_batched ~policy wh2 ods in
      let same_rows =
        Warehouse.replica_rows wh1 "parts" = Warehouse.replica_rows wh2 "parts"
      in
      if not same_rows then
        QCheck2.Test.fail_reportf "seed %d batch %d: replica contents diverged" seed max_batch
      else if bat.Warehouse.txns > seq.Warehouse.txns then
        QCheck2.Test.fail_reportf "seed %d batch %d: batched used more txns (%d > %d)" seed
          max_batch bat.Warehouse.txns seq.Warehouse.txns
      else true)

let suite =
  [
    test "group deadline on sim clock" gc_deadline_on_sim_clock;
    test "group deadline 0 = every commit" gc_deadline_zero_flushes_every_commit;
    test "group size histogram" gc_group_size_histogram;
    test "mode switch flushes open group" gc_mode_switch_flushes_open_group;
    test "deadline polled at statement boundary" gc_policy_deadline_at_statement_boundary;
    test "scheduler sessions share group fsyncs" gc_scheduler_concurrent_committers;
    test "group policy validates" gc_policy_validates;
    test "frame codec roundtrip + corruption" frames_roundtrip;
    test "batched and single queue ops interoperate" batch_and_single_interoperate;
    test "ack_run validates" ack_run_validates;
    test "ship_messages packs blocks, roundtrips" ship_messages_blocks_and_roundtrip;
    test "fetch_messages detects corruption" fetch_detects_corruption;
    test "batched apply uses fewer txns, same state" batched_apply_uses_fewer_txns;
    test "valve shrinks under lock waits" valve_shrinks_under_lock_waits;
    test "valve stays open without contention" valve_stays_open_without_contention;
    test "batch policy validates" batch_policy_validates;
    QCheck_alcotest.to_alcotest prop_batched_equals_sequential;
  ]
