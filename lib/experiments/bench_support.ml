(* Shared helpers for the experiment harness: timing, scaling, table
   rendering, and source-database construction. *)

module Vfs = Dw_storage.Vfs
module Db = Dw_engine.Db
module Workload = Dw_workload.Workload
module Fmt_util = Dw_util.Fmt_util

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let time_only f = snd (time f)

(* Quick mode (dwbench --quick, the @bench-json alias): shrink workloads
   ~25x and drop repetitions so a full experiment subset finishes in CI
   time.  The shapes stay measurable; the absolute numbers are not for
   quoting. *)
let quick = ref false
let set_quick b = quick := b
let is_quick () = !quick

let scaled base ~scale = (if !quick then max 100 (base / 25) else base) * scale

(* Chunk/block sizes must shrink with the workloads: a --quick run ships
   ~25x less data, and an unscaled 64 KiB chunk would cover the whole
   transfer — a degenerate single-chunk path that exercises none of the
   chunking/coalescing logic the experiments measure.  Floor at 512 B so
   frames still fit. *)
let scaled_chunk base = if !quick then max 512 (base / 25) else base
let ship_chunk () = scaled_chunk (64 * 1024)

(* median-of-n response-time measurement: [setup ()] builds fresh state,
   [run state] is the measured region; a major GC runs before each
   repetition so one cell's garbage does not bill the next.  The median is
   robust against one unlucky GC pause in either direction, which matters
   because the experiment tables report ratios of these cells. *)
let best_of ?(repeat = 5) ~setup run =
  let repeat = if !quick then 1 else repeat in
  let samples =
    List.init repeat (fun _ ->
        let state = setup () in
        Gc.major ();
        time_only (fun () -> run state))
  in
  let sorted = List.sort compare samples in
  List.nth sorted (repeat / 2)

(* default scaled sizes: the paper sweeps 100M..1000M deltas over a 1G
   table, i.e. 10%..100% of the source; we keep those proportions over a
   50k-row source of 100-byte records; scale multiplies both *)
let source_rows ~scale = scaled 50_000 ~scale
let delta_row_steps ~scale =
  List.map (fun pct -> source_rows ~scale * pct / 100) [ 10; 20; 40; 60; 80; 100 ]
let txn_sizes = [ 10; 100; 1000; 10000 ]

let label_for_rows rows =
  (* the paper labels columns by delta bytes; 100-byte records *)
  Fmt_util.human_bytes (rows * 100)

let fresh_source ?(archive = false) ?(rows = 0) () =
  let vfs = Vfs.in_memory () in
  let db = Db.create ~pool_pages:1024 ~archive_log:archive ~vfs ~name:"src" () in
  let _ = Workload.create_parts_table db in
  if rows > 0 then Workload.load_parts db ~rows ();
  db

let print_table ~title ~header ~rows =
  Printf.printf "\n== %s ==\n%s\n" title (Fmt_util.table ~header ~rows)

let dur = Fmt_util.human_duration

let section name = Printf.printf "\n######## %s ########\n" name

let pct_change ~base ~other = (base -. other) /. base *. 100.0
