lib/engine/import_util.ml: Array Bytes Db Dw_relation Dw_sql Dw_storage Export_util Printf Table
