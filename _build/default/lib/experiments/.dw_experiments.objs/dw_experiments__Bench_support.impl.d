lib/experiments/bench_support.ml: Dw_engine Dw_storage Dw_util Dw_workload Gc List Printf Unix
