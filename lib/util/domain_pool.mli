(** Fixed pool of OCaml 5 worker domains with a deterministic join.

    A pool spawns its domains once ({!create}) and feeds them from a
    shared FIFO queue; {!run_all} submits a batch of thunks and blocks
    until every one has settled, returning results in {e submission
    order} — the parallel schedule never leaks into the result shape,
    which is what lets the partitioned OLAP scanner promise
    byte-identical output to a sequential run.

    Error discipline: worker domains never die on a task exception; the
    exception is captured and re-raised (lowest submission index first)
    by [run_all] after the whole batch has finished, so no task of a
    failed batch is still running when the caller sees the exception.

    {!shutdown} drains: already-queued tasks run to completion, then the
    domains exit and are joined — safe to call mid-sweep. *)

type t

val create : domains:int -> t
(** Spawn [domains] worker domains (>= 1, or [Invalid_argument]). *)

val size : t -> int
(** Number of worker domains the pool was created with. *)

val run_all : t -> (unit -> 'a) list -> 'a list
(** Run the thunks on the pool, blocking until all have settled;
    results are in submission order.  Re-raises the lowest-index task
    exception, if any, only after the whole batch has finished.  Raises
    [Invalid_argument] on a pool that has been shut down. *)

val run : t -> (unit -> 'a) -> 'a
(** [run t f] is [run_all t [f]] unwrapped. *)

val shutdown : t -> unit
(** Stop accepting batches, let workers drain the queue, and join every
    domain.  Idempotent; concurrent [run_all] batches already submitted
    complete normally first. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** Scoped pool: shuts down (and joins) even when the body raises. *)
