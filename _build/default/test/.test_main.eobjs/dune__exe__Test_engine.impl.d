test/test_engine.ml: Alcotest Array Bytes Dw_engine Dw_relation Dw_storage Dw_txn List Printf QCheck2 QCheck_alcotest Result String
