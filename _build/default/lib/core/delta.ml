module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple

type change =
  | Insert of Tuple.t
  | Delete of Tuple.t
  | Update of Tuple.t * Tuple.t
  | Upsert of Tuple.t

type t = { table : string; schema : Schema.t; changes : change list }

let make ~table ~schema changes = { table; schema; changes }

let row_count t = List.length t.changes

let image_count t =
  List.fold_left
    (fun acc c -> acc + match c with Update _ -> 2 | Insert _ | Delete _ | Upsert _ -> 1)
    0 t.changes

let size_bytes t = Schema.record_size t.schema * image_count t

let change_key schema = function
  | Insert after | Upsert after -> Tuple.key schema after
  | Delete before | Update (before, _) -> Tuple.key schema before

let concat = function
  | [] -> invalid_arg "Delta.concat: empty list"
  | first :: rest ->
    List.iter
      (fun d ->
        if d.table <> first.table || not (Schema.equal d.schema first.schema) then
          invalid_arg "Delta.concat: table/schema mismatch")
      rest;
    {
      first with
      changes = List.concat_map (fun d -> d.changes) (first :: rest);
    }

module KeyMap = Map.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

let apply_to_rows t rows =
  let table =
    List.fold_left
      (fun acc row -> KeyMap.add (Tuple.key t.schema row) row acc)
      KeyMap.empty rows
  in
  let table =
    List.fold_left
      (fun acc change ->
        match change with
        | Insert after ->
          let key = Tuple.key t.schema after in
          if KeyMap.mem key acc then
            invalid_arg
              (Printf.sprintf "Delta.apply_to_rows: insert collides on key %s"
                 (Tuple.to_string key));
          KeyMap.add key after acc
        | Delete before -> KeyMap.remove (Tuple.key t.schema before) acc
        | Update (before, after) ->
          let acc = KeyMap.remove (Tuple.key t.schema before) acc in
          KeyMap.add (Tuple.key t.schema after) after acc
        | Upsert after -> KeyMap.add (Tuple.key t.schema after) after acc)
      table t.changes
  in
  List.map snd (KeyMap.bindings table)

(* net-change state machine per key *)
type net =
  | N_insert of Tuple.t                 (* net: key appears, image *)
  | N_delete of Tuple.t                 (* net: key disappears, before image *)
  | N_update of Tuple.t * Tuple.t       (* net: key changes, first before / last after *)
  | N_upsert of Tuple.t                 (* net: key present with image, prior unknown *)

let step_net current change =
  match current, change with
  | None, Insert a -> Some (N_insert a)
  | None, Delete b -> Some (N_delete b)
  | None, Update (b, a) -> Some (N_update (b, a))
  | None, Upsert a -> Some (N_upsert a)
  | Some (N_insert _), Insert a | Some (N_insert _), Upsert a -> Some (N_insert a)
  | Some (N_insert _), Update (_, a) -> Some (N_insert a)
  | Some (N_insert _), Delete _ -> None
  | Some (N_update (b0, _)), (Update (_, a) | Upsert a | Insert a) -> Some (N_update (b0, a))
  | Some (N_update (b0, _)), Delete _ -> Some (N_delete b0)
  | Some (N_delete b0), (Insert a | Upsert a) -> Some (N_update (b0, a))
  | Some (N_delete b0), Update (_, a) -> Some (N_update (b0, a))
  | Some (N_delete b0), Delete _ -> Some (N_delete b0)
  | Some (N_upsert _), (Insert a | Upsert a | Update (_, a)) -> Some (N_upsert a)
  | Some (N_upsert _), Delete b -> Some (N_delete b)

let compact t =
  let nets =
    List.fold_left
      (fun acc change ->
        let key = change_key t.schema change in
        KeyMap.update key (fun current -> Some (step_net (Option.join current) change)) acc)
      KeyMap.empty t.changes
  in
  let changes =
    KeyMap.bindings nets
    |> List.filter_map (fun (_, net) ->
           match net with
           | None -> None
           | Some (N_insert a) -> Some (Insert a)
           | Some (N_delete b) -> Some (Delete b)
           | Some (N_update (b, a)) -> Some (Update (b, a))
           | Some (N_upsert a) -> Some (Upsert a))
  in
  { t with changes }

let pp ppf t =
  Format.fprintf ppf "@[<v>delta on %s: %d changes, %d images, %d bytes@]" t.table
    (row_count t) (image_count t) (size_bytes t)

(* wire format: TAG|ascii-record, updates carry both images separated by
   an unescaped tab (Codec.encode_ascii never emits raw tabs unescaped —
   it escapes backslash and pipe; tab can appear inside string fields, so
   updates use a dedicated "U|" line followed by a second "u|" line) *)

module Codec = Dw_relation.Codec

let to_lines t =
  List.concat_map
    (fun change ->
      match change with
      | Insert after -> [ "I|" ^ Codec.encode_ascii t.schema after ]
      | Delete before -> [ "D|" ^ Codec.encode_ascii t.schema before ]
      | Upsert after -> [ "S|" ^ Codec.encode_ascii t.schema after ]
      | Update (before, after) ->
        [ "U|" ^ Codec.encode_ascii t.schema before; "u|" ^ Codec.encode_ascii t.schema after ])
    t.changes

let of_lines ~table ~schema lines =
  let decode body = Codec.decode_ascii schema body in
  let rec go acc = function
    | [] -> Ok (make ~table ~schema (List.rev acc))
    | line :: rest ->
      if String.length line < 2 || line.[1] <> '|' then
        Error (Printf.sprintf "bad delta line %S" line)
      else begin
        let body = String.sub line 2 (String.length line - 2) in
        match line.[0], rest with
        | 'I', _ -> (
            match decode body with
            | Ok t -> go (Insert t :: acc) rest
            | Error e -> Error e)
        | 'D', _ -> (
            match decode body with
            | Ok t -> go (Delete t :: acc) rest
            | Error e -> Error e)
        | 'S', _ -> (
            match decode body with
            | Ok t -> go (Upsert t :: acc) rest
            | Error e -> Error e)
        | 'U', after_line :: rest'
          when String.length after_line >= 2 && after_line.[0] = 'u' && after_line.[1] = '|' -> (
            let after_body = String.sub after_line 2 (String.length after_line - 2) in
            match decode body, decode after_body with
            | Ok b, Ok a -> go (Update (b, a) :: acc) rest'
            | Error e, _ | _, Error e -> Error e)
        | 'U', _ -> Error "update line without its after-image line"
        | c, _ -> Error (Printf.sprintf "unknown delta tag %C" c)
      end
  in
  go [] lines
