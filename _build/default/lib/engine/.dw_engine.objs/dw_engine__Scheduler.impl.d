lib/engine/scheduler.ml: Db Effect List Printexc
