module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Value = Dw_relation.Value
module Expr = Dw_relation.Expr

type side = L | R

type projection = { out_name : string; from_side : side; from_col : string }

type t =
  | Select_project of {
      name : string;
      table : string;
      schema : Schema.t;
      filter : Expr.t option;
      project : projection list;
    }
  | Join of {
      name : string;
      left_table : string;
      left_schema : Schema.t;
      right_table : string;
      right_schema : Schema.t;
      on : (string * string) list;
      left_filter : Expr.t option;
      right_filter : Expr.t option;
      project : projection list;
    }

let name = function Select_project { name; _ } | Join { name; _ } -> name

let source_tables = function
  | Select_project { table; _ } -> [ table ]
  | Join { left_table; right_table; _ } -> [ left_table; right_table ]

let check_cols schema expr_opt cols =
  let missing = List.filter (fun c -> not (Schema.mem schema c)) cols in
  let expr_missing =
    match expr_opt with
    | None -> []
    | Some e -> List.filter (fun c -> not (Schema.mem schema c)) (Expr.columns e)
  in
  missing @ expr_missing

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match t with
  | Select_project { project = []; _ } | Join { project = []; _ } ->
    err "view %s: empty projection" (name t)
  | Select_project { schema; filter; project; _ } -> (
      match check_cols schema filter (List.map (fun p -> p.from_col) project) with
      | [] -> Ok ()
      | c :: _ -> err "view %s: unknown column %s" (name t) c)
  | Join { left_schema; right_schema; on; left_filter; right_filter; project; _ } -> (
      if on = [] then err "view %s: join without equi-join columns" (name t)
      else
        let lcols =
          List.map fst on
          @ List.filter_map (fun p -> if p.from_side = L then Some p.from_col else None) project
        in
        let rcols =
          List.map snd on
          @ List.filter_map (fun p -> if p.from_side = R then Some p.from_col else None) project
        in
        match
          check_cols left_schema left_filter lcols @ check_cols right_schema right_filter rcols
        with
        | [] ->
          (* join key types must match *)
          let mismatched =
            List.filter
              (fun (lc, rc) ->
                (Schema.column left_schema (Schema.index_of left_schema lc)).Schema.ty
                <> (Schema.column right_schema (Schema.index_of right_schema rc)).Schema.ty)
              on
          in
          (match mismatched with
           | [] -> Ok ()
           | (lc, rc) :: _ -> err "view %s: join key type mismatch %s/%s" (name t) lc rc)
        | c :: _ -> err "view %s: unknown column %s" (name t) c)

let output_schema t =
  let col_of schema p =
    let src = Schema.column schema (Schema.index_of schema p.from_col) in
    { Schema.name = p.out_name; ty = src.Schema.ty; nullable = src.Schema.nullable }
  in
  match t with
  | Select_project { schema; project; _ } ->
    Schema.make ~key_arity:(List.length project) (List.map (col_of schema) project)
  | Join { left_schema; right_schema; project; _ } ->
    Schema.make ~key_arity:(List.length project)
      (List.map
         (fun p -> col_of (match p.from_side with L -> left_schema | R -> right_schema) p)
         project)

let passes schema filter tuple =
  match filter with None -> true | Some e -> Expr.eval_pred schema tuple e

let project_row schema project tuple =
  Array.of_list (List.map (fun p -> tuple.(Schema.index_of schema p.from_col)) project)

let project_sp t tuple =
  match t with
  | Select_project { schema; filter; project; _ } ->
    if passes schema filter tuple then Some (project_row schema project tuple) else None
  | Join _ -> invalid_arg "Spj_view.project_sp: join view"

let join_pairs ~on ~left_schema ~right_schema l r =
  List.for_all
    (fun (lc, rc) ->
      Value.equal l.(Schema.index_of left_schema lc) r.(Schema.index_of right_schema rc))
    on

let project_join project ~left_schema ~right_schema l r =
  Array.of_list
    (List.map
       (fun p ->
         match p.from_side with
         | L -> l.(Schema.index_of left_schema p.from_col)
         | R -> r.(Schema.index_of right_schema p.from_col))
       project)

let join_contribution t side tuple ~other_rows =
  match t with
  | Select_project _ -> invalid_arg "Spj_view.join_contribution: select-project view"
  | Join { left_schema; right_schema; on; left_filter; right_filter; project; _ } -> (
      match side with
      | L ->
        if not (passes left_schema left_filter tuple) then []
        else
          other_rows
          |> List.filter (fun r ->
                 passes right_schema right_filter r
                 && join_pairs ~on ~left_schema ~right_schema tuple r)
          |> List.map (fun r -> project_join project ~left_schema ~right_schema tuple r)
      | R ->
        if not (passes right_schema right_filter tuple) then []
        else
          other_rows
          |> List.filter (fun l ->
                 passes left_schema left_filter l
                 && join_pairs ~on ~left_schema ~right_schema l tuple)
          |> List.map (fun l -> project_join project ~left_schema ~right_schema l tuple))

module RowMap = Map.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

let bag_of_list rows =
  List.fold_left
    (fun acc row ->
      RowMap.update row (function None -> Some 1 | Some n -> Some (n + 1)) acc)
    RowMap.empty rows

let eval t ~rows_of =
  let rows =
    match t with
    | Select_project { table; _ } ->
      List.filter_map (project_sp t) (rows_of table)
    | Join { left_table; right_table; left_schema; right_schema; on; left_filter; right_filter;
             project; _ } ->
      let lefts = List.filter (passes left_schema left_filter) (rows_of left_table) in
      let rights = List.filter (passes right_schema right_filter) (rows_of right_table) in
      List.concat_map
        (fun l ->
          List.filter_map
            (fun r ->
              if join_pairs ~on ~left_schema ~right_schema l r then
                Some (project_join project ~left_schema ~right_schema l r)
              else None)
            rights)
        lefts
  in
  RowMap.bindings (bag_of_list rows)
