type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let to_string ?(pretty = false) t =
  let b = Buffer.create 256 in
  let pad n = if pretty then Buffer.add_string b (String.make (2 * n) ' ') in
  let nl () = if pretty then Buffer.add_char b '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int n -> Buffer.add_string b (string_of_int n)
    | Float f ->
      (* JSON has no nan/inf; clamp to null so emitted files always parse *)
      if Float.is_nan f || Float.abs f = Float.infinity then Buffer.add_string b "null"
      else Buffer.add_string b (float_repr f)
    | String s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
      Buffer.add_char b '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin Buffer.add_char b ','; nl () end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin Buffer.add_char b ','; nl () end;
          pad (depth + 1);
          escape_string b k;
          Buffer.add_string b (if pretty then ": " else ":");
          go (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char b '}'
  in
  go 0 t;
  Buffer.contents b

(* ---------- parsing (recursive descent) ---------- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
         | '"' -> Buffer.add_char b '"'; advance ()
         | '\\' -> Buffer.add_char b '\\'; advance ()
         | '/' -> Buffer.add_char b '/'; advance ()
         | 'b' -> Buffer.add_char b '\b'; advance ()
         | 'f' -> Buffer.add_char b '\012'; advance ()
         | 'n' -> Buffer.add_char b '\n'; advance ()
         | 'r' -> Buffer.add_char b '\r'; advance ()
         | 't' -> Buffer.add_char b '\t'; advance ()
         | 'u' ->
           advance ();
           if !pos + 4 > n then fail "short \\u escape";
           let code =
             try int_of_string ("0x" ^ String.sub s !pos 4)
             with _ -> fail "bad \\u escape"
           in
           pos := !pos + 4;
           (* encode the code point as UTF-8 (BMP only, no surrogate pairing) *)
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
         | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        go ()
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.contains tok '.' || String.contains tok 'e' || String.contains tok 'E' then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail ("bad number " ^ tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail ("bad number " ^ tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ---------- accessors ---------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_list = function List items -> Some items | _ -> None

let to_number = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None

let to_str = function String s -> Some s | _ -> None
