lib/relation/tuple.ml: Array Format List Printf Schema String Value
