open Effect
open Effect.Deep

type _ Effect.t += Yield : unit Effect.t | Lock_wait : int list -> unit Effect.t

type session = {
  name : string;
  start_at : int;
  work : unit -> unit;
}

type session_report = {
  session : string;
  arrived : int;
  started : int;
  finished : int;
  blocked_slices : int;
  failed : string option;
}

type report = {
  total_slices : int;
  sessions : session_report list;
}

type pause_kind = P_yield | P_blocked

type status =
  | Not_started
  | Paused of (unit, unit) continuation * pause_kind
  | Finished_ok
  | Finished_exn of string

type state = {
  spec : session;
  mutable status : status;
  mutable started_slice : int;   (* -1 until first run *)
  mutable finished_slice : int;
  mutable blocked_from : int;    (* -1 when not in a blocked episode *)
  mutable blocked_total : int;
}

let run db sessions =
  let states =
    List.map
      (fun spec ->
        { spec; status = Not_started; started_slice = -1; finished_slice = -1;
          blocked_from = -1; blocked_total = 0 })
      sessions
  in
  let slice = ref 0 in
  Db.set_yield_hook db (Some (fun () -> perform Yield));
  Db.set_block_hook db (Some (fun ~txid:_ ~blockers -> perform (Lock_wait blockers)));
  let close_blocked_episode st =
    if st.blocked_from >= 0 then begin
      st.blocked_total <- st.blocked_total + (!slice - st.blocked_from);
      st.blocked_from <- -1
    end
  in
  (* run one step of a session: returns true if global progress was made *)
  let step st =
    let dispatch thunk =
      match_with thunk ()
        {
          retc =
            (fun () ->
              close_blocked_episode st;
              st.status <- Finished_ok;
              st.finished_slice <- !slice;
              incr slice);
          exnc =
            (fun e ->
              close_blocked_episode st;
              st.status <- Finished_exn (Printexc.to_string e);
              st.finished_slice <- !slice;
              incr slice);
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Yield ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    close_blocked_episode st;
                    st.status <- Paused (k, P_yield);
                    incr slice)
              | Lock_wait _ ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    if st.blocked_from < 0 then st.blocked_from <- !slice;
                    st.status <- Paused (k, P_blocked))
              | _ -> None);
        }
    in
    match st.status with
    | Not_started ->
      st.started_slice <- !slice;
      dispatch st.spec.work;
      true
    | Paused (k, kind) ->
      (* resume the one-shot continuation bare: its original deep handler
         (installed at first dispatch) processes the next suspension and
         updates [st.status] before [continue] returns here.  Wrapping the
         resume in a fresh [match_with] would make this frame's [retc]
         fire as soon as the inner handler returns — wrongly finishing the
         session after one step. *)
      let was_blocked = kind = P_blocked in
      continue k ();
      (* progress = it did something other than immediately re-block *)
      (match st.status, was_blocked with
       | Paused (_, P_blocked), true -> false
       | _ -> true)
    | Finished_ok | Finished_exn _ -> false
  in
  let all_done () =
    List.for_all
      (fun st -> match st.status with Finished_ok | Finished_exn _ -> true | _ -> false)
      states
  in
  let runnable st =
    match st.status with
    | Finished_ok | Finished_exn _ -> false
    | Not_started -> st.spec.start_at <= !slice
    | Paused _ -> true
  in
  (* if only future arrivals remain, jump the clock to the next arrival *)
  let advance_to_next_arrival () =
    let pending =
      List.filter_map
        (fun st -> match st.status with Not_started -> Some st.spec.start_at | _ -> None)
        states
    in
    match pending with
    | [] -> ()
    | arrivals ->
      let next = List.fold_left min max_int arrivals in
      if next > !slice then slice := next
  in
  (try
     while not (all_done ()) do
       let progressed = ref false in
       List.iter (fun st -> if runnable st then if step st then progressed := true) states;
       if not !progressed then begin
         (* nothing ran: either waiting for arrivals, or every live session
            is lock-blocked with no one to release (should be prevented by
            deadlock detection) *)
         let had_arrivals =
           List.exists (fun st -> st.status = Not_started) states
         in
         if had_arrivals then advance_to_next_arrival ()
         else begin
           List.iter
             (fun st ->
               match st.status with
               | Paused (k, _) ->
                 close_blocked_episode st;
                 st.status <- Finished_exn "stalled: mutual lock wait";
                 st.finished_slice <- !slice;
                 discontinue k Exit |> ignore
               | _ -> ())
             states;
           raise Exit
         end
       end
     done
   with Exit -> ());
  Db.set_yield_hook db None;
  Db.set_block_hook db None;
  {
    total_slices = !slice;
    sessions =
      List.map
        (fun st ->
          {
            session = st.spec.name;
            arrived = st.spec.start_at;
            started = st.started_slice;
            finished = st.finished_slice;
            blocked_slices = st.blocked_total;
            failed =
              (match st.status with
               | Finished_exn msg -> Some msg
               | Finished_ok | Not_started | Paused _ -> None);
          })
        states;
  }
