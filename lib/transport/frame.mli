(** Typed frames for the extraction stream: data payloads interleaved
    with the low/high watermark brackets a chunked bootstrap
    ({!Dw_etl.Bootstrap}) injects around each chunk select, DBLog-style.
    Frames ride as opaque payloads inside {!Persistent_queue} messages,
    so the queue's checksums and redelivery semantics are unchanged; a
    consumer that predates this module sees watermark frames as
    unparseable deltas and must be upgraded before bootstrapping.

    Watermark frames carry the run id, the chunk index, and a [nonce]
    drawn from {!Persistent_queue.enqueued_total} at enqueue time: after
    a crash, a resumed bootstrap opens a fresh window with a new nonce
    and ignores brackets from the dead attempt, so an orphaned low
    watermark can never trap the consumer in a half-open window. *)

type t =
  | Data of string
      (** an encoded op-delta line, opaque to the transport *)
  | Wm_low of { run : string; chunk : int; nonce : int }
      (** window opens: chunk select is about to start *)
  | Wm_high of { run : string; chunk : int; nonce : int }
      (** window closes: chunk select finished; dedup and apply *)

val encode : t -> string
(** Self-delimiting single-line encoding (data payloads pass through
    verbatim behind a tag, so any delta encoding is safe to wrap). *)

val decode : string -> (t, string) result
(** Inverse of {!encode}; [Error] names the malformed field. *)
