(* dwbench — command-line driver for the delta-extraction experiment
   suite (cmdliner interface over the same experiments bench/main.exe
   runs).

     dwbench run t1 t2 --scale 2
     dwbench run t3 w1 --json out.json   # machine-readable results
     dwbench stats t3                    # metrics tables after the run
     dwbench list
     dwbench demo            # tiny end-to-end walkthrough on stdout *)

open Cmdliner
module E = Dw_experiments
module Metrics = Dw_util.Metrics
module Json = Dw_util.Json
module Fmt_util = Dw_util.Fmt_util

let experiments =
  [
    ("t1", "Table 1: Export / Import / DBMS Loader vs delta size",
     fun ~scale -> E.Exp_dump_load.run ~scale);
    ("t2", "Table 2: timestamp extraction (file / table / table+Export)",
     fun ~scale -> ignore (E.Exp_timestamp.run_t2 ~scale));
    ("t3", "Table 3: end-to-end extract + transport + load",
     fun ~scale -> E.Exp_timestamp.run_t3 ~scale);
    ("f2", "Figure 2: trigger overhead vs transaction size",
     fun ~scale -> E.Exp_trigger.run ~scale);
    ("f2r", "Section 3.1.3: trigger capture to local vs external staging",
     fun ~scale -> E.Exp_trigger.run_remote ~scale);
    ("f3", "Figure 3: Op-Delta capture overhead vs transaction size",
     fun ~scale -> E.Exp_opdelta.run_f3 ~scale);
    ("t4", "Table 4: Op-Delta response time, DB log vs file log",
     fun ~scale -> E.Exp_opdelta.run_t4 ~scale);
    ("v1", "Section 4.1: delta volume, Op-Delta vs value delta",
     fun ~scale -> E.Exp_opdelta.run_v1 ~scale);
    ("w1", "Section 4.1: warehouse maintenance window",
     fun ~scale -> E.Exp_warehouse.run_w1 ~scale);
    ("w2", "Section 4.1: warehouse availability during maintenance",
     fun ~scale -> E.Exp_warehouse.run_w2 ~scale);
    ("w2r", "availability with real 2PL (effect-handler scheduler)",
     fun ~scale -> E.Exp_warehouse.run_w2_real ~scale);
    ("w1agg", "extension: maintenance window with an aggregate view",
     fun ~scale -> E.Exp_warehouse.run_w1_agg ~scale);
    ("w3", "snapshot-isolation reads: OLAP latency and refresh window vs locking reads",
     fun ~scale -> E.Exp_mvcc.run_w3 ~scale);
    ("t5", "batching ablation: group commit, transport coalescing, micro-batched refresh",
     fun ~scale -> E.Exp_batching.run_t5 ~scale);
    ("w4", "resumable bootstrap: crash sweep with resume, restart cost, lease exclusion",
     fun ~scale -> E.Exp_bootstrap.run_bench ~scale);
    ("w5", "domain-parallel snapshot OLAP: throughput/p95 vs domain count under refresh",
     fun ~scale -> E.Exp_parallel.run_w5 ~scale);
    ("t6", "partitioned warehouse: refresh window vs partition count, staged parallel apply",
     fun ~scale -> E.Exp_partition.run_t6 ~scale);
    ("w6", "chaos: flapping shard, circuit breakers, degraded reads, online shard rebuild",
     fun ~scale -> E.Exp_chaos.run_bench ~scale);
    ("t7", "cost-based planner vs static extraction methods under sustained shifting load",
     fun ~scale -> E.Exp_planner.run_t7 ~scale);
    ("s1", "Section 3.1.2: snapshot differential vs other methods",
     fun ~scale -> E.Exp_snapshot.run ~scale);
    ("r1", "Sections 2.2/4.1: replicated sources and reconciliation",
     fun ~scale -> E.Exp_reconcile.run ~scale);
    ("ablate", "ablations: plan mode, group commit, pool size, snapshot algorithms",
     fun ~scale -> E.Exp_ablation.run_all ~scale);
    ("crash", "robustness: crash-point sweep, faulty shipping, fault/retry counters",
     fun ~scale -> E.Crash_sim.run_bench ~scale);
    ("micro", "bechamel micro-benchmarks of engine primitives",
     fun ~scale:_ -> E.Micro.run ());
  ]

let unknown_ids ids =
  List.filter
    (fun id -> id <> "all" && not (List.exists (fun (i, _, _) -> i = id) experiments))
    ids

(* A typo'd experiment id must fail loudly (exit non-zero, valid ids in
   the message), never silently run the remaining ids — a CI job that
   misspells a gated id would otherwise pass without running it. *)
let unknown_ids_error u =
  let valid = List.map (fun (id, _, _) -> id) experiments in
  `Error
    ( false,
      Printf.sprintf "unknown experiment id%s %s (valid: %s, or 'all')"
        (if List.length u = 1 then "" else "s")
        (String.concat ", " u) (String.concat ", " valid) )

(* Run each selected experiment under a fresh sink registry: every
   counter/histogram mutation and finished span anywhere in the process
   (the experiments build many private Vfs instances, each with its own
   registry) is mirrored into the sink, giving one merged per-experiment
   view.  Returns (id, wall seconds, captured registry) per experiment. *)
let run_captured ~scale ids =
  let want id = List.mem "all" ids || List.mem id ids in
  List.filter_map
    (fun (id, _, f) ->
      if not (want id) then None
      else begin
        let sink = Metrics.create () in
        Metrics.with_sink (Some sink) (fun () ->
            let t0 = Unix.gettimeofday () in
            f ~scale;
            Some (id, Unix.gettimeofday () -. t0, sink))
      end)
    experiments

(* Aggregate completed spans by (name, parent): occurrence count and
   total time, for both the JSON payload and the stats tables. *)
let span_rollup sink =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (r : Metrics.span_record) ->
      let key = (r.span_name, r.span_parent) in
      match Hashtbl.find_opt tbl key with
      | Some (n, total) -> Hashtbl.replace tbl key (n + 1, total +. r.span_duration)
      | None ->
        Hashtbl.add tbl key (1, r.span_duration);
        order := key :: !order)
    (Metrics.spans sink);
  List.rev_map (fun key -> (key, Hashtbl.find tbl key)) !order

let experiment_json (id, wall, sink) =
  match Metrics.to_json sink with
  | Json.Obj fields -> Json.Obj (("id", Json.String id) :: ("wall_s", Json.Float wall) :: fields)
  | j -> Json.Obj [ ("id", Json.String id); ("wall_s", Json.Float wall); ("metrics", j) ]

let write_json ~file ~scale ~quick results =
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Int 1);
        ("suite", Json.String "dwbench");
        ("scale", Json.Int scale);
        ("quick", Json.Bool quick);
        ("experiments", Json.List (List.map experiment_json results));
      ]
  in
  let oc = open_out file in
  output_string oc (Json.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s (%d experiment%s)\n" file (List.length results)
    (if List.length results = 1 then "" else "s");
  (* self-validate what was just written: structural checks always, the
     full acceptance gates when the run covered the gated subset.  A
     rejected document still lands on disk for inspection, but dwbench
     exits non-zero so CI cannot ship it. *)
  let strict =
    List.for_all
      (fun id -> List.exists (fun (i, _, _) -> i = id) results)
      E.Bench_check.gated_ids
  in
  match E.Bench_check.validate ~strict doc with
  | Ok summary -> Printf.printf "bench-json: ok (%s)\n" summary
  | Error msg ->
    Printf.eprintf "bench-json: %s REJECTED: %s\n" file msg;
    exit 1

let print_stats (id, wall, sink) =
  Printf.printf "\n==== metrics: %s (wall %s) ====\n" id (Fmt_util.human_duration wall);
  let counters = Metrics.snapshot sink in
  if counters <> [] then begin
    print_newline ();
    print_string
      (Fmt_util.table ~header:[ "counter"; "value" ]
         ~rows:(List.map (fun (k, v) -> [ k; string_of_int v ]) counters))
  end;
  let gauges = Metrics.gauges sink in
  if gauges <> [] then begin
    print_newline ();
    print_string
      (Fmt_util.table ~header:[ "gauge"; "value" ]
         ~rows:(List.map (fun (k, v) -> [ k; Printf.sprintf "%.6g" v ]) gauges))
  end;
  let hists = Metrics.histograms sink in
  if hists <> [] then begin
    print_newline ();
    let d = Fmt_util.human_duration in
    print_string
      (Fmt_util.table
         ~header:[ "histogram"; "count"; "p50"; "p95"; "p99"; "max" ]
         ~rows:
           (List.map
              (fun (name, (s : Metrics.histogram_summary)) ->
                [ name; string_of_int s.count; d s.p50; d s.p95; d s.p99; d s.vmax ])
              hists))
  end;
  let rollup = span_rollup sink in
  if rollup <> [] then begin
    print_newline ();
    print_string
      (Fmt_util.table
         ~header:[ "span"; "parent"; "count"; "total" ]
         ~rows:
           (List.map
              (fun ((name, parent), (n, total)) ->
                [ name; Option.value parent ~default:"-"; string_of_int n;
                  Fmt_util.human_duration total ])
              rollup))
  end

let list_cmd =
  let doc = "List available experiments." in
  let run () =
    List.iter (fun (id, descr, _) -> Printf.printf "%-6s %s\n" id descr) experiments
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let ids_arg =
  let all = List.map (fun (id, _, _) -> id) experiments in
  let doc = Printf.sprintf "Experiment ids (%s or 'all')." (String.concat ", " all) in
  Arg.(value & pos_all string [ "all" ] & info [] ~docv:"EXPERIMENT" ~doc)

let scale_arg =
  Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N" ~doc:"Workload scale factor (>= 1).")

let quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:
          "Shrink workloads ~25x and drop repetitions: same shapes, CI-sized runtimes. \
           Numbers from quick runs are not for quoting.")

let run_cmd =
  let doc = "Run selected experiments (or all)." in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write per-experiment metrics (counters, gauges, latency histograms, span \
             rollups) as JSON to $(docv).")
  in
  let run scale quick json ids =
    if scale < 1 then `Error (false, "--scale must be >= 1")
    else
      match unknown_ids ids with
      | _ :: _ as u -> unknown_ids_error u
      | [] ->
        E.Bench_support.set_quick quick;
        (match json with
         | None ->
           let want id = List.mem "all" ids || List.mem id ids in
           List.iter (fun (id, _, f) -> if want id then f ~scale) experiments
         | Some file ->
           let results = run_captured ~scale ids in
           write_json ~file ~scale ~quick results);
        `Ok ()
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(ret (const run $ scale_arg $ quick_arg $ json_arg $ ids_arg))

let stats_cmd =
  let doc =
    "Run selected experiments and print their captured metrics: counter totals, gauges, \
     latency percentiles, and a trace-span rollup."
  in
  let run scale quick ids =
    if scale < 1 then `Error (false, "--scale must be >= 1")
    else
      match unknown_ids ids with
      | _ :: _ as u -> unknown_ids_error u
      | [] ->
        E.Bench_support.set_quick quick;
        let results = run_captured ~scale ids in
        List.iter print_stats results;
        `Ok ()
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(ret (const run $ scale_arg $ quick_arg $ ids_arg))

let compare_cmd =
  let doc =
    "Compare two dwbench --json documents with per-metric tolerances: the bench-regression \
     gate.  Exits non-zero when the candidate regresses a gated gauge out of band."
  in
  let tolerance_arg =
    Arg.(
      value & opt float 1.0
      & info [ "tolerance" ] ~docv:"FACTOR"
          ~doc:
            "Scale every per-metric band by $(docv) (2.0 doubles all bands, 0.5 halves \
             them; exact-match flags are unaffected).")
  in
  let base_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE") in
  let cand_arg = Arg.(required & pos 1 (some file) None & info [] ~docv:"CANDIDATE") in
  let read_doc path =
    match Json.of_string (In_channel.with_open_bin path In_channel.input_all) with
    | Ok doc -> Ok doc
    | Error e -> Error (Printf.sprintf "%s does not parse: %s" path e)
    | exception Sys_error e -> Error e
  in
  let run tolerance base cand =
    if tolerance <= 0.0 then `Error (false, "--tolerance must be > 0")
    else
      match read_doc base, read_doc cand with
      | Error e, _ | _, Error e -> `Error (false, e)
      | Ok base, Ok cand -> (
          match E.Bench_compare.compare_docs ~tolerance ~base ~cand () with
          | Error e -> `Error (false, e)
          | Ok report ->
            print_string (E.Bench_compare.render report);
            if report.E.Bench_compare.failures > 0 then exit 1;
            `Ok ())
  in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(ret (const run $ tolerance_arg $ base_arg $ cand_arg))

let demo_cmd =
  let doc = "A miniature end-to-end delta extraction walkthrough." in
  let run () =
    let module Vfs = Dw_storage.Vfs in
    let module Db = Dw_engine.Db in
    let module Workload = Dw_workload.Workload in
    let module Trigger_extract = Dw_core.Trigger_extract in
    let module Opdelta_capture = Dw_core.Opdelta_capture in
    let db = Db.create ~vfs:(Vfs.in_memory ()) ~name:"demo" () in
    let _ = Workload.create_parts_table db in
    Workload.load_parts db ~rows:100 ();
    let h = Trigger_extract.install db ~table:"parts" in
    let cap = Opdelta_capture.create db ~sink:(Opdelta_capture.To_file "op.log") in
    (match Opdelta_capture.exec_txn cap [ Workload.update_parts_stmt ~first_id:1 ~size:50 ] with
     | Ok _ -> ()
     | Error e -> failwith e);
    let vd = Trigger_extract.collect db h in
    Printf.printf
      "updated 50 of 100 rows in one transaction:\n  value delta: %d images, %d bytes\n  \
       op-delta:    1 statement, %d bytes\n"
      (Dw_core.Delta.image_count vd)
      (Dw_core.Delta.size_bytes vd)
      (Opdelta_capture.captured_bytes cap)
  in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const run $ const ())

let () =
  let doc = "delta-extraction experiment suite (Ram & Do, ICDE 2000 reproduction)" in
  let info = Cmd.info "dwbench" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ run_cmd; stats_cmd; compare_cmd; list_cmd; demo_cmd ]))
