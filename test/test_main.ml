let () =
  Alcotest.run "dw-delta"
    [
      ("util", Test_util.suite);
      ("relation", Test_relation.suite);
      ("storage", Test_storage.suite);
      ("txn", Test_txn.suite);
      ("sql", Test_sql.suite);
      ("engine", Test_engine.suite);
      ("snapshot", Test_snapshot.suite);
      ("core", Test_core.suite);
      ("transport", Test_transport.suite);
      ("warehouse", Test_warehouse.suite);
      ("cots", Test_cots.suite);
      ("extensions", Test_extensions.suite);
      ("etl", Test_etl.suite);
      ("bootstrap", Test_bootstrap.suite);
      ("failure", Test_failure.suite);
      ("batching", Test_batching.suite);
      ("crash", Test_crash.suite);
      ("mvcc", Test_mvcc.suite);
      ("parallel", Test_parallel.suite);
      ("partition", Test_partition.suite);
      ("planner", Test_planner.suite);
      ("properties", Test_properties.suite);
      ("scheduler", Test_scheduler.suite);
    ]
