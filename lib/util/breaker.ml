type state = Closed | Open | Half_open

type config = {
  failure_threshold : int;
  reset_timeout_s : float;
  probe_successes : int;
  max_reset_timeout_s : float;
  seed : int;
}

let default_config =
  {
    failure_threshold = 3;
    reset_timeout_s = 30.0;
    probe_successes = 1;
    max_reset_timeout_s = 300.0;
    seed = 17;
  }

type t = {
  cfg : config;
  clock : unit -> float;
  dwell : Backoff.t;  (* pause_s only; the breaker never sleeps *)
  mutable st : state;
  mutable failures : int;  (* consecutive, since last success *)
  mutable successes : int;  (* consecutive half-open probe successes *)
  mutable reopens : int;  (* consecutive trips without an intervening close *)
  mutable deadline : float;  (* Open: clock time the next probe is admitted *)
  mutable trips : int;
  mutable probes : int;
}

let create ?(config = default_config) ~clock () =
  if config.failure_threshold < 1 then invalid_arg "Breaker: failure_threshold < 1";
  if config.probe_successes < 1 then invalid_arg "Breaker: probe_successes < 1";
  if config.reset_timeout_s < 0.0 then invalid_arg "Breaker: reset_timeout_s < 0";
  {
    cfg = config;
    clock;
    dwell =
      Backoff.create ~sleep:ignore ~max_s:(Float.max config.max_reset_timeout_s epsilon_float)
        ~base_s:config.reset_timeout_s ~seed:config.seed ();
    st = Closed;
    failures = 0;
    successes = 0;
    reopens = 0;
    deadline = 0.0;
    trips = 0;
    probes = 0;
  }

let state t = t.st
let consecutive_failures t = t.failures
let trips t = t.trips
let probes t = t.probes

let trip t =
  t.st <- Open;
  t.trips <- t.trips + 1;
  t.successes <- 0;
  (* equal-jitter dwell, doubling with every reopen since the last close *)
  t.deadline <- t.clock () +. Backoff.pause_s t.dwell ~attempt:t.reopens;
  t.reopens <- t.reopens + 1

let allow t =
  match t.st with
  | Closed | Half_open -> true
  | Open ->
    if t.clock () >= t.deadline then begin
      t.st <- Half_open;
      t.probes <- t.probes + 1;
      true
    end
    else false

let record_success t =
  match t.st with
  | Closed -> t.failures <- 0
  | Half_open ->
    t.successes <- t.successes + 1;
    if t.successes >= t.cfg.probe_successes then begin
      t.st <- Closed;
      t.failures <- 0;
      t.successes <- 0;
      t.reopens <- 0
    end
  | Open -> ()  (* a straggling success while refused changes nothing *)

let record_failure t =
  match t.st with
  | Closed ->
    t.failures <- t.failures + 1;
    if t.failures >= t.cfg.failure_threshold then trip t
  | Half_open ->
    t.failures <- t.failures + 1;
    trip t
  | Open -> ()

let reset t =
  t.st <- Closed;
  t.failures <- 0;
  t.successes <- 0;
  t.reopens <- 0;
  t.deadline <- 0.0

let force_open t = if t.st <> Open then trip t
