(* Quickstart: create a source database, run some transactions, extract
   the delta with two different methods, and look at what each captured.

     dune exec examples/quickstart.exe *)

module Vfs = Dw_storage.Vfs
module Db = Dw_engine.Db
module Value = Dw_relation.Value
module Schema = Dw_relation.Schema
module Delta = Dw_core.Delta
module Trigger_extract = Dw_core.Trigger_extract
module Opdelta_capture = Dw_core.Opdelta_capture
module Op_delta = Dw_core.Op_delta

let () =
  (* 1. a source system: one database with a PARTS table *)
  let vfs = Vfs.in_memory () in
  let db = Db.create ~vfs ~name:"erp" () in
  let schema =
    Schema.make
      [
        { Schema.name = "part_id"; ty = Value.Tint; nullable = false };
        { Schema.name = "descr"; ty = Value.Tstring 40; nullable = false };
        { Schema.name = "status"; ty = Value.Tstring 10; nullable = false };
        { Schema.name = "last_modified"; ty = Value.Tdate; nullable = false };
      ]
  in
  let _ = Db.create_table db ~name:"parts" ~ts_column:"last_modified" schema in

  (* 2. install BOTH capture mechanisms: a row-level trigger (value
     deltas) and the Op-Delta wrapper (operation deltas) *)
  let trigger = Trigger_extract.install db ~table:"parts" in
  let wrapper = Opdelta_capture.create db ~sink:(Opdelta_capture.To_file "opdelta.log") in

  (* 3. business activity, via the wrapper so Op-Deltas are captured;
     the trigger fires underneath either way *)
  let exec sql =
    match Dw_sql.Parser.parse sql with
    | Error e -> failwith e
    | Ok stmt -> (
        match Opdelta_capture.exec_txn wrapper [ stmt ] with
        | Ok _ -> ()
        | Error e -> failwith e)
  in
  exec "INSERT INTO parts VALUES (1, 'bolt M4', 'new', DATE 0)";
  exec "INSERT INTO parts VALUES (2, 'nut M4', 'new', DATE 0)";
  exec "INSERT INTO parts VALUES (3, 'washer', 'new', DATE 0)";
  exec "UPDATE parts SET status = 'revised' WHERE part_id <= 2";
  exec "DELETE FROM parts WHERE part_id = 3";

  (* 4. what did each method capture? *)
  let value_delta = Trigger_extract.collect db trigger in
  Printf.printf "trigger (value delta): %d changes, %d row images, %d bytes\n"
    (Delta.row_count value_delta)
    (Delta.image_count value_delta)
    (Delta.size_bytes value_delta);
  List.iter
    (fun change ->
      match change with
      | Delta.Insert t -> Printf.printf "  INSERT image %s\n" (Dw_relation.Tuple.to_string t)
      | Delta.Delete t -> Printf.printf "  DELETE image %s\n" (Dw_relation.Tuple.to_string t)
      | Delta.Update (b, a) ->
        Printf.printf "  UPDATE %s -> %s\n" (Dw_relation.Tuple.to_string b)
          (Dw_relation.Tuple.to_string a)
      | Delta.Upsert t -> Printf.printf "  UPSERT image %s\n" (Dw_relation.Tuple.to_string t))
    value_delta.Delta.changes;

  let op_deltas = Opdelta_capture.captured wrapper in
  Printf.printf "\nwrapper (Op-Delta): %d transactions, %d bytes total\n" (List.length op_deltas)
    (Opdelta_capture.captured_bytes wrapper);
  List.iter (fun od -> Format.printf "  %a@." Op_delta.pp od) op_deltas;

  (* 5. the paper's point, in one line *)
  Printf.printf
    "\nthe UPDATE touched 2 rows: the value delta shipped 4 row images, the Op-Delta shipped \
     one %d-byte SQL string.\n"
    (String.length "UPDATE parts SET status = 'revised' WHERE part_id <= 2")
