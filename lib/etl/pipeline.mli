(** End-to-end incremental maintenance pipelines — the paper's Figure 1
    reference architecture as a library: {e extraction} (any of the five
    methods) → {e transport} (direct or through the persistent queue) →
    {e transformation} (optional schema mapping) → {e integration}
    (batch for value deltas, per-source-transaction for Op-Deltas), with
    watermark-driven rounds.

    One pipeline maintains one source table into one warehouse replica
    (plus whatever views hang off it).  Call {!run_round} on whatever
    cadence the deployment needs; each round extracts exactly the changes
    since the previous round. *)

module Db = Dw_engine.Db
module Warehouse = Dw_warehouse.Warehouse
module Delta = Dw_core.Delta
module Transform = Dw_core.Transform
module Opdelta_capture = Dw_core.Opdelta_capture
module Snapshot_extract = Dw_core.Snapshot_extract

type method_ =
  | Timestamp
  | Trigger
  | Log
  | Snapshot of Snapshot_extract.algorithm
  | Op_delta_wrapper
  | Planned
      (** let {!Planner} pick the extraction method each round from
          observed statistics; the capture trigger {e and} the Op-Delta
          wrapper are both installed so every method's channel is
          available when the planner switches to it *)

type transport =
  | Direct              (** hand the delta over in memory *)
  | Queued of string    (** through a persistent queue on the warehouse Vfs *)

type signals = {
  lock_wait_p95_s : float;  (** source lock-wait p95 the planner scores *)
  ship_p95_s : float;       (** transport/queue latency p95 per message *)
}
(** Environment signals a [Planned] pipeline cannot measure from its own
    channels — sampled once per round from the [signals] callback. *)

type t

val create :
  ?transform:Transform.rule ->
  ?compact:bool ->
  (* net-change compaction of value deltas before shipping (default
     false); no effect on the Op-Delta method *)
  ?capture_images:bool ->
  (* force hybrid before-image capture in the Op-Delta wrapper (default
     false); required if the pipeline will {!bootstrap} *)
  ?planner:Planner.t ->
  (* the planner a [Planned] pipeline consults (default: a fresh one
     with {!Planner.default_config}); ignored for static methods *)
  ?signals:(unit -> signals) ->
  (* per-round environment sample for [Planned] mode (default: zeros) *)
  source:Db.t ->
  warehouse:Warehouse.t ->
  table:string ->
  method_:method_ ->
  transport:transport ->
  unit ->
  t
(** Installs whatever the method needs at the source (the capture trigger,
    the Op-Delta wrapper — both for [Planned]) and the watermark store.
    The warehouse must already have the destination replica ([table], or
    the transform rule's destination).  [Log] requires the source to run
    with archive logging or an extraction cadence faster than checkpoints;
    a [Planned] pipeline checks this itself and marks the log method
    ineligible when archiving is off.

    A [Planned] pipeline expects the application to submit its
    transactions through {!capture} (like [Op_delta_wrapper]) and the
    driver to {!Db.advance_day} the source between rounds (the timestamp
    channel distinguishes rounds by day). *)

val capture : t -> Opdelta_capture.t option
(** For [Op_delta_wrapper] and [Planned] pipelines: the wrapper the
    application must submit its transactions through.  [None] for other
    methods. *)

val planner : t -> Planner.t option
(** The planner of a [Planned] pipeline (decision history, switch count);
    [None] for static methods. *)

val fallbacks : t -> int
(** How many planned rounds overrode the planner's choice for
    correctness (timestamp chosen while the round's delta carried
    deletes). *)

type round_stats = {
  round : int;
  extracted_changes : int;
  shipped_bytes : int;       (** wire volume that crossed the transport *)
  extract_units : float;
      (** extraction work in abstract row-visit units (the per-method
          [work_units] hooks) — the cost the planner predicts *)
  method_used : string;
      (** {!Planner.method_name} of the channel that actually ran this
          round (for static pipelines, the configured method) *)
  integration : Warehouse.stats;
  total_seconds : float;
}

val run_round : t -> (round_stats, string) result
(** Extract-ship-transform-integrate everything since the last round, then
    advance the watermark.  In [Planned] mode: drain every channel, score
    the methods against blended per-round observations, integrate through
    the chosen channel, and append the decision to the warehouse's
    [__planner_log] — with two correctness overrides (timestamp falls
    back to the trigger delta when the round carried deletes; a snapshot
    round with a stale baseline dumps a fresh one and integrates the
    trigger delta). *)

val rounds : t -> int
(** Rounds run so far. *)

val method_name : t -> string
(** Short method label for reports. *)

val bootstrap :
  ?config:Bootstrap.config ->
  ?hook:(Bootstrap.phase -> unit) ->
  t ->
  owner:string ->
  (Bootstrap.progress, Bootstrap.error) result
(** Online initial load ({!Bootstrap}) through this pipeline's capture,
    queue and watermark store, for untransformed [Op_delta_wrapper] +
    [Queued] pipelines created with [~capture_images:true].  On success
    the pipeline watermark sits past everything the bootstrap applied
    and subsequent {!run_round}s continue incrementally. *)
