lib/warehouse/availability_sim.mli:
