(* Systematic crash-point sweep (dune alias: @crash).

   Exhaustively enumerates every write/fsync event of a small source-DB
   workload, then sweeps the standard parts workload, the persistent
   queue and the warehouse-refresh flow at stride <= 8.  Any violated
   recovery invariant prints the reproducing event index and fails the
   run. *)

module Cs = Dw_experiments.Crash_sim
module Domain_pool = Dw_util.Domain_pool

let failed = ref false

let check name report =
  Printf.printf "%-22s %5d events  %4d crash points  %d failures\n%!" name
    report.Cs.total_events report.Cs.explored
    (List.length report.Cs.failures);
  List.iter
    (fun (k, msg) ->
      failed := true;
      Printf.printf "    FAIL at event %d: %s\n%!" k msg)
    report.Cs.failures

let () =
  check "db (exhaustive)" (Cs.explore ~spec:Cs.small_db_spec ~stride:1 ());
  check "db (standard)" (Cs.explore ~spec:Cs.default_db_spec ~stride:8 ());
  check "db group-commit (exhaustive)"
    (Cs.explore ~spec:{ Cs.small_db_spec with Cs.group = 3 } ~stride:1 ());
  check "db group-commit (standard)" (Cs.explore ~spec:Cs.grouped_db_spec ~stride:8 ());
  check "queue (exhaustive)" (Cs.explore_queue ~spec:Cs.default_queue_spec ~stride:1 ());
  check "queue batched (exhaustive)"
    (Cs.explore_batched_queue ~spec:Cs.default_batched_queue_spec ~stride:1 ());
  check "refresh (stride 2)" (Cs.explore_refresh ~spec:Cs.default_refresh_spec ~stride:2 ());
  check "refresh batched (stride 2)"
    (Cs.explore_refresh_batched ~spec:Cs.default_refresh_spec ~run:3 ~stride:2 ());
  check "bootstrap (exhaustive)"
    (Dw_experiments.Exp_bootstrap.explore_bootstrap
       ~spec:{ Dw_experiments.Exp_bootstrap.rows = 48; commits = 6; chunk = 8; seed = 5 }
       ~stride:1 ());
  check "bootstrap (standard)"
    (Dw_experiments.Exp_bootstrap.explore_bootstrap ~stride:4 ());
  (* partitioned refresh: one shard fail-stops mid-refresh, the whole
     fleet is re-adopted from bytes and the staged buckets re-applied —
     merged state must match the sequential integrator and every shard's
     watermark must reach its bucket's last transaction *)
  check "partitioned (exhaustive)"
    (Dw_experiments.Exp_partition.explore_partitioned
       ~spec:{ Dw_experiments.Exp_partition.c_rows = 48; c_txns = 10; c_parts = 3; c_seed = 11 }
       ~stride:1 ());
  check "partitioned (standard)"
    (Dw_experiments.Exp_partition.explore_partitioned ~stride:3 ());
  (* online shard rebuild: the quarantined shard's slice bootstrap is
     killed at every device event, resumed from the surviving bytes
     (queue + __bootstrap_state live on the rebuilt shard's own Vfs),
     and the re-admitted fleet must converge with the sequential
     integrator at one watermark *)
  check "rebuild (stride 2)" (Dw_experiments.Exp_chaos.explore_rebuild ~stride:2 ());
  (* domain-pool clean shutdown with a sweep mid-flight: a batch is
     draining (some tasks still queued, some raising) while another domain
     issues the shutdown — the batch must complete, the error must
     propagate deterministically, and every worker must join *)
  (try
     let pool = Domain_pool.create ~domains:3 in
     let batch =
       Domain.spawn (fun () ->
           match
             Domain_pool.run_all pool
               (List.init 64 (fun i () ->
                    Unix.sleepf 0.001;
                    if i = 40 then failwith "injected mid-sweep fault";
                    i))
           with
           | _ -> `No_error
           | exception Failure msg when msg = "injected mid-sweep fault" -> `Fault
           | exception Invalid_argument _ -> `Not_started (* lost the race: fine *)
           | exception e -> raise e)
     in
     Unix.sleepf 0.01;
     Domain_pool.shutdown pool;
     (match Domain.join batch with
      | `Fault -> Printf.printf "domain pool: mid-sweep fault propagated, clean shutdown\n%!"
      | `Not_started ->
        Printf.printf "domain pool: shutdown won the race, batch refused cleanly\n%!"
      | `No_error ->
        failed := true;
        Printf.printf "domain pool: FAIL — injected fault was swallowed\n%!");
     (* after the joined shutdown, the pool must refuse further work
        rather than hang *)
     match Domain_pool.run pool (fun () -> ()) with
     | () ->
       failed := true;
       Printf.printf "domain pool: FAIL — accepted work after shutdown\n%!"
     | exception Invalid_argument _ -> ()
   with e ->
     failed := true;
     Printf.printf "domain pool: FAIL — %s\n%!" (Printexc.to_string e));
  (match Cs.ship_under_faults ~bytes:(256 * 1024) ~fault_p:0.25 ~seed:123 () with
   | Ok (stats, true) when stats.Dw_transport.File_ship.retries > 0 ->
     Printf.printf "ship under faults: %d bytes, %d retries, byte-identical\n%!"
       stats.Dw_transport.File_ship.bytes stats.Dw_transport.File_ship.retries
   | Ok (stats, true) ->
     Printf.printf "ship under faults: no fault fired (%d chunks) — seed too lucky\n%!"
       stats.Dw_transport.File_ship.chunks
   | Ok (_, false) ->
     failed := true;
     Printf.printf "ship under faults: FAIL — copy not byte-identical\n%!"
   | Error e ->
     failed := true;
     Printf.printf "ship under faults: FAIL — %s\n%!" e);
  if !failed then exit 1
