(** Virtual file system.

    Every byte the engine moves to or from "disk" goes through a [Vfs.t],
    which counts operations in a {!Dw_util.Metrics.t} registry.  Two
    backends exist: an in-memory one (deterministic, fast, used by tests
    and benches) and a real-directory one (used when persistence across
    processes matters).  Counter names: [vfs.reads], [vfs.writes],
    [vfs.read_bytes], [vfs.write_bytes], [vfs.fsyncs].

    A {!Fault.t} plan can be attached to inject deterministic faults on
    every byte path (see {!Fault} and DESIGN.md section 8): fail-stop
    crashes at a chosen write/fsync event, torn writes, transient
    write/fsync failures, and read-side bit flips.  Injected faults are
    counted under [fault.*] names. *)

type t
type file

(** Deterministic fault injection, driven by a seeded {!Dw_util.Prng.t}.

    The plan counts {e events} — every write and fsync, in order — and can
    fail-stop at a chosen event index, which is how the crash-point
    explorer enumerates "the process died here" scenarios: everything
    written before the event survives, the crashing write itself may be
    torn (a prefix survives), nothing after it happens.  Independently,
    writes and fsyncs can fail transiently (nothing persisted, retryable),
    and reads can have one bit flipped (exercises checksum paths).

    Counters: [fault.crashes], [fault.torn_writes],
    [fault.transient_writes], [fault.transient_fsyncs], [fault.bitflips]. *)
module Fault : sig
  exception Crash of { op : string; index : int }
  (** Fail-stop: the simulated process is dead.  Every subsequent
      operation on the same [t] raises [Crash] again until
      {!crash_reset}. *)

  exception Transient of string
  (** A retryable failure: the operation had no effect (transient write)
      or did not reach durability (transient fsync). *)

  type t

  val make :
    ?fail_stop_after:int ->  (* crash at this 0-based event index; -1 = never (default) *)
    ?tear_on_crash:bool ->   (* default true: the crashing write keeps a random prefix *)
    ?write_fail_p:float ->   (* transient write failure probability, default 0 *)
    ?fsync_fail_p:float ->   (* transient fsync failure probability, default 0 *)
    ?read_flip_p:float ->    (* per-read single-bit corruption probability, default 0 *)
    seed:int ->
    unit ->
    t

  val events : t -> int
  (** Write/fsync events seen so far — run a workload with a never-crashing
      plan to count its crash points. *)

  val crashed : t -> bool
end

val in_memory : ?metrics:Dw_util.Metrics.t -> ?op_delay:float -> unit -> t
(** Fresh empty in-memory file system.  [op_delay] (seconds, default 0)
    is added to every read/write/fsync — used to simulate a remote or
    slow device (e.g. the paper's staging database across a 10 Mb/s LAN,
    Section 3.1.3). *)

val on_disk : ?metrics:Dw_util.Metrics.t -> string -> t
(** [on_disk dir] is backed by directory [dir] (created if absent).  File
    names must not contain path separators. *)

val metrics : t -> Dw_util.Metrics.t

val set_fault : t -> Fault.t option -> unit
(** Attach (or clear) a fault plan.  Works on both backends. *)

val fault : t -> Fault.t option

val crash_reset : t -> unit
(** Simulate process death + restart over the surviving bytes: clears the
    open-file accounting (no descriptor survives a crash) and detaches the
    fault plan so recovery code runs fault-free.  File contents are
    untouched. *)

val create : t -> string -> file
(** Create (truncate if it exists) and open. *)

val open_existing : t -> string -> file
(** Raises [Not_found] if absent. *)

val open_or_create : t -> string -> file

val exists : t -> string -> bool
val delete : t -> string -> unit
(** No-op if absent; raises [Invalid_argument] if the file is open. *)

val list_files : t -> string list
(** Sorted names. *)

val name : file -> string
val size : file -> int

val read_at : file -> off:int -> len:int -> bytes
(** Raises [Invalid_argument] when the range extends past end of file. *)

val write_at : file -> off:int -> bytes -> unit
(** Extends the file if needed ([off] at most [size]). *)

val append : file -> bytes -> int
(** Returns the offset the data was written at. *)

val fsync : file -> unit
val close : file -> unit
val truncate : file -> int -> unit
(** Shrink to the given size. *)
