module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Value = Dw_relation.Value
module Heap_file = Dw_storage.Heap_file
module Btree = Dw_storage.Btree

type t = {
  name : string;
  schema : Schema.t;
  heap : Heap_file.t;
  mutable pk : Heap_file.rid Btree.t;
  ts_column : string option;
  ts_col_idx : int option;
  mutable ts_index : Heap_file.rid Btree.t option;  (* keyed by ts :: key columns *)
}

let ts_col_idx_of ~name ~schema ts_column =
  match ts_column with
  | None -> None
  | Some col ->
    let i =
      match Schema.index_of_opt schema col with
      | Some i -> i
      | None -> invalid_arg (Printf.sprintf "Table.create %s: no column %s" name col)
    in
    (match (Schema.column schema i).Schema.ty with
     | Value.Tdate -> Some i
     | Value.Tint | Value.Tfloat | Value.Tbool | Value.Tstring _ ->
       invalid_arg (Printf.sprintf "Table.create %s: ts column %s is not DATE" name col))

let create ~pool ~file ~name ~schema ~ts_column =
  let ts_col_idx = ts_col_idx_of ~name ~schema ts_column in
  {
    name;
    schema;
    heap = Heap_file.create pool file schema;
    pk = Btree.create ();
    ts_column;
    ts_col_idx;
    ts_index = (match ts_col_idx with Some _ -> Some (Btree.create ()) | None -> None);
  }

let name t = t.name
let schema t = t.schema
let heap t = t.heap
let ts_column t = t.ts_column

let ts_key t tuple =
  match t.ts_col_idx with
  | None -> assert false
  | Some i -> Array.append [| tuple.(i) |] (Tuple.key t.schema tuple)

let index_insert t rid tuple =
  Btree.insert t.pk (Tuple.key t.schema tuple) rid;
  match t.ts_index with
  | Some idx -> Btree.insert idx (ts_key t tuple) rid
  | None -> ()

let index_remove t tuple =
  ignore (Btree.remove t.pk (Tuple.key t.schema tuple) : bool);
  match t.ts_index with
  | Some idx -> ignore (Btree.remove idx (ts_key t tuple) : bool)
  | None -> ()

let find_key t key =
  match Btree.find t.pk key with
  | None -> None
  | Some rid -> Some (rid, Heap_file.get t.heap rid)

let raw_insert t tuple =
  Tuple.validate_exn t.schema tuple;
  let key = Tuple.key t.schema tuple in
  if Btree.mem t.pk key then
    invalid_arg
      (Printf.sprintf "Table %s: duplicate primary key %s" t.name (Tuple.to_string key));
  let rid = Heap_file.insert t.heap tuple in
  index_insert t rid tuple;
  rid

let raw_insert_blind t record = Heap_file.insert_raw t.heap record

let raw_insert_at t rid tuple =
  Tuple.validate_exn t.schema tuple;
  let key = Tuple.key t.schema tuple in
  if Btree.mem t.pk key then
    invalid_arg
      (Printf.sprintf "Table %s: duplicate primary key %s" t.name (Tuple.to_string key));
  Heap_file.force_at t.heap rid (Some (Dw_relation.Codec.encode_binary t.schema tuple));
  index_insert t rid tuple

let raw_update t rid ~old_tuple tuple =
  Tuple.validate_exn t.schema tuple;
  let old_key = Tuple.key t.schema old_tuple in
  let new_key = Tuple.key t.schema tuple in
  if Tuple.compare old_key new_key <> 0 then begin
    if Btree.mem t.pk new_key then
      invalid_arg
        (Printf.sprintf "Table %s: update collides on key %s" t.name (Tuple.to_string new_key))
  end;
  Heap_file.update t.heap rid tuple;
  index_remove t old_tuple;
  index_insert t rid tuple

let raw_delete t rid ~old_tuple =
  Heap_file.delete t.heap rid;
  index_remove t old_tuple

let rebuild_indexes t =
  (* collect, sort once, bulk-load packed trees *)
  let pk_bindings = ref [] in
  let ts_bindings = ref [] in
  Heap_file.iter t.heap (fun rid tuple ->
      pk_bindings := (Tuple.key t.schema tuple, rid) :: !pk_bindings;
      match t.ts_col_idx with
      | Some i when t.ts_index <> None ->
        ts_bindings := (Array.append [| tuple.(i) |] (Tuple.key t.schema tuple), rid)
                       :: !ts_bindings
      | Some _ | None -> ());
  let sort l = List.sort (fun (a, _) (b, _) -> Tuple.compare a b) l in
  t.pk <- Btree.of_sorted (sort !pk_bindings);
  t.ts_index <-
    (match t.ts_index with Some _ -> Some (Btree.of_sorted (sort !ts_bindings)) | None -> None)

let attach ~rebuild_index ~pool ~file ~name ~schema ~ts_column =
  let ts_col_idx = ts_col_idx_of ~name ~schema ts_column in
  let t =
    {
      name;
      schema;
      heap = Heap_file.attach pool file schema;
      pk = Btree.create ();
      ts_column;
      ts_col_idx;
      ts_index = (match ts_col_idx with Some _ -> Some (Btree.create ()) | None -> None);
    }
  in
  if rebuild_index then rebuild_indexes t;
  t

let scan t f = Heap_file.iter t.heap f

let ts_range t ~after f =
  match t.ts_index, t.ts_col_idx with
  | Some idx, Some _ ->
    (* dates are integral days: ts > after  <=>  ts >= after + 1, and the
       length-1 bound tuple is a prefix-minimum for all composite keys *)
    Btree.iter_range idx ~lo:(Btree.Incl [| Value.Date (after + 1) |]) ~hi:Btree.Unbounded
      (fun _key rid -> f rid (Heap_file.get t.heap rid))
  | (None, _ | _, None) ->
    invalid_arg (Printf.sprintf "Table %s has no timestamp column" t.name)

let key_range t ~lo ~hi f =
  let lo = match lo with Some v -> Btree.Incl [| v |] | None -> Btree.Unbounded in
  let hi =
    (* a length-1 bound tuple compares below every longer tuple with the
       same first component, so an inclusive upper bound must be widened
       for composite keys: use Excl of the successor where possible *)
    match hi with
    | None -> Btree.Unbounded
    | Some (Value.Int n) when n < max_int -> Btree.Excl [| Value.Int (n + 1) |]
    | Some (Value.Date n) when n < max_int -> Btree.Excl [| Value.Date (n + 1) |]
    | Some v ->
      (* fall back: inclusive bound with a max sentinel second component
         is not expressible generally; include equal-first-column keys by
         using the raw bound when the key is single-column *)
      if Schema.key_arity t.schema = 1 then Btree.Incl [| v |] else Btree.Unbounded
  in
  Btree.iter_range t.pk ~lo ~hi (fun _key rid -> f rid (Heap_file.get t.heap rid))

let row_count t = Heap_file.count t.heap
let cardinality t = Btree.cardinal t.pk
