module Ast = Dw_sql.Ast
module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Value = Dw_relation.Value
module Expr = Dw_relation.Expr

type rule = {
  src_table : string;
  dst_table : string;
  column_map : (string * string) list;
  constants : (string * Value.t) list;
}

let validate rule ~src ~dst =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let missing_src = List.filter (fun (s, _) -> not (Schema.mem src s)) rule.column_map in
  let missing_dst =
    List.filter (fun (_, d) -> not (Schema.mem dst d)) rule.column_map
    @ List.filter_map
        (fun (d, _) -> if Schema.mem dst d then None else Some (d, d))
        rule.constants
  in
  if rule.column_map = [] then err "rule %s->%s maps no columns" rule.src_table rule.dst_table
  else
    match missing_src, missing_dst with
    | (s, _) :: _, _ -> err "rule: source column %s missing" s
    | _, (d, _) :: _ -> err "rule: destination column %s missing" d
    | [], [] ->
      let covered =
        List.map snd rule.column_map @ List.map fst rule.constants
      in
      let uncovered =
        List.filter
          (fun c -> (not c.Schema.nullable) && not (List.mem c.Schema.name covered))
          (Schema.columns dst)
      in
      (match uncovered with
       | [] -> Ok ()
       | c :: _ -> err "rule: non-nullable destination column %s not covered" c.Schema.name)

let dst_schema rule ~src =
  let key_arity = ref 0 in
  let mapped =
    List.map
      (fun (s, d) ->
        let i = Schema.index_of src s in
        let col = Schema.column src i in
        if i < Schema.key_arity src then incr key_arity;
        { Schema.name = d; ty = col.Schema.ty; nullable = col.Schema.nullable })
      (* keep key columns first, preserving source order *)
      (List.stable_sort
         (fun (a, _) (b, _) ->
           let ka = Schema.index_of src a < Schema.key_arity src in
           let kb = Schema.index_of src b < Schema.key_arity src in
           compare (not ka) (not kb))
         rule.column_map)
  in
  let const_cols =
    List.map
      (fun (d, v) ->
        let ty =
          match v with
          | Value.Int _ -> Value.Tint
          | Value.Float _ -> Value.Tfloat
          | Value.Bool _ -> Value.Tbool
          | Value.Date _ -> Value.Tdate
          | Value.Str s -> Value.Tstring (max 1 (String.length s))
          | Value.Null -> Value.Tint
        in
        { Schema.name = d; ty; nullable = Value.is_null v })
      rule.constants
  in
  Schema.make ~key_arity:(max 1 !key_arity) (mapped @ const_cols)

let apply_tuple rule ~src ~dst tuple =
  let out = Array.make (Schema.arity dst) Value.Null in
  List.iter
    (fun (s, d) -> out.(Schema.index_of dst d) <- tuple.(Schema.index_of src s))
    rule.column_map;
  List.iter (fun (d, v) -> out.(Schema.index_of dst d) <- v) rule.constants;
  out

let apply_delta rule ~src ~dst delta =
  if delta.Delta.table <> rule.src_table then
    invalid_arg "Transform.apply_delta: delta is for a different table";
  let f = apply_tuple rule ~src ~dst in
  let changes =
    List.map
      (fun change ->
        match change with
        | Delta.Insert t -> Delta.Insert (f t)
        | Delta.Delete t -> Delta.Delete (f t)
        | Delta.Update (b, a) -> Delta.Update (f b, f a)
        | Delta.Upsert t -> Delta.Upsert (f t))
      delta.Delta.changes
  in
  Delta.make ~table:rule.dst_table ~schema:dst changes

exception Dropped of string

let rename_col rule col =
  match List.assoc_opt col rule.column_map with
  | Some d -> d
  | None -> raise (Dropped col)

let rec rename_expr rule e =
  match e with
  | Expr.Col c -> Expr.Col (rename_col rule c)
  | Expr.Lit _ -> e
  | Expr.Binop (op, a, b) -> Expr.Binop (op, rename_expr rule a, rename_expr rule b)
  | Expr.Cmp (op, a, b) -> Expr.Cmp (op, rename_expr rule a, rename_expr rule b)
  | Expr.And (a, b) -> Expr.And (rename_expr rule a, rename_expr rule b)
  | Expr.Or (a, b) -> Expr.Or (rename_expr rule a, rename_expr rule b)
  | Expr.Not a -> Expr.Not (rename_expr rule a)
  | Expr.Is_null a -> Expr.Is_null (rename_expr rule a)
  | Expr.Is_not_null a -> Expr.Is_not_null (rename_expr rule a)

let apply_stmt rule ~src stmt =
  if Ast.table_of stmt <> rule.src_table then Ok None
  else
    try
      match stmt with
      | Ast.Insert { columns; rows; _ } ->
        (* resolve each row to (source column -> value), then project *)
        let src_cols =
          match columns with
          | Some cols -> cols
          | None -> List.map (fun c -> c.Schema.name) (Schema.columns src)
        in
        let dst_cols = List.map (fun (_, d) -> d) rule.column_map in
        let project row =
          if List.length row <> List.length src_cols then
            raise (Dropped "arity mismatch in INSERT");
          let assoc = List.combine src_cols row in
          let mapped =
            List.map
              (fun (s, _) ->
                match List.assoc_opt s assoc with
                | Some v -> v
                | None -> Value.Null)
              rule.column_map
          in
          mapped @ List.map snd rule.constants
        in
        Ok
          (Some
             (Ast.Insert
                {
                  table = rule.dst_table;
                  columns = Some (dst_cols @ List.map fst rule.constants);
                  rows = List.map project rows;
                }))
      | Ast.Update { sets; where; _ } ->
        let kept_sets =
          List.filter_map
            (fun (col, e) ->
              match List.assoc_opt col rule.column_map with
              | Some d -> Some (d, rename_expr rule e)
              | None ->
                (* assignment to a dropped column is invisible downstream,
                   but only if its RHS is pure w.r.t. kept columns — it is,
                   expressions have no side effects *)
                None)
            sets
        in
        let where = Option.map (rename_expr rule) where in
        if kept_sets = [] then Ok None
        else Ok (Some (Ast.Update { table = rule.dst_table; sets = kept_sets; where }))
      | Ast.Delete { where; _ } ->
        Ok (Some (Ast.Delete { table = rule.dst_table; where = Option.map (rename_expr rule) where }))
      | Ast.Select { items; where; group_by; order_by; _ } ->
        let items =
          List.map
            (function
              | Ast.Star -> Ast.Star
              | Ast.Item (e, alias) -> Ast.Item (rename_expr rule e, alias)
              | Ast.Agg (fn, e, alias) -> Ast.Agg (fn, Option.map (rename_expr rule) e, alias))
            items
        in
        Ok
          (Some
             (Ast.Select
                {
                  items;
                  table = rule.dst_table;
                  where = Option.map (rename_expr rule) where;
                  group_by = List.map (rename_col rule) group_by;
                  order_by = List.map (rename_col rule) order_by;
                }))
      | Ast.Create_table _ -> Ok None
    with Dropped col ->
      Error
        (Printf.sprintf
           "statement references source column %s which the rule drops; capture before images \
            instead"
           col)

let apply_op_delta rule ~src od =
  let rec go acc = function
    | [] -> Ok { od with Op_delta.ops = List.rev acc }
    | (op : Op_delta.op) :: rest -> (
        if Ast.table_of op.Op_delta.stmt <> rule.src_table then go (op :: acc) rest
        else
          match apply_stmt rule ~src op.Op_delta.stmt with
          | Error e -> Error e
          | Ok None -> go acc rest
          | Ok (Some stmt) ->
            let dst = dst_schema rule ~src in
            let before_images =
              List.map (apply_tuple rule ~src ~dst) op.Op_delta.before_images
            in
            go ({ Op_delta.stmt; before_images } :: acc) rest)
  in
  go [] od.Op_delta.ops
