(* Tests for Dw_warehouse: view materialization and incremental
   maintenance (SP and join views, incl. the qcheck incremental ==
   recompute property), both integrators, and the availability
   simulation. *)

module Vfs = Dw_storage.Vfs
module Value = Dw_relation.Value
module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Expr = Dw_relation.Expr
module Db = Dw_engine.Db
module Workload = Dw_workload.Workload
module Delta = Dw_core.Delta
module Op_delta = Dw_core.Op_delta
module Spj_view = Dw_core.Spj_view
module Warehouse = Dw_warehouse.Warehouse
module Availability_sim = Dw_warehouse.Availability_sim
module Prng = Dw_util.Prng

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let parts_schema = Workload.parts_schema

let supply_schema =
  Schema.make
    [
      { Schema.name = "supply_id"; ty = Value.Tint; nullable = false };
      { Schema.name = "part_id"; ty = Value.Tint; nullable = false };
      { Schema.name = "supplier"; ty = Value.Tstring 16; nullable = false };
    ]

let proj side out_name from_col = { Spj_view.out_name; from_side = side; from_col }

let sp_view =
  Spj_view.Select_project
    {
      name = "small_qty";
      table = "parts";
      schema = parts_schema;
      filter = Some (Expr.Cmp (Expr.Lt, Expr.Col "qty", Expr.Lit (Value.Int 500)));
      project = [ proj Spj_view.L "part_id" "part_id"; proj Spj_view.L "qty" "qty" ];
    }

let join_view =
  Spj_view.Join
    {
      name = "parts_by_supplier";
      left_table = "parts";
      left_schema = parts_schema;
      right_table = "supply";
      right_schema = supply_schema;
      on = [ ("part_id", "part_id") ];
      left_filter = None;
      right_filter = None;
      project = [ proj Spj_view.R "supplier" "supplier"; proj Spj_view.L "qty" "qty" ];
    }

let gen_supply rng n =
  List.init n (fun i ->
      [| Value.Int (i + 1); Value.Int (1 + Prng.int rng 50);
         Value.Str (Printf.sprintf "sup%d" (Prng.int rng 5)) |])

let mk_wh ?(parts = 50) ?(supply = 30) ?(views = []) () =
  let wh = Warehouse.create ~vfs:(Vfs.in_memory ()) ~name:"dw" () in
  Warehouse.add_replica wh ~table:"parts" ~schema:parts_schema;
  Warehouse.add_replica wh ~table:"supply" ~schema:supply_schema;
  let rng = Prng.create ~seed:77 in
  Warehouse.load_replica wh ~table:"parts"
    (List.init parts (fun i -> Workload.gen_part rng ~id:(i + 1) ~day:0));
  Warehouse.load_replica wh ~table:"supply" (gen_supply rng supply);
  List.iter (Warehouse.define_view wh) views;
  wh

let views_agree wh name =
  let materialized = Warehouse.view_rows wh name in
  let recomputed = Warehouse.recompute_view wh name in
  List.length materialized = List.length recomputed
  && List.for_all2
       (fun (r1, c1) (r2, c2) -> Tuple.equal r1 r2 && c1 = c2)
       materialized recomputed

(* ---------- view materialization ---------- *)

let materialize_sp () =
  let wh = mk_wh ~views:[ sp_view ] () in
  check Alcotest.bool "sp view consistent" true (views_agree wh "small_qty")

let materialize_join () =
  let wh = mk_wh ~views:[ join_view ] () in
  check Alcotest.bool "join view consistent" true (views_agree wh "parts_by_supplier");
  check Alcotest.bool "join view non-empty" true (Warehouse.view_rows wh "parts_by_supplier" <> [])

let view_validation () =
  let wh = mk_wh () in
  let bad =
    Spj_view.Select_project
      { name = "bad"; table = "parts"; schema = parts_schema; filter = None;
        project = [ proj Spj_view.L "nope" "nope" ] }
  in
  (try
     Warehouse.define_view wh bad;
     Alcotest.fail "expected validation failure"
   with Invalid_argument _ -> ());
  let orphan =
    Spj_view.Select_project
      { name = "orphan"; table = "nowhere"; schema = parts_schema; filter = None;
        project = [ proj Spj_view.L "part_id" "part_id" ] }
  in
  try
    Warehouse.define_view wh orphan;
    Alcotest.fail "expected missing replica failure"
  with Invalid_argument _ -> ()

(* ---------- incremental maintenance ---------- *)

let incremental_sp_after_ops () =
  let wh = mk_wh ~views:[ sp_view ] () in
  let stats =
    Warehouse.integrate_op_delta wh
      (Op_delta.make ~txn_id:1
         (Workload.insert_parts_txn ~first_id:100 ~size:5 ~day:0 ()
          @ [ Workload.update_parts_stmt ~first_id:1 ~size:10;
              Workload.delete_parts_stmt ~first_id:20 ~size:5 ]))
  in
  check Alcotest.bool "row ops counted" true (stats.Warehouse.row_ops > 0);
  check Alcotest.bool "sp still consistent" true (views_agree wh "small_qty")

let incremental_join_after_ops () =
  let wh = mk_wh ~views:[ join_view ] () in
  ignore
    (Warehouse.integrate_op_delta wh
       (Op_delta.make ~txn_id:1
          [ Workload.update_parts_stmt ~first_id:1 ~size:20;
            Workload.delete_parts_stmt ~first_id:30 ~size:10 ]));
  check Alcotest.bool "join consistent after parts ops" true
    (views_agree wh "parts_by_supplier");
  (* now touch the right side *)
  ignore
    (Warehouse.integrate_value_delta wh
       (Delta.make ~table:"supply" ~schema:supply_schema
          [ Delta.Insert [| Value.Int 999; Value.Int 1; Value.Str "supX" |];
            Delta.Delete [| Value.Int 1; Value.Int 0; Value.Str "" |] ]));
  check Alcotest.bool "join consistent after supply ops" true
    (views_agree wh "parts_by_supplier")

let value_delta_upsert_semantics () =
  let wh = mk_wh ~views:[ sp_view ] () in
  let rng = Prng.create ~seed:5 in
  let existing = Workload.gen_part rng ~id:1 ~day:9 in
  let fresh = Workload.gen_part rng ~id:777 ~day:9 in
  let d =
    Delta.make ~table:"parts" ~schema:parts_schema
      [ Delta.Upsert existing; Delta.Upsert fresh ]
  in
  ignore (Warehouse.integrate_value_delta wh d);
  let parts = Warehouse.replica_rows wh "parts" in
  check Alcotest.int "upsert added one" 51 (List.length parts);
  check Alcotest.bool "view consistent" true (views_agree wh "small_qty")

(* both integration paths converge to the same state *)
let integrators_converge () =
  let mk () = mk_wh ~views:[ sp_view; join_view ] () in
  let wh_value = mk () and wh_op = mk () in
  (* one source transaction: update 10, delete 5 *)
  let upd = Workload.update_parts_stmt ~first_id:1 ~size:10 in
  let del = Workload.delete_parts_stmt ~first_id:40 ~size:5 in
  let od = Op_delta.make ~txn_id:1 [ upd; del ] in
  (* derive the equivalent value delta from a source system *)
  let src = Db.create ~vfs:(Vfs.in_memory ()) ~name:"src" () in
  let _ = Workload.create_parts_table src in
  Workload.load_parts ~seed:77 src ~rows:50 ();
  Db.set_day src 0;
  let handle = Dw_core.Trigger_extract.install src ~table:"parts" in
  Db.with_txn src (fun txn ->
      ignore (Db.exec src txn upd : Db.exec_result);
      ignore (Db.exec src txn del : Db.exec_result));
  let vd = Dw_core.Trigger_extract.collect src handle in
  ignore (Warehouse.integrate_value_delta wh_value vd);
  ignore (Warehouse.integrate_op_delta wh_op od);
  let sort l = List.sort Tuple.compare l in
  let rows_of wh = sort (Warehouse.replica_rows wh "parts") in
  check Alcotest.int "same cardinality" (List.length (rows_of wh_value))
    (List.length (rows_of wh_op));
  List.iter2
    (fun a b -> check Alcotest.bool "same replica rows" true (Tuple.equal a b))
    (rows_of wh_value) (rows_of wh_op);
  check Alcotest.bool "value wh views ok" true (views_agree wh_value "small_qty");
  check Alcotest.bool "op wh views ok" true (views_agree wh_op "parts_by_supplier")

(* qcheck: both integration paths converge on random workloads *)
let prop_integrators_converge =
  QCheck2.Test.make ~name:"value and op-delta integration converge" ~count:15
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let ops = Workload.gen_mix rng ~existing_ids:50 ~txns:8 ~max_txn_size:5 in
      (* derive both captures from one source run *)
      let src = Db.create ~vfs:(Vfs.in_memory ()) ~name:"src" () in
      let _ = Workload.create_parts_table src in
      Workload.load_parts ~seed:77 src ~rows:50 ();
      Db.set_day src 0;
      let handle = Dw_core.Trigger_extract.install src ~table:"parts" in
      let ods =
        List.mapi
          (fun i op ->
            let stmts = Workload.op_to_stmts ~day:0 op in
            Db.with_txn src (fun txn ->
                List.iter (fun s -> ignore (Db.exec src txn s : Db.exec_result)) stmts);
            Op_delta.make ~txn_id:i stmts)
          ops
      in
      let vd = Dw_core.Trigger_extract.collect src handle in
      let wh_value = mk_wh ~views:[ sp_view ] () in
      let wh_op = mk_wh ~views:[ sp_view ] () in
      ignore (Warehouse.integrate_value_delta wh_value vd : Warehouse.stats);
      ignore (Warehouse.integrate_op_deltas wh_op ods : Warehouse.stats);
      let rows wh = List.sort Tuple.compare (Warehouse.replica_rows wh "parts") in
      let a = rows wh_value and b = rows wh_op in
      List.length a = List.length b
      && List.for_all2 Tuple.equal a b
      && views_agree wh_value "small_qty"
      && views_agree wh_op "small_qty")

(* qcheck: random op-delta streams keep views consistent with recompute *)

let prop_views_incremental =
  QCheck2.Test.make ~name:"incremental views equal recompute" ~count:25
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let wh = mk_wh ~views:[ sp_view; join_view ] () in
      let rng = Prng.create ~seed in
      let ops = Workload.gen_mix rng ~existing_ids:50 ~txns:10 ~max_txn_size:5 in
      List.iteri
        (fun i op ->
          ignore
            (Warehouse.integrate_op_delta wh
               (Op_delta.make ~txn_id:i (Workload.op_to_stmts ~day:0 op))))
        ops;
      views_agree wh "small_qty" && views_agree wh "parts_by_supplier")

(* ---------- aggregate views ---------- *)

module Agg_view = Dw_core.Agg_view

let qty_by_price_band =
  (* qty mod 10 used as a small band key so groups are non-trivial *)
  {
    Agg_view.name = "qty_stats";
    table = "parts";
    schema = parts_schema;
    filter = Some (Expr.Cmp (Expr.Gt, Expr.Col "qty", Expr.Lit (Value.Int 0)));
    group_by = [ "qty" ];
    aggregates =
      [ ("n", Agg_view.Count); ("total_price", Agg_view.Sum "price");
        ("min_id", Agg_view.Min "part_id"); ("max_id", Agg_view.Max "part_id") ];
  }

let agg_views_agree wh name =
  let materialized = Warehouse.agg_view_rows wh name in
  let recomputed = Warehouse.recompute_agg_view wh name in
  List.length materialized = List.length recomputed
  && List.for_all2
       (fun (r1, c1) (r2, c2) -> Tuple.equal r1 r2 && c1 = c2)
       materialized recomputed

let agg_validate () =
  check Alcotest.bool "valid" true (Result.is_ok (Agg_view.validate qty_by_price_band));
  check Alcotest.bool "empty group by" true
    (Result.is_error (Agg_view.validate { qty_by_price_band with Agg_view.group_by = [] }));
  check Alcotest.bool "sum over string" true
    (Result.is_error
       (Agg_view.validate
          { qty_by_price_band with Agg_view.aggregates = [ ("s", Agg_view.Sum "descr") ] }));
  check Alcotest.bool "dup out name" true
    (Result.is_error
       (Agg_view.validate
          { qty_by_price_band with Agg_view.aggregates = [ ("qty", Agg_view.Count) ] }))

let agg_eval_basics () =
  let row id qty price =
    [| Value.Int id; Value.Str "x"; Value.Int qty; Value.Float price; Value.Date 0 |]
  in
  let rows = [ row 1 5 1.0; row 2 5 2.0; row 3 7 4.0; row 4 0 9.0 (* filtered *) ] in
  let out = Agg_view.eval qty_by_price_band ~rows in
  check Alcotest.int "two groups" 2 (List.length out);
  match out with
  | [ (g5, n5); (g7, n7) ] ->
    check Alcotest.int "group 5 size" 2 n5;
    check Alcotest.int "group 7 size" 1 n7;
    check Alcotest.bool "count" true (Value.equal g5.(1) (Value.Int 2));
    check Alcotest.bool "sum" true (Value.equal g5.(2) (Value.Float 3.0));
    check Alcotest.bool "min id" true (Value.equal g5.(3) (Value.Int 1));
    check Alcotest.bool "max id" true (Value.equal g5.(4) (Value.Int 2));
    check Alcotest.bool "g7 key" true (Value.equal g7.(0) (Value.Int 7))
  | _ -> Alcotest.fail "group shape"

let agg_materialize_and_maintain () =
  let wh = mk_wh () in
  Warehouse.define_agg_view wh qty_by_price_band;
  check Alcotest.bool "initial materialization" true (agg_views_agree wh "qty_stats");
  (* inserts, deletes, updates via op-delta integration *)
  ignore
    (Warehouse.integrate_op_delta wh
       (Op_delta.make ~txn_id:1
          (Workload.insert_parts_txn ~first_id:200 ~size:10 ~day:0 ()
           @ [ Workload.update_parts_stmt ~first_id:1 ~size:15;
               Workload.delete_parts_stmt ~first_id:30 ~size:10 ])));
  check Alcotest.bool "maintained incrementally" true (agg_views_agree wh "qty_stats")

let agg_minmax_rescan_on_delete () =
  let wh = mk_wh ~parts:0 () in
  Warehouse.define_agg_view wh qty_by_price_band;
  let row id qty price =
    [| Value.Int id; Value.Str "x"; Value.Int qty; Value.Float price; Value.Date 0 |]
  in
  (* one group, three members; delete the extremum (min and max ids) *)
  ignore
    (Warehouse.integrate_value_delta wh
       (Delta.make ~table:"parts" ~schema:parts_schema
          [ Delta.Insert (row 1 5 1.0); Delta.Insert (row 2 5 1.0); Delta.Insert (row 3 5 1.0) ]));
  ignore
    (Warehouse.integrate_value_delta wh
       (Delta.make ~table:"parts" ~schema:parts_schema [ Delta.Delete (row 3 5 1.0) ]));
  (match Warehouse.agg_view_rows wh "qty_stats" with
   | [ (g, 2) ] ->
     check Alcotest.bool "max rescanned to 2" true (Value.equal g.(4) (Value.Int 2));
     check Alcotest.bool "min still 1" true (Value.equal g.(3) (Value.Int 1))
   | _ -> Alcotest.fail "group shape");
  (* delete remaining members: group dies *)
  ignore
    (Warehouse.integrate_value_delta wh
       (Delta.make ~table:"parts" ~schema:parts_schema
          [ Delta.Delete (row 1 5 1.0); Delta.Delete (row 2 5 1.0) ]));
  check Alcotest.int "group removed" 0 (List.length (Warehouse.agg_view_rows wh "qty_stats"))

let agg_update_moves_groups () =
  let wh = mk_wh ~parts:20 () in
  Warehouse.define_agg_view wh qty_by_price_band;
  (* drive several rows into one qty bucket *)
  ignore
    (Warehouse.integrate_op_delta wh
       (Op_delta.make ~txn_id:1
          [ Dw_sql.Ast.Update
              { table = "parts";
                sets = [ ("qty", Expr.Lit (Value.Int 123)) ];
                where =
                  Some (Expr.Cmp (Expr.Le, Expr.Col "part_id", Expr.Lit (Value.Int 10))) } ]));
  check Alcotest.bool "consistent after group move" true (agg_views_agree wh "qty_stats");
  let moved =
    List.find_opt
      (fun (g, _) -> Value.equal g.(0) (Value.Int 123))
      (Warehouse.agg_view_rows wh "qty_stats")
  in
  match moved with
  | Some (_, n) -> check Alcotest.int "10 rows moved" 10 n
  | None -> Alcotest.fail "target group missing"

let prop_agg_incremental =
  QCheck2.Test.make ~name:"agg views: incremental equals recompute" ~count:20
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let wh = mk_wh () in
      Warehouse.define_agg_view wh qty_by_price_band;
      let rng = Prng.create ~seed in
      let ops = Workload.gen_mix rng ~existing_ids:50 ~txns:10 ~max_txn_size:5 in
      List.iteri
        (fun i op ->
          ignore
            (Warehouse.integrate_op_delta wh
               (Op_delta.make ~txn_id:i (Workload.op_to_stmts ~day:0 op))))
        ops;
      agg_views_agree wh "qty_stats")

(* ---------- replica-less (hybrid) maintenance ---------- *)

module Opdelta_capture = Dw_core.Opdelta_capture

let viewonly_view =
  Spj_view.Select_project
    {
      name = "vo_small_qty";
      table = "parts";
      schema = parts_schema;
      filter = Some (Expr.Cmp (Expr.Lt, Expr.Col "qty", Expr.Lit (Value.Int 500)));
      project =
        [ proj Spj_view.L "part_id" "part_id"; proj Spj_view.L "qty" "qty" ];
    }

(* run a workload through a hybrid capture at the source, feed the hybrid
   op-deltas to a replica-less warehouse, and compare its view against a
   conventional replica-based warehouse fed the same captures *)
let hybrid_capture_workload ~seed ~txns =
  let src = Db.create ~vfs:(Vfs.in_memory ()) ~name:"src" () in
  let _ = Workload.create_parts_table src in
  Db.set_day src 0;
  let cap =
    Opdelta_capture.create ~views:[ viewonly_view ] ~replicas:false src
      ~sink:(Opdelta_capture.To_file "hybrid.oplog")
  in
  let submit stmts =
    match Opdelta_capture.exec_txn cap stmts with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  in
  (* seed through the wrapper so both warehouses can start empty *)
  submit (Workload.insert_parts_txn ~first_id:1 ~size:40 ~day:0 ());
  let rng = Prng.create ~seed in
  List.iter
    (fun op -> submit (Workload.op_to_stmts ~day:0 op))
    (Workload.gen_mix rng ~existing_ids:40 ~txns ~max_txn_size:5);
  Opdelta_capture.captured cap

let viewonly_matches_replica_based ~seed () =
  let ods = hybrid_capture_workload ~seed ~txns:12 in
  (* warehouse A: replica-less, hybrid integration *)
  let wh_a = Warehouse.create ~vfs:(Vfs.in_memory ()) ~name:"dwa" () in
  Warehouse.define_viewonly_view wh_a viewonly_view;
  List.iter
    (fun od -> ignore (Warehouse.integrate_op_delta_viewonly wh_a od : Warehouse.stats))
    ods;
  (* warehouse B: conventional replica + the same view definition *)
  let wh_b = Warehouse.create ~vfs:(Vfs.in_memory ()) ~name:"dwb" () in
  Warehouse.add_replica wh_b ~table:"parts" ~schema:parts_schema;
  Warehouse.define_view wh_b
    (Spj_view.Select_project
       { name = "vo_small_qty"; table = "parts"; schema = parts_schema;
         filter = Some (Expr.Cmp (Expr.Lt, Expr.Col "qty", Expr.Lit (Value.Int 500)));
         project = [ proj Spj_view.L "part_id" "part_id"; proj Spj_view.L "qty" "qty" ] });
  List.iter
    (fun od -> ignore (Warehouse.integrate_op_delta wh_b od : Warehouse.stats))
    ods;
  let a = Warehouse.viewonly_view_rows wh_a "vo_small_qty" in
  let b = Warehouse.view_rows wh_b "vo_small_qty" in
  check Alcotest.int "same view cardinality" (List.length b) (List.length a);
  List.iter2
    (fun (ra, ca) (rb, cb) ->
      check Alcotest.bool "same view row" true (Tuple.equal ra rb && ca = cb))
    a b

let viewonly_basic = viewonly_matches_replica_based ~seed:3
let viewonly_alt = viewonly_matches_replica_based ~seed:1234

let viewonly_bare_delete_is_noop () =
  (* a delete without before images is indistinguishable from one that
     matched zero rows: it must change nothing *)
  let wh = Warehouse.create ~vfs:(Vfs.in_memory ()) ~name:"dw" () in
  Warehouse.define_viewonly_view wh viewonly_view;
  ignore
    (Warehouse.integrate_op_delta_viewonly wh
       (Op_delta.make ~txn_id:1 (Workload.insert_parts_txn ~first_id:1 ~size:3 ~day:0 ()))
      : Warehouse.stats);
  let before = Warehouse.viewonly_view_rows wh "vo_small_qty" in
  ignore
    (Warehouse.integrate_op_delta_viewonly wh
       (Op_delta.make ~txn_id:2 [ Workload.delete_parts_stmt ~first_id:1 ~size:3 ])
      : Warehouse.stats);
  check Alcotest.int "unchanged" (List.length before)
    (List.length (Warehouse.viewonly_view_rows wh "vo_small_qty"))

let viewonly_rejects_join () =
  let wh = Warehouse.create ~vfs:(Vfs.in_memory ()) ~name:"dw" () in
  try
    Warehouse.define_viewonly_view wh join_view;
    Alcotest.fail "expected join rejection"
  with Invalid_argument _ -> ()

(* ---------- OLAP queries ---------- *)

module Olap = Dw_warehouse.Olap

let olap_standard_mix () =
  let wh = mk_wh ~parts:150 () in
  match Olap.run_all wh (Olap.standard_queries ~table:"parts") with
  | _, Some e -> Alcotest.fail e
  | results, None ->
    check Alcotest.int "five queries" 5 (List.length results);
    (match results with
     | count :: _ -> check Alcotest.int "COUNT(*) is one row" 1 count.Olap.rows
     | [] -> Alcotest.fail "no results");
    let band = List.nth results 4 in
    check Alcotest.int "band query rows" 51 band.Olap.rows
    (* ids 100..150 exist out of the 100..199 band *)

let olap_rejects_dml () =
  let wh = mk_wh () in
  match Olap.run wh { Olap.name = "bad"; sql = "DELETE FROM parts" } with
  | Error _ ->
    (* and it must not have deleted anything *)
    check Alcotest.int "no side effect" 50 (List.length (Warehouse.replica_rows wh "parts"))
  | Ok _ -> Alcotest.fail "expected rejection"

(* ---------- availability simulation ---------- *)

let sim_batch_blocks_queries () =
  (* one 1000-tick batch; queries every 100 ticks, 10 ticks each *)
  let report =
    Availability_sim.run
      { write_jobs = [ 1000 ]; query_duration = 10; query_interval = 100; horizon = 1000 }
  in
  check Alcotest.bool "outage is large" true (report.Availability_sim.outage_time > 500);
  check Alcotest.bool "queries waited" true (report.Availability_sim.max_query_wait >= 800)

let sim_small_jobs_interleave () =
  (* the same 1000 ticks of maintenance, split into 100 jobs *)
  let report =
    Availability_sim.run
      { write_jobs = List.init 100 (fun _ -> 10); query_duration = 10; query_interval = 100;
        horizon = 1000 }
  in
  check Alcotest.bool "small outage" true
    (report.Availability_sim.outage_time < 200);
  check Alcotest.bool "bounded waits" true (report.Availability_sim.max_query_wait <= 20)

let sim_no_queries () =
  let report =
    Availability_sim.run
      { write_jobs = [ 50; 50 ]; query_duration = 10; query_interval = 1000; horizon = 5 }
  in
  check Alcotest.int "no queries admitted" 0 report.Availability_sim.queries_admitted;
  check Alcotest.int "maintenance time" 100 report.Availability_sim.maintenance_done

let sim_all_queries_complete () =
  let report =
    Availability_sim.run
      { write_jobs = [ 100 ]; query_duration = 5; query_interval = 50; horizon = 300 }
  in
  check Alcotest.int "completed = admitted" report.Availability_sim.queries_admitted
    report.Availability_sim.queries_completed

let sim_fifo_no_starvation () =
  (* writers keep coming; queries must still get through between jobs *)
  let report =
    Availability_sim.run
      { write_jobs = List.init 50 (fun _ -> 20); query_duration = 10; query_interval = 40;
        horizon = 900 }
  in
  check Alcotest.int "all queries done" report.Availability_sim.queries_admitted
    report.Availability_sim.queries_completed

let suite =
  [
    test "materialize sp view" materialize_sp;
    test "materialize join view" materialize_join;
    test "view validation" view_validation;
    test "incremental sp" incremental_sp_after_ops;
    test "incremental join" incremental_join_after_ops;
    test "value delta upsert" value_delta_upsert_semantics;
    test "integrators converge" integrators_converge;
    QCheck_alcotest.to_alcotest prop_views_incremental;
    QCheck_alcotest.to_alcotest prop_integrators_converge;
    test "agg validate" agg_validate;
    test "agg eval basics" agg_eval_basics;
    test "agg materialize and maintain" agg_materialize_and_maintain;
    test "agg min/max rescan on delete" agg_minmax_rescan_on_delete;
    test "agg update moves groups" agg_update_moves_groups;
    QCheck_alcotest.to_alcotest prop_agg_incremental;
    test "view-only hybrid matches replica-based" viewonly_basic;
    test "view-only hybrid matches replica-based (alt seed)" viewonly_alt;
    test "view-only bare delete is no-op" viewonly_bare_delete_is_noop;
    test "view-only rejects join views" viewonly_rejects_join;
    test "olap standard mix" olap_standard_mix;
    test "olap rejects dml" olap_rejects_dml;
    test "sim: batch blocks queries" sim_batch_blocks_queries;
    test "sim: small jobs interleave" sim_small_jobs_interleave;
    test "sim: no queries" sim_no_queries;
    test "sim: all queries complete" sim_all_queries_complete;
    test "sim: fifo no starvation" sim_fifo_no_starvation;
  ]
