module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Wal = Dw_txn.Wal
module Vfs = Dw_storage.Vfs
module Warehouse = Dw_warehouse.Warehouse
module Delta = Dw_core.Delta
module Op_delta = Dw_core.Op_delta
module Transform = Dw_core.Transform
module Watermark = Dw_core.Watermark
module Timestamp_extract = Dw_core.Timestamp_extract
module Trigger_extract = Dw_core.Trigger_extract
module Log_extract = Dw_core.Log_extract
module Snapshot_extract = Dw_core.Snapshot_extract
module Opdelta_capture = Dw_core.Opdelta_capture
module Persistent_queue = Dw_transport.Persistent_queue

type method_ =
  | Timestamp
  | Trigger
  | Log
  | Snapshot of Snapshot_extract.algorithm
  | Op_delta_wrapper

type transport = Direct | Queued of string

type t = {
  source : Db.t;
  warehouse : Warehouse.t;
  table : string;
  dst_table : string;
  method_ : method_;
  transport : transport;
  transform : Transform.rule option;
  compact : bool;
  wm : Watermark.t;
  trigger_handle : Trigger_extract.handle option;
  cap : Opdelta_capture.t option;
  queue : Persistent_queue.t option;
  mutable op_consumed : int;
  mutable snapshot_round : int;
  mutable rounds_run : int;
}

let method_name t =
  match t.method_ with
  | Timestamp -> "timestamp"
  | Trigger -> "trigger"
  | Log -> "log"
  | Snapshot _ -> "snapshot"
  | Op_delta_wrapper -> "op-delta"

let create ?transform ?(compact = false) ?(capture_images = false) ~source ~warehouse ~table
    ~method_ ~transport () =
  let dst_table =
    match transform with Some rule -> rule.Transform.dst_table | None -> table
  in
  (match Db.table_opt (Warehouse.db warehouse) dst_table with
   | Some _ -> ()
   | None ->
     invalid_arg
       (Printf.sprintf "Pipeline.create: warehouse has no replica table %s" dst_table));
  (match transform with
   | Some rule ->
     let src_schema = Table.schema (Db.table source table) in
     let dst_schema = Table.schema (Db.table (Warehouse.db warehouse) dst_table) in
     (match Transform.validate rule ~src:src_schema ~dst:dst_schema with
      | Ok () -> ()
      | Error e -> invalid_arg ("Pipeline.create: " ^ e))
   | None -> ());
  let trigger_handle =
    match method_ with Trigger -> Some (Trigger_extract.install source ~table) | _ -> None
  in
  let cap =
    match method_ with
    | Op_delta_wrapper ->
      Some
        (Opdelta_capture.create ~capture_images source
           ~sink:(Opdelta_capture.To_file (Printf.sprintf "pipeline.%s.oplog" table)))
    | _ -> None
  in
  let queue =
    match transport with
    | Direct -> None
    | Queued name -> Some (Persistent_queue.open_ (Db.vfs (Warehouse.db warehouse)) ~name)
  in
  {
    source;
    warehouse;
    table;
    dst_table;
    method_;
    transport;
    transform;
    compact;
    wm = Watermark.load (Db.vfs source) ~name:(Printf.sprintf "pipeline.%s.wm" table);
    trigger_handle;
    cap;
    queue;
    op_consumed = 0;
    snapshot_round = 0;
    rounds_run = 0;
  }

let capture t = t.cap

type round_stats = {
  round : int;
  extracted_changes : int;
  shipped_bytes : int;
  integration : Warehouse.stats;
  total_seconds : float;
}

let src_schema t = Table.schema (Db.table t.source t.table)
let dst_schema t = Table.schema (Db.table (Warehouse.db t.warehouse) t.dst_table)

(* ship a payload through the transport and hand it back at the other
   side, counting wire bytes; queued transport round-trips the encoded
   form through the persistent queue (crash-safe hand-off) *)
let ship t payloads =
  match t.queue with
  | None -> (payloads, List.fold_left (fun acc p -> acc + String.length p) 0 payloads)
  | Some q ->
    (* coalesced: one fsync covers the whole batch of payloads, and the
       consumer side acks whole runs under one sidecar update *)
    Persistent_queue.enqueue_batch q payloads;
    let rec drain acc bytes =
      match Persistent_queue.peek_run q ~max:64 with
      | [] -> (List.rev acc, bytes)
      | run ->
        Persistent_queue.ack_run q (List.length run);
        let bytes =
          List.fold_left (fun acc p -> acc + String.length p) bytes run
        in
        drain (List.rev_append run acc) bytes
    in
    drain [] 0

let extract_value_delta t =
  let mark = Watermark.get t.wm ~table:t.table in
  match t.method_ with
  | Timestamp ->
    let delta, _ =
      Timestamp_extract.extract t.source ~table:t.table ~since:mark.Watermark.day
        ~output:(Timestamp_extract.To_file (Printf.sprintf "pipeline.%s.ts.asc" t.table))
    in
    Ok delta
  | Trigger -> (
      match t.trigger_handle with
      | Some handle -> Ok (Trigger_extract.collect ~drain:true t.source handle)
      | None -> Error "trigger pipeline without handle")
  | Log ->
    let delta, _ = Log_extract.extract ~since_lsn:mark.Watermark.lsn t.source ~table:t.table () in
    Ok delta
  | Snapshot algorithm ->
    let name round = Printf.sprintf "pipeline.%s.snap.%d" t.table round in
    let prev = if t.snapshot_round = 0 then None else Some (name t.snapshot_round) in
    let dest = name (t.snapshot_round + 1) in
    (match
       Snapshot_extract.extract t.source ~table:t.table ~prev_snapshot:prev
         ~snapshot_dest:dest ~algorithm
     with
     | Ok (delta, _) ->
       (* retire the pre-previous snapshot to bound space *)
       if t.snapshot_round > 1 then Vfs.delete (Db.vfs t.source) (name (t.snapshot_round - 1));
       t.snapshot_round <- t.snapshot_round + 1;
       Ok delta
     | Error e -> Error e)
  | Op_delta_wrapper -> Error "op-delta pipeline extracts transactions, not value deltas"

let integrate_value t delta =
  (* optional compaction and transform, then wire round-trip, then batch
     integration *)
  let delta = if t.compact then Delta.compact delta else delta in
  let delta =
    match t.transform with
    | None -> delta
    | Some rule -> Transform.apply_delta rule ~src:(src_schema t) ~dst:(dst_schema t) delta
  in
  let lines = Delta.to_lines delta in
  let shipped, bytes = ship t lines in
  match Delta.of_lines ~table:t.dst_table ~schema:(dst_schema t) shipped with
  | Error e -> Error e
  | Ok received -> Ok (bytes, Warehouse.integrate_value_delta t.warehouse received)

let integrate_ops t =
  match t.cap with
  | None -> Error "not an op-delta pipeline"
  | Some cap ->
    let all = Opdelta_capture.captured cap in
    let fresh = List.filteri (fun i _ -> i >= t.op_consumed) all in
    t.op_consumed <- List.length all;
    let rec transform acc = function
      | [] -> Ok (List.rev acc)
      | od :: rest -> (
          match t.transform with
          | None -> transform (od :: acc) rest
          | Some rule -> (
              match Transform.apply_op_delta rule ~src:(src_schema t) od with
              | Ok od' -> transform (od' :: acc) rest
              | Error e -> Error e))
    in
    (match transform [] fresh with
     | Error e -> Error e
     | Ok ods ->
       let wh_db = Warehouse.db t.warehouse in
       let schema_of name = Option.map Table.schema (Db.table_opt wh_db name) in
       let lines = List.map (Op_delta.encode_line ~schema_of) ods in
       let shipped, bytes = ship t lines in
       let rec decode acc = function
         | [] -> Ok (List.rev acc)
         | line :: rest -> (
             match Op_delta.decode_line ~schema_of line with
             | Ok od -> decode (od :: acc) rest
             | Error e -> Error e)
       in
       (match decode [] shipped with
        | Error e -> Error e
        | Ok received ->
          let count =
            List.fold_left (fun acc od -> acc + List.length od.Op_delta.ops) 0 received
          in
          Ok (count, bytes, Warehouse.integrate_op_deltas t.warehouse received)))

let run_round t =
  let start = Unix.gettimeofday () in
  let finish extracted_changes shipped_bytes integration =
    t.rounds_run <- t.rounds_run + 1;
    Watermark.advance t.wm ~table:t.table
      { Watermark.day = Db.current_day t.source; lsn = Wal.next_lsn (Db.wal t.source) };
    Ok
      {
        round = t.rounds_run;
        extracted_changes;
        shipped_bytes;
        integration;
        total_seconds = Unix.gettimeofday () -. start;
      }
  in
  match t.method_ with
  | Op_delta_wrapper -> (
      match integrate_ops t with
      | Error e -> Error e
      | Ok (count, bytes, stats) -> finish count bytes stats)
  | Timestamp | Trigger | Log | Snapshot _ -> (
      match extract_value_delta t with
      | Error e -> Error e
      | Ok delta -> (
          match integrate_value t delta with
          | Error e -> Error e
          | Ok (bytes, stats) -> finish (Delta.row_count delta) bytes stats))

let rounds t = t.rounds_run

(* Online initial load through the pipeline's own capture, queue and
   watermark store: once [bootstrap] returns [complete = true], the
   pipeline watermark sits past everything the bootstrap applied and
   ordinary [run_round]s continue incremental maintenance seamlessly. *)
let bootstrap ?config ?hook t ~owner =
  let failed msg = Bootstrap.Failed ("Pipeline.bootstrap: " ^ msg) in
  match (t.method_, t.cap, t.queue, t.transform) with
  | Op_delta_wrapper, Some capture, Some queue, None ->
    if not (Opdelta_capture.captures_images capture) then
      Error (failed "pipeline was created without ~capture_images:true")
    else (
      match
        Bootstrap.start ?config ?hook ~owner ~source:t.source ~capture ~table:t.table ~queue
          ~warehouse:t.warehouse ~watermark:t.wm ()
      with
      | Error e -> Error e
      | Ok b -> (
        match Bootstrap.run b with
        | Ok p ->
          (* the steady-state consumer must not re-apply transactions the
             bootstrap already integrated *)
          t.op_consumed <- List.length (Opdelta_capture.captured capture);
          Ok p
        | Error e -> Error e))
  | Op_delta_wrapper, _, None, _ -> Error (failed "bootstrap requires queued transport")
  | Op_delta_wrapper, None, Some _, _ -> Error (failed "pipeline has no capture wrapper")
  | Op_delta_wrapper, _, _, Some _ ->
    Error (failed "bootstrap does not support transformed pipelines")
  | (Timestamp | Trigger | Log | Snapshot _), _, _, _ ->
    Error (failed "bootstrap requires the op-delta wrapper method")
