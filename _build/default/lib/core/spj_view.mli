(** SPJ (select-project-join) view definitions and their full evaluation.

    These are the warehouse views the Op-Delta maintenance algorithms of
    the paper's companion report [8] operate over.  Views are bags: the
    warehouse materialises each distinct output row with a multiplicity
    count, which is what makes projection maintainable under deletes.

    Two shapes, which cover the experiments:
    - {b select-project} over one source table;
    - {b equi-join} of two source tables with optional per-side filters
      and a projection mixing columns of both sides. *)

module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Expr = Dw_relation.Expr

type side = L | R

type projection = {
  out_name : string;
  from_side : side;   (** ignored for select-project views *)
  from_col : string;
}

type t =
  | Select_project of {
      name : string;
      table : string;
      schema : Schema.t;
      filter : Expr.t option;
      project : projection list;  (** [from_side] ignored *)
    }
  | Join of {
      name : string;
      left_table : string;
      left_schema : Schema.t;
      right_table : string;
      right_schema : Schema.t;
      on : (string * string) list;  (** left column = right column; non-empty *)
      left_filter : Expr.t option;
      right_filter : Expr.t option;
      project : projection list;
    }

val name : t -> string
val source_tables : t -> string list
val validate : t -> (unit, string) result
(** Column references exist, projection non-empty, join keys typed. *)

val output_schema : t -> Schema.t
(** Schema of the view rows (all projected columns; key spans the whole
    row — bag semantics live in the multiplicity count, not the key). *)

val eval : t -> rows_of:(string -> Tuple.t list) -> (Tuple.t * int) list
(** Full recomputation: distinct output rows with multiplicities, sorted
    by row.  [rows_of] supplies current source-table contents. *)

val project_sp : t -> Tuple.t -> Tuple.t option
(** Select-project views only: the view row produced by one source row
    ([None] if filtered out).  Raises [Invalid_argument] on Join views. *)

val join_contribution :
  t -> side -> Tuple.t -> other_rows:Tuple.t list -> Tuple.t list
(** Join views only: the view rows produced by one new/old row on the
    given side against the other side's current rows. *)
