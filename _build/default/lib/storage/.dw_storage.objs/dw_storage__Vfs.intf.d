lib/storage/vfs.mli: Dw_util
