(** Virtual file system.

    Every byte the engine moves to or from "disk" goes through a [Vfs.t],
    which counts operations in a {!Dw_util.Metrics.t} registry.  Two
    backends exist: an in-memory one (deterministic, fast, used by tests
    and benches) and a real-directory one (used when persistence across
    processes matters).  Counter names: [vfs.reads], [vfs.writes],
    [vfs.read_bytes], [vfs.write_bytes], [vfs.fsyncs].

    A {!Fault.t} plan can be attached to inject deterministic faults on
    every byte path (see {!Fault} and DESIGN.md section 8): fail-stop
    crashes at a chosen write/fsync event, torn writes, transient
    write/fsync failures, and read-side bit flips.  Injected faults are
    counted under [fault.*] names. *)

type t
type file

(** Deterministic fault injection, driven by a seeded {!Dw_util.Prng.t}.

    The plan counts {e events} — every write and fsync, in order — and can
    fail-stop at a chosen event index, which is how the crash-point
    explorer enumerates "the process died here" scenarios: everything
    written before the event survives, the crashing write itself may be
    torn (a prefix survives), nothing after it happens.  Independently,
    writes and fsyncs can fail transiently (nothing persisted, retryable),
    and reads can have one bit flipped (exercises checksum paths).

    Beyond the one-shot fail-stop, a plan can carry {e sustained}
    schedules — event-windowed degradations for chaos experiments that
    need a fault to persist across retries and restarts: raised transient
    error rates, latency spikes, and crash {e flap} schedules (the shard
    dies, comes back, dies again on a deterministic period).  Sustained
    schedules survive {!revive} (unlike the whole plan, which
    {!crash_reset} detaches), so a flapping device keeps flapping until
    the window closes.

    Counters: [fault.crashes], [fault.torn_writes],
    [fault.transient_writes], [fault.transient_fsyncs], [fault.bitflips],
    [fault.latency_spikes]. *)
module Fault : sig
  exception Crash of { op : string; index : int }
  (** Fail-stop: the simulated process is dead.  Every subsequent
      operation on the same [t] raises [Crash] again until
      {!crash_reset} or {!revive}. *)

  exception Transient of string
  (** A retryable failure: the operation had no effect (transient write)
      or did not reach durability (transient fsync). *)

  type window = { from_event : int; until_event : int }
  (** Half-open event-index range [from_event, until_event) a sustained
      schedule is active over. *)

  type sustained =
    | Error_rate of { window : window; write_p : float; fsync_p : float }
        (** Within the window, transient write/fsync probabilities are
            raised to at least these values (max with the base rates). *)
    | Latency of { window : window; delay_s : float }
        (** Within the window, every write/fsync sleeps an extra
            [delay_s] (overlapping windows sum); counted under
            [fault.latency_spikes]. *)
    | Crash_flap of { window : window; period_on : int; period_off : int }
        (** Within the window, events whose phase
            [(idx - from_event) mod (period_on + period_off)] is below
            [period_on] fail-stop the process.  After {!revive} the next
            durability event lands back on the schedule — still in an ON
            phase, the shard crashes again; in an OFF gap, it works until
            the next ON phase.  [period_off = 0] means dead for the whole
            window. *)

  type t

  val make :
    ?fail_stop_after:int ->  (* crash at this 0-based event index; -1 = never (default) *)
    ?tear_on_crash:bool ->   (* default true: the crashing write keeps a random prefix *)
    ?write_fail_p:float ->   (* transient write failure probability, default 0 *)
    ?fsync_fail_p:float ->   (* transient fsync failure probability, default 0 *)
    ?read_flip_p:float ->    (* per-read single-bit corruption probability, default 0 *)
    ?sustained:sustained list ->  (* event-windowed schedules, default [] *)
    seed:int ->
    unit ->
    t
  (** Raises [Invalid_argument] on a malformed sustained schedule:
      negative window bound, probability outside [0, 1], negative
      latency, [period_on < 1], or [period_off < 0]. *)

  val events : t -> int
  (** Write/fsync events seen so far — run a workload with a never-crashing
      plan to count its crash points. *)

  val crashed : t -> bool
end

val in_memory : ?metrics:Dw_util.Metrics.t -> ?op_delay:float -> unit -> t
(** Fresh empty in-memory file system.  [op_delay] (seconds, default 0)
    is added to every read/write/fsync — used to simulate a remote or
    slow device (e.g. the paper's staging database across a 10 Mb/s LAN,
    Section 3.1.3). *)

val on_disk : ?metrics:Dw_util.Metrics.t -> string -> t
(** [on_disk dir] is backed by directory [dir] (created if absent).  File
    names must not contain path separators. *)

val metrics : t -> Dw_util.Metrics.t

val set_fault : t -> Fault.t option -> unit
(** Attach (or clear) a fault plan.  Works on both backends. *)

val fault : t -> Fault.t option

val crash_reset : t -> unit
(** Simulate process death + restart over the surviving bytes: clears the
    open-file accounting (no descriptor survives a crash) and detaches the
    fault plan so recovery code runs fault-free.  File contents are
    untouched. *)

val revive : t -> unit
(** Restart the process but keep the device on its fault schedule: clears
    the open-file accounting and the plan's dead flag (and any one-shot
    fail-stop), but the sustained schedules and the event counter
    survive.  This is the half-open probe's view of the world — a revived
    shard whose flap window is still in an ON phase crashes again on its
    next durability event.  No-op on the plan if none is attached. *)

val create : t -> string -> file
(** Create (truncate if it exists) and open. *)

val open_existing : t -> string -> file
(** Raises [Not_found] if absent. *)

val open_or_create : t -> string -> file

val exists : t -> string -> bool
val delete : t -> string -> unit
(** No-op if absent; raises [Invalid_argument] if the file is open. *)

val list_files : t -> string list
(** Sorted names. *)

val name : file -> string
val size : file -> int

val read_at : file -> off:int -> len:int -> bytes
(** Raises [Invalid_argument] when the range extends past end of file. *)

val write_at : file -> off:int -> bytes -> unit
(** Extends the file if needed ([off] at most [size]). *)

val append : file -> bytes -> int
(** Returns the offset the data was written at. *)

val fsync : file -> unit
val close : file -> unit
val truncate : file -> int -> unit
(** Shrink to the given size. *)
