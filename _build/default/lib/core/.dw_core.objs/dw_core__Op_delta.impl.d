lib/core/op_delta.ml: Buffer Char Dw_relation Dw_sql Format Hashtbl List Printf String
