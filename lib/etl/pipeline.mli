(** End-to-end incremental maintenance pipelines — the paper's Figure 1
    reference architecture as a library: {e extraction} (any of the five
    methods) → {e transport} (direct or through the persistent queue) →
    {e transformation} (optional schema mapping) → {e integration}
    (batch for value deltas, per-source-transaction for Op-Deltas), with
    watermark-driven rounds.

    One pipeline maintains one source table into one warehouse replica
    (plus whatever views hang off it).  Call {!run_round} on whatever
    cadence the deployment needs; each round extracts exactly the changes
    since the previous round. *)

module Db = Dw_engine.Db
module Warehouse = Dw_warehouse.Warehouse
module Delta = Dw_core.Delta
module Transform = Dw_core.Transform
module Opdelta_capture = Dw_core.Opdelta_capture
module Snapshot_extract = Dw_core.Snapshot_extract

type method_ =
  | Timestamp
  | Trigger
  | Log
  | Snapshot of Snapshot_extract.algorithm
  | Op_delta_wrapper

type transport =
  | Direct              (** hand the delta over in memory *)
  | Queued of string    (** through a persistent queue on the warehouse Vfs *)

type t

val create :
  ?transform:Transform.rule ->
  ?compact:bool ->
  (* net-change compaction of value deltas before shipping (default
     false); no effect on the Op-Delta method *)
  ?capture_images:bool ->
  (* force hybrid before-image capture in the Op-Delta wrapper (default
     false); required if the pipeline will {!bootstrap} *)
  source:Db.t ->
  warehouse:Warehouse.t ->
  table:string ->
  method_:method_ ->
  transport:transport ->
  unit ->
  t
(** Installs whatever the method needs at the source (the capture trigger,
    the Op-Delta wrapper) and the watermark store.  The warehouse must
    already have the destination replica ([table], or the transform rule's
    destination).  [Log] requires the source to run with archive logging
    or an extraction cadence faster than checkpoints. *)

val capture : t -> Opdelta_capture.t option
(** For [Op_delta_wrapper] pipelines: the wrapper the application must
    submit its transactions through.  [None] for other methods. *)

type round_stats = {
  round : int;
  extracted_changes : int;
  shipped_bytes : int;       (** wire volume that crossed the transport *)
  integration : Warehouse.stats;
  total_seconds : float;
}

val run_round : t -> (round_stats, string) result
(** Extract-ship-transform-integrate everything since the last round, then
    advance the watermark. *)

val rounds : t -> int
(** Rounds run so far. *)

val method_name : t -> string
(** Short method label for reports. *)

val bootstrap :
  ?config:Bootstrap.config ->
  ?hook:(Bootstrap.phase -> unit) ->
  t ->
  owner:string ->
  (Bootstrap.progress, Bootstrap.error) result
(** Online initial load ({!Bootstrap}) through this pipeline's capture,
    queue and watermark store, for untransformed [Op_delta_wrapper] +
    [Queued] pipelines created with [~capture_images:true].  On success
    the pipeline watermark sits past everything the bootstrap applied
    and subsequent {!run_round}s continue incrementally. *)
