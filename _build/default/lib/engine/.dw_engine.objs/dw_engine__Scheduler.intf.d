lib/engine/scheduler.mli: Db
