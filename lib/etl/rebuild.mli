(** Online rebuild of one quarantined shard of a partitioned fleet — a
    {e slice} of the {!Bootstrap} machinery.

    When a shard of a {!Dw_warehouse.Partitioned} fleet is quarantined
    and will not stabilise through half-open probes, the fleet keeps
    serving degraded reads while this module rebuilds the shard from the
    live source: {!Dw_warehouse.Partitioned.begin_rebuild} swaps in a
    fresh empty shard (replicated tables copied from a healthy donor),
    then a {!Bootstrap} run restricted to the shard's partition reloads
    its fact-table slice online — chunk rows filtered to the keys
    {!Dw_warehouse.Partition.route_key} assigns the shard, replayed
    delta transactions sliced through {!Stage.split} so only the ops the
    shard owns re-execute (txn ids preserved, so the exactly-once mark
    still advances over fully-foreign transactions).  When the bootstrap
    reaches its consistent snapshot,
    {!Dw_warehouse.Partitioned.readmit} verifies the spec and the
    watermark catch-up and returns the shard to [Healthy].

    The rebuild's queue ([rebuild.q]) and its [__bootstrap_state] row
    live on the {e rebuilt shard's own} Vfs, so a crash at any point
    during the rebuild is resumable: {!resume_shard} re-adopts the
    surviving bytes ({!Dw_warehouse.Partitioned.reattach_rebuilding}
    with the bootstrap-state table in the catalog) and continues from
    the durable cursor.

    Replicated (non-fact) tables must stay quiescent during a rebuild —
    the slice replay applies fact-table deltas only. *)

module Db = Dw_engine.Db

type outcome = {
  progress : Bootstrap.progress;  (** the underlying bootstrap's counters *)
  watermark : int;
      (** applied-through source txn id the shard was re-admitted at *)
}

val queue_name : string
(** ["rebuild.q"] — the rebuild queue file on the shard's Vfs. *)

val rebuild_shard :
  ?config:Bootstrap.config ->
  ?hook:(Bootstrap.phase -> unit) ->
  ?donor:int ->
  owner:string ->
  source:Db.t ->
  capture:Dw_core.Opdelta_capture.t ->
  watermark:Dw_core.Watermark.t ->
  fleet:Dw_warehouse.Partitioned.t ->
  shard:int ->
  unit ->
  (outcome, Bootstrap.error) result
(** Swap in a fresh shard ({!Dw_warehouse.Partitioned.begin_rebuild}
    with [donor]), bootstrap its partition slice from [source], and
    re-admit it.  [capture] must force hybrid images and [watermark] is
    the rebuild's own cursor/watermark store (keep it separate from the
    steady-state pipeline's).  Raises [Invalid_argument] via
    [begin_rebuild]/[readmit] on state-machine misuse; lets
    {!Dw_storage.Vfs.Fault.Crash} propagate (resume with
    {!resume_shard}). *)

val resume_shard :
  ?config:Bootstrap.config ->
  ?hook:(Bootstrap.phase -> unit) ->
  owner:string ->
  source:Db.t ->
  capture:Dw_core.Opdelta_capture.t ->
  watermark:Dw_core.Watermark.t ->
  fleet:Dw_warehouse.Partitioned.t ->
  shard:int ->
  unit ->
  (outcome, Bootstrap.error) result
(** Resume a rebuild interrupted by a crash: re-adopt the shard's
    surviving bytes and continue the bootstrap from its durable chunk
    cursor (at most one chunk of work is redone), then re-admit. *)
