lib/engine/db.mli: Dw_relation Dw_sql Dw_storage Dw_txn Dw_util Table Trigger
