module Expr = Dw_relation.Expr
module Value = Dw_relation.Value

let agg_name = function
  | Ast.Count_star | Ast.Count -> "COUNT"
  | Ast.Sum -> "SUM"
  | Ast.Avg -> "AVG"
  | Ast.Min -> "MIN"
  | Ast.Max -> "MAX"

let item_to_string = function
  | Ast.Star -> "*"
  | Ast.Item (e, None) -> Expr.to_string e
  | Ast.Item (e, Some alias) -> Expr.to_string e ^ " AS " ^ alias
  | Ast.Agg (fn, e, alias) ->
    let body = match e with None -> "*" | Some e -> Expr.to_string e in
    Printf.sprintf "%s(%s)%s" (agg_name fn) body
      (match alias with None -> "" | Some a -> " AS " ^ a)

let ty_to_sql = function
  | Value.Tint -> "INT"
  | Value.Tfloat -> "FLOAT"
  | Value.Tbool -> "BOOL"
  | Value.Tdate -> "DATE"
  | Value.Tstring n -> Printf.sprintf "STRING(%d)" n

let column_def_to_string (c : Ast.column_def) =
  Printf.sprintf "%s %s%s%s" c.Ast.col_name (ty_to_sql c.Ast.col_ty)
    (if c.Ast.col_nullable then "" else " NOT NULL")
    (if c.Ast.col_key then " KEY" else "")

let to_string = function
  | Ast.Select { items; table; where; group_by; order_by } ->
    let buf = Buffer.create 64 in
    Buffer.add_string buf "SELECT ";
    Buffer.add_string buf (String.concat ", " (List.map item_to_string items));
    Buffer.add_string buf " FROM ";
    Buffer.add_string buf table;
    (match where with
     | Some e ->
       Buffer.add_string buf " WHERE ";
       Buffer.add_string buf (Expr.to_string e)
     | None -> ());
    if group_by <> [] then begin
      Buffer.add_string buf " GROUP BY ";
      Buffer.add_string buf (String.concat ", " group_by)
    end;
    if order_by <> [] then begin
      Buffer.add_string buf " ORDER BY ";
      Buffer.add_string buf (String.concat ", " order_by)
    end;
    Buffer.contents buf
  | Ast.Insert { table; columns; rows } ->
    let cols =
      match columns with
      | None -> ""
      | Some cs -> " (" ^ String.concat ", " cs ^ ")"
    in
    let row vs = "(" ^ String.concat ", " (List.map Value.to_sql_literal vs) ^ ")" in
    Printf.sprintf "INSERT INTO %s%s VALUES %s" table cols
      (String.concat ", " (List.map row rows))
  | Ast.Update { table; sets; where } ->
    let set_str =
      String.concat ", "
        (List.map (fun (c, e) -> Printf.sprintf "%s = %s" c (Expr.to_string e)) sets)
    in
    let where_str =
      match where with Some e -> " WHERE " ^ Expr.to_string e | None -> ""
    in
    Printf.sprintf "UPDATE %s SET %s%s" table set_str where_str
  | Ast.Delete { table; where } ->
    let where_str =
      match where with Some e -> " WHERE " ^ Expr.to_string e | None -> ""
    in
    Printf.sprintf "DELETE FROM %s%s" table where_str
  | Ast.Create_table { table; columns } ->
    Printf.sprintf "CREATE TABLE %s (%s)" table
      (String.concat ", " (List.map column_def_to_string columns))

let pp ppf stmt = Format.pp_print_string ppf (to_string stmt)
let size_bytes stmt = String.length (to_string stmt)
