lib/core/timestamp_extract.ml: Array Delta Dw_engine Dw_relation Dw_storage Fun List Printf
