module Vfs = Dw_storage.Vfs
module Checksum = Dw_util.Checksum

type mark = { day : int; lsn : Dw_txn.Wal.lsn }
type cursor = { next_key : int; chunks_done : int }

type t = {
  vfs : Vfs.t;
  name : string;
  marks : (string, mark) Hashtbl.t;
  cursors : (string, cursor) Hashtbl.t;
}

(* Journal records, one per line, body guarded by an FNV-1a suffix:
     m|table|day|lsn|crc        mark advanced
     c|table|next_key|done|crc  bootstrap chunk cursor updated
     x|table|crc                chunk cursor cleared
   plus the legacy unchecksummed [table|day|lsn] lines from the rewrite
   format this journal replaced.  A record whose checksum does not match
   its body is treated as the torn tail: it and everything after it are
   ignored, so a crash mid-append falls back to the last durable state
   instead of poisoning [load]. *)

type record =
  | Mark of string * mark
  | Cursor of string * cursor
  | Clear of string

let record_body = function
  | Mark (table, m) -> Printf.sprintf "m|%s|%d|%d" table m.day m.lsn
  | Cursor (table, c) -> Printf.sprintf "c|%s|%d|%d" table c.next_key c.chunks_done
  | Clear table -> Printf.sprintf "x|%s" table

let encode_record r =
  let body = record_body r in
  Printf.sprintf "%s|%s\n" body (Checksum.hex body)

(* split off the trailing [|crc] field and verify it against the rest *)
let split_checksum line =
  match String.rindex_opt line '|' with
  | None -> None
  | Some i ->
    let body = String.sub line 0 i in
    let crc = String.sub line (i + 1) (String.length line - i - 1) in
    if String.length crc = 8 && String.equal (Checksum.hex body) crc then Some body else None

let parse_record line =
  match split_checksum line with
  | Some body -> (
    match String.split_on_char '|' body with
    | [ "m"; table; day; lsn ] -> (
      match (int_of_string_opt day, int_of_string_opt lsn) with
      | Some day, Some lsn -> Some (Mark (table, { day; lsn }))
      | _ -> None)
    | [ "c"; table; next_key; chunks_done ] -> (
      match (int_of_string_opt next_key, int_of_string_opt chunks_done) with
      | Some next_key, Some chunks_done -> Some (Cursor (table, { next_key; chunks_done }))
      | _ -> None)
    | [ "x"; table ] -> Some (Clear table)
    | _ -> None)
  | None -> (
    (* legacy full-rewrite format: [table|day|lsn], no checksum *)
    match String.split_on_char '|' line with
    | [ table; day; lsn ] -> (
      match (int_of_string_opt day, int_of_string_opt lsn) with
      | Some day, Some lsn -> Some (Mark (table, { day; lsn }))
      | _ -> None)
    | _ -> None)

let apply_record t = function
  | Mark (table, m) -> Hashtbl.replace t.marks table m
  | Cursor (table, c) -> Hashtbl.replace t.cursors table c
  | Clear table -> Hashtbl.remove t.cursors table

let load vfs ~name =
  let t = { vfs; name; marks = Hashtbl.create 8; cursors = Hashtbl.create 8 } in
  if Vfs.exists vfs name then begin
    let file = Vfs.open_existing vfs name in
    let len = Vfs.size file in
    let data = if len = 0 then "" else Bytes.to_string (Vfs.read_at file ~off:0 ~len) in
    Vfs.close file;
    let lines = String.split_on_char '\n' data in
    (* stop at the first corrupt record — it is the torn tail — and track
       the byte length of the valid prefix, so the tail can be truncated
       away; left in place, later appends would land beyond the garbage
       and be invisible to every subsequent load *)
    let rec replay valid = function
      | [] | [ "" ] -> valid
      | "" :: rest -> replay (valid + 1) rest
      | line :: rest -> (
        match parse_record line with
        | Some r ->
          apply_record t r;
          replay (valid + String.length line + 1) rest
        | None -> valid)
    in
    let valid = replay 0 lines in
    if valid < len then begin
      let file = Vfs.open_existing vfs name in
      Vfs.truncate file valid;
      Vfs.fsync file;
      Vfs.close file
    end
  end;
  t

let get t ~table =
  match Hashtbl.find_opt t.marks table with
  | Some mark -> mark
  | None -> { day = -1; lsn = 0 }

let cursor t ~table = Hashtbl.find_opt t.cursors table

let append_record t r =
  let file = Vfs.open_or_create t.vfs t.name in
  ignore (Vfs.append file (Bytes.of_string (encode_record r)) : int);
  Vfs.fsync file;
  Vfs.close file

let advance t ~table mark =
  let current = get t ~table in
  if mark.day < current.day || mark.lsn < current.lsn then
    invalid_arg
      (Printf.sprintf "Watermark.advance: regression for %s (day %d->%d, lsn %d->%d)" table
         current.day mark.day current.lsn mark.lsn);
  append_record t (Mark (table, mark));
  Hashtbl.replace t.marks table mark

let set_cursor t ~table c =
  (match Hashtbl.find_opt t.cursors table with
  | Some old when c.chunks_done < old.chunks_done ->
    invalid_arg
      (Printf.sprintf "Watermark.set_cursor: regression for %s (chunks %d->%d)" table
         old.chunks_done c.chunks_done)
  | _ -> ());
  append_record t (Cursor (table, c));
  Hashtbl.replace t.cursors table c

let clear_cursor t ~table =
  if Hashtbl.mem t.cursors table then begin
    append_record t (Clear table);
    Hashtbl.remove t.cursors table
  end

let tables t =
  Hashtbl.fold (fun table _ acc -> table :: acc) t.marks [] |> List.sort String.compare
