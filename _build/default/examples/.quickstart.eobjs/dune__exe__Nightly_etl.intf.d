examples/nightly_etl.mli:
