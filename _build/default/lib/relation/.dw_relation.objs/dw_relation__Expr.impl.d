lib/relation/expr.ml: Array Format Hashtbl List Printf Schema Value
