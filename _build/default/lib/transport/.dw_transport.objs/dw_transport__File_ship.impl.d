lib/transport/file_ship.ml: Dw_storage Printf
