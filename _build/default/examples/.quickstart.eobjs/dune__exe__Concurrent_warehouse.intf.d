examples/concurrent_warehouse.mli:
