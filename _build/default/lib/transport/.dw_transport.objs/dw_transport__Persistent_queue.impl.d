lib/transport/persistent_queue.ml: Bytes Char Dw_storage Int32 Int64 String
