(* Failure injection and nasty edge cases: buffer-pool steal + crash,
   torn queue sidecar files, key-changing updates, mid-statement errors,
   trigger stacking, and export/import corruption. *)

module Vfs = Dw_storage.Vfs
module Buffer_pool = Dw_storage.Buffer_pool
module Heap_file = Dw_storage.Heap_file
module Value = Dw_relation.Value
module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Expr = Dw_relation.Expr
module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Trigger = Dw_engine.Trigger
module Workload = Dw_workload.Workload
module Persistent_queue = Dw_transport.Persistent_queue

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

(* ---------- steal: uncommitted dirty pages reach disk, then crash ---------- *)

let steal_then_crash_undone () =
  (* a 2-frame pool forces eviction (with write-back) of pages dirtied by
     the still-running transaction; recovery must undo them *)
  let vfs = Vfs.in_memory () in
  let db = Db.create ~pool_pages:2 ~vfs ~name:"src" () in
  let _ = Workload.create_parts_table db in
  (* committed baseline *)
  Db.with_txn db (fun txn ->
      List.iter
        (fun s -> ignore (Db.exec db txn s : Db.exec_result))
        (Workload.insert_parts_txn ~first_id:1 ~size:50 ~day:0 ()));
  (* loser: dirties far more pages than the pool holds *)
  let txn = Db.begin_txn db in
  List.iter
    (fun s -> ignore (Db.exec db txn s : Db.exec_result))
    (Workload.insert_parts_txn ~first_id:1000 ~size:200 ~day:0 ());
  (* crash now (no commit, no abort); prove stolen pages reached the vfs *)
  check Alcotest.bool "pages were stolen" true
    (Dw_util.Metrics.get (Db.metrics db) "pool.writebacks" > 0);
  let stats = Db.recover db in
  check Alcotest.bool "losers undone" true (stats.Dw_txn.Recovery.undone > 0);
  check Alcotest.int "only committed rows remain" 50 (Table.row_count (Db.table db "parts"))

let steal_committed_redone () =
  let vfs = Vfs.in_memory () in
  let db = Db.create ~pool_pages:2 ~vfs ~name:"src" () in
  let _ = Workload.create_parts_table db in
  Db.with_txn db (fun txn ->
      List.iter
        (fun s -> ignore (Db.exec db txn s : Db.exec_result))
        (Workload.insert_parts_txn ~first_id:1 ~size:120 ~day:0 ()));
  ignore (Db.recover db : Dw_txn.Recovery.stats);
  check Alcotest.int "committed rows all present" 120 (Table.row_count (Db.table db "parts"))

(* ---------- torn queue sidecar ---------- *)

let torn_offset_file_redelivers () =
  let vfs = Vfs.in_memory () in
  let q = Persistent_queue.open_ vfs ~name:"q" in
  Persistent_queue.enqueue q "m1";
  Persistent_queue.enqueue q "m2";
  ignore (Persistent_queue.peek q : string option);
  Persistent_queue.ack q;
  Persistent_queue.close q;
  (* tear the offset sidecar (crash mid-write): only 4 of 8 bytes *)
  let off = Vfs.open_existing vfs "q.q.off" in
  Vfs.truncate off 4;
  Vfs.close off;
  let q2 = Persistent_queue.open_ vfs ~name:"q" in
  (* conservative restart: both messages redelivered (at-least-once) *)
  check Alcotest.int "redelivered from zero" 2 (Persistent_queue.pending q2);
  check (Alcotest.option Alcotest.string) "m1 again" (Some "m1") (Persistent_queue.peek q2);
  Persistent_queue.close q2

(* ---------- key-changing updates ---------- *)

let key_update_collision_aborts_statement () =
  let vfs = Vfs.in_memory () in
  let db = Db.create ~vfs ~name:"src" () in
  let _ = Workload.create_parts_table db in
  Db.with_txn db (fun txn ->
      List.iter
        (fun s -> ignore (Db.exec db txn s : Db.exec_result))
        (Workload.insert_parts_txn ~first_id:1 ~size:5 ~day:0 ()));
  let before =
    List.sort Tuple.compare (Db.with_txn db (fun txn -> Db.select db txn "parts" ()))
  in
  (* shift every key by +1: the scan hits key 2 while it still exists *)
  (try
     Db.with_txn db (fun txn ->
         ignore
           (Db.update_where db txn "parts"
              ~set:[ ("part_id", Expr.Binop (Expr.Add, Expr.Col "part_id", Expr.Lit (Value.Int 1))) ]
              ~where:None : int));
     Alcotest.fail "expected key collision"
   with Invalid_argument _ -> ());
  let after =
    List.sort Tuple.compare (Db.with_txn db (fun txn -> Db.select db txn "parts" ()))
  in
  check Alcotest.bool "rolled back" true
    (List.length before = List.length after && List.for_all2 Tuple.equal before after)

let key_update_disjoint_succeeds () =
  let vfs = Vfs.in_memory () in
  let db = Db.create ~vfs ~name:"src" () in
  let _ = Workload.create_parts_table db in
  Db.with_txn db (fun txn ->
      List.iter
        (fun s -> ignore (Db.exec db txn s : Db.exec_result))
        (Workload.insert_parts_txn ~first_id:1 ~size:5 ~day:0 ()));
  (* move key 3 to 300: no collision *)
  ignore
    (Db.with_txn db (fun txn ->
         Db.update_where db txn "parts"
           ~set:[ ("part_id", Expr.Lit (Value.Int 300)) ]
           ~where:(Some (Expr.Cmp (Expr.Eq, Expr.Col "part_id", Expr.Lit (Value.Int 3))))));
  let tbl = Db.table db "parts" in
  check Alcotest.bool "old key gone" true (Table.find_key tbl [| Value.Int 3 |] = None);
  check Alcotest.bool "new key found" true (Table.find_key tbl [| Value.Int 300 |] <> None)

(* ---------- mid-statement evaluation errors ---------- *)

let division_by_zero_aborts () =
  let vfs = Vfs.in_memory () in
  let db = Db.create ~vfs ~name:"src" () in
  let _ = Workload.create_parts_table db in
  Db.with_txn db (fun txn ->
      List.iter
        (fun s -> ignore (Db.exec db txn s : Db.exec_result))
        (Workload.insert_parts_txn ~first_id:1 ~size:3 ~day:0 ()));
  let txn = Db.begin_txn db in
  (match
     Db.exec_sql db txn "UPDATE parts SET qty = qty / (part_id - part_id) WHERE part_id = 1"
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "expected division failure");
  Db.abort db txn;
  check Alcotest.int "table intact" 3 (Table.row_count (Db.table db "parts"))

(* ---------- multiple triggers stack ---------- *)

let triggers_stack_in_order () =
  let vfs = Vfs.in_memory () in
  let db = Db.create ~vfs ~name:"src" () in
  let _ = Workload.create_parts_table db in
  let log = ref [] in
  let mk name = { Trigger.name; on = [ Trigger.On_insert ]; action = (fun _ _ -> log := name :: !log) } in
  Db.add_trigger db ~table:"parts" (mk "first");
  Db.add_trigger db ~table:"parts" (mk "second");
  Db.with_txn db (fun txn ->
      List.iter
        (fun s -> ignore (Db.exec db txn s : Db.exec_result))
        (Workload.insert_parts_txn ~first_id:1 ~size:1 ~day:0 ()));
  check (Alcotest.list Alcotest.string) "registration order" [ "first"; "second" ]
    (List.rev !log)

(* ---------- export corruption detection ---------- *)

let truncated_export_rejected () =
  let vfs = Vfs.in_memory () in
  let db = Db.create ~vfs ~name:"src" () in
  let _ = Workload.create_parts_table db in
  Workload.load_parts db ~rows:20 ();
  ignore (Dw_engine.Export_util.export_table db ~table:"parts" ~dest:"p.exp" ()
          : Dw_engine.Export_util.stats);
  let f = Vfs.open_existing vfs "p.exp" in
  Vfs.truncate f (Vfs.size f - 150);
  Vfs.close f;
  let _ = Db.create_table db ~name:"p2" ~ts_column:"last_modified" Workload.parts_schema in
  check Alcotest.bool "truncated dump rejected" true
    (Result.is_error (Dw_engine.Import_util.import_table db ~src:"p.exp" ~table:"p2"))

(* ---------- deep buffer pool churn keeps data intact ---------- *)

let pool_churn_integrity () =
  let vfs = Vfs.in_memory () in
  let db = Db.create ~pool_pages:3 ~vfs ~name:"src" () in
  let _ = Workload.create_parts_table db in
  Workload.load_parts db ~rows:500 ();
  (* interleave scans and updates under heavy eviction *)
  for round = 1 to 5 do
    ignore
      (Db.with_txn db (fun txn ->
           Db.update_where db txn "parts"
             ~set:[ ("qty", Expr.Lit (Value.Int round)) ]
             ~where:
               (Some
                  (Expr.Cmp (Expr.Le, Expr.Col "part_id", Expr.Lit (Value.Int (round * 50)))))))
  done;
  let tbl = Db.table db "parts" in
  check Alcotest.int "all rows survive" 500 (Table.row_count tbl);
  match Table.find_key tbl [| Value.Int 10 |] with
  | Some (_, t) ->
    check Alcotest.bool "last round visible" true
      (Tuple.get Workload.parts_schema t "qty" = Value.Int 5)
  | None -> Alcotest.fail "row 10 missing"

(* ---------- sustained fault plans (flap / error window / latency) ---------- *)

module Metrics = Dw_util.Metrics

let vfs_counter vfs name =
  match List.assoc_opt name (Metrics.snapshot (Vfs.metrics vfs)) with
  | Some v -> v
  | None -> 0

let sustained_flap_deterministic () =
  (* flap phase is pure arithmetic over the event index: the schedule
     survives revive (the probe's view), while crash_reset detaches the
     whole plan (a fresh device) *)
  let vfs = Vfs.in_memory () in
  Vfs.set_fault vfs
    (Some
       (Vfs.Fault.make ~tear_on_crash:false
          ~sustained:
            [
              Vfs.Fault.Crash_flap
                {
                  window = { from_event = 2; until_event = max_int };
                  period_on = 1;
                  period_off = 2;
                };
            ]
          ~seed:3 ()));
  let f = Vfs.create vfs "probe" in
  let append () = ignore (Vfs.append f (Bytes.make 8 'x') : int) in
  append ();
  append ();
  (match append () with
   | () -> Alcotest.fail "event 2 is an ON phase: should crash"
   | exception Vfs.Fault.Crash _ -> ());
  (match append () with
   | () -> Alcotest.fail "dead vfs accepted a write"
   | exception Vfs.Fault.Crash _ -> ());
  Vfs.revive vfs;
  append ();
  append ();
  (match append () with
   | () -> Alcotest.fail "event 5 is the next ON phase: should crash again"
   | exception Vfs.Fault.Crash _ -> ());
  Vfs.crash_reset vfs;
  for _ = 1 to 10 do
    append ()
  done

let sustained_error_rate_window () =
  let vfs = Vfs.in_memory () in
  Vfs.set_fault vfs
    (Some
       (Vfs.Fault.make
          ~sustained:
            [
              Vfs.Fault.Error_rate
                { window = { from_event = 0; until_event = 4 }; write_p = 1.0; fsync_p = 1.0 };
            ]
          ~seed:5 ()));
  let f = Vfs.create vfs "probe" in
  for i = 0 to 3 do
    match Vfs.append f (Bytes.make 8 'x') with
    | (_ : int) -> Alcotest.failf "event %d inside the window should fail transiently" i
    | exception Vfs.Fault.Transient _ -> ()
  done;
  (* window closed: the write goes through, and the transient failures
     left no bytes behind *)
  ignore (Vfs.append f (Bytes.make 8 'x') : int);
  check Alcotest.int "transient writes had no effect" 8 (Vfs.size f);
  check Alcotest.int "every windowed write counted" 4 (vfs_counter vfs "fault.transient_writes")

let sustained_latency_counted () =
  let vfs = Vfs.in_memory () in
  Vfs.set_fault vfs
    (Some
       (Vfs.Fault.make
          ~sustained:
            [ Vfs.Fault.Latency { window = { from_event = 0; until_event = 3 }; delay_s = 5e-4 } ]
          ~seed:9 ()));
  let f = Vfs.create vfs "probe" in
  for _ = 1 to 5 do
    ignore (Vfs.append f (Bytes.make 8 'x') : int)
  done;
  check Alcotest.int "exactly the windowed events spiked" 3
    (vfs_counter vfs "fault.latency_spikes")

let sustained_rejects_malformed () =
  let mk sustained = Vfs.Fault.make ~sustained ~seed:1 () in
  (match
     mk
       [
         Vfs.Fault.Crash_flap
           { window = { from_event = 0; until_event = 1 }; period_on = 0; period_off = 1 };
       ]
   with
   | (_ : Vfs.Fault.t) -> Alcotest.fail "period_on = 0 accepted"
   | exception Invalid_argument _ -> ());
  match
    mk
      [
        Vfs.Fault.Error_rate
          { window = { from_event = 0; until_event = 1 }; write_p = 1.5; fsync_p = 0.0 };
      ]
  with
  | (_ : Vfs.Fault.t) -> Alcotest.fail "probability > 1 accepted"
  | exception Invalid_argument _ -> ()

let suite =
  [
    test "steal then crash: losers undone" steal_then_crash_undone;
    test "steal: committed redone" steal_committed_redone;
    test "torn offset file redelivers" torn_offset_file_redelivers;
    test "key update collision aborts" key_update_collision_aborts_statement;
    test "key update disjoint succeeds" key_update_disjoint_succeeds;
    test "division by zero aborts" division_by_zero_aborts;
    test "triggers stack in order" triggers_stack_in_order;
    test "truncated export rejected" truncated_export_rejected;
    test "pool churn integrity" pool_churn_integrity;
    test "crash flap phases deterministic, revive vs crash_reset" sustained_flap_deterministic;
    test "error-rate window raises then clears" sustained_error_rate_window;
    test "latency spikes counted inside the window" sustained_latency_counted;
    test "malformed sustained plans rejected" sustained_rejects_malformed;
  ]
