lib/experiments/exp_warehouse.ml: Bench_support Dw_core Dw_engine Dw_relation Dw_storage Dw_util Dw_warehouse Dw_workload Hashtbl List Printf
