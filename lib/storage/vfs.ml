module Metrics = Dw_util.Metrics
module Prng = Dw_util.Prng

(* deterministic fault injection: a plan is consulted on every write/fsync
   (events) and read (bit flips).  All decisions come from the seeded Prng,
   so two runs over the same operation sequence inject identical faults. *)
module Fault = struct
  exception Crash of { op : string; index : int }
  exception Transient of string

  type window = { from_event : int; until_event : int }  (* [from, until) *)

  type sustained =
    | Error_rate of { window : window; write_p : float; fsync_p : float }
    | Latency of { window : window; delay_s : float }
    | Crash_flap of { window : window; period_on : int; period_off : int }

  type t = {
    prng : Prng.t;
    mutable fail_stop_after : int;  (* crash on event #n (0-based); -1 = never *)
    mutable tear_on_crash : bool;   (* a crashing write persists a random prefix *)
    mutable write_fail_p : float;   (* transient write failure (nothing persisted) *)
    mutable fsync_fail_p : float;   (* transient fsync failure *)
    mutable read_flip_p : float;    (* flip one bit of a returned read buffer *)
    sustained : sustained list;     (* event-windowed plans; survive {!reset_crash} *)
    mutable events : int;           (* write/fsync events seen so far *)
    mutable crashed : bool;
  }

  let check_window = function
    | { from_event; until_event } when from_event < 0 || until_event < from_event ->
      invalid_arg "Vfs.Fault: bad sustained window"
    | _ -> ()

  let check_sustained = function
    | Error_rate { window; write_p; fsync_p } ->
      check_window window;
      if write_p < 0.0 || write_p > 1.0 || fsync_p < 0.0 || fsync_p > 1.0 then
        invalid_arg "Vfs.Fault: error rate outside [0, 1]"
    | Latency { window; delay_s } ->
      check_window window;
      if delay_s < 0.0 then invalid_arg "Vfs.Fault: negative latency"
    | Crash_flap { window; period_on; period_off } ->
      check_window window;
      if period_on < 1 || period_off < 0 then invalid_arg "Vfs.Fault: bad flap period"

  let make ?(fail_stop_after = -1) ?(tear_on_crash = true) ?(write_fail_p = 0.0)
      ?(fsync_fail_p = 0.0) ?(read_flip_p = 0.0) ?(sustained = []) ~seed () =
    List.iter check_sustained sustained;
    {
      prng = Prng.create ~seed;
      fail_stop_after;
      tear_on_crash;
      write_fail_p;
      fsync_fail_p;
      read_flip_p;
      sustained;
      events = 0;
      crashed = false;
    }

  let events t = t.events
  let crashed t = t.crashed

  let in_window w idx = idx >= w.from_event && idx < w.until_event

  (* is event [idx] inside the ON phase of an armed crash-flap window? *)
  let flap_crashing t idx =
    List.exists
      (function
        | Crash_flap { window; period_on; period_off } ->
          in_window window idx
          && (idx - window.from_event) mod (period_on + period_off) < period_on
        | Error_rate _ | Latency _ -> false)
      t.sustained

  (* effective transient (write, fsync) probabilities at event [idx]:
     the base rates raised by whichever error windows are active *)
  let rates t idx =
    List.fold_left
      (fun (wp, fp) s ->
        match s with
        | Error_rate { window; write_p; fsync_p } when in_window window idx ->
          (Float.max wp write_p, Float.max fp fsync_p)
        | Error_rate _ | Latency _ | Crash_flap _ -> (wp, fp))
      (t.write_fail_p, t.fsync_fail_p) t.sustained

  (* summed extra delay of the latency windows active at event [idx] *)
  let extra_delay t idx =
    List.fold_left
      (fun acc s ->
        match s with
        | Latency { window; delay_s } when in_window window idx -> acc +. delay_s
        | Latency _ | Error_rate _ | Crash_flap _ -> acc)
      0.0 t.sustained

  (* "the process restarted, the device did not get replaced": clear the
     dead flag and the one-shot fail-stop, keep the sustained schedule
     and the event counter so a flap keeps flapping across restarts *)
  let reset_crash t =
    t.crashed <- false;
    t.fail_stop_after <- -1
end

(* growable byte store for the in-memory backend: random-access reads and
   writes without copying the whole file.  Writes (and truncates) are
   serialised by a per-file mutex so a write-back from one domain cannot
   be lost under a concurrent growth realloc from another; reads stay
   lock-free — they blit from whichever array the data pointer holds,
   and a superseded array still carries valid pre-realloc content.
   Writers never race on the same byte range: page frames are owned by
   buffer-pool stripe locks and log appends have a single writer. *)
module Mem_file = struct
  type t = { mutable data : Bytes.t; mutable len : int; lock : Mutex.t }

  let create () = { data = Bytes.create 4096; len = 0; lock = Mutex.create () }

  let ensure t capacity =
    if Bytes.length t.data < capacity then begin
      let cap = ref (max 4096 (Bytes.length t.data)) in
      while !cap < capacity do
        cap := !cap * 2
      done;
      let data = Bytes.create !cap in
      Bytes.blit t.data 0 data 0 t.len;
      t.data <- data
    end

  let read t ~off ~len =
    let out = Bytes.create len in
    Bytes.blit t.data off out 0 len;
    out

  let write t ~off src =
    Mutex.protect t.lock (fun () ->
        let len = Bytes.length src in
        ensure t (off + len);
        Bytes.blit src 0 t.data off len;
        if off + len > t.len then t.len <- off + len)

  let truncate t size = Mutex.protect t.lock (fun () -> t.len <- size)
end

type backend =
  | Mem of (string, Mem_file.t) Hashtbl.t
  | Disk of string  (* directory *)

type t = {
  backend : backend;
  metrics : Metrics.t;
  open_files : (string, int) Hashtbl.t;  (* name -> refcount *)
  op_delay : float;  (* simulated per-operation latency, seconds *)
  mutable fault : Fault.t option;
}

type file = {
  vfs : t;
  fname : string;
  mutable fd : Unix.file_descr option;  (* Disk backend only *)
  mutable closed : bool;
}

let in_memory ?metrics ?(op_delay = 0.0) () =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  { backend = Mem (Hashtbl.create 16); metrics; open_files = Hashtbl.create 16; op_delay;
    fault = None }

let on_disk ?metrics dir =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  { backend = Disk dir; metrics; open_files = Hashtbl.create 16; op_delay = 0.0; fault = None }

let metrics t = t.metrics

let set_fault t plan = t.fault <- plan
let fault t = t.fault

let crash_reset t =
  (* "the process died": no file handle survives, faults are disarmed so
     recovery code runs against the surviving bytes undisturbed *)
  Hashtbl.reset t.open_files;
  t.fault <- None

let revive t =
  (* restart the process but keep the device on its fault schedule: the
     sustained plan and event counter survive, so a shard revived during
     a flap's ON phase crashes again on its next durability event *)
  Hashtbl.reset t.open_files;
  match t.fault with Some p -> Fault.reset_crash p | None -> ()

let check_name name =
  if name = "" || String.contains name '/' then invalid_arg ("Vfs: bad file name " ^ name)

let track_open t name =
  let n = match Hashtbl.find_opt t.open_files name with Some n -> n | None -> 0 in
  Hashtbl.replace t.open_files name (n + 1)

let track_close t name =
  match Hashtbl.find_opt t.open_files name with
  | Some 1 -> Hashtbl.remove t.open_files name
  | Some n -> Hashtbl.replace t.open_files name (n - 1)
  | None -> ()

let path dir name = Filename.concat dir name

let check_dead t op =
  match t.fault with
  | Some p when p.Fault.crashed ->
    raise (Fault.Crash { op; index = p.Fault.fail_stop_after })
  | Some _ | None -> ()

let create t name =
  check_name name;
  check_dead t "create";
  (match t.backend with
   | Mem files -> Hashtbl.replace files name (Mem_file.create ())
   | Disk dir ->
     let fd = Unix.openfile (path dir name) [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
     Unix.close fd);
  track_open t name;
  match t.backend with
  | Mem _ -> { vfs = t; fname = name; fd = None; closed = false }
  | Disk dir ->
    let fd = Unix.openfile (path dir name) [ Unix.O_RDWR ] 0o644 in
    { vfs = t; fname = name; fd = Some fd; closed = false }

let exists t name =
  check_name name;
  match t.backend with
  | Mem files -> Hashtbl.mem files name
  | Disk dir -> Sys.file_exists (path dir name)

let open_existing t name =
  check_name name;
  if not (exists t name) then raise Not_found;
  track_open t name;
  match t.backend with
  | Mem _ -> { vfs = t; fname = name; fd = None; closed = false }
  | Disk dir ->
    let fd = Unix.openfile (path dir name) [ Unix.O_RDWR ] 0o644 in
    { vfs = t; fname = name; fd = Some fd; closed = false }

let open_or_create t name = if exists t name then open_existing t name else create t name

let delete t name =
  check_name name;
  check_dead t "delete";
  if Hashtbl.mem t.open_files name then invalid_arg ("Vfs.delete: file is open: " ^ name);
  match t.backend with
  | Mem files -> Hashtbl.remove files name
  | Disk dir -> if Sys.file_exists (path dir name) then Sys.remove (path dir name)

let list_files t =
  match t.backend with
  | Mem files -> Hashtbl.fold (fun k _ acc -> k :: acc) files [] |> List.sort String.compare
  | Disk dir -> Sys.readdir dir |> Array.to_list |> List.sort String.compare

let name f = f.fname

let mem_file f =
  match f.vfs.backend with
  | Mem files ->
    (match Hashtbl.find_opt files f.fname with
     | Some m -> m
     | None -> raise Not_found)
  | Disk _ -> assert false

let size f =
  if f.closed then invalid_arg "Vfs.size: closed file";
  match f.vfs.backend with
  | Mem _ -> (mem_file f).Mem_file.len
  | Disk _ ->
    (match f.fd with
     | Some fd -> (Unix.fstat fd).Unix.st_size
     | None -> assert false)

let simulate_latency f = if f.vfs.op_delay > 0.0 then Unix.sleepf f.vfs.op_delay

(* fault-injection decision points.  A crashed plan makes every subsequent
   operation raise again: the "process" is dead until {!crash_reset}. *)

(* write/fsync are the durability events the crash-point explorer indexes;
   [kind] is [`Write len] or [`Fsync] *)
let fault_event t op kind =
  match t.fault with
  | None -> `Proceed
  | Some p ->
    check_dead t op;
    let idx = p.Fault.events in
    p.Fault.events <- idx + 1;
    if idx = p.Fault.fail_stop_after || Fault.flap_crashing p idx then begin
      p.Fault.crashed <- true;
      Metrics.incr t.metrics "fault.crashes";
      match kind with
      | `Write len when p.Fault.tear_on_crash && len > 0 ->
        Metrics.incr t.metrics "fault.torn_writes";
        (* strictly partial: [0, len) bytes survive *)
        `Tear (Prng.int p.Fault.prng len, idx)
      | `Write _ | `Fsync -> raise (Fault.Crash { op; index = idx })
    end
    else begin
      let write_p, fsync_p = Fault.rates p idx in
      let transient_p, counter =
        match kind with
        | `Write _ -> (write_p, "fault.transient_writes")
        | `Fsync -> (fsync_p, "fault.transient_fsyncs")
      in
      if transient_p > 0.0 && Prng.float p.Fault.prng 1.0 < transient_p then begin
        Metrics.incr t.metrics counter;
        raise (Fault.Transient op)
      end;
      (match Fault.extra_delay p idx with
       | d when d > 0.0 ->
         Metrics.incr t.metrics "fault.latency_spikes";
         Unix.sleepf d
       | _ -> ());
      `Proceed
    end

let maybe_flip_bits t buf =
  match t.fault with
  | Some p when p.Fault.read_flip_p > 0.0 && Bytes.length buf > 0 ->
    if Prng.float p.Fault.prng 1.0 < p.Fault.read_flip_p then begin
      let i = Prng.int p.Fault.prng (Bytes.length buf) in
      let bit = Prng.int p.Fault.prng 8 in
      Bytes.set buf i (Char.chr (Char.code (Bytes.get buf i) lxor (1 lsl bit)));
      Metrics.incr t.metrics "fault.bitflips"
    end
  | Some _ | None -> ()

let count_read f len =
  simulate_latency f;
  Metrics.incr f.vfs.metrics "vfs.reads";
  Metrics.add f.vfs.metrics "vfs.read_bytes" len

let count_write f len =
  simulate_latency f;
  Metrics.incr f.vfs.metrics "vfs.writes";
  Metrics.add f.vfs.metrics "vfs.write_bytes" len

let read_at f ~off ~len =
  if f.closed then invalid_arg "Vfs.read_at: closed file";
  if off < 0 || len < 0 || off + len > size f then
    invalid_arg
      (Printf.sprintf "Vfs.read_at %s: range [%d, %d) beyond size %d" f.fname off (off + len)
         (size f));
  check_dead f.vfs "read";
  Metrics.time f.vfs.metrics "vfs.read" (fun () ->
      count_read f len;
      let buf =
        match f.vfs.backend with
        | Mem _ -> Mem_file.read (mem_file f) ~off ~len
        | Disk _ ->
          let fd = Option.get f.fd in
          let buf = Bytes.create len in
          ignore (Unix.lseek fd off Unix.SEEK_SET);
          let rec go pos remaining =
            if remaining > 0 then begin
              let n = Unix.read fd buf pos remaining in
              if n = 0 then invalid_arg "Vfs.read_at: unexpected EOF";
              go (pos + n) (remaining - n)
            end
          in
          go 0 len;
          buf
      in
      maybe_flip_bits f.vfs buf;
      buf)

let write_at f ~off data =
  if f.closed then invalid_arg "Vfs.write_at: closed file";
  let len = Bytes.length data in
  let sz = size f in
  if off < 0 || off > sz then
    invalid_arg (Printf.sprintf "Vfs.write_at %s: offset %d beyond size %d" f.fname off sz);
  let do_write data =
    let len = Bytes.length data in
    count_write f len;
    match f.vfs.backend with
    | Mem _ -> Mem_file.write (mem_file f) ~off data
    | Disk _ ->
      let fd = Option.get f.fd in
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let rec go pos remaining =
        if remaining > 0 then begin
          let n = Unix.write fd data pos remaining in
          go (pos + n) (remaining - n)
        end
      in
      go 0 len
  in
  Metrics.time f.vfs.metrics "vfs.write" (fun () ->
      match fault_event f.vfs "write" (`Write len) with
      | `Proceed -> do_write data
      | `Tear (keep, index) ->
        if keep > 0 then do_write (Bytes.sub data 0 keep);
        raise (Fault.Crash { op = "write"; index }))

let append f data =
  let off = size f in
  write_at f ~off data;
  off

let fsync f =
  if f.closed then invalid_arg "Vfs.fsync: closed file";
  Metrics.time f.vfs.metrics "vfs.fsync" (fun () ->
      (match fault_event f.vfs "fsync" `Fsync with
       | `Proceed -> ()
       | `Tear _ -> assert false (* fsync never tears *));
      simulate_latency f;
      Metrics.incr f.vfs.metrics "vfs.fsyncs";
      match f.vfs.backend with
      | Mem _ -> ()
      | Disk _ -> Unix.fsync (Option.get f.fd))

let close f =
  if not f.closed then begin
    f.closed <- true;
    track_close f.vfs f.fname;
    match f.fd with Some fd -> Unix.close fd | None -> ()
  end

let truncate f new_size =
  if f.closed then invalid_arg "Vfs.truncate: closed file";
  check_dead f.vfs "truncate";
  let sz = size f in
  if new_size < 0 || new_size > sz then invalid_arg "Vfs.truncate: bad size";
  match f.vfs.backend with
  | Mem _ -> Mem_file.truncate (mem_file f) new_size
  | Disk _ -> Unix.ftruncate (Option.get f.fd) new_size
