(* Experiments T2 and T3 — paper Tables 2 and 3: timestamp-based delta
   extraction, and the end-to-end extract+load comparison.

   T2 shape: table output ≈ 2-3x file output; +Export adds more.
   T3 shape: the table+Export+Import path is 2-3.5x the file+Loader path,
   the gap widening with delta size. *)

module Db = Dw_engine.Db
module Vfs = Dw_storage.Vfs
module Workload = Dw_workload.Workload
module Timestamp_extract = Dw_core.Timestamp_extract
module Import_util = Dw_engine.Import_util
module Ascii_util = Dw_engine.Ascii_util
module File_ship = Dw_transport.File_ship
module Metrics = Dw_util.Metrics
open Bench_support

(* Build a source where exactly [delta_rows] rows carry a fresh timestamp:
   load the base table at day D, then update a contiguous id range at
   day D+1 through normal (logged) transactions. *)
let source_with_delta ~table_rows ~delta_rows =
  let db = fresh_source ~rows:table_rows () in
  let watermark = Db.current_day db in
  Db.set_day db (watermark + 1);
  if delta_rows > 0 then
    Db.with_txn db (fun txn ->
        ignore
          (Db.exec db txn (Workload.update_parts_stmt ~first_id:1 ~size:delta_rows)
            : Db.exec_result));
  (db, watermark)

let run_t2 ~scale =
  section "T2 (Table 2): time stamp based delta extraction";
  let table_rows = source_rows ~scale in
  let steps = delta_row_steps ~scale in
  let file_times = ref [] and table_times = ref [] and export_times = ref [] in
  List.iter
    (fun delta_rows ->
      let db, watermark = source_with_delta ~table_rows ~delta_rows in
      let (_, s1), t_file =
        time (fun () ->
            Timestamp_extract.extract db ~table:"parts" ~since:watermark
              ~output:(Timestamp_extract.To_file "ts.asc"))
      in
      assert (s1.Timestamp_extract.rows = delta_rows);
      let _, t_table =
        time (fun () ->
            Timestamp_extract.extract db ~table:"parts" ~since:watermark
              ~output:(Timestamp_extract.To_table "ts_delta"))
      in
      let _, t_table_export =
        time (fun () ->
            Timestamp_extract.extract db ~table:"parts" ~since:watermark
              ~output:
                (Timestamp_extract.To_table_export
                   { delta_table = "ts_delta2"; export_file = "ts.exp" }))
      in
      file_times := t_file :: !file_times;
      table_times := t_table :: !table_times;
      export_times := t_table_export :: !export_times)
    steps;
  let row name times = name :: List.rev_map dur !times in
  print_table ~title:"Table 2: time stamp based delta extraction"
    ~header:("Method" :: List.map label_for_rows steps)
    ~rows:
      [
        row "File output" file_times;
        row "Table output" table_times;
        row "Table output + Export" export_times;
      ];
  let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  Printf.printf "shape check: table/file ratio = %.2fx (paper: ~2-3x)\n"
    (avg !table_times /. avg !file_times);
  (List.rev !file_times, List.rev !export_times)

let run_t3 ~scale =
  section "T3 (Table 3): total extract + transport + load time";
  let table_rows = source_rows ~scale in
  let steps = delta_row_steps ~scale in
  let path1_times = ref [] and path2_times = ref [] in
  List.iter
    (fun delta_rows ->
      let db, watermark = source_with_delta ~table_rows ~delta_rows in
      (* the warehouse: a second database instance *)
      let dw_vfs = Vfs.in_memory () in
      let dw = Db.create ~pool_pages:1024 ~vfs:dw_vfs ~name:"dw" () in
      let _ = Db.create_table dw ~name:"parts" ~ts_column:"last_modified" Workload.parts_schema in
      (* path 1: file output -> ship -> DBMS Loader.  Trace spans decompose
         the refresh into the paper's Table 3 segments. *)
      let dwm = Vfs.metrics dw_vfs in
      let t_path1 =
        time_only (fun () ->
            Metrics.with_span dwm "t3.refresh" (fun () ->
                Metrics.with_span dwm "t3.extract" (fun () ->
                    ignore
                      (Timestamp_extract.extract db ~table:"parts" ~since:watermark
                         ~output:(Timestamp_extract.To_file "ts.asc")));
                Metrics.with_span dwm "t3.transport" (fun () ->
                    match
                      (* chunk size follows --quick scaling so the
                         transfer stays multi-chunk (Bench_support) *)
                      File_ship.ship ~chunk_size:(Bench_support.ship_chunk ())
                        ~src:(Db.vfs db) ~src_name:"ts.asc" ~dst:dw_vfs
                        ~dst_name:"ts.asc" ()
                    with
                    | Ok _ -> ()
                    | Error e -> failwith e);
                Metrics.with_span dwm "t3.load" (fun () ->
                    match Ascii_util.load dw ~table:"parts" ~src:"ts.asc" with
                    | Ok _ -> ()
                    | Error e -> failwith e)))
      in
      (* path 2: table output + Export -> ship -> Import *)
      let _ = Db.create_table dw ~name:"parts2" ~ts_column:"last_modified" Workload.parts_schema in
      let t_path2 =
        time_only (fun () ->
            Metrics.with_span dwm "t3.refresh" (fun () ->
                Metrics.with_span dwm "t3.extract" (fun () ->
                    ignore
                      (Timestamp_extract.extract db ~table:"parts" ~since:watermark
                         ~output:
                           (Timestamp_extract.To_table_export
                              { delta_table = "ts_delta"; export_file = "ts.exp" })));
                Metrics.with_span dwm "t3.transport" (fun () ->
                    match
                      File_ship.ship ~chunk_size:(Bench_support.ship_chunk ())
                        ~src:(Db.vfs db) ~src_name:"ts.exp" ~dst:dw_vfs
                        ~dst_name:"ts.exp" ()
                    with
                    | Ok _ -> ()
                    | Error e -> failwith e);
                Metrics.with_span dwm "t3.load" (fun () ->
                    match Import_util.import_table dw ~src:"ts.exp" ~table:"parts2" with
                    | Ok _ -> ()
                    | Error e -> failwith e)))
      in
      path1_times := t_path1 :: !path1_times;
      path2_times := t_path2 :: !path2_times)
    steps;
  let row name times = name :: List.rev_map dur !times in
  print_table ~title:"Table 3: total time to extract and load deltas"
    ~header:("Method" :: List.map label_for_rows steps)
    ~rows:
      [
        row "TS file output + DBMS Loader" path1_times;
        row "TS table output + Export + Import" path2_times;
      ];
  let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  Printf.printf "shape check: path2/path1 ratio = %.2fx (paper: ~2-3.5x)\n"
    (avg !path2_times /. avg !path1_times)
