lib/experiments/exp_snapshot.ml: Bench_support Dw_core Dw_engine Dw_txn Dw_workload List Printf
