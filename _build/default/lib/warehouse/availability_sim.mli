(** Warehouse availability under concurrent maintenance (experiment W2;
    paper Section 4.1: Op-Delta "can interleave with OLAP queries without
    impacting the integrity of the query result", whereas value-delta
    batches force an outage).

    Deterministic discrete-event simulation of a readers/writer lock over
    the warehouse:

    - the {b integrator} runs its maintenance jobs back to back, each
      needing the lock exclusively for the job's duration — a value-delta
      integration is {e one} long job (the indivisible batch), an
      Op-Delta integration is one short job per source transaction;
    - {b OLAP queries} arrive on a fixed cadence and each needs the lock
      shared for its duration.

    Grants are FIFO (no reader or writer starvation).  Durations come
    from the caller, who typically derives them from real
    {!Warehouse.stats} (e.g. ticks = row_ops).  Reported outage is the
    total time during which at least one query sat blocked. *)

type config = {
  write_jobs : int list;    (** exclusive-lock durations, run back to back *)
  query_duration : int;     (** shared-lock duration per OLAP query *)
  query_interval : int;     (** a new query arrives every this many ticks *)
  horizon : int;            (** stop admitting new queries at this time *)
}

type report = {
  makespan : int;              (** completion time of all work *)
  maintenance_done : int;      (** when the last write job finished *)
  queries_admitted : int;
  queries_completed : int;
  total_query_wait : int;      (** sum of (grant - arrival) over queries *)
  max_query_wait : int;
  outage_time : int;           (** ticks during which >= 1 query was blocked *)
}

val run : config -> report
(** Raises [Invalid_argument] on non-positive durations/intervals. *)
