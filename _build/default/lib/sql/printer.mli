(** SQL pretty-printer.

    [parse (to_string s)] equals [s] for every valid statement (property
    tested).  {!size_bytes} is the wire size of an Op-Delta: the paper's
    "the SQL statement itself is already an Op-Delta in the size of about
    70 bytes". *)

val to_string : Ast.stmt -> string
val pp : Format.formatter -> Ast.stmt -> unit

val size_bytes : Ast.stmt -> int
(** [String.length (to_string stmt)]. *)
