examples/trigger_vs_opdelta.ml: Dw_core Dw_engine Dw_storage Dw_workload List Printf Unix
