(* Head-to-head of the two capture mechanisms on the same workload, at the
   source side: response-time overhead and captured volume, per operation
   kind — a miniature of the paper's Figures 2/3 discussion.

     dune exec examples/trigger_vs_opdelta.exe *)

module Vfs = Dw_storage.Vfs
module Db = Dw_engine.Db
module Workload = Dw_workload.Workload
module Delta = Dw_core.Delta
module Trigger_extract = Dw_core.Trigger_extract
module Opdelta_capture = Dw_core.Opdelta_capture

let table_rows = 5000
let txn_size = 500

let fresh () =
  let db = Db.create ~pool_pages:1024 ~vfs:(Vfs.in_memory ()) ~name:"src" () in
  let _ = Workload.create_parts_table db in
  Workload.load_parts db ~rows:table_rows ();
  Db.advance_day db;
  db

let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  (Unix.gettimeofday () -. t0) *. 1000.0

let stmts_for db kind =
  match kind with
  | `Insert -> Workload.insert_parts_txn ~first_id:(table_rows + 1) ~size:txn_size ~day:(Db.current_day db) ()
  | `Delete -> [ Workload.delete_parts_stmt ~first_id:1 ~size:txn_size ]
  | `Update -> [ Workload.update_parts_stmt ~first_id:1 ~size:txn_size ]

let kind_name = function `Insert -> "insert" | `Delete -> "delete" | `Update -> "update"

let () =
  Printf.printf "source: %d rows; transaction size: %d affected rows\n\n" table_rows txn_size;
  Printf.printf "%-8s %12s %12s %12s %14s %14s\n" "op" "plain(ms)" "trigger(ms)" "opdelta(ms)"
    "value bytes" "opdelta bytes";
  List.iter
    (fun kind ->
      (* plain *)
      let db = fresh () in
      let t_plain =
        time (fun () ->
            Db.with_txn db (fun txn ->
                List.iter
                  (fun s -> ignore (Db.exec db txn s : Db.exec_result))
                  (stmts_for db kind)))
      in
      (* trigger capture *)
      let db = fresh () in
      let h = Trigger_extract.install db ~table:"parts" in
      let t_trigger =
        time (fun () ->
            Db.with_txn db (fun txn ->
                List.iter
                  (fun s -> ignore (Db.exec db txn s : Db.exec_result))
                  (stmts_for db kind)))
      in
      let value_bytes = Delta.size_bytes (Trigger_extract.collect db h) in
      (* op-delta capture (db-table sink, like the trigger's delta table) *)
      let db = fresh () in
      let cap = Opdelta_capture.create db ~sink:(Opdelta_capture.To_db_table "oplog") in
      let t_opdelta =
        time (fun () ->
            match Opdelta_capture.exec_txn cap (stmts_for db kind) with
            | Ok _ -> ()
            | Error e -> failwith e)
      in
      let op_bytes = Opdelta_capture.captured_bytes cap in
      Printf.printf "%-8s %12.1f %12.1f %12.1f %14d %14d\n" (kind_name kind) t_plain t_trigger
        t_opdelta value_bytes op_bytes)
    [ `Insert; `Delete; `Update ];
  print_endline
    "\nreading guide: for deletes/updates the trigger pays per affected row, the Op-Delta \
     wrapper pays one SQL string; for inserts both pay per row (the insert statement IS the \
     row).";
  print_endline
    "volume column: what must travel to the warehouse - the paper's network-traffic argument."
