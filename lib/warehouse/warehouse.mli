(** The data warehouse: source-table replicas, materialized SPJ views
    maintained incrementally by replica triggers, and the two integration
    paths the paper compares (Section 4.1):

    - {!integrate_value_delta}: the differential file is applied as one
      {e indivisible batch} transaction; per the paper each value-delta
      record becomes its own SQL-level operation — an insert per Insert,
      a keyed delete per Delete, and a keyed delete {e plus} an insert
      per Update (before/after images);
    - {!integrate_op_delta}: each source transaction's Op-Delta is applied
      as its own short warehouse transaction by {e re-executing the
      original statements} against the replicas — one UPDATE statement
      updates its x rows in place, which is where the ~70 % shorter
      update maintenance window comes from.

    Views are bags materialized with multiplicity counts.  Projected view
    columns must be non-nullable (they form the backing table's key). *)

module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Db = Dw_engine.Db
module Delta = Dw_core.Delta
module Op_delta = Dw_core.Op_delta
module Spj_view = Dw_core.Spj_view

type t

val create :
  ?pool_pages:int -> ?pool_stripes:int -> vfs:Dw_storage.Vfs.t -> name:string -> unit -> t
(** An empty warehouse over its own engine instance; [`Index_preferred]
    plan mode, no replicas or views yet.  [pool_stripes] splits the
    buffer pool into that many independently-latched stripes (default 1)
    so parallel OLAP domains do not serialise on one pool lock. *)

val db : t -> Db.t
(** The warehouse-side engine (for metrics, scheduling and OLAP). *)

val add_replica : t -> table:string -> schema:Schema.t -> unit
(** Create the warehouse copy of a source table and attach the view-
    maintenance trigger.  Raises [Invalid_argument] if it exists. *)

val load_replica : t -> table:string -> Tuple.t list -> unit
(** Initial load (bulk, unlogged). *)

val define_view : t -> Spj_view.t -> unit
(** Validates the view, creates its backing table ([<name>] with the
    output columns as key plus a [__count] column) and materializes it
    from current replica contents. *)

val view_rows : t -> string -> (Tuple.t * int) list
(** Current materialized rows with multiplicities, sorted. *)

val recompute_view : t -> string -> (Tuple.t * int) list
(** Recompute from replicas (ground truth for tests/benches). *)

(** {2 Aggregate views} — GROUP BY views ({!Dw_core.Agg_view}), maintained
    incrementally by the same replica triggers.  COUNT/SUM adjust in
    place; a delete that removes a MIN/MAX extremum re-derives the group
    from the replica detail rows. *)

val define_agg_view : t -> Dw_core.Agg_view.t -> unit
(** Validates, creates the backing table and materializes the aggregate
    view from current replica contents. *)

val agg_view_rows : t -> string -> (Tuple.t * int) list
(** Materialized (output row, group cardinality), sorted by group. *)

val recompute_agg_view : t -> string -> (Tuple.t * int) list
(** Recompute from replica detail rows (ground truth for tests). *)

val agg_view_def : t -> string -> Dw_core.Agg_view.t option
(** The definition an aggregate view was registered with ([None] if no
    such view) — {!Partitioned} reads it back to know group arity and
    aggregate functions when merging per-shard view slices. *)

val replica_rows : t -> string -> Tuple.t list
(** Current replica contents, in heap scan order. *)

type stats = {
  txns : int;        (** warehouse transactions used *)
  statements : int;  (** SQL-level operations executed *)
  row_ops : int;     (** row-level modifications (replica + views) *)
  duration : float;  (** wall-clock seconds *)
}

val zero_stats : stats
(** All-zero identity for {!add_stats}. *)

val add_stats : stats -> stats -> stats
(** Component-wise sum (durations add). *)

val integrate_value_delta : t -> Delta.t -> stats
(** One batch transaction.  [Upsert] entries integrate as keyed
    update-or-insert (the timestamp method's integration path). *)

val integrate_op_delta : t -> Op_delta.t -> stats
(** One transaction re-executing the Op-Delta's statements.  Table names
    in the statements must match replica names (apply a
    {!Dw_core.Transform} rule first if schemas differ). *)

val integrate_op_deltas : t -> Op_delta.t list -> stats
(** Fold over {!integrate_op_delta}, summing stats — the one-warehouse-
    transaction-per-source-transaction baseline.  Because each source
    transaction is one warehouse transaction, its before-images publish
    atomically at commit: a concurrent snapshot reader sees each source
    transaction's effects (replicas {e and} derived views) in full or
    not at all — never a half-applied refresh. *)

(** {2 Micro-batched apply} — amortize warehouse commit cost over runs of
    consecutive source transactions.

    {!integrate_op_deltas_batched} slices the op-delta stream into runs
    and applies each run as {e one} warehouse transaction, re-executing
    every statement in source commit order.  Whole source transactions
    only — a run boundary is always a source-transaction boundary, so a
    crash mid-run leaves the warehouse at a source-transaction boundary
    and the online-refresh invariant (readers see a prefix of the source
    history) is preserved; what is given up is only refresh granularity:
    readers observe up to a run of source transactions at once.

    The run length is governed by a {b backpressure valve}: it opens at
    [max_batch], shrinks multiplicatively (halves, floored at
    [min_batch]) whenever the warehouse registry's [lock.wait] p95
    exceeds [lock_wait_p95_s] — long maintenance transactions are what
    make concurrent readers queue — and recovers additively (+1) while
    lock-waits stay low.  Each applied run's size is observed into the
    [warehouse.batch_size] histogram and the current target into the
    [warehouse.batch_size_target] gauge. *)

type batch_policy = {
  max_batch : int;  (** run-length ceiling (>= min_batch) *)
  min_batch : int;  (** run-length floor under backpressure (>= 1) *)
  lock_wait_p95_s : float;
      (** shrink when [lock.wait] p95 exceeds this (seconds, >= 0) *)
}

val default_batch_policy : batch_policy
(** [{ max_batch = 16; min_batch = 1; lock_wait_p95_s = 0.010 }]. *)

val validate_batch_policy : batch_policy -> unit
(** Raises [Invalid_argument] on a non-positive floor, ceiling below
    floor, or negative/NaN threshold. *)

val integrate_op_delta_run : t -> Op_delta.t list -> stats
(** Apply a run of consecutive source transactions as one warehouse
    transaction ([stats.txns = 1]).  Building block of the batched
    integrator; callers must pass whole, consecutive source
    transactions. *)

val integrate_op_delta_run_marked : t -> mark:(Db.txn -> unit) -> Op_delta.t list -> stats
(** {!integrate_op_delta_run} plus a [mark] callback invoked inside the
    same warehouse transaction, after the run's statements — the
    partitioned refresh ({!Partitioned.refresh}) stores its per-shard
    applied-through transaction id there, so the run and its progress
    record commit or roll back together (exactly-once under
    re-delivery of the same delta stream after a crash). *)

val integrate_op_deltas_batched : ?policy:batch_policy -> t -> Op_delta.t list -> stats
(** Apply the stream in valve-governed runs (see above).  Equivalent to
    {!integrate_op_deltas} in final warehouse state for any policy —
    only transaction boundaries differ. *)

(** {2 Replica-less (view-only) maintenance} — the paper's hybrid case:
    "for some cases, a hybrid between a partial value delta (the before
    image portion only) and the Op-Delta is necessary to refresh the data
    warehouse in a self-maintainable manner."

    A view-only warehouse stores {e no} detail data: select-project views
    are maintained straight from the captured operations — inserts from
    the INSERT statements' own tuples, deletes/updates from the before
    images the hybrid capture shipped
    ({!Dw_core.Opdelta_capture.create} with [~replicas:false]). *)

val define_viewonly_view : t -> Spj_view.t -> unit
(** Select-project views only (join views are not self-maintainable
    without replicas — {!Dw_core.Self_maintain}); no replica needed, the
    view starts empty.  Raises [Invalid_argument] on a Join view. *)

val integrate_op_delta_viewonly : t -> Op_delta.t -> stats
(** Apply one hybrid Op-Delta to every view-only view.  Deletes/updates
    are driven entirely by the ops' before images; a delete/update
    captured {e without} hybrid mode carries none and is treated as
    affecting zero rows (indistinguishable from a genuinely empty match),
    so the capture side must run with [~replicas:false] and a view set —
    {!Dw_core.Opdelta_capture.create}. *)

val viewonly_view_rows : t -> string -> (Tuple.t * int) list
(** Materialized rows of a view-only view, with multiplicities. *)

(** {2 Bootstrap (chunked online load) support} — the warehouse side of
    {!Dw_etl.Bootstrap}: re-adopting a crashed warehouse, applying delta
    transactions with a progress mark committed atomically alongside the
    data, and the DBLog window primitives (image-based apply reporting
    touched keys, chunk upsert with a dedup filter). *)

val attach : db:Db.t -> unit -> t
(** Wrap an existing (typically {!Db.reopen}ed) database as a warehouse
    without creating any tables — the resume path after a crash.  No
    replicas or views are registered; re-add them with
    {!attach_replica} / view definitions. *)

val attach_replica : t -> table:string -> unit
(** Register an already-existing table of [t]'s database as a source
    replica and re-install its view-maintenance trigger (the persistent
    half of {!add_replica}, which also creates the table).  Raises
    [Invalid_argument] if the table is missing or already attached. *)

val attach_view : t -> Spj_view.t -> unit
(** Register a view definition whose backing table already exists in
    [t]'s database (the persistent half of {!define_view}): validates
    the definition and hooks it back into trigger maintenance {e without}
    creating or re-materializing the backing table — its recovered
    contents are trusted.  Raises [Invalid_argument] if the backing
    table is missing, the definition is invalid, or the name is already
    attached. *)

val attach_agg_view : t -> Dw_core.Agg_view.t -> unit
(** {!attach_view} for aggregate views (the persistent half of
    {!define_agg_view}). *)

val view_backing_schema : Spj_view.t -> Schema.t
(** Schema of the backing table {!define_view} creates for this view
    (output columns as key plus the [__count] multiplicity column) —
    what a {!Db.reopen} catalog entry for the backing table needs. *)

val agg_view_backing_schema : Dw_core.Agg_view.t -> Schema.t
(** Backing-table schema for an aggregate view (group columns as key,
    aggregate columns, [__count] group cardinality). *)

val integrate_op_delta_marked : t -> mark:(Db.txn -> unit) -> Op_delta.t -> stats
(** {!integrate_op_delta}, plus a [mark] callback invoked inside the same
    warehouse transaction — the bootstrap stores its applied-through
    transaction id there, so the delta and the progress record commit or
    roll back together (exactly-once under queue redelivery). *)

val integrate_op_delta_images :
  t -> table:string -> mark:(Db.txn -> unit) -> Op_delta.t -> int list
(** Apply one hybrid Op-Delta to replica [table] as last-write-wins row
    images instead of statement re-execution: INSERT rows upsert, UPDATE
    before-images upsert their computed after-images, DELETE
    before-images delete by key.  Statements on other tables are ignored.
    Returns the primary keys touched, for the DBLog window dedup; [mark]
    runs inside the same transaction.  Requires hybrid capture
    ({!Dw_core.Opdelta_capture.create}[ ~capture_images:true]) and a
    single-column INT primary key. *)

val load_chunk :
  t -> table:string -> skip:(int -> bool) -> mark:(Db.txn -> unit) -> Tuple.t list -> int
(** Upsert one bootstrap chunk of source rows into replica [table] as a
    single warehouse transaction, dropping rows whose key satisfies
    [skip] (keys touched by deltas inside the chunk's watermark window —
    those delta versions are newer than the chunk select's).  Returns the
    number of rows applied; [mark] runs inside the same transaction. *)
