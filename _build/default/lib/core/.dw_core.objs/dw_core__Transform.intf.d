lib/core/transform.mli: Delta Dw_relation Dw_sql Op_delta
