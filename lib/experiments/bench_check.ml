(* Schema + acceptance-gate checks for dwbench's --json output, shared
   by the @bench-json validator (tools/validate_bench_json) and by
   dwbench itself, which refuses to exit 0 after emitting a document
   this module rejects.

   Two layers:
   - structure: the document parses into the stable shape — top-level
     keys, per-experiment counters/gauges/histograms objects, histograms
     non-empty with numeric percentiles;
   - gates (strict mode): the histograms and gauges the acceptance
     criteria name must be present, and the deterministic relational
     gates must hold (group-commit fsync reduction, lock-free snapshot
     reads, bootstrap resume cost / lease exclusion / convergence).

   Strict mode assumes the document covers {!gated_ids}; dwbench only
   turns it on when the run did. *)

module Json = Dw_util.Json

exception Reject of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Reject msg)) fmt

(* the quick-mode subset whose metrics the strict gates reference *)
let gated_ids = [ "t3"; "w1"; "t5"; "w3"; "w4"; "w5"; "t6"; "w6"; "t7" ]

let require_member name j =
  match Json.member name j with
  | Some v -> v
  | None -> fail "missing key %S" name

let require_number ctx name j =
  match Json.to_number (require_member name j) with
  | Some v -> v
  | None -> fail "%s: %S is not a number" ctx name

let check_histogram ~exp_id name h =
  let ctx = Printf.sprintf "experiment %S histogram %S" exp_id name in
  let count = require_number ctx "count" h in
  if count < 1.0 then fail "%s: empty (count = %g)" ctx count;
  List.iter
    (fun k -> ignore (require_number ctx k h : float))
    [ "sum"; "min"; "max"; "p50"; "p95"; "p99" ]

let required_histograms =
  [
    "wal.fsync"; "pool.miss"; "warehouse.refresh"; "wal.group_size"; "warehouse.batch_size";
    "w3.olap_latency_snapshot"; "w3.olap_latency_locking"; "bootstrap.chunk_rows";
    "w5.olap_latency_d1"; "w5.olap_latency_d4"; "stage.bucket_ops";
    "loadgen.latency_ms";
  ]

(* deterministic results only: counter ratios and invariant flags, not
   wall-clock, so they are stable enough to gate on *)
let required_gauges =
  [
    "t5.fsync_per_txn_g1"; "t5.fsync_per_txn_g4"; "t5.fsync_per_txn_g16";
    "t5.queue_fsync_per_msg_single"; "t5.queue_fsync_per_msg_batched";
    "t5.ship_blocks"; "t5.ship_msgs";
    "t5.window_sequential_s"; "t5.window_batched_s";
    "t5.txns_sequential"; "t5.txns_batched";
    "w3.olap_p95_snapshot_s"; "w3.olap_p95_locking_s";
    "w3.lock_wait_count_snapshot"; "w3.lock_wait_count_locking";
    "w3.reader_blocked_slices_snapshot"; "w3.reader_blocked_slices_locking";
    "w3.refresh_window_snapshot_s"; "w3.refresh_window_locking_s";
    "w3.batch_outage_s";
    "w4.restart_chunks"; "w4.resume_extra_chunks"; "w4.lease_refused";
    "w4.converged"; "w4.crash_points";
    "w5.olap_qps_d1"; "w5.olap_qps_d4"; "w5.olap_p95_d1_s"; "w5.olap_p95_d4_s";
    "w5.speedup_d4"; "w5.identical"; "w5.partitions";
    "t6.window_p1_s"; "t6.window_p4_s"; "t6.speedup_p4"; "t6.identical";
    "t6.partitions";
    "w6.identical"; "w6.converged_with_source"; "w6.trips"; "w6.probes";
    "w6.probe_failures"; "w6.recovered"; "w6.rebuilds"; "w6.readmitted";
    "w6.degraded_reads"; "w6.fleet_stalls"; "w6.fail_closed_raised";
    "w6.staleness_txns"; "w6.recovery_s"; "w6.delta_txns";
    "t7.units_planned"; "t7.units_trigger"; "t7.units_log"; "t7.units_op_delta";
    "t7.units_snapshot"; "t7.units_timestamp";
    "t7.planner_units"; "t7.best_static_units"; "t7.worst_static_units";
    "t7.vs_best"; "t7.below_worst"; "t7.identical"; "t7.statics_identical";
    "t7.timestamp_diverged"; "t7.switches"; "t7.fallbacks"; "t7.rounds";
    "t7.offered"; "t7.admitted"; "t7.shed"; "t7.slo_breaches";
    "t7.slo_attainment"; "t7.worst_p95_ms";
  ]

let check_experiment seen gauges j =
  let id =
    match Json.to_str (require_member "id" j) with
    | Some s -> s
    | None -> fail "experiment \"id\" is not a string"
  in
  ignore (require_number id "wall_s" j : float);
  (match Json.member "counters" j with
   | Some (Json.Obj _) -> ()
   | Some _ | None -> fail "experiment %S: \"counters\" is not an object" id);
  (match Json.member "gauges" j with
   | Some (Json.Obj fields) ->
     List.iter
       (fun (name, v) ->
         match Json.to_number v with
         | Some x -> Hashtbl.replace gauges name x
         | None -> fail "experiment %S: gauge %S is not a number" id name)
       fields
   | Some _ -> fail "experiment %S: \"gauges\" is not an object" id
   | None -> ());
  match Json.member "histograms" j with
  | Some (Json.Obj fields) ->
    List.iter
      (fun (name, h) ->
        check_histogram ~exp_id:id name h;
        Hashtbl.replace seen name ())
      fields
  | Some _ | None -> fail "experiment %S: \"histograms\" is not an object" id

let check_gates ~quick seen gauges =
  List.iter
    (fun name ->
      if not (Hashtbl.mem seen name) then
        fail "required histogram %S missing from every experiment" name)
    required_histograms;
  let gauge name =
    match Hashtbl.find_opt gauges name with
    | Some v -> v
    | None -> fail "required gauge %S missing from every experiment" name
  in
  List.iter (fun name -> ignore (gauge name : float)) required_gauges;
  (* the acceptance numbers: group >= 4 cuts fsyncs per txn at least 3x,
     and micro-batched refresh uses strictly fewer warehouse txns *)
  let g1 = gauge "t5.fsync_per_txn_g1" and g4 = gauge "t5.fsync_per_txn_g4" in
  if g4 <= 0.0 || g1 /. g4 < 3.0 then
    fail "group commit: fsync/txn reduction %g/%g = %gx, expected >= 3x" g1 g4
      (if g4 > 0.0 then g1 /. g4 else infinity);
  if gauge "t5.queue_fsync_per_msg_batched" >= gauge "t5.queue_fsync_per_msg_single" then
    fail "transport: batched queue path does not reduce fsyncs per message";
  if gauge "t5.txns_batched" >= gauge "t5.txns_sequential" then
    fail "refresh: batched integrator does not reduce warehouse txns";
  (* w3's deterministic acceptance: snapshot readers are fully lock-free
     (no waits at all, scheduler-verified), locking readers are not, and
     the lock-free path shows up as lower measured OLAP tail latency *)
  if gauge "w3.lock_wait_count_snapshot" <> 0.0 then
    fail "w3: snapshot arm recorded %g lock waits, expected 0"
      (gauge "w3.lock_wait_count_snapshot");
  if gauge "w3.reader_blocked_slices_snapshot" <> 0.0 then
    fail "w3: snapshot readers spent %g slices blocked, expected 0"
      (gauge "w3.reader_blocked_slices_snapshot");
  if gauge "w3.reader_blocked_slices_locking" < 1.0 then
    fail "w3: locking readers never blocked - the contrast arm is not exercising 2PL";
  if gauge "w3.olap_p95_snapshot_s" >= gauge "w3.olap_p95_locking_s" then
    fail "w3: snapshot OLAP p95 (%gs) does not beat locking p95 (%gs)"
      (gauge "w3.olap_p95_snapshot_s") (gauge "w3.olap_p95_locking_s");
  (* w4's deterministic acceptance: the crash sweep converged at every
     explored point, a resumed run re-does at most one chunk (a from-
     scratch restart re-does all of them), and a second start under a
     live lease was refused *)
  if gauge "w4.crash_points" < 1.0 then fail "w4: crash sweep explored no crash points";
  if gauge "w4.converged" <> 1.0 then fail "w4: crash sweep did not converge everywhere";
  if gauge "w4.lease_refused" <> 1.0 then
    fail "w4: second start under a live lease was not refused";
  if gauge "w4.resume_extra_chunks" > 1.0 then
    fail "w4: resume re-did %g chunks, expected <= 1" (gauge "w4.resume_extra_chunks");
  if gauge "w4.restart_chunks" <= gauge "w4.resume_extra_chunks" then
    fail "w4: restart cost (%g chunks) does not exceed resume cost (%g chunks)"
      (gauge "w4.restart_chunks") (gauge "w4.resume_extra_chunks");
  (* w5's deterministic acceptance: the parallel read path returns exactly
     the sequential results, and at 4 domains the overlapped-I/O scan is
     at least 2x the single-domain throughput.  The speedup gate only
     binds on full runs: quick mode shrinks the table to where fixed
     per-query costs blur the ratio *)
  if gauge "w5.identical" <> 1.0 then
    fail "w5: parallel OLAP results diverge from the sequential executor";
  if gauge "w5.partitions" < 1.0 then fail "w5: no scan partitions recorded";
  let speedup = gauge "w5.speedup_d4" in
  if (not quick) && speedup < 2.0 then
    fail "w5: OLAP throughput speedup at 4 domains is %gx, expected >= 2x" speedup;
  if speedup <= 0.0 then fail "w5: OLAP throughput speedup is %gx" speedup;
  (* t6's deterministic acceptance: the partitioned refresh is byte-
     identical to the sequential integrator, and at 4 partitions the
     staged parallel apply shrinks the refresh window at least 1.8x.
     Like w5, the window-ratio gate binds on full runs only *)
  if gauge "t6.identical" <> 1.0 then
    fail "t6: partitioned refresh diverges from the sequential integrator";
  if gauge "t6.partitions" < 1.0 then fail "t6: no partition arms recorded";
  let t6_speedup = gauge "t6.speedup_p4" in
  if (not quick) && t6_speedup < 1.8 then
    fail "t6: refresh window shrink at 4 partitions is %gx, expected >= 1.8x" t6_speedup;
  if t6_speedup <= 0.0 then fail "t6: refresh window ratio is %gx" t6_speedup;
  (* w6's deterministic acceptance: under a flapping shard the fleet
     keeps answering degraded reads with zero stalls, the breaker trips
     and probes (at least one self-heal), the quarantined shard is
     rebuilt online exactly once and re-admitted, and the healed merged
     state is byte-identical to the sequential integrator *)
  if gauge "w6.identical" <> 1.0 then
    fail "w6: healed fleet diverges from the sequential integrator";
  if gauge "w6.converged_with_source" <> 1.0 then
    fail "w6: healed fleet diverges from the live source";
  if gauge "w6.trips" < 2.0 then
    fail "w6: breaker tripped %g times, expected >= 2 (flap + terminal outage)"
      (gauge "w6.trips");
  if gauge "w6.probes" < 1.0 then fail "w6: no half-open probe was admitted";
  if gauge "w6.probe_failures" < 1.0 then
    fail "w6: no probe failure recorded under the terminal outage";
  if gauge "w6.recovered" < 1.0 then fail "w6: no shard self-healed through a probe";
  if gauge "w6.rebuilds" <> 1.0 then
    fail "w6: %g rebuilds recorded, expected exactly 1" (gauge "w6.rebuilds");
  if gauge "w6.readmitted" <> 1.0 then
    fail "w6: %g readmissions recorded, expected exactly 1" (gauge "w6.readmitted");
  if gauge "w6.degraded_reads" < 1.0 then
    fail "w6: no degraded read answered while a shard was out";
  if gauge "w6.fleet_stalls" <> 0.0 then
    fail "w6: %g degraded reads stalled, expected 0" (gauge "w6.fleet_stalls");
  if gauge "w6.fail_closed_raised" <> 1.0 then
    fail "w6: `Fail_closed did not refuse to read around a quarantined shard";
  (* t7's acceptance: every arm (except timestamp, which is expected to
     diverge — its method cannot see deletes) converges to the source;
     the planner's end-to-end refresh cost sits within 1.15x of the best
     static method AND strictly below the worst static method in every
     workload phase; the shifting mix forces at least one method switch
     without any correctness fallback; and the scan-heavy overload phase
     exercises the AIMD valve (shedding + SLO breaches).  All of it is
     virtual-time work units over a seeded load, so the gates bind in
     quick and full mode alike *)
  if gauge "t7.identical" <> 1.0 then
    fail "t7: planned arm's warehouse diverges from the source";
  if gauge "t7.statics_identical" <> 1.0 then
    fail "t7: a non-timestamp static arm's warehouse diverges from the source";
  if gauge "t7.timestamp_diverged" <> 1.0 then
    fail "t7: the timestamp arm converged despite deletes - the delete phases are not \
          exercising its known blind spot";
  let vs_best = gauge "t7.vs_best" in
  if vs_best <= 0.0 then fail "t7: planner/best-static ratio is %g" vs_best;
  if vs_best > 1.15 then
    fail "t7: planner cost is %.3gx the best static method, expected <= 1.15x" vs_best;
  if gauge "t7.below_worst" <> 1.0 then
    fail "t7: planner is not strictly below the worst static method in every phase";
  if gauge "t7.switches" < 1.0 then
    fail "t7: planner never switched methods across the mix shifts";
  if gauge "t7.fallbacks" <> 0.0 then
    fail "t7: %g correctness fallbacks, expected 0 (the planner should price ineligible \
          methods out, not trip the pipeline override)" (gauge "t7.fallbacks");
  if gauge "t7.rounds" < 1.0 then fail "t7: no refresh rounds recorded";
  if gauge "t7.admitted" < 1.0 then fail "t7: load generator admitted no operations";
  if gauge "t7.offered" < gauge "t7.admitted" then
    fail "t7: offered (%g) below admitted (%g)" (gauge "t7.offered") (gauge "t7.admitted");
  if gauge "t7.shed" < 1.0 then
    fail "t7: the valve shed nothing - the scan-heavy phase is not overloading the server";
  if gauge "t7.slo_breaches" < 1.0 then
    fail "t7: no SLO breaches - admission control was never provoked";
  if gauge "t7.slo_attainment" <= 0.0 || gauge "t7.slo_attainment" >= 1.0 then
    fail "t7: SLO attainment %g outside (0, 1) despite recorded breaches"
      (gauge "t7.slo_attainment")

let validate ?(strict = true) doc =
  try
    (match Json.to_number (require_member "schema_version" doc) with
     | Some 1.0 -> ()
     | Some v -> fail "schema_version %g, expected 1" v
     | None -> fail "schema_version is not a number");
    (match Json.to_str (require_member "suite" doc) with
     | Some "dwbench" -> ()
     | _ -> fail "suite is not \"dwbench\"");
    let experiments =
      match Json.to_list (require_member "experiments" doc) with
      | Some [] -> fail "\"experiments\" is empty"
      | Some l -> l
      | None -> fail "\"experiments\" is not a list"
    in
    let quick = match Json.member "quick" doc with Some (Json.Bool b) -> b | _ -> false in
    let seen = Hashtbl.create 32 in
    let gauges = Hashtbl.create 32 in
    List.iter (check_experiment seen gauges) experiments;
    if strict then check_gates ~quick seen gauges;
    Ok
      (Printf.sprintf "%d experiments, %d histograms, %d gauges%s"
         (List.length experiments) (Hashtbl.length seen) (Hashtbl.length gauges)
         (if strict then "" else "; structural only"))
  with Reject msg -> Error msg
