lib/core/watermark.mli: Dw_storage Dw_txn
