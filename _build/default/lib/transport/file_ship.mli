(** File shipping between a source system and the warehouse/staging area
    (the paper's "ftp" transport option).

    Copies a file across {!Dw_storage.Vfs.t} instances in bounded chunks,
    counting bytes.  An optional per-chunk latency cost feeds the
    simulated clock when transport time matters to an experiment. *)

module Vfs = Dw_storage.Vfs

type stats = {
  bytes : int;
  chunks : int;
}

val ship :
  ?chunk_size:int ->  (* default 64 KiB *)
  src:Vfs.t ->
  src_name:string ->
  dst:Vfs.t ->
  dst_name:string ->
  unit ->
  (stats, string) result
(** Overwrites [dst_name]. *)
