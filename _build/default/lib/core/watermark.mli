(** Extraction watermarks: the persistent per-table "where did the last
    extraction round stop" state that every periodic delta-extraction
    deployment needs (the [last_modified_date > 12/5/99] of the paper's
    running example, plus the log position for the log-based method).

    State is persisted to a {!Dw_storage.Vfs.t} file on every {!advance},
    so an extraction agent that crashes re-extracts at most one round
    (at-least-once, pairing with the transport queue's redelivery). *)

type t

type mark = {
  day : int;                  (** last timestamp-watermark extracted through *)
  lsn : Dw_txn.Wal.lsn;       (** first log position NOT yet extracted *)
}

val load : Dw_storage.Vfs.t -> name:string -> t
(** Open (or create) the watermark store file [name]. *)

val get : t -> table:string -> mark
(** [{ day = -1; lsn = 0 }] for a table never extracted. *)

val advance : t -> table:string -> mark -> unit
(** Persist a new mark.  Marks may only move forward; raises
    [Invalid_argument] on regression. *)

val tables : t -> string list
(** Tables with recorded marks, sorted. *)
