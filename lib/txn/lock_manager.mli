(** Two-phase-locking lock manager with shared/exclusive modes, table and
    row granularity, and wait-for-graph deadlock detection.

    The engine is single-threaded; "blocking" is *logical*: a conflicting
    {!acquire} returns [`Blocked] (registering the waiter in the wait-for
    graph) and the caller's scheduler decides what to do — retry later,
    advance the simulated clock, or abort on [`Deadlock].  This is what
    the warehouse experiment (W2) uses to account outage: an OLAP query
    blocked by the value-delta batch integration holds its span open until
    the lock is granted. *)

type txid = int

type resource =
  | Table of string
  | Row of string * Dw_storage.Heap_file.rid

type mode = S | X

type outcome =
  | Granted
  | Blocked of txid list  (** the transactions holding conflicting locks *)
  | Deadlock of txid list  (** granting would close a wait-for cycle *)

type t

val create : ?metrics:Dw_util.Metrics.t -> unit -> t
(** [metrics] receives counters [lock.acquires], [lock.blocks] and
    [lock.deadlocks] (a private registry is used when omitted); the
    caller's scheduler is responsible for timing actual waits (the engine
    records a [lock.wait] latency histogram around its block hook). *)

val acquire : t -> txid -> resource -> mode -> outcome
(** Upgrades S→X when possible.  Re-acquiring a held lock is [Granted].
    A [Row] lock implicitly conflicts with an [X] [Table] lock on the
    same table (coarse-over-fine; no full intention-lock hierarchy). *)

val release_all : t -> txid -> unit
(** End of transaction: drop all locks and pending waits of [txid]. *)

val holders : t -> resource -> (txid * mode) list
(** Current grantees of [resource] with their modes ([] when free). *)

val held_by : t -> txid -> resource list
(** Resources [txid] currently holds a lock on, in no particular order. *)

val waiting : t -> txid -> bool
(** Whether [txid] has a queued (not yet granted) lock request. *)
