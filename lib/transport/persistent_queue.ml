module Vfs = Dw_storage.Vfs
module Metrics = Dw_util.Metrics

(* log frame: [u32 len][u32 fnv1a][payload]
   sidecar:   [u64 read_off][u32 fnv1a of the 8 offset bytes] *)

let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF) s;
  !h

type t = {
  metrics : Metrics.t;
  log : Vfs.file;
  offset_file : Vfs.file;
  mutable read_off : int;   (* offset of the oldest unacked frame *)
  mutable peeked : (string * int) option;  (* payload, next offset *)
  mutable pending : int;
  mutable enqueued : int;
}

let checksum = fnv1a

let frame payload =
  let len = String.length payload in
  let out = Bytes.create (8 + len) in
  Bytes.set_int32_le out 0 (Int32.of_int len);
  Bytes.set_int32_le out 4 (Int32.of_int (fnv1a payload));
  Bytes.blit_string payload 0 out 8 len;
  out

let encode_frames payloads =
  let buf = Buffer.create 256 in
  List.iter (fun p -> Buffer.add_bytes buf (frame p)) payloads;
  Buffer.to_bytes buf

let decode_frames bytes =
  let size = Bytes.length bytes in
  let rec go off acc =
    if off = size then Ok (List.rev acc)
    else if off + 8 > size then Error (Printf.sprintf "torn frame header at %d" off)
    else begin
      let len = Int32.to_int (Bytes.get_int32_le bytes off) in
      let csum = Int32.to_int (Bytes.get_int32_le bytes (off + 4)) land 0xFFFFFFFF in
      if len < 0 || off + 8 + len > size then
        Error (Printf.sprintf "torn frame body at %d" off)
      else
        let payload = Bytes.sub_string bytes (off + 8) len in
        if fnv1a payload <> csum then
          Error (Printf.sprintf "checksum mismatch at %d" off)
        else go (off + 8 + len) (payload :: acc)
    end
  in
  go 0 []

let read_frame log off =
  let size = Vfs.size log in
  if off + 8 > size then None
  else begin
    let header = Vfs.read_at log ~off ~len:8 in
    let len = Int32.to_int (Bytes.get_int32_le header 0) in
    let csum = Int32.to_int (Bytes.get_int32_le header 4) land 0xFFFFFFFF in
    if len < 0 || off + 8 + len > size then None
    else
      let payload = Bytes.to_string (Vfs.read_at log ~off:(off + 8) ~len) in
      if fnv1a payload <> csum then None else Some (payload, off + 8 + len)
  end

let count_from log off =
  let rec go off n total =
    match read_frame log off with
    | None -> (n, total)
    | Some (_, next) -> go next (n + 1) (total + 1)
  in
  go off 0 0

(* a crash mid-enqueue can leave a torn frame at the tail; truncate it so a
   later enqueue cannot land after garbage and become invisible to the
   reader.  Returns the set of valid frame boundaries, for validating the
   recovered read offset. *)
let repair_log vfs log =
  let size = Vfs.size log in
  let rec go off boundaries =
    match read_frame log off with
    | Some (_, next) -> go next (next :: boundaries)
    | None -> (off, boundaries)
  in
  let valid_end, boundaries = go 0 [ 0 ] in
  if valid_end < size then begin
    Vfs.truncate log valid_end;
    Metrics.incr (Vfs.metrics vfs) "queue.torn_frames";
    Metrics.add (Vfs.metrics vfs) "queue.torn_bytes" (size - valid_end)
  end;
  boundaries

(* The sidecar is only trusted when it is whole (12 bytes), checksums
   cleanly, and points at a frame boundary of the repaired log.  Anything
   else — short file from a torn write, flipped bits, an offset into the
   middle of a frame — falls back to 0: every retained message is
   redelivered, which at-least-once delivery permits; advancing past
   unconsumed messages (loss) is what must never happen. *)
let recover_read_off vfs offset_file ~boundaries =
  if Vfs.size offset_file < 12 then 0
  else begin
    let b = Vfs.read_at offset_file ~off:0 ~len:12 in
    let off = Int64.to_int (Bytes.get_int64_le b 0) in
    let csum = Int32.to_int (Bytes.get_int32_le b 8) land 0xFFFFFFFF in
    let stored = Bytes.to_string (Bytes.sub b 0 8) in
    if fnv1a stored = csum && List.mem off boundaries then off
    else begin
      Metrics.incr (Vfs.metrics vfs) "queue.offset_resets";
      0
    end
  end

let open_ vfs ~name =
  let log = Vfs.open_or_create vfs (name ^ ".q") in
  let offset_file = Vfs.open_or_create vfs (name ^ ".q.off") in
  let boundaries = repair_log vfs log in
  let read_off = recover_read_off vfs offset_file ~boundaries in
  let pending, _ = count_from log read_off in
  let enqueued_before, _ = count_from log 0 in
  { metrics = Vfs.metrics vfs; log; offset_file; read_off; peeked = None; pending;
    enqueued = enqueued_before }

let enqueue t payload =
  Metrics.time t.metrics "queue.enqueue" (fun () ->
      ignore (Vfs.append t.log (frame payload) : int);
      Vfs.fsync t.log);
  t.pending <- t.pending + 1;
  t.enqueued <- t.enqueued + 1

let enqueue_batch t payloads =
  match payloads with
  | [] -> ()
  | _ ->
    let n = List.length payloads in
    Metrics.time t.metrics "queue.enqueue" (fun () ->
        ignore (Vfs.append t.log (encode_frames payloads) : int);
        Vfs.fsync t.log);
    Metrics.observe t.metrics "queue.batch_size" (float_of_int n);
    t.pending <- t.pending + n;
    t.enqueued <- t.enqueued + n

let peek t =
  match t.peeked with
  | Some (payload, _) -> Some payload
  | None -> (
      match read_frame t.log t.read_off with
      | None -> None
      | Some (payload, next) ->
        t.peeked <- Some (payload, next);
        Some payload)

let write_offset t off =
  let b = Bytes.create 12 in
  Bytes.set_int64_le b 0 (Int64.of_int off);
  Bytes.set_int32_le b 8 (Int32.of_int (fnv1a (Bytes.to_string (Bytes.sub b 0 8))));
  Vfs.write_at t.offset_file ~off:0 b;
  Vfs.fsync t.offset_file

let ack t =
  Metrics.time t.metrics "queue.ack" (fun () ->
      match t.peeked with
      | None -> (
          (* allow ack directly after an un-peeked message? require peek *)
          match read_frame t.log t.read_off with
          | None -> invalid_arg "Persistent_queue.ack: queue is empty"
          | Some (_, next) ->
            t.read_off <- next;
            write_offset t next;
            t.pending <- t.pending - 1)
      | Some (_, next) ->
        t.peeked <- None;
        t.read_off <- next;
        write_offset t next;
        t.pending <- t.pending - 1)

let peek_run t ~max =
  if max < 1 then invalid_arg "Persistent_queue.peek_run: max < 1";
  let rec go off n acc =
    if n = max then List.rev acc
    else
      match read_frame t.log off with
      | None -> List.rev acc
      | Some (payload, next) -> go next (n + 1) (payload :: acc)
  in
  go t.read_off 0 []

let ack_run t n =
  if n < 0 then invalid_arg "Persistent_queue.ack_run: n < 0";
  if n > t.pending then invalid_arg "Persistent_queue.ack_run: n > pending";
  if n > 0 then
    Metrics.time t.metrics "queue.ack" (fun () ->
        let rec advance off k =
          if k = 0 then off
          else
            match read_frame t.log off with
            | None -> invalid_arg "Persistent_queue.ack_run: log shorter than pending"
            | Some (_, next) -> advance next (k - 1)
        in
        let next = advance t.read_off n in
        t.peeked <- None;
        t.read_off <- next;
        write_offset t next;
        t.pending <- t.pending - n;
        Metrics.observe t.metrics "queue.ack_run" (float_of_int n))

let pending t = t.pending
let enqueued_total t = t.enqueued

let close t =
  Vfs.close t.log;
  Vfs.close t.offset_file
