(* Tests for Dw_snapshot: sort-merge and partitioned-hash differentials,
   including the qcheck property diff(a,b) applied to a == b. *)

module Snapshot_diff = Dw_snapshot.Snapshot_diff
module Vfs = Dw_storage.Vfs
module Value = Dw_relation.Value
module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Codec = Dw_relation.Codec

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let schema =
  Schema.make
    [
      { Schema.name = "id"; ty = Value.Tint; nullable = false };
      { Schema.name = "v"; ty = Value.Tstring 20; nullable = false };
    ]

let row id v = [| Value.Int id; Value.Str v |]

let sort_rows = List.sort Tuple.compare

let rows_equal a b =
  List.length a = List.length b && List.for_all2 Tuple.equal (sort_rows a) (sort_rows b)

let diff_basic () =
  let old_rows = [ row 1 "a"; row 2 "b"; row 3 "c" ] in
  let new_rows = [ row 2 "B"; row 3 "c"; row 4 "d" ] in
  let entries, stats = Snapshot_diff.sort_merge schema ~old_rows ~new_rows in
  check Alcotest.int "entry count" 3 stats.Snapshot_diff.entries;
  let kinds =
    List.map
      (function
        | Snapshot_diff.Added _ -> "add"
        | Snapshot_diff.Removed _ -> "rem"
        | Snapshot_diff.Changed _ -> "chg")
      entries
  in
  check (Alcotest.list Alcotest.string) "kinds" [ "rem"; "chg"; "add" ] kinds

let diff_empty_cases () =
  let entries, _ = Snapshot_diff.sort_merge schema ~old_rows:[] ~new_rows:[] in
  check Alcotest.int "empty/empty" 0 (List.length entries);
  let entries, _ = Snapshot_diff.sort_merge schema ~old_rows:[] ~new_rows:[ row 1 "a" ] in
  check Alcotest.int "initial load" 1 (List.length entries);
  let entries, _ = Snapshot_diff.sort_merge schema ~old_rows:[ row 1 "a" ] ~new_rows:[] in
  check Alcotest.int "drop all" 1 (List.length entries)

let diff_rejects_duplicate_keys () =
  Alcotest.check_raises "dup keys"
    (Invalid_argument "Snapshot_diff: duplicate key (1) within one snapshot") (fun () ->
      ignore (Snapshot_diff.sort_merge schema ~old_rows:[ row 1 "a"; row 1 "b" ] ~new_rows:[]))

let write_snapshot vfs name rows =
  let file = Vfs.create vfs name in
  List.iter
    (fun r -> ignore (Vfs.append file (Bytes.of_string (Codec.encode_ascii schema r ^ "\n")) : int))
    rows;
  Vfs.close file

let partitioned_matches_sort_merge () =
  let vfs = Vfs.in_memory () in
  let old_rows = List.init 100 (fun i -> row i ("v" ^ string_of_int i)) in
  let new_rows =
    (* drop multiples of 7, change multiples of 5, add 100..109 *)
    List.filter_map
      (fun i ->
        if i mod 7 = 0 then None
        else if i mod 5 = 0 then Some (row i "CHANGED")
        else Some (row i ("v" ^ string_of_int i)))
      (List.init 100 Fun.id)
    @ List.init 10 (fun i -> row (100 + i) "new")
  in
  write_snapshot vfs "old.snap" old_rows;
  write_snapshot vfs "new.snap" new_rows;
  let reference, _ = Snapshot_diff.sort_merge schema ~old_rows ~new_rows in
  match
    Snapshot_diff.partitioned_hash ~buckets:4 vfs schema ~old_file:"old.snap"
      ~new_file:"new.snap"
  with
  | Error e -> Alcotest.fail e
  | Ok (entries, stats) ->
    check Alcotest.int "same entry count" (List.length reference) (List.length entries);
    check Alcotest.bool "scratch I/O happened" true (stats.Snapshot_diff.scratch_bytes > 0);
    (* same multiset of entries: compare keyed sets *)
    let norm l =
      List.map
        (function
          | Snapshot_diff.Added t -> ("A", Tuple.to_string t)
          | Snapshot_diff.Removed t -> ("R", Tuple.to_string t)
          | Snapshot_diff.Changed (b, a) -> ("C", Tuple.to_string b ^ Tuple.to_string a))
        l
      |> List.sort compare
    in
    check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string)) "same entries"
      (norm reference) (norm entries)

let partitioned_cleans_scratch () =
  let vfs = Vfs.in_memory () in
  write_snapshot vfs "old.snap" [ row 1 "a" ];
  write_snapshot vfs "new.snap" [ row 1 "b" ];
  (match
     Snapshot_diff.partitioned_hash ~buckets:3 vfs schema ~old_file:"old.snap"
       ~new_file:"new.snap"
   with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  check (Alcotest.list Alcotest.string) "only snapshots remain" [ "new.snap"; "old.snap" ]
    (Vfs.list_files vfs)

(* ---------- sliding window ---------- *)

let window_exact_with_large_window () =
  let vfs = Vfs.in_memory () in
  let old_rows = List.init 200 (fun i -> row i ("v" ^ string_of_int i)) in
  let new_rows =
    List.filter_map
      (fun i ->
        if i mod 9 = 0 then None
        else if i mod 4 = 0 then Some (row i "CHANGED")
        else Some (row i ("v" ^ string_of_int i)))
      (List.init 200 Fun.id)
    @ [ row 500 "new1"; row 501 "new2" ]
  in
  write_snapshot vfs "wold.snap" old_rows;
  write_snapshot vfs "wnew.snap" new_rows;
  let reference, _ = Snapshot_diff.sort_merge schema ~old_rows ~new_rows in
  match Snapshot_diff.window ~window_rows:4096 vfs schema ~old_file:"wold.snap" ~new_file:"wnew.snap" with
  | Error e -> Alcotest.fail e
  | Ok (entries, stats) ->
    check Alcotest.int "entry count matches sort-merge" (List.length reference)
      (List.length entries);
    check Alcotest.int "no scratch traffic" 0 stats.Snapshot_diff.scratch_bytes;
    check Alcotest.bool "applies correctly" true
      (rows_equal (Snapshot_diff.apply schema entries old_rows) new_rows)

let window_same_order_small_window () =
  (* rows in the same scan order: even a tiny window is exact *)
  let vfs = Vfs.in_memory () in
  let old_rows = List.init 300 (fun i -> row i "same") in
  let new_rows = List.init 300 (fun i -> if i = 150 then row i "edit" else row i "same") in
  write_snapshot vfs "wo.snap" old_rows;
  write_snapshot vfs "wn.snap" new_rows;
  match Snapshot_diff.window ~window_rows:2 vfs schema ~old_file:"wo.snap" ~new_file:"wn.snap" with
  | Error e -> Alcotest.fail e
  | Ok (entries, _) -> (
      match entries with
      | [ Snapshot_diff.Changed (b, a) ] ->
        check Alcotest.bool "before" true (Tuple.equal b (row 150 "same"));
        check Alcotest.bool "after" true (Tuple.equal a (row 150 "edit"))
      | _ -> Alcotest.failf "expected 1 Changed entry, got %d" (List.length entries))

let window_displacement_beyond_window () =
  (* the same row at opposite ends of the two snapshots, window too small:
     the algorithm degrades to a spurious Removed+Added pair — but applying
     the entries still reproduces the new snapshot *)
  let vfs = Vfs.in_memory () in
  (* 10 unmatched rows must sit in the aging buffer at once, window is 5:
     the first ones age out as spurious Removed entries *)
  let displaced = List.init 10 (fun i -> row (1 + i) "x") in
  let filler = List.init 50 (fun i -> row (1000 + i) "filler") in
  let old_rows = displaced @ filler in
  let new_rows = filler @ displaced in
  write_snapshot vfs "do.snap" old_rows;
  write_snapshot vfs "dn.snap" new_rows;
  match Snapshot_diff.window ~window_rows:5 vfs schema ~old_file:"do.snap" ~new_file:"dn.snap" with
  | Error e -> Alcotest.fail e
  | Ok (entries, _) ->
    let spurious =
      List.exists (function Snapshot_diff.Removed t -> Tuple.equal t (row 1 "x") | _ -> false)
        entries
      && List.exists (function Snapshot_diff.Added t -> Tuple.equal t (row 1 "x") | _ -> false)
           entries
    in
    check Alcotest.bool "spurious remove+add pair" true spurious;
    check Alcotest.bool "still applies correctly" true
      (rows_equal (Snapshot_diff.apply schema entries old_rows) new_rows)

let prop_window_apply =
  QCheck2.Test.make ~name:"window diff applies correctly (any window)" ~count:150
    QCheck2.Gen.(triple (int_range 1 64) (int_range 0 5000) (int_range 0 5000))
    (fun (window_rows, seed_a, seed_b) ->
      let mk seed =
        let rng = Dw_util.Prng.create ~seed in
        List.init
          (Dw_util.Prng.int rng 40)
          (fun _ ->
            row (Dw_util.Prng.int rng 30) (Dw_util.Prng.alpha_string rng 3))
        (* dedup by key *)
        |> List.fold_left
             (fun acc r -> if List.exists (fun x -> Tuple.compare_key schema x r = 0) acc then acc else r :: acc)
             []
      in
      let old_rows = mk seed_a and new_rows = mk seed_b in
      let vfs = Vfs.in_memory () in
      write_snapshot vfs "po.snap" old_rows;
      write_snapshot vfs "pn.snap" new_rows;
      match Snapshot_diff.window ~window_rows vfs schema ~old_file:"po.snap" ~new_file:"pn.snap" with
      | Error _ -> false
      | Ok (entries, _) ->
        rows_equal (Snapshot_diff.apply schema entries old_rows) new_rows)

(* ---------- external sort-merge ---------- *)

let external_matches_sort_merge () =
  let vfs = Vfs.in_memory () in
  let rng = Dw_util.Prng.create ~seed:8 in
  (* unsorted snapshots with adds/removes/changes *)
  let ids = Array.init 500 (fun i -> i) in
  Dw_util.Prng.shuffle rng ids;
  let old_rows = Array.to_list (Array.map (fun i -> row i ("v" ^ string_of_int i)) ids) in
  let new_rows =
    List.filter_map
      (fun r ->
        match r.(0) with
        | Value.Int id when id mod 13 = 0 -> None
        | Value.Int id when id mod 7 = 0 -> Some (row id "CHANGED")
        | _ -> Some r)
      old_rows
    @ List.init 20 (fun i -> row (1000 + i) "new")
  in
  write_snapshot vfs "eo.snap" old_rows;
  write_snapshot vfs "en.snap" new_rows;
  let reference, _ = Snapshot_diff.sort_merge schema ~old_rows ~new_rows in
  match
    Snapshot_diff.external_sort_merge ~run_rows:64 vfs schema ~old_file:"eo.snap"
      ~new_file:"en.snap"
  with
  | Error e -> Alcotest.fail e
  | Ok (entries, stats) ->
    check Alcotest.int "entry count" (List.length reference) (List.length entries);
    check Alcotest.bool "scratch traffic" true (stats.Snapshot_diff.scratch_bytes > 0);
    check Alcotest.int "old rows" 500 stats.Snapshot_diff.old_rows;
    check Alcotest.bool "applies correctly" true
      (rows_equal (Snapshot_diff.apply schema entries old_rows) new_rows);
    (* entries in global key order *)
    let keys = List.map (Snapshot_diff.entry_key schema) entries in
    let rec sorted = function
      | a :: (b :: _ as rest) -> Tuple.compare a b < 0 && sorted rest
      | _ -> true
    in
    check Alcotest.bool "globally ordered" true (sorted keys)

let external_cleans_scratch () =
  let vfs = Vfs.in_memory () in
  write_snapshot vfs "eo.snap" [ row 1 "a"; row 2 "b"; row 3 "c" ];
  write_snapshot vfs "en.snap" [ row 2 "b" ];
  (match
     Snapshot_diff.external_sort_merge ~run_rows:2 vfs schema ~old_file:"eo.snap"
       ~new_file:"en.snap"
   with
   | Ok (entries, _) -> check Alcotest.int "two removals" 2 (List.length entries)
   | Error e -> Alcotest.fail e);
  check (Alcotest.list Alcotest.string) "scratch files deleted" [ "en.snap"; "eo.snap" ]
    (Vfs.list_files vfs)

let external_detects_duplicates () =
  let vfs = Vfs.in_memory () in
  write_snapshot vfs "eo.snap" [ row 1 "a"; row 1 "b" ];
  write_snapshot vfs "en.snap" [ row 1 "a" ];
  check Alcotest.bool "duplicate rejected" true
    (Result.is_error
       (Snapshot_diff.external_sort_merge ~run_rows:10 vfs schema ~old_file:"eo.snap"
          ~new_file:"en.snap"))

let prop_external_apply =
  QCheck2.Test.make ~name:"external sort-merge applies correctly" ~count:100
    QCheck2.Gen.(triple (int_range 1 32) (int_range 0 5000) (int_range 0 5000))
    (fun (run_rows, seed_a, seed_b) ->
      let mk seed =
        let rng = Dw_util.Prng.create ~seed in
        List.init
          (Dw_util.Prng.int rng 60)
          (fun _ -> row (Dw_util.Prng.int rng 40) (Dw_util.Prng.alpha_string rng 3))
        |> List.fold_left
             (fun acc r ->
               if List.exists (fun x -> Tuple.compare_key schema x r = 0) acc then acc
               else r :: acc)
             []
      in
      let old_rows = mk seed_a and new_rows = mk seed_b in
      let vfs = Vfs.in_memory () in
      write_snapshot vfs "po.snap" old_rows;
      write_snapshot vfs "pn.snap" new_rows;
      match
        Snapshot_diff.external_sort_merge ~run_rows vfs schema ~old_file:"po.snap"
          ~new_file:"pn.snap"
      with
      | Error _ -> false
      | Ok (entries, _) -> rows_equal (Snapshot_diff.apply schema entries old_rows) new_rows)

(* property: apply (diff a b) a == b *)

let gen_snapshot =
  QCheck2.Gen.(
    let gen_row = map2 (fun id v -> (id, v)) (int_range 0 60) (string_size ~gen:(char_range 'a' 'z') (int_range 1 5)) in
    map
      (fun pairs ->
        (* dedup by key *)
        let tbl = Hashtbl.create 16 in
        List.iter (fun (id, v) -> Hashtbl.replace tbl id v) pairs;
        Hashtbl.fold (fun id v acc -> row id v :: acc) tbl [])
      (list_size (int_range 0 60) gen_row))

let prop_diff_apply =
  QCheck2.Test.make ~name:"apply (diff a b) a = b" ~count:300
    (QCheck2.Gen.pair gen_snapshot gen_snapshot) (fun (old_rows, new_rows) ->
      let entries, _ = Snapshot_diff.sort_merge schema ~old_rows ~new_rows in
      rows_equal (Snapshot_diff.apply schema entries old_rows) new_rows)

let prop_diff_minimal =
  QCheck2.Test.make ~name:"diff of identical snapshots is empty" ~count:100 gen_snapshot
    (fun rows ->
      let entries, _ = Snapshot_diff.sort_merge schema ~old_rows:rows ~new_rows:rows in
      entries = [])

let suite =
  [
    test "diff basic" diff_basic;
    test "diff empty cases" diff_empty_cases;
    test "diff rejects duplicate keys" diff_rejects_duplicate_keys;
    test "partitioned matches sort-merge" partitioned_matches_sort_merge;
    test "partitioned cleans scratch" partitioned_cleans_scratch;
    test "window exact with large window" window_exact_with_large_window;
    test "window same order small window" window_same_order_small_window;
    test "window displacement beyond window" window_displacement_beyond_window;
    QCheck_alcotest.to_alcotest prop_window_apply;
    test "external matches sort-merge" external_matches_sort_merge;
    test "external cleans scratch" external_cleans_scratch;
    test "external detects duplicates" external_detects_duplicates;
    QCheck_alcotest.to_alcotest prop_external_apply;
    QCheck_alcotest.to_alcotest prop_diff_apply;
    QCheck_alcotest.to_alcotest prop_diff_minimal;
  ]
