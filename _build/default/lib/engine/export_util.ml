module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Value = Dw_relation.Value
module Codec = Dw_relation.Codec
module Expr = Dw_relation.Expr
module Vfs = Dw_storage.Vfs

type stats = { rows : int; bytes : int }

let magic = "DWEXP1\n"
let product_tag = "DW-OCAML-1.0"

(* header: magic, product line, key_arity line, one column line per
   column ("name<TAB>type<TAB>null|notnull"), blank line, u64 row count *)

let schema_header schema =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  Buffer.add_string buf (product_tag ^ "\n");
  Buffer.add_string buf (Printf.sprintf "key_arity=%d\n" (Schema.key_arity schema));
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%s\t%s\t%s\n" c.Schema.name (Value.ty_to_string c.Schema.ty)
           (if c.Schema.nullable then "null" else "notnull")))
    (Schema.columns schema);
  Buffer.add_string buf "\n";
  Buffer.contents buf

let export_table db ~table ?where ~dest () =
  let tbl = Db.table db table in
  let schema = Table.schema tbl in
  let file = Vfs.create (Db.vfs db) dest in
  let header = schema_header schema in
  (* count first so the header can carry it *)
  let rows = ref 0 in
  Table.scan tbl (fun _ tuple ->
      let keep =
        match where with None -> true | Some e -> Expr.eval_pred schema tuple e
      in
      if keep then incr rows);
  let count_line = Printf.sprintf "rows=%d\n" !rows in
  ignore (Vfs.append file (Bytes.of_string header) : int);
  ignore (Vfs.append file (Bytes.of_string count_line) : int);
  let width = Schema.record_size schema in
  (* batch record writes into page-sized chunks (sequential I/O) *)
  let chunk = Buffer.create 4096 in
  let flush_chunk () =
    if Buffer.length chunk > 0 then begin
      ignore (Vfs.append file (Buffer.to_bytes chunk) : int);
      Buffer.clear chunk
    end
  in
  Table.scan tbl (fun _ tuple ->
      let keep =
        match where with None -> true | Some e -> Expr.eval_pred schema tuple e
      in
      if keep then begin
        Buffer.add_bytes chunk (Codec.encode_binary schema tuple);
        if Buffer.length chunk + width > 4096 then flush_chunk ()
      end);
  flush_chunk ();
  Vfs.fsync file;
  let bytes = Vfs.size file in
  Vfs.close file;
  { rows = !rows; bytes }

(* reading *)

let read_all vfs fname =
  match Vfs.open_existing vfs fname with
  | exception Not_found -> Error (Printf.sprintf "no such file %s" fname)
  | file ->
    let len = Vfs.size file in
    let data = if len = 0 then Bytes.create 0 else Vfs.read_at file ~off:0 ~len in
    Vfs.close file;
    Ok data

let parse_header data =
  let len = Bytes.length data in
  let line_end pos =
    let rec go i = if i >= len then len else if Bytes.get data i = '\n' then i else go (i + 1) in
    go pos
  in
  let read_line pos =
    let e = line_end pos in
    (Bytes.sub_string data pos (e - pos), e + 1)
  in
  let mlen = String.length magic in
  if len < mlen || Bytes.sub_string data 0 mlen <> magic then Error "bad magic"
  else begin
    let product, pos = read_line mlen in
    if product <> product_tag then
      Error (Printf.sprintf "product mismatch: file is %S, this engine is %S" product product_tag)
    else begin
      let key_line, pos = read_line pos in
      match
        if String.length key_line > 10 && String.sub key_line 0 10 = "key_arity=" then
          int_of_string_opt (String.sub key_line 10 (String.length key_line - 10))
        else None
      with
      | None -> Error "bad key_arity line"
      | Some key_arity ->
        let rec cols pos acc =
          let line, next = read_line pos in
          if line = "" then (List.rev acc, next)
          else
            match String.split_on_char '\t' line with
            | [ name; ty_str; null_str ] -> (
                match Value.ty_of_string ty_str with
                | Some ty ->
                  cols next ({ Schema.name; ty; nullable = null_str = "null" } :: acc)
                | None -> (List.rev acc, next) (* triggers schema error below *))
            | _ -> (List.rev acc, next)
        in
        let columns, pos = cols pos [] in
        if columns = [] then Error "no columns in header"
        else begin
          let rows_line, pos = read_line pos in
          match
            if String.length rows_line > 5 && String.sub rows_line 0 5 = "rows=" then
              int_of_string_opt (String.sub rows_line 5 (String.length rows_line - 5))
            else None
          with
          | None -> Error "bad rows line"
          | Some rows -> (
              match Schema.make ~key_arity columns with
              | schema -> Ok (schema, rows, pos)
              | exception Invalid_argument msg -> Error msg)
        end
    end
  end

let read_header vfs fname =
  match read_all vfs fname with
  | Error e -> Error e
  | Ok data -> (
      match parse_header data with
      | Ok (schema, rows, _) -> Ok (schema, rows)
      | Error e -> Error e)

let iter_records vfs fname ~f =
  match read_all vfs fname with
  | Error e -> Error e
  | Ok data -> (
      match parse_header data with
      | Error e -> Error e
      | Ok (schema, rows, pos) ->
        let width = Schema.record_size schema in
        let len = Bytes.length data in
        let rec go pos n =
          if pos + width <= len && n < rows then begin
            f (Codec.decode_binary schema data pos);
            go (pos + width) (n + 1)
          end
          else n
        in
        let n = go pos 0 in
        if n <> rows then Error (Printf.sprintf "expected %d rows, file holds %d" rows n)
        else Ok n)
