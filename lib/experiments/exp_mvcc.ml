(* W3 — measured OLAP availability under snapshot-isolation reads.

   The same online-refresh setting as W2R (an effect-handler scheduler
   interleaves the micro-batched integrator with OLAP reader sessions
   over one warehouse, real 2PL), but the readers' transaction mode is
   the experimental variable:

   - snapshot arm: readers run in [`Snapshot] mode (the Olap default) —
     no locks, visibility from the version store at their begin CSN;
   - locking arm: readers run in [`Read_write] mode — shared table
     locks, so they queue behind the integrator's exclusive locks;
   - batch arm: the whole maintenance cycle as ONE value-delta
     transaction, the paper's offline refresh — its duration is the
     outage a locking reader would see in the worst case.

   The interesting second-order effect: the batched integrator's AIMD
   valve shrinks its runs when reader lock-waits climb, so locking
   readers also throttle the refresh.  Snapshot readers generate no
   lock-waits at all, which keeps the valve wide open.  (The reported
   refresh-window wall-clock still includes interleaved reader slices —
   the scheduler is cooperative — so the windows of the two arms are
   comparable, not an outage measure; the batch arm's duration is the
   outage contrast.)

   Emitted metrics (the w3.* keys gated by tools/validate_bench_json.ml):
   - histograms  w3.olap_latency_snapshot / w3.olap_latency_locking
     (per-query wall-clock seconds, one sample per reader session)
   - gauges      w3.olap_p95_snapshot_s / w3.olap_p95_locking_s,
                 w3.lock_wait_count_snapshot / w3.lock_wait_count_locking,
                 w3.reader_blocked_slices_snapshot / ..._locking,
                 w3.refresh_window_snapshot_s / w3.refresh_window_locking_s,
                 w3.batch_outage_s *)

module Vfs = Dw_storage.Vfs
module Db = Dw_engine.Db
module Scheduler = Dw_engine.Scheduler
module Metrics = Dw_util.Metrics
module Workload = Dw_workload.Workload
module Op_delta = Dw_core.Op_delta
module Trigger_extract = Dw_core.Trigger_extract
module Warehouse = Dw_warehouse.Warehouse
module Olap = Dw_warehouse.Olap
open Bench_support

let reader_count = 6
let txns = 20
let txn_size = 25

let maintenance_stream () =
  List.init txns (fun i ->
      Op_delta.make ~txn_id:i
        [ Workload.update_parts_stmt ~first_id:(1 + (i * 60)) ~size:txn_size ])

let arm_label = function `Snapshot -> "snapshot" | `Read_write -> "locking"

(* one scheduled run: micro-batched integrator vs staggered OLAP readers
   whose transactions use [mode]; returns (scheduler report, refresh
   window seconds) and leaves the w3.* samples in the db's registry *)
let run_arm ~table_rows mode =
  let label = arm_label mode in
  let wh = Exp_warehouse.mk_warehouse ~replica_rows:table_rows in
  let db = Warehouse.db wh in
  let metrics = Db.metrics db in
  let ods = maintenance_stream () in
  let queries = Olap.standard_queries ~table:"parts" in
  let refresh = ref 0.0 in
  let integrator =
    {
      Scheduler.name = "integrator";
      start_at = 0;
      work =
        (fun () ->
          let t0 = Unix.gettimeofday () in
          ignore (Warehouse.integrate_op_deltas_batched wh ods : Warehouse.stats);
          refresh := Unix.gettimeofday () -. t0);
    }
  in
  let readers =
    List.init reader_count (fun i ->
        {
          Scheduler.name = Printf.sprintf "olap-%d" i;
          start_at = 2 + (i * 3);
          work =
            (fun () ->
              let q = List.nth queries (i mod List.length queries) in
              match Olap.run ~mode wh q with
              | Ok r -> Metrics.observe metrics ("w3.olap_latency_" ^ label) r.Olap.duration
              | Error e -> failwith e);
        })
  in
  let report = Scheduler.run db (integrator :: readers) in
  List.iter
    (fun s ->
      match s.Scheduler.failed with
      | Some e -> failwith (Printf.sprintf "w3 %s arm: session %s failed: %s" label s.Scheduler.session e)
      | None -> ())
    report.Scheduler.sessions;
  let reader_blocked =
    List.fold_left
      (fun acc s ->
        if s.Scheduler.session = "integrator" then acc else acc + s.Scheduler.blocked_slices)
      0 report.Scheduler.sessions
  in
  Metrics.set_gauge metrics
    ("w3.olap_p95_" ^ label ^ "_s")
    (Metrics.percentile metrics ("w3.olap_latency_" ^ label) 0.95);
  Metrics.set_gauge metrics ("w3.lock_wait_count_" ^ label)
    (float_of_int (Metrics.observed_count metrics "lock.wait"));
  Metrics.set_gauge metrics
    ("w3.reader_blocked_slices_" ^ label)
    (float_of_int reader_blocked);
  Metrics.set_gauge metrics ("w3.refresh_window_" ^ label ^ "_s") !refresh;
  (report, !refresh)

(* the offline contrast: the whole cycle as one value-delta batch
   transaction; readers would be locked out for its entire duration *)
let run_batch_arm ~table_rows =
  let src = fresh_source ~rows:(table_rows + (txns * 60)) () in
  Db.set_day src (Db.current_day src + 1);
  let handle = Trigger_extract.install src ~table:"parts" in
  List.iter
    (fun od ->
      Db.with_txn src (fun txn ->
          List.iter
            (fun (op : Op_delta.op) -> ignore (Db.exec src txn op.Op_delta.stmt : Db.exec_result))
            od.Op_delta.ops))
    (maintenance_stream ());
  let vd = Trigger_extract.collect src handle in
  let wh = Exp_warehouse.mk_warehouse ~replica_rows:table_rows in
  let metrics = Db.metrics (Warehouse.db wh) in
  let t0 = Unix.gettimeofday () in
  ignore (Warehouse.integrate_value_delta wh vd : Warehouse.stats);
  let outage = Unix.gettimeofday () -. t0 in
  Metrics.set_gauge metrics "w3.batch_outage_s" outage;
  outage

let run_w3 ~scale =
  section "W3: OLAP latency and refresh window - snapshot vs locking reads vs batch";
  let table_rows = scaled 2_000 ~scale in
  let snap_report, snap_refresh = run_arm ~table_rows `Snapshot in
  let lock_report, lock_refresh = run_arm ~table_rows `Read_write in
  let outage = run_batch_arm ~table_rows in
  let blocked rep =
    List.fold_left
      (fun acc s ->
        if s.Scheduler.session = "integrator" then acc else acc + s.Scheduler.blocked_slices)
      0 rep.Scheduler.sessions
  in
  let show name (rep : Scheduler.report) refresh =
    [
      name;
      string_of_int (blocked rep);
      string_of_int rep.Scheduler.total_slices;
      dur refresh;
    ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "%d maintenance txns (%d-row updates, micro-batched) vs %d OLAP readers over %d rows"
         txns txn_size reader_count table_rows)
    ~header:[ "reader mode"; "reader blocked slices"; "makespan (slices)"; "refresh window" ]
    ~rows:
      [
        show "snapshot (lock-free)" snap_report snap_refresh;
        show "locking (2PL shared)" lock_report lock_refresh;
      ];
  Printf.printf
    "value-delta batch outage (offline contrast): %s\n\
     shape check: snapshot readers never block (0 blocked slices, empty lock.wait), so the \
     valve keeps refresh runs wide open; locking readers queue behind the integrator's \
     exclusive locks and would face the full %s outage under offline batch refresh\n"
    (dur outage) (dur outage)
