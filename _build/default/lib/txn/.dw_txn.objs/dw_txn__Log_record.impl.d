lib/txn/log_record.ml: Buffer Bytes Char Dw_storage Format Int32 Int64 List Printf String
