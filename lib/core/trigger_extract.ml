module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Trigger = Dw_engine.Trigger
module Export_util = Dw_engine.Export_util
module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Value = Dw_relation.Value
module Heap_file = Dw_storage.Heap_file

type handle = {
  source : string;
  delta_table : string;
  trigger_name : string;
  schema : Schema.t;        (* source schema *)
  delta_schema : Schema.t;
  seq : int ref;
}

let delta_table_name h = h.delta_table
let source_table h = h.source

(* delta table layout: seq, kind ("I" insert-new / "D" delete-old /
   "O" update-old / "N" update-new), then every source column *)
let delta_schema_of schema =
  Schema.make
    ({ Schema.name = "__seq"; ty = Value.Tint; nullable = false }
     :: { Schema.name = "__kind"; ty = Value.Tstring 1; nullable = false }
     :: Schema.columns schema)

let install db ~table =
  let tbl = Db.table db table in
  let schema = Table.schema tbl in
  let delta_table = table ^ "__delta" in
  let trigger_name = "capture__" ^ table in
  if List.mem trigger_name (Db.triggers_on db table) then
    invalid_arg (Printf.sprintf "Trigger_extract: already installed on %s" table);
  let delta_schema = delta_schema_of schema in
  (match Db.table_opt db delta_table with
   | Some _ -> ()
   | None -> ignore (Db.create_table db ~name:delta_table delta_schema : Table.t));
  let seq = ref 0 in
  let write (ctx : Db.trigger_ctx) kind tuple =
    incr seq;
    let row = Array.append [| Value.Int !seq; Value.Str kind |] tuple in
    ignore (Db.insert ctx.Db.ctx_db ctx.Db.ctx_txn delta_table row : Heap_file.rid)
  in
  let action ctx event =
    match event with
    | Trigger.Inserted (_, after) -> write ctx "I" after
    | Trigger.Deleted (_, before) -> write ctx "D" before
    | Trigger.Updated (_, before, after) ->
      write ctx "O" before;
      write ctx "N" after
  in
  Db.add_trigger db ~table
    { Trigger.name = trigger_name;
      on = [ Trigger.On_insert; Trigger.On_delete; Trigger.On_update ];
      action };
  { source = table; delta_table; trigger_name; schema; delta_schema; seq }

let uninstall db h = Db.remove_trigger db ~table:h.source h.trigger_name

let capture_units ~images = float_of_int images
let work_units ~images = float_of_int images

let strip h row = Array.sub row 2 (Schema.arity h.schema)

let collect ?(drain = false) db h =
  let tbl = Db.table db h.delta_table in
  let rows = ref [] in
  Table.scan tbl (fun _ row -> rows := row :: !rows);
  let rows =
    List.sort
      (fun a b ->
        match a.(0), b.(0) with
        | Value.Int x, Value.Int y -> compare x y
        | _ -> 0)
      !rows
  in
  let rec to_changes = function
    | [] -> []
    | row :: rest -> (
        let kind = match row.(1) with Value.Str s -> s | _ -> "?" in
        match kind, rest with
        | "I", _ -> Delta.Insert (strip h row) :: to_changes rest
        | "D", _ -> Delta.Delete (strip h row) :: to_changes rest
        | "O", next :: rest' when (match next.(1) with Value.Str "N" -> true | _ -> false) ->
          Delta.Update (strip h row, strip h next) :: to_changes rest'
        | "O", _ ->
          (* torn pair (should not happen): degrade to delete *)
          Delta.Delete (strip h row) :: to_changes rest
        | "N", _ -> Delta.Insert (strip h row) :: to_changes rest
        | _, _ -> to_changes rest)
  in
  let delta = Delta.make ~table:h.source ~schema:h.schema (to_changes rows) in
  if drain then
    ignore (Db.with_txn db (fun txn -> Db.delete_where db txn h.delta_table ~where:None) : int);
  delta

let export_delta db h ~dest = Export_util.export_table db ~table:h.delta_table ~dest ()
