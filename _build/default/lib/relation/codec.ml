let set_i64 buf off v = Bytes.set_int64_le buf off v
let get_i64 buf off = Bytes.get_int64_le buf off

let encode_binary_into schema tuple buf off =
  Tuple.validate_exn schema tuple;
  let n = Schema.arity schema in
  let bitmap_bytes = (n + 7) / 8 in
  Bytes.fill buf off bitmap_bytes '\000';
  (* null bitmap: bit i set = column i is NULL *)
  Array.iteri
    (fun i v ->
      if Value.is_null v then begin
        let byte = off + (i / 8) in
        Bytes.set buf byte (Char.chr (Char.code (Bytes.get buf byte) lor (1 lsl (i mod 8))))
      end)
    tuple;
  let pos = ref (off + bitmap_bytes) in
  for i = 0 to n - 1 do
    let col = Schema.column schema i in
    let width = Value.encoded_size col.Schema.ty in
    begin
      match tuple.(i) with
      | Value.Null -> Bytes.fill buf !pos width '\000'
      | Value.Int v -> set_i64 buf !pos (Int64.of_int v)
      | Value.Date v -> set_i64 buf !pos (Int64.of_int v)
      | Value.Float v -> set_i64 buf !pos (Int64.bits_of_float v)
      | Value.Bool v -> Bytes.set buf !pos (if v then '\001' else '\000')
      | Value.Str s ->
        let len = String.length s in
        Bytes.set_uint16_le buf !pos len;
        Bytes.blit_string s 0 buf (!pos + 2) len;
        Bytes.fill buf (!pos + 2 + len) (width - 2 - len) '\000'
    end;
    pos := !pos + width
  done

let encode_binary schema tuple =
  let buf = Bytes.create (Schema.record_size schema) in
  encode_binary_into schema tuple buf 0;
  buf

let decode_binary schema buf off =
  let n = Schema.arity schema in
  let bitmap_bytes = (n + 7) / 8 in
  let is_null i =
    Char.code (Bytes.get buf (off + (i / 8))) land (1 lsl (i mod 8)) <> 0
  in
  let pos = ref (off + bitmap_bytes) in
  Array.init n (fun i ->
      let col = Schema.column schema i in
      let width = Value.encoded_size col.Schema.ty in
      let p = !pos in
      pos := !pos + width;
      if is_null i then Value.Null
      else
        match col.Schema.ty with
        | Value.Tint -> Value.Int (Int64.to_int (get_i64 buf p))
        | Value.Tdate -> Value.Date (Int64.to_int (get_i64 buf p))
        | Value.Tfloat -> Value.Float (Int64.float_of_bits (get_i64 buf p))
        | Value.Tbool -> Value.Bool (Bytes.get buf p <> '\000')
        | Value.Tstring _ ->
          let len = Bytes.get_uint16_le buf p in
          Value.Str (Bytes.sub_string buf (p + 2) len))

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '|' -> Buffer.add_string buf "\\p"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\\' -> Buffer.add_string buf "\\\\"
      | _ -> Buffer.add_char buf c)
    s

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '\\' && i + 1 < n then begin
        (match s.[i + 1] with
         | 'p' -> Buffer.add_char buf '|'
         | 'n' -> Buffer.add_char buf '\n'
         | '\\' -> Buffer.add_char buf '\\'
         | c -> Buffer.add_char buf c);
        go (i + 2)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let encode_ascii schema tuple =
  Tuple.validate_exn schema tuple;
  let buf = Buffer.create 128 in
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf '|';
      match v with
      | Value.Null -> Buffer.add_string buf "\\0"
      | Value.Int n -> Buffer.add_string buf (string_of_int n)
      | Value.Date d -> Buffer.add_string buf (string_of_int d)
      | Value.Float f -> Buffer.add_string buf (Printf.sprintf "%.17g" f)
      | Value.Bool b -> Buffer.add_string buf (if b then "T" else "F")
      | Value.Str s -> escape_into buf s)
    tuple;
  Buffer.contents buf

let split_fields line =
  (* split on unescaped '|' *)
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let n = String.length line in
  let rec go i =
    if i >= n then fields := Buffer.contents buf :: !fields
    else
      match line.[i] with
      | '|' ->
        fields := Buffer.contents buf :: !fields;
        Buffer.clear buf;
        go (i + 1)
      | '\\' when i + 1 < n ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf line.[i + 1];
        go (i + 2)
      | c ->
        Buffer.add_char buf c;
        go (i + 1)
  in
  go 0;
  List.rev !fields

let decode_ascii schema line =
  let fields = split_fields line in
  if List.length fields <> Schema.arity schema then
    Error (Printf.sprintf "field count %d does not match schema arity %d"
             (List.length fields) (Schema.arity schema))
  else begin
    let result = ref (Ok ()) in
    let tuple =
      Array.of_list
        (List.mapi
           (fun i field ->
             let col = Schema.column schema i in
             if field = "\\0" then Value.Null
             else
               match col.Schema.ty with
               | Value.Tint ->
                 (match int_of_string_opt field with
                  | Some n -> Value.Int n
                  | None -> result := Error (Printf.sprintf "bad int %S" field); Value.Null)
               | Value.Tdate ->
                 (match int_of_string_opt field with
                  | Some n -> Value.Date n
                  | None -> result := Error (Printf.sprintf "bad date %S" field); Value.Null)
               | Value.Tfloat ->
                 (match float_of_string_opt field with
                  | Some f -> Value.Float f
                  | None -> result := Error (Printf.sprintf "bad float %S" field); Value.Null)
               | Value.Tbool ->
                 (match field with
                  | "T" -> Value.Bool true
                  | "F" -> Value.Bool false
                  | _ -> result := Error (Printf.sprintf "bad bool %S" field); Value.Null)
               | Value.Tstring _ -> Value.Str (unescape field))
           fields)
    in
    match !result with
    | Error e -> Error e
    | Ok () ->
      (match Tuple.validate schema tuple with
       | Ok () -> Ok tuple
       | Error e -> Error e)
  end
