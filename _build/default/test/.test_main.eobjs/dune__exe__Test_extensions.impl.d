test/test_extensions.ml: Alcotest Array Dw_core Dw_engine Dw_relation Dw_storage Dw_txn Dw_util Dw_workload List
