(** Persistent queue with transactional dequeue (the paper's "persistent
    queues / fault tolerant logs" transport option).

    Messages are appended to a checksummed log file; the consumer position
    lives in a sidecar offset file that is only advanced by {!ack}.  After
    a crash (or plain re-open) every enqueued-but-unacked message is
    redelivered — at-least-once delivery, which is what a warehouse
    integrator needs to never lose a delta batch.

    Crash hardening on {!open_}: a torn frame at the log tail (crash
    mid-enqueue) is truncated away so later enqueues stay reachable
    ([queue.torn_frames]/[queue.torn_bytes] counters); the sidecar carries
    a checksum and is only honoured when it is whole, checksums cleanly,
    and points at a frame boundary — otherwise the position conservatively
    resets to 0 ([queue.offset_resets]), trading redelivery for the
    guarantee that an unacked message is never skipped.

    {b Batching.}  Each {!enqueue} costs one append plus one fsync and
    each {!ack} one sidecar write plus one fsync.  For streams of small
    op-delta messages that dominates the transport cost, so the queue
    also offers a coalesced path: {!enqueue_batch} appends many frames
    in one durable write, {!peek_run} returns a run of consecutive
    messages, and {!ack_run} consumes the run under a single sidecar
    update.  Per-message framing (and so per-message checksums) is
    preserved on disk — a batch is a packing decision, not a format
    change, and batched and unbatched producers/consumers interoperate
    on the same queue file. *)

module Vfs = Dw_storage.Vfs

type t

val open_ : Vfs.t -> name:string -> t
(** Creates the queue files if missing, otherwise recovers position. *)

val enqueue : t -> string -> unit
(** Durable once the call returns (fsync). *)

val enqueue_batch : t -> string list -> unit
(** Append every payload as its own checksummed frame under a {e single}
    append + fsync — the messages become durable atomically in order
    (a crash mid-call retains a frame-boundary prefix of the batch,
    which {!open_}'s tail repair preserves and at-least-once delivery
    permits).  Observes the batch size into [queue.batch_size].  No-op
    on [[]]. *)

val peek : t -> string option
(** The oldest unacked message; [None] when drained. *)

val peek_run : t -> max:int -> string list
(** Up to [max] consecutive unacked messages starting at the oldest,
    without consuming them; [[]] when drained.  Raises
    [Invalid_argument] if [max < 1].  Pair with {!ack_run} to amortize
    the sidecar fsync over the whole run. *)

val ack : t -> unit
(** Consume the message last returned by {!peek}.  Raises
    [Invalid_argument] if there is nothing to ack. *)

val ack_run : t -> int -> unit
(** Consume the oldest [n] unacked messages under a single sidecar
    write + fsync, observing the run length into [queue.ack_run].
    Raises [Invalid_argument] if [n < 0] or [n > pending t].  No-op on
    [0].  Invalidates any outstanding {!peek}. *)

val pending : t -> int
(** Number of unacked messages. *)

val close : t -> unit
(** Close both files; the queue state stays on the Vfs for re-{!open_}. *)

val enqueued_total : t -> int
(** Messages ever enqueued (including before a re-open). *)

(** {2 Wire format helpers} — the queue's per-message framing
    ([u32 len][u32 fnv1a][payload]) reused by {!File_ship.ship_messages}
    so shipped blocks carry the same per-message checksums as the queue
    log. *)

val checksum : string -> int
(** FNV-1a (32-bit) of a payload — the per-frame checksum. *)

val encode_frames : string list -> bytes
(** Concatenated checksummed frames, one per payload. *)

val decode_frames : bytes -> (string list, string) result
(** Inverse of {!encode_frames}.  [Error _] describes the first torn or
    corrupt frame (offset included); payloads before it are not
    returned — a shipped block is accepted whole or rejected whole. *)
