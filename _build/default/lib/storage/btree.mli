(** In-memory B+tree keyed by tuples ({!Dw_relation.Tuple.compare} order).

    Used as the table index structure (primary-key index, and the optional
    index on the [last_modified] timestamp column that the timestamp-based
    extractor can exploit).  Leaves are chained, so range scans are
    sequential.  Deletion rebalances (borrow from sibling, else merge), so
    the depth bound holds under arbitrary workloads. *)

module Tuple = Dw_relation.Tuple

type 'a t

val create : ?branching:int -> unit -> 'a t
(** [branching] is the maximum number of keys per node (default 32,
    minimum 4, must be even). *)

val of_sorted : ?branching:int -> (Tuple.t * 'a) list -> 'a t
(** Bulk-load from strictly key-ascending bindings — O(n), packed leaves
    (used by index rebuilds after bulk loads).  Raises [Invalid_argument]
    if the input is not strictly ascending. *)

val insert : 'a t -> Tuple.t -> 'a -> unit
(** Replaces the binding if the key is already present. *)

val find : 'a t -> Tuple.t -> 'a option
val mem : 'a t -> Tuple.t -> bool

val remove : 'a t -> Tuple.t -> bool
(** [true] iff the key was present. *)

val cardinal : 'a t -> int

type bound =
  | Unbounded
  | Incl of Tuple.t
  | Excl of Tuple.t

val iter_range : 'a t -> lo:bound -> hi:bound -> (Tuple.t -> 'a -> unit) -> unit
(** In ascending key order. *)

val iter : 'a t -> (Tuple.t -> 'a -> unit) -> unit
val to_list : 'a t -> (Tuple.t * 'a) list
val min_binding : 'a t -> (Tuple.t * 'a) option
val max_binding : 'a t -> (Tuple.t * 'a) option

val depth : 'a t -> int
(** Height of the tree (0 for empty); exposed for tests. *)

val check_invariants : 'a t -> (unit, string) result
(** Structural validation: key ordering, separator correctness, node fill
    bounds, uniform leaf depth, leaf chain completeness.  For tests. *)
