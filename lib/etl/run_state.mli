(** Persistent bootstrap run state, stored {e in the warehouse database}
    so progress commits atomically with the chunk/delta transactions it
    describes (same WAL, same recovery path — after a crash,
    {!Dw_engine.Db.reopen} brings back exactly the progress rows whose
    data also survived).

    One row per bootstrapped table in the [__bootstrap_state] table:
    the run id, the load state, the keyset chunk cursor, the
    applied-through source transaction id (the exactly-once filter for
    queue redelivery), and the [is_running] lease that makes overlapping
    runs impossible.  A small append-only checksummed journal file on the
    warehouse VFS records run/step transitions for observability and
    post-mortems; it is advisory — recovery never depends on it. *)

module Db = Dw_engine.Db

type state =
  | Bootstrapping  (** chunks still loading, or catch-up not finished *)
  | Complete       (** consistent snapshot reached; steady-state handoff done *)

type row = {
  table : string;        (** source/replica table being bootstrapped *)
  run_id : string;       (** identifies the owning run across resumes *)
  state : state;         (** load state (see above) *)
  next_key : int;        (** first primary key not yet chunk-loaded *)
  chunks_done : int;     (** chunks durably applied *)
  rows_loaded : int;     (** chunk rows durably applied (post-dedup) *)
  last_txn : int;        (** highest source txn id applied (exactly-once mark) *)
  lease_owner : string;  (** "" = no lease held *)
  lease_expiry : float;  (** registry-clock time the lease lapses *)
}

val table_name : string
(** ["__bootstrap_state"]. *)

val schema : Dw_relation.Schema.t
(** Exported so crash-recovery callers can include the state table in
    their {!Db.reopen} catalog. *)

val ensure_table : Db.t -> unit
(** Create [__bootstrap_state] if missing. *)

val get : Db.t -> Db.txn -> table:string -> row option
(** The state row for [table], if a bootstrap ever started. *)

val put : Db.t -> Db.txn -> row -> unit
(** Upsert the state row inside the caller's transaction — callers pass
    the same transaction that applies the chunk or delta, which is the
    whole point. *)

val journal_append : Dw_storage.Vfs.t -> table:string -> string -> unit
(** Append one checksummed record to the table's advisory run journal
    ([bootstrap.<table>.journal]) and fsync. *)

val journal_read : Dw_storage.Vfs.t -> table:string -> string list
(** Valid journal records, oldest first; stops at the first corrupt
    record (torn tail), missing file reads as empty. *)
