examples/quickstart.ml: Dw_core Dw_engine Dw_relation Dw_sql Dw_storage Format List Printf String
