(** The staging tier of the partitioned refresh: bucket op-delta runs by
    partition before load.

    This is the intermediate level of Liu's two-level data staging shape
    (PAPERS.md): incoming op-delta transactions are split {e before}
    integration into one delta stream per partition of a
    {!Dw_warehouse.Partition} spec, so
    {!Dw_warehouse.Partitioned.refresh} can apply independent
    partitions' buckets concurrently.

    Routing is by statement analysis against the spec's key column:
    - an INSERT into the fact table is {e decomposed} — each row goes
      only to the shard owning its key, so a multi-row insert becomes at
      most one smaller insert per partition;
    - an UPDATE/DELETE whose WHERE clause confines the key to one
      partition (conjunctions of comparisons against literals, the same
      conservative analysis the engine's index planner uses) is routed
      to that single partition;
    - anything else — an unconfined predicate, a statement on a
      replicated (non-fact) table, a non-DML statement — is
      {e broadcast} to every bucket.  Broadcast is always safe: each
      shard holds only its own rows, so re-executing the statement
      everywhere touches exactly the rows the monolithic execution
      would have;
    - an UPDATE whose SET list assigns the partition key is rejected
      ([Invalid_argument]) — the updated rows could migrate between
      shards, which statement re-execution cannot express.  Source-side
      capture must ship such changes as DELETE + INSERT.

    Per-partition buckets preserve source commit order and transaction
    ids, so each shard's stream is a subsequence of the source history
    and the per-shard watermark filtering stays exactly-once.

    Fact-table INSERTs written in schema order (no explicit column list)
    are keyed on their {e first} value — the fact table's leading key
    column is the partition key, which
    {!Dw_warehouse.Partitioned.add_replica} enforces. *)

module Partition = Dw_warehouse.Partition
module Op_delta = Dw_core.Op_delta
module Ast = Dw_sql.Ast

(** Where one statement must execute. *)
type route =
  | To of int  (** exactly the one partition owning every affected row *)
  | All  (** every partition (safe fallback; inserts are never [All]) *)

val route_stmt : spec:Partition.t -> Ast.stmt -> route
(** Routing decision for one non-INSERT statement (INSERTs are
    decomposed row-wise by {!split} instead; calling this on a fact-
    table INSERT returns the route of its first row's key).  Raises
    [Invalid_argument] on a fact-table UPDATE that assigns the
    partition key, and on a fact-table INSERT carrying a non-integer or
    missing key. *)

(** Staging tallies for one {!split} call (observability: T6 reports
    them as gauges). *)
type stats = {
  txns : int;  (** source transactions staged *)
  statements : int;  (** statements examined *)
  routed : int;  (** statements sent to exactly one bucket *)
  broadcast : int;  (** statements copied into every bucket *)
  split_rows : int;  (** fact-table INSERT rows decomposed row-wise *)
}

val split : spec:Partition.t -> Op_delta.t list -> Op_delta.t list array * stats
(** Stage a run of op-delta transactions into per-partition buckets
    (array length [Partition.partitions spec], index-aligned with
    {!Dw_warehouse.Partitioned} shards).  Each source transaction
    contributes at most one op-delta per bucket, keeping its [txn_id];
    transactions contributing nothing to a partition simply do not
    appear in that bucket.  Raises [Invalid_argument] on the statements
    {!route_stmt} rejects. *)
