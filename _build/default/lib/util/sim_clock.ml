type t = { mutable time : int }

let create () = { time = 0 }
let now t = t.time

let advance t d =
  assert (d >= 0);
  t.time <- t.time + d

module Span_recorder = struct
  type clock = t

  type t = {
    clock : clock;
    mutable opened_at : int option;
    mutable total : int;
    mutable count : int;
  }

  let create clock = { clock; opened_at = None; total = 0; count = 0 }

  let open_span t =
    match t.opened_at with
    | Some _ -> ()
    | None -> t.opened_at <- Some (now t.clock)

  let close_span t =
    match t.opened_at with
    | None -> ()
    | Some start ->
      t.total <- t.total + (now t.clock - start);
      t.count <- t.count + 1;
      t.opened_at <- None

  let total t =
    match t.opened_at with
    | None -> t.total
    | Some start -> t.total + (now t.clock - start)

  let count t = t.count
end
