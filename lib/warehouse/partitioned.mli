(** The partitioned warehouse: one engine shard per partition, refreshed
    in parallel.

    The engine ({!Dw_engine.Db}) is single-writer — its WAL, undo logs
    and trigger path assume one mutating domain — so partitioning is
    {e physical}: a partitioned warehouse is [partitions spec] complete
    {!Warehouse.t} shards, each over its own {!Dw_storage.Vfs} (own WAL,
    buffer pool, lock table and metrics registry), each owning exactly
    the fact-table rows the {!Partition} spec routes to it.  Replicated
    (dimension) tables are copied whole into every shard.  Because the
    shards share no mutable engine state, {!refresh} can apply
    independent partitions' delta buckets concurrently, one
    {!Dw_util.Domain_pool} worker per shard, and each shard keeps the
    PR 3 AIMD backpressure valve working against {e its own} [lock.wait]
    p95 — a hot partition throttles without slowing its siblings.

    {b Equivalence.}  The staged-and-partitioned refresh is logically
    equivalent to {!Warehouse.integrate_op_deltas} on a monolithic
    warehouse: every routed statement executes on the one shard owning
    its rows, broadcast statements execute everywhere but only match
    each shard's own rows, and per-partition delta order preserves
    source commit order.  Merged reads ({!replica_rows}, {!view_rows},
    {!agg_view_rows}) return sorted logical state, pinned equal to the
    sequential integrator by a qcheck property (heap order is the one
    thing scheduling may permute).  Aggregate merging combines COUNT and
    SUM additively and MIN/MAX by comparison; exactness therefore relies
    on associative addition — the pinned workloads aggregate integer
    columns, and float SUMs may differ in low-order bits from the
    monolithic accumulation order.

    {b Crash semantics.}  Each shard stores an applied-through source
    transaction id ([__refresh_progress]) committed in the same shard
    transaction as every run it applies, so a crash mid-refresh leaves
    every shard at a source-transaction boundary of its own bucket
    stream, and re-running {!refresh} with the same buckets after
    {!reopen} applies only what is missing — exactly-once per shard. *)

module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Db = Dw_engine.Db
module Op_delta = Dw_core.Op_delta
module Spj_view = Dw_core.Spj_view
module Agg_view = Dw_core.Agg_view
module Vfs = Dw_storage.Vfs
module Domain_pool = Dw_util.Domain_pool

type t
(** A partitioned warehouse: [Partition.partitions spec] shards. *)

val create :
  ?pool_pages:int ->
  ?pool_stripes:int ->
  ?op_delay:float ->
  spec:Partition.t ->
  name:string ->
  unit ->
  t
(** Build the shards, each over a fresh in-memory {!Vfs} (created with
    [op_delay] simulated seconds per I/O — the experiments' I/O-bound
    knob), persist [spec] into every shard's metadata, and create the
    per-shard [__refresh_progress] watermark table.  [pool_pages] and
    [pool_stripes] are per shard. *)

val spec : t -> Partition.t
(** The placement spec the warehouse was created (or reopened) with. *)

val partitions : t -> int
(** Shard count ([Partition.partitions (spec t)]). *)

val shard : t -> int -> Warehouse.t
(** Direct access to one shard (tests and metrics inspection; shard
    registries are [Db.metrics (Warehouse.db (shard t i))]). *)

val vfss : t -> Vfs.t array
(** The per-shard file systems, index-aligned with shards — what a
    crash explorer arms faults on and {!reopen} re-adopts. *)

val add_replica : t -> table:string -> schema:Schema.t -> unit
(** Create the replica on every shard.  For the partitioned fact table
    ([Partition.table (spec t)]) the schema's leading key column must be
    the spec's key column (raises [Invalid_argument] otherwise); any
    other table is treated as replicated — every shard holds a full
    copy. *)

val load_replica : t -> table:string -> Tuple.t list -> unit
(** Initial load: fact-table rows are routed each to its owning shard;
    replicated-table rows are copied to every shard. *)

val define_view : t -> Spj_view.t -> unit
(** Define a select-project view on every shard (each maintains it over
    its own row slice).  Join views raise [Invalid_argument]: their
    cross-partition row pairs would be invisible to every shard. *)

val define_agg_view : t -> Agg_view.t -> unit
(** Define an aggregate view on every shard; reads merge the per-shard
    groups ({!agg_view_rows}).  All of COUNT/SUM/MIN/MAX merge. *)

val replica_rows : t -> string -> Tuple.t list
(** Merged logical contents: the fact table is the concatenation of the
    shards' slices, a replicated table is shard 0's copy; both sorted
    (heap order is shard-local and scheduling-dependent). *)

val view_rows : t -> string -> (Tuple.t * int) list
(** Merged materialized view rows: per-shard multiplicities summed per
    output row (each base row lives on exactly one shard), sorted. *)

val agg_view_rows : t -> string -> (Tuple.t * int) list
(** Merged aggregate view rows: group cardinalities and COUNT/SUM
    combine additively, MIN/MAX by comparison, sorted by group. *)

val watermarks : t -> int array
(** Per-shard applied-through source transaction id (0 before any
    refresh) — the exactly-once filter {!refresh} applies. *)

val refresh :
  ?policy:Warehouse.batch_policy ->
  pool:Domain_pool.t ->
  t ->
  Op_delta.t list array ->
  Warehouse.stats
(** Apply staged per-partition delta buckets (index-aligned with shards,
    as produced by [Dw_etl.Stage.split]) concurrently, one pool task per
    shard.  Each shard filters its bucket by its watermark, then applies
    valve-governed runs: each run is one shard transaction
    ({!Warehouse.integrate_op_delta_run_marked}) carrying the watermark
    advance, its size observed into that shard's [warehouse.batch_size]
    histogram; the run-length target halves (floored at
    [policy.min_batch]) when the {e shard's own} [lock.wait] p95 exceeds
    [policy.lock_wait_p95_s] and recovers +1 otherwise — the per-
    partition valve.  Returns summed stats (durations add across shards;
    wall-clock is the caller's to measure).  Raises [Invalid_argument]
    on a bucket array of the wrong length or an invalid policy. *)

val reopen :
  ?pool_pages:int ->
  ?pool_stripes:int ->
  replicas:(string * Schema.t) list ->
  views:Spj_view.t list ->
  agg_views:Agg_view.t list ->
  spec:Partition.t ->
  name:string ->
  vfss:Vfs.t array ->
  unit ->
  t
(** Re-adopt a crashed partitioned warehouse from its shards' surviving
    bytes: per shard, {!Vfs.crash_reset} + {!Db.reopen} (catalog built
    from [replicas], the views' backing schemas and the metadata
    tables), then re-attach replicas, views and aggregate views without
    re-materializing anything.  The persisted spec of every shard must
    match [spec] (raises [Invalid_argument] on mismatch or a missing
    spec row — the shard bytes belong to a different layout).  After
    reopen, re-running {!refresh} with the same buckets completes an
    interrupted refresh exactly-once. *)
