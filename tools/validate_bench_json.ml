(* Schema check for dwbench's --json output, run by the @bench-json
   alias: a quick-mode experiment subset must produce a document that
   parses, carries the stable top-level keys, and reports latency
   percentiles for the histograms the acceptance criteria name
   (wal.fsync, pool.miss, warehouse.refresh).  Exits 1 with a message on
   the first violation, so a schema regression fails `dune runtest`
   rather than surfacing downstream in whatever consumes the JSON. *)

module Json = Dw_util.Json

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("bench-json: " ^ msg); exit 1) fmt

let require_member name j =
  match Json.member name j with
  | Some v -> v
  | None -> fail "missing key %S" name

let require_number ctx name j =
  match Json.to_number (require_member name j) with
  | Some v -> v
  | None -> fail "%s: %S is not a number" ctx name

let check_histogram ~exp_id name h =
  let ctx = Printf.sprintf "experiment %S histogram %S" exp_id name in
  let count = require_number ctx "count" h in
  if count < 1.0 then fail "%s: empty (count = %g)" ctx count;
  List.iter (fun k -> ignore (require_number ctx k h : float)) [ "sum"; "min"; "max"; "p50"; "p95"; "p99" ]

let required_histograms =
  [
    "wal.fsync"; "pool.miss"; "warehouse.refresh"; "wal.group_size"; "warehouse.batch_size";
    "w3.olap_latency_snapshot"; "w3.olap_latency_locking";
  ]

(* t5's deterministic batching results: counter ratios, not wall-clock,
   so they are stable enough to gate on *)
let required_gauges =
  [
    "t5.fsync_per_txn_g1"; "t5.fsync_per_txn_g4"; "t5.fsync_per_txn_g16";
    "t5.queue_fsync_per_msg_single"; "t5.queue_fsync_per_msg_batched";
    "t5.ship_blocks"; "t5.ship_msgs";
    "t5.window_sequential_s"; "t5.window_batched_s";
    "t5.txns_sequential"; "t5.txns_batched";
    "w3.olap_p95_snapshot_s"; "w3.olap_p95_locking_s";
    "w3.lock_wait_count_snapshot"; "w3.lock_wait_count_locking";
    "w3.reader_blocked_slices_snapshot"; "w3.reader_blocked_slices_locking";
    "w3.refresh_window_snapshot_s"; "w3.refresh_window_locking_s";
    "w3.batch_outage_s";
  ]

let check_experiment seen gauges j =
  let id =
    match Json.to_str (require_member "id" j) with
    | Some s -> s
    | None -> fail "experiment \"id\" is not a string"
  in
  ignore (require_number id "wall_s" j : float);
  (match Json.member "counters" j with
   | Some (Json.Obj _) -> ()
   | Some _ | None -> fail "experiment %S: \"counters\" is not an object" id);
  (match Json.member "gauges" j with
   | Some (Json.Obj fields) ->
     List.iter
       (fun (name, v) ->
         match Json.to_number v with
         | Some x -> Hashtbl.replace gauges name x
         | None -> fail "experiment %S: gauge %S is not a number" id name)
       fields
   | Some _ -> fail "experiment %S: \"gauges\" is not an object" id
   | None -> ());
  match Json.member "histograms" j with
  | Some (Json.Obj fields) ->
    List.iter
      (fun (name, h) ->
        check_histogram ~exp_id:id name h;
        Hashtbl.replace seen name ())
      fields
  | Some _ | None -> fail "experiment %S: \"histograms\" is not an object" id

let () =
  let file =
    match Sys.argv with
    | [| _; file |] -> file
    | _ -> fail "usage: validate_bench_json FILE"
  in
  let doc =
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Json.of_string s with
    | Ok j -> j
    | Error e -> fail "%s does not parse: %s" file e
  in
  (match Json.to_number (require_member "schema_version" doc) with
   | Some 1.0 -> ()
   | Some v -> fail "schema_version %g, expected 1" v
   | None -> fail "schema_version is not a number");
  (match Json.to_str (require_member "suite" doc) with
   | Some "dwbench" -> ()
   | _ -> fail "suite is not \"dwbench\"");
  let experiments =
    match Json.to_list (require_member "experiments" doc) with
    | Some [] -> fail "\"experiments\" is empty"
    | Some l -> l
    | None -> fail "\"experiments\" is not a list"
  in
  let seen = Hashtbl.create 32 in
  let gauges = Hashtbl.create 32 in
  List.iter (check_experiment seen gauges) experiments;
  List.iter
    (fun name ->
      if not (Hashtbl.mem seen name) then
        fail "required histogram %S missing from every experiment" name)
    required_histograms;
  let gauge name =
    match Hashtbl.find_opt gauges name with
    | Some v -> v
    | None -> fail "required gauge %S missing from every experiment" name
  in
  List.iter (fun name -> ignore (gauge name : float)) required_gauges;
  (* the acceptance numbers: group >= 4 cuts fsyncs per txn at least 3x,
     and micro-batched refresh uses strictly fewer warehouse txns *)
  let g1 = gauge "t5.fsync_per_txn_g1" and g4 = gauge "t5.fsync_per_txn_g4" in
  if g4 <= 0.0 || g1 /. g4 < 3.0 then
    fail "group commit: fsync/txn reduction %g/%g = %gx, expected >= 3x" g1 g4
      (if g4 > 0.0 then g1 /. g4 else infinity);
  if gauge "t5.queue_fsync_per_msg_batched" >= gauge "t5.queue_fsync_per_msg_single" then
    fail "transport: batched queue path does not reduce fsyncs per message";
  if gauge "t5.txns_batched" >= gauge "t5.txns_sequential" then
    fail "refresh: batched integrator does not reduce warehouse txns";
  (* w3's deterministic acceptance: snapshot readers are fully lock-free
     (no waits at all, scheduler-verified), locking readers are not, and
     the lock-free path shows up as lower measured OLAP tail latency *)
  if gauge "w3.lock_wait_count_snapshot" <> 0.0 then
    fail "w3: snapshot arm recorded %g lock waits, expected 0"
      (gauge "w3.lock_wait_count_snapshot");
  if gauge "w3.reader_blocked_slices_snapshot" <> 0.0 then
    fail "w3: snapshot readers spent %g slices blocked, expected 0"
      (gauge "w3.reader_blocked_slices_snapshot");
  if gauge "w3.reader_blocked_slices_locking" < 1.0 then
    fail "w3: locking readers never blocked - the contrast arm is not exercising 2PL";
  if gauge "w3.olap_p95_snapshot_s" >= gauge "w3.olap_p95_locking_s" then
    fail "w3: snapshot OLAP p95 (%gs) does not beat locking p95 (%gs)"
      (gauge "w3.olap_p95_snapshot_s") (gauge "w3.olap_p95_locking_s");
  Printf.printf "bench-json: %s ok (%d experiments, %d histograms, %d gauges)\n" file
    (List.length experiments) (Hashtbl.length seen) (Hashtbl.length gauges)
