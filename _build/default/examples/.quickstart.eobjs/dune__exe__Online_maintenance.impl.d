examples/online_maintenance.ml: Dw_core Dw_engine Dw_relation Dw_storage Dw_util Dw_warehouse Dw_workload List Printf
