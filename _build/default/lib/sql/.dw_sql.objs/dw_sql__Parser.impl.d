lib/sql/parser.ml: Array Ast Dw_relation Lexer List Printf
