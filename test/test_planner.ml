(* Tests for the cost-based extraction-method planner and its harness:
   per-method cost-model monotonicity in each model's dominant input,
   eligibility (timestamp vs deletes, log vs archiving), hysteresis
   convergence/no-flap qcheck properties, the __planner_log audit table,
   the `Planned pipeline end-to-end, the open-loop load generator
   (determinism, conservation, AIMD shedding), and the bench-regression
   comparator. *)

module Vfs = Dw_storage.Vfs
module Tuple = Dw_relation.Tuple
module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Workload = Dw_workload.Workload
module Load_gen = Dw_workload.Load_gen
module Warehouse = Dw_warehouse.Warehouse
module Pipeline = Dw_etl.Pipeline
module Planner = Dw_etl.Planner
module Bench_compare = Dw_experiments.Bench_compare
module Json = Dw_util.Json
module Sim_clock = Dw_util.Sim_clock
module Prng = Dw_util.Prng

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

(* ---------------- cost models ---------------- *)

(* a moderate mixed workload every monotonicity test perturbs one axis of *)
let base_obs =
  {
    Planner.table_rows = 1_000;
    rows = 50.0;
    stmts = 12.0;
    insert_rows = 20.0;
    update_rows = 20.0;
    delete_rows = 10.0;
    log_records = 60.0;
    lock_wait_p95_s = 0.0;
    ship_p95_s = 0.0;
    log_available = true;
  }

let cost p m obs = List.assoc m (Planner.predict p obs)

let monotone name m lo hi =
  let p = Planner.create () in
  let c_lo = cost p m lo and c_hi = cost p m hi in
  if not (c_lo < c_hi && c_hi < infinity) then
    Alcotest.failf "%s: cost not strictly increasing (%g -> %g)" name c_lo c_hi

(* each model must grow in its dominant input with everything else fixed *)
let timestamp_monotone_in_table_rows () =
  let no_del = { base_obs with Planner.delete_rows = 0.0 } in
  monotone "timestamp/table_rows" Planner.Timestamp no_del
    { no_del with Planner.table_rows = 8_000 }

let snapshot_monotone_in_table_rows () =
  monotone "snapshot/table_rows" Planner.Snapshot base_obs
    { base_obs with Planner.table_rows = 8_000 }

let trigger_monotone_in_changed_rows () =
  monotone "trigger/rows" Planner.Trigger base_obs
    { base_obs with Planner.rows = 400.0; update_rows = 370.0 }

let trigger_monotone_in_lock_wait () =
  monotone "trigger/lock_wait" Planner.Trigger base_obs
    { base_obs with Planner.lock_wait_p95_s = 0.5 }

let log_monotone_in_log_records () =
  monotone "log/log_records" Planner.Log base_obs
    { base_obs with Planner.log_records = 2_000.0 }

let op_delta_monotone_in_stmts () =
  monotone "op-delta/stmts" Planner.Op_delta base_obs
    { base_obs with Planner.stmts = 300.0 }

let ship_latency_amplifies_wire_volume () =
  (* the trigger method ships per-image; a slow queue must make it dearer *)
  monotone "trigger/ship_p95" Planner.Trigger base_obs
    { base_obs with Planner.ship_p95_s = 0.5 }

let eligibility () =
  let p = Planner.create () in
  check Alcotest.bool "timestamp priced out under deletes" true
    (cost p Planner.Timestamp base_obs = infinity);
  check Alcotest.bool "timestamp eligible without deletes" true
    (cost p Planner.Timestamp { base_obs with Planner.delete_rows = 0.0 } < infinity);
  check Alcotest.bool "log priced out without archiving" true
    (cost p Planner.Log { base_obs with Planner.log_available = false } = infinity);
  check Alcotest.bool "log eligible with archiving" true
    (cost p Planner.Log base_obs < infinity)

let config_validation () =
  let bad f = Alcotest.check_raises "rejected" (Invalid_argument "") f in
  let expect_invalid f =
    try
      f ();
      Alcotest.fail "config accepted"
    with Invalid_argument _ -> ()
  in
  ignore bad;
  expect_invalid (fun () ->
      Planner.validate_config { Planner.default_config with Planner.replan_interval = 0 });
  expect_invalid (fun () ->
      Planner.validate_config { Planner.default_config with Planner.hysteresis_margin = 1.0 });
  expect_invalid (fun () ->
      Planner.validate_config { Planner.default_config with Planner.byte_unit = 0.0 });
  Planner.validate_config Planner.default_config

let replan_interval_keeps_without_scoring () =
  let p =
    Planner.create ~config:{ Planner.default_config with Planner.replan_interval = 3 } ()
  in
  for r = 1 to 6 do
    ignore (Planner.plan p ~round:r base_obs : Planner.decision)
  done;
  let ds = Planner.decisions p in
  check Alcotest.int "six decisions" 6 (List.length ds);
  let scored = List.filter (fun d -> d.Planner.scored) ds in
  check Alcotest.int "scored every 3rd round" 2 (List.length scored);
  List.iter
    (fun d ->
      if not d.Planner.scored then begin
        check Alcotest.bool "kept rounds never switch" false d.Planner.switched;
        check Alcotest.bool "kept rounds keep the incumbent" true
          (Some d.Planner.chosen = d.Planner.previous)
      end)
    ds

(* ---------------- hysteresis properties ---------------- *)

(* derive a random-but-fixed workload profile from one seed *)
let random_obs rng =
  let fi = float_of_int in
  let ins = fi (Prng.int rng 60) in
  let upd = fi (Prng.int rng 60) in
  let del = fi (Prng.int rng 20) in
  {
    Planner.table_rows = 200 + Prng.int rng 3_800;
    rows = ins +. upd +. del;
    stmts = Float.max 1.0 ((ins /. 3.0) +. (upd /. 6.0) +. (del /. 2.0));
    insert_rows = ins;
    update_rows = upd;
    delete_rows = del;
    log_records = (ins +. upd +. del) *. 1.2;
    lock_wait_p95_s = fi (Prng.int rng 10) /. 100.0;
    ship_p95_s = fi (Prng.int rng 10) /. 100.0;
    log_available = Prng.int rng 2 = 0;
  }

(* stationary workload: the planner adopts one method on the first round
   and never leaves it (the adoption itself is the single "switch") *)
let prop_stationary_converges =
  QCheck2.Test.make ~name:"planner converges under a stationary workload" ~count:40
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let obs = random_obs (Prng.create ~seed) in
      let p = Planner.create () in
      let chosen =
        List.init 15 (fun i -> (Planner.plan p ~round:(i + 1) obs).Planner.chosen)
      in
      let first = List.hd chosen in
      if not (List.for_all (fun c -> c = first) chosen) then
        QCheck2.Test.fail_reportf "seed %d: choice drifted under a stationary workload" seed;
      if Planner.switches p > 1 then
        QCheck2.Test.fail_reportf "seed %d: %d switches, expected <= 1 (the adoption)" seed
          (Planner.switches p);
      true)

(* one mix shift: at most one switch per shift, and no flapping inside
   either stationary phase *)
let prop_one_switch_per_shift =
  QCheck2.Test.make ~name:"planner flaps at most once per mix shift" ~count:40
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 100_000))
    (fun (seed_a, seed_b) ->
      let obs_a = random_obs (Prng.create ~seed:seed_a) in
      let obs_b = random_obs (Prng.create ~seed:(seed_b + 7)) in
      let p = Planner.create () in
      for r = 1 to 10 do
        ignore (Planner.plan p ~round:r obs_a : Planner.decision)
      done;
      for r = 11 to 20 do
        ignore (Planner.plan p ~round:r obs_b : Planner.decision)
      done;
      if Planner.switches p > 2 then
        QCheck2.Test.fail_reportf "seeds %d/%d: %d switches across one shift, expected <= 2"
          seed_a seed_b (Planner.switches p);
      (* inside each phase, only its first round may switch *)
      List.iter
        (fun (d : Planner.decision) ->
          if d.Planner.switched && d.Planner.round <> 1 && d.Planner.round <> 11 then
            QCheck2.Test.fail_reportf "seeds %d/%d: flapped mid-phase at round %d" seed_a
              seed_b d.Planner.round)
        (Planner.decisions p);
      true)

(* ---------------- __planner_log ---------------- *)

let mk_warehouse () =
  let wh = Warehouse.create ~vfs:(Vfs.in_memory ()) ~name:"dw" () in
  Warehouse.add_replica wh ~table:Workload.parts_table ~schema:Workload.parts_schema;
  wh

let planner_log_roundtrip () =
  let wh = mk_warehouse () in
  let p = Planner.create () in
  let d1 = Planner.plan p ~round:1 base_obs in
  let d2 = Planner.plan p ~round:2 { base_obs with Planner.rows = 80.0 } in
  Planner.log_decision wh ~table:"parts" d1;
  Planner.log_decision wh ~table:"parts" d1 (* same key: upsert, not dup *);
  Planner.log_decision wh ~table:"parts" d2;
  let rows = Planner.read_log wh ~table:"parts" in
  check Alcotest.int "two audit rows" 2 (List.length rows);
  let r1 = List.hd rows in
  check Alcotest.int "round order" 1 r1.Planner.lr_round;
  check Alcotest.string "chosen method" (Planner.method_name d1.Planner.chosen)
    r1.Planner.lr_chosen;
  check Alcotest.int "all five costs logged" 5 (List.length r1.Planner.lr_costs);
  (* timestamp was ineligible (deletes observed): the -1 sentinel must
     decode back to infinity *)
  check Alcotest.bool "ineligible cost decodes to infinity" true
    (List.assoc "timestamp" r1.Planner.lr_costs = infinity);
  check Alcotest.bool "eligible costs decode finite" true
    (List.assoc "trigger" r1.Planner.lr_costs < infinity);
  check (Alcotest.float 1e-9) "observed delta rate logged" 50.0 r1.Planner.lr_rows;
  check Alcotest.int "no rows for other tables" 0
    (List.length (Planner.read_log wh ~table:"elsewhere"))

(* ---------------- `Planned pipeline end-to-end ---------------- *)

let sorted_rows db =
  let rows = ref [] in
  Table.scan (Db.table db Workload.parts_table) (fun _ t -> rows := t :: !rows);
  List.sort Tuple.compare !rows

let planned_pipeline_converges () =
  let src = Db.create ~archive_log:true ~vfs:(Vfs.in_memory ()) ~name:"src" () in
  ignore (Workload.create_parts_table src : Table.t);
  let wh = mk_warehouse () in
  let pipe =
    Pipeline.create ~source:src ~warehouse:wh ~table:Workload.parts_table
      ~method_:Pipeline.Planned ~transport:Pipeline.Direct ()
  in
  let cap =
    match Pipeline.capture pipe with
    | Some c -> c
    | None -> Alcotest.fail "Planned pipeline exposes no capture"
  in
  let exec stmts =
    match Dw_core.Opdelta_capture.exec_txn cap stmts with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  in
  (* logged initial load so every installed channel observes it *)
  Db.advance_day src;
  for chunk = 0 to 3 do
    exec
      (Workload.insert_parts_txn ~first_id:(1 + (chunk * 25)) ~size:25
         ~day:(Db.current_day src) ())
  done;
  (match Pipeline.run_round pipe with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  let rng = Prng.create ~seed:11 in
  for round = 1 to 6 do
    Db.advance_day src;
    for i = 0 to 5 do
      (match Prng.int rng 3 with
       | 0 ->
         exec
           (Workload.insert_parts_txn
              ~first_id:(200 + (round * 40) + (i * 5))
              ~size:3 ~day:(Db.current_day src) ())
       | 1 -> exec [ Workload.update_parts_stmt ~first_id:(1 + Prng.int rng 60) ~size:4 ]
       | _ -> exec [ Workload.delete_parts_stmt ~first_id:(1 + Prng.int rng 60) ~size:2 ])
    done;
    match Pipeline.run_round pipe with
    | Ok stats ->
      check Alcotest.bool "extract units non-negative" true
        (stats.Pipeline.extract_units >= 0.0);
      check Alcotest.bool "method_used is a planner label" true
        (List.mem stats.Pipeline.method_used
           (List.map Planner.method_name Planner.all_methods))
    | Error e -> Alcotest.fail e
  done;
  let s = sorted_rows src and w = sorted_rows (Warehouse.db wh) in
  check Alcotest.int "row counts converge" (List.length s) (List.length w);
  check Alcotest.bool "contents converge" true (List.for_all2 Tuple.equal s w);
  (match Pipeline.planner pipe with
   | None -> Alcotest.fail "Planned pipeline exposes no planner"
   | Some p ->
     check Alcotest.int "one decision per round" 7 (List.length (Planner.decisions p)));
  check Alcotest.int "audit log covers every round" 7
    (List.length (Planner.read_log wh ~table:Workload.parts_table))

(* ---------------- load generator ---------------- *)

let small_lg_config =
  {
    Load_gen.default_config with
    Load_gen.phases =
      [
        { Load_gen.kind = Load_gen.Insert_heavy; rate = 30; seconds = 5 };
        { Load_gen.kind = Load_gen.Update_heavy; rate = 30; seconds = 5 };
        { Load_gen.kind = Load_gen.Scan_heavy; rate = 30; seconds = 5 };
      ];
  }

let drive cfg ~seed =
  let lg =
    Load_gen.create ~config:cfg ~seed ~clock:(Sim_clock.create ()) ~existing_ids:100 ()
  in
  let stats = ref [] in
  while not (Load_gen.finished lg) do
    stats := Load_gen.tick lg :: !stats
  done;
  (List.rev !stats, Load_gen.summary lg)

let load_gen_deterministic () =
  let s1, sum1 = drive small_lg_config ~seed:7 in
  let s2, sum2 = drive small_lg_config ~seed:7 in
  check Alcotest.bool "identical tick streams for one seed" true (s1 = s2);
  check Alcotest.bool "identical summaries for one seed" true (sum1 = sum2);
  let _, sum3 = drive small_lg_config ~seed:8 in
  check Alcotest.bool "different seed shifts the schedule" true (sum3 <> sum1)

let load_gen_conservation () =
  let stats, sum = drive small_lg_config ~seed:7 in
  check Alcotest.int "ticks cover every configured second" 15 sum.Load_gen.ticks;
  check Alcotest.int "offered = rate x seconds" (30 * 15) sum.Load_gen.total_offered;
  check Alcotest.int "offered = admitted + shed" sum.Load_gen.total_offered
    (sum.Load_gen.total_admitted + sum.Load_gen.total_shed);
  List.iter
    (fun (s : Load_gen.tick_stats) ->
      check Alcotest.int "per-tick conservation" s.Load_gen.offered
        (s.Load_gen.admitted + s.Load_gen.shed);
      check Alcotest.int "ops list matches admitted" s.Load_gen.admitted
        (List.length s.Load_gen.ops))
    stats

let load_gen_sheds_under_overload () =
  (* 30 op/s of 160-row scans is far past one server's capacity: the SLO
     must break and the AIMD valve must shed *)
  let _, sum = drive small_lg_config ~seed:7 in
  check Alcotest.bool "slo breached" true (sum.Load_gen.slo_breaches > 0);
  check Alcotest.bool "valve shed load" true (sum.Load_gen.total_shed > 0);
  check Alcotest.bool "worst p95 above slo" true
    (sum.Load_gen.worst_p95_ms > small_lg_config.Load_gen.slo_ms);
  check Alcotest.bool "attainment in (0,1)" true
    (sum.Load_gen.slo_attainment > 0.0 && sum.Load_gen.slo_attainment < 1.0)

let load_gen_insert_only_meets_slo () =
  let cfg =
    {
      small_lg_config with
      Load_gen.phases = [ { Load_gen.kind = Load_gen.Insert_heavy; rate = 20; seconds = 6 } ];
    }
  in
  let _, sum = drive cfg ~seed:3 in
  check Alcotest.int "nothing shed at a light offered rate" 0 sum.Load_gen.total_shed;
  check Alcotest.int "no breaches" 0 sum.Load_gen.slo_breaches;
  check (Alcotest.float 1e-9) "full attainment" 1.0 sum.Load_gen.slo_attainment

let load_gen_valve_resets_per_phase () =
  (* scan-heavy first so the valve collapses, then a phase change: the
     first tick of the next phase must re-admit the full target rate *)
  let cfg =
    {
      small_lg_config with
      Load_gen.phases =
        [
          { Load_gen.kind = Load_gen.Scan_heavy; rate = 30; seconds = 5 };
          { Load_gen.kind = Load_gen.Insert_heavy; rate = 30; seconds = 5 };
        ];
    }
  in
  let stats, _ = drive cfg ~seed:7 in
  let t5 = List.nth stats 4 and t6 = List.nth stats 5 in
  check Alcotest.bool "valve collapsed under scans" true (t5.Load_gen.admitted < 30);
  check Alcotest.int "phase start re-admits the target rate" 30 t6.Load_gen.admitted;
  let lg =
    Load_gen.create ~config:cfg ~seed:7 ~clock:(Sim_clock.create ()) ~existing_ids:100 ()
  in
  check Alcotest.int "total_seconds sums the phases" 10 (Load_gen.total_seconds lg)

let load_gen_rejects_bad_config () =
  let expect_invalid f =
    try
      f ();
      Alcotest.fail "config accepted"
    with Invalid_argument _ -> ()
  in
  expect_invalid (fun () ->
      Load_gen.validate_config { small_lg_config with Load_gen.phases = [] });
  expect_invalid (fun () ->
      Load_gen.validate_config { small_lg_config with Load_gen.slo_ms = 0.0 });
  expect_invalid (fun () ->
      Load_gen.validate_config { small_lg_config with Load_gen.aimd_decrease = 1.0 })

(* ---------------- bench comparator ---------------- *)

let doc ~quick gauges =
  Json.Obj
    [
      ("quick", Json.Bool quick);
      ( "experiments",
        Json.List
          [
            Json.Obj
              [
                ("id", Json.String "x");
                ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) gauges));
              ];
          ] );
    ]

let compare_exn ?tolerance ~base ~cand () =
  match Bench_compare.compare_docs ?tolerance ~base ~cand () with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let base_gauges =
  [
    ("t5.txns_batched", 2.0); ("w5.identical", 1.0); ("w5.olap_qps_d1", 100.0);
    ("w5.olap_p95_d1_s", 1.0); ("t7.vs_best", 1.0);
  ]

(* the baseline gauges with some values overridden — a candidate doc must
   carry every baseline key or the absence itself fails the gate *)
let with_overrides overrides =
  doc ~quick:true
    (List.map
       (fun (k, v) -> (k, try List.assoc k overrides with Not_found -> v))
       base_gauges)

let bench_compare_verdicts () =
  let base = doc ~quick:true base_gauges in
  (* identical documents: nothing fails, absent baseline keys don't either *)
  let r = compare_exn ~base ~cand:base () in
  check Alcotest.int "self-compare has no failures" 0 r.Bench_compare.failures;
  check Alcotest.int "self-compare compares the present keys" 5 r.Bench_compare.compared;
  (* a two-sided Near band catches drift in either direction *)
  let worse = with_overrides [ ("t5.txns_batched", 2.5) ] in
  let r = compare_exn ~base ~cand:worse () in
  check Alcotest.bool "near-band drift fails" true (r.Bench_compare.failures >= 1);
  (* ...unless the tolerance multiplier widens the band *)
  let r = compare_exn ~tolerance:3.0 ~base ~cand:worse () in
  let failed_key (r : Bench_compare.report) k =
    List.exists
      (fun (o : Bench_compare.outcome) ->
        o.Bench_compare.key = k && o.Bench_compare.verdict = Bench_compare.Fail)
      r.Bench_compare.outcomes
  in
  check Alcotest.bool "tolerance widens the near band" false
    (failed_key r "t5.txns_batched");
  (* regress-only rules: improvements never fail, regressions do *)
  let faster = with_overrides [ ("w5.olap_p95_d1_s", 0.1); ("w5.olap_qps_d1", 400.0) ] in
  let r = compare_exn ~base ~cand:faster () in
  check Alcotest.int "improvements never fail" 0 r.Bench_compare.failures;
  let slower = with_overrides [ ("w5.olap_qps_d1", 10.0) ] in
  let r = compare_exn ~base ~cand:slower () in
  check Alcotest.bool "throughput collapse fails" true (failed_key r "w5.olap_qps_d1");
  (* invariant flags admit no drift at all *)
  let flag_flip = with_overrides [ ("w5.identical", 0.0) ] in
  let r = compare_exn ~base ~cand:flag_flip () in
  check Alcotest.bool "flag flip fails" true (failed_key r "w5.identical")

let bench_compare_missing_and_modes () =
  let base = doc ~quick:true [ ("t7.vs_best", 1.0) ] in
  (* key present in the baseline but gone from the fresh run: failing *)
  let r = compare_exn ~base ~cand:(doc ~quick:true []) () in
  check Alcotest.bool "missing candidate key fails" true (r.Bench_compare.failures >= 1);
  (* quick baseline vs full candidate is not a comparison at all *)
  (match Bench_compare.compare_docs ~base ~cand:(doc ~quick:false []) () with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "quick/full mismatch accepted");
  (match Bench_compare.compare_docs ~base:(Json.Obj []) ~cand:base () with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "malformed baseline accepted");
  try
    ignore (Bench_compare.compare_docs ~tolerance:0.0 ~base ~cand:base () : _ result);
    Alcotest.fail "tolerance 0 accepted"
  with Invalid_argument _ -> ()

let suite =
  [
    test "timestamp cost monotone in table size" timestamp_monotone_in_table_rows;
    test "snapshot cost monotone in table size" snapshot_monotone_in_table_rows;
    test "trigger cost monotone in changed rows" trigger_monotone_in_changed_rows;
    test "trigger cost monotone in lock-wait p95" trigger_monotone_in_lock_wait;
    test "log cost monotone in log records" log_monotone_in_log_records;
    test "op-delta cost monotone in statements" op_delta_monotone_in_stmts;
    test "ship latency amplifies wire volume" ship_latency_amplifies_wire_volume;
    test "eligibility encodes correctness" eligibility;
    test "config validation" config_validation;
    test "replan interval keeps without scoring" replan_interval_keeps_without_scoring;
    QCheck_alcotest.to_alcotest prop_stationary_converges;
    QCheck_alcotest.to_alcotest prop_one_switch_per_shift;
    test "__planner_log roundtrip" planner_log_roundtrip;
    test "planned pipeline converges end-to-end" planned_pipeline_converges;
    test "load gen is deterministic per seed" load_gen_deterministic;
    test "load gen conserves offered ops" load_gen_conservation;
    test "load gen sheds under overload" load_gen_sheds_under_overload;
    test "load gen meets slo at light load" load_gen_insert_only_meets_slo;
    test "load gen valve resets per phase" load_gen_valve_resets_per_phase;
    test "load gen rejects bad configs" load_gen_rejects_bad_config;
    test "bench compare verdicts" bench_compare_verdicts;
    test "bench compare missing keys and modes" bench_compare_missing_and_modes;
  ]
