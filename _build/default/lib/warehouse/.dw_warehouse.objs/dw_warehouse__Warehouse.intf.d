lib/warehouse/warehouse.mli: Dw_core Dw_engine Dw_relation Dw_storage
