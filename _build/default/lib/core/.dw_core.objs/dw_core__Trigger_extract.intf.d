lib/core/trigger_extract.mli: Delta Dw_engine Dw_relation
