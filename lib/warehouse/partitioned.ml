module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Value = Dw_relation.Value
module Expr = Dw_relation.Expr
module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Op_delta = Dw_core.Op_delta
module Spj_view = Dw_core.Spj_view
module Agg_view = Dw_core.Agg_view
module Vfs = Dw_storage.Vfs
module Domain_pool = Dw_util.Domain_pool
module Metrics = Dw_util.Metrics
module Breaker = Dw_util.Breaker
module Backoff = Dw_util.Backoff

(* ---------- shard health ---------- *)

type health = Healthy | Suspect | Quarantined | Rebuilding

let health_to_string = function
  | Healthy -> "healthy"
  | Suspect -> "suspect"
  | Quarantined -> "quarantined"
  | Rebuilding -> "rebuilding"

let health_code = function Healthy -> 0 | Suspect -> 1 | Quarantined -> 2 | Rebuilding -> 3

type health_config = {
  breaker : Breaker.config;
  max_retries : int;
  retry_backoff_s : float;
  refresh_timeout_s : float;
}

let default_health_config =
  {
    breaker = Breaker.default_config;
    max_retries = 2;
    retry_backoff_s = 0.0;
    refresh_timeout_s = infinity;
  }

let validate_health_config c =
  if c.max_retries < 0 then invalid_arg "Partitioned: max_retries < 0";
  if c.retry_backoff_s < 0.0 then invalid_arg "Partitioned: retry_backoff_s < 0";
  if not (c.refresh_timeout_s > 0.0) then invalid_arg "Partitioned: refresh_timeout_s <= 0"

(* per-shard circuit state.  All mutation happens on the caller's domain
   (the guarded refresh does its breaker bookkeeping sequentially, before
   dispatch and after the pool barrier); pool tasks only touch their own
   shard's [retry] backoff. *)
type shard_state = {
  breaker : Breaker.t;
  retry : Backoff.t;
  mutable health : health;
  mutable last_watermark : int;  (* best known; served when the shard is unreadable *)
  mutable last_error : string option;
}

type t = {
  spec : Partition.t;
  shards : Warehouse.t array;
  vfss : Vfs.t array;
  name : string;
  op_delay : float;
  pool_pages : int option;
  pool_stripes : int option;
  hcfg : health_config;
  hmetrics : Metrics.t;  (* fleet registry: health.* / breaker.* / degraded.*, breaker clock *)
  states : shard_state array;
  (* registration order, for rebuilding a shard from scratch *)
  mutable replicas : (string * Schema.t) list;
  mutable views : Spj_view.t list;
  mutable agg_views : Agg_view.t list;
}

let spec t = t.spec
let partitions t = Array.length t.shards
let shard t i = t.shards.(i)
let vfss t = t.vfss
let health_metrics t = t.hmetrics
let shard_health t i = t.states.(i).health
let healths t = Array.map (fun s -> s.health) t.states
let shard_breaker t i = t.states.(i).breaker

let publish_health t =
  let healthy = ref 0 in
  Array.iteri
    (fun i s ->
      if s.health = Healthy then incr healthy;
      Metrics.set_gauge t.hmetrics
        (Printf.sprintf "health.shard%d" i)
        (float_of_int (health_code s.health)))
    t.states;
  Metrics.set_gauge t.hmetrics "health.healthy_shards" (float_of_int !healthy)

(* ---------- per-shard refresh watermark ---------- *)

let progress_table = "__refresh_progress"

let progress_schema =
  Schema.make ~key_arity:1
    [
      { Schema.name = "id"; ty = Value.Tint; nullable = false };
      { Schema.name = "applied"; ty = Value.Tint; nullable = false };
    ]

let init_progress db =
  ignore (Db.create_table db ~name:progress_table progress_schema : Table.t);
  Db.with_txn db (fun txn ->
      ignore (Db.insert db txn progress_table [| Value.Int 0; Value.Int 0 |]
               : Dw_storage.Heap_file.rid))

let read_progress db txn =
  match Db.select db txn progress_table () with
  | [ [| _; Value.Int applied |] ] -> applied
  | _ -> invalid_arg "Partitioned: corrupt __refresh_progress table"

let set_progress db txn applied =
  ignore
    (Db.update_where db txn progress_table
       ~set:[ ("applied", Expr.Lit (Value.Int applied)) ]
       ~where:None
      : int)

let watermark_of wh =
  let db = Warehouse.db wh in
  Db.with_txn db (fun txn -> read_progress db txn)

let watermarks t = Array.map watermark_of t.shards

(* ---------- construction ---------- *)

let mk_state t_hmetrics (hcfg : health_config) i =
  {
    breaker =
      Breaker.create
        ~config:{ hcfg.breaker with Breaker.seed = hcfg.breaker.Breaker.seed + i }
        ~clock:(fun () -> Metrics.now t_hmetrics)
        ();
    retry =
      Backoff.create ~base_s:hcfg.retry_backoff_s ~seed:(hcfg.breaker.Breaker.seed + i) ();
    health = Healthy;
    last_watermark = 0;
    last_error = None;
  }

let create ?pool_pages ?pool_stripes ?(op_delay = 0.0) ?(health = default_health_config)
    ?metrics ~spec ~name () =
  validate_health_config health;
  let n = Partition.partitions spec in
  let hmetrics = match metrics with Some m -> m | None -> Metrics.create () in
  let vfss = Array.init n (fun _ -> Vfs.in_memory ~op_delay ()) in
  let shards =
    Array.init n (fun i ->
        let wh =
          Warehouse.create ?pool_pages ?pool_stripes ~vfs:vfss.(i)
            ~name:(Printf.sprintf "%s_p%d" name i) ()
        in
        Partition.save (Warehouse.db wh) ~shard:i spec;
        init_progress (Warehouse.db wh);
        wh)
  in
  let t =
    {
      spec;
      shards;
      vfss;
      name;
      op_delay;
      pool_pages;
      pool_stripes;
      hcfg = health;
      hmetrics;
      states = Array.init n (fun i -> mk_state hmetrics health i);
      replicas = [];
      views = [];
      agg_views = [];
    }
  in
  publish_health t;
  t

let is_fact t table = String.equal table (Partition.table t.spec)

let add_replica t ~table ~schema =
  if is_fact t table then begin
    let key = Partition.key_column t.spec in
    if Schema.key_arity schema < 1 || (Schema.column schema 0).Schema.name <> key then
      invalid_arg
        (Printf.sprintf "Partitioned.add_replica: %s's leading key column must be %s" table
           key)
  end;
  Array.iter (fun wh -> Warehouse.add_replica wh ~table ~schema) t.shards;
  t.replicas <- t.replicas @ [ (table, schema) ]

let load_replica t ~table rows =
  if is_fact t table then begin
    let schema =
      match Db.table_opt (Warehouse.db t.shards.(0)) table with
      | Some tbl -> Table.schema tbl
      | None -> invalid_arg (Printf.sprintf "Partitioned.load_replica: no replica %s" table)
    in
    let buckets = Array.make (partitions t) [] in
    List.iter
      (fun row ->
        let p = Partition.route_row t.spec schema row in
        buckets.(p) <- row :: buckets.(p))
      rows;
    Array.iteri
      (fun i bucket -> Warehouse.load_replica t.shards.(i) ~table (List.rev bucket))
      buckets
  end
  else Array.iter (fun wh -> Warehouse.load_replica wh ~table rows) t.shards

let define_view t view =
  (match view with
   | Spj_view.Select_project _ -> ()
   | Spj_view.Join _ ->
     invalid_arg
       "Partitioned.define_view: join views need co-partitioned sides; only select-project \
        views are supported");
  Array.iter (fun wh -> Warehouse.define_view wh view) t.shards;
  t.views <- t.views @ [ view ]

let define_agg_view t view =
  Array.iter (fun wh -> Warehouse.define_agg_view wh view) t.shards;
  t.agg_views <- t.agg_views @ [ view ]

(* ---------- merged reads ---------- *)

let indices t = List.init (partitions t) Fun.id

let replica_rows_of t idxs table =
  let rows =
    if is_fact t table then
      List.concat_map (fun i -> Warehouse.replica_rows t.shards.(i) table) idxs
    else
      match idxs with
      | [] -> invalid_arg "Partitioned: no shard to serve a replicated table"
      | i :: _ -> Warehouse.replica_rows t.shards.(i) table
  in
  List.sort Tuple.compare rows

let replica_rows t table = replica_rows_of t (indices t) table

(* sum multiplicities of identical output rows across shards (a base row
   lives on exactly one shard, but two shards' slices can project to the
   same view row) *)
let merge_counted rows_by_shard =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (List.iter (fun (row, count) ->
         match Hashtbl.find_opt tbl row with
         | Some c -> Hashtbl.replace tbl row (c + count)
         | None ->
           Hashtbl.add tbl row count;
           order := row :: !order))
    rows_by_shard;
  List.rev_map (fun row -> (row, Hashtbl.find tbl row)) !order
  |> List.sort (fun (a, _) (b, _) -> Tuple.compare a b)

let view_rows_of t idxs name =
  merge_counted (List.map (fun i -> Warehouse.view_rows t.shards.(i) name) idxs)

let view_rows t name = view_rows_of t (indices t) name

let merge_agg_value fn a b =
  let add a b =
    match a, b with
    | Value.Int x, Value.Int y -> Value.Int (x + y)
    | Value.Float x, Value.Float y -> Value.Float (x +. y)
    | Value.Int x, Value.Float y | Value.Float y, Value.Int x ->
      Value.Float (float_of_int x +. y)
    | _ -> invalid_arg "Partitioned: non-numeric aggregate merge"
  in
  match fn with
  | Agg_view.Count | Agg_view.Sum _ -> add a b
  | Agg_view.Min _ -> if Value.compare a b <= 0 then a else b
  | Agg_view.Max _ -> if Value.compare a b >= 0 then a else b

let agg_view_rows_of t idxs name =
  (* the definition is identical on every shard; take it from the first
     serving shard's registration to know group arity and aggregates *)
  let first =
    match idxs with
    | [] -> invalid_arg "Partitioned: no shard to serve an aggregate view"
    | i :: _ -> i
  in
  let adef =
    match Warehouse.agg_view_def t.shards.(first) name with
    | Some v -> v
    | None -> raise Not_found
  in
  let groups = List.length adef.Agg_view.group_by in
  let fns = List.map snd adef.Agg_view.aggregates in
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun i ->
      List.iter
        (fun (row, count) ->
          let key = Array.sub row 0 groups in
          match Hashtbl.find_opt tbl key with
          | None ->
            Hashtbl.add tbl key (row, count);
            order := key :: !order
          | Some (existing, c) ->
            let merged = Array.copy existing in
            List.iteri
              (fun j fn ->
                merged.(groups + j) <- merge_agg_value fn existing.(groups + j) row.(groups + j))
              fns;
            Hashtbl.replace tbl key (merged, c + count))
        (Warehouse.agg_view_rows t.shards.(i) name))
    idxs;
  List.rev_map (fun key -> Hashtbl.find tbl key) !order
  |> List.sort (fun (a, _) (b, _) -> Tuple.compare a b)

let agg_view_rows t name = agg_view_rows_of t (indices t) name

(* ---------- parallel refresh ---------- *)

let take n xs =
  let rec go n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] xs

(* one shard's valve-governed apply: the same AIMD loop as the monolithic
   integrate_op_deltas_batched, but reading this shard's own lock.wait
   p95 — backpressure on one partition leaves the others' run lengths
   alone *)
let refresh_shard policy wh ods =
  let db = Warehouse.db wh in
  let metrics = Db.metrics db in
  let wm = watermark_of wh in
  let pending = List.filter (fun od -> od.Op_delta.txn_id > wm) ods in
  let target = ref policy.Warehouse.max_batch in
  let rec go acc = function
    | [] -> acc
    | rest ->
      let run, rest = take !target rest in
      Metrics.observe metrics "warehouse.batch_size" (float_of_int (List.length run));
      let last =
        List.fold_left (fun acc od -> max acc od.Op_delta.txn_id) 0 run
      in
      let mark txn = set_progress db txn last in
      let acc = Warehouse.add_stats acc (Warehouse.integrate_op_delta_run_marked wh ~mark run) in
      let p95 = Metrics.percentile metrics "lock.wait" 0.95 in
      if p95 > policy.Warehouse.lock_wait_p95_s then
        target := max policy.Warehouse.min_batch (!target / 2)
      else target := min policy.Warehouse.max_batch (!target + 1);
      Metrics.set_gauge metrics "warehouse.batch_size_target" (float_of_int !target);
      go acc rest
  in
  go Warehouse.zero_stats pending

let check_buckets t buckets =
  if Array.length buckets <> partitions t then
    invalid_arg
      (Printf.sprintf "Partitioned.refresh: %d buckets for %d partitions"
         (Array.length buckets) (partitions t))

let refresh ?(policy = Warehouse.default_batch_policy) ~pool t buckets =
  Warehouse.validate_batch_policy policy;
  check_buckets t buckets;
  Domain_pool.run_all pool
    (List.init (partitions t) (fun i () -> refresh_shard policy t.shards.(i) buckets.(i)))
  |> List.fold_left Warehouse.add_stats Warehouse.zero_stats

(* ---------- crash re-adoption ---------- *)

let shard_catalog ~replicas ~views ~agg_views ~extra =
  List.map (fun (table, schema) -> (table, schema, None)) replicas
  @ List.map (fun v -> (Spj_view.name v, Warehouse.view_backing_schema v, None)) views
  @ List.map
      (fun (v : Agg_view.t) -> (v.Agg_view.name, Warehouse.agg_view_backing_schema v, None))
      agg_views
  @ List.map (fun (table, schema) -> (table, schema, None)) extra
  @ [
      (Partition.spec_table, Partition.spec_schema, None);
      (progress_table, progress_schema, None);
    ]

(* re-adopt one shard's surviving bytes: reopen + recover, verify the
   persisted placement belongs to this slot, re-attach replicas/views *)
let adopt_shard ?pool_pages ?pool_stripes ~replicas ~views ~agg_views ~extra ~spec ~name ~vfs i
    =
  let catalog = shard_catalog ~replicas ~views ~agg_views ~extra in
  let db, (_ : Dw_txn.Recovery.stats) =
    Db.reopen ?pool_pages ?pool_stripes ~vfs ~name:(Printf.sprintf "%s_p%d" name i)
      ~tables:catalog ()
  in
  (match Partition.load db with
   | Some (shard, persisted) when shard = i && Partition.equal persisted spec -> ()
   | Some (shard, persisted) ->
     invalid_arg
       (Printf.sprintf "Partitioned.reopen: shard %d holds spec %s (shard %d), expected %s" i
          (Partition.to_string persisted) shard (Partition.to_string spec))
   | None ->
     invalid_arg (Printf.sprintf "Partitioned.reopen: shard %d has no persisted spec" i));
  let wh = Warehouse.attach ~db () in
  List.iter (fun (table, _) -> Warehouse.attach_replica wh ~table) replicas;
  List.iter (Warehouse.attach_view wh) views;
  List.iter (Warehouse.attach_agg_view wh) agg_views;
  wh

let reopen ?pool_pages ?pool_stripes ?(op_delay = 0.0) ?(health = default_health_config)
    ?metrics ~replicas ~views ~agg_views ~spec ~name ~vfss () =
  validate_health_config health;
  if Array.length vfss <> Partition.partitions spec then
    invalid_arg
      (Printf.sprintf "Partitioned.reopen: %d shard file systems for %d partitions"
         (Array.length vfss) (Partition.partitions spec));
  let hmetrics = match metrics with Some m -> m | None -> Metrics.create () in
  let shards =
    Array.mapi
      (fun i vfs ->
        Vfs.crash_reset vfs;
        adopt_shard ?pool_pages ?pool_stripes ~replicas ~views ~agg_views ~extra:[] ~spec
          ~name ~vfs i)
      vfss
  in
  let t =
    {
      spec;
      shards;
      vfss;
      name;
      op_delay;
      pool_pages;
      pool_stripes;
      hcfg = health;
      hmetrics;
      states = Array.init (Array.length shards) (fun i -> mk_state hmetrics health i);
      replicas;
      views;
      agg_views;
    }
  in
  Array.iteri (fun i s -> s.last_watermark <- watermark_of t.shards.(i)) t.states;
  publish_health t;
  t

(* ---------- guarded refresh: breaker-driven health transitions ---------- *)

type shard_outcome =
  | Applied of Warehouse.stats
  | Skipped of health
  | Failed of string

(* a failure was recorded against shard [i]; derive its health from the
   breaker and count trip transitions *)
let apply_failure t i msg =
  let s = t.states.(i) in
  let trips_before = Breaker.trips s.breaker in
  Breaker.record_failure s.breaker;
  Metrics.incr t.hmetrics "health.refresh_failures";
  if Breaker.trips s.breaker > trips_before then Metrics.incr t.hmetrics "breaker.trips";
  s.last_error <- Some msg;
  (match s.health with
   | Rebuilding -> ()  (* rebuild owns the shard; the breaker still learns *)
   | Healthy | Suspect | Quarantined ->
     s.health <-
       (match Breaker.state s.breaker with
        | Breaker.Open | Breaker.Half_open -> Quarantined
        | Breaker.Closed -> Suspect))

let apply_success t i wm =
  let s = t.states.(i) in
  Breaker.record_success s.breaker;
  s.last_watermark <- wm;
  s.last_error <- None;
  match Breaker.state s.breaker with
  | Breaker.Closed ->
    if s.health = Quarantined then Metrics.incr t.hmetrics "health.recovered";
    (match s.health with Rebuilding -> () | _ -> s.health <- Healthy)
  | Breaker.Half_open | Breaker.Open -> ()  (* more probes needed; stays quarantined *)

(* half-open probe admission: restart the shard's simulated process over
   its surviving bytes.  [Vfs.revive] keeps any sustained fault schedule
   armed, so a shard probed inside a flap's ON window crashes again right
   here — which is the probe failing, not an error of ours. *)
let probe_reopen t i =
  Metrics.incr t.hmetrics "breaker.probes";
  Vfs.revive t.vfss.(i);
  match
    adopt_shard ?pool_pages:t.pool_pages ?pool_stripes:t.pool_stripes ~replicas:t.replicas
      ~views:t.views ~agg_views:t.agg_views ~extra:[] ~spec:t.spec ~name:t.name
      ~vfs:t.vfss.(i) i
  with
  | wh ->
    t.shards.(i) <- wh;
    Ok ()
  | exception Vfs.Fault.Crash { op; index } ->
    Error (Printf.sprintf "probe reopen crashed on %s at event %d" op index)
  | exception Vfs.Fault.Transient op -> Error ("probe reopen transient fault on " ^ op)

let refresh_guarded ?(policy = Warehouse.default_batch_policy) ~pool t buckets =
  Warehouse.validate_batch_policy policy;
  check_buckets t buckets;
  let n = partitions t in
  (* sequential pre-pass: decide, per shard, attempt / skip / failed probe *)
  let plan =
    Array.init n (fun i ->
        let s = t.states.(i) in
        match s.health with
        | Rebuilding -> `Skip Rebuilding
        | Healthy | Suspect -> `Attempt
        | Quarantined ->
          if Breaker.allow s.breaker then
            match probe_reopen t i with
            | Ok () -> `Attempt
            | Error msg ->
              Metrics.incr t.hmetrics "breaker.probe_failures";
              `Probe_failed msg
          else `Skip Quarantined)
  in
  (* parallel attempts: pool tasks touch only their own shard (its
     warehouse, its registry, its retry backoff) — never the breaker or
     the fleet registry, whose bookkeeping stays on this domain *)
  let attempts =
    List.filter_map (fun i -> match plan.(i) with `Attempt -> Some i | _ -> None)
      (List.init n Fun.id)
  in
  let task i () =
    let s = t.states.(i) in
    let started = Unix.gettimeofday () in
    let retries = ref 0 in
    let rec go attempt =
      match refresh_shard policy t.shards.(i) buckets.(i) with
      | stats -> Ok stats
      | exception Vfs.Fault.Transient _ when attempt < t.hcfg.max_retries ->
        incr retries;
        ignore (Backoff.wait s.retry ~attempt : float);
        go (attempt + 1)
      | exception Vfs.Fault.Transient op ->
        Error
          (Printf.sprintf "transient fault on %s persisted after %d retries" op
             t.hcfg.max_retries)
      | exception Vfs.Fault.Crash { op; index } ->
        Error (Printf.sprintf "crash on %s at event %d" op index)
    in
    let result = go 0 in
    (result, !retries, Unix.gettimeofday () -. started)
  in
  let results = Domain_pool.run_all pool (List.map (fun i -> task i) attempts) in
  (* sequential post-pass: breaker bookkeeping and health transitions *)
  let by_shard = Hashtbl.create 8 in
  List.iter2 (fun i r -> Hashtbl.replace by_shard i r) attempts results;
  let outcomes =
    Array.init n (fun i ->
        match plan.(i) with
        | `Skip h ->
          Metrics.incr t.hmetrics "health.refresh_skipped";
          Skipped h
        | `Probe_failed msg ->
          apply_failure t i msg;
          Failed msg
        | `Attempt -> (
          let result, retries, elapsed = Hashtbl.find by_shard i in
          if retries > 0 then Metrics.add t.hmetrics "health.retries" retries;
          match result with
          | Ok stats ->
            (* post-hoc timeout breach: the work applied (and stays
               applied — the watermark advanced), but a shard this slow
               counts against its breaker like a failure *)
            if elapsed >= t.hcfg.refresh_timeout_s then begin
              Metrics.incr t.hmetrics "health.timeout_breaches";
              apply_failure t i
                (Printf.sprintf "refresh took %.3fs (timeout %.3fs)" elapsed
                   t.hcfg.refresh_timeout_s)
            end
            else apply_success t i (watermark_of t.shards.(i));
            Applied stats
          | Error msg ->
            apply_failure t i msg;
            Failed msg))
  in
  publish_health t;
  let stats =
    Array.fold_left
      (fun acc -> function Applied s -> Warehouse.add_stats acc s | Skipped _ | Failed _ -> acc)
      Warehouse.zero_stats outcomes
  in
  (stats, outcomes)

(* ---------- degraded reads ---------- *)

type read_policy = [ `Fail_closed | `Degraded ]

type coverage = {
  shards : int;
  served : int list;
  skipped : (int * health) list;
  watermarks : int array;
  max_watermark : int;
}

exception Unhealthy of (int * health) list

let serving t i = match t.states.(i).health with
  | Healthy | Suspect -> true
  | Quarantined | Rebuilding -> false

(* run [f i] over the serving shards; a shard that faults mid-read is
   recorded against its breaker and moved to the skipped set.  Under
   [`Fail_closed] any skipped shard (pre-existing or new) aborts the
   read. *)
let read_checked (type a) ~policy t (f : int -> a) : (int * a) list * (int * health) list =
  let served = ref [] and skipped = ref [] in
  List.iter
    (fun i ->
      if serving t i then begin
        match f i with
        | v -> served := (i, v) :: !served
        | exception (Vfs.Fault.Crash _ | Vfs.Fault.Transient _) ->
          Metrics.incr t.hmetrics "degraded.read_failures";
          apply_failure t i "read fault";
          skipped := (i, t.states.(i).health) :: !skipped
      end
      else skipped := (i, t.states.(i).health) :: !skipped)
    (indices t);
  let served = List.rev !served and skipped = List.rev !skipped in
  if skipped <> [] then publish_health t;
  (match policy with
   | `Fail_closed -> if skipped <> [] then raise (Unhealthy skipped)
   | `Degraded -> if served = [] then raise (Unhealthy skipped));
  if skipped <> [] then begin
    Metrics.incr t.hmetrics "degraded.reads";
    Metrics.add t.hmetrics "degraded.skipped_shards" (List.length skipped)
  end;
  (served, skipped)

let coverage_of (t : t) ~served ~skipped =
  let wms =
    Array.mapi
      (fun i s ->
        (* best-effort: a shard can serve its scan from cached pages and
           still fault on the watermark probe (reading the progress table
           opens a transaction, which touches the device) — fall back to
           its last known watermark rather than failing the read *)
        if List.mem_assoc i served then
          match watermark_of t.shards.(i) with
          | wm ->
            s.last_watermark <- wm;
            wm
          | exception (Vfs.Fault.Crash _ | Vfs.Fault.Transient _) -> s.last_watermark
        else s.last_watermark)
      t.states
  in
  {
    shards = partitions t;
    served = List.map fst served;
    skipped;
    watermarks = wms;
    max_watermark = Array.fold_left max 0 wms;
  }

let replica_rows_checked ?(policy = `Fail_closed) t table =
  if is_fact t table then begin
    let served, skipped =
      read_checked ~policy t (fun i -> Warehouse.replica_rows t.shards.(i) table)
    in
    (List.sort Tuple.compare (List.concat_map snd served), coverage_of t ~served ~skipped)
  end
  else begin
    (* replicated table: one serving shard answers for the fleet *)
    let served, skipped = read_checked ~policy t (fun i -> i) in
    let rows = replica_rows_of t (List.map fst served) table in
    (rows, coverage_of t ~served ~skipped)
  end

let view_rows_checked ?(policy = `Fail_closed) t name =
  let served, skipped =
    read_checked ~policy t (fun i -> Warehouse.view_rows t.shards.(i) name)
  in
  (merge_counted (List.map snd served), coverage_of t ~served ~skipped)

let agg_view_rows_checked ?(policy = `Fail_closed) t name =
  let served, skipped = read_checked ~policy t (fun i -> i) in
  let rows = agg_view_rows_of t (List.map fst served) name in
  (rows, coverage_of t ~served ~skipped)

(* ---------- quarantined-shard rebuild ---------- *)

let fleet_watermark t =
  List.fold_left
    (fun acc i -> if serving t i then max acc (watermark_of t.shards.(i)) else acc)
    0 (indices t)

let begin_rebuild ?donor t i =
  let s = t.states.(i) in
  (match s.health with
   | Quarantined -> ()
   | h ->
     invalid_arg
       (Printf.sprintf "Partitioned.begin_rebuild: shard %d is %s, not quarantined" i
          (health_to_string h)));
  let replicated = List.filter (fun (table, _) -> not (is_fact t table)) t.replicas in
  let donor =
    match donor with
    | Some d ->
      if not (serving t d) then
        invalid_arg (Printf.sprintf "Partitioned.begin_rebuild: donor shard %d is not serving" d);
      Some d
    | None -> List.find_opt (fun j -> j <> i && serving t j) (indices t)
  in
  if replicated <> [] && donor = None then
    invalid_arg "Partitioned.begin_rebuild: no serving donor shard for replicated tables";
  (* fresh device, empty shard — the quarantined bytes are abandoned *)
  let vfs = Vfs.in_memory ~op_delay:t.op_delay () in
  let wh =
    Warehouse.create ?pool_pages:t.pool_pages ?pool_stripes:t.pool_stripes ~vfs
      ~name:(Printf.sprintf "%s_p%d" t.name i) ()
  in
  Partition.save (Warehouse.db wh) ~shard:i t.spec;
  init_progress (Warehouse.db wh);
  List.iter
    (fun (table, schema) ->
      Warehouse.add_replica wh ~table ~schema;
      if not (is_fact t table) then
        Warehouse.load_replica wh ~table
          (Warehouse.replica_rows t.shards.(Option.get donor) table))
    t.replicas;
  List.iter (Warehouse.define_view wh) t.views;
  List.iter (Warehouse.define_agg_view wh) t.agg_views;
  (* the donor copy is bulk-unlogged; checkpoint so a kill during the
     rebuild can still recover the dimension rows from the heap *)
  Db.checkpoint (Warehouse.db wh);
  t.vfss.(i) <- vfs;
  t.shards.(i) <- wh;
  s.health <- Rebuilding;
  s.last_error <- None;
  Metrics.incr t.hmetrics "health.rebuilds";
  publish_health t;
  wh

let reattach_rebuilding ?(extra = []) t i =
  let s = t.states.(i) in
  if s.health <> Rebuilding then
    invalid_arg
      (Printf.sprintf "Partitioned.reattach_rebuilding: shard %d is %s" i
         (health_to_string s.health));
  Vfs.crash_reset t.vfss.(i);
  t.shards.(i) <-
    adopt_shard ?pool_pages:t.pool_pages ?pool_stripes:t.pool_stripes ~replicas:t.replicas
      ~views:t.views ~agg_views:t.agg_views ~extra ~spec:t.spec ~name:t.name ~vfs:t.vfss.(i) i

let readmit t i ~watermark =
  let s = t.states.(i) in
  if s.health <> Rebuilding then
    invalid_arg
      (Printf.sprintf "Partitioned.readmit: shard %d is %s, not rebuilding" i
         (health_to_string s.health));
  let db = Warehouse.db t.shards.(i) in
  (* spec verification: the bytes being re-admitted must carry this
     slot's placement (catches re-admitting the wrong shard's rebuild) *)
  (match Partition.load db with
   | Some (shard, persisted) when shard = i && Partition.equal persisted t.spec -> ()
   | _ -> invalid_arg (Printf.sprintf "Partitioned.readmit: shard %d spec mismatch" i));
  (* the rebuilt shard must have caught up: re-admitting behind the
     serving fleet would roll merged reads backwards *)
  let fleet = fleet_watermark t in
  if watermark < fleet then
    invalid_arg
      (Printf.sprintf "Partitioned.readmit: shard %d watermark %d behind fleet %d" i
         watermark fleet);
  Db.with_txn db (fun txn -> set_progress db txn watermark);
  s.last_watermark <- watermark;
  s.last_error <- None;
  Breaker.reset s.breaker;
  s.health <- Healthy;
  Metrics.incr t.hmetrics "health.readmitted";
  publish_health t
