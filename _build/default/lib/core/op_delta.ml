module Ast = Dw_sql.Ast
module Printer = Dw_sql.Printer
module Parser = Dw_sql.Parser
module Tuple = Dw_relation.Tuple
module Schema = Dw_relation.Schema
module Codec = Dw_relation.Codec

type op = { stmt : Ast.stmt; before_images : Tuple.t list }
type t = { txn_id : int; ops : op list }

let make ~txn_id stmts = { txn_id; ops = List.map (fun stmt -> { stmt; before_images = [] }) stmts }

let with_before_images ~txn_id pairs =
  { txn_id; ops = List.map (fun (stmt, before_images) -> { stmt; before_images }) pairs }

let op_size_bytes op ~schema_of =
  let text = Printer.size_bytes op.stmt in
  match op.before_images with
  | [] -> text
  | images -> (
      match schema_of (Ast.table_of op.stmt) with
      | Some schema -> text + (List.length images * Schema.record_size schema)
      | None -> invalid_arg "Op_delta.op_size_bytes: images without schema")

let size_bytes ?(schema_of = fun _ -> None) t =
  (* 8 bytes of transaction framing *)
  List.fold_left (fun acc op -> acc + op_size_bytes op ~schema_of) 8 t.ops

let tables t =
  let seen = Hashtbl.create 4 in
  List.filter_map
    (fun op ->
      let name = Ast.table_of op.stmt in
      if Hashtbl.mem seen name then None
      else begin
        Hashtbl.add seen name ();
        Some name
      end)
    t.ops

(* percent-encoding of the field separators used by the wire format *)

let encode_field s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string buf "%25"
      | '\t' -> Buffer.add_string buf "%09"
      | '\n' -> Buffer.add_string buf "%0A"
      | '#' -> Buffer.add_string buf "%23"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let decode_field s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | _ -> invalid_arg "bad percent escape"
  in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        Buffer.add_char buf (Char.chr ((hex s.[i + 1] * 16) + hex s.[i + 2]));
        go (i + 3)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let encode_line ?(schema_of = fun _ -> None) t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (string_of_int t.txn_id);
  List.iter
    (fun op ->
      Buffer.add_char buf '\t';
      Buffer.add_string buf (encode_field (Printer.to_string op.stmt));
      List.iter
        (fun image ->
          match schema_of (Ast.table_of op.stmt) with
          | Some schema ->
            Buffer.add_char buf '#';
            Buffer.add_string buf (encode_field (Codec.encode_ascii schema image))
          | None -> invalid_arg "Op_delta.encode_line: images without schema")
        op.before_images)
    t.ops;
  Buffer.contents buf

let decode_line ?(schema_of = fun _ -> None) line =
  match String.split_on_char '\t' line with
  | [] | [ _ ] ->
    if line = "" then Error "empty op-delta line"
    else (
      match int_of_string_opt line with
      | Some txn_id -> Ok { txn_id; ops = [] }
      | None -> Error "bad txn id")
  | txn_field :: op_fields -> (
      match int_of_string_opt txn_field with
      | None -> Error (Printf.sprintf "bad txn id %S" txn_field)
      | Some txn_id ->
        let decode_op field =
          match String.split_on_char '#' field with
          | [] -> Error "empty op field"
          | stmt_field :: image_fields -> (
              match Parser.parse (decode_field stmt_field) with
              | Error e -> Error e
              | Ok stmt ->
                let rec images acc = function
                  | [] -> Ok (List.rev acc)
                  | img :: rest -> (
                      match schema_of (Ast.table_of stmt) with
                      | None -> Error "before images present but no schema resolvable"
                      | Some schema -> (
                          match Codec.decode_ascii schema (decode_field img) with
                          | Ok t -> images (t :: acc) rest
                          | Error e -> Error e))
                in
                (match images [] image_fields with
                 | Ok before_images -> Ok { stmt; before_images }
                 | Error e -> Error e))
        in
        let rec go acc = function
          | [] -> Ok { txn_id; ops = List.rev acc }
          | field :: rest -> (
              match decode_op field with
              | Ok op -> go (op :: acc) rest
              | Error e -> Error e)
        in
        go [] op_fields)

let pp ppf t =
  Format.fprintf ppf "@[<v>op-delta txn=%d:@," t.txn_id;
  List.iter
    (fun op ->
      Format.fprintf ppf "  %s%s@," (Printer.to_string op.stmt)
        (match op.before_images with
         | [] -> ""
         | l -> Printf.sprintf " (+%d before images)" (List.length l)))
    t.ops;
  Format.fprintf ppf "@]"
