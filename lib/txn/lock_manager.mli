(** Two-phase-locking lock manager with shared/exclusive modes, table and
    row granularity, and wait-for-graph deadlock detection.

    The engine is single-threaded; "blocking" is *logical*: a conflicting
    {!acquire} returns [`Blocked] (registering the waiter in the wait-for
    graph) and the caller's scheduler decides what to do — retry later,
    advance the simulated clock, or abort on [`Deadlock].  This is what
    the warehouse experiment (W2) uses to account outage: an OLAP query
    blocked by the value-delta batch integration holds its span open until
    the lock is granted.

    {b Striping}: lock state is sharded by table-name hash into
    independently-mutexed stripes, so writer domains on disjoint tables
    never contend; a table and all of its rows share one stripe, keeping
    the coarse-over-fine conflict check stripe-local.  The wait-for
    graph stays global (own mutex) so deadlock cycles spanning stripes
    are still detected — property-tested in the parallel suite. *)

type txid = int

type resource =
  | Table of string
  | Row of string * Dw_storage.Heap_file.rid

type mode = S | X

type outcome =
  | Granted
  | Blocked of txid list  (** the transactions holding conflicting locks *)
  | Deadlock of txid list  (** granting would close a wait-for cycle *)

type t

val create : ?metrics:Dw_util.Metrics.t -> ?stripes:int -> unit -> t
(** [metrics] receives counters [lock.acquires], [lock.blocks] and
    [lock.deadlocks] (a private registry is used when omitted); the
    caller's scheduler is responsible for timing actual waits (the engine
    records a [lock.wait] latency histogram around its block hook).
    [stripes] (default 8, >= 1 or [Invalid_argument]) is the number of
    independently-locked shards of lock state. *)

val stripe_count : t -> int
(** Number of stripes the manager was created with. *)

val stripe_of : t -> resource -> int
(** The stripe index [resource] hashes to; [Table t] and every
    [Row (t, _)] map to the same stripe (invariant the tests pin). *)

val acquire : t -> txid -> resource -> mode -> outcome
(** Upgrades S→X when possible.  Re-acquiring a held lock is [Granted].
    A [Row] lock implicitly conflicts with an [X] [Table] lock on the
    same table (coarse-over-fine; no full intention-lock hierarchy). *)

val release_all : t -> txid -> unit
(** End of transaction: drop all locks and pending waits of [txid]. *)

val holders : t -> resource -> (txid * mode) list
(** Current grantees of [resource] with their modes ([] when free). *)

val held_by : t -> txid -> resource list
(** Resources [txid] currently holds a lock on, in no particular order. *)

val waiting : t -> txid -> bool
(** Whether [txid] has a queued (not yet granted) lock request. *)
