type txid = int

type resource = Table of string | Row of string * Dw_storage.Heap_file.rid
type mode = S | X
type outcome = Granted | Blocked of txid list | Deadlock of txid list

(* per-(table, txid) row-lock tally, so a Table-lock request can find
   conflicting row locks in O(#transactions) instead of O(#locks) *)
type tally = { mutable s_rows : int; mutable x_rows : int }

module Metrics = Dw_util.Metrics

(* Striping: lock state is sharded by TABLE NAME hash, so a [Table t]
   lock and every [Row (t, _)] lock land in the same stripe — the
   coarse-over-fine conflict check (table lock vs row tallies) never has
   to look outside one stripe, and independent tables contend on
   independent mutexes.  The wait-for graph stays GLOBAL under its own
   mutex: a deadlock cycle can span tables in different stripes, and a
   per-stripe graph would miss it.  No operation holds a stripe mutex
   and the wait mutex at the same time, so no lock-order cycle exists. *)

type stripe = {
  locks : (resource, (txid, mode) Hashtbl.t) Hashtbl.t;
  held : (txid, (resource, unit) Hashtbl.t) Hashtbl.t;
  row_tally : (string, (txid, tally) Hashtbl.t) Hashtbl.t;
  stripe_lock : Mutex.t;
}

type t = {
  stripes : stripe array;
  wait_for : (txid, txid list) Hashtbl.t;  (* waiter -> blockers *)
  wait_lock : Mutex.t;
  metrics : Metrics.t;
}

let default_stripes = 8

let create ?metrics ?(stripes = default_stripes) () =
  if stripes < 1 then invalid_arg "Lock_manager.create: stripes < 1";
  {
    stripes =
      Array.init stripes (fun _ ->
          { locks = Hashtbl.create 64; held = Hashtbl.create 16;
            row_tally = Hashtbl.create 16; stripe_lock = Mutex.create () });
    wait_for = Hashtbl.create 16;
    wait_lock = Mutex.create ();
    metrics = (match metrics with Some m -> m | None -> Metrics.create ());
  }

let stripe_count t = Array.length t.stripes

let table_of_resource = function Table tname | Row (tname, _) -> tname

let stripe_index t tname = Hashtbl.hash tname mod Array.length t.stripes
let stripe_of t resource = stripe_index t (table_of_resource resource)
let stripe_for t resource = t.stripes.(stripe_of t resource)

let locked m f = Mutex.protect m f

(* ---------- per-stripe state (callers hold sp.stripe_lock) ---------- *)

let holders_tbl sp resource =
  match Hashtbl.find_opt sp.locks resource with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 4 in
    Hashtbl.add sp.locks resource tbl;
    tbl

let holders_unlocked sp resource =
  match Hashtbl.find_opt sp.locks resource with
  | None -> []
  | Some tbl -> Hashtbl.fold (fun tx mode acc -> (tx, mode) :: acc) tbl []

let holders t resource =
  let sp = stripe_for t resource in
  locked sp.stripe_lock (fun () -> holders_unlocked sp resource)

let compatible a b = a = S && b = S

let tally_tbl sp tname =
  match Hashtbl.find_opt sp.row_tally tname with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 8 in
    Hashtbl.add sp.row_tally tname tbl;
    tbl

let tally_for sp tname tx =
  let tbl = tally_tbl sp tname in
  match Hashtbl.find_opt tbl tx with
  | Some tally -> tally
  | None ->
    let tally = { s_rows = 0; x_rows = 0 } in
    Hashtbl.add tbl tx tally;
    tally

(* conflicting holders of [resource] in [mode], from [tx]'s viewpoint,
   including coarse-grained conflicts between table and row locks — all
   within [resource]'s stripe, because a table and its rows share one *)
let conflicts sp tx resource mode =
  let direct =
    holders_unlocked sp resource
    |> List.filter (fun (other, held_mode) -> other <> tx && not (compatible mode held_mode))
    |> List.map fst
  in
  let coarse =
    match resource with
    | Row (tname, _) ->
      (* a row lock conflicts with another transaction's table lock unless
         both are S *)
      holders_unlocked sp (Table tname)
      |> List.filter (fun (other, held_mode) -> other <> tx && not (compatible mode held_mode))
      |> List.map fst
    | Table tname -> (
        (* a table lock conflicts with other transactions' row locks in the
           table (unless both S) *)
        match Hashtbl.find_opt sp.row_tally tname with
        | None -> []
        | Some tbl ->
          Hashtbl.fold
            (fun other tally acc ->
              if other = tx then acc
              else if tally.x_rows > 0 then other :: acc
              else if tally.s_rows > 0 && mode = X then other :: acc
              else acc)
            tbl [])
  in
  List.sort_uniq compare (direct @ coarse)

let record_held sp tx resource =
  let set =
    match Hashtbl.find_opt sp.held tx with
    | Some set -> set
    | None ->
      let set = Hashtbl.create 16 in
      Hashtbl.add sp.held tx set;
      set
  in
  if not (Hashtbl.mem set resource) then Hashtbl.replace set resource ()

(* would granting make [waiter] wait on someone who (transitively) waits
   on [waiter]?  Callers hold t.wait_lock. *)
let closes_cycle t waiter blockers =
  let visited = Hashtbl.create 16 in
  let rec reachable from =
    if from = waiter then true
    else if Hashtbl.mem visited from then false
    else begin
      Hashtbl.add visited from ();
      match Hashtbl.find_opt t.wait_for from with
      | None -> false
      | Some next -> List.exists reachable next
    end
  in
  List.exists reachable blockers

let bump_tally sp tx resource ~old_mode ~new_mode =
  match resource with
  | Table _ -> ()
  | Row (tname, _) ->
    let tally = tally_for sp tname tx in
    (match old_mode with
     | Some S -> tally.s_rows <- tally.s_rows - 1
     | Some X -> tally.x_rows <- tally.x_rows - 1
     | None -> ());
    (match new_mode with
     | S -> tally.s_rows <- tally.s_rows + 1
     | X -> tally.x_rows <- tally.x_rows + 1)

let acquire t tx resource mode =
  Metrics.incr t.metrics "lock.acquires";
  let sp = stripe_for t resource in
  let blockers =
    locked sp.stripe_lock (fun () ->
        let blockers = conflicts sp tx resource mode in
        (match blockers with
         | [] ->
           let tbl = holders_tbl sp resource in
           let old_mode = Hashtbl.find_opt tbl tx in
           let new_mode =
             match old_mode, mode with
             | Some X, _ -> X
             | Some S, X -> X
             | Some S, S -> S
             | None, m -> m
           in
           if old_mode <> Some new_mode then begin
             Hashtbl.replace tbl tx new_mode;
             bump_tally sp tx resource ~old_mode ~new_mode
           end;
           record_held sp tx resource
         | _ -> ());
        blockers)
  in
  match blockers with
  | [] ->
    locked t.wait_lock (fun () -> Hashtbl.remove t.wait_for tx);
    Granted
  | _ ->
    locked t.wait_lock (fun () ->
        if closes_cycle t tx blockers then begin
          Metrics.incr t.metrics "lock.deadlocks";
          Deadlock blockers
        end
        else begin
          Metrics.incr t.metrics "lock.blocks";
          Hashtbl.replace t.wait_for tx blockers;
          Blocked blockers
        end)

let release_all t tx =
  Array.iter
    (fun sp ->
      locked sp.stripe_lock (fun () ->
          match Hashtbl.find_opt sp.held tx with
          | None -> ()
          | Some set ->
            Hashtbl.iter
              (fun resource () ->
                (match Hashtbl.find_opt sp.locks resource with
                 | Some tbl ->
                   Hashtbl.remove tbl tx;
                   if Hashtbl.length tbl = 0 then Hashtbl.remove sp.locks resource
                 | None -> ());
                match resource with
                | Row (tname, _) -> (
                    match Hashtbl.find_opt sp.row_tally tname with
                    | Some tbl -> Hashtbl.remove tbl tx
                    | None -> ())
                | Table _ -> ())
              set;
            Hashtbl.remove sp.held tx))
    t.stripes;
  locked t.wait_lock (fun () ->
      Hashtbl.remove t.wait_for tx;
      (* drop this tx from other waiters' blocker lists *)
      let updates =
        Hashtbl.fold
          (fun waiter blockers acc ->
            if List.mem tx blockers then
              (waiter, List.filter (fun b -> b <> tx) blockers) :: acc
            else acc)
          t.wait_for []
      in
      List.iter
        (fun (waiter, blockers) ->
          if blockers = [] then Hashtbl.remove t.wait_for waiter
          else Hashtbl.replace t.wait_for waiter blockers)
        updates)

let held_by t tx =
  Array.to_list t.stripes
  |> List.concat_map (fun sp ->
         locked sp.stripe_lock (fun () ->
             match Hashtbl.find_opt sp.held tx with
             | Some set -> Hashtbl.fold (fun r () acc -> r :: acc) set []
             | None -> []))

let waiting t tx = locked t.wait_lock (fun () -> Hashtbl.mem t.wait_for tx)
