lib/core/delta.ml: Dw_relation Format List Map Option Printf String
