(* A multi-day incremental maintenance deployment built on the Pipeline
   library: a source system takes business transactions during the day, a
   nightly pipeline round moves the delta into the warehouse, and analysts
   query materialized aggregate views (and ad-hoc SQL GROUP BY) in between.

     dune exec examples/nightly_etl.exe *)

module Vfs = Dw_storage.Vfs
module Db = Dw_engine.Db
module Value = Dw_relation.Value
module Expr = Dw_relation.Expr
module Workload = Dw_workload.Workload
module Agg_view = Dw_core.Agg_view
module Warehouse = Dw_warehouse.Warehouse
module Pipeline = Dw_etl.Pipeline
module Prng = Dw_util.Prng

let () =
  (* --- source + warehouse --- *)
  let src = Db.create ~archive_log:true ~vfs:(Vfs.in_memory ()) ~name:"erp" () in
  let _ = Workload.create_parts_table src in
  let wh = Warehouse.create ~vfs:(Vfs.in_memory ()) ~name:"dw" () in
  Warehouse.add_replica wh ~table:"parts" ~schema:Workload.parts_schema;
  (* an aggregate view: per-quantity stock statistics *)
  Warehouse.define_agg_view wh
    {
      Agg_view.name = "stock_stats";
      table = "parts";
      schema = Workload.parts_schema;
      filter = Some (Expr.Cmp (Expr.Gt, Expr.Col "qty", Expr.Lit (Value.Int 0)));
      group_by = [ "qty" ];
      aggregates =
        [ ("n_parts", Agg_view.Count); ("total_value", Agg_view.Sum "price");
          ("cheapest", Agg_view.Min "price") ];
    };
  (* the nightly pipeline: log-based extraction through a persistent queue *)
  let pipe =
    Pipeline.create ~source:src ~warehouse:wh ~table:"parts" ~method_:Pipeline.Log
      ~transport:(Pipeline.Queued "nightly") ()
  in

  (* --- three business days --- *)
  let rng = Prng.create ~seed:2026 in
  let next_id = ref 1 in
  for day = 1 to 3 do
    Db.advance_day src;
    (* the day's OLTP activity *)
    let txns = 10 + Prng.int rng 10 in
    for _ = 1 to txns do
      let stmts =
        match Prng.int rng 3 with
        | 0 ->
          let id = !next_id in
          next_id := !next_id + 5;
          Workload.insert_parts_txn ~first_id:id ~size:5 ~day:(Db.current_day src) ()
        | 1 when !next_id > 10 ->
          [ Workload.update_parts_stmt ~first_id:(1 + Prng.int rng (!next_id - 5)) ~size:3 ]
        | _ when !next_id > 10 ->
          [ Workload.delete_parts_stmt ~first_id:(1 + Prng.int rng (!next_id - 5)) ~size:1 ]
        | _ -> Workload.insert_parts_txn ~first_id:(!next_id + 50000) ~size:1 ~day:(Db.current_day src) ()
      in
      Db.with_txn src (fun txn ->
          List.iter (fun s -> ignore (Db.exec src txn s : Db.exec_result)) stmts)
    done;
    (* the nightly round *)
    match Pipeline.run_round pipe with
    | Error e -> failwith e
    | Ok stats ->
      Printf.printf
        "night %d: %d changes extracted via %s, %s shipped, integrated in %s (%d row ops)\n" day
        stats.Pipeline.extracted_changes (Pipeline.method_name pipe)
        (Dw_util.Fmt_util.human_bytes stats.Pipeline.shipped_bytes)
        (Dw_util.Fmt_util.human_duration stats.Pipeline.integration.Warehouse.duration)
        stats.Pipeline.integration.Warehouse.row_ops
  done;

  (* --- the analyst side --- *)
  let wh_db = Warehouse.db wh in
  Printf.printf "\nwarehouse replica: %d rows (source has %d)\n"
    (Dw_engine.Table.row_count (Db.table wh_db "parts"))
    (Dw_engine.Table.row_count (Db.table src "parts"));
  (* 1. the materialized aggregate view, maintained incrementally *)
  let stats_rows = Warehouse.agg_view_rows wh "stock_stats" in
  Printf.printf "stock_stats materialized view: %d groups (consistent with recompute: %b)\n"
    (List.length stats_rows)
    (stats_rows = Warehouse.recompute_agg_view wh "stock_stats");
  (* 2. an ad-hoc SQL aggregate over the replica *)
  Db.with_txn wh_db (fun txn ->
      match
        Db.exec_sql wh_db txn
          "SELECT COUNT(*) AS parts, SUM(qty) AS units, AVG(price) AS avg_price FROM parts \
           WHERE qty > 0"
      with
      | Ok (Db.Rows { columns; rows = [ r ] }) ->
        Printf.printf "ad-hoc SQL: %s\n"
          (String.concat ", "
             (List.map2
                (fun c v -> Printf.sprintf "%s=%s" c (Value.to_string v))
                columns (Array.to_list r)))
      | Ok _ -> failwith "unexpected shape"
      | Error e -> failwith e);
  (* 3. the canned analyst mix *)
  (match Dw_warehouse.Olap.run_all wh (Dw_warehouse.Olap.standard_queries ~table:"parts") with
   | results, err ->
     List.iter
       (fun r ->
         Printf.printf "olap %-28s %4d rows in %s\n" r.Dw_warehouse.Olap.query
           r.Dw_warehouse.Olap.rows
           (Dw_util.Fmt_util.human_duration r.Dw_warehouse.Olap.duration))
       results;
     Option.iter failwith err);
  print_endline "nightly ETL example complete."
