test/test_sql.ml: Alcotest Dw_relation Dw_sql List Option Printf QCheck2 QCheck_alcotest Result String
