lib/transport/file_ship.mli: Dw_storage
