lib/storage/vfs.ml: Array Bytes Dw_util Filename Hashtbl List Option Printf String Sys Unix
