(** Virtual file system.

    Every byte the engine moves to or from "disk" goes through a [Vfs.t],
    which counts operations in a {!Dw_util.Metrics.t} registry.  Two
    backends exist: an in-memory one (deterministic, fast, used by tests
    and benches) and a real-directory one (used when persistence across
    processes matters).  Counter names: [vfs.reads], [vfs.writes],
    [vfs.read_bytes], [vfs.write_bytes], [vfs.fsyncs]. *)

type t
type file

val in_memory : ?metrics:Dw_util.Metrics.t -> ?op_delay:float -> unit -> t
(** Fresh empty in-memory file system.  [op_delay] (seconds, default 0)
    is added to every read/write/fsync — used to simulate a remote or
    slow device (e.g. the paper's staging database across a 10 Mb/s LAN,
    Section 3.1.3). *)

val on_disk : ?metrics:Dw_util.Metrics.t -> string -> t
(** [on_disk dir] is backed by directory [dir] (created if absent).  File
    names must not contain path separators. *)

val metrics : t -> Dw_util.Metrics.t

val create : t -> string -> file
(** Create (truncate if it exists) and open. *)

val open_existing : t -> string -> file
(** Raises [Not_found] if absent. *)

val open_or_create : t -> string -> file

val exists : t -> string -> bool
val delete : t -> string -> unit
(** No-op if absent; raises [Invalid_argument] if the file is open. *)

val list_files : t -> string list
(** Sorted names. *)

val name : file -> string
val size : file -> int

val read_at : file -> off:int -> len:int -> bytes
(** Raises [Invalid_argument] when the range extends past end of file. *)

val write_at : file -> off:int -> bytes -> unit
(** Extends the file if needed ([off] at most [size]). *)

val append : file -> bytes -> int
(** Returns the offset the data was written at. *)

val fsync : file -> unit
val close : file -> unit
val truncate : file -> int -> unit
(** Shrink to the given size. *)
