type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string
  | LPAREN | RPAREN | COMMA | STAR | DOT | SEMI
  | EQ | NEQ | LT | LE | GT | GE
  | PLUS | MINUS | SLASH
  | EOF

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "INSERT"; "INTO"; "VALUES"; "UPDATE"; "SET"; "DELETE";
    "CREATE"; "TABLE"; "AND"; "OR"; "NOT"; "NULL"; "IS"; "TRUE"; "FALSE"; "AS";
    "ORDER"; "BY"; "KEY"; "DATE"; "INT"; "FLOAT"; "BOOL"; "STRING"; "PRIMARY";
    "GROUP"; "COUNT"; "SUM"; "AVG"; "MIN"; "MAX" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let error = ref None in
  let emit tok = tokens := tok :: !tokens in
  let rec go i =
    if !error <> None then ()
    else if i >= n then emit EOF
    else
      let c = input.[i] in
      match c with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '(' -> emit LPAREN; go (i + 1)
      | ')' -> emit RPAREN; go (i + 1)
      | ',' -> emit COMMA; go (i + 1)
      | '*' -> emit STAR; go (i + 1)
      | '.' -> emit DOT; go (i + 1)
      | ';' -> emit SEMI; go (i + 1)
      | '+' -> emit PLUS; go (i + 1)
      | '-' -> emit MINUS; go (i + 1)
      | '/' -> emit SLASH; go (i + 1)
      | '=' -> emit EQ; go (i + 1)
      | '<' ->
        if i + 1 < n && input.[i + 1] = '=' then begin emit LE; go (i + 2) end
        else if i + 1 < n && input.[i + 1] = '>' then begin emit NEQ; go (i + 2) end
        else begin emit LT; go (i + 1) end
      | '>' ->
        if i + 1 < n && input.[i + 1] = '=' then begin emit GE; go (i + 2) end
        else begin emit GT; go (i + 1) end
      | '!' when i + 1 < n && input.[i + 1] = '=' -> emit NEQ; go (i + 2)
      | '\'' ->
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then begin
            error := Some (Printf.sprintf "unterminated string starting at %d" i);
            j
          end
          else if input.[j] = '\'' then
            if j + 1 < n && input.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              str (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf input.[j];
            str (j + 1)
          end
        in
        let next = str (i + 1) in
        if !error = None then begin
          emit (STRING (Buffer.contents buf));
          go next
        end
      | c when is_digit c ->
        let j = ref i in
        while !j < n && is_digit input.[!j] do incr j done;
        let is_float =
          !j < n && input.[!j] = '.' && !j + 1 < n && is_digit input.[!j + 1]
        in
        if is_float then begin
          incr j;
          while !j < n && is_digit input.[!j] do incr j done;
          (* exponent *)
          if !j < n && (input.[!j] = 'e' || input.[!j] = 'E') then begin
            let k = ref (!j + 1) in
            if !k < n && (input.[!k] = '+' || input.[!k] = '-') then incr k;
            if !k < n && is_digit input.[!k] then begin
              while !k < n && is_digit input.[!k] do incr k done;
              j := !k
            end
          end;
          match float_of_string_opt (String.sub input i (!j - i)) with
          | Some f -> emit (FLOAT f); go !j
          | None -> error := Some (Printf.sprintf "bad float at %d" i)
        end
        else begin
          match int_of_string_opt (String.sub input i (!j - i)) with
          | Some v -> emit (INT v); go !j
          | None -> error := Some (Printf.sprintf "bad int at %d" i)
        end
      | c when is_ident_start c ->
        let j = ref i in
        while !j < n && is_ident_char input.[!j] do incr j done;
        let word = String.sub input i (!j - i) in
        let upper = String.uppercase_ascii word in
        if List.mem upper keywords then emit (KW upper) else emit (IDENT word);
        go !j
      | c -> error := Some (Printf.sprintf "unexpected character %C at %d" c i)
  in
  go 0;
  match !error with
  | Some e -> Error e
  | None -> Ok (List.rev !tokens)

let token_to_string = function
  | IDENT s -> s
  | INT n -> string_of_int n
  | FLOAT f -> Printf.sprintf "%g" f
  | STRING s -> Printf.sprintf "'%s'" s
  | KW k -> k
  | LPAREN -> "(" | RPAREN -> ")" | COMMA -> "," | STAR -> "*" | DOT -> "." | SEMI -> ";"
  | EQ -> "=" | NEQ -> "<>" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | PLUS -> "+" | MINUS -> "-" | SLASH -> "/"
  | EOF -> "<eof>"
