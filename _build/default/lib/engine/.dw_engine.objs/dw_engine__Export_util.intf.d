lib/engine/export_util.mli: Db Dw_relation Dw_storage
