lib/engine/db.ml: Array Dw_relation Dw_sql Dw_storage Dw_txn Fun Hashtbl List Map Option Printf String Table Trigger
