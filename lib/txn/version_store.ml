module Tuple = Dw_relation.Tuple
module Heap_file = Dw_storage.Heap_file

type entry = {
  mutable superseded_at : int;  (* commit CSN of the superseding writer; max_int while pending *)
  mutable writer : int;         (* txid while pending; -1 once published *)
  image : Tuple.t option;       (* None = the row did not exist before *)
}

let pending_csn = max_int

type t = {
  (* table -> rid -> chain, newest entry first (descending superseded_at,
     with at most one pending entry at the head — writers hold X locks,
     so two transactions never have unpublished writes to the same rid) *)
  tables : (string, (Heap_file.rid, entry list ref) Hashtbl.t) Hashtbl.t;
  (* writer txid -> rids it noted, for O(writes) publish/discard *)
  by_tx : (int, (string * Heap_file.rid) list ref) Hashtbl.t;
  mutable live : int;
  (* one mutex over the whole store: parallel snapshot readers resolve
     against it while a writer domain notes/publishes, and chain/entry
     mutation is cheap relative to the page work around it *)
  lock : Mutex.t;
}

let create () =
  { tables = Hashtbl.create 8; by_tx = Hashtbl.create 8; live = 0; lock = Mutex.create () }

let locked t f = Mutex.protect t.lock f

let table_tbl t table =
  match Hashtbl.find_opt t.tables table with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 32 in
    Hashtbl.add t.tables table tbl;
    tbl

let note t ~tx ~table ~rid ~image =
  locked t @@ fun () ->
  let tbl = table_tbl t table in
  let chain =
    match Hashtbl.find_opt tbl rid with
    | Some chain -> chain
    | None ->
      let chain = ref [] in
      Hashtbl.add tbl rid chain;
      chain
  in
  let already_noted =
    match !chain with
    | head :: _ -> head.superseded_at = pending_csn && head.writer = tx
    | [] -> false
  in
  if not already_noted then begin
    chain := { superseded_at = pending_csn; writer = tx; image } :: !chain;
    t.live <- t.live + 1;
    let cell =
      match Hashtbl.find_opt t.by_tx tx with
      | Some cell -> cell
      | None ->
        let cell = ref [] in
        Hashtbl.add t.by_tx tx cell;
        cell
    in
    cell := (table, rid) :: !cell
  end

let publish t ~tx ~csn =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.by_tx tx with
  | None -> ()
  | Some cell ->
    List.iter
      (fun (table, rid) ->
        match Hashtbl.find_opt t.tables table with
        | None -> ()
        | Some tbl -> (
            match Hashtbl.find_opt tbl rid with
            | Some { contents = head :: _ } when head.writer = tx ->
              head.superseded_at <- csn;
              head.writer <- -1
            | Some _ | None -> ()))
      !cell;
    Hashtbl.remove t.by_tx tx

let discard t ~tx =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.by_tx tx with
  | None -> ()
  | Some cell ->
    List.iter
      (fun (table, rid) ->
        match Hashtbl.find_opt t.tables table with
        | None -> ()
        | Some tbl -> (
            match Hashtbl.find_opt tbl rid with
            | Some chain -> (
                match !chain with
                | head :: rest when head.writer = tx ->
                  t.live <- t.live - 1;
                  if rest = [] then Hashtbl.remove tbl rid else chain := rest
                | _ -> ())
            | None -> ()))
      !cell;
    Hashtbl.remove t.by_tx tx

let resolve t ~table ~rid ~csn =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.tables table with
  | None -> `Current
  | Some tbl -> (
      match Hashtbl.find_opt tbl rid with
      | None -> `Current
      | Some chain ->
        (* newest-first, superseded_at strictly descending: the visible
           version is the oldest entry still superseded after [csn] *)
        let rec go best = function
          | [] -> best
          | e :: rest -> if e.superseded_at > csn then go (Some e) rest else best
        in
        (match go None !chain with
         | None -> `Current
         | Some { image = Some tuple; _ } -> `Image tuple
         | Some { image = None; _ } -> `Absent))

let iter_table t ~table f =
  (* snapshot the rid set under the lock, call back outside it: [f]
     typically resolves (which re-locks) or touches buffer-pool pages *)
  let rids =
    locked t (fun () ->
        match Hashtbl.find_opt t.tables table with
        | None -> []
        | Some tbl -> Hashtbl.fold (fun rid _ acc -> rid :: acc) tbl [])
  in
  List.iter f rids

let entries t = locked t (fun () -> t.live)
let pending_txns t = locked t (fun () -> Hashtbl.length t.by_tx)

let gc t ~horizon =
  locked t @@ fun () ->
  let dropped = ref 0 in
  Hashtbl.iter
    (fun _table tbl ->
      let doomed = ref [] in
      Hashtbl.iter
        (fun rid chain ->
          let keep, drop =
            List.partition
              (fun e -> e.superseded_at = pending_csn || e.superseded_at > horizon)
              !chain
          in
          if drop <> [] then begin
            dropped := !dropped + List.length drop;
            if keep = [] then doomed := rid :: !doomed else chain := keep
          end)
        tbl;
      List.iter (Hashtbl.remove tbl) !doomed)
    t.tables;
  t.live <- t.live - !dropped;
  !dropped

let drop_table t ~table =
  locked t @@ fun () ->
  (match Hashtbl.find_opt t.tables table with
   | None -> ()
   | Some tbl ->
     Hashtbl.iter (fun _ chain -> t.live <- t.live - List.length !chain) tbl;
     Hashtbl.remove t.tables table);
  (* forget the dropped table's rids in writers' publish lists *)
  Hashtbl.iter
    (fun _ cell -> cell := List.filter (fun (tname, _) -> tname <> table) !cell)
    t.by_tx

let clear t =
  locked t @@ fun () ->
  Hashtbl.reset t.tables;
  Hashtbl.reset t.by_tx;
  t.live <- 0
