(* Concurrent warehouse sessions over the real engine: the effect-handler
   scheduler interleaves an Op-Delta integrator with OLAP analysts, then
   replays the same maintenance as one value-delta batch to show the
   outage — the paper's Section 4.1 online-maintenance claim, live.

     dune exec examples/concurrent_warehouse.exe *)

module Vfs = Dw_storage.Vfs
module Db = Dw_engine.Db
module Scheduler = Dw_engine.Scheduler
module Workload = Dw_workload.Workload
module Op_delta = Dw_core.Op_delta
module Warehouse = Dw_warehouse.Warehouse
module Olap = Dw_warehouse.Olap

let replica_rows = 1500
let maintenance_txns = 12

let mk_warehouse () =
  let wh = Warehouse.create ~vfs:(Vfs.in_memory ()) ~name:"dw" () in
  Warehouse.add_replica wh ~table:"parts" ~schema:Workload.parts_schema;
  let rng = Dw_util.Prng.create ~seed:42 in
  Warehouse.load_replica wh ~table:"parts"
    (List.init replica_rows (fun i -> Workload.gen_part rng ~id:(i + 1) ~day:0));
  wh

let maintenance =
  List.init maintenance_txns (fun i ->
      Op_delta.make ~txn_id:i [ Workload.update_parts_stmt ~first_id:(1 + (i * 100)) ~size:40 ])

let analyst_sql = "SELECT COUNT(*) AS n, SUM(qty) AS units FROM parts WHERE qty > 0"

let run_mode ~online =
  let wh = mk_warehouse () in
  let db = Warehouse.db wh in
  let integrator =
    {
      Scheduler.name = "integrator";
      start_at = 0;
      work =
        (fun () ->
          if online then
            List.iter
              (fun od -> ignore (Warehouse.integrate_op_delta wh od : Warehouse.stats))
              maintenance
          else
            Db.with_txn db (fun txn ->
                List.iter
                  (fun od ->
                    List.iter
                      (fun (op : Op_delta.op) ->
                        ignore (Db.exec db txn op.Op_delta.stmt : Db.exec_result))
                      od.Op_delta.ops)
                  maintenance));
    }
  in
  let analysts =
    List.init 4 (fun i ->
        {
          Scheduler.name = Printf.sprintf "analyst-%d" i;
          start_at = 1 + (i * 3);
          work =
            (fun () ->
              Db.with_txn db (fun txn ->
                  match Db.exec_sql db txn analyst_sql with
                  | Ok _ -> ()
                  | Error e -> failwith e));
        })
  in
  Scheduler.run db (integrator :: analysts)

let describe label (r : Scheduler.report) =
  Printf.printf "%s (makespan %d statement slices):\n" label r.Scheduler.total_slices;
  List.iter
    (fun s ->
      Printf.printf "  %-12s arrived %2d  finished %2d  blocked %2d slices%s\n"
        s.Scheduler.session s.Scheduler.arrived s.Scheduler.finished s.Scheduler.blocked_slices
        (match s.Scheduler.failed with Some e -> "  FAILED: " ^ e | None -> ""))
    r.Scheduler.sessions

let () =
  Printf.printf
    "%d maintenance transactions (40-row updates) vs 4 analysts on a %d-row warehouse\n\n"
    maintenance_txns replica_rows;
  describe "value-delta batch (one transaction)" (run_mode ~online:false);
  print_newline ();
  describe "Op-Delta online (transaction per source txn)" (run_mode ~online:true);
  print_newline ();
  print_endline
    "reading guide: in batch mode every analyst that arrives during the integration is blocked \
     until its single transaction commits; in online mode analysts slot in between the short \
     maintenance transactions and never wait."
