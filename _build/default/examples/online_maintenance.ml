(* Online warehouse maintenance: apply the same change stream as (a) one
   value-delta batch and (b) per-transaction Op-Deltas, then simulate OLAP
   queries running concurrently and compare availability — the paper's
   "Op-Delta can interleave with OLAP queries" claim (Section 4.1).

     dune exec examples/online_maintenance.exe *)

module Vfs = Dw_storage.Vfs
module Db = Dw_engine.Db
module Value = Dw_relation.Value
module Expr = Dw_relation.Expr
module Workload = Dw_workload.Workload
module Op_delta = Dw_core.Op_delta
module Spj_view = Dw_core.Spj_view
module Trigger_extract = Dw_core.Trigger_extract
module Warehouse = Dw_warehouse.Warehouse
module Availability_sim = Dw_warehouse.Availability_sim

let replica_rows = 3000
let maintenance_txns = 30

let mk_warehouse () =
  let wh = Warehouse.create ~pool_pages:2048 ~vfs:(Vfs.in_memory ()) ~name:"dw" () in
  Warehouse.add_replica wh ~table:"parts" ~schema:Workload.parts_schema;
  let rng = Dw_util.Prng.create ~seed:7 in
  Warehouse.load_replica wh ~table:"parts"
    (List.init replica_rows (fun i -> Workload.gen_part rng ~id:(i + 1) ~day:0));
  Warehouse.define_view wh
    (Spj_view.Select_project
       {
         name = "stock";
         table = "parts";
         schema = Workload.parts_schema;
         filter = Some (Expr.Cmp (Expr.Gt, Expr.Col "qty", Expr.Lit (Value.Int 0)));
         project =
           [
             { Spj_view.out_name = "part_id"; from_side = Spj_view.L; from_col = "part_id" };
             { Spj_view.out_name = "qty"; from_side = Spj_view.L; from_col = "qty" };
           ];
       });
  wh

let () =
  (* --- source activity: 30 transactions, captured both ways --- *)
  let src = Db.create ~pool_pages:1024 ~vfs:(Vfs.in_memory ()) ~name:"src" () in
  let _ = Workload.create_parts_table src in
  Workload.load_parts ~seed:7 src ~rows:replica_rows ();
  Db.advance_day src;
  let handle = Trigger_extract.install src ~table:"parts" in
  let ods = ref [] in
  for i = 0 to maintenance_txns - 1 do
    let stmts =
      match i mod 3 with
      | 0 ->
        Workload.insert_parts_txn ~first_id:(replica_rows + 1 + (i * 40)) ~size:30
          ~day:(Db.current_day src) ()
      | 1 -> [ Workload.update_parts_stmt ~first_id:(1 + (i * 37)) ~size:30 ]
      | _ -> [ Workload.delete_parts_stmt ~first_id:(1 + (i * 53)) ~size:15 ]
    in
    Db.with_txn src (fun txn ->
        List.iter (fun s -> ignore (Db.exec src txn s : Db.exec_result)) stmts);
    ods := Op_delta.make ~txn_id:i stmts :: !ods
  done;
  let ods = List.rev !ods in
  let value_delta = Trigger_extract.collect src handle in
  Printf.printf "captured: %d-change value delta | %d op-deltas\n"
    (Dw_core.Delta.row_count value_delta)
    (List.length ods);

  (* --- integrate for real, collecting per-job costs --- *)
  let wh_batch = mk_warehouse () in
  let batch_stats = Warehouse.integrate_value_delta wh_batch value_delta in
  let wh_online = mk_warehouse () in
  let per_txn_stats = List.map (Warehouse.integrate_op_delta wh_online) ods in
  Printf.printf "batch integration: %d row ops in one transaction (%s)\n"
    batch_stats.Warehouse.row_ops
    (Dw_util.Fmt_util.human_duration batch_stats.Warehouse.duration);
  Printf.printf "online integration: %d transactions, %d row ops total\n"
    (List.length per_txn_stats)
    (List.fold_left (fun a (s : Warehouse.stats) -> a + s.Warehouse.row_ops) 0 per_txn_stats);

  (* both converge to the same warehouse state *)
  let same =
    Warehouse.view_rows wh_batch "stock" = Warehouse.view_rows wh_online "stock"
  in
  Printf.printf "states converge: %b\n\n" same;

  (* --- availability: OLAP queries every 200 ticks, 80 ticks each --- *)
  let cost (s : Warehouse.stats) = max 1 s.Warehouse.row_ops in
  let config jobs =
    { Availability_sim.write_jobs = jobs; query_duration = 80; query_interval = 200;
      horizon = 4000 }
  in
  let batch_report = Availability_sim.run (config [ cost batch_stats ]) in
  let online_report = Availability_sim.run (config (List.map cost per_txn_stats)) in
  let show name (r : Availability_sim.report) =
    Printf.printf "%-18s outage %5d ticks | max query wait %5d | %d/%d queries done\n" name
      r.Availability_sim.outage_time r.Availability_sim.max_query_wait
      r.Availability_sim.queries_completed r.Availability_sim.queries_admitted
  in
  show "value-delta batch" batch_report;
  show "Op-Delta online" online_report;
  Printf.printf
    "\nthe batch holds the warehouse lock for its whole duration (outage ~= batch cost); the \
     op-delta stream lets queries in between transactions.\n"
