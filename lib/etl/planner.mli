(** Cost-based extraction-method planner (ROADMAP item 2; Tempura-style
    "method choice is an optimizer decision", PAPERS.md).

    The paper hand-compares its five delta-extraction methods and leaves
    the choice to the operator; this module makes it from observed
    statistics instead.  A {!t} carries one {e per-method cost model} in
    abstract {e work units} (one unit ≈ one row visit), built from the
    cost hooks the extraction modules expose
    ({!Dw_core.Timestamp_extract.work_units} and friends) and {e
    calibrated once per session} from micro-probes: tiny throwaway
    source/warehouse instances run a canonical transaction mix through
    every method and the measured stats (images per changed row, wire
    bytes per image and per statement, log records per changed row,
    integration row ops per row) become the model coefficients — the
    model is fitted to this engine, not hard-coded.

    {!plan} then scores each method against the {!observed} statistics
    of the maintained table (delta rate, table size, statement mix,
    lock-wait p95, ship latency) and picks the cheapest {e eligible}
    one.  Eligibility encodes correctness, not cost: timestamp
    extraction is ineligible while deletes are observed (it cannot see
    them), log extraction requires archive logging.  Two dampers keep a
    noisy signal from flapping methods:

    - {e re-plan interval}: scoring runs every [replan_interval]-th
      round; between scoring rounds the previous choice is kept;
    - {e hysteresis}: a scored challenger must beat the incumbent by the
      [hysteresis_margin] fraction, not merely tie it.

    Every decision (inputs, per-method predicted costs, choice) is
    recorded in memory, in [planner.*] metrics, and — via
    {!log_decision} — in a [__planner_log] table {e inside the
    warehouse}, so an operator can audit why the system extracts the way
    it does.  {!Pipeline} drives all of this when created in [`Planned]
    mode. *)

module Db = Dw_engine.Db
module Warehouse = Dw_warehouse.Warehouse
module Metrics = Dw_util.Metrics

type method_ =
  | Timestamp
  | Snapshot
  | Trigger
  | Log
  | Op_delta
      (** The five extraction methods of the paper's Section 3/4, as the
          planner ranks them.  ({!Pipeline.method_} carries per-method
          configuration; this type is the pure choice.) *)

val method_name : method_ -> string
(** Short stable label ("timestamp", "snapshot", "trigger", "log",
    "op-delta") used in reports, metrics and the [__planner_log]. *)

val all_methods : method_ list
(** The five methods in a fixed order (cost reports are keyed on it). *)

type observed = {
  table_rows : int;  (** current cardinality of the maintained table *)
  rows : float;  (** changed rows per round (the delta rate) *)
  stmts : float;  (** DML statements per round *)
  insert_rows : float;  (** rows inserted per round *)
  update_rows : float;  (** rows updated per round *)
  delete_rows : float;  (** rows deleted per round *)
  log_records : float;  (** retained log records written per round *)
  lock_wait_p95_s : float;  (** source [lock.wait] p95 (contention) *)
  ship_p95_s : float;  (** transport/queue latency p95 per message *)
  log_available : bool;  (** archive logging on at the source? *)
}
(** One round's worth of observed source statistics — what {!plan}
    scores the methods against.  [`Planned] pipelines maintain these as
    exponentially-weighted averages of per-round actuals. *)

type coeffs = {
  image_bytes : float;  (** wire bytes per shipped row image *)
  stmt_bytes : float;  (** wire bytes per shipped statement *)
  update_images : float;  (** delta-table images per updated row (~2) *)
  log_records_per_row : float;  (** retained log records per changed row *)
  ts_scan_per_row : float;  (** rows visited per table row, timestamp scan *)
  snap_scan_per_row : float;  (** rows visited per table row, snapshot round *)
  row_unit : float;  (** integration row ops per changed row *)
}
(** The calibrated per-method model coefficients (micro-probe output). *)

type config = {
  replan_interval : int;  (** rounds between scoring runs (>= 1) *)
  hysteresis_margin : float;
      (** a challenger must cost less than [(1 - margin)] of the
          incumbent to displace it (in [0, 1)) *)
  probe_rows : int;  (** micro-probe table size (>= 8) *)
  probe_txns : int;  (** micro-probe transactions per method (>= 3) *)
  byte_unit : float;  (** work units per wire byte (> 0) *)
  contention_weight : float;
      (** units charged per captured image per second of lock-wait p95
          (penalises in-transaction trigger capture under contention) *)
  ship_latency_weight : float;
      (** units charged per shipped image-equivalent per second of
          transport p95 (amplifies wire-volume differences when the
          queue is slow) *)
}
(** Planner knobs; see OPERATIONS.md for symptoms and defaults. *)

val default_config : config
(** [{ replan_interval = 1; hysteresis_margin = 0.2; probe_rows = 48;
      probe_txns = 9; byte_unit = 0.01; contention_weight = 50.0;
      ship_latency_weight = 10.0 }]. *)

val validate_config : config -> unit
(** Raises [Invalid_argument] on out-of-range knobs (interval < 1,
    margin outside [0, 1), non-positive probe sizes or byte unit,
    negative weights, NaN anywhere). *)

type decision = {
  round : int;  (** the refresh round this decision governs *)
  chosen : method_;
  previous : method_ option;  (** incumbent before this decision *)
  switched : bool;  (** [chosen <> previous] *)
  scored : bool;
      (** false when the re-plan interval kept the incumbent without
          scoring (costs are then the last scored ones) *)
  costs : (method_ * float) list;
      (** predicted cost per method, [infinity] for ineligible ones *)
  inputs : observed;  (** the statistics the decision saw *)
  reason : string;  (** human-readable audit line *)
}
(** One planning decision, exactly what lands in the [__planner_log]. *)

type t
(** A planner instance: config + calibrated coefficients + incumbent
    method + decision history.  Not domain-safe; one per pipeline. *)

val create : ?config:config -> ?metrics:Metrics.t -> unit -> t
(** A planner with no incumbent.  [metrics] receives the [planner.*]
    counters/gauges (default: a private registry).  Raises
    [Invalid_argument] via {!validate_config} on a bad config. *)

val config : t -> config
(** The knobs this planner runs with. *)

val calibrate : t -> unit
(** Run the micro-probes and install the coefficients.  Idempotent per
    process: the probe results are memoised for the session (they
    measure the engine, not the workload), so only the first planner
    pays the probe cost; {!plan} calls this lazily if needed.  Counts
    [planner.calibrations] when the probes actually ran. *)

val calibrated : t -> bool
(** Whether coefficients are installed (own probe run or session memo). *)

val coeffs : t -> coeffs option
(** The installed coefficients, [None] before calibration. *)

val predict : t -> observed -> (method_ * float) list
(** Score every method against [observed] without planning: predicted
    cost in work units, [infinity] for ineligible methods, in
    {!all_methods} order.  Calibrates lazily.  Pure given the
    coefficients — the monotonicity property tests drive this. *)

val plan : t -> round:int -> observed -> decision
(** Make the decision for [round]: score (or keep, per the re-plan
    interval), apply hysteresis, update the incumbent, record the
    decision and the [planner.plans]/[planner.switches]/[planner.kept]
    counters and [planner.cost_*] gauges.  Rounds must be presented in
    increasing order. *)

val force : t -> round:int -> method_ -> unit
(** Install [method_] as the incumbent without scoring (recorded as a
    non-scored decision) — the [`Planned] pipeline uses it when a
    correctness fallback overrides the planned choice mid-round. *)

val current : t -> method_ option
(** The incumbent method, [None] before the first {!plan}. *)

val decisions : t -> decision list
(** Every decision so far, oldest first. *)

val switches : t -> int
(** How many decisions changed the incumbent (the flap metric the
    hysteresis property tests bound). *)

val log_table : string
(** ["__planner_log"] — the warehouse-resident audit table. *)

val log_decision : Warehouse.t -> table:string -> decision -> unit
(** Append [decision] to the [__planner_log] table of this warehouse
    (created on first use), keyed by ([table], round): source table,
    round, chosen method, switched/scored flags, the five predicted
    costs, the headline inputs and the reason line, committed as one
    warehouse transaction. *)

type log_row = {
  lr_table : string;  (** source table the decision was for *)
  lr_round : int;
  lr_chosen : string;  (** {!method_name} of the choice *)
  lr_switched : bool;
  lr_scored : bool;
  lr_costs : (string * float) list;  (** method name -> predicted cost *)
  lr_rows : float;  (** observed delta rate the decision saw *)
  lr_table_rows : int;
  lr_reason : string;
}
(** One decoded [__planner_log] row. *)

val read_log : Warehouse.t -> table:string -> log_row list
(** Decode the audit rows for [table], in round order ([] when the log
    table does not exist yet). *)
