module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Value = Dw_relation.Value
module Expr = Dw_relation.Expr
module Ast = Dw_sql.Ast
module Heap_file = Dw_storage.Heap_file
module Version_store = Dw_txn.Version_store
module Domain_pool = Dw_util.Domain_pool
module Db = Dw_engine.Db
module Table = Dw_engine.Table

let default_partitions = 8

module RowMap = Map.Make (struct
  type t = Value.t array

  let compare a b = Tuple.compare a b
end)

(* Per-(group, select-item) partial aggregate state, computed by one
   partition's worker over its own rows and merged by the coordinator in
   the sequential evaluation order.  [P_vals] keeps the non-null operand
   values as an ordered list because SUM/AVG fold with [Value.add], and
   float addition is not associative: the merged list must be folded once,
   in the exact order the single-domain executor would have used. *)
type item_partial =
  | P_none  (* Item / invalid combinations: resolved or raised at finalize *)
  | P_count of int
  | P_vals of Value.t list
  | P_extreme of Value.t option

type group_partial = {
  p_rep : Tuple.t option;  (* head row in sequential group order *)
  p_aggs : item_partial list;  (* one per select item *)
}

type worker_result =
  | R_rows of Tuple.t list  (* non-aggregate: matched rows, rid-ascending *)
  | R_groups of group_partial RowMap.t

let check_columns schema expr =
  List.iter
    (fun col ->
      if not (Schema.mem schema col) then
        invalid_arg (Printf.sprintf "unknown column %s" col))
    (Expr.columns expr)

(* contiguous page ranges covering [0, pages), sizes differing by <= 1 *)
let ranges ~pages ~parts =
  let base = pages / parts and rem = pages mod parts in
  let rec go i start acc =
    if i = parts then List.rev acc
    else
      let len = base + if i < rem then 1 else 0 in
      go (i + 1) (start + len) ((start, start + len) :: acc)
  in
  go 0 0 []

(* One partition's share of the snapshot scan: the heap pass over its page
   range, then the version-chain pass restricted to rids in that range.
   Rows in pages appended after planning are provably invisible at the
   snapshot CSN (pages only grow, and DML notes its version entry before
   touching the heap), so skipping them loses nothing. *)
let scan_partition ~vstore ~heap ~tname ~schema ~where ~csn ~from_page ~to_page =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let keep tuple = match where with None -> true | Some e -> Expr.eval_pred schema tuple e in
  let consider rid current =
    if not (Hashtbl.mem seen rid) then begin
      Hashtbl.add seen rid ();
      let visible =
        match Version_store.resolve vstore ~table:tname ~rid ~csn with
        | `Current -> current
        | `Image tuple -> Some tuple
        | `Absent -> None
      in
      match visible with
      | Some tuple when keep tuple -> acc := (rid, tuple) :: !acc
      | Some _ | None -> ()
    end
  in
  Heap_file.iter_pages heap ~from_page ~to_page (fun rid tuple -> consider rid (Some tuple));
  Version_store.iter_table vstore ~table:tname (fun rid ->
      if
        rid.Heap_file.page >= from_page
        && rid.Heap_file.page < to_page
        && not (Hashtbl.mem seen rid)
      then consider rid (Heap_file.get_opt heap rid));
  List.sort (fun (a, _) (b, _) -> Heap_file.rid_compare a b) !acc

(* partial aggregates over one partition's group rows, rows already in
   sequential per-group order (ascending rid for the global group,
   descending rid for GROUP BY groups — matching Db.exec_aggregate) *)
let item_partials schema items rows =
  List.map
    (fun item ->
      match item with
      | Ast.Agg (Ast.Count_star, _, _) -> P_count (List.length rows)
      | Ast.Agg (fn, Some e, _) -> (
          let vals =
            List.filter_map
              (fun row ->
                let v = Expr.eval schema row e in
                if Value.is_null v then None else Some v)
              rows
          in
          match fn with
          | Ast.Count_star -> assert false
          | Ast.Count -> P_count (List.length vals)
          | Ast.Sum | Ast.Avg -> P_vals vals
          | Ast.Min -> (
              match vals with
              | [] -> P_extreme None
              | v :: vs ->
                P_extreme
                  (Some (List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) v vs)))
          | Ast.Max -> (
              match vals with
              | [] -> P_extreme None
              | v :: vs ->
                P_extreme
                  (Some (List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) v vs))))
      | Ast.Agg (_, None, _) | Ast.Star | Ast.Item _ -> P_none)
    items

(* [a] comes earlier than [b] in the sequential evaluation order.  A later
   extreme replaces the accumulator only when strictly better — exactly the
   element-wise fold rule, so ties keep the earlier representative (and its
   exact Value payload, which matters when Int and Float compare equal). *)
let merge_item item a b =
  match (item, a, b) with
  | _, P_none, P_none -> P_none
  | _, P_count m, P_count n -> P_count (m + n)
  | _, P_vals xs, P_vals ys -> P_vals (xs @ ys)
  | Ast.Agg (Ast.Min, _, _), P_extreme x, P_extreme y -> (
      match (x, y) with
      | None, v | v, None -> P_extreme v
      | Some xv, Some yv -> P_extreme (if Value.compare yv xv < 0 then Some yv else Some xv))
  | Ast.Agg (Ast.Max, _, _), P_extreme x, P_extreme y -> (
      match (x, y) with
      | None, v | v, None -> P_extreme v
      | Some xv, Some yv -> P_extreme (if Value.compare yv xv > 0 then Some yv else Some xv))
  | _, _, _ -> assert false (* partial shapes are determined by the item *)

let merge_group items a b =
  {
    p_rep = (match a.p_rep with Some _ -> a.p_rep | None -> b.p_rep);
    p_aggs = List.map2 (fun item (x, y) -> merge_item item x y) items (List.combine a.p_aggs b.p_aggs);
  }

let output_names items =
  List.mapi
    (fun i item ->
      match item with
      | Ast.Star -> invalid_arg "SELECT: * not allowed with aggregates/GROUP BY"
      | Ast.Item (_, Some alias) | Ast.Agg (_, _, Some alias) -> alias
      | Ast.Item (Expr.Col c, None) -> c
      | Ast.Item (_, None) | Ast.Agg (_, _, None) -> Printf.sprintf "col%d" i)
    items

let order_rows_by ~names ~order_by rows =
  if order_by = [] then rows
  else begin
    let idx_of name =
      match List.find_index (fun n -> n = name) names with
      | Some i -> i
      | None -> invalid_arg (Printf.sprintf "ORDER BY: unknown output column %s" name)
    in
    let idxs = List.map idx_of order_by in
    List.sort
      (fun (a : Value.t array) b ->
        let rec go = function
          | [] -> 0
          | i :: rest ->
            let c = Value.compare a.(i) b.(i) in
            if c <> 0 then c else go rest
        in
        go idxs)
      rows
  end

let finalize_group schema group_by items p =
  List.map2
    (fun item partial ->
      match (item, partial) with
      | Ast.Star, _ -> assert false (* output_names raised already *)
      | Ast.Agg (Ast.Count_star, _, _), P_count n -> Value.Int n
      | Ast.Agg (fn, Some _, _), partial -> (
          match (fn, partial) with
          | Ast.Count, P_count n -> Value.Int n
          | Ast.Sum, P_vals vs -> List.fold_left Value.add (Value.Int 0) vs
          | Ast.Avg, P_vals vs -> (
              match vs with
              | [] -> Value.Null
              | vs ->
                let total = List.fold_left Value.add (Value.Int 0) vs in
                Value.div
                  (match total with Value.Int n -> Value.Float (float_of_int n) | v -> v)
                  (Value.Float (float_of_int (List.length vs))))
          | (Ast.Min | Ast.Max), P_extreme e -> (
              match e with None -> Value.Null | Some v -> v)
          | _, _ -> assert false)
      | Ast.Agg (_, None, _), _ -> invalid_arg "aggregate without argument"
      | Ast.Item (Expr.Col c, _), _ when List.mem c group_by -> (
          match p.p_rep with
          | Some row -> row.(Schema.index_of schema c)
          | None -> Value.Null)
      | Ast.Item _, _ ->
        invalid_arg "SELECT with GROUP BY: non-aggregate items must be grouping columns")
    items p.p_aggs
  |> Array.of_list

let exec ?(partitions = default_partitions) ~pool db txn stmt =
  if partitions < 1 then invalid_arg "Par_scan.exec: partitions must be >= 1";
  match stmt with
  | Ast.Select { items; table = tname; where; group_by; order_by } ->
    if Db.txn_mode txn <> `Snapshot then
      invalid_arg "Par_scan.exec: requires a `Snapshot transaction";
    let tbl = Db.table db tname in
    let schema = Table.schema tbl in
    (match where with Some e -> check_columns schema e | None -> ());
    let has_agg =
      List.exists (function Ast.Agg _ -> true | Ast.Star | Ast.Item _ -> false) items
    in
    let aggregate = has_agg || group_by <> [] in
    (* validate GROUP BY / item shapes before fanning out, so workers can
       group as they scan; the exceptions match Db.exec_aggregate's *)
    let group_idxs =
      if aggregate then begin
        List.iter
          (fun col ->
            if not (Schema.mem schema col) then
              invalid_arg (Printf.sprintf "GROUP BY: unknown column %s" col))
          group_by;
        List.map (Schema.index_of schema) group_by
      end
      else []
    in
    let names = if aggregate then output_names items else [] in
    let csn = Db.snapshot_csn txn in
    let vstore = Db.version_store db in
    let heap = Table.heap tbl in
    let pages = Heap_file.page_count heap in
    let worker (from_page, to_page) () =
      let matched =
        scan_partition ~vstore ~heap ~tname ~schema ~where ~csn ~from_page ~to_page
      in
      let rows_asc = List.map snd matched in
      if not aggregate then R_rows rows_asc
      else begin
        let groups =
          if group_by = [] then
            (* single global group over ascending rows, present even when
               empty — mirrors RowMap.singleton in the sequential path *)
            RowMap.singleton [||] rows_asc
          else
            List.fold_left
              (fun acc tuple ->
                let key = Array.of_list (List.map (fun i -> tuple.(i)) group_idxs) in
                RowMap.update key
                  (function None -> Some [ tuple ] | Some l -> Some (tuple :: l))
                  acc)
              RowMap.empty rows_asc
        in
        R_groups
          (RowMap.map
             (fun rows ->
               {
                 p_rep = (match rows with row :: _ -> Some row | [] -> None);
                 p_aggs = item_partials schema items rows;
               })
             groups)
      end
    in
    let results =
      Domain_pool.run_all pool (List.map worker (ranges ~pages ~parts:partitions))
    in
    if not aggregate then begin
      let tuples =
        List.concat_map (function R_rows rows -> rows | R_groups _ -> assert false) results
      in
      let tuples =
        if order_by = [] then tuples
        else
          let idxs = List.map (Schema.index_of schema) order_by in
          List.sort
            (fun (a : Tuple.t) b ->
              let rec go = function
                | [] -> 0
                | i :: rest ->
                  let c = Value.compare a.(i) b.(i) in
                  if c <> 0 then c else go rest
              in
              go idxs)
            tuples
      in
      let columns, project =
        match items with
        | [ Ast.Star ] ->
          ( List.map (fun c -> c.Schema.name) (Schema.columns schema),
            fun (tuple : Tuple.t) -> Array.copy tuple )
        | items ->
          let names =
            List.mapi
              (fun i item ->
                match item with
                | Ast.Star -> "*"
                | Ast.Item (_, Some alias) | Ast.Agg (_, _, Some alias) -> alias
                | Ast.Item (Expr.Col c, None) -> c
                | Ast.Item (_, None) | Ast.Agg (_, _, None) -> Printf.sprintf "col%d" i)
              items
          in
          let eval_item tuple item =
            match item with
            | Ast.Star -> invalid_arg "SELECT: * must be the only item"
            | Ast.Agg _ -> assert false
            | Ast.Item (e, _) -> Expr.eval schema tuple e
          in
          (names, fun tuple -> Array.of_list (List.map (eval_item tuple) items))
      in
      Db.Rows { columns; rows = List.map project tuples }
    end
    else begin
      (* merge partition partials in the sequential evaluation order: the
         global group accumulates rows ascending (partition 0 first); GROUP
         BY groups accumulate by prepending, so the highest partition's
         rows come first *)
      let part_maps =
        List.map (function R_groups m -> m | R_rows _ -> assert false) results
      in
      let ordered = if group_by = [] then part_maps else List.rev part_maps in
      let merged =
        List.fold_left
          (fun acc pmap ->
            RowMap.fold
              (fun key p acc ->
                RowMap.update key
                  (function None -> Some p | Some prev -> Some (merge_group items prev p))
                  acc)
              pmap acc)
          RowMap.empty ordered
      in
      let out_rows =
        RowMap.fold (fun _key p acc -> finalize_group schema group_by items p :: acc) merged []
      in
      let out_rows = List.rev out_rows in
      let out_rows = order_rows_by ~names ~order_by out_rows in
      Db.Rows { columns = names; rows = out_rows }
    end
  | Ast.Create_table _ | Ast.Insert _ | Ast.Update _ | Ast.Delete _ ->
    invalid_arg "Par_scan: only SELECT statements are supported"

let exec_sql ?partitions ~pool db txn input =
  match Dw_sql.Parser.parse input with
  | Error e -> Error e
  | Ok stmt -> (
      match exec ?partitions ~pool db txn stmt with
      | result -> Ok result
      | exception Invalid_argument msg -> Error msg
      | exception Not_found -> Error (Printf.sprintf "unknown table %s" (Ast.table_of stmt)))
