module Metrics = Dw_util.Metrics

(* Frames live in a fixed array; replacement order is an intrusive doubly
   linked LRU list over frame indices (head = most recent, tail = victim),
   so a miss picks its victim in O(1) instead of scanning every frame.
   Invariant: a frame is on the LRU list iff [valid], on the free list
   otherwise. *)

type frame = {
  mutable key : string * int;  (* file name, page number *)
  data : bytes;
  mutable dirty : bool;
  mutable valid : bool;
  mutable file : Vfs.file option;
  mutable prev : int;  (* towards MRU; -1 = none *)
  mutable next : int;  (* towards LRU; -1 = none *)
}

type t = {
  vfs : Vfs.t;
  frames : frame array;
  table : (string * int, int) Hashtbl.t;  (* key -> frame index *)
  mutable mru : int;   (* -1 when the list is empty *)
  mutable lru : int;
  mutable free : int list;  (* invalid frames *)
}

let create ~vfs ~capacity =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity < 1";
  {
    vfs;
    frames =
      Array.init capacity (fun _ ->
          { key = ("", -1); data = Bytes.create Page.size; dirty = false; valid = false;
            file = None; prev = -1; next = -1 });
    table = Hashtbl.create (capacity * 2);
    mru = -1;
    lru = -1;
    free = List.init capacity Fun.id;
  }

let vfs t = t.vfs

let page_count _t file = Vfs.size file / Page.size

let metrics t = Vfs.metrics t.vfs

(* ---- LRU list primitives ---- *)

let unlink t i =
  let f = t.frames.(i) in
  (match f.prev with -1 -> t.mru <- f.next | p -> t.frames.(p).next <- f.next);
  (match f.next with -1 -> t.lru <- f.prev | n -> t.frames.(n).prev <- f.prev);
  f.prev <- -1;
  f.next <- -1

let push_mru t i =
  let f = t.frames.(i) in
  f.prev <- -1;
  f.next <- t.mru;
  (match t.mru with -1 -> () | m -> t.frames.(m).prev <- i);
  t.mru <- i;
  if t.lru = -1 then t.lru <- i

let touch t i =
  if t.mru <> i then begin
    unlink t i;
    push_mru t i
  end

let write_back t frame =
  match frame.file with
  | Some file when frame.dirty ->
    let _, pno = frame.key in
    Vfs.write_at file ~off:(pno * Page.size) frame.data;
    frame.dirty <- false;
    Metrics.incr (metrics t) "pool.writebacks"
  | Some _ | None -> ()

(* an invalid frame if one exists, otherwise the least recently used *)
let victim t =
  match t.free with
  | i :: rest ->
    t.free <- rest;
    i
  | [] -> t.lru

let load t file pno =
  let key = (Vfs.name file, pno) in
  match Hashtbl.find_opt t.table key with
  | Some idx ->
    Metrics.incr (metrics t) "pool.hits";
    touch t idx;
    t.frames.(idx)
  | None ->
    Metrics.incr (metrics t) "pool.misses";
    Metrics.time (metrics t) "pool.miss" (fun () ->
        let idx = victim t in
        let frame = t.frames.(idx) in
        if frame.valid then begin
          write_back t frame;
          Hashtbl.remove t.table frame.key;
          Metrics.incr (metrics t) "pool.evictions";
          unlink t idx
        end;
        let data = Vfs.read_at file ~off:(pno * Page.size) ~len:Page.size in
        Bytes.blit data 0 frame.data 0 Page.size;
        frame.key <- key;
        frame.valid <- true;
        frame.dirty <- false;
        frame.file <- Some file;
        Hashtbl.replace t.table key idx;
        push_mru t idx;
        frame)

let with_page t file pno ~dirty f =
  if pno < 0 || pno >= page_count t file then
    invalid_arg
      (Printf.sprintf "Buffer_pool.with_page: page %d outside file %s (%d pages)" pno
         (Vfs.name file) (page_count t file));
  let frame = load t file pno in
  if dirty then frame.dirty <- true;
  f frame.data

let append_page t file init =
  let pno = page_count t file in
  (* materialise the page on disk so page_count stays consistent *)
  Vfs.write_at file ~off:(pno * Page.size) (Bytes.make Page.size '\000');
  let frame = load t file pno in
  frame.dirty <- true;
  init frame.data;
  pno

let flush_file t file =
  let fname = Vfs.name file in
  Array.iter
    (fun frame ->
      if frame.valid && fst frame.key = fname then write_back t frame)
    t.frames

let flush_all t = Array.iter (fun frame -> if frame.valid then write_back t frame) t.frames

let invalidate_file t file =
  let fname = Vfs.name file in
  Array.iteri
    (fun i frame ->
      if frame.valid && fst frame.key = fname then begin
        Hashtbl.remove t.table frame.key;
        frame.valid <- false;
        frame.dirty <- false;
        frame.file <- None;
        unlink t i;
        t.free <- i :: t.free
      end)
    t.frames
