test/test_txn.ml: Alcotest Bytes Char Dw_relation Dw_storage Dw_txn List Result
