(** OLAP query workload over the warehouse.

    The DSS side of the paper's architecture: a set of analyst queries
    (filters, GROUP BY aggregates) run against replicas and view backing
    tables through the SQL layer.  Used by examples and by availability
    experiments to put concrete read work next to the integrators. *)

type query = {
  name : string;
  sql : string;
}

val standard_queries : table:string -> query list
(** A canned analyst mix over a PARTS-shaped replica: row count, stock
    value, per-quantity histogram, price extremes of low-stock parts,
    and a band filter. *)

type query_result = {
  query : string;
  rows : int;          (** result rows *)
  duration : float;    (** wall-clock seconds *)
}

val run : Warehouse.t -> query -> (query_result, string) result
(** Each query runs in its own read-only transaction. *)

val run_all : Warehouse.t -> query list -> (query_result list, string) result
(** Stops at the first failing query. *)
