(** The source-system DBMS: transactions (2PL + WAL), DML, row-level
    triggers, timestamp-column maintenance, SQL execution, checkpointing
    and crash recovery.

    One [Db.t] models one operational database in the paper's reference
    architecture.  Everything the delta-extraction methods need is here:

    - a {b timestamp column} per table (maintained on insert/update) for
      the timestamp-based method;
    - {b row-level AFTER triggers} running inside the user transaction for
      the trigger-based method;
    - a {b redo log with archive mode} for the log-based method;
    - plain scans/dumps for the differential-snapshot method. *)

module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Value = Dw_relation.Value
module Expr = Dw_relation.Expr
module Heap_file = Dw_storage.Heap_file

type t
type txn

exception Would_block of { tx : int; blockers : int list }
exception Deadlock_abort of { tx : int; blockers : int list }
(** Raised by DML when 2PL cannot grant a lock.  In single-user flows
    (all of Section 3/4 source-side experiments) they never occur; the
    warehouse scheduler manages locks itself and does not use these. *)

val create :
  ?pool_pages:int ->  (* buffer-pool frames, default 256 *)
  ?pool_stripes:int ->  (* buffer-pool lock stripes, default 1 *)
  ?archive_log:bool ->  (* the paper's "archiving turned on", default false *)
  vfs:Dw_storage.Vfs.t ->
  name:string ->
  unit ->
  t

val name : t -> string
val vfs : t -> Dw_storage.Vfs.t

(** {2 Plan mode} — how statement-level DML/SELECT resolve their WHERE
    clause.  [`Scan_only] (default) always scans, which is the behaviour
    of the paper's source DBMS ("each update transaction performs a table
    scan").  [`Index_preferred] uses the primary-key index whenever the
    predicate implies bounds on the leading key column — the warehouse
    runs in this mode. *)

val plan_mode : t -> [ `Scan_only | `Index_preferred ]
val set_plan_mode : t -> [ `Scan_only | `Index_preferred ] -> unit

(** {2 Commit durability} — [`Every_commit] (default) fsyncs the log at
    each commit.  [`Group n] is group commit with a size-only bound: the
    leader holds the group open until [n] commits are pending, then one
    fsync covers them all.  [`Group_policy p] exposes the full
    {!Dw_txn.Group_commit.policy} object: a [max_group] size bound {e and}
    a [max_wait_s] deadline on the registry clock (deterministic under
    {!Dw_util.Sim_clock}), re-checked at every commit and statement
    boundary.  Both group modes trade a bounded durability window for
    throughput; the amortization shows up in the [wal.fsync] /
    [wal.group_size] histograms.  Aborts and checkpoints always flush
    (covering any open group).  Wall-clock impact is only observable on
    the on-disk Vfs backend. *)

val sync_mode : t -> [ `Every_commit | `Group of int | `Group_policy of Dw_txn.Group_commit.policy ]

val set_sync_mode :
  t -> [ `Every_commit | `Group of int | `Group_policy of Dw_txn.Group_commit.policy ] -> unit
(** Flushes any open group before switching, so commits acknowledged
    under the old policy never wait on the new one.  Raises
    [Invalid_argument] on [`Group n] with [n < 1] or an invalid policy. *)

val sync : t -> unit
(** Durability barrier: flush the open commit group, if any.  No-op under
    [`Every_commit]. *)

val pending_group_commits : t -> int
(** Commits acknowledged but not yet covered by an fsync (0 under
    [`Every_commit]). *)

val metrics : t -> Dw_util.Metrics.t
val wal : t -> Dw_txn.Wal.t
val locks : t -> Dw_txn.Lock_manager.t
val pool : t -> Dw_storage.Buffer_pool.t

(** {2 Logical date} — drives timestamp columns ("last_modified"). *)

val current_day : t -> int
val set_day : t -> int -> unit
val advance_day : t -> unit

(** {2 Schema} *)

val create_table :
  t -> name:string -> ?ts_column:string -> Schema.t -> Table.t
val table : t -> string -> Table.t
(** Raises [Not_found]. *)

val table_opt : t -> string -> Table.t option
val tables : t -> Table.t list
val drop_table : t -> string -> unit

(** {2 Transactions}

    Two modes.  [`Read_write] (default) is classic 2PL: locks, WAL
    logging, undo on abort.  [`Snapshot] is a read-only transaction that
    takes {e no} locks at all — its reads resolve against the version
    store ({!Dw_txn.Version_store}) at the commit sequence number (CSN)
    current when it began, so it sees a transaction-consistent frozen
    state and is never blocked by (and never blocks) writers.  Snapshot
    transactions log nothing; DML through one raises
    [Invalid_argument]. *)

val begin_txn : ?mode:[ `Read_write | `Snapshot ] -> t -> txn
val txid : txn -> int
val txn_mode : txn -> [ `Read_write | `Snapshot ]

val snapshot_csn : txn -> int
(** The CSN this transaction reads at (for [`Read_write] transactions,
    merely the CSN current at begin). *)

val last_csn : t -> int
(** CSN of the newest committed transaction (0 before any commit).
    Assigned in WAL commit-record order; group commit defers only the
    fsync, not CSN assignment or in-process visibility. *)

val version_store : t -> Dw_txn.Version_store.t
(** The before-image version store backing snapshot reads.  Exposed for
    observability (entry counts, GC behaviour in tests). *)

val commit : t -> txn -> unit
(** Writes the commit record and flushes the log (durability point),
    assigns the CSN and publishes the transaction's before-images
    atomically.  For [`Snapshot] transactions: just ends the
    transaction (possibly unpinning versions for GC). *)

val abort : t -> txn -> unit
(** Rolls back all of the transaction's changes. *)

val with_txn : t -> (txn -> 'a) -> 'a
(** Commit on return, abort on exception (re-raised). *)

val active_txns : t -> int list

(** {2 DML} — each call acquires statement locks, logs images, maintains
    the timestamp column, and fires AFTER triggers per affected row. *)

val insert : t -> txn -> string -> Tuple.t -> Heap_file.rid
val insert_values : t -> txn -> string -> columns:string list option -> Value.t list -> Heap_file.rid
(** Build the tuple in schema order, [Null] for unnamed columns. *)

val update_where : t -> txn -> string -> set:(string * Expr.t) list -> where:Expr.t option -> int
(** Returns number of rows updated.  SET right-hand sides are evaluated
    against the before image. *)

val delete_where : t -> txn -> string -> where:Expr.t option -> int

val select : t -> txn -> string -> ?where:Expr.t -> unit -> Tuple.t list
(** Full tuples of matching rows.  [`Read_write]: shared table lock.
    [`Snapshot]: no lock; rows as of the transaction's snapshot CSN. *)

(** {2 Row-level DML} — key/rid addressed, row-granularity locks.  Used by
    the warehouse integrators so that short maintenance transactions can
    interleave with readers.  Same logging / trigger / undo behaviour as
    the statement-level DML. *)

val find_by_key : t -> txn -> string -> Tuple.t -> (Heap_file.rid * Tuple.t) option
(** Primary-key lookup (shared row lock on hit; lock-free snapshot
    resolution in [`Snapshot] mode). *)

val insert_row : t -> txn -> string -> Tuple.t -> Heap_file.rid
(** Like {!insert} but takes only a row lock on the new rid, not a table
    lock. *)

val update_rid : t -> txn -> string -> Heap_file.rid -> Tuple.t -> unit
val delete_rid : t -> txn -> string -> Heap_file.rid -> unit

(** {2 Cooperative scheduling hooks} — used by {!Scheduler} to interleave
    logical sessions over the single-threaded engine.  [yield_hook] is
    invoked at every statement boundary; [block_hook] is invoked instead
    of raising {!Would_block} when a lock conflicts, and the acquisition
    is retried after it returns.  Not set = the default raising
    behaviour. *)

val set_yield_hook : t -> (unit -> unit) option -> unit
val set_block_hook : t -> (txid:int -> blockers:int list -> unit) option -> unit

(** {2 Triggers} *)

type trigger_ctx = { ctx_db : t; ctx_txn : txn }

val add_trigger : t -> table:string -> trigger_ctx Trigger.t -> unit
val remove_trigger : t -> table:string -> string -> unit
val triggers_on : t -> string -> string list

(** {2 SQL} *)

type exec_result =
  | Rows of { columns : string list; rows : Value.t array list }
  | Affected of int
  | Created

val exec : t -> txn -> Dw_sql.Ast.stmt -> exec_result
val exec_sql : t -> txn -> string -> (exec_result, string) result
(** Parse then {!exec}. *)

(** {2 Maintenance} *)

val checkpoint : t -> unit
(** Flush dirty pages, checkpoint (and rotate) the log. *)

val recover : t -> Dw_txn.Recovery.stats
(** Replay the retained log into the current heap files (used by tests
    that simulate a crash by discarding in-memory state). Rebuilds
    indexes. *)

val reopen :
  ?pool_pages:int ->
  ?pool_stripes:int ->
  ?archive_log:bool ->
  vfs:Dw_storage.Vfs.t ->
  name:string ->
  tables:(string * Schema.t * string option) list ->
  unit ->
  t * Dw_txn.Recovery.stats
(** Post-crash restart from the bytes surviving in [vfs] (pair with
    {!Dw_storage.Vfs.crash_reset}): adopts the WAL segments (truncating
    torn tails), re-attaches each listed table's heap file
    ([(table name, schema, ts_column)] — the catalog is not persisted, so
    the caller supplies it), runs {!recover}, and resumes transaction ids
    above everything in the log.  Heap files that never got created before
    the crash start empty. *)

val flush_all : t -> unit
