lib/etl/pipeline.ml: Dw_core Dw_engine Dw_storage Dw_transport Dw_txn Dw_warehouse List Option Printf String Unix
