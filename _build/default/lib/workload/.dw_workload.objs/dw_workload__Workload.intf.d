lib/workload/workload.mli: Dw_engine Dw_relation Dw_sql Dw_util
