lib/core/reconcile.mli: Delta
