lib/core/agg_view.mli: Dw_relation
