module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Wal = Dw_txn.Wal
module Vfs = Dw_storage.Vfs
module Warehouse = Dw_warehouse.Warehouse
module Delta = Dw_core.Delta
module Op_delta = Dw_core.Op_delta
module Transform = Dw_core.Transform
module Watermark = Dw_core.Watermark
module Timestamp_extract = Dw_core.Timestamp_extract
module Trigger_extract = Dw_core.Trigger_extract
module Log_extract = Dw_core.Log_extract
module Snapshot_extract = Dw_core.Snapshot_extract
module Opdelta_capture = Dw_core.Opdelta_capture
module Persistent_queue = Dw_transport.Persistent_queue

type method_ =
  | Timestamp
  | Trigger
  | Log
  | Snapshot of Snapshot_extract.algorithm
  | Op_delta_wrapper
  | Planned

type transport = Direct | Queued of string

type signals = { lock_wait_p95_s : float; ship_p95_s : float }

let no_signals () = { lock_wait_p95_s = 0.0; ship_p95_s = 0.0 }

type t = {
  source : Db.t;
  warehouse : Warehouse.t;
  table : string;
  dst_table : string;
  method_ : method_;
  transport : transport;
  transform : Transform.rule option;
  compact : bool;
  wm : Watermark.t;
  trigger_handle : Trigger_extract.handle option;
  cap : Opdelta_capture.t option;
  queue : Persistent_queue.t option;
  planner : Planner.t option;
  signals : unit -> signals;
  mutable op_consumed : int;
  mutable snapshot_round : int;
  mutable rounds_run : int;
  mutable ewma : Planner.observed option;
  mutable last_used : Planner.method_ option;
  mutable fallbacks : int;
}

let method_name t =
  match t.method_ with
  | Timestamp -> "timestamp"
  | Trigger -> "trigger"
  | Log -> "log"
  | Snapshot _ -> "snapshot"
  | Op_delta_wrapper -> "op-delta"
  | Planned -> "planned"

let create ?transform ?(compact = false) ?(capture_images = false) ?planner
    ?(signals = no_signals) ~source ~warehouse ~table ~method_ ~transport () =
  let dst_table =
    match transform with Some rule -> rule.Transform.dst_table | None -> table
  in
  (match Db.table_opt (Warehouse.db warehouse) dst_table with
   | Some _ -> ()
   | None ->
     invalid_arg
       (Printf.sprintf "Pipeline.create: warehouse has no replica table %s" dst_table));
  (match transform with
   | Some rule ->
     let src_schema = Table.schema (Db.table source table) in
     let dst_schema = Table.schema (Db.table (Warehouse.db warehouse) dst_table) in
     (match Transform.validate rule ~src:src_schema ~dst:dst_schema with
      | Ok () -> ()
      | Error e -> invalid_arg ("Pipeline.create: " ^ e))
   | None -> ());
  let trigger_handle =
    match method_ with
    | Trigger | Planned -> Some (Trigger_extract.install source ~table)
    | Timestamp | Log | Snapshot _ | Op_delta_wrapper -> None
  in
  let cap =
    match method_ with
    | Op_delta_wrapper | Planned ->
      Some
        (Opdelta_capture.create ~capture_images source
           ~sink:(Opdelta_capture.To_file (Printf.sprintf "pipeline.%s.oplog" table)))
    | Timestamp | Trigger | Log | Snapshot _ -> None
  in
  let planner =
    match method_ with
    | Planned -> Some (match planner with Some p -> p | None -> Planner.create ())
    | Timestamp | Trigger | Log | Snapshot _ | Op_delta_wrapper -> None
  in
  let queue =
    match transport with
    | Direct -> None
    | Queued name -> Some (Persistent_queue.open_ (Db.vfs (Warehouse.db warehouse)) ~name)
  in
  {
    source;
    warehouse;
    table;
    dst_table;
    method_;
    transport;
    transform;
    compact;
    wm = Watermark.load (Db.vfs source) ~name:(Printf.sprintf "pipeline.%s.wm" table);
    trigger_handle;
    cap;
    queue;
    planner;
    signals;
    op_consumed = 0;
    snapshot_round = 0;
    rounds_run = 0;
    ewma = None;
    last_used = None;
    fallbacks = 0;
  }

let capture t = t.cap
let planner t = t.planner
let fallbacks t = t.fallbacks

type round_stats = {
  round : int;
  extracted_changes : int;
  shipped_bytes : int;
  extract_units : float;
  method_used : string;
  integration : Warehouse.stats;
  total_seconds : float;
}

let src_schema t = Table.schema (Db.table t.source t.table)
let dst_schema t = Table.schema (Db.table (Warehouse.db t.warehouse) t.dst_table)

(* ship a payload through the transport and hand it back at the other
   side, counting wire bytes; queued transport round-trips the encoded
   form through the persistent queue (crash-safe hand-off) *)
let ship t payloads =
  match t.queue with
  | None -> (payloads, List.fold_left (fun acc p -> acc + String.length p) 0 payloads)
  | Some q ->
    (* coalesced: one fsync covers the whole batch of payloads, and the
       consumer side acks whole runs under one sidecar update *)
    Persistent_queue.enqueue_batch q payloads;
    let rec drain acc bytes =
      match Persistent_queue.peek_run q ~max:64 with
      | [] -> (List.rev acc, bytes)
      | run ->
        Persistent_queue.ack_run q (List.length run);
        let bytes =
          List.fold_left (fun acc p -> acc + String.length p) bytes run
        in
        drain (List.rev_append run acc) bytes
    in
    drain [] 0

let snap_name t round = Printf.sprintf "pipeline.%s.snap.%d" t.table round

(* run one snapshot dump+diff against the pipeline's rolling snapshot
   chain, retiring the pre-previous snapshot to bound space *)
let snapshot_step t ~algorithm =
  let prev = if t.snapshot_round = 0 then None else Some (snap_name t t.snapshot_round) in
  let dest = snap_name t (t.snapshot_round + 1) in
  match
    Snapshot_extract.extract t.source ~table:t.table ~prev_snapshot:prev ~snapshot_dest:dest
      ~algorithm
  with
  | Ok (delta, stats) ->
    if t.snapshot_round > 1 then Vfs.delete (Db.vfs t.source) (snap_name t (t.snapshot_round - 1));
    t.snapshot_round <- t.snapshot_round + 1;
    Ok (delta, stats)
  | Error e -> Error e

let extract_value_delta t =
  let mark = Watermark.get t.wm ~table:t.table in
  match t.method_ with
  | Timestamp ->
    let delta, stats =
      Timestamp_extract.extract t.source ~table:t.table ~since:mark.Watermark.day
        ~output:(Timestamp_extract.To_file (Printf.sprintf "pipeline.%s.ts.asc" t.table))
    in
    Ok
      ( delta,
        Timestamp_extract.work_units ~table_rows:stats.Timestamp_extract.scanned_rows
          ~delta_rows:stats.Timestamp_extract.rows )
  | Trigger -> (
      match t.trigger_handle with
      | Some handle ->
        let delta = Trigger_extract.collect ~drain:true t.source handle in
        Ok (delta, Trigger_extract.work_units ~images:(Delta.image_count delta))
      | None -> Error "trigger pipeline without handle")
  | Log ->
    let delta, stats =
      Log_extract.extract ~since_lsn:mark.Watermark.lsn t.source ~table:t.table ()
    in
    Ok
      ( delta,
        Log_extract.work_units ~log_records:stats.Log_extract.records_scanned
          ~delta_rows:(Delta.row_count delta) )
  | Snapshot algorithm -> (
      match snapshot_step t ~algorithm with
      | Ok (delta, stats) ->
        (* prev-snapshot re-read ≈ current dump size: the 2x factor of
           Snapshot_extract.work_units *)
        Ok
          ( delta,
            Snapshot_extract.work_units ~table_rows:stats.Snapshot_extract.dumped_rows
              ~delta_rows:(Delta.row_count delta) )
      | Error e -> Error e)
  | Op_delta_wrapper | Planned ->
    Error "op-delta/planned pipelines extract transactions, not value deltas"

let integrate_value t delta =
  (* optional compaction and transform, then wire round-trip, then batch
     integration *)
  let delta = if t.compact then Delta.compact delta else delta in
  let delta =
    match t.transform with
    | None -> delta
    | Some rule -> Transform.apply_delta rule ~src:(src_schema t) ~dst:(dst_schema t) delta
  in
  let lines = Delta.to_lines delta in
  let shipped, bytes = ship t lines in
  match Delta.of_lines ~table:t.dst_table ~schema:(dst_schema t) shipped with
  | Error e -> Error e
  | Ok received -> Ok (bytes, Warehouse.integrate_value_delta t.warehouse received)

(* drain the capture wrapper's fresh transactions since the last round *)
let drain_ops t cap =
  let all = Opdelta_capture.captured cap in
  let fresh = List.filteri (fun i _ -> i >= t.op_consumed) all in
  t.op_consumed <- List.length all;
  fresh

let integrate_ods t fresh =
    let rec transform acc = function
      | [] -> Ok (List.rev acc)
      | od :: rest -> (
          match t.transform with
          | None -> transform (od :: acc) rest
          | Some rule -> (
              match Transform.apply_op_delta rule ~src:(src_schema t) od with
              | Ok od' -> transform (od' :: acc) rest
              | Error e -> Error e))
    in
    (match transform [] fresh with
     | Error e -> Error e
     | Ok ods ->
       let wh_db = Warehouse.db t.warehouse in
       let schema_of name = Option.map Table.schema (Db.table_opt wh_db name) in
       let lines = List.map (Op_delta.encode_line ~schema_of) ods in
       let shipped, bytes = ship t lines in
       let rec decode acc = function
         | [] -> Ok (List.rev acc)
         | line :: rest -> (
             match Op_delta.decode_line ~schema_of line with
             | Ok od -> decode (od :: acc) rest
             | Error e -> Error e)
       in
       (match decode [] shipped with
        | Error e -> Error e
        | Ok received ->
          let count =
            List.fold_left (fun acc od -> acc + List.length od.Op_delta.ops) 0 received
          in
          Ok (count, bytes, Warehouse.integrate_op_deltas t.warehouse received)))

let integrate_ops t =
  match t.cap with
  | None -> Error "not an op-delta pipeline"
  | Some cap -> integrate_ods t (drain_ops t cap)

(* blend one round's actual statistics into the exponentially-weighted
   averages the planner scores against (alpha = 0.5: reactive enough to
   track a phase shift within a couple of rounds, damped enough that one
   odd round cannot flip the choice past the hysteresis margin) *)
let blend_observed prev (now : Planner.observed) : Planner.observed =
  match prev with
  | None -> now
  | Some (p : Planner.observed) ->
    let mix a b = (0.5 *. a) +. (0.5 *. b) in
    {
      now with
      rows = mix now.rows p.rows;
      stmts = mix now.stmts p.stmts;
      insert_rows = mix now.insert_rows p.insert_rows;
      update_rows = mix now.update_rows p.update_rows;
      delete_rows = mix now.delete_rows p.delete_rows;
      log_records = mix now.log_records p.log_records;
      lock_wait_p95_s = mix now.lock_wait_p95_s p.lock_wait_p95_s;
      ship_p95_s = mix now.ship_p95_s p.ship_p95_s;
    }

let observe_round t ~mark trig_delta stmt_count =
  let count kind =
    List.fold_left
      (fun acc c ->
        acc
        +
        match (kind, c) with
        | `Ins, Delta.Insert _ | `Del, Delta.Delete _ | `Upd, Delta.Update _ -> 1
        | `Upd, Delta.Upsert _ -> 1
        | _ -> 0)
      0 trig_delta.Delta.changes
  in
  let now : Planner.observed =
    {
      table_rows = Table.row_count (Db.table t.source t.table);
      rows = float_of_int (Delta.row_count trig_delta);
      stmts = float_of_int stmt_count;
      insert_rows = float_of_int (count `Ins);
      update_rows = float_of_int (count `Upd);
      delete_rows = float_of_int (count `Del);
      log_records = float_of_int (Wal.next_lsn (Db.wal t.source) - mark.Watermark.lsn);
      lock_wait_p95_s = (t.signals ()).lock_wait_p95_s;
      ship_p95_s = (t.signals ()).ship_p95_s;
      log_available = Wal.archive_enabled (Db.wal t.source);
    }
  in
  let obs = blend_observed t.ewma now in
  t.ewma <- Some obs;
  obs

(* One planned round: drain every capture channel (they are all always
   on), score the methods against the blended observations, then
   integrate through the chosen channel only — with two correctness
   overrides: timestamp extraction cannot see the deletes this round
   carried (fall back to the trigger delta), and a snapshot round whose
   baseline is stale integrates the trigger delta while dumping a fresh
   baseline for the next round (warm-up). *)
let run_planned_round t planner =
  let mark = Watermark.get t.wm ~table:t.table in
  let handle = Option.get t.trigger_handle in
  let cap = Option.get t.cap in
  let trig_delta = Trigger_extract.collect ~drain:true t.source handle in
  let fresh_ods = drain_ops t cap in
  let stmt_count =
    List.fold_left (fun acc od -> acc + List.length od.Op_delta.ops) 0 fresh_ods
  in
  let obs = observe_round t ~mark trig_delta stmt_count in
  let round = t.rounds_run + 1 in
  let decision = Planner.plan planner ~round obs in
  Planner.log_decision t.warehouse ~table:t.table decision;
  let has_deletes =
    List.exists (function Delta.Delete _ -> true | _ -> false) trig_delta.Delta.changes
  in
  let chosen =
    match decision.Planner.chosen with
    | Planner.Timestamp when has_deletes ->
      (* the planner scored on averaged delete rates; this round's actual
         delta carries deletes a timestamp scan cannot see *)
      t.fallbacks <- t.fallbacks + 1;
      Planner.force planner ~round Planner.Trigger;
      Planner.Trigger
    | c -> c
  in
  let trigger_units () = Trigger_extract.work_units ~images:(Delta.image_count trig_delta) in
  let result =
    match chosen with
    | Planner.Trigger -> (
        match integrate_value t trig_delta with
        | Error e -> Error e
        | Ok (bytes, stats) ->
          Ok (Delta.row_count trig_delta, bytes, trigger_units (), stats))
    | Planner.Op_delta -> (
        match integrate_ods t fresh_ods with
        | Error e -> Error e
        | Ok (count, bytes, stats) ->
          Ok (count, bytes, Opdelta_capture.work_units ~statements:count, stats))
    | Planner.Log -> (
        let delta, lstats =
          Log_extract.extract ~since_lsn:mark.Watermark.lsn t.source ~table:t.table ()
        in
        let units =
          Log_extract.work_units ~log_records:lstats.Log_extract.records_scanned
            ~delta_rows:(Delta.row_count delta)
        in
        match integrate_value t delta with
        | Error e -> Error e
        | Ok (bytes, stats) -> Ok (Delta.row_count delta, bytes, units, stats))
    | Planner.Timestamp -> (
        let delta, tstats =
          Timestamp_extract.extract t.source ~table:t.table ~since:mark.Watermark.day
            ~output:(Timestamp_extract.To_file (Printf.sprintf "pipeline.%s.ts.asc" t.table))
        in
        let units =
          Timestamp_extract.work_units ~table_rows:tstats.Timestamp_extract.scanned_rows
            ~delta_rows:tstats.Timestamp_extract.rows
        in
        match integrate_value t delta with
        | Error e -> Error e
        | Ok (bytes, stats) -> Ok (Delta.row_count delta, bytes, units, stats))
    | Planner.Snapshot ->
      if t.last_used = Some Planner.Snapshot then (
        match snapshot_step t ~algorithm:Snapshot_extract.Sort_merge with
        | Error e -> Error e
        | Ok (delta, sstats) -> (
            let units =
              Snapshot_extract.work_units ~table_rows:sstats.Snapshot_extract.dumped_rows
                ~delta_rows:(Delta.row_count delta)
            in
            match integrate_value t delta with
            | Error e -> Error e
            | Ok (bytes, stats) -> Ok (Delta.row_count delta, bytes, units, stats)))
      else (
        (* warm-up: the previous round used another method, so the last
           snapshot (if any) predates changes already integrated — diffing
           against it would re-apply them.  Dump a fresh baseline and
           integrate this round's trigger delta instead. *)
        match
          Snapshot_extract.extract t.source ~table:t.table ~prev_snapshot:None
            ~snapshot_dest:(snap_name t (t.snapshot_round + 1))
            ~algorithm:Snapshot_extract.Sort_merge
        with
        | Error e -> Error e
        | Ok (_, sstats) -> (
            t.snapshot_round <- t.snapshot_round + 1;
            let units =
              float_of_int sstats.Snapshot_extract.dumped_rows +. trigger_units ()
            in
            match integrate_value t trig_delta with
            | Error e -> Error e
            | Ok (bytes, stats) -> Ok (Delta.row_count trig_delta, bytes, units, stats)))
  in
  match result with
  | Error e -> Error e
  | Ok (count, bytes, units, stats) ->
    t.last_used <- Some chosen;
    Ok (count, bytes, units, Planner.method_name chosen, stats)

let run_round t =
  let start = Unix.gettimeofday () in
  let finish extracted_changes shipped_bytes extract_units method_used integration =
    t.rounds_run <- t.rounds_run + 1;
    Watermark.advance t.wm ~table:t.table
      { Watermark.day = Db.current_day t.source; lsn = Wal.next_lsn (Db.wal t.source) };
    Ok
      {
        round = t.rounds_run;
        extracted_changes;
        shipped_bytes;
        extract_units;
        method_used;
        integration;
        total_seconds = Unix.gettimeofday () -. start;
      }
  in
  match t.method_ with
  | Planned -> (
      match run_planned_round t (Option.get t.planner) with
      | Error e -> Error e
      | Ok (count, bytes, units, used, stats) -> finish count bytes units used stats)
  | Op_delta_wrapper -> (
      match integrate_ops t with
      | Error e -> Error e
      | Ok (count, bytes, stats) ->
        finish count bytes (Opdelta_capture.work_units ~statements:count) "op-delta" stats)
  | Timestamp | Trigger | Log | Snapshot _ -> (
      match extract_value_delta t with
      | Error e -> Error e
      | Ok (delta, units) -> (
          match integrate_value t delta with
          | Error e -> Error e
          | Ok (bytes, stats) ->
            finish (Delta.row_count delta) bytes units (method_name t) stats))

let rounds t = t.rounds_run

(* Online initial load through the pipeline's own capture, queue and
   watermark store: once [bootstrap] returns [complete = true], the
   pipeline watermark sits past everything the bootstrap applied and
   ordinary [run_round]s continue incremental maintenance seamlessly. *)
let bootstrap ?config ?hook t ~owner =
  let failed msg = Bootstrap.Failed ("Pipeline.bootstrap: " ^ msg) in
  match (t.method_, t.cap, t.queue, t.transform) with
  | Op_delta_wrapper, Some capture, Some queue, None ->
    if not (Opdelta_capture.captures_images capture) then
      Error (failed "pipeline was created without ~capture_images:true")
    else (
      match
        Bootstrap.start ?config ?hook ~owner ~source:t.source ~capture ~table:t.table ~queue
          ~warehouse:t.warehouse ~watermark:t.wm ()
      with
      | Error e -> Error e
      | Ok b -> (
        match Bootstrap.run b with
        | Ok p ->
          (* the steady-state consumer must not re-apply transactions the
             bootstrap already integrated *)
          t.op_consumed <- List.length (Opdelta_capture.captured capture);
          Ok p
        | Error e -> Error e))
  | Op_delta_wrapper, _, None, _ -> Error (failed "bootstrap requires queued transport")
  | Op_delta_wrapper, None, Some _, _ -> Error (failed "pipeline has no capture wrapper")
  | Op_delta_wrapper, _, _, Some _ ->
    Error (failed "bootstrap does not support transformed pipelines")
  | (Timestamp | Trigger | Log | Snapshot _ | Planned), _, _, _ ->
    Error (failed "bootstrap requires the op-delta wrapper method")
