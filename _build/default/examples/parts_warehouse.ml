(* End-to-end incremental maintenance pipeline, the reference architecture
   of the paper's Figure 1:

     source (timestamp extraction, file output)
       -> file ship to a staging area
       -> DBMS Loader into a staging table
       -> warehouse integration (value-delta upserts) with an SPJ view

     dune exec examples/parts_warehouse.exe *)

module Vfs = Dw_storage.Vfs
module Db = Dw_engine.Db
module Value = Dw_relation.Value
module Expr = Dw_relation.Expr
module Workload = Dw_workload.Workload
module Timestamp_extract = Dw_core.Timestamp_extract
module Delta = Dw_core.Delta
module Spj_view = Dw_core.Spj_view
module File_ship = Dw_transport.File_ship
module Warehouse = Dw_warehouse.Warehouse
module Prng = Dw_util.Prng

let () =
  (* --- the operational source: 2000 parts --- *)
  let src = Db.create ~vfs:(Vfs.in_memory ()) ~name:"erp" () in
  let _ = Workload.create_parts_table src in
  Workload.load_parts src ~rows:2000 ();
  let watermark = Db.current_day src in
  Printf.printf "source loaded: %d rows at day %d\n"
    (Dw_engine.Table.row_count (Db.table src "parts"))
    watermark;

  (* --- the warehouse: replica + a view of cheap parts per quantity --- *)
  let wh = Warehouse.create ~vfs:(Vfs.in_memory ()) ~name:"dw" () in
  Warehouse.add_replica wh ~table:"parts" ~schema:Workload.parts_schema;
  Warehouse.define_view wh
    (Spj_view.Select_project
       {
         name = "cheap_parts";
         table = "parts";
         schema = Workload.parts_schema;
         filter = Some (Expr.Cmp (Expr.Lt, Expr.Col "price", Expr.Lit (Value.Float 100.0)));
         project =
           [
             { Spj_view.out_name = "part_id"; from_side = Spj_view.L; from_col = "part_id" };
             { Spj_view.out_name = "price"; from_side = Spj_view.L; from_col = "price" };
           ];
       });
  (* initial full load of the warehouse replica *)
  let initial, _ =
    Timestamp_extract.extract src ~table:"parts" ~since:(-1)
      ~output:(Timestamp_extract.To_file "full.asc")
  in
  ignore (Warehouse.integrate_value_delta wh initial : Warehouse.stats);
  Printf.printf "warehouse initialised: view has %d rows\n"
    (List.length (Warehouse.view_rows wh "cheap_parts"));

  (* --- a business day happens at the source --- *)
  Db.advance_day src;
  Db.with_txn src (fun txn ->
      ignore (Db.exec src txn (Workload.update_parts_stmt ~first_id:1 ~size:150) : Db.exec_result));
  Db.with_txn src (fun txn ->
      List.iter
        (fun stmt -> ignore (Db.exec src txn stmt : Db.exec_result))
        (Workload.insert_parts_txn ~first_id:3001 ~size:50 ~day:(Db.current_day src) ()));
  print_endline "source activity: 150 updates + 50 inserts committed";

  (* --- nightly incremental maintenance --- *)
  (* 1. extract: timestamp method, file output *)
  let _delta, stats =
    Timestamp_extract.extract src ~table:"parts" ~since:watermark
      ~output:(Timestamp_extract.To_file "delta.asc")
  in
  Printf.printf "extracted %d changed rows (%d scanned, %s written)\n"
    stats.Timestamp_extract.rows stats.Timestamp_extract.scanned_rows
    (Dw_util.Fmt_util.human_bytes stats.Timestamp_extract.bytes_out);

  (* 2. transport: ship the file to the warehouse's file system *)
  (match
     File_ship.ship ~src:(Db.vfs src) ~src_name:"delta.asc" ~dst:(Db.vfs (Warehouse.db wh))
       ~dst_name:"delta.asc" ()
   with
   | Ok s -> Printf.printf "shipped %s in %d chunks\n" (Dw_util.Fmt_util.human_bytes s.File_ship.bytes) s.File_ship.chunks
   | Error e -> failwith e);

  (* 3. load into a staging table with the DBMS Loader *)
  let dw_db = Warehouse.db wh in
  let _ = Db.create_table dw_db ~name:"staging" Workload.parts_schema in
  (match Dw_engine.Ascii_util.load dw_db ~table:"staging" ~src:"delta.asc" with
   | Ok s -> Printf.printf "loader placed %d rows into staging\n" s.Dw_engine.Ascii_util.rows
   | Error e -> failwith e);

  (* 4. integrate: the timestamp method yields upserts *)
  let staged = ref [] in
  Dw_engine.Table.scan (Db.table dw_db "staging") (fun _ t -> staged := t :: !staged);
  let upserts =
    Delta.make ~table:"parts" ~schema:Workload.parts_schema
      (List.rev_map (fun t -> Delta.Upsert t) !staged)
  in
  let istats = Warehouse.integrate_value_delta wh upserts in
  Printf.printf "integrated %d statements (%d row ops) in %s\n" istats.Warehouse.statements
    istats.Warehouse.row_ops
    (Dw_util.Fmt_util.human_duration istats.Warehouse.duration);

  (* 5. verify: the view equals a recomputation from the replica, and the
     replica equals the source *)
  let materialized = Warehouse.view_rows wh "cheap_parts" in
  let recomputed = Warehouse.recompute_view wh "cheap_parts" in
  assert (materialized = recomputed);
  Printf.printf "view verified: %d rows, incremental == recompute\n" (List.length materialized);
  let src_count = Dw_engine.Table.row_count (Db.table src "parts") in
  let wh_count = List.length (Warehouse.replica_rows wh "parts") in
  Printf.printf "replica row count %d vs source %d -> %s\n" wh_count src_count
    (if src_count = wh_count then "in sync" else "DIVERGED");
  print_endline "pipeline complete."
