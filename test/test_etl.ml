(* Tests for Dw_etl.Pipeline: every extraction method drives the same
   source activity into the warehouse over multiple rounds; replicas and
   views converge; queued transport and schema transformation work. *)

module Vfs = Dw_storage.Vfs
module Value = Dw_relation.Value
module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Expr = Dw_relation.Expr
module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Workload = Dw_workload.Workload
module Spj_view = Dw_core.Spj_view
module Transform = Dw_core.Transform
module Snapshot_extract = Dw_core.Snapshot_extract
module Warehouse = Dw_warehouse.Warehouse
module Pipeline = Dw_etl.Pipeline
module Prng = Dw_util.Prng

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let mk_source () =
  let db = Db.create ~archive_log:true ~vfs:(Vfs.in_memory ()) ~name:"src" () in
  let _ = Workload.create_parts_table db in
  db

let mk_warehouse ?(table = "parts") ?(schema = Workload.parts_schema) ?(view = true) () =
  let wh = Warehouse.create ~vfs:(Vfs.in_memory ()) ~name:"dw" () in
  Warehouse.add_replica wh ~table ~schema;
  if view then
    Warehouse.define_view wh
      (Spj_view.Select_project
         {
           name = table ^ "_view";
           table;
           schema;
           filter = None;
           project =
             [ { Spj_view.out_name = (Schema.column schema 0).Schema.name;
                 from_side = Spj_view.L;
                 from_col = (Schema.column schema 0).Schema.name } ];
         });
  wh

let run_activity db ~seed ~txns ~first_insert_id =
  Db.advance_day db;
  let rng = Prng.create ~seed in
  for i = 0 to txns - 1 do
    let stmts =
      match Prng.int rng 3 with
      | 0 ->
        Workload.insert_parts_txn ~first_id:(first_insert_id + (i * 10)) ~size:3
          ~day:(Db.current_day db) ()
      | 1 -> [ Workload.update_parts_stmt ~first_id:(1 + Prng.int rng 30) ~size:4 ]
      | _ -> [ Workload.delete_parts_stmt ~first_id:(1 + Prng.int rng 30) ~size:2 ]
    in
    Db.with_txn db (fun txn ->
        List.iter (fun s -> ignore (Db.exec db txn s : Db.exec_result)) stmts)
  done

let table_rows db name =
  let rows = ref [] in
  Table.scan (Db.table db name) (fun _ t -> rows := t :: !rows);
  List.sort Tuple.compare !rows

let converged src wh =
  let s = table_rows src "parts" in
  let w = table_rows (Warehouse.db wh) "parts" in
  List.length s = List.length w && List.for_all2 Tuple.equal s w

(* a method that observes all change kinds converges over multiple rounds *)
let pipeline_converges method_ transport () =
  let src = mk_source () in
  let wh = mk_warehouse () in
  let pipe = Pipeline.create ~source:src ~warehouse:wh ~table:"parts" ~method_ ~transport () in
  (* the initial load happens through logged transactions so that capture
     mechanisms installed at pipeline creation observe it *)
  Db.with_txn src (fun txn ->
      List.iter
        (fun s -> ignore (Db.exec src txn s : Db.exec_result))
        (Workload.insert_parts_txn ~first_id:1 ~size:40 ~day:(Db.current_day src) ()));
  (* round 1: initial state *)
  (match Pipeline.run_round pipe with
   | Ok stats -> check Alcotest.bool "round 1 shipped" true (stats.Pipeline.shipped_bytes > 0)
   | Error e -> Alcotest.fail e);
  check Alcotest.bool "after initial round" true (converged src wh);
  (* rounds 2 and 3: incremental *)
  run_activity src ~seed:1 ~txns:8 ~first_insert_id:100;
  (match Pipeline.run_round pipe with Ok _ -> () | Error e -> Alcotest.fail e);
  check Alcotest.bool "after round 2" true (converged src wh);
  run_activity src ~seed:2 ~txns:8 ~first_insert_id:300;
  (match Pipeline.run_round pipe with Ok _ -> () | Error e -> Alcotest.fail e);
  check Alcotest.bool "after round 3" true (converged src wh);
  check Alcotest.int "3 rounds" 3 (Pipeline.rounds pipe);
  (* views stayed consistent throughout *)
  let materialized = Warehouse.view_rows wh "parts_view" in
  let recomputed = Warehouse.recompute_view wh "parts_view" in
  check Alcotest.bool "view consistent" true (materialized = recomputed)

let trigger_direct = pipeline_converges Pipeline.Trigger Pipeline.Direct
let trigger_queued = pipeline_converges Pipeline.Trigger (Pipeline.Queued "dq")
let log_direct = pipeline_converges Pipeline.Log Pipeline.Direct
let snapshot_direct =
  pipeline_converges (Pipeline.Snapshot Snapshot_extract.Sort_merge) Pipeline.Direct
let snapshot_window_queued =
  pipeline_converges (Pipeline.Snapshot (Snapshot_extract.Window 4096)) (Pipeline.Queued "dq")

(* the timestamp method misses deletes: run insert/update-only activity *)
let timestamp_pipeline () =
  let src = mk_source () in
  Workload.load_parts src ~rows:40 ();
  let wh = mk_warehouse () in
  let pipe =
    Pipeline.create ~source:src ~warehouse:wh ~table:"parts" ~method_:Pipeline.Timestamp
      ~transport:(Pipeline.Queued "tsq") ()
  in
  (match Pipeline.run_round pipe with Ok _ -> () | Error e -> Alcotest.fail e);
  check Alcotest.bool "initial load" true (converged src wh);
  Db.advance_day src;
  Db.with_txn src (fun txn ->
      ignore (Db.exec src txn (Workload.update_parts_stmt ~first_id:1 ~size:10) : Db.exec_result);
      List.iter
        (fun s -> ignore (Db.exec src txn s : Db.exec_result))
        (Workload.insert_parts_txn ~first_id:200 ~size:5 ~day:(Db.current_day src) ()));
  (match Pipeline.run_round pipe with
   | Ok stats -> check Alcotest.int "15 upserts" 15 stats.Pipeline.extracted_changes
   | Error e -> Alcotest.fail e);
  check Alcotest.bool "converged without deletes" true (converged src wh)

(* op-delta pipeline: transactions go through the wrapper *)
let opdelta_pipeline () =
  let src = mk_source () in
  Workload.load_parts src ~rows:40 ();
  let wh = mk_warehouse () in
  let pipe =
    Pipeline.create ~source:src ~warehouse:wh ~table:"parts" ~method_:Pipeline.Op_delta_wrapper
      ~transport:(Pipeline.Queued "opq") ()
  in
  let cap = Option.get (Pipeline.capture pipe) in
  (* the wrapper path has no "initial load" concept: seed the warehouse
     through integration so the views stay consistent *)
  ignore
    (Warehouse.integrate_value_delta wh
       (Dw_core.Delta.make ~table:"parts" ~schema:Workload.parts_schema
          (List.map (fun r -> Dw_core.Delta.Insert r) (table_rows src "parts")))
      : Warehouse.stats);
  let submit stmts =
    match Dw_core.Opdelta_capture.exec_txn cap stmts with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  in
  Db.advance_day src;
  submit (Workload.insert_parts_txn ~first_id:100 ~size:3 ~day:(Db.current_day src) ());
  submit [ Workload.update_parts_stmt ~first_id:1 ~size:10 ];
  submit [ Workload.delete_parts_stmt ~first_id:20 ~size:5 ];
  (match Pipeline.run_round pipe with
   | Ok stats ->
     check Alcotest.int "5 statements" 5 stats.Pipeline.extracted_changes;
     (* wire volume is tiny: 3 inserts + 2 small statements *)
     check Alcotest.bool "small wire volume" true (stats.Pipeline.shipped_bytes < 1000)
   | Error e -> Alcotest.fail e);
  check Alcotest.bool "converged" true (converged src wh);
  (* nothing new: empty round *)
  match Pipeline.run_round pipe with
  | Ok stats -> check Alcotest.int "empty round" 0 stats.Pipeline.extracted_changes
  | Error e -> Alcotest.fail e

(* transformation: warehouse stores a renamed, reduced schema *)
let transformed_pipeline () =
  let src = mk_source () in
  Workload.load_parts src ~rows:30 ();
  let dw_schema =
    Schema.make
      [
        { Schema.name = "pid"; ty = Value.Tint; nullable = false };
        { Schema.name = "quantity"; ty = Value.Tint; nullable = false };
        { Schema.name = "sys"; ty = Value.Tstring 4; nullable = false };
      ]
  in
  let rule =
    {
      Transform.src_table = "parts";
      dst_table = "dw_parts";
      column_map = [ ("part_id", "pid"); ("qty", "quantity") ];
      constants = [ ("sys", Value.Str "erp1") ];
    }
  in
  let wh = mk_warehouse ~table:"dw_parts" ~schema:dw_schema ~view:false () in
  let pipe =
    Pipeline.create ~transform:rule ~source:src ~warehouse:wh ~table:"parts"
      ~method_:Pipeline.Trigger ~transport:Pipeline.Direct ()
  in
  (* trigger pipelines only see changes from installation on *)
  Db.with_txn src (fun txn ->
      List.iter
        (fun s -> ignore (Db.exec src txn s : Db.exec_result))
        (Workload.insert_parts_txn ~first_id:500 ~size:4 ~day:0 ()));
  (match Pipeline.run_round pipe with
   | Ok stats -> check Alcotest.int "4 inserts" 4 stats.Pipeline.extracted_changes
   | Error e -> Alcotest.fail e);
  let rows = table_rows (Warehouse.db wh) "dw_parts" in
  check Alcotest.int "4 transformed rows" 4 (List.length rows);
  List.iter
    (fun r ->
      check Alcotest.int "arity" 3 (Array.length r);
      check Alcotest.bool "constant" true (r.(2) = Value.Str "erp1"))
    rows

(* compaction: a churn round ships the net change only *)
let compacted_pipeline () =
  let src = mk_source () in
  let wh = mk_warehouse ~view:false () in
  let pipe =
    Pipeline.create ~compact:true ~source:src ~warehouse:wh ~table:"parts"
      ~method_:Pipeline.Trigger ~transport:Pipeline.Direct ()
  in
  Db.with_txn src (fun txn ->
      List.iter
        (fun s -> ignore (Db.exec src txn s : Db.exec_result))
        (Workload.insert_parts_txn ~first_id:1 ~size:10 ~day:0 ()));
  (* churn the same 10 rows repeatedly *)
  for _ = 1 to 8 do
    Db.with_txn src (fun txn ->
        ignore (Db.exec src txn (Workload.update_parts_stmt ~first_id:1 ~size:10)
                : Db.exec_result))
  done;
  (match Pipeline.run_round pipe with
   | Ok stats ->
     (* 10 inserts + 80 updates collapse to 10 net inserts *)
     check Alcotest.int "trigger captured everything" 90 stats.Pipeline.extracted_changes;
     check Alcotest.bool "wire carries the net change only" true
       (stats.Pipeline.shipped_bytes < 10 * 300)
   | Error e -> Alcotest.fail e);
  check Alcotest.bool "still converges" true (converged src wh)

(* a round over a table with zero committed changes is a clean no-op:
   nothing extracted, nothing shipped twice, still converged *)
let round_with_zero_changes () =
  let src = mk_source () in
  let wh = mk_warehouse ~view:false () in
  let pipe =
    Pipeline.create ~source:src ~warehouse:wh ~table:"parts" ~method_:Pipeline.Trigger
      ~transport:(Pipeline.Queued "zq") ()
  in
  Db.with_txn src (fun txn ->
      List.iter
        (fun s -> ignore (Db.exec src txn s : Db.exec_result))
        (Workload.insert_parts_txn ~first_id:1 ~size:20 ~day:0 ()));
  (match Pipeline.run_round pipe with Ok _ -> () | Error e -> Alcotest.fail e);
  check Alcotest.bool "converged" true (converged src wh);
  (* two idle rounds in a row *)
  for _ = 1 to 2 do
    match Pipeline.run_round pipe with
    | Ok stats -> check Alcotest.int "idle round extracts nothing" 0 stats.Pipeline.extracted_changes
    | Error e -> Alcotest.fail e
  done;
  check Alcotest.bool "still converged" true (converged src wh);
  check Alcotest.int "3 rounds counted" 3 (Pipeline.rounds pipe)

(* the source faulting mid-extract must not advance the watermark: the
   failed round is a no-op and the next round re-extracts everything *)
let crash_mid_extract_resumes () =
  let src = mk_source () in
  Workload.load_parts src ~rows:30 ();
  let wh = mk_warehouse ~view:false () in
  let pipe =
    Pipeline.create ~source:src ~warehouse:wh ~table:"parts" ~method_:Pipeline.Timestamp
      ~transport:Pipeline.Direct ()
  in
  (match Pipeline.run_round pipe with Ok _ -> () | Error e -> Alcotest.fail e);
  check Alcotest.bool "initial load" true (converged src wh);
  (* timestamp method misses deletes: insert/update activity only *)
  Db.advance_day src;
  Db.with_txn src (fun txn ->
      ignore (Db.exec src txn (Workload.update_parts_stmt ~first_id:3 ~size:6) : Db.exec_result));
  let wm_day () =
    (Dw_core.Watermark.get
       (Dw_core.Watermark.load (Db.vfs src) ~name:"pipeline.parts.wm")
       ~table:"parts")
      .Dw_core.Watermark.day
  in
  let day_before = wm_day () in
  (* every source write now faults: the extract dies writing its delta
     file, before anything ships *)
  Vfs.set_fault (Db.vfs src) (Some (Vfs.Fault.make ~write_fail_p:1.0 ~fsync_fail_p:1.0 ~seed:4 ()));
  (try
     match Pipeline.run_round pipe with
     | Ok _ -> Alcotest.fail "round succeeded under a total-failure fault"
     | Error _ -> ()
   with Vfs.Fault.Transient _ -> ());
  Vfs.set_fault (Db.vfs src) None;
  check Alcotest.int "watermark never regressed or advanced" day_before (wm_day ());
  check Alcotest.int "failed round not counted" 1 (Pipeline.rounds pipe);
  (* the next round picks the changes up as if the fault never happened *)
  (match Pipeline.run_round pipe with
   | Ok stats -> check Alcotest.int "re-extracted after fault" 6 stats.Pipeline.extracted_changes
   | Error e -> Alcotest.fail e);
  check Alcotest.bool "converged after resume" true (converged src wh);
  check Alcotest.bool "watermark advanced after success" true (wm_day () > day_before)

let create_validates () =
  let src = mk_source () in
  let wh = Warehouse.create ~vfs:(Vfs.in_memory ()) ~name:"dw" () in
  (* no replica *)
  try
    ignore
      (Pipeline.create ~source:src ~warehouse:wh ~table:"parts" ~method_:Pipeline.Trigger
         ~transport:Pipeline.Direct ());
    Alcotest.fail "expected missing-replica failure"
  with Invalid_argument _ -> ()

let suite =
  [
    test "trigger pipeline (direct)" trigger_direct;
    test "trigger pipeline (queued)" trigger_queued;
    test "log pipeline" log_direct;
    test "snapshot pipeline (sort-merge)" snapshot_direct;
    test "snapshot pipeline (window, queued)" snapshot_window_queued;
    test "timestamp pipeline" timestamp_pipeline;
    test "op-delta pipeline" opdelta_pipeline;
    test "transformed pipeline" transformed_pipeline;
    test "compacted pipeline" compacted_pipeline;
    test "round with zero changes is a no-op" round_with_zero_changes;
    test "crash mid-extract leaves watermark, resumes" crash_mid_extract_resumes;
    test "create validates" create_validates;
  ]
