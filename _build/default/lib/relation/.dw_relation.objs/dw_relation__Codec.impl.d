lib/relation/codec.ml: Array Buffer Bytes Char Int64 List Printf Schema String Tuple Value
