lib/util/prng.mli:
