(* Schema check for dwbench's --json output, run by the @bench-json
   alias.  The actual checks live in Dw_experiments.Bench_check (shared
   with dwbench's own exit-status self-validation); this wrapper reads
   the file and turns a rejection into exit 1, so a schema or gate
   regression fails `dune runtest` rather than surfacing downstream in
   whatever consumes the JSON. *)

module Json = Dw_util.Json
module Bench_check = Dw_experiments.Bench_check

let die fmt = Printf.ksprintf (fun msg -> prerr_endline ("bench-json: " ^ msg); exit 1) fmt

let () =
  let file =
    match Sys.argv with
    | [| _; file |] -> file
    | _ -> die "usage: validate_bench_json FILE"
  in
  let doc =
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Json.of_string s with
    | Ok j -> j
    | Error e -> die "%s does not parse: %s" file e
  in
  match Bench_check.validate ~strict:true doc with
  | Ok summary -> Printf.printf "bench-json: %s ok (%s)\n" file summary
  | Error msg -> die "%s" msg
