(* Experiments W1 and W2 — the paper's Section 4.1 warehouse-side claims.

   W1: maintenance window, Op-Delta vs value delta, per operation kind and
   transaction size.  Expected: insert parity; delete window ~30% shorter
   with Op-Delta; update ~70% shorter.

   W2: availability during maintenance.  Expected: the value-delta batch
   forces an outage roughly equal to the whole integration, Op-Delta
   interleaves with OLAP queries with small bounded waits. *)

module Vfs = Dw_storage.Vfs
module Db = Dw_engine.Db
module Value = Dw_relation.Value
module Schema = Dw_relation.Schema
module Expr = Dw_relation.Expr
module Workload = Dw_workload.Workload
module Delta = Dw_core.Delta
module Op_delta = Dw_core.Op_delta
module Spj_view = Dw_core.Spj_view
module Trigger_extract = Dw_core.Trigger_extract
module Warehouse = Dw_warehouse.Warehouse
module Availability_sim = Dw_warehouse.Availability_sim
module Prng = Dw_util.Prng
open Bench_support

type op_kind = Insert | Delete | Update

let op_name = function Insert -> "insert" | Delete -> "delete" | Update -> "update"

let w1_txn_sizes = [ 10; 100; 1000; 10000 ]

let sp_view =
  Spj_view.Select_project
    {
      name = "cheap_parts";
      table = "parts";
      schema = Workload.parts_schema;
      filter = Some (Expr.Cmp (Expr.Lt, Expr.Col "price", Expr.Lit (Value.Float 500.0)));
      project =
        [
          { Spj_view.out_name = "part_id"; from_side = Spj_view.L; from_col = "part_id" };
          { Spj_view.out_name = "qty"; from_side = Spj_view.L; from_col = "qty" };
        ];
    }

let mk_warehouse ~replica_rows =
  let wh = Warehouse.create ~pool_pages:2048 ~vfs:(Vfs.in_memory ()) ~name:"dw" () in
  Warehouse.add_replica wh ~table:"parts" ~schema:Workload.parts_schema;
  let rng = Prng.create ~seed:77 in
  Warehouse.load_replica wh ~table:"parts"
    (List.init replica_rows (fun i -> Workload.gen_part rng ~id:(i + 1) ~day:0));
  Warehouse.define_view wh sp_view;
  wh

(* capture both representations of one source transaction *)
let capture_both ~table_rows kind size =
  let db = fresh_source ~rows:table_rows () in
  let day = Db.current_day db + 1 in
  Db.set_day db day;
  let stmts =
    match kind with
    | Insert -> Workload.insert_parts_txn ~seed:99 ~first_id:(table_rows + 1) ~size ~day ()
    | Delete -> [ Workload.delete_parts_stmt ~first_id:1 ~size ]
    | Update -> [ Workload.update_parts_stmt ~first_id:1 ~size ]
  in
  let handle = Trigger_extract.install db ~table:"parts" in
  Db.with_txn db (fun txn ->
      List.iter (fun stmt -> ignore (Db.exec db txn stmt : Db.exec_result)) stmts);
  let value_delta = Trigger_extract.collect db handle in
  let od = Op_delta.make ~txn_id:1 stmts in
  (value_delta, od)

let run_w1 ~scale =
  section "W1: warehouse maintenance window - Op-Delta vs value delta";
  let table_rows = scaled 20_000 ~scale in
  let header =
    [ "Op"; "Txn size"; "value delta window"; "Op-Delta window"; "Op-Delta shorter by" ]
  in
  let sizes = if is_quick () then [ 10; 100; 1000 ] else w1_txn_sizes in
  let rows = ref [] in
  let improvements = Hashtbl.create 4 in
  List.iter
    (fun kind ->
      List.iter
        (fun size ->
          let value_delta, od = capture_both ~table_rows kind size in
          (* best-of-3 on a fresh warehouse per repetition (GC noise) *)
          let t_value =
            best_of ~repeat:3
              ~setup:(fun () -> mk_warehouse ~replica_rows:table_rows)
              (fun wh -> ignore (Warehouse.integrate_value_delta wh value_delta : Warehouse.stats))
          in
          let t_op =
            best_of ~repeat:3
              ~setup:(fun () -> mk_warehouse ~replica_rows:table_rows)
              (fun wh -> ignore (Warehouse.integrate_op_delta wh od : Warehouse.stats))
          in
          let s1 = { Warehouse.txns = 1; statements = 0; row_ops = 0; duration = t_value } in
          let s2 = { Warehouse.txns = 1; statements = 0; row_ops = 0; duration = t_op } in
          let shorter = pct_change ~base:s1.Warehouse.duration ~other:s2.Warehouse.duration in
          Hashtbl.replace improvements kind
            (shorter :: (try Hashtbl.find improvements kind with Not_found -> []));
          rows :=
            [
              op_name kind;
              string_of_int size;
              dur s1.Warehouse.duration;
              dur s2.Warehouse.duration;
              Printf.sprintf "%.1f%%" shorter;
            ]
            :: !rows)
        sizes)
    [ Insert; Delete; Update ];
  print_table ~title:"Maintenance window per source transaction" ~header ~rows:(List.rev !rows);
  let avg kind =
    let l = try Hashtbl.find improvements kind with Not_found -> [] in
    List.fold_left ( +. ) 0.0 l /. float_of_int (max 1 (List.length l))
  in
  Printf.printf
    "averages over txn sizes: insert %.1f%% | delete %.1f%% | update %.1f%% shorter with \
     Op-Delta\n(paper: insert parity; delete 31.8%% shorter; update 69.7%% shorter)\n"
    (avg Insert) (avg Delete) (avg Update)

(* W1agg: the same maintenance-window comparison with an AGGREGATE view
   (the [19] "shrinking the warehouse update window" setting) *)
let agg_view =
  {
    Dw_core.Agg_view.name = "qty_value";
    table = "parts";
    schema = Workload.parts_schema;
    filter = None;
    group_by = [ "qty" ];
    aggregates =
      [ ("n", Dw_core.Agg_view.Count); ("value", Dw_core.Agg_view.Sum "price") ];
  }

let mk_agg_warehouse ~replica_rows =
  let wh = Warehouse.create ~pool_pages:2048 ~vfs:(Vfs.in_memory ()) ~name:"dw" () in
  Warehouse.add_replica wh ~table:"parts" ~schema:Workload.parts_schema;
  let rng = Prng.create ~seed:77 in
  Warehouse.load_replica wh ~table:"parts"
    (List.init replica_rows (fun i -> Workload.gen_part rng ~id:(i + 1) ~day:0));
  Warehouse.define_agg_view wh agg_view;
  wh

let run_w1_agg ~scale =
  section "W1agg: maintenance window with an aggregate (GROUP BY) view";
  let table_rows = scaled 10_000 ~scale in
  let header = [ "Op"; "Txn size"; "value delta"; "Op-Delta"; "Op-Delta shorter by" ] in
  let rows = ref [] in
  List.iter
    (fun kind ->
      List.iter
        (fun size ->
          let value_delta, od = capture_both ~table_rows kind size in
          let t_value =
            best_of ~repeat:3
              ~setup:(fun () -> mk_agg_warehouse ~replica_rows:table_rows)
              (fun wh -> ignore (Warehouse.integrate_value_delta wh value_delta : Warehouse.stats))
          in
          let t_op =
            best_of ~repeat:3
              ~setup:(fun () -> mk_agg_warehouse ~replica_rows:table_rows)
              (fun wh -> ignore (Warehouse.integrate_op_delta wh od : Warehouse.stats))
          in
          rows :=
            [ op_name kind; string_of_int size; dur t_value; dur t_op;
              Printf.sprintf "%.1f%%" (pct_change ~base:t_value ~other:t_op) ]
            :: !rows)
        [ 10; 100; 1000 ])
    [ Insert; Delete; Update ];
  print_table ~title:"Maintenance window (COUNT/SUM aggregate view attached)" ~header
    ~rows:(List.rev !rows);
  print_endline
    "shape check: the Op-Delta advantage persists when the maintenance work includes \
     aggregate-view upkeep (the [19] setting the paper positions itself in front of)"

let run_w2 ~scale =
  section "W2: warehouse availability during maintenance (Op-Delta online vs value-delta batch)";
  let table_rows = scaled 5_000 ~scale in
  (* a maintenance cycle of 40 source transactions, ~25 rows each *)
  let db = fresh_source ~rows:table_rows () in
  Db.set_day db (Db.current_day db + 1);
  let handle = Trigger_extract.install db ~table:"parts" in
  let ods = ref [] in
  let rng = Prng.create ~seed:3 in
  for i = 0 to 39 do
    let stmts =
      match i mod 3 with
      | 0 ->
        Workload.insert_parts_txn ~first_id:(table_rows + 1 + (i * 30)) ~size:25
          ~day:(Db.current_day db) ()
      | 1 -> [ Workload.update_parts_stmt ~first_id:(1 + Prng.int rng 3000) ~size:25 ]
      | _ -> [ Workload.delete_parts_stmt ~first_id:(1 + Prng.int rng 3000) ~size:25 ]
    in
    Db.with_txn db (fun txn ->
        List.iter (fun stmt -> ignore (Db.exec db txn stmt : Db.exec_result)) stmts);
    ods := Op_delta.make ~txn_id:i stmts :: !ods
  done;
  let ods = List.rev !ods in
  let value_delta = Trigger_extract.collect db handle in
  (* integrate both ways for real to obtain per-transaction costs *)
  let wh1 = mk_warehouse ~replica_rows:table_rows in
  let batch_stats = Warehouse.integrate_value_delta wh1 value_delta in
  let wh2 = mk_warehouse ~replica_rows:table_rows in
  let op_stats = List.map (Warehouse.integrate_op_delta wh2) ods in
  (* costs in ticks = row operations performed while holding the lock *)
  let batch_job = max 1 batch_stats.Warehouse.row_ops in
  let op_jobs = List.map (fun (s : Warehouse.stats) -> max 1 s.Warehouse.row_ops) op_stats in
  let total_op = List.fold_left ( + ) 0 op_jobs in
  let query_duration = 50 in
  let query_interval = max 1 (total_op / 40) in
  let horizon = total_op * 2 in
  let sim jobs = Availability_sim.run { write_jobs = jobs; query_duration; query_interval; horizon } in
  let batch_report = sim [ batch_job ] in
  let op_report = sim op_jobs in
  let show name (r : Availability_sim.report) =
    [
      name;
      string_of_int r.Availability_sim.outage_time;
      string_of_int r.Availability_sim.max_query_wait;
      Printf.sprintf "%.1f"
        (float_of_int r.Availability_sim.total_query_wait
         /. float_of_int (max 1 r.Availability_sim.queries_completed));
      string_of_int r.Availability_sim.maintenance_done;
      Printf.sprintf "%d/%d" r.Availability_sim.queries_completed
        r.Availability_sim.queries_admitted;
    ]
  in
  print_table ~title:"Availability (ticks = row ops under lock)"
    ~header:[ "Mode"; "outage"; "max query wait"; "avg query wait"; "maint. done"; "queries" ]
    ~rows:[ show "value-delta batch" batch_report; show "Op-Delta online" op_report ];
  Printf.printf
    "shape check (paper): the batch blocks every in-flight OLAP query for up to the whole \
     integration (max wait %d ticks); Op-Delta bounds each query's wait by one small \
     transaction (max wait %d ticks)\n"
    batch_report.Availability_sim.max_query_wait op_report.Availability_sim.max_query_wait


(* W2R — the W2 claim measured against the REAL lock manager: an
   effect-handler scheduler (Dw_engine.Scheduler) interleaves integrator
   and OLAP reader sessions over one warehouse database; reader waits come
   from actual 2PL conflicts, not a model. *)

module Scheduler = Dw_engine.Scheduler

let run_w2_real ~scale =
  section "W2R: availability with real 2PL (effect-handler scheduler)";
  let table_rows = scaled 2_000 ~scale in
  let txns = 20 in
  let run_mode online =
    let wh = mk_warehouse ~replica_rows:table_rows in
    let db = Warehouse.db wh in
    (* the maintenance stream: 20 update transactions of 25 rows *)
    let ods =
      List.init txns (fun i ->
          Op_delta.make ~txn_id:i
            [ Workload.update_parts_stmt ~first_id:(1 + (i * 60)) ~size:25 ])
    in
    let integrator =
      {
        Scheduler.name = "integrator";
        start_at = 0;
        work =
          (fun () ->
            if online then
              List.iter
                (fun od -> ignore (Warehouse.integrate_op_delta wh od : Warehouse.stats))
                ods
            else begin
              (* the batch: all transactions' statements in ONE warehouse txn *)
              Db.with_txn db (fun txn ->
                  List.iter
                    (fun od ->
                      List.iter
                        (fun (op : Op_delta.op) ->
                          ignore (Db.exec db txn op.Op_delta.stmt : Db.exec_result))
                        od.Op_delta.ops)
                    ods)
            end);
      }
    in
    let readers =
      List.init 6 (fun i ->
          {
            Scheduler.name = Printf.sprintf "olap-%d" i;
            start_at = 2 + (i * 4);
            work =
              (fun () ->
                Db.with_txn db (fun txn ->
                    ignore (Db.select db txn "parts" ()) ));
          })
    in
    Scheduler.run db (integrator :: readers)
  in
  let show name (r : Scheduler.report) =
    let readers =
      List.filter (fun s -> s.Scheduler.session <> "integrator") r.Scheduler.sessions
    in
    let blocked = List.map (fun s -> s.Scheduler.blocked_slices) readers in
    let max_b = List.fold_left max 0 blocked in
    let avg_b =
      float_of_int (List.fold_left ( + ) 0 blocked) /. float_of_int (List.length blocked)
    in
    let failed = List.length (List.filter (fun s -> s.Scheduler.failed <> None) r.Scheduler.sessions) in
    [ name; string_of_int max_b; Printf.sprintf "%.1f" avg_b;
      string_of_int r.Scheduler.total_slices; string_of_int failed ]
  in
  let batch = run_mode false in
  let online = run_mode true in
  print_table
    ~title:
      (Printf.sprintf
         "%d maintenance txns (25-row updates) vs 6 OLAP readers over a %d-row warehouse" txns
         table_rows)
    ~header:[ "mode"; "max reader wait (slices)"; "avg reader wait"; "makespan"; "failures" ]
    ~rows:[ show "value-delta batch (1 txn)" batch; show "Op-Delta online (per txn)" online ];
  print_endline
    "shape check (paper): under real 2PL the batch makes readers wait for the whole \
     integration; per-transaction Op-Delta application bounds each wait at one short txn"
