lib/txn/log_record.mli: Dw_storage Format
