(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (scaled) plus the warehouse-side and multi-source
   experiments, and a bechamel micro suite.

     dune exec bench/main.exe            # everything, scale 1
     dune exec bench/main.exe -- t1 f2   # selected experiments
     dune exec bench/main.exe -- --scale 2 all

   Experiment ids: t1 t2 t3 t5 f2 f3 t4 w1 w2 s1 r1 v1 t7 ablate micro
   (see DESIGN.md). *)

module E = Dw_experiments

let runners =
  [
    ("t1", fun ~scale -> E.Exp_dump_load.run ~scale);
    ("t2", fun ~scale -> ignore (E.Exp_timestamp.run_t2 ~scale));
    ("t3", fun ~scale -> E.Exp_timestamp.run_t3 ~scale);
    ("t5", fun ~scale -> E.Exp_batching.run_t5 ~scale);
    ("f2", fun ~scale -> E.Exp_trigger.run ~scale);
    ("f2r", fun ~scale -> E.Exp_trigger.run_remote ~scale);
    ("f3", fun ~scale -> E.Exp_opdelta.run_f3 ~scale);
    ("t4", fun ~scale -> E.Exp_opdelta.run_t4 ~scale);
    ("v1", fun ~scale -> E.Exp_opdelta.run_v1 ~scale);
    ("w1", fun ~scale -> E.Exp_warehouse.run_w1 ~scale);
    ("w2", fun ~scale -> E.Exp_warehouse.run_w2 ~scale);
    ("w2r", fun ~scale -> E.Exp_warehouse.run_w2_real ~scale);
    ("w1agg", fun ~scale -> E.Exp_warehouse.run_w1_agg ~scale);
    ("w3", fun ~scale -> E.Exp_mvcc.run_w3 ~scale);
    ("w4", fun ~scale -> E.Exp_bootstrap.run_bench ~scale);
    ("w5", fun ~scale -> E.Exp_parallel.run_w5 ~scale);
    ("t6", fun ~scale -> E.Exp_partition.run_t6 ~scale);
    ("w6", fun ~scale -> E.Exp_chaos.run_bench ~scale);
    ("t7", fun ~scale -> E.Exp_planner.run_t7 ~scale);
    ("s1", fun ~scale -> E.Exp_snapshot.run ~scale);
    ("r1", fun ~scale -> E.Exp_reconcile.run ~scale);
    ("ablate", fun ~scale -> E.Exp_ablation.run_all ~scale);
    ("crash", fun ~scale -> E.Crash_sim.run_bench ~scale);
    ("micro", fun ~scale:_ -> E.Micro.run ());
  ]

let valid_ids = List.map fst runners

let usage () =
  Printf.printf "usage: main.exe [--scale N] [%s|all ...]\n" (String.concat "|" valid_ids);
  exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let scale = ref 1 in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--scale" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v >= 1 ->
          scale := v;
          parse acc rest
        | Some _ | None -> usage ())
    | ("-h" | "--help") :: _ -> usage ()
    | x :: rest -> parse (String.lowercase_ascii x :: acc) rest
  in
  let selected = parse [] args in
  (* a typo'd id must fail loudly, not silently run nothing *)
  (match
     List.filter (fun id -> id <> "all" && not (List.mem id valid_ids)) selected
   with
   | [] -> ()
   | unknown ->
     Printf.eprintf "unknown experiment id%s: %s (valid: %s, or 'all')\n"
       (if List.length unknown = 1 then "" else "s")
       (String.concat ", " unknown) (String.concat ", " valid_ids);
     exit 1);
  let selected = if selected = [] || List.mem "all" selected then [ "all" ] else selected in
  let want id = List.mem id selected || List.mem "all" selected in
  let scale = !scale in
  let total = Unix.gettimeofday () in
  Printf.printf
    "Delta-extraction experiment harness (scale %d; paper sizes are scaled to row counts, see \
     EXPERIMENTS.md)\n"
    scale;
  List.iter (fun (id, run) -> if want id then run ~scale) runners;
  Printf.printf "\ntotal harness time: %s\n"
    (Dw_util.Fmt_util.human_duration (Unix.gettimeofday () -. total))
