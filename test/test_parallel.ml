(* Tests for the multicore read path: Domain_pool semantics, the striped
   lock manager's invariants (co-location of a table with its rows,
   cross-stripe deadlock detection through the global wait graph), the
   striped buffer pool, domain-safe Metrics under concurrent mutation and
   reset, and the headline qcheck property — Par_scan returns results
   byte-identical to the sequential executor for random tables, partition
   counts and committed writes racing the snapshot. *)

module Vfs = Dw_storage.Vfs
module Metrics = Dw_util.Metrics
module Domain_pool = Dw_util.Domain_pool
module Value = Dw_relation.Value
module Tuple = Dw_relation.Tuple
module Expr = Dw_relation.Expr
module Heap_file = Dw_storage.Heap_file
module Buffer_pool = Dw_storage.Buffer_pool
module Lock_manager = Dw_txn.Lock_manager
module Db = Dw_engine.Db
module Workload = Dw_workload.Workload
module Par_scan = Dw_warehouse.Par_scan

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

(* ---------- Domain_pool ---------- *)

let pool_runs_in_order () =
  Domain_pool.with_pool ~domains:3 @@ fun pool ->
  let results = Domain_pool.run_all pool (List.init 20 (fun i () -> i * i)) in
  check (Alcotest.list Alcotest.int) "results in submission order"
    (List.init 20 (fun i -> i * i))
    results;
  check Alcotest.int "pool size" 3 (Domain_pool.size pool);
  check Alcotest.int "single task" 7 (Domain_pool.run pool (fun () -> 7))

let pool_reraises_lowest_index_error () =
  Domain_pool.with_pool ~domains:2 @@ fun pool ->
  let tasks =
    List.init 8 (fun i () -> if i = 3 || i = 6 then failwith (string_of_int i) else i)
  in
  (try
     ignore (Domain_pool.run_all pool tasks : int list);
     Alcotest.fail "expected a task failure to propagate"
   with Failure msg -> check Alcotest.string "lowest failing index wins" "3" msg);
  (* the pool survives a failed batch *)
  check (Alcotest.list Alcotest.int) "pool usable after failure" [ 1; 2 ]
    (Domain_pool.run_all pool [ (fun () -> 1); (fun () -> 2) ])

let pool_rejects_after_shutdown () =
  let pool = Domain_pool.create ~domains:2 in
  check (Alcotest.list Alcotest.int) "runs before shutdown" [ 5 ]
    (Domain_pool.run_all pool [ (fun () -> 5) ]);
  Domain_pool.shutdown pool;
  Domain_pool.shutdown pool (* idempotent *);
  (try
     ignore (Domain_pool.run pool (fun () -> 0) : int);
     Alcotest.fail "expected Invalid_argument after shutdown"
   with Invalid_argument _ -> ());
  try ignore (Domain_pool.create ~domains:0 : Domain_pool.t);
    Alcotest.fail "expected Invalid_argument for 0 domains"
  with Invalid_argument _ -> ()

(* ---------- striped lock manager ---------- *)

let stripes_colocate_table_and_rows () =
  let lm = Lock_manager.create ~stripes:4 () in
  check Alcotest.int "stripe count" 4 (Lock_manager.stripe_count lm);
  List.iter
    (fun tname ->
      let t_stripe = Lock_manager.stripe_of lm (Lock_manager.Table tname) in
      List.iter
        (fun page ->
          let rid = { Heap_file.page; slot = page mod 7 } in
          check Alcotest.int
            (Printf.sprintf "%s row (%d) shares table stripe" tname page)
            t_stripe
            (Lock_manager.stripe_of lm (Lock_manager.Row (tname, rid))))
        [ 0; 1; 17; 123 ])
    [ "parts"; "orders"; "a"; "b"; "c"; "d"; "e"; "f"; "g" ]

(* two tables on different stripes must still close a deadlock cycle:
   the wait-for graph is global even though lock state is sharded *)
let cross_stripe_deadlock_detected () =
  let lm = Lock_manager.create ~stripes:4 () in
  (* find two tables hashing to different stripes *)
  let names = List.init 64 (fun i -> Printf.sprintf "t%d" i) in
  let a = List.hd names in
  let b =
    List.find
      (fun n ->
        Lock_manager.stripe_of lm (Lock_manager.Table n)
        <> Lock_manager.stripe_of lm (Lock_manager.Table a))
      names
  in
  let ra = Lock_manager.Table a and rb = Lock_manager.Table b in
  check Alcotest.bool "stripes differ" true
    (Lock_manager.stripe_of lm ra <> Lock_manager.stripe_of lm rb);
  (match Lock_manager.acquire lm 1 ra Lock_manager.X with
   | Lock_manager.Granted -> ()
   | _ -> Alcotest.fail "tx1 should get A");
  (match Lock_manager.acquire lm 2 rb Lock_manager.X with
   | Lock_manager.Granted -> ()
   | _ -> Alcotest.fail "tx2 should get B");
  (match Lock_manager.acquire lm 1 rb Lock_manager.X with
   | Lock_manager.Blocked [ 2 ] -> ()
   | _ -> Alcotest.fail "tx1 should block on B behind tx2");
  (match Lock_manager.acquire lm 2 ra Lock_manager.X with
   | Lock_manager.Deadlock blockers ->
     check (Alcotest.list Alcotest.int) "cycle blockers" [ 1 ] blockers
   | _ -> Alcotest.fail "cross-stripe cycle must be detected");
  Lock_manager.release_all lm 1;
  Lock_manager.release_all lm 2

let striped_acquires_stay_independent () =
  (* concurrent writers on disjoint tables: every acquire must be granted
     and release must leave nothing behind, whichever stripe they hit *)
  let lm = Lock_manager.create ~stripes:4 () in
  Domain_pool.with_pool ~domains:4 @@ fun pool ->
  let per_domain = 200 in
  let task d () =
    let tname = Printf.sprintf "table%d" d in
    for i = 0 to per_domain - 1 do
      let rid = { Heap_file.page = i; slot = 0 } in
      match Lock_manager.acquire lm d (Lock_manager.Row (tname, rid)) Lock_manager.X with
      | Lock_manager.Granted -> ()
      | _ -> failwith "conflict between disjoint tables"
    done;
    List.length (Lock_manager.held_by lm d)
  in
  let held = Domain_pool.run_all pool (List.init 4 (fun d -> task (d + 1))) in
  List.iter (fun h -> check Alcotest.int "all row locks held" per_domain h) held;
  for d = 1 to 4 do
    Lock_manager.release_all lm d;
    check Alcotest.int "released" 0 (List.length (Lock_manager.held_by lm d))
  done

(* ---------- striped buffer pool ---------- *)

let buffer_pool_stripes_clamp_and_serve () =
  let vfs = Vfs.in_memory () in
  let pool = Buffer_pool.create ~stripes:64 ~vfs ~capacity:8 () in
  check Alcotest.int "stripes clamped to capacity" 8 (Buffer_pool.stripe_count pool);
  check Alcotest.int "capacity preserved" 8 (Buffer_pool.capacity pool)

let parallel_readers_see_every_row () =
  let vfs = Vfs.in_memory () in
  let pool = Buffer_pool.create ~stripes:4 ~vfs ~capacity:8 () in
  let file = Vfs.create vfs "t.heap" in
  let schema = Workload.parts_schema in
  let heap = Heap_file.create pool file schema in
  let rng = Dw_util.Prng.create ~seed:3 in
  let rows = 500 in
  List.iter
    (fun i -> ignore (Heap_file.insert heap (Workload.gen_part rng ~id:i ~day:0) : Heap_file.rid))
    (List.init rows (fun i -> i + 1));
  let pages = Heap_file.page_count heap in
  Domain_pool.with_pool ~domains:4 @@ fun dpool ->
  (* split the heap in 7 ranges (not aligned with the 4 stripes or 4
     domains) and count rows per range, faulting through shared frames *)
  let parts = 7 in
  let counts =
    Domain_pool.run_all dpool
      (List.init parts (fun i () ->
           let from_page = pages * i / parts and to_page = pages * (i + 1) / parts in
           let n = ref 0 in
           Heap_file.iter_pages heap ~from_page ~to_page (fun _ _ -> incr n);
           !n))
  in
  check Alcotest.int "every row seen exactly once" rows (List.fold_left ( + ) 0 counts)

(* ---------- domain-safe metrics ---------- *)

let metrics_survive_concurrent_mutation () =
  let m = Metrics.create () in
  let writers = 4 and per_writer = 2_000 in
  Domain_pool.with_pool ~domains:writers @@ fun pool ->
  let tasks =
    List.init writers (fun d () ->
        for i = 1 to per_writer do
          Metrics.incr m "c";
          Metrics.observe m "h" (float_of_int ((d * per_writer) + i));
          (* readers of the same histograms race the writers: before the
             registry lock these tore the histograms/summary snapshot *)
          if i mod 64 = 0 then begin
            ignore (Metrics.histograms m : (string * Metrics.histogram_summary) list);
            ignore (Metrics.summary m "h" : Metrics.histogram_summary option);
            ignore (Metrics.percentile m "h" 0.95 : float)
          end
        done)
  in
  ignore (Domain_pool.run_all pool tasks : unit list);
  check Alcotest.int "no increment lost" (writers * per_writer) (Metrics.get m "c");
  check Alcotest.int "no observation lost" (writers * per_writer) (Metrics.observed_count m "h")

let metrics_reset_races_observe () =
  (* reset concurrent with observe/summary must neither crash nor leave a
     torn histogram: afterwards the registry is consistent (count matches
     a fresh summary) even though the absolute number is racy *)
  let m = Metrics.create () in
  Domain_pool.with_pool ~domains:3 @@ fun pool ->
  let tasks =
    [
      (fun () ->
        for i = 1 to 5_000 do
          Metrics.observe m "h" (float_of_int i)
        done);
      (fun () ->
        for _ = 1 to 200 do
          Metrics.reset m;
          ignore (Metrics.summary m "h" : Metrics.histogram_summary option)
        done);
      (fun () ->
        for _ = 1 to 1_000 do
          ignore (Metrics.histograms m : (string * Metrics.histogram_summary) list);
          ignore (Metrics.observed_sum m "h" : float)
        done);
    ]
  in
  ignore (Domain_pool.run_all pool tasks : unit list);
  (match Metrics.summary m "h" with
   | Some s -> check Alcotest.int "summary count consistent" (Metrics.observed_count m "h") s.Metrics.count
   | None -> check Alcotest.int "empty after reset" 0 (Metrics.observed_count m "h"));
  Metrics.reset m;
  check Alcotest.int "reset leaves nothing" 0 (Metrics.observed_count m "h")

let with_sink_restores_on_exception () =
  let s = Metrics.create () in
  (try
     Metrics.with_sink (Some s) (fun () ->
         let m = Metrics.create () in
         Metrics.incr m "c";
         failwith "boom")
   with Failure _ -> ());
  check Alcotest.int "mirrored before the raise" 1 (Metrics.get s "c");
  let m2 = Metrics.create () in
  Metrics.incr m2 "after";
  check Alcotest.int "sink restored (unset) after exception" 0 (Metrics.get s "after")

(* ---------- Par_scan = sequential executor ---------- *)

let mk_db ~rows =
  let vfs = Vfs.in_memory () in
  let db = Db.create ~pool_pages:12 ~pool_stripes:4 ~vfs ~name:"db" () in
  let _ = Workload.create_parts_table db in
  if rows > 0 then Workload.load_parts db ~rows ();
  db

let par_queries =
  [
    "SELECT * FROM parts";
    "SELECT part_id, qty FROM parts WHERE qty < 300 ORDER BY part_id";
    "SELECT COUNT(*), SUM(qty), SUM(price), MIN(price), MAX(price), AVG(price) FROM parts";
    "SELECT qty, COUNT(*) AS n, AVG(price) FROM parts GROUP BY qty ORDER BY qty";
    "SELECT MIN(price), MAX(price) FROM parts WHERE qty < 100";
  ]

let exec_both ~pool ~partitions db txn sql =
  let seq = Db.exec_sql db txn sql in
  let par = Par_scan.exec_sql ~partitions ~pool db txn sql in
  (seq, par)

let par_scan_identity_basic () =
  let db = mk_db ~rows:200 in
  Domain_pool.with_pool ~domains:3 @@ fun pool ->
  let txn = Db.begin_txn ~mode:`Snapshot db in
  List.iter
    (fun sql ->
      let seq, par = exec_both ~pool ~partitions:5 db txn sql in
      check Alcotest.bool sql true (seq = par))
    par_queries;
  Db.commit db txn

let par_scan_error_parity () =
  let db = mk_db ~rows:10 in
  Domain_pool.with_pool ~domains:2 @@ fun pool ->
  let txn = Db.begin_txn ~mode:`Snapshot db in
  List.iter
    (fun sql ->
      let seq, par = exec_both ~pool ~partitions:3 db txn sql in
      (match (seq, par) with
       | Error _, Error _ -> check Alcotest.bool ("same error: " ^ sql) true (seq = par)
       | _ -> Alcotest.fail ("expected both to fail: " ^ sql)))
    [
      "SELECT nope FROM parts";
      "SELECT * FROM missing";
      "SELECT part_id, COUNT(*) FROM parts GROUP BY nope";
      "SELECT *, qty FROM parts";
      "SELECT price, COUNT(*) FROM parts GROUP BY qty";
      "SELECT qty FROM parts ORDER BY nope";
    ];
  Db.commit db txn;
  (* non-snapshot transactions are rejected *)
  let rw = Db.begin_txn db in
  (match Par_scan.exec_sql ~pool db rw "SELECT * FROM parts" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "expected rejection of a read-write txn");
  Db.abort db rw

(* random committed writes racing the snapshot: the frozen result set must
   match the sequential executor's on the same transaction, for any
   partitioning *)
let prop_par_scan_identical =
  QCheck2.Test.make ~name:"Par_scan = Db.exec for random tables/partitions/writes" ~count:20
    QCheck2.Gen.(
      quad (int_range 0 120) (int_range 1 13) (int_range 1 4) (int_range 0 9999))
    (fun (rows, partitions, domains, seed) ->
      let db = mk_db ~rows in
      let rng = Random.State.make [| seed |] in
      let snap = Db.begin_txn ~mode:`Snapshot db in
      (* committed writes AFTER the snapshot began: updates, deletes and
         inserts whose version entries the workers must resolve around *)
      let writes = Random.State.int rng 4 in
      for w = 0 to writes - 1 do
        Db.with_txn db (fun txn ->
            match Random.State.int rng 3 with
            | 0 when rows > 0 ->
              ignore
                (Db.update_where db txn "parts"
                   ~set:[ ("qty", Expr.Lit (Value.Int (Random.State.int rng 1000))) ]
                   ~where:
                     (Some
                        (Expr.Cmp
                           (Expr.Le, Expr.Col "part_id",
                            Expr.Lit (Value.Int (1 + Random.State.int rng rows)))))
                  : int)
            | 1 when rows > 0 ->
              ignore
                (Db.delete_where db txn "parts"
                   ~where:
                     (Some
                        (Expr.Cmp
                           (Expr.Eq, Expr.Col "part_id",
                            Expr.Lit (Value.Int (1 + Random.State.int rng rows)))))
                  : int)
            | _ ->
              let id = rows + 1 + w in
              ignore
                (Db.insert db txn "parts"
                   (Workload.gen_part (Dw_util.Prng.create ~seed:(seed + w)) ~id ~day:0)
                  : Heap_file.rid))
      done;
      Domain_pool.with_pool ~domains @@ fun pool ->
      let ok =
        List.for_all
          (fun sql ->
            let seq, par = exec_both ~pool ~partitions db snap sql in
            seq = par)
          par_queries
      in
      Db.commit db snap;
      (* and a fresh snapshot (which sees the writes) agrees too *)
      let snap2 = Db.begin_txn ~mode:`Snapshot db in
      let ok2 =
        List.for_all
          (fun sql ->
            let seq, par = exec_both ~pool ~partitions db snap2 sql in
            seq = par)
          par_queries
      in
      Db.commit db snap2;
      if not ok then
        QCheck2.Test.fail_reportf "seed %d: parallel diverged on the frozen snapshot" seed
      else if not ok2 then
        QCheck2.Test.fail_reportf "seed %d: parallel diverged on the post-write snapshot" seed
      else true)

(* readers in the pool while a writer commits on the main domain: every
   parallel result must equal the sequential result on the SAME txn (both
   run after the racing commits; the point is that striped pool frames,
   the mutexed version store and note-before-mutate keep the partition
   scans consistent while heap pages change under them) *)
let par_scan_with_live_writer () =
  let db = mk_db ~rows:300 in
  Domain_pool.with_pool ~domains:3 @@ fun pool ->
  for round = 1 to 5 do
    let snap = Db.begin_txn ~mode:`Snapshot db in
    let writer =
      Domain.spawn (fun () ->
          for i = 1 to 20 do
            Db.with_txn db (fun txn ->
                ignore
                  (Db.update_where db txn "parts"
                     ~set:[ ("qty", Expr.Lit (Value.Int (round * 1000 + i))) ]
                     ~where:
                       (Some
                          (Expr.Cmp
                             (Expr.Le, Expr.Col "part_id", Expr.Lit (Value.Int (i * 10)))))
                    : int))
          done)
    in
    (* race the scans against the writer; correctness check follows *)
    List.iter
      (fun sql -> ignore (Par_scan.exec_sql ~partitions:6 ~pool db snap sql))
      par_queries;
    Domain.join writer;
    List.iter
      (fun sql ->
        let seq, par = exec_both ~pool ~partitions:6 db snap sql in
        check Alcotest.bool (Printf.sprintf "round %d: %s" round sql) true (seq = par))
      par_queries;
    Db.commit db snap
  done

let suite =
  [
    test "domain pool runs tasks in order" pool_runs_in_order;
    test "domain pool re-raises lowest-index error" pool_reraises_lowest_index_error;
    test "domain pool rejects work after shutdown" pool_rejects_after_shutdown;
    test "lock stripes co-locate a table with its rows" stripes_colocate_table_and_rows;
    test "cross-stripe deadlock detected" cross_stripe_deadlock_detected;
    test "striped acquires independent across domains" striped_acquires_stay_independent;
    test "buffer pool clamps stripes to capacity" buffer_pool_stripes_clamp_and_serve;
    test "parallel readers see every row once" parallel_readers_see_every_row;
    test "metrics survive concurrent mutation" metrics_survive_concurrent_mutation;
    test "metrics reset races observe safely" metrics_reset_races_observe;
    test "with_sink restores on exception" with_sink_restores_on_exception;
    test "par scan identical on the standard mix" par_scan_identity_basic;
    test "par scan error parity" par_scan_error_parity;
    test "par scan identical while a writer commits" par_scan_with_live_writer;
    QCheck_alcotest.to_alcotest prop_par_scan_identical;
  ]
