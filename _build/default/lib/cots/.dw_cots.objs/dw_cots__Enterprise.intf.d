lib/cots/enterprise.mli: Dw_core Dw_engine Dw_relation Dw_sql
