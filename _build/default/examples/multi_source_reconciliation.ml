(* Replicated, heterogeneous sources: why value deltas need reconciliation
   and the Op-Delta wrapper does not (paper Sections 2.2 and 4.1).

     dune exec examples/multi_source_reconciliation.exe *)

module Workload = Dw_workload.Workload
module Delta = Dw_core.Delta
module Op_delta = Dw_core.Op_delta
module Reconcile = Dw_core.Reconcile
module Transform = Dw_core.Transform
module Enterprise = Dw_cots.Enterprise

let () =
  (* an enterprise where the logical PARTS table lives, replicated and
     renamed, in three COTS-encapsulated databases *)
  let ent =
    Enterprise.create ~sources:3 ~logical_table:"parts"
      ~logical_schema:Workload.parts_schema ()
  in
  Printf.printf "three sources hold the logical table as: %s, %s, %s\n"
    (Enterprise.physical_table ent 0)
    (Enterprise.physical_table ent 1)
    (Enterprise.physical_table ent 2);
  let rule = Enterprise.rule_to_physical ent 1 in
  Printf.printf "source 1 renames columns, e.g. part_id -> %s\n\n"
    (List.assoc "part_id" rule.Transform.column_map);

  (* business transactions run against the logical schema; the COTS layer
     fans them out to all replicas *)
  let submit sql_list =
    let stmts =
      List.map
        (fun sql ->
          match Dw_sql.Parser.parse sql with Ok s -> s | Error e -> failwith e)
        sql_list
    in
    match Enterprise.submit ent stmts with Ok () -> () | Error e -> failwith e
  in
  submit
    [ "INSERT INTO parts VALUES (1, 'bolt', 5, 0.10, DATE 0)";
      "INSERT INTO parts VALUES (2, 'nut', 9, 0.05, DATE 0)" ];
  submit [ "UPDATE parts SET qty = qty + 100 WHERE part_id = 1" ];
  submit [ "DELETE FROM parts WHERE part_id = 2" ];
  print_endline "submitted 3 business transactions (each applied to all 3 replicas)";

  (* value-delta view of the world: k streams that must be reconciled *)
  let streams = Enterprise.extract_replica_value_deltas ent in
  List.iteri
    (fun i d ->
      Printf.printf "replica %d trigger stream: %d changes, %d bytes\n" i (Delta.row_count d)
        (Delta.size_bytes d))
    streams;
  let merged, stats = Reconcile.reconcile streams in
  Printf.printf
    "reconciled: %d input changes -> %d authoritative (dropped %d duplicates, %d conflicts)\n\n"
    stats.Reconcile.input_changes stats.Reconcile.output_changes
    stats.Reconcile.duplicates_dropped stats.Reconcile.conflicts_resolved;

  (* op-delta view: captured once at the business level, above replication *)
  let ods = Enterprise.business_op_deltas ent in
  Printf.printf "Op-Delta wrapper captured %d transactions (%d bytes total):\n" (List.length ods)
    (List.fold_left (fun a od -> a + Op_delta.size_bytes od) 0 ods);
  List.iter (fun od -> Format.printf "  %a@." Op_delta.pp od) ods;

  (* soundness: reconciled value delta replayed on empty state equals any
     replica's contents *)
  let replayed = Delta.apply_to_rows merged [] in
  Printf.printf "\nreconciled delta replays to %d row(s): 2 inserts, 1 update, 1 delete -> 1\n"
    (List.length replayed);
  print_endline
    "take-away: the business level has exactly one authoritative representation of each fact; \
     extraction below the replication logic sees k of them."
