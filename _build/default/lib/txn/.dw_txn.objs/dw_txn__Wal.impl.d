lib/txn/wal.ml: Bytes Dw_storage List Log_record Printf String
