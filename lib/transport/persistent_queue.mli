(** Persistent queue with transactional dequeue (the paper's "persistent
    queues / fault tolerant logs" transport option).

    Messages are appended to a checksummed log file; the consumer position
    lives in a sidecar offset file that is only advanced by {!ack}.  After
    a crash (or plain re-open) every enqueued-but-unacked message is
    redelivered — at-least-once delivery, which is what a warehouse
    integrator needs to never lose a delta batch.

    Crash hardening on {!open_}: a torn frame at the log tail (crash
    mid-enqueue) is truncated away so later enqueues stay reachable
    ([queue.torn_frames]/[queue.torn_bytes] counters); the sidecar carries
    a checksum and is only honoured when it is whole, checksums cleanly,
    and points at a frame boundary — otherwise the position conservatively
    resets to 0 ([queue.offset_resets]), trading redelivery for the
    guarantee that an unacked message is never skipped. *)

module Vfs = Dw_storage.Vfs

type t

val open_ : Vfs.t -> name:string -> t
(** Creates the queue files if missing, otherwise recovers position. *)

val enqueue : t -> string -> unit
(** Durable once the call returns (fsync). *)

val peek : t -> string option
(** The oldest unacked message; [None] when drained. *)

val ack : t -> unit
(** Consume the message last returned by {!peek}.  Raises
    [Invalid_argument] if there is nothing to ack. *)

val pending : t -> int
(** Number of unacked messages. *)

val close : t -> unit

val enqueued_total : t -> int
(** Messages ever enqueued (including before a re-open). *)
