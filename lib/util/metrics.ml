(* Instrumentation registry: counters, gauges, log-bucketed latency
   histograms, scoped timers and trace spans, all driven by a pluggable
   clock so deterministic tests can substitute a Sim_clock.

   Domain-safety: every registry carries one mutex guarding its entry
   table and span state, so concurrent domains can mutate and fold the
   same registry without torn histograms or Hashtbl corruption.  The
   recording sink is an Atomic and is always mirrored-into OUTSIDE the
   source registry's lock, so the only lock order is source -> sink and
   no cycle can form. *)

(* ---------- histogram bucketing ----------

   Log-spaced buckets: bucket [i] covers (gamma^(i-1), gamma^i] with
   gamma = 2^(1/8), i.e. 8 buckets per doubling, bounding the relative
   quantile error at ~4.4%.  Indices are clamped to [min_bucket,
   max_bucket] (under/overflow buckets) so arbitrary inputs cannot grow
   the table without bound; exact min/max are tracked separately and
   percentile results are clamped into [min, max], which also makes the
   one-sample and overflow edges exact. *)

let gamma = Float.pow 2.0 0.125
let log_gamma = Float.log gamma
let min_bucket = -1024 (* gamma^-1024 = 2^-128: below any real latency *)
let max_bucket = 1024

let bucket_of v =
  if v <= 0.0 then min_bucket
  else
    let i = int_of_float (Float.ceil (Float.log v /. log_gamma)) in
    if i < min_bucket then min_bucket else if i > max_bucket then max_bucket else i

let bucket_upper i = Float.pow gamma (float_of_int i)

type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : (int, int ref) Hashtbl.t;
}

type entry = Counter of int ref | Gauge of float ref | Histogram of histogram

type clock = unit -> float

type span_record = {
  span_name : string;
  span_parent : string option;
  span_start : float;
  span_duration : float;
  span_deltas : (string * int) list;
}

type t = {
  entries : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  mutable clock : clock;
  mutable span_stack : open_span list;
  mutable completed_spans : span_record list; (* newest first *)
}

and open_span = {
  sp_reg : t;
  sp_name : string;
  sp_parent : string option;
  sp_start : float;
  sp_counters : (string * int) list;
  mutable sp_finished : bool;
}

let default_clock = Unix.gettimeofday

let create () =
  { entries = Hashtbl.create 32; lock = Mutex.create (); clock = default_clock;
    span_stack = []; completed_spans = [] }

(* Registry locking discipline: [locked] guards every read or write of
   [entries]/span state; nothing inside a locked region may call another
   locked operation on the same registry, nor touch a different registry
   (mirroring happens after release). *)
let locked t f = Mutex.protect t.lock f

let set_clock t clock = t.clock <- clock
let use_sim_clock t clk = t.clock <- (fun () -> float_of_int (Sim_clock.now clk))
let now t = t.clock ()

(* ---------- the recording sink ----------

   When set, every counter/gauge/histogram mutation on ANY registry is
   mirrored into the sink (and finished spans are appended to it), so a
   bench harness can capture the union of per-Vfs registries an
   experiment creates internally without threading a registry through
   every constructor.  The cell is an Atomic so concurrent domains see a
   consistent sink; prefer the scoped {!with_sink} over the raw setter,
   which restores the previous sink even when the thunk raises. *)

let the_sink : t option Atomic.t = Atomic.make None

let set_sink s = Atomic.set the_sink s
let sink () = Atomic.get the_sink

let with_sink s f =
  let old = Atomic.exchange the_sink s in
  Fun.protect ~finally:(fun () -> Atomic.set the_sink old) f

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"

let find_entry t name make =
  match Hashtbl.find_opt t.entries name with
  | Some e -> e
  | None ->
    let e = make () in
    Hashtbl.add t.entries name e;
    e

(* callers hold t.lock *)
let counter_ref t name =
  match find_entry t name (fun () -> Counter (ref 0)) with
  | Counter r -> r
  | e -> invalid_arg (Printf.sprintf "Metrics: %s is a %s, not a counter" name (kind_name e))

let gauge_ref t name =
  match find_entry t name (fun () -> Gauge (ref 0.0)) with
  | Gauge r -> r
  | e -> invalid_arg (Printf.sprintf "Metrics: %s is a %s, not a gauge" name (kind_name e))

let histogram_of t name =
  match
    find_entry t name (fun () ->
        Histogram
          { h_count = 0; h_sum = 0.0; h_min = Float.infinity; h_max = Float.neg_infinity;
            h_buckets = Hashtbl.create 16 })
  with
  | Histogram h -> h
  | e -> invalid_arg (Printf.sprintf "Metrics: %s is a %s, not a histogram" name (kind_name e))

let mirror t f = match Atomic.get the_sink with Some s when s != t -> f s | Some _ | None -> ()

(* ---------- counters ---------- *)

let rec add t name n =
  locked t (fun () ->
      let r = counter_ref t name in
      r := !r + n);
  mirror t (fun s -> add s name n)

let incr t name = add t name 1

let get t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with Some (Counter r) -> !r | Some _ | None -> 0)

(* ---------- gauges ---------- *)

let rec set_gauge t name v =
  locked t (fun () -> gauge_ref t name := v);
  mirror t (fun s -> set_gauge s name v)

let gauge t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with Some (Gauge r) -> !r | Some _ | None -> 0.0)

let gauges t =
  locked t (fun () ->
      Hashtbl.fold
        (fun k e acc -> match e with Gauge r -> (k, !r) :: acc | _ -> acc)
        t.entries [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---------- histograms ---------- *)

let rec observe t name v =
  locked t (fun () ->
      let h = histogram_of t name in
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      let i = bucket_of v in
      match Hashtbl.find_opt h.h_buckets i with
      | Some r -> Stdlib.incr r
      | None -> Hashtbl.add h.h_buckets i (ref 1));
  mirror t (fun s -> observe s name v)

let observed_count t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | Some (Histogram h) -> h.h_count
      | Some _ | None -> 0)

let observed_sum t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | Some (Histogram h) -> h.h_sum
      | Some _ | None -> 0.0)

(* callers hold the registry lock of the histogram's owner *)
let percentile_of_histogram h q =
  if h.h_count = 0 then 0.0
  else if q <= 0.0 then h.h_min
  else if q >= 1.0 then h.h_max
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int h.h_count)) in
      if r < 1 then 1 else if r > h.h_count then h.h_count else r
    in
    let buckets =
      Hashtbl.fold (fun i r acc -> (i, !r) :: acc) h.h_buckets []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let rec walk seen = function
      | [] -> h.h_max
      | (i, c) :: rest -> if seen + c >= rank then bucket_upper i else walk (seen + c) rest
    in
    let v = walk 0 buckets in
    (* clamp the bucket upper bound into the observed range: exact for
       empty/one-sample/overflow edges, and never outside [min, max] *)
    if v < h.h_min then h.h_min else if v > h.h_max then h.h_max else v
  end

let percentile t name q =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | Some (Histogram h) -> percentile_of_histogram h q
      | Some _ | None -> 0.0)

type histogram_summary = {
  count : int;
  sum : float;
  vmin : float;
  vmax : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let summary_of_histogram h =
  if h.h_count = 0 then
    { count = 0; sum = 0.0; vmin = 0.0; vmax = 0.0; p50 = 0.0; p95 = 0.0; p99 = 0.0 }
  else
    {
      count = h.h_count;
      sum = h.h_sum;
      vmin = h.h_min;
      vmax = h.h_max;
      p50 = percentile_of_histogram h 0.50;
      p95 = percentile_of_histogram h 0.95;
      p99 = percentile_of_histogram h 0.99;
    }

let summary t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | Some (Histogram h) -> Some (summary_of_histogram h)
      | Some _ | None -> None)

let histograms t =
  locked t (fun () ->
      Hashtbl.fold
        (fun k e acc ->
          match e with Histogram h -> (k, summary_of_histogram h) :: acc | _ -> acc)
        t.entries [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---------- scoped timers ---------- *)

type timer = { tm_reg : t; tm_name : string; tm_start : float }

let start_timer t name = { tm_reg = t; tm_name = name; tm_start = now t }

let stop_timer tm =
  let elapsed = now tm.tm_reg -. tm.tm_start in
  observe tm.tm_reg tm.tm_name elapsed;
  elapsed

let time t name f =
  let tm = start_timer t name in
  Fun.protect ~finally:(fun () -> ignore (stop_timer tm : float)) f

(* ---------- trace spans ---------- *)

type span = open_span

(* callers hold t.lock *)
let counters_snapshot_unlocked t =
  Hashtbl.fold (fun k e acc -> match e with Counter r -> (k, !r) :: acc | _ -> acc) t.entries []

let counters_snapshot t = locked t (fun () -> counters_snapshot_unlocked t)

let start_span t name =
  let start = now t in
  locked t (fun () ->
      let parent = match t.span_stack with [] -> None | sp :: _ -> Some sp.sp_name in
      let sp =
        { sp_reg = t; sp_name = name; sp_parent = parent; sp_start = start;
          sp_counters = counters_snapshot_unlocked t; sp_finished = false }
      in
      t.span_stack <- sp :: t.span_stack;
      sp)

let counter_deltas_unlocked ~before t =
  counters_snapshot_unlocked t
  |> List.filter_map (fun (k, v) ->
         let v0 = match List.assoc_opt k before with Some v0 -> v0 | None -> 0 in
         if v = v0 then None else Some (k, v - v0))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let finish_span sp =
  let t = sp.sp_reg in
  let stop = now t in
  let recorded =
    locked t (fun () ->
        if sp.sp_finished then None
        else begin
          sp.sp_finished <- true;
          (* tolerate missed finishes below us: drop abandoned frames *)
          t.span_stack <-
            List.filter (fun other -> other != sp && not other.sp_finished) t.span_stack;
          let record =
            {
              span_name = sp.sp_name;
              span_parent = sp.sp_parent;
              span_start = sp.sp_start;
              span_duration = stop -. sp.sp_start;
              span_deltas = counter_deltas_unlocked ~before:sp.sp_counters t;
            }
          in
          t.completed_spans <- record :: t.completed_spans;
          Some record
        end)
  in
  match recorded with
  | None -> ()
  | Some record ->
    observe t sp.sp_name record.span_duration;
    mirror t (fun s -> locked s (fun () -> s.completed_spans <- record :: s.completed_spans))

let with_span t name f =
  let sp = start_span t name in
  Fun.protect ~finally:(fun () -> finish_span sp) f

let spans t = locked t (fun () -> List.rev t.completed_spans)
let span_depth t = locked t (fun () -> List.length t.span_stack)

let clear_spans t =
  locked t (fun () ->
      t.span_stack <- [];
      t.completed_spans <- [])

(* ---------- snapshots, reset, rendering ---------- *)

let snapshot t =
  counters_snapshot t |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  (* clear entries outright: keeping zeroed keys pollutes later snapshots
     of a registry shared across experiments with stale counters *)
  locked t (fun () ->
      Hashtbl.reset t.entries;
      t.span_stack <- [];
      t.completed_spans <- [])

let diff ~before ~after =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k (-v)) before;
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt tbl k with
      | Some v0 -> Hashtbl.replace tbl k (v0 + v)
      | None -> Hashtbl.add tbl k v)
    after;
  Hashtbl.fold (fun k v acc -> if v = 0 then acc else (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (k, v) -> Format.fprintf ppf "%s = %d@," k v) (snapshot t);
  List.iter (fun (k, v) -> Format.fprintf ppf "%s = %g@," k v) (gauges t);
  List.iter
    (fun (k, s) ->
      Format.fprintf ppf "%s: n=%d sum=%.6f min=%.6f p50=%.6f p95=%.6f p99=%.6f max=%.6f@," k
        s.count s.sum s.vmin s.p50 s.p95 s.p99 s.vmax)
    (histograms t);
  Format.fprintf ppf "@]"

(* aggregate completed spans by (name, parent) for compact reporting *)
let span_rollup t =
  let completed = locked t (fun () -> t.completed_spans) in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let key = (r.span_name, r.span_parent) in
      match Hashtbl.find_opt tbl key with
      | Some (n, total) -> Hashtbl.replace tbl key (n + 1, total +. r.span_duration)
      | None -> Hashtbl.add tbl key (1, r.span_duration))
    completed;
  Hashtbl.fold (fun (name, parent) (n, total) acc -> (name, parent, n, total) :: acc) tbl []
  |> List.sort (fun (a, pa, _, _) (b, pb, _, _) -> compare (a, pa) (b, pb))

let to_json t =
  let counters = List.map (fun (k, v) -> (k, Json.Int v)) (snapshot t) in
  let gauges_j = List.map (fun (k, v) -> (k, Json.Float v)) (gauges t) in
  let histo (k, s) =
    ( k,
      Json.Obj
        [
          ("count", Json.Int s.count);
          ("sum", Json.Float s.sum);
          ("min", Json.Float s.vmin);
          ("max", Json.Float s.vmax);
          ("p50", Json.Float s.p50);
          ("p95", Json.Float s.p95);
          ("p99", Json.Float s.p99);
        ] )
  in
  let span_j (name, parent, n, total) =
    Json.Obj
      [
        ("name", Json.String name);
        ("parent", match parent with Some p -> Json.String p | None -> Json.Null);
        ("count", Json.Int n);
        ("total", Json.Float total);
      ]
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges_j);
      ("histograms", Json.Obj (List.map histo (histograms t)));
      ("spans", Json.List (List.map span_j (span_rollup t)));
    ]
