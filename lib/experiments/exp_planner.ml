(* T7 — cost-based planner vs static extraction methods under sustained
   load.

   Six identical sources run the identical Load_gen schedule (seeded,
   open-loop, virtual-time): three phases whose statement mix shifts the
   cheapest extraction method under the planner's feet — insert-heavy
   (many single-row statements), update-heavy (few wide range updates +
   deletes), scan-heavy (a DML trickle under read contention).  Five
   arms pin one static method each; the sixth runs the pipeline in
   `Planned` mode and lets Dw_etl.Planner re-choose every refresh round.

   Scoring is the planner's own objective, in deterministic work units:
   per round, extraction work (the per-method work_units hooks) + wire
   bytes x byte_unit + integration row ops.  No wall-clock anywhere, so
   the T7 gates in Bench_check are CI-stable: the planned arm must end
   byte-identical to the source, cost at most 1.15x the best static arm
   overall, and stay strictly below the worst static arm in every phase.
   The timestamp arm is EXPECTED to diverge (the update-heavy phase
   deletes rows it can never see) — that divergence is itself gated, as
   is the planner never picking timestamp into it (eligibility).

   Emitted metrics (the t7.* keys gated by Bench_check):
   - histogram loadgen.latency_ms (per-second p95 samples)
   - gauges    t7.units_<arm>, t7.units_<arm>_ph<n>, t7.planner_units,
               t7.best_static_units, t7.worst_static_units, t7.vs_best,
               t7.below_worst, t7.identical, t7.statics_identical,
               t7.timestamp_diverged, t7.switches, t7.fallbacks,
               t7.rounds, t7.offered, t7.admitted, t7.shed,
               t7.slo_breaches, t7.slo_attainment, t7.worst_p95_ms *)

module Vfs = Dw_storage.Vfs
module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Tuple = Dw_relation.Tuple
module Expr = Dw_relation.Expr
module Value = Dw_relation.Value
module Metrics = Dw_util.Metrics
module Sim_clock = Dw_util.Sim_clock
module Workload = Dw_workload.Workload
module Load_gen = Dw_workload.Load_gen
module Snapshot_extract = Dw_core.Snapshot_extract
module Warehouse = Dw_warehouse.Warehouse
module Pipeline = Dw_etl.Pipeline
module Planner = Dw_etl.Planner
open Bench_support

let phase_kinds = [ Load_gen.Insert_heavy; Load_gen.Update_heavy; Load_gen.Scan_heavy ]
let phase_count = List.length phase_kinds

let phase_index = function
  | Load_gen.Insert_heavy -> 0
  | Load_gen.Update_heavy -> 1
  | Load_gen.Scan_heavy -> 2

type arm_kind = { label : string; method_ : Pipeline.method_ }

let static_arms =
  [
    { label = "trigger"; method_ = Pipeline.Trigger };
    { label = "log"; method_ = Pipeline.Log };
    { label = "op-delta"; method_ = Pipeline.Op_delta_wrapper };
    { label = "snapshot"; method_ = Pipeline.Snapshot Snapshot_extract.Sort_merge };
    { label = "timestamp"; method_ = Pipeline.Timestamp };
  ]

let planned_arm = { label = "planned"; method_ = Pipeline.Planned }

(* arm-invariant schedule: the generator's queue model depends only on
   the op mix, never on the extraction method, so every arm admits the
   identical op sequence and the cost comparison is apples-to-apples *)
let lg_config ~rate ~seconds =
  {
    Load_gen.default_config with
    Load_gen.phases =
      List.map (fun kind -> { Load_gen.kind; rate; seconds }) phase_kinds;
  }

let exec_stmts db cap stmts =
  match cap with
  | Some cap -> (
      match Dw_core.Opdelta_capture.exec_txn cap stmts with
      | Ok _ -> ()
      | Error e -> failwith ("t7: captured transaction failed: " ^ e))
  | None ->
    Db.with_txn db (fun txn ->
        List.iter (fun s -> ignore (Db.exec db txn s : Db.exec_result)) stmts)

let exec_op db cap lg op =
  match op with
  | Load_gen.Scan rows ->
    (* read-only range scan straight at the source engine: it drives the
       generator's contention signal, not the delta stream *)
    Db.with_txn db (fun txn ->
        ignore
          (Db.select db txn Workload.parts_table
             ~where:(Expr.Cmp (Expr.Le, Expr.Col "part_id", Expr.Lit (Value.Int rows)))
             ()
            : Tuple.t list))
  | Load_gen.Dml _ -> exec_stmts db cap (Load_gen.stmts_of_op lg ~day:(Db.current_day db) op)

let sorted_rows db =
  let rows = ref [] in
  Table.scan (Db.table db Workload.parts_table) (fun _ t -> rows := t :: !rows);
  List.sort Tuple.compare !rows

type arm_result = {
  a_label : string;
  phase_units : float array;
  total_units : float;
  identical : bool;
  rounds : int;
  switches : int;  (* planned arm only; 0 otherwise *)
  fallbacks : int;
  lg_summary : Load_gen.summary;
}

let byte_unit = Planner.default_config.Planner.byte_unit

let run_arm metrics ~rows ~seed ~rate ~seconds ~ticks_per_round arm =
  let src = Db.create ~archive_log:true ~vfs:(Vfs.in_memory ()) ~name:("t7_" ^ arm.label) () in
  ignore (Workload.create_parts_table src : Table.t);
  let wh = Warehouse.create ~vfs:(Vfs.in_memory ()) ~name:("t7_wh_" ^ arm.label) () in
  Warehouse.add_replica wh ~table:Workload.parts_table ~schema:Workload.parts_schema;
  let lock_wait = ref 0.0 in
  let signals () = { Pipeline.lock_wait_p95_s = !lock_wait; ship_p95_s = 0.0 } in
  let planner =
    match arm.method_ with
    | Pipeline.Planned -> Some (Planner.create ~metrics ())
    | _ -> None
  in
  let pipe =
    Pipeline.create ?planner ~signals ~source:src ~warehouse:wh ~table:Workload.parts_table
      ~method_:arm.method_ ~transport:Pipeline.Direct ()
  in
  let cap = Pipeline.capture pipe in
  (* initial load as logged transactions so every installed capture
     channel observes it, then one un-scored round ships it *)
  let chunk = 50 in
  let rec load first =
    if first <= rows then begin
      let size = min chunk (rows - first + 1) in
      exec_stmts src cap
        (Workload.insert_parts_txn ~seed ~first_id:first ~size ~day:(Db.current_day src) ());
      load (first + size)
    end
  in
  load 1;
  (match Pipeline.run_round pipe with
   | Ok _ -> ()
   | Error e -> failwith ("t7: initial-load round failed: " ^ e));
  let clock = Sim_clock.create () in
  let lg =
    Load_gen.create ~config:(lg_config ~rate ~seconds) ~metrics ~seed ~clock
      ~existing_ids:rows ()
  in
  let phase_units = Array.make phase_count 0.0 in
  let rounds = ref 0 in
  while not (Load_gen.finished lg) do
    Db.advance_day src;
    let phase = ref 0 in
    for _ = 1 to ticks_per_round do
      let ts = Load_gen.tick lg in
      lock_wait := ts.Load_gen.lock_wait_p95_s;
      phase := phase_index ts.Load_gen.phase;
      List.iter (exec_op src cap lg) ts.Load_gen.ops
    done;
    match Pipeline.run_round pipe with
    | Error e -> failwith ("t7: refresh round failed: " ^ e)
    | Ok stats ->
      incr rounds;
      let units =
        stats.Pipeline.extract_units
        +. (byte_unit *. float_of_int stats.Pipeline.shipped_bytes)
        +. float_of_int stats.Pipeline.integration.Warehouse.row_ops
      in
      phase_units.(!phase) <- phase_units.(!phase) +. units
  done;
  let identical = sorted_rows src = sorted_rows (Warehouse.db wh) in
  {
    a_label = arm.label;
    phase_units;
    total_units = Array.fold_left ( +. ) 0.0 phase_units;
    identical;
    rounds = !rounds;
    switches = (match planner with Some p -> Planner.switches p | None -> 0);
    fallbacks = Pipeline.fallbacks pipe;
    lg_summary = Load_gen.summary lg;
  }

let gauge_label label = String.map (function '-' -> '_' | c -> c) label

let run_t7 ~scale =
  section "T7: cost-based planner vs static methods under sustained load";
  let rows = scaled 1_500 ~scale in
  let seed = 2007 in
  let rate = 40 in
  let seconds = if is_quick () then 8 else 30 in
  let ticks_per_round = if is_quick () then 2 else 3 in
  let metrics = Metrics.create () in
  let run = run_arm metrics ~rows ~seed ~rate ~seconds ~ticks_per_round in
  let planned = run planned_arm in
  let statics = List.map run static_arms in
  let all = planned :: statics in
  List.iter
    (fun a ->
      let l = gauge_label a.a_label in
      Metrics.set_gauge metrics (Printf.sprintf "t7.units_%s" l) a.total_units;
      Array.iteri
        (fun i u -> Metrics.set_gauge metrics (Printf.sprintf "t7.units_%s_ph%d" l (i + 1)) u)
        a.phase_units)
    all;
  let best = List.fold_left (fun acc a -> Float.min acc a.total_units) infinity statics in
  let worst = List.fold_left (fun acc a -> Float.max acc a.total_units) 0.0 statics in
  let vs_best = planned.total_units /. best in
  let below_worst =
    List.for_all
      (fun i ->
        let worst_ph =
          List.fold_left (fun acc a -> Float.max acc a.phase_units.(i)) 0.0 statics
        in
        planned.phase_units.(i) < worst_ph)
      (List.init phase_count Fun.id)
  in
  let statics_identical =
    List.for_all (fun a -> a.a_label = "timestamp" || a.identical) statics
  in
  let ts_arm = List.find (fun a -> a.a_label = "timestamp") statics in
  let s = planned.lg_summary in
  Metrics.set_gauge metrics "t7.planner_units" planned.total_units;
  Metrics.set_gauge metrics "t7.best_static_units" best;
  Metrics.set_gauge metrics "t7.worst_static_units" worst;
  Metrics.set_gauge metrics "t7.vs_best" vs_best;
  Metrics.set_gauge metrics "t7.below_worst" (if below_worst then 1.0 else 0.0);
  Metrics.set_gauge metrics "t7.identical" (if planned.identical then 1.0 else 0.0);
  Metrics.set_gauge metrics "t7.statics_identical" (if statics_identical then 1.0 else 0.0);
  Metrics.set_gauge metrics "t7.timestamp_diverged" (if ts_arm.identical then 0.0 else 1.0);
  Metrics.set_gauge metrics "t7.switches" (float_of_int planned.switches);
  Metrics.set_gauge metrics "t7.fallbacks" (float_of_int planned.fallbacks);
  Metrics.set_gauge metrics "t7.rounds" (float_of_int planned.rounds);
  Metrics.set_gauge metrics "t7.offered" (float_of_int s.Load_gen.total_offered);
  Metrics.set_gauge metrics "t7.admitted" (float_of_int s.Load_gen.total_admitted);
  Metrics.set_gauge metrics "t7.shed" (float_of_int s.Load_gen.total_shed);
  Metrics.set_gauge metrics "t7.slo_breaches" (float_of_int s.Load_gen.slo_breaches);
  Metrics.set_gauge metrics "t7.slo_attainment" s.Load_gen.slo_attainment;
  Metrics.set_gauge metrics "t7.worst_p95_ms" s.Load_gen.worst_p95_ms;
  print_table
    ~title:
      (Printf.sprintf
         "%d-row source, %d op/s open loop, 3 phases x %ds, refresh every %d virtual s \
          (work units: extraction + %.2f/wire-byte + integration row ops)"
         rows rate seconds ticks_per_round byte_unit)
    ~header:
      ([ "arm"; "total units" ]
      @ List.map (fun k -> Load_gen.phase_name k) phase_kinds
      @ [ "identical" ])
    ~rows:
      (List.map
         (fun a ->
           [
             a.a_label;
             Printf.sprintf "%.0f" a.total_units;
             Printf.sprintf "%.0f" a.phase_units.(0);
             Printf.sprintf "%.0f" a.phase_units.(1);
             Printf.sprintf "%.0f" a.phase_units.(2);
             (if a.identical then "yes" else if a.a_label = "timestamp" then "no (expected)" else "NO");
           ])
         all);
  Printf.printf
    "planner: %.0f units vs best static %.0f (%.2fx), worst %.0f; %d switches, %d \
     correctness fallbacks over %d rounds\n\
     load: %d offered, %d admitted, %d shed by the AIMD valve; SLO attainment %.0f%% \
     (worst p95 %.0f ms)\n\
     shape check: the planner tracks the per-phase winner as the mix shifts, so its total \
     sits at the static methods' lower envelope — no single static arm can do that across \
     all three phases\n"
    planned.total_units best vs_best worst planned.switches planned.fallbacks planned.rounds
    s.Load_gen.total_offered s.Load_gen.total_admitted s.Load_gen.total_shed
    (100.0 *. s.Load_gen.slo_attainment)
    s.Load_gen.worst_p95_ms
