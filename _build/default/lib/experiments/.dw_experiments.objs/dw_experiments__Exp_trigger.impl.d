lib/experiments/exp_trigger.ml: Array Bench_support Dw_core Dw_engine Dw_relation Dw_storage Dw_workload List Printf
