(* Tests for the snapshot-isolation read path: version-store semantics
   through Db (visibility, transaction consistency, read-only
   enforcement, GC, abort/rid stability, recovery reset), lock-free OLAP
   over the warehouse, batched-vs-sequential refresh equivalence under
   concurrent snapshot readers, and a qcheck property that a reader's
   snapshot is exactly the committed-prefix state it began at. *)

module Vfs = Dw_storage.Vfs
module Metrics = Dw_util.Metrics
module Prng = Dw_util.Prng
module Value = Dw_relation.Value
module Tuple = Dw_relation.Tuple
module Expr = Dw_relation.Expr
module Heap_file = Dw_storage.Heap_file
module Lock_manager = Dw_txn.Lock_manager
module Version_store = Dw_txn.Version_store
module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Scheduler = Dw_engine.Scheduler
module Workload = Dw_workload.Workload
module Op_delta = Dw_core.Op_delta
module Warehouse = Dw_warehouse.Warehouse
module Olap = Dw_warehouse.Olap

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let mk_db ?metrics ?(rows = 20) () =
  let vfs = match metrics with Some m -> Vfs.in_memory ~metrics:m () | None -> Vfs.in_memory () in
  let db = Db.create ~vfs ~name:"db" () in
  let _ = Workload.create_parts_table db in
  if rows > 0 then Workload.load_parts db ~rows ();
  db

let exec db txn stmt = ignore (Db.exec db txn stmt : Db.exec_result)
let select_all db txn = Db.select db txn "parts" ()
let count db txn = List.length (select_all db txn)

let sorted_rows rows = List.sort Tuple.compare rows

let id_pred id = Expr.Cmp (Expr.Eq, Expr.Col "part_id", Expr.Lit (Value.Int id))

(* ---------- basic visibility ---------- *)

let snapshot_sees_begin_state () =
  let db = mk_db () in
  let snap = Db.begin_txn ~mode:`Snapshot db in
  let before = sorted_rows (select_all db snap) in
  (* a full mix of committed changes after the snapshot began *)
  Db.with_txn db (fun txn ->
      exec db txn (Workload.update_parts_stmt ~first_id:1 ~size:5);
      exec db txn (Workload.delete_parts_stmt ~first_id:6 ~size:5);
      List.iter (exec db txn) (Workload.insert_parts_txn ~first_id:21 ~size:5 ~day:0 ()));
  check Alcotest.int "snapshot row count frozen" 20 (count db snap);
  check Alcotest.bool "snapshot rows unchanged" true
    (sorted_rows (select_all db snap) = before);
  Db.commit db snap;
  (* a fresh snapshot sees the new state *)
  let snap2 = Db.begin_txn ~mode:`Snapshot db in
  check Alcotest.int "new snapshot sees the commit" 20 (count db snap2);
  check Alcotest.int "deleted rows gone for new snapshot" 0
    (List.length (Db.select db snap2 "parts" ~where:(id_pred 6) ()));
  Db.commit db snap2

let snapshot_ignores_uncommitted () =
  let db = mk_db () in
  (* writer first, then the snapshot: pending before-images must win over
     the writer's in-place heap updates *)
  let writer = Db.begin_txn db in
  ignore (Db.update_where db writer "parts"
            ~set:[ ("qty", Expr.Lit (Value.Int 0)) ] ~where:None : int);
  let snap = Db.begin_txn ~mode:`Snapshot db in
  List.iter
    (fun row ->
      match row.(2) with
      | Value.Int 0 -> Alcotest.fail "snapshot saw an uncommitted qty"
      | _ -> ())
    (select_all db snap);
  Db.commit db writer;
  (* even after the writer commits: its CSN is above the snapshot's *)
  List.iter
    (fun row ->
      match row.(2) with
      | Value.Int 0 -> Alcotest.fail "snapshot saw a post-begin commit"
      | _ -> ())
    (select_all db snap);
  Db.commit db snap

let snapshot_find_by_key_versions () =
  let db = mk_db () in
  let key id = [| Value.Int id |] in
  let snap = Db.begin_txn ~mode:`Snapshot db in
  let orig =
    match Db.find_by_key db snap "parts" (key 3) with
    | Some (_, t) -> t
    | None -> Alcotest.fail "row 3 missing"
  in
  Db.with_txn db (fun txn ->
      ignore (Db.delete_where db txn "parts" ~where:(Some (id_pred 3)) : int);
      List.iter (exec db txn) (Workload.insert_parts_txn ~first_id:40 ~size:1 ~day:0 ()));
  (* deleted row still resolvable through its chain; post-begin insert absent *)
  (match Db.find_by_key db snap "parts" (key 3) with
   | Some (_, t) -> check Alcotest.bool "image is the original tuple" true (Tuple.compare t orig = 0)
   | None -> Alcotest.fail "snapshot lost the deleted row");
  check Alcotest.bool "post-begin insert invisible" true
    (Db.find_by_key db snap "parts" (key 40) = None);
  Db.commit db snap;
  let snap2 = Db.begin_txn ~mode:`Snapshot db in
  check Alcotest.bool "new snapshot: delete visible" true
    (Db.find_by_key db snap2 "parts" (key 3) = None);
  check Alcotest.bool "new snapshot: insert visible" true
    (Db.find_by_key db snap2 "parts" (key 40) <> None);
  Db.commit db snap2

(* ---------- lock freedom ---------- *)

let snapshot_takes_no_locks () =
  let metrics = Metrics.create () in
  let db = mk_db ~metrics () in
  (* a writer holds the table X lock with uncommitted work *)
  let writer = Db.begin_txn db in
  ignore (Db.update_where db writer "parts"
            ~set:[ ("qty", Expr.Lit (Value.Int 0)) ] ~where:None : int);
  let acquires_before = Metrics.get metrics "lock.acquires" in
  let snap = Db.begin_txn ~mode:`Snapshot db in
  check Alcotest.int "reads under a writer's X lock" 20 (count db snap);
  ignore (Db.find_by_key db snap "parts" [| Value.Int 1 |]
          : (Heap_file.rid * Tuple.t) option);
  check Alcotest.bool "holds no lock resources" true
    (Lock_manager.held_by (Db.locks db) (Db.txid snap) = []);
  check Alcotest.int "no lock acquisitions at all" acquires_before
    (Metrics.get metrics "lock.acquires");
  check Alcotest.int "lock.wait histogram empty" 0 (Metrics.observed_count metrics "lock.wait");
  Db.commit db snap;
  Db.commit db writer

let snapshot_is_read_only () =
  let db = mk_db () in
  let snap = Db.begin_txn ~mode:`Snapshot db in
  let rejects f = try f (); Alcotest.fail "expected Invalid_argument" with Invalid_argument _ -> () in
  rejects (fun () ->
      ignore (Db.insert db snap "parts" (Workload.gen_part (Prng.create ~seed:1) ~id:99 ~day:0)
              : Heap_file.rid));
  rejects (fun () ->
      ignore (Db.update_where db snap "parts"
                ~set:[ ("qty", Expr.Lit (Value.Int 1)) ] ~where:None : int));
  rejects (fun () -> ignore (Db.delete_where db snap "parts" ~where:None : int));
  (* exec_sql maps Invalid_argument into its error result *)
  (match Db.exec_sql db snap "CREATE TABLE t (a INT KEY)" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "CREATE TABLE through a snapshot succeeded");
  check Alcotest.int "nothing changed" 20 (count db snap);
  Db.commit db snap

(* ---------- abort and rid stability ---------- *)

let abort_keeps_snapshot_exact () =
  let db = mk_db () in
  let snap = Db.begin_txn ~mode:`Snapshot db in
  let before = sorted_rows (select_all db snap) in
  (* delete then insert (the freed slot may be reused), then abort: the
     undo path must restore rows at their original rids so the snapshot
     neither loses nor double-counts a row *)
  let txn = Db.begin_txn db in
  ignore (Db.delete_where db txn "parts"
            ~where:(Some (Expr.Cmp (Expr.Le, Expr.Col "part_id", Expr.Lit (Value.Int 5)))) : int);
  List.iter (exec db txn) (Workload.insert_parts_txn ~first_id:30 ~size:5 ~day:0 ());
  Db.abort db txn;
  check Alcotest.bool "snapshot unchanged across abort" true
    (sorted_rows (select_all db snap) = before);
  Db.commit db snap;
  let rw = Db.begin_txn db in
  check Alcotest.int "heap restored" 20 (count db rw);
  check Alcotest.int "no stray versions after abort"
    0 (Version_store.entries (Db.version_store db));
  Db.commit db rw

(* ---------- garbage collection ---------- *)

let gc_bounded_by_oldest_reader () =
  let db = mk_db () in
  let vs = Db.version_store db in
  let snap = Db.begin_txn ~mode:`Snapshot db in
  Db.with_txn db (fun txn ->
      ignore (Db.update_where db txn "parts"
                ~set:[ ("qty", Expr.Lit (Value.Int 7)) ] ~where:None : int));
  check Alcotest.bool "versions pinned by the reader" true (Version_store.entries vs > 0);
  check Alcotest.int "reader still resolves old rows" 20 (count db snap);
  Db.commit db snap;
  (* last reader gone: the commit's GC pass drops everything *)
  check Alcotest.int "store drained after last reader" 0 (Version_store.entries vs)

let gc_without_readers_is_immediate () =
  let db = mk_db () in
  Db.with_txn db (fun txn ->
      ignore (Db.update_where db txn "parts"
                ~set:[ ("qty", Expr.Lit (Value.Int 7)) ] ~where:None : int));
  check Alcotest.int "no readers: nothing retained" 0
    (Version_store.entries (Db.version_store db))

let recovery_resets_version_store () =
  let vfs = Vfs.in_memory () in
  let db = Db.create ~vfs ~name:"db" () in
  let _ = Workload.create_parts_table db in
  Db.with_txn db (fun txn ->
      List.iter (exec db txn) (Workload.insert_parts_txn ~first_id:1 ~size:10 ~day:0 ()));
  (* pin some versions with a still-open reader, then crash *)
  let snap = Db.begin_txn ~mode:`Snapshot db in
  Db.with_txn db (fun txn ->
      ignore (Db.update_where db txn "parts"
                ~set:[ ("qty", Expr.Lit (Value.Int 1)) ] ~where:None : int));
  check Alcotest.bool "versions live pre-crash" true
    (Version_store.entries (Db.version_store db) > 0);
  ignore snap;
  Vfs.crash_reset vfs;
  let db2, _stats =
    Db.reopen ~vfs ~name:"db"
      ~tables:[ ("parts", Workload.parts_schema, Some "last_modified") ] ()
  in
  check Alcotest.int "recovered store is empty" 0
    (Version_store.entries (Db.version_store db2));
  let snap2 = Db.begin_txn ~mode:`Snapshot db2 in
  check Alcotest.int "snapshot over recovered state" 10 (count db2 snap2);
  Db.commit db2 snap2

(* ---------- OLAP over the warehouse ---------- *)

let mk_wh ?(parts = 50) () =
  let wh = Warehouse.create ~vfs:(Vfs.in_memory ()) ~name:"dw" () in
  Warehouse.add_replica wh ~table:"parts" ~schema:Workload.parts_schema;
  let rng = Prng.create ~seed:77 in
  Warehouse.load_replica wh ~table:"parts"
    (List.init parts (fun i -> Workload.gen_part rng ~id:(i + 1) ~day:0));
  wh

let olap_snapshot_never_blocks () =
  let wh = mk_wh () in
  let db = Warehouse.db wh in
  let metrics = Db.metrics db in
  let ods =
    List.init 8 (fun i ->
        Op_delta.make ~txn_id:i [ Workload.update_parts_stmt ~first_id:(1 + (i * 6)) ~size:5 ])
  in
  let integrator =
    {
      Scheduler.name = "integrator";
      start_at = 0;
      work = (fun () -> ignore (Warehouse.integrate_op_deltas_batched wh ods : Warehouse.stats));
    }
  in
  let readers =
    List.init 4 (fun i ->
        {
          Scheduler.name = Printf.sprintf "olap-%d" i;
          start_at = 1 + i;
          work =
            (fun () ->
              (* default mode is `Snapshot *)
              match Olap.run_all wh (Olap.standard_queries ~table:"parts") with
              | _, Some e -> failwith e
              | results, None ->
                if List.length results <> 5 then failwith "short result list");
        })
  in
  let r = Scheduler.run db (integrator :: readers) in
  List.iter
    (fun s ->
      (match s.Scheduler.failed with
       | Some e -> Alcotest.failf "session %s failed: %s" s.Scheduler.session e
       | None -> ());
      if s.Scheduler.session <> "integrator" then
        check Alcotest.int (s.Scheduler.session ^ " never blocked") 0 s.Scheduler.blocked_slices)
    r.Scheduler.sessions;
  check Alcotest.int "lock.wait empty for the whole run" 0
    (Metrics.observed_count metrics "lock.wait")

let olap_run_all_keeps_prefix () =
  let wh = mk_wh () in
  let queries =
    [
      { Olap.name = "ok-1"; sql = "SELECT COUNT(*) FROM parts" };
      { Olap.name = "ok-2"; sql = "SELECT SUM(qty) FROM parts" };
      { Olap.name = "bad"; sql = "SELECT nope FROM parts" };
      { Olap.name = "never-runs"; sql = "SELECT COUNT(*) FROM parts" };
    ]
  in
  match Olap.run_all wh queries with
  | results, Some err ->
    check Alcotest.int "completed prefix preserved" 2 (List.length results);
    check (Alcotest.list Alcotest.string) "prefix in order" [ "ok-1"; "ok-2" ]
      (List.map (fun r -> r.Olap.query) results);
    check Alcotest.bool "error names the failing query" true
      (String.length err >= 3 && String.sub err 0 3 = "bad")
  | _, None -> Alcotest.fail "expected a failure"

let batched_equals_sequential_under_readers () =
  (* the batched integrator must produce the same final replica state as
     sequential apply even while snapshot readers run concurrently, and
     the readers must each see one of the source-transaction-boundary
     states (transaction consistency), never a torn intermediate *)
  let rows = 40 in
  let rng = Prng.create ~seed:5 in
  let mix = Workload.gen_mix rng ~existing_ids:rows ~txns:12 ~max_txn_size:5 in
  let ods =
    List.mapi (fun i op -> Op_delta.make ~txn_id:i (Workload.op_to_stmts ~seed:5 ~day:0 op)) mix
  in
  let wh_seq = mk_wh ~parts:rows () in
  ignore (Warehouse.integrate_op_deltas wh_seq ods : Warehouse.stats);
  let wh = mk_wh ~parts:rows () in
  let db = Warehouse.db wh in
  (* record every committed state the batched run can pass through:
     sequential prefixes of the op-delta stream *)
  let prefix_states =
    let wh_p = mk_wh ~parts:rows () in
    let states = ref [ sorted_rows (Warehouse.replica_rows wh_p "parts") ] in
    List.iter
      (fun od ->
        ignore (Warehouse.integrate_op_delta wh_p od : Warehouse.stats);
        states := sorted_rows (Warehouse.replica_rows wh_p "parts") :: !states)
      ods;
    !states
  in
  let observed = ref [] in
  let integrator =
    {
      Scheduler.name = "integrator";
      start_at = 0;
      work = (fun () -> ignore (Warehouse.integrate_op_deltas_batched wh ods : Warehouse.stats));
    }
  in
  let readers =
    List.init 5 (fun i ->
        {
          Scheduler.name = Printf.sprintf "reader-%d" i;
          start_at = 1 + (i * 2);
          work =
            (fun () ->
              let snap = Db.begin_txn ~mode:`Snapshot db in
              observed := sorted_rows (select_all db snap) :: !observed;
              Db.commit db snap);
        })
  in
  let r = Scheduler.run db (integrator :: readers) in
  List.iter
    (fun s ->
      match s.Scheduler.failed with
      | Some e -> Alcotest.failf "session %s failed: %s" s.Scheduler.session e
      | None -> check Alcotest.int (s.Scheduler.session ^ " lock-free") 0 s.Scheduler.blocked_slices)
    r.Scheduler.sessions;
  check Alcotest.bool "batched final state = sequential final state" true
    (sorted_rows (Warehouse.replica_rows wh "parts")
    = sorted_rows (Warehouse.replica_rows wh_seq "parts"));
  List.iter
    (fun state ->
      check Alcotest.bool "reader saw a source-txn-boundary state" true
        (List.exists (fun p -> p = state) prefix_states))
    !observed

(* ---------- the snapshot-exactness property ---------- *)

(* Interleave random committed transactions with snapshot readers opened
   at random points: each reader, queried at the very end, must see
   exactly the committed-prefix state that was current when it began. *)
let prop_snapshot_is_committed_prefix =
  QCheck2.Test.make ~name:"snapshot = committed prefix under interleaved commits" ~count:30
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 1 12))
    (fun (seed, txns) ->
      let rows = 25 in
      let db = mk_db ~rows () in
      let rng = Prng.create ~seed in
      let mix = Workload.gen_mix rng ~existing_ids:rows ~txns ~max_txn_size:5 in
      let expected = ref [] in
      (* snapshot + independently captured state at every prefix point *)
      let open_reader () =
        let state =
          let rw = Db.begin_txn db in
          let s = sorted_rows (select_all db rw) in
          Db.commit db rw;
          s
        in
        let snap = Db.begin_txn ~mode:`Snapshot db in
        expected := (snap, state) :: !expected
      in
      open_reader ();
      List.iteri
        (fun i op ->
          Db.with_txn db (fun txn ->
              List.iter (exec db txn) (Workload.op_to_stmts ~seed ~day:0 op));
          if i mod 2 = Prng.int rng 2 then open_reader ())
        mix;
      let ok =
        List.for_all
          (fun (snap, state) ->
            let got = sorted_rows (select_all db snap) in
            Db.commit db snap;
            got = state)
          !expected
      in
      if not ok then QCheck2.Test.fail_reportf "seed %d: a snapshot diverged from its prefix" seed
      else begin
        (* all readers closed: everything must be collectable *)
        if Version_store.entries (Db.version_store db) <> 0 then
          QCheck2.Test.fail_reportf "seed %d: version store not drained" seed
        else true
      end)

let suite =
  [
    test "snapshot sees begin-time state" snapshot_sees_begin_state;
    test "snapshot ignores uncommitted and later commits" snapshot_ignores_uncommitted;
    test "find_by_key resolves versions" snapshot_find_by_key_versions;
    test "snapshot takes no locks, lock.wait empty" snapshot_takes_no_locks;
    test "snapshot transactions are read-only" snapshot_is_read_only;
    test "abort keeps snapshots exact (rid stability)" abort_keeps_snapshot_exact;
    test "gc bounded by oldest reader" gc_bounded_by_oldest_reader;
    test "gc immediate without readers" gc_without_readers_is_immediate;
    test "recovery resets the version store" recovery_resets_version_store;
    test "olap snapshot readers never block" olap_snapshot_never_blocks;
    test "run_all returns completed prefix on failure" olap_run_all_keeps_prefix;
    test "batched = sequential under snapshot readers" batched_equals_sequential_under_readers;
    QCheck_alcotest.to_alcotest prop_snapshot_is_committed_prefix;
  ]
