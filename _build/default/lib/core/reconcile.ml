module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple

type stats = {
  input_changes : int;
  output_changes : int;
  duplicates_dropped : int;
  conflicts_resolved : int;
}

let kind_tag = function
  | Delta.Insert _ -> 0
  | Delta.Delete _ -> 1
  | Delta.Update _ -> 2
  | Delta.Upsert _ -> 3

let images_equal a b =
  match a, b with
  | Delta.Insert x, Delta.Insert y
  | Delta.Delete x, Delta.Delete y
  | Delta.Upsert x, Delta.Upsert y ->
    Tuple.equal x y
  | Delta.Update (bx, ax), Delta.Update (by, ay) -> Tuple.equal bx by && Tuple.equal ax ay
  | (Delta.Insert _ | Delta.Delete _ | Delta.Update _ | Delta.Upsert _), _ -> false

let reconcile deltas =
  match deltas with
  | [] -> invalid_arg "Reconcile.reconcile: empty input"
  | first :: rest ->
    List.iter
      (fun d ->
        if d.Delta.table <> first.Delta.table || not (Schema.equal d.Delta.schema first.Delta.schema)
        then invalid_arg "Reconcile.reconcile: replica streams disagree on table/schema")
      rest;
    let schema = first.Delta.schema in
    let input_changes =
      List.fold_left (fun acc d -> acc + List.length d.Delta.changes) 0 deltas
    in
    (* occurrence-indexed matching: the i-th (key, kind) occurrence in one
       stream matches the i-th occurrence in every other stream, so
       repeated changes to the same key are preserved *)
    let occurrence_key change counter_of =
      let key = Delta.change_key schema change in
      let base = Printf.sprintf "%s/%d" (Tuple.to_string key) (kind_tag change) in
      let n = counter_of base in
      Printf.sprintf "%s/%d" base n
    in
    let kept : (string, Delta.change) Hashtbl.t = Hashtbl.create 64 in
    let order = ref [] in
    let duplicates = ref 0 in
    let conflicts = ref 0 in
    List.iteri
      (fun _priority d ->
        let counters : (string, int) Hashtbl.t = Hashtbl.create 16 in
        let counter_of base =
          let n = match Hashtbl.find_opt counters base with Some n -> n | None -> 0 in
          Hashtbl.replace counters base (n + 1);
          n
        in
        List.iter
          (fun change ->
            let okey = occurrence_key change counter_of in
            match Hashtbl.find_opt kept okey with
            | None ->
              Hashtbl.add kept okey change;
              order := okey :: !order
            | Some authoritative ->
              incr duplicates;
              if not (images_equal authoritative change) then incr conflicts)
          d.Delta.changes)
      deltas;
    let changes = List.rev_map (fun okey -> Hashtbl.find kept okey) !order in
    ( Delta.make ~table:first.Delta.table ~schema changes,
      {
        input_changes;
        output_changes = List.length changes;
        duplicates_dropped = !duplicates;
        conflicts_resolved = !conflicts;
      } )
