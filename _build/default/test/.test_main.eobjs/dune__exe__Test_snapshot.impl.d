test/test_snapshot.ml: Alcotest Array Bytes Dw_relation Dw_snapshot Dw_storage Dw_util Fun Hashtbl List QCheck2 QCheck_alcotest Result
