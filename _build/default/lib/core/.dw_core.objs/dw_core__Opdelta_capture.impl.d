lib/core/opdelta_capture.ml: Array Buffer Bytes Dw_engine Dw_relation Dw_sql Dw_storage List Op_delta Option Printf Self_maintain Spj_view String
