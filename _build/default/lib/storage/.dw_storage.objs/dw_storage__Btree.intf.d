lib/storage/btree.mli: Dw_relation
