test/test_relation.ml: Alcotest Array Bytes Dw_relation List QCheck2 QCheck_alcotest Result String
