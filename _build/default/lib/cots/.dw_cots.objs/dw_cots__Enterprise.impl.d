lib/cots/enterprise.ml: Array Dw_core Dw_engine Dw_relation Dw_sql Dw_storage List Printf
