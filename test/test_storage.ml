(* Tests for Dw_storage: vfs backends, pages, buffer pool, heap files,
   B+tree (with a qcheck model test against Map). *)

module Vfs = Dw_storage.Vfs
module Page = Dw_storage.Page
module Buffer_pool = Dw_storage.Buffer_pool
module Heap_file = Dw_storage.Heap_file
module Btree = Dw_storage.Btree
module Metrics = Dw_util.Metrics
module Value = Dw_relation.Value
module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

(* ---------- vfs ---------- *)

let vfs_mem_basics () =
  let vfs = Vfs.in_memory () in
  let f = Vfs.create vfs "a.dat" in
  let off = Vfs.append f (Bytes.of_string "hello") in
  check Alcotest.int "first append at 0" 0 off;
  ignore (Vfs.append f (Bytes.of_string " world") : int);
  check Alcotest.int "size" 11 (Vfs.size f);
  let data = Vfs.read_at f ~off:6 ~len:5 in
  check Alcotest.string "read" "world" (Bytes.to_string data);
  Vfs.write_at f ~off:0 (Bytes.of_string "HELLO");
  check Alcotest.string "overwrite" "HELLO" (Bytes.to_string (Vfs.read_at f ~off:0 ~len:5));
  Vfs.close f

let vfs_read_bounds () =
  let vfs = Vfs.in_memory () in
  let f = Vfs.create vfs "b.dat" in
  ignore (Vfs.append f (Bytes.of_string "abc") : int);
  (try
     ignore (Vfs.read_at f ~off:1 ~len:5);
     Alcotest.fail "expected out-of-range failure"
   with Invalid_argument _ -> ());
  Vfs.close f

let vfs_metrics_accounting () =
  let m = Metrics.create () in
  let vfs = Vfs.in_memory ~metrics:m () in
  let f = Vfs.create vfs "c.dat" in
  ignore (Vfs.append f (Bytes.make 100 'x') : int);
  ignore (Vfs.read_at f ~off:0 ~len:50);
  Vfs.fsync f;
  check Alcotest.int "write bytes" 100 (Metrics.get m "vfs.write_bytes");
  check Alcotest.int "read bytes" 50 (Metrics.get m "vfs.read_bytes");
  check Alcotest.int "fsyncs" 1 (Metrics.get m "vfs.fsyncs");
  Vfs.close f

let vfs_list_delete () =
  let vfs = Vfs.in_memory () in
  let f1 = Vfs.create vfs "x.dat" in
  let f2 = Vfs.create vfs "y.dat" in
  check (Alcotest.list Alcotest.string) "list" [ "x.dat"; "y.dat" ] (Vfs.list_files vfs);
  (* delete while open refuses *)
  (try
     Vfs.delete vfs "x.dat";
     Alcotest.fail "expected refusal"
   with Invalid_argument _ -> ());
  Vfs.close f1;
  Vfs.close f2;
  Vfs.delete vfs "x.dat";
  check (Alcotest.list Alcotest.string) "after delete" [ "y.dat" ] (Vfs.list_files vfs)

let vfs_disk_backend () =
  let dir = Filename.temp_file "dwvfs" "" in
  Sys.remove dir;
  let vfs = Vfs.on_disk dir in
  let f = Vfs.create vfs "t.dat" in
  ignore (Vfs.append f (Bytes.of_string "persist") : int);
  Vfs.fsync f;
  Vfs.close f;
  let f2 = Vfs.open_existing vfs "t.dat" in
  check Alcotest.string "disk roundtrip" "persist"
    (Bytes.to_string (Vfs.read_at f2 ~off:0 ~len:7));
  Vfs.close f2;
  Vfs.delete vfs "t.dat";
  Unix.rmdir dir

let vfs_truncate () =
  let vfs = Vfs.in_memory () in
  let f = Vfs.create vfs "t.dat" in
  ignore (Vfs.append f (Bytes.of_string "0123456789") : int);
  Vfs.truncate f 4;
  check Alcotest.int "size" 4 (Vfs.size f);
  check Alcotest.string "contents" "0123" (Bytes.to_string (Vfs.read_at f ~off:0 ~len:4));
  Vfs.close f

(* ---------- page ---------- *)

let page_insert_read_delete () =
  let page = Page.alloc () in
  Page.init page ~record_width:100;
  check Alcotest.int "capacity" (Page.max_records_per_page ~record_width:100)
    (Page.capacity page);
  let r1 = Bytes.make 100 'a' and r2 = Bytes.make 100 'b' in
  let s1 = Option.get (Page.insert page r1) in
  let s2 = Option.get (Page.insert page r2) in
  check Alcotest.int "used" 2 (Page.used_count page);
  check Alcotest.bytes "read r1" r1 (Page.read_slot page s1);
  check Alcotest.bytes "read r2" r2 (Page.read_slot page s2);
  Page.delete page s1;
  check Alcotest.int "after delete" 1 (Page.used_count page);
  (try
     ignore (Page.read_slot page s1);
     Alcotest.fail "expected free-slot failure"
   with Invalid_argument _ -> ());
  (* slot is reused *)
  let s3 = Option.get (Page.insert page (Bytes.make 100 'c')) in
  check Alcotest.int "slot reuse" s1 s3

let page_fills_to_capacity () =
  let page = Page.alloc () in
  Page.init page ~record_width:100;
  let cap = Page.capacity page in
  for _ = 1 to cap do
    match Page.insert page (Bytes.make 100 'x') with
    | Some _ -> ()
    | None -> Alcotest.fail "premature full"
  done;
  check Alcotest.bool "full" true (Page.insert page (Bytes.make 100 'x') = None)

let page_update_in_place () =
  let page = Page.alloc () in
  Page.init page ~record_width:10;
  let s = Option.get (Page.insert page (Bytes.make 10 'a')) in
  Page.write_slot page s (Bytes.make 10 'z');
  check Alcotest.bytes "updated" (Bytes.make 10 'z') (Page.read_slot page s)

(* ---------- buffer pool ---------- *)

let pool_hit_miss_evict () =
  let m = Metrics.create () in
  let vfs = Vfs.in_memory ~metrics:m () in
  let pool = Buffer_pool.create ~vfs ~capacity:2 () in
  let f = Vfs.create vfs "pool.dat" in
  let p0 = Buffer_pool.append_page pool f (fun page -> Bytes.set page 0 'A') in
  let p1 = Buffer_pool.append_page pool f (fun page -> Bytes.set page 0 'B') in
  let p2 = Buffer_pool.append_page pool f (fun page -> Bytes.set page 0 'C') in
  (* p0 was evicted (capacity 2): reading it faults in and writes back
     happened *)
  Buffer_pool.with_page pool f p0 ~dirty:false (fun page ->
      check Alcotest.char "p0 persisted" 'A' (Bytes.get page 0));
  Buffer_pool.with_page pool f p1 ~dirty:false (fun page ->
      check Alcotest.char "p1" 'B' (Bytes.get page 0));
  Buffer_pool.with_page pool f p2 ~dirty:false (fun page ->
      check Alcotest.char "p2" 'C' (Bytes.get page 0));
  check Alcotest.bool "evictions happened" true (Metrics.get m "pool.evictions" > 0);
  check Alcotest.bool "writebacks happened" true (Metrics.get m "pool.writebacks" > 0);
  Buffer_pool.flush_all pool;
  Vfs.close f

let pool_dirty_flush () =
  let vfs = Vfs.in_memory () in
  let pool = Buffer_pool.create ~vfs ~capacity:4 () in
  let f = Vfs.create vfs "flush.dat" in
  let p0 = Buffer_pool.append_page pool f (fun page -> Bytes.set page 0 'x') in
  Buffer_pool.with_page pool f p0 ~dirty:true (fun page -> Bytes.set page 0 'y');
  Buffer_pool.flush_file pool f;
  (* read underlying file directly *)
  let raw = Vfs.read_at f ~off:(p0 * Page.size) ~len:1 in
  check Alcotest.char "flushed" 'y' (Bytes.get raw 0);
  Vfs.close f

(* regression for the victim-scan rewrite: eviction must pick the least
   recently *used* frame, with an intervening touch promoting a page out
   of victim position.  Observed through the miss counter: a page touched
   just before the eviction-triggering miss must still be resident. *)
let pool_lru_eviction_order () =
  let m = Metrics.create () in
  let vfs = Vfs.in_memory ~metrics:m () in
  let pool = Buffer_pool.create ~vfs ~capacity:3 () in
  let f = Vfs.create vfs "lru.dat" in
  let pages =
    Array.init 4 (fun i ->
        Buffer_pool.append_page pool f (fun p -> Bytes.set p 0 (Char.chr (Char.code 'a' + i))))
  in
  let touch p = Buffer_pool.with_page pool f p ~dirty:false (fun _ -> ()) in
  (* appending 4 pages into 3 frames leaves pages 1,2,3 resident *)
  touch pages.(1);
  touch pages.(2);
  touch pages.(3);
  touch pages.(1);
  (* page 1 is now most recent and page 2 least: the next miss evicts 2 *)
  let misses0 = Metrics.get m "pool.misses" in
  touch pages.(0);
  check Alcotest.int "faulting page 0 misses" (misses0 + 1) (Metrics.get m "pool.misses");
  touch pages.(3);
  touch pages.(1);
  check Alcotest.int "recently used pages stayed resident" (misses0 + 1)
    (Metrics.get m "pool.misses");
  touch pages.(2);
  check Alcotest.int "the LRU page was the victim" (misses0 + 2) (Metrics.get m "pool.misses");
  Vfs.close f

(* a pool-thrashing sequential scan: every miss contributes one sample to
   the pool.miss latency histogram, so its count tracks the counter *)
let pool_miss_histogram () =
  let m = Metrics.create () in
  let vfs = Vfs.in_memory ~metrics:m () in
  let pool = Buffer_pool.create ~vfs ~capacity:4 () in
  let f = Vfs.create vfs "thrash.dat" in
  let n = 32 in
  let pages =
    Array.init n (fun i ->
        Buffer_pool.append_page pool f (fun p -> Bytes.set p 0 (Char.chr i)))
  in
  for _round = 1 to 3 do
    Array.iteri
      (fun i p ->
        Buffer_pool.with_page pool f p ~dirty:false (fun page ->
            check Alcotest.char "page content survives thrash" (Char.chr i) (Bytes.get page 0)))
      pages
  done;
  check Alcotest.bool "workload actually thrashed" true (Metrics.get m "pool.misses" >= 3 * n);
  check Alcotest.int "one histogram sample per miss" (Metrics.get m "pool.misses")
    (Metrics.observed_count m "pool.miss");
  check Alcotest.bool "samples are non-negative durations" true
    (Metrics.observed_sum m "pool.miss" >= 0.0);
  Vfs.close f

let pool_invalidate_refill () =
  let m = Metrics.create () in
  let vfs = Vfs.in_memory ~metrics:m () in
  let pool = Buffer_pool.create ~vfs ~capacity:4 () in
  let f = Vfs.create vfs "inv.dat" in
  let pages =
    Array.init 4 (fun i ->
        Buffer_pool.append_page pool f (fun p -> Bytes.set p 0 (Char.chr (Char.code '0' + i))))
  in
  Buffer_pool.flush_file pool f;
  Buffer_pool.invalidate_file pool f;
  let evictions0 = Metrics.get m "pool.evictions" in
  (* re-faulting after invalidate reuses the freed frames: no evictions *)
  Array.iteri
    (fun i p ->
      Buffer_pool.with_page pool f p ~dirty:false (fun page ->
          check Alcotest.char "reread from disk" (Char.chr (Char.code '0' + i))
            (Bytes.get page 0)))
    pages;
  check Alcotest.int "freed frames reused without eviction" evictions0
    (Metrics.get m "pool.evictions");
  Vfs.close f

let pool_out_of_range () =
  let vfs = Vfs.in_memory () in
  let pool = Buffer_pool.create ~vfs ~capacity:2 () in
  let f = Vfs.create vfs "r.dat" in
  (try
     Buffer_pool.with_page pool f 0 ~dirty:false (fun _ -> ());
     Alcotest.fail "expected failure"
   with Invalid_argument _ -> ());
  Vfs.close f

(* ---------- heap file ---------- *)

let heap_schema =
  Schema.make
    [
      { Schema.name = "id"; ty = Value.Tint; nullable = false };
      { Schema.name = "payload"; ty = Value.Tstring 80; nullable = true };
    ]

let mk_heap () =
  let vfs = Vfs.in_memory () in
  let pool = Buffer_pool.create ~vfs ~capacity:16 () in
  let f = Vfs.create vfs "heap.dat" in
  Heap_file.create pool f heap_schema

let row id payload = [| Value.Int id; Value.Str payload |]

let heap_crud () =
  let heap = mk_heap () in
  let r1 = Heap_file.insert heap (row 1 "one") in
  let r2 = Heap_file.insert heap (row 2 "two") in
  check Alcotest.int "count" 2 (Heap_file.count heap);
  check Alcotest.bool "get r1" true (Tuple.equal (Heap_file.get heap r1) (row 1 "one"));
  Heap_file.update heap r2 (row 2 "TWO");
  check Alcotest.bool "updated" true (Tuple.equal (Heap_file.get heap r2) (row 2 "TWO"));
  Heap_file.delete heap r1;
  check Alcotest.int "after delete" 1 (Heap_file.count heap);
  (try
     ignore (Heap_file.get heap r1);
     Alcotest.fail "expected failure on deleted rid"
   with Invalid_argument _ -> ())

let heap_many_pages () =
  let heap = mk_heap () in
  let n = 500 in
  let rids = Array.init n (fun i -> Heap_file.insert heap (row i (string_of_int i))) in
  check Alcotest.bool "multiple pages" true (Heap_file.page_count heap > 1);
  check Alcotest.int "count" n (Heap_file.count heap);
  Array.iteri
    (fun i rid ->
      check Alcotest.bool "readback" true
        (Tuple.equal (Heap_file.get heap rid) (row i (string_of_int i))))
    rids

let heap_slot_reuse_after_delete () =
  let heap = mk_heap () in
  let rids = Array.init 100 (fun i -> Heap_file.insert heap (row i "x")) in
  let pages_before = Heap_file.page_count heap in
  Array.iter (Heap_file.delete heap) rids;
  for i = 100 to 199 do
    ignore (Heap_file.insert heap (row i "y") : Heap_file.rid)
  done;
  check Alcotest.int "pages stable" pages_before (Heap_file.page_count heap)

let heap_attach () =
  let vfs = Vfs.in_memory () in
  let pool = Buffer_pool.create ~vfs ~capacity:16 () in
  let f = Vfs.create vfs "heap2.dat" in
  let heap = Heap_file.create pool f heap_schema in
  for i = 0 to 49 do
    ignore (Heap_file.insert heap (row i "z") : Heap_file.rid)
  done;
  Heap_file.flush heap;
  let heap2 = Heap_file.attach pool f heap_schema in
  check Alcotest.int "reattached count" 50 (Heap_file.count heap2);
  (* inserts into the re-attached heap still work (free list rebuilt) *)
  ignore (Heap_file.insert heap2 (row 100 "new") : Heap_file.rid);
  check Alcotest.int "after insert" 51 (Heap_file.count heap2)

let heap_force_at () =
  let heap = mk_heap () in
  let r1 = Heap_file.insert heap (row 1 "a") in
  let encoded = Dw_relation.Codec.encode_binary heap_schema (row 9 "forced") in
  (* overwrite occupied slot *)
  Heap_file.force_at heap r1 (Some encoded);
  check Alcotest.bool "overwritten" true (Tuple.equal (Heap_file.get heap r1) (row 9 "forced"));
  (* idempotent clear *)
  Heap_file.force_at heap r1 None;
  Heap_file.force_at heap r1 None;
  check Alcotest.bool "cleared" false (Heap_file.exists_at heap r1);
  (* force into a page far beyond current end *)
  let far = { Heap_file.page = 7; slot = 0 } in
  Heap_file.force_at heap far (Some encoded);
  check Alcotest.bool "far slot exists" true (Heap_file.exists_at heap far);
  check Alcotest.bool "far readback" true (Tuple.equal (Heap_file.get heap far) (row 9 "forced"))

(* ---------- btree ---------- *)

let key i = [| Value.Int i |]

let btree_insert_find () =
  let t = Btree.create ~branching:4 () in
  for i = 0 to 99 do
    Btree.insert t (key i) (i * 10)
  done;
  check Alcotest.int "cardinal" 100 (Btree.cardinal t);
  for i = 0 to 99 do
    check (Alcotest.option Alcotest.int) "find" (Some (i * 10)) (Btree.find t (key i))
  done;
  check (Alcotest.option Alcotest.int) "absent" None (Btree.find t (key 1000));
  (match Btree.check_invariants t with
   | Ok () -> ()
   | Error e -> Alcotest.fail e)

let btree_replace () =
  let t = Btree.create () in
  Btree.insert t (key 1) 10;
  Btree.insert t (key 1) 20;
  check Alcotest.int "cardinal stays" 1 (Btree.cardinal t);
  check (Alcotest.option Alcotest.int) "replaced" (Some 20) (Btree.find t (key 1))

let btree_delete_rebalance () =
  let t = Btree.create ~branching:4 () in
  let n = 200 in
  for i = 0 to n - 1 do
    Btree.insert t (key i) i
  done;
  (* delete evens *)
  for i = 0 to n - 1 do
    if i mod 2 = 0 then check Alcotest.bool "removed" true (Btree.remove t (key i))
  done;
  check Alcotest.int "half left" (n / 2) (Btree.cardinal t);
  (match Btree.check_invariants t with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("after even deletes: " ^ e));
  for i = 0 to n - 1 do
    let expected = if i mod 2 = 0 then None else Some i in
    check (Alcotest.option Alcotest.int) "find after deletes" expected (Btree.find t (key i))
  done;
  (* delete the rest *)
  for i = 0 to n - 1 do
    if i mod 2 = 1 then ignore (Btree.remove t (key i) : bool)
  done;
  check Alcotest.int "empty" 0 (Btree.cardinal t);
  check Alcotest.int "depth 0" 0 (Btree.depth t)

let btree_range_scan () =
  let t = Btree.create ~branching:6 () in
  for i = 0 to 99 do
    Btree.insert t (key (i * 2)) i  (* even keys 0..198 *)
  done;
  let collect lo hi =
    let acc = ref [] in
    Btree.iter_range t ~lo ~hi (fun k _ ->
        match k.(0) with Value.Int i -> acc := i :: !acc | _ -> ());
    List.rev !acc
  in
  check (Alcotest.list Alcotest.int) "closed range" [ 10; 12; 14 ]
    (collect (Btree.Incl (key 10)) (Btree.Incl (key 14)));
  check (Alcotest.list Alcotest.int) "open range" [ 12 ]
    (collect (Btree.Excl (key 10)) (Btree.Excl (key 14)));
  check (Alcotest.list Alcotest.int) "unbounded hi" [ 196; 198 ]
    (collect (Btree.Incl (key 196)) Btree.Unbounded);
  check Alcotest.int "full scan" 100 (List.length (collect Btree.Unbounded Btree.Unbounded));
  (* lo between keys starts at next key *)
  check (Alcotest.list Alcotest.int) "between keys" [ 12 ]
    (collect (Btree.Incl (key 11)) (Btree.Incl (key 12)))

let btree_min_max () =
  let t = Btree.create () in
  check Alcotest.bool "empty min" true (Btree.min_binding t = None);
  for i = 5 to 50 do
    Btree.insert t (key i) i
  done;
  (match Btree.min_binding t with
   | Some (k, _) -> check Alcotest.bool "min" true (Tuple.equal k (key 5))
   | None -> Alcotest.fail "min");
  match Btree.max_binding t with
  | Some (k, _) -> check Alcotest.bool "max" true (Tuple.equal k (key 50))
  | None -> Alcotest.fail "max"

let btree_bulk_load_matches_incremental () =
  List.iter
    (fun n ->
      let bindings = List.init n (fun i -> (key (i * 3), i)) in
      let bulk = Btree.of_sorted ~branching:8 bindings in
      (match Btree.check_invariants bulk with
       | Ok () -> ()
       | Error e -> Alcotest.failf "invariants (n=%d): %s" n e);
      let incr = Btree.create ~branching:8 () in
      List.iter (fun (k, v) -> Btree.insert incr k v) bindings;
      check Alcotest.int "cardinal" (Btree.cardinal incr) (Btree.cardinal bulk);
      check Alcotest.bool (Printf.sprintf "same contents (n=%d)" n) true
        (List.for_all2
           (fun (k1, v1) (k2, v2) -> Tuple.equal k1 k2 && v1 = v2)
           (Btree.to_list incr) (Btree.to_list bulk));
      (* mutations after a bulk load keep working *)
      Btree.insert bulk (key 1) 999;
      if n > 0 then ignore (Btree.remove bulk (key 0) : bool);
      match Btree.check_invariants bulk with
      | Ok () -> ()
      | Error e -> Alcotest.failf "post-mutation invariants (n=%d): %s" n e)
    [ 0; 1; 5; 8; 9; 23; 24; 25; 100; 1000 ]

let btree_bulk_load_rejects_unsorted () =
  (try
     ignore (Btree.of_sorted [ (key 2, 0); (key 1, 1) ]);
     Alcotest.fail "expected unsorted rejection"
   with Invalid_argument _ -> ());
  try
    ignore (Btree.of_sorted [ (key 1, 0); (key 1, 1) ]);
    Alcotest.fail "expected duplicate rejection"
  with Invalid_argument _ -> ()

let prop_btree_bulk_load =
  QCheck2.Test.make ~name:"btree bulk load sound for any size/branching" ~count:200
    QCheck2.Gen.(pair (int_range 0 400) (int_range 2 10))
    (fun (n, half_branching) ->
      let branching = 2 * half_branching in
      let bindings = List.init n (fun i -> (key i, i)) in
      let t = Btree.of_sorted ~branching bindings in
      (match Btree.check_invariants t with Ok () -> true | Error _ -> false)
      && Btree.cardinal t = n
      && List.for_all (fun (k, v) -> Btree.find t k = Some v) bindings)

(* qcheck: btree behaves like a Map over arbitrary op sequences *)

module KeyMap = Map.Make (struct
  type t = int

  let compare = compare
end)

type op = Add of int * int | Del of int | Find of int

let gen_ops =
  let open QCheck2.Gen in
  let gen_op =
    frequency
      [
        (4, map2 (fun k v -> Add (k, v)) (int_range 0 100) (int_range 0 1000));
        (2, map (fun k -> Del k) (int_range 0 100));
        (1, map (fun k -> Find k) (int_range 0 100));
      ]
  in
  list_size (int_range 0 400) gen_op

let prop_btree_model =
  QCheck2.Test.make ~name:"btree matches Map model" ~count:200 gen_ops (fun ops ->
      let t = Btree.create ~branching:4 () in
      let model = ref KeyMap.empty in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Add (k, v) ->
            Btree.insert t (key k) v;
            model := KeyMap.add k v !model
          | Del k ->
            let removed = Btree.remove t (key k) in
            let existed = KeyMap.mem k !model in
            if removed <> existed then ok := false;
            model := KeyMap.remove k !model
          | Find k ->
            let got = Btree.find t (key k) in
            let expected = KeyMap.find_opt k !model in
            if got <> expected then ok := false)
        ops;
      !ok
      && Btree.cardinal t = KeyMap.cardinal !model
      && (match Btree.check_invariants t with Ok () -> true | Error _ -> false)
      && List.for_all2
           (fun (bk, bv) (mk, mv) -> Tuple.equal bk (key mk) && bv = mv)
           (Btree.to_list t) (KeyMap.bindings !model))

let suite =
  [
    test "vfs mem basics" vfs_mem_basics;
    test "vfs read bounds" vfs_read_bounds;
    test "vfs metrics accounting" vfs_metrics_accounting;
    test "vfs list/delete" vfs_list_delete;
    test "vfs disk backend" vfs_disk_backend;
    test "vfs truncate" vfs_truncate;
    test "page insert/read/delete" page_insert_read_delete;
    test "page fills to capacity" page_fills_to_capacity;
    test "page update in place" page_update_in_place;
    test "pool hit/miss/evict" pool_hit_miss_evict;
    test "pool dirty flush" pool_dirty_flush;
    test "pool lru eviction order" pool_lru_eviction_order;
    test "pool miss histogram" pool_miss_histogram;
    test "pool invalidate refill" pool_invalidate_refill;
    test "pool out of range" pool_out_of_range;
    test "heap crud" heap_crud;
    test "heap many pages" heap_many_pages;
    test "heap slot reuse" heap_slot_reuse_after_delete;
    test "heap attach" heap_attach;
    test "heap force_at" heap_force_at;
    test "btree insert/find" btree_insert_find;
    test "btree replace" btree_replace;
    test "btree delete rebalance" btree_delete_rebalance;
    test "btree range scan" btree_range_scan;
    test "btree min/max" btree_min_max;
    test "btree bulk load matches incremental" btree_bulk_load_matches_incremental;
    test "btree bulk load rejects unsorted" btree_bulk_load_rejects_unsorted;
    QCheck_alcotest.to_alcotest prop_btree_bulk_load;
    QCheck_alcotest.to_alcotest prop_btree_model;
  ]
