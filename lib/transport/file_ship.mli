(** File shipping between a source system and the warehouse/staging area
    (the paper's "ftp" transport option).

    Copies a file across {!Dw_storage.Vfs.t} instances in bounded chunks,
    counting bytes.  An optional per-chunk latency cost feeds the
    simulated clock when transport time matters to an experiment.

    Transient destination faults ({!Dw_storage.Vfs.Fault.Transient} from
    an attached fault plan, standing in for a flaky network or device) are
    retried with bounded exponential backoff under equal jitter: each
    pause is half the doubled base plus a uniform random half, drawn from
    a {!Dw_util.Prng.t} seeded by [jitter_seed], so retriers decorrelate
    deterministically.  Chunk writes are idempotent (fixed offsets), so a
    retried transfer still produces byte-identical output.  Retries are
    counted in the destination registry as [retry.ship], each pause is
    observed in the [ship.backoff] histogram, and the total is reported
    in {!stats}. *)

module Vfs = Dw_storage.Vfs

type stats = {
  bytes : int;
  chunks : int;
  retries : int;  (** transient faults absorbed by retry *)
}

val ship_messages :
  ?block_size:int ->   (* default 64 KiB *)
  ?max_retries:int ->  (* per-operation retry budget, default 8 *)
  ?backoff_s:float ->  (* base backoff (doubles per retry, jittered), default 0 = no sleep *)
  ?jitter_seed:int ->  (* backoff jitter PRNG seed, default 0 *)
  dst:Vfs.t ->
  dst_name:string ->
  string list ->
  (stats, string) result
(** Coalesced message shipping: pack the messages — each framed with its
    own {!Persistent_queue.checksum} — into blocks of at most
    [block_size] bytes (a message never spans two blocks; an oversized
    message gets a block to itself) and write each block as one
    retried, fixed-offset, idempotent write, with a single fsync at the
    end.  Small op-delta messages that would each have cost a ship
    round-trip thus share one; the per-block fill ratio is observed as
    [ship.block_fill] and the message count as [ship.msgs].  Read the
    result back with {!fetch_messages}.  [stats.chunks] is the number
    of blocks written. *)

val fetch_messages : Vfs.t -> name:string -> (string list, string) result
(** Decode a file written by {!ship_messages} back into messages,
    verifying every per-message checksum.  [Error _] on a missing file
    or the first torn/corrupt frame — a block ships whole or not at
    all. *)

val ship :
  ?chunk_size:int ->   (* default 64 KiB *)
  ?max_retries:int ->  (* per-operation retry budget, default 8 *)
  ?backoff_s:float ->  (* base backoff (doubles per retry, jittered), default 0 = no sleep *)
  ?jitter_seed:int ->  (* backoff jitter PRNG seed, default 0 *)
  src:Vfs.t ->
  src_name:string ->
  dst:Vfs.t ->
  dst_name:string ->
  unit ->
  (stats, string) result
(** Overwrites [dst_name].  [Error _] if the source is missing or a
    transient fault persists through the whole retry budget. *)
