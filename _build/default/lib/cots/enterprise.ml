module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Vfs = Dw_storage.Vfs
module Schema = Dw_relation.Schema
module Ast = Dw_sql.Ast
module Delta = Dw_core.Delta
module Op_delta = Dw_core.Op_delta
module Transform = Dw_core.Transform
module Trigger_extract = Dw_core.Trigger_extract

(* per (source, logical table) replication state *)
type binding = {
  rule : Transform.rule;        (* logical -> physical *)
  inverse : Transform.rule;     (* physical -> logical *)
  physical_schema : Schema.t;
  capture : Trigger_extract.handle;
}

type source = {
  db : Db.t;
  bindings : (string * binding) list;  (* logical table -> binding *)
}

type t = {
  logical_table : string;
  tables : (string * Schema.t) list;   (* all logical tables *)
  sources : source array;
  mutable business_txns : Op_delta.t list;  (* newest first *)
  mutable next_txn_id : int;
}

let make_rule ~heterogeneous ~logical_table ~logical_schema i =
  let suffix = if heterogeneous then Printf.sprintf "_s%d" i else "" in
  {
    Transform.src_table = logical_table;
    dst_table = logical_table ^ suffix;
    column_map =
      List.map (fun c -> (c.Schema.name, c.Schema.name ^ suffix)) (Schema.columns logical_schema);
    constants = [];
  }

let invert_rule rule =
  {
    Transform.src_table = rule.Transform.dst_table;
    dst_table = rule.Transform.src_table;
    column_map = List.map (fun (a, b) -> (b, a)) rule.Transform.column_map;
    constants = [];
  }

let create ?(heterogeneous = true) ?(extra_tables = []) ~sources ~logical_table ~logical_schema
    () =
  if sources < 1 then invalid_arg "Enterprise.create: sources < 1";
  let tables = (logical_table, logical_schema) :: extra_tables in
  let mk i =
    let vfs = Vfs.in_memory () in
    let db = Db.create ~vfs ~name:(Printf.sprintf "src%d" i) () in
    let bindings =
      List.map
        (fun (tname, schema) ->
          let rule = make_rule ~heterogeneous ~logical_table:tname ~logical_schema:schema i in
          let physical_schema = Transform.dst_schema rule ~src:schema in
          ignore (Db.create_table db ~name:rule.Transform.dst_table physical_schema : Table.t);
          let capture = Trigger_extract.install db ~table:rule.Transform.dst_table in
          (tname, { rule; inverse = invert_rule rule; physical_schema; capture }))
        tables
    in
    { db; bindings }
  in
  {
    logical_table;
    tables;
    sources = Array.init sources mk;
    business_txns = [];
    next_txn_id = 1;
  }

let binding_for t i table =
  match List.assoc_opt table t.sources.(i).bindings with
  | Some b -> b
  | None -> raise Not_found

let source_count t = Array.length t.sources
let source_db t i = t.sources.(i).db
let rule_to_physical t i = (binding_for t i t.logical_table).rule
let physical_table t i = (binding_for t i t.logical_table).rule.Transform.dst_table
let logical_schema t = List.assoc t.logical_table t.tables
let logical_tables t = List.map fst t.tables

let submit t stmts =
  (* validate targets first *)
  let bad =
    List.find_opt (fun stmt -> not (List.mem_assoc (Ast.table_of stmt) t.tables)) stmts
  in
  match bad with
  | Some stmt ->
    Error
      (Printf.sprintf "business transaction touches unknown logical table %s"
         (Ast.table_of stmt))
  | None ->
    (* wrapper capture: once, at the business level, spanning all tables *)
    let od = Op_delta.make ~txn_id:t.next_txn_id stmts in
    t.next_txn_id <- t.next_txn_id + 1;
    (* fan out to every replica, each in its own local transaction *)
    let apply_source source =
      let rec translate acc = function
        | [] -> Ok (List.rev acc)
        | stmt :: rest -> (
            let tname = Ast.table_of stmt in
            let binding = List.assoc tname source.bindings in
            let schema = List.assoc tname t.tables in
            match Transform.apply_stmt binding.rule ~src:schema stmt with
            | Ok (Some stmt') -> translate (stmt' :: acc) rest
            | Ok None -> translate acc rest
            | Error e -> Error e)
      in
      match translate [] stmts with
      | Error e -> Error e
      | Ok physical_stmts -> (
          match
            Db.with_txn source.db (fun txn ->
                List.iter
                  (fun stmt -> ignore (Db.exec source.db txn stmt : Db.exec_result))
                  physical_stmts)
          with
          | () -> Ok ()
          | exception Invalid_argument e -> Error e)
    in
    let rec fan_out i =
      if i >= Array.length t.sources then Ok ()
      else
        match apply_source t.sources.(i) with
        | Ok () -> fan_out (i + 1)
        | Error e -> Error (Printf.sprintf "source %d: %s" i e)
    in
    (match fan_out 0 with
     | Ok () ->
       t.business_txns <- od :: t.business_txns;
       Ok ()
     | Error e -> Error e)

let business_op_deltas t = List.rev t.business_txns

let extract_replica_value_deltas_for t ~table =
  let schema =
    match List.assoc_opt table t.tables with Some s -> s | None -> raise Not_found
  in
  Array.to_list t.sources
  |> List.map (fun source ->
         let binding = List.assoc table source.bindings in
         let physical_delta = Trigger_extract.collect source.db binding.capture in
         Transform.apply_delta binding.inverse ~src:binding.physical_schema ~dst:schema
           physical_delta)

let extract_replica_value_deltas t = extract_replica_value_deltas_for t ~table:t.logical_table
