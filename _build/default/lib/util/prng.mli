(** Deterministic pseudo-random number generator (splitmix64).

    All workload generation in this repository goes through this module so
    that experiments are reproducible bit-for-bit across runs.  The state is
    explicit: independent streams are obtained with {!split} and never share
    state with each other. *)

type t

val create : seed:int -> t
(** [create ~seed] returns a fresh generator.  Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing it. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val alpha_string : t -> int -> string
(** [alpha_string t n] is a length-[n] string of lowercase ASCII letters. *)
