module Expr = Dw_relation.Expr
module Value = Dw_relation.Value

type agg_fn = Count_star | Count | Sum | Avg | Min | Max

type select_item =
  | Star
  | Item of Expr.t * string option
  | Agg of agg_fn * Expr.t option * string option

type column_def = {
  col_name : string;
  col_ty : Value.ty;
  col_nullable : bool;
  col_key : bool;
}

type stmt =
  | Select of {
      items : select_item list;
      table : string;
      where : Expr.t option;
      group_by : string list;
      order_by : string list;
    }
  | Insert of { table : string; columns : string list option; rows : Value.t list list }
  | Update of { table : string; sets : (string * Expr.t) list; where : Expr.t option }
  | Delete of { table : string; where : Expr.t option }
  | Create_table of { table : string; columns : column_def list }

let table_of = function
  | Select { table; _ } | Insert { table; _ } | Update { table; _ } | Delete { table; _ }
  | Create_table { table; _ } ->
    table

let is_dml = function
  | Insert _ | Update _ | Delete _ -> true
  | Select _ | Create_table _ -> false

let opt_expr_equal a b =
  match a, b with
  | None, None -> true
  | Some x, Some y -> Expr.equal x y
  | None, Some _ | Some _, None -> false

let opt_expr_equal2 a b =
  match a, b with
  | None, None -> true
  | Some x, Some y -> Expr.equal x y
  | None, Some _ | Some _, None -> false

let item_equal a b =
  match a, b with
  | Star, Star -> true
  | Item (e1, a1), Item (e2, a2) -> Expr.equal e1 e2 && a1 = a2
  | Agg (f1, e1, a1), Agg (f2, e2, a2) -> f1 = f2 && opt_expr_equal2 e1 e2 && a1 = a2
  | (Star | Item _ | Agg _), _ -> false

let value_rows_equal r1 r2 =
  List.length r1 = List.length r2
  && List.for_all2
       (fun row1 row2 ->
         List.length row1 = List.length row2
         && List.for_all2
              (fun v1 v2 -> Value.equal v1 v2 || (Value.is_null v1 && Value.is_null v2))
              row1 row2)
       r1 r2

let equal s1 s2 =
  match s1, s2 with
  | Select a, Select b ->
    a.table = b.table && opt_expr_equal a.where b.where && a.order_by = b.order_by
    && a.group_by = b.group_by
    && List.length a.items = List.length b.items
    && List.for_all2 item_equal a.items b.items
  | Insert a, Insert b ->
    a.table = b.table && a.columns = b.columns && value_rows_equal a.rows b.rows
  | Update a, Update b ->
    a.table = b.table && opt_expr_equal a.where b.where
    && List.length a.sets = List.length b.sets
    && List.for_all2 (fun (c1, e1) (c2, e2) -> c1 = c2 && Expr.equal e1 e2) a.sets b.sets
  | Delete a, Delete b -> a.table = b.table && opt_expr_equal a.where b.where
  | Create_table a, Create_table b -> a.table = b.table && a.columns = b.columns
  | (Select _ | Insert _ | Update _ | Delete _ | Create_table _), _ -> false
