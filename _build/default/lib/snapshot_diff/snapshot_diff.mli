(** Differential-snapshot algorithms (paper Section 3, method 2; Labio &
    Garcia-Molina, VLDB'96).

    Input: two snapshots of a table (lists of tuples, or ASCII snapshot
    files as produced by {!Dw_engine.Ascii_util.dump}).  Output: the delta
    between them, keyed by primary key.  Both snapshots must conform to
    the same schema.

    Two algorithms:
    - {b sort-merge}: sort both snapshots by key, merge.  O(n log n)
      compares, all in memory.
    - {b partitioned hash} ("window"-style bounded memory): partition both
      files into key-hash buckets written back to scratch files, then diff
      each bucket pair in memory.  Models the bounded-memory outer-join the
      paper's citation analyses; the partition writes are the extra I/O
      that makes this method the most expensive (Section 3.1.2). *)

module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple

type entry =
  | Added of Tuple.t            (** key present only in the new snapshot *)
  | Removed of Tuple.t          (** key present only in the old snapshot *)
  | Changed of Tuple.t * Tuple.t  (** before, after (same key, different rest) *)

val entry_key : Schema.t -> entry -> Tuple.t

type stats = {
  old_rows : int;
  new_rows : int;
  entries : int;
  scratch_bytes : int;  (** partition-file traffic (0 for sort-merge) *)
}

val sort_merge : Schema.t -> old_rows:Tuple.t list -> new_rows:Tuple.t list -> entry list * stats
(** Duplicate keys within one snapshot raise [Invalid_argument]. *)

val partitioned_hash :
  ?buckets:int ->
  Dw_storage.Vfs.t ->
  Schema.t ->
  old_file:string ->
  new_file:string ->
  (entry list * stats, string) result
(** Diff two ASCII snapshot files through [buckets] (default 16) scratch
    partitions.  Entries come out grouped by bucket, ordered by key within
    each bucket. *)

val window :
  ?window_rows:int ->
  Dw_storage.Vfs.t ->
  Schema.t ->
  old_file:string ->
  new_file:string ->
  (entry list * stats, string) result
(** The sliding-window algorithm of Labio & Garcia-Molina: stream both
    files in lockstep, matching rows by key inside two bounded aging
    buffers of [window_rows] rows each (default 1024).  Single sequential
    pass, no scratch files, O(window) memory.

    Exact when matching rows are displaced by at most the window size
    between the two snapshots (in particular always exact when the
    snapshots are produced by scans in the same page order, the common
    case).  Rows displaced farther age out of the buffers and are
    reported as a spurious Removed + Added pair — the "false
    delete/insert" the original paper accepts in exchange for bounded
    memory. *)

val external_sort_merge :
  ?run_rows:int ->
  Dw_storage.Vfs.t ->
  Schema.t ->
  old_file:string ->
  new_file:string ->
  (entry list * stats, string) result
(** Classic external sort-merge: each snapshot is split into sorted runs
    of [run_rows] rows (default 1024) written to scratch files, the runs
    are k-way merged into two sorted streams, and the streams are
    merge-joined.  O(run_rows) memory for the sort phase, sequential I/O
    throughout; [stats.scratch_bytes] counts the run-file traffic.
    Entries come out in global key order (unlike {!partitioned_hash}). *)

val apply : Schema.t -> entry list -> Tuple.t list -> Tuple.t list
(** [apply schema delta old_rows] replays the delta onto the old snapshot
    (used by the correctness property: [apply (diff a b) a ≡ b]). *)
