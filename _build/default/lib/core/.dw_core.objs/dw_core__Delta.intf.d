lib/core/delta.mli: Dw_relation Format
