type t = Value.t array

let validate schema tuple =
  let n = Schema.arity schema in
  if Array.length tuple <> n then
    Error (Printf.sprintf "arity mismatch: schema has %d columns, tuple has %d" n (Array.length tuple))
  else begin
    let err = ref None in
    for i = 0 to n - 1 do
      if !err = None then begin
        let col = Schema.column schema i in
        let v = tuple.(i) in
        if not (Value.ty_compatible col.Schema.ty v) then
          err := Some (Printf.sprintf "column %s: value %s does not fit type %s"
                         col.Schema.name (Value.to_string v) (Value.ty_to_string col.Schema.ty))
        else if Value.is_null v && (not col.Schema.nullable || i < Schema.key_arity schema) then
          err := Some (Printf.sprintf "column %s: NULL not allowed" col.Schema.name)
      end
    done;
    match !err with None -> Ok () | Some e -> Error e
  end

let validate_exn schema tuple =
  match validate schema tuple with
  | Ok () -> ()
  | Error e -> invalid_arg ("Tuple.validate: " ^ e)

let key schema tuple = Array.sub tuple 0 (Schema.key_arity schema)

let compare_key schema a b =
  let k = Schema.key_arity schema in
  let rec go i =
    if i >= k then 0
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0

let get schema tuple name = tuple.(Schema.index_of schema name)

let set schema tuple name v =
  let t' = Array.copy tuple in
  t'.(Schema.index_of schema name) <- v;
  t'

let to_string t =
  "(" ^ (Array.to_list t |> List.map Value.to_string |> String.concat ", ") ^ ")"

let pp ppf t = Format.pp_print_string ppf (to_string t)
