(* Experiment T1 — paper Table 1: "Database deltas dump and load
   techniques".  Export a delta table, Import it back, and load the same
   delta through the ASCII Loader, across the delta-size sweep.

   Expected shape: Import >> Loader > Export, all roughly linear. *)

module Db = Dw_engine.Db
module Vfs = Dw_storage.Vfs
module Workload = Dw_workload.Workload
module Export_util = Dw_engine.Export_util
module Import_util = Dw_engine.Import_util
module Ascii_util = Dw_engine.Ascii_util
open Bench_support

let run ~scale =
  section "T1 (Table 1): Export / Import / DBMS Loader vs delta size";
  let steps = delta_row_steps ~scale in
  let export_times = ref [] in
  let import_times = ref [] in
  let loader_times = ref [] in
  List.iter
    (fun rows ->
      (* a source holding just the delta table (what gets dumped) *)
      let db = fresh_source ~rows () in
      (* Export the delta *)
      let _, t_export =
        time (fun () -> Export_util.export_table db ~table:"parts" ~dest:"delta.exp" ())
      in
      (* Import into an empty table of the same schema *)
      let _ = Db.create_table db ~name:"parts_import" ~ts_column:"last_modified" Workload.parts_schema in
      let import_result, t_import =
        time (fun () -> Import_util.import_table db ~src:"delta.exp" ~table:"parts_import")
      in
      (match import_result with
       | Ok s -> assert (s.Import_util.rows = rows)
       | Error e -> failwith e);
      (* ASCII dump once (not timed: it is the extraction's job), then Loader *)
      let _ = Ascii_util.dump db ~table:"parts" ~dest:"delta.asc" () in
      let _ = Db.create_table db ~name:"parts_load" ~ts_column:"last_modified" Workload.parts_schema in
      let load_result, t_loader =
        time (fun () -> Ascii_util.load db ~table:"parts_load" ~src:"delta.asc")
      in
      (match load_result with
       | Ok s -> assert (s.Ascii_util.rows = rows)
       | Error e -> failwith e);
      export_times := t_export :: !export_times;
      import_times := t_import :: !import_times;
      loader_times := t_loader :: !loader_times)
    steps;
  let row name times = name :: List.rev_map dur !times in
  print_table ~title:"Table 1: dump and load techniques"
    ~header:("Method" :: List.map label_for_rows steps)
    ~rows:[ row "Export" export_times; row "Import" import_times; row "DBMS Loader" loader_times ];
  let ratio =
    let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
    avg (List.rev !import_times) /. avg (List.rev !loader_times)
  in
  Printf.printf "shape check: mean Import/Loader ratio = %.2fx (paper: ~2-3.5x)\n" ratio
