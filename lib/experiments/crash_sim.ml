(* Crash-point exploration: the robustness companion to the performance
   experiments.  A workload runs once against a fault plan that only
   counts write/fsync events; then, for each (or a strided subset of)
   event index k, the same workload re-runs with fail-stop armed at k —
   everything written before k survives, the crashing write may be torn,
   nothing after it happens.  The surviving bytes are re-opened in a
   fresh engine / queue / warehouse and the recovery invariants checked:

   - source DB: committed transactions' rows are present, losers' rows
     absent (the one in-flight transaction may land either way, but only
     atomically), and a post-recovery transaction survives a second
     restart (the torn WAL tail really was truncated, not skipped);
   - persistent queue: no enqueued-and-unacked message is ever lost
     (redelivery of acked ones is allowed — at-least-once), no phantom
     messages appear, and a post-recovery enqueue stays reachable;
   - warehouse refresh: redelivered delta batches are applied exactly
     once (watermark updated in the same warehouse transaction as the
     batch rows).

   Everything is deterministic: the op mix, the payloads and the tear
   points all derive from seeded Dw_util.Prng streams, so a failing
   event index reproduces by itself. *)

module Vfs = Dw_storage.Vfs
module Fault = Vfs.Fault
module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Value = Dw_relation.Value
module Expr = Dw_relation.Expr
module Workload = Dw_workload.Workload
module Metrics = Dw_util.Metrics
module Prng = Dw_util.Prng
module Pq = Dw_transport.Persistent_queue

type report = {
  total_events : int;  (* write/fsync events in the fault-free run *)
  explored : int;  (* crash points actually exercised *)
  failures : (int * string) list;  (* event index, invariant violated *)
  fault_metrics : (string * int) list;  (* fault.*/wal.*/queue.* totals *)
}

let pp_report fmt r =
  Format.fprintf fmt "%d events, %d crash points, %d failures" r.total_events r.explored
    (List.length r.failures);
  List.iter (fun (i, msg) -> Format.fprintf fmt "@.  event %d: %s" i msg) r.failures

(* fold one run's injected-fault and recovery counters into the report
   totals; vfs.* traffic counters would swamp the table and are skipped *)
let accumulate totals vfs =
  List.iter
    (fun (name, v) ->
      let keep prefix =
        String.length name >= String.length prefix
        && String.sub name 0 (String.length prefix) = prefix
      in
      if keep "fault." || keep "wal." || keep "queue." || keep "retry." then
        Metrics.add totals name v)
    (Metrics.snapshot (Vfs.metrics vfs))

let indices ~total ~stride = List.init ((total + stride - 1) / stride) (fun i -> i * stride)

(* ---------- source-database explorer ---------- *)

type db_spec = {
  txns : int;
  txn_size : int;  (* rows touched per transaction *)
  seed : int;
  checkpoint_every : int;  (* 0 = never *)
  group : int;  (* group-commit size; 1 = fsync every commit *)
}

let small_db_spec = { txns = 6; txn_size = 3; seed = 42; checkpoint_every = 4; group = 1 }
let default_db_spec = { txns = 12; txn_size = 8; seed = 42; checkpoint_every = 5; group = 1 }

(* group commit widens the window between a commit's append and its
   fsync; the sweep over this spec covers crashes inside that window —
   including fail-stop AT the group's one fsync event (the paper-level
   "between leader fsync and follower wakeup" point) *)
let grouped_db_spec = { default_db_spec with group = 3 }

type op =
  | Insert of { first_id : int; size : int }
  | Update of { first_id : int; size : int }
  | Delete of { first_id : int; size : int }

(* a deterministic insert/update/delete mix; updates and deletes aim at
   the id range populated so far *)
let ops_of_spec spec =
  let rng = Prng.create ~seed:spec.seed in
  let next_id = ref 1 in
  List.init spec.txns (fun i ->
      let kind = if !next_id = 1 then 0 else i mod 3 in
      match kind with
      | 0 ->
        let first_id = !next_id in
        next_id := !next_id + spec.txn_size;
        Insert { first_id; size = spec.txn_size }
      | 1 -> Update { first_id = 1 + Prng.int rng (!next_id - 1); size = spec.txn_size }
      | _ ->
        Delete { first_id = 1 + Prng.int rng (!next_id - 1); size = max 1 (spec.txn_size / 4) })

let stmts_of spec = function
  | Insert { first_id; size } ->
    Workload.insert_parts_txn ~seed:spec.seed ~first_id ~size ~day:0 ()
  | Update { first_id; size } -> [ Workload.update_parts_stmt ~first_id ~size ]
  | Delete { first_id; size } -> [ Workload.delete_parts_stmt ~first_id ~size ]

(* reference model: id -> expected tuple, mirroring the statement
   semantics (inserts use the same prng stream as insert_parts_txn; the
   engine stamps last_modified with the current day, held at 0) *)
let apply_op spec model = function
  | Insert { first_id; size } ->
    let rng = Prng.create ~seed:(spec.seed + first_id) in
    for i = 0 to size - 1 do
      let id = first_id + i in
      Hashtbl.replace model id (Workload.gen_part rng ~id ~day:0)
    done
  | Update { first_id; size } ->
    for id = first_id to first_id + size - 1 do
      match Hashtbl.find_opt model id with
      | None -> ()
      | Some t ->
        let t = Array.copy t in
        (match t.(2) with Value.Int q -> t.(2) <- Value.Int (q + 1) | _ -> assert false);
        t.(4) <- Value.Date 0;
        Hashtbl.replace model id t
    done
  | Delete { first_id; size } ->
    for id = first_id to first_id + size - 1 do
      Hashtbl.remove model id
    done

let model_rows spec ops =
  let model = Hashtbl.create 256 in
  List.iter (apply_op spec model) ops;
  List.sort Tuple.compare (Hashtbl.fold (fun _ t acc -> t :: acc) model [])

let actual_rows db =
  let rows = ref [] in
  Table.scan (Db.table db Workload.parts_table) (fun _ t -> rows := t :: !rows);
  List.sort Tuple.compare !rows

let rows_equal a b =
  List.length a = List.length b && List.for_all2 (fun x y -> Tuple.compare x y = 0) a b

type db_progress = { mutable committed : op list (* newest first *); mutable in_flight : op option }

let snapshot_rows db txn =
  List.sort Tuple.compare (Db.select db txn Workload.parts_table ())

(* explicit begin/commit (not with_txn): after a crash the process is
   dead, so no abort should be attempted on the way out.

   A long-lived snapshot reader is opened after the first commit and
   re-checked after every later commit: the crash sweep thus lands fault
   points inside every version-store code path (note/publish on the
   write side, chain resolution and reader-pinned GC on the read side)
   and proves a stale reader never perturbs what recovery rebuilds. *)
let run_db_workload spec vfs ops progress =
  let db = Db.create ~pool_pages:64 ~vfs ~name:"src" () in
  Db.set_day db 0;
  if spec.group > 1 then Db.set_sync_mode db (`Group spec.group);
  let (_ : Table.t) = Workload.create_parts_table db in
  let snap = ref None in
  List.iteri
    (fun i op ->
      progress.in_flight <- Some op;
      let txn = Db.begin_txn db in
      List.iter (fun s -> ignore (Db.exec db txn s : Db.exec_result)) (stmts_of spec op);
      Db.commit db txn;
      progress.committed <- op :: progress.committed;
      progress.in_flight <- None;
      (match !snap with
       | Some (s, frozen) ->
         if snapshot_rows db s <> frozen then failwith "crash-sim: snapshot reader drifted"
       | None ->
         let s = Db.begin_txn ~mode:`Snapshot db in
         snap := Some (s, snapshot_rows db s));
      if spec.checkpoint_every > 0 && (i + 1) mod spec.checkpoint_every = 0 then
        Db.checkpoint db)
    ops;
  (match !snap with Some (s, _) -> Db.commit db s | None -> ());
  db

let parts_catalog = [ (Workload.parts_table, Workload.parts_schema, Some "last_modified") ]

let reopen_src vfs =
  Vfs.crash_reset vfs;
  let db, (_ : Dw_txn.Recovery.stats) =
    Db.reopen ~pool_pages:64 ~vfs ~name:"src" ~tables:parts_catalog ()
  in
  Db.set_day db 0;
  db

let count_db_events spec ops =
  let vfs = Vfs.in_memory () in
  Vfs.set_fault vfs (Some (Fault.make ~seed:spec.seed ()));
  let progress = { committed = []; in_flight = None } in
  let (_ : Db.t) = run_db_workload spec vfs ops progress in
  match Vfs.fault vfs with Some f -> Fault.events f | None -> assert false

(* one crash point: run with fail-stop at [index], restart over the
   surviving bytes, check the visible rows are exactly the committed
   model (the in-flight transaction may additionally be visible as a
   whole), then prove the db is usable: commit one more row and make it
   survive a second restart. *)
let run_db_crash_point spec ops ~totals index =
  let vfs = Vfs.in_memory () in
  Vfs.set_fault vfs (Some (Fault.make ~fail_stop_after:index ~seed:(spec.seed + index) ()));
  let progress = { committed = []; in_flight = None } in
  (match run_db_workload spec vfs ops progress with
   | (_ : Db.t) -> ()
   | exception Fault.Crash _ -> ());
  let db = reopen_src vfs in
  let committed = List.rev progress.committed in
  let act = actual_rows db in
  let visible =
    if rows_equal act (model_rows spec committed) then Some committed
    else
      match progress.in_flight with
      | Some op when rows_equal act (model_rows spec (committed @ [ op ])) ->
        Some (committed @ [ op ])
      | Some _ | None -> None
  in
  let result =
    match visible with
    | None ->
      Error
        (Printf.sprintf
           "recovered state matches neither committed (%d txns) nor committed+in-flight: %d rows"
           (List.length committed) (List.length act))
    | Some visible_ops ->
      if Dw_txn.Version_store.entries (Db.version_store db) <> 0 then
        Error "recovery left entries in the version store"
      else begin
        (* snapshot isolation must hold on the recovered instance: a
           reader opened before the probe commit never sees it *)
        let snap = Db.begin_txn ~mode:`Snapshot db in
        let frozen = snapshot_rows db snap in
        let probe = Insert { first_id = 1_000_000 + index; size = 1 } in
        let txn = Db.begin_txn db in
        List.iter (fun s -> ignore (Db.exec db txn s : Db.exec_result)) (stmts_of spec probe);
        Db.commit db txn;
        let snap_ok = snapshot_rows db snap = frozen in
        Db.commit db snap;
        if not snap_ok then Error "post-recovery snapshot saw the probe commit"
        else begin
          let db2 = reopen_src vfs in
          if rows_equal (actual_rows db2) (model_rows spec (visible_ops @ [ probe ])) then Ok ()
          else Error "post-recovery commit did not survive a second restart"
        end
      end
  in
  accumulate totals vfs;
  result

let explore ?(spec = default_db_spec) ?(stride = 1) () =
  let ops = ops_of_spec spec in
  let total_events = count_db_events spec ops in
  let totals = Metrics.create () in
  let failures = ref [] in
  let points = indices ~total:total_events ~stride in
  List.iter
    (fun k ->
      match run_db_crash_point spec ops ~totals k with
      | Ok () -> ()
      | Error msg -> failures := (k, msg) :: !failures)
    points;
  {
    total_events;
    explored = List.length points;
    failures = List.rev !failures;
    fault_metrics = Metrics.snapshot totals;
  }

(* ---------- persistent-queue explorer ---------- *)

type queue_spec = {
  messages : int;
  ack_every : int;  (* drain the queue after every n-th enqueue; 0 = never *)
  qseed : int;
}

let default_queue_spec = { messages = 12; ack_every = 4; qseed = 9 }

type queue_progress = {
  mutable enqueued : string list;  (* completed enqueues, newest first *)
  mutable enq_in_flight : string option;
  mutable acked : string list;
  mutable ack_in_flight : string option;
}

let run_queue_workload spec vfs p =
  let rng = Prng.create ~seed:spec.qseed in
  let q = Pq.open_ vfs ~name:"deltas" in
  for i = 1 to spec.messages do
    let m = Printf.sprintf "msg-%04d-%s" i (Prng.alpha_string rng 8) in
    p.enq_in_flight <- Some m;
    Pq.enqueue q m;
    p.enqueued <- m :: p.enqueued;
    p.enq_in_flight <- None;
    if spec.ack_every > 0 && i mod spec.ack_every = 0 then begin
      let continue = ref true in
      while !continue do
        match Pq.peek q with
        | None -> continue := false
        | Some m ->
          p.ack_in_flight <- Some m;
          Pq.ack q;
          p.acked <- m :: p.acked;
          p.ack_in_flight <- None
      done
    end
  done;
  q

let drain q =
  let rec go acc =
    match Pq.peek q with
    | None -> List.rev acc
    | Some m ->
      Pq.ack q;
      go (m :: acc)
  in
  go []

let count_queue_events spec =
  let vfs = Vfs.in_memory () in
  Vfs.set_fault vfs (Some (Fault.make ~seed:spec.qseed ()));
  let p = { enqueued = []; enq_in_flight = None; acked = []; ack_in_flight = None } in
  let (_ : Pq.t) = run_queue_workload spec vfs p in
  match Vfs.fault vfs with Some f -> Fault.events f | None -> assert false

(* at-least-once invariant: after a crash at any point, every completed
   enqueue that was not (possibly) consumed must be redelivered; nothing
   that was never enqueued may appear; and the re-opened queue must
   still accept and retain new messages across another restart. *)
let run_queue_crash_point spec ~totals index =
  let vfs = Vfs.in_memory () in
  Vfs.set_fault vfs (Some (Fault.make ~fail_stop_after:index ~seed:(spec.qseed + index) ()));
  let p = { enqueued = []; enq_in_flight = None; acked = []; ack_in_flight = None } in
  (match run_queue_workload spec vfs p with
   | (_ : Pq.t) -> ()
   | exception Fault.Crash _ -> ());
  Vfs.crash_reset vfs;
  let q = Pq.open_ vfs ~name:"deltas" in
  let delivered = drain q in
  let required =
    List.filter
      (fun m -> not (List.mem m p.acked) && p.ack_in_flight <> Some m)
      (List.rev p.enqueued)
  in
  let lost = List.filter (fun m -> not (List.mem m delivered)) required in
  let phantom =
    List.filter
      (fun m -> not (List.mem m p.enqueued) && p.enq_in_flight <> Some m)
      delivered
  in
  let result =
    if lost <> [] then
      Error (Printf.sprintf "lost %d unacked message(s), e.g. %s" (List.length lost)
               (List.hd lost))
    else if phantom <> [] then
      Error (Printf.sprintf "delivered %d phantom message(s), e.g. %s" (List.length phantom)
               (List.hd phantom))
    else begin
      (* the repaired log must keep accepting messages durably *)
      Pq.enqueue q "probe-after-recovery";
      Vfs.crash_reset vfs;
      let q2 = Pq.open_ vfs ~name:"deltas" in
      if List.mem "probe-after-recovery" (drain q2) then Ok ()
      else Error "post-recovery enqueue lost after a second restart"
    end
  in
  accumulate totals vfs;
  result

let explore_queue ?(spec = default_queue_spec) ?(stride = 1) () =
  let total_events = count_queue_events spec in
  let totals = Metrics.create () in
  let failures = ref [] in
  let points = indices ~total:total_events ~stride in
  List.iter
    (fun k ->
      match run_queue_crash_point spec ~totals k with
      | Ok () -> ()
      | Error msg -> failures := (k, msg) :: !failures)
    points;
  {
    total_events;
    explored = List.length points;
    failures = List.rev !failures;
    fault_metrics = Metrics.snapshot totals;
  }

(* ---------- batched-queue explorer ---------- *)

(* The coalesced transport path: enqueue_batch appends a whole batch of
   frames under one fsync, ack_run consumes whole runs under one sidecar
   write.  New crash windows vs the per-message path:

   - mid-batch append: the torn write may persist a frame-boundary
     PREFIX of the batch (the tail-repair truncates the rest) — allowed,
     because none of the batch was acknowledged, but the surviving
     subset must be a prefix (no holes, no reordering);
   - mid-ack_run: the sidecar write is one event, so the whole run is
     either consumed or redelivered — never split. *)

type batched_queue_spec = {
  b_messages : int;
  batch : int;  (* messages per enqueue_batch *)
  run : int;    (* max messages per peek_run/ack_run *)
  bseed : int;
}

let default_batched_queue_spec = { b_messages = 18; batch = 3; run = 4; bseed = 13 }

type batched_queue_progress = {
  mutable b_enqueued : string list;  (* completed batches' messages, newest first *)
  mutable b_enq_in_flight : string list;  (* batch being appended, in order *)
  mutable b_acked : string list;
  mutable b_ack_in_flight : string list;  (* run being acked, in order *)
}

let batched_queue_batches spec =
  let rng = Prng.create ~seed:spec.bseed in
  let msgs =
    List.init spec.b_messages (fun i ->
        Printf.sprintf "msg-%04d-%s" (i + 1) (Prng.alpha_string rng 8))
  in
  let rec split acc = function
    | [] -> List.rev acc
    | rest ->
      let b = List.filteri (fun i _ -> i < spec.batch) rest in
      let rest = List.filteri (fun i _ -> i >= spec.batch) rest in
      split (b :: acc) rest
  in
  split [] msgs

let drain_runs spec p q =
  let continue = ref true in
  while !continue do
    match Pq.peek_run q ~max:spec.run with
    | [] -> continue := false
    | run ->
      p.b_ack_in_flight <- run;
      Pq.ack_run q (List.length run);
      p.b_acked <- List.rev_append run p.b_acked;
      p.b_ack_in_flight <- []
  done

let run_batched_queue_workload spec vfs p =
  let q = Pq.open_ vfs ~name:"deltas" in
  List.iteri
    (fun i batch ->
      p.b_enq_in_flight <- batch;
      Pq.enqueue_batch q batch;
      p.b_enqueued <- List.rev_append batch p.b_enqueued;
      p.b_enq_in_flight <- [];
      if (i + 1) mod 2 = 0 then drain_runs spec p q)
    (batched_queue_batches spec);
  q

let count_batched_queue_events spec =
  let vfs = Vfs.in_memory () in
  Vfs.set_fault vfs (Some (Fault.make ~seed:spec.bseed ()));
  let p = { b_enqueued = []; b_enq_in_flight = []; b_acked = []; b_ack_in_flight = [] } in
  let (_ : Pq.t) = run_batched_queue_workload spec vfs p in
  match Vfs.fault vfs with Some f -> Fault.events f | None -> assert false

(* [sub] must be a prefix of [full] — the only shape a torn batch append
   may survive in *)
let rec is_prefix sub full =
  match (sub, full) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs, y :: ys -> x = y && is_prefix xs ys

let run_batched_queue_crash_point spec ~totals index =
  let vfs = Vfs.in_memory () in
  Vfs.set_fault vfs (Some (Fault.make ~fail_stop_after:index ~seed:(spec.bseed + index) ()));
  let p = { b_enqueued = []; b_enq_in_flight = []; b_acked = []; b_ack_in_flight = [] } in
  (match run_batched_queue_workload spec vfs p with
   | (_ : Pq.t) -> ()
   | exception Fault.Crash _ -> ());
  Vfs.crash_reset vfs;
  let q = Pq.open_ vfs ~name:"deltas" in
  let delivered =
    let rec go acc =
      match Pq.peek_run q ~max:spec.run with
      | [] -> List.rev acc
      | run ->
        Pq.ack_run q (List.length run);
        go (List.rev_append run acc)
    in
    go []
  in
  let required =
    List.filter
      (fun m -> not (List.mem m p.b_acked) && not (List.mem m p.b_ack_in_flight))
      (List.rev p.b_enqueued)
  in
  let lost = List.filter (fun m -> not (List.mem m delivered)) required in
  let phantom =
    List.filter
      (fun m -> not (List.mem m p.b_enqueued) && not (List.mem m p.b_enq_in_flight))
      delivered
  in
  let torn_survivors = List.filter (fun m -> List.mem m delivered) p.b_enq_in_flight in
  let result =
    if lost <> [] then
      Error
        (Printf.sprintf "lost %d unacked message(s), e.g. %s" (List.length lost) (List.hd lost))
    else if phantom <> [] then
      Error
        (Printf.sprintf "delivered %d phantom message(s), e.g. %s" (List.length phantom)
           (List.hd phantom))
    else if not (is_prefix torn_survivors p.b_enq_in_flight) then
      Error "torn batch survived as a non-prefix subset (hole or reorder inside the batch)"
    else begin
      (* the repaired log must keep accepting batches durably *)
      Pq.enqueue_batch q [ "probe-1"; "probe-2" ];
      Vfs.crash_reset vfs;
      let q2 = Pq.open_ vfs ~name:"deltas" in
      let redelivered = drain q2 in
      if List.mem "probe-1" redelivered && List.mem "probe-2" redelivered then Ok ()
      else Error "post-recovery batch enqueue lost after a second restart"
    end
  in
  accumulate totals vfs;
  result

let explore_batched_queue ?(spec = default_batched_queue_spec) ?(stride = 1) () =
  let total_events = count_batched_queue_events spec in
  let totals = Metrics.create () in
  let failures = ref [] in
  let points = indices ~total:total_events ~stride in
  List.iter
    (fun k ->
      match run_batched_queue_crash_point spec ~totals k with
      | Ok () -> ()
      | Error msg -> failures := (k, msg) :: !failures)
    points;
  {
    total_events;
    explored = List.length points;
    failures = List.rev !failures;
    fault_metrics = Metrics.snapshot totals;
  }

(* ---------- warehouse-refresh idempotency explorer ---------- *)

(* Delta batches travel through the queue; the consumer applies each to
   the warehouse and advances a watermark (highest applied batch id) in
   the SAME warehouse transaction, then acks.  A crash between commit
   and ack redelivers the batch; the watermark makes the redelivery a
   no-op.  Faults are injected on the queue's vfs only (the consumer
   process dies mid-refresh); the warehouse survives as bytes and is
   re-opened through its own WAL recovery. *)

type refresh_spec = { batches : int; batch_size : int; rseed : int }

let default_refresh_spec = { batches = 8; batch_size = 4; rseed = 11 }

let wm_table = "refresh_watermark"

let wm_schema =
  Schema.make
    [
      { Schema.name = "id"; ty = Value.Tint; nullable = false };
      { Schema.name = "last_batch"; ty = Value.Tint; nullable = false };
    ]

let encode_batch ~bid ~first_id ~size = Printf.sprintf "%d %d %d" bid first_id size
let decode_batch s = Scanf.sscanf s "%d %d %d" (fun a b c -> (a, b, c))

let fresh_warehouse () =
  let vfs = Vfs.in_memory () in
  let db = Db.create ~pool_pages:64 ~vfs ~name:"wh" () in
  Db.set_day db 0;
  let (_ : Table.t) = Workload.create_parts_table db in
  let (_ : Table.t) = Db.create_table db ~name:wm_table wm_schema in
  Db.with_txn db (fun txn ->
      ignore (Db.insert db txn wm_table [| Value.Int 0; Value.Int 0 |] : Dw_storage.Heap_file.rid));
  (vfs, db)

let wh_catalog = parts_catalog @ [ (wm_table, wm_schema, None) ]

let reopen_warehouse vfs =
  Vfs.crash_reset vfs;
  let db, (_ : Dw_txn.Recovery.stats) =
    Db.reopen ~pool_pages:64 ~vfs ~name:"wh" ~tables:wh_catalog ()
  in
  Db.set_day db 0;
  db

let watermark db txn =
  match Db.select db txn wm_table () with
  | [ [| _; Value.Int wm |] ] -> wm
  | _ -> invalid_arg "refresh watermark table corrupted"

let apply_batch spec wh msg =
  let bid, first_id, size = decode_batch msg in
  Db.with_txn wh (fun txn ->
      if bid > watermark wh txn then begin
        List.iter
          (fun s -> ignore (Db.exec wh txn s : Db.exec_result))
          (Workload.insert_parts_txn ~seed:spec.rseed ~first_id ~size ~day:0 ());
        ignore
          (Db.update_where wh txn wm_table
             ~set:[ ("last_batch", Expr.Lit (Value.Int bid)) ]
             ~where:None
            : int)
      end)

let consume spec q wh =
  let continue = ref true in
  while !continue do
    match Pq.peek q with
    | None -> continue := false
    | Some m ->
      apply_batch spec wh m;
      Pq.ack q
  done

let produce spec qvfs =
  let q = Pq.open_ qvfs ~name:"deltas" in
  for bid = 1 to spec.batches do
    Pq.enqueue q
      (encode_batch ~bid ~first_id:(1 + ((bid - 1) * spec.batch_size)) ~size:spec.batch_size)
  done

let count_refresh_events spec =
  let qvfs = Vfs.in_memory () in
  produce spec qvfs;
  Vfs.set_fault qvfs (Some (Fault.make ~seed:spec.rseed ()));
  let _, wh = fresh_warehouse () in
  let q = Pq.open_ qvfs ~name:"deltas" in
  consume spec q wh;
  match Vfs.fault qvfs with Some f -> Fault.events f | None -> assert false

let run_refresh_crash_point spec ~totals index =
  let qvfs = Vfs.in_memory () in
  produce spec qvfs;
  Vfs.set_fault qvfs (Some (Fault.make ~fail_stop_after:index ~seed:(spec.rseed + index) ()));
  let whvfs, wh = fresh_warehouse () in
  (match
     let q = Pq.open_ qvfs ~name:"deltas" in
     consume spec q wh
   with
   | () -> ()
   | exception Fault.Crash _ -> ());
  (* restart: both the queue and the warehouse come back from bytes *)
  Vfs.crash_reset qvfs;
  let wh2 = reopen_warehouse whvfs in
  let q2 = Pq.open_ qvfs ~name:"deltas" in
  consume spec q2 wh2;
  let expected =
    model_rows
      { txns = 0; txn_size = 0; seed = spec.rseed; checkpoint_every = 0; group = 1 }
      (List.init spec.batches (fun i ->
           Insert { first_id = 1 + (i * spec.batch_size); size = spec.batch_size }))
  in
  let act = actual_rows wh2 in
  let wm = Db.with_txn wh2 (fun txn -> watermark wh2 txn) in
  let result =
    if not (rows_equal act expected) then
      Error
        (Printf.sprintf "refresh not exactly-once: %d rows vs %d expected" (List.length act)
           (List.length expected))
    else if wm <> spec.batches then
      Error (Printf.sprintf "watermark %d after %d batches" wm spec.batches)
    else Ok ()
  in
  accumulate totals qvfs;
  result

let explore_refresh ?(spec = default_refresh_spec) ?(stride = 1) () =
  let total_events = count_refresh_events spec in
  let totals = Metrics.create () in
  let failures = ref [] in
  let points = indices ~total:total_events ~stride in
  List.iter
    (fun k ->
      match run_refresh_crash_point spec ~totals k with
      | Ok () -> ()
      | Error msg -> failures := (k, msg) :: !failures)
    points;
  {
    total_events;
    explored = List.length points;
    failures = List.rev !failures;
    fault_metrics = Metrics.snapshot totals;
  }

(* ---------- micro-batched refresh explorer ---------- *)

(* Like the refresh explorer, but the consumer applies a RUN of delta
   batches per warehouse transaction (the micro-batched integrator's
   shape): every batch in the run with bid > watermark is applied and
   the watermark advances to the run's last bid, all in one transaction,
   then the whole run is acked at once.  A crash mid-run must leave the
   warehouse at a batch (source-transaction) boundary: either the whole
   run's transaction committed or none of it, and redelivery after the
   crash is filtered by the watermark — still exactly-once. *)

let apply_run spec wh msgs =
  match msgs with
  | [] -> ()
  | _ ->
    Db.with_txn wh (fun txn ->
        let wm = watermark wh txn in
        let last = ref wm in
        List.iter
          (fun msg ->
            let bid, first_id, size = decode_batch msg in
            if bid > wm then begin
              List.iter
                (fun s -> ignore (Db.exec wh txn s : Db.exec_result))
                (Workload.insert_parts_txn ~seed:spec.rseed ~first_id ~size ~day:0 ());
              last := max !last bid
            end)
          msgs;
        if !last > wm then
          ignore
            (Db.update_where wh txn wm_table
               ~set:[ ("last_batch", Expr.Lit (Value.Int !last)) ]
               ~where:None
              : int))

let consume_runs spec ~run q wh =
  let continue = ref true in
  while !continue do
    match Pq.peek_run q ~max:run with
    | [] -> continue := false
    | msgs ->
      apply_run spec wh msgs;
      Pq.ack_run q (List.length msgs)
  done

let count_batched_refresh_events spec ~run =
  let qvfs = Vfs.in_memory () in
  produce spec qvfs;
  Vfs.set_fault qvfs (Some (Fault.make ~seed:spec.rseed ()));
  let _, wh = fresh_warehouse () in
  let q = Pq.open_ qvfs ~name:"deltas" in
  consume_runs spec ~run q wh;
  match Vfs.fault qvfs with Some f -> Fault.events f | None -> assert false

let run_batched_refresh_crash_point spec ~run ~totals index =
  let qvfs = Vfs.in_memory () in
  produce spec qvfs;
  Vfs.set_fault qvfs (Some (Fault.make ~fail_stop_after:index ~seed:(spec.rseed + index) ()));
  let whvfs, wh = fresh_warehouse () in
  (match
     let q = Pq.open_ qvfs ~name:"deltas" in
     consume_runs spec ~run q wh
   with
   | () -> ()
   | exception Fault.Crash _ -> ());
  Vfs.crash_reset qvfs;
  let wh2 = reopen_warehouse whvfs in
  let q2 = Pq.open_ qvfs ~name:"deltas" in
  consume_runs spec ~run q2 wh2;
  let expected =
    model_rows
      { txns = 0; txn_size = 0; seed = spec.rseed; checkpoint_every = 0; group = 1 }
      (List.init spec.batches (fun i ->
           Insert { first_id = 1 + (i * spec.batch_size); size = spec.batch_size }))
  in
  let act = actual_rows wh2 in
  let wm = Db.with_txn wh2 (fun txn -> watermark wh2 txn) in
  let result =
    if not (rows_equal act expected) then
      Error
        (Printf.sprintf "batched refresh not exactly-once: %d rows vs %d expected"
           (List.length act) (List.length expected))
    else if wm <> spec.batches then
      Error (Printf.sprintf "watermark %d after %d batches" wm spec.batches)
    else Ok ()
  in
  accumulate totals qvfs;
  result

let explore_refresh_batched ?(spec = default_refresh_spec) ?(run = 3) ?(stride = 1) () =
  let total_events = count_batched_refresh_events spec ~run in
  let totals = Metrics.create () in
  let failures = ref [] in
  let points = indices ~total:total_events ~stride in
  List.iter
    (fun k ->
      match run_batched_refresh_crash_point spec ~run ~totals k with
      | Ok () -> ()
      | Error msg -> failures := (k, msg) :: !failures)
    points;
  {
    total_events;
    explored = List.length points;
    failures = List.rev !failures;
    fault_metrics = Metrics.snapshot totals;
  }

(* ---------- transient-fault file shipping ---------- *)

(* ship a file onto a destination where 20%+ of writes and fsyncs fail
   transiently; retries must absorb every fault and the copy must be
   byte-identical.  Returns (stats, bytes_match). *)
let ship_under_faults ?(bytes = 128 * 1024) ?(fault_p = 0.25) ~seed () =
  let src = Vfs.in_memory () in
  let rng = Prng.create ~seed in
  let payload = Bytes.init bytes (fun _ -> Char.chr (Prng.int rng 256)) in
  let f = Vfs.create src "delta.bin" in
  Vfs.write_at f ~off:0 payload;
  Vfs.close f;
  let dst = Vfs.in_memory () in
  Vfs.set_fault dst
    (Some (Fault.make ~write_fail_p:fault_p ~fsync_fail_p:fault_p ~seed:(seed + 1) ()));
  let result =
    Dw_transport.File_ship.ship ~chunk_size:4096 ~max_retries:64 ~src ~src_name:"delta.bin"
      ~dst ~dst_name:"delta.bin" ()
  in
  match result with
  | Error e -> Error e
  | Ok stats ->
    let g = Vfs.open_existing dst "delta.bin" in
    let copied = Vfs.read_at g ~off:0 ~len:(Vfs.size g) in
    Vfs.close g;
    Ok (stats, Bytes.equal payload copied)

(* ---------- bench entry point (dwbench "crash") ---------- *)

let print_report name r =
  Printf.printf "%-10s %5d events  %4d crash points  %d failures\n" name r.total_events
    r.explored (List.length r.failures);
  List.iter (fun (k, msg) -> Printf.printf "    FAIL at event %d: %s\n" k msg) r.failures

let run_bench ~scale =
  Bench_support.section "crash-point exploration (fault-injection VFS)";
  let stride = 8 in
  let db_spec = { default_db_spec with txns = default_db_spec.txns * scale } in
  let q_spec = { default_queue_spec with messages = default_queue_spec.messages * scale } in
  let r_spec = { default_refresh_spec with batches = default_refresh_spec.batches * scale } in
  let g_spec = { db_spec with group = grouped_db_spec.group } in
  let bq_spec =
    { default_batched_queue_spec with b_messages = default_batched_queue_spec.b_messages * scale }
  in
  let db_report, db_t = Bench_support.time (fun () -> explore ~spec:db_spec ~stride ()) in
  let g_report, g_t = Bench_support.time (fun () -> explore ~spec:g_spec ~stride ()) in
  let q_report, q_t = Bench_support.time (fun () -> explore_queue ~spec:q_spec ~stride ()) in
  let bq_report, bq_t =
    Bench_support.time (fun () -> explore_batched_queue ~spec:bq_spec ~stride ())
  in
  let r_report, r_t =
    Bench_support.time (fun () -> explore_refresh ~spec:r_spec ~stride ())
  in
  let br_report, br_t =
    Bench_support.time (fun () -> explore_refresh_batched ~spec:r_spec ~stride ())
  in
  print_report "db" db_report;
  print_report "db-group" g_report;
  print_report "queue" q_report;
  print_report "queue-bat" bq_report;
  print_report "refresh" r_report;
  print_report "refresh-b" br_report;
  Printf.printf "sweep times: db %s (+group %s), queue %s (+batched %s), refresh %s (+batched %s)\n"
    (Bench_support.dur db_t) (Bench_support.dur g_t) (Bench_support.dur q_t)
    (Bench_support.dur bq_t) (Bench_support.dur r_t) (Bench_support.dur br_t);
  (match ship_under_faults ~seed:(77 + scale) () with
   | Error e -> Printf.printf "ship under 25%% transient faults: FAILED (%s)\n" e
   | Ok (stats, identical) ->
     Printf.printf "ship under 25%% transient faults: %d bytes, %d chunks, %d retries, %s\n"
       stats.Dw_transport.File_ship.bytes stats.Dw_transport.File_ship.chunks
       stats.Dw_transport.File_ship.retries
       (if identical then "byte-identical" else "CORRUPTED"));
  let rows =
    List.map
      (fun (name, v) -> [ name; string_of_int v ])
      (Metrics.diff
         ~before:[]
         ~after:
           (let totals = Metrics.create () in
            List.iter
              (fun r -> List.iter (fun (n, v) -> Metrics.add totals n v) r.fault_metrics)
              [ db_report; g_report; q_report; bq_report; r_report; br_report ];
            Metrics.snapshot totals))
  in
  Bench_support.print_table ~title:"injected faults and recovery work (totals)"
    ~header:[ "counter"; "total" ] ~rows
