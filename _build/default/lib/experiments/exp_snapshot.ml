(* Experiment S1 — paper Section 3.1.2: differential-snapshot extraction
   cost relative to the other methods.

   Expected shape: snapshot differential is the most expensive extraction
   path (full dump + diff each round, plus partition traffic for the
   bounded-memory algorithm); log extraction is the cheapest on the
   source's critical path. *)

module Db = Dw_engine.Db
module Workload = Dw_workload.Workload
module Snapshot_extract = Dw_core.Snapshot_extract
module Timestamp_extract = Dw_core.Timestamp_extract
module Trigger_extract = Dw_core.Trigger_extract
module Log_extract = Dw_core.Log_extract
open Bench_support

let run ~scale =
  section "S1: differential snapshot vs other extraction methods";
  let table_rows = 20_000 * scale in
  let delta_rows = table_rows / 20 in
  (* source with archive logging so the log method is available *)
  let db = fresh_source ~archive:true ~rows:table_rows () in
  (* snapshot round 0 *)
  (match
     Snapshot_extract.extract db ~table:"parts" ~prev_snapshot:None ~snapshot_dest:"s0.snap"
       ~algorithm:Snapshot_extract.Sort_merge
   with
   | Ok _ -> ()
   | Error e -> failwith e);
  let watermark = Db.current_day db in
  Db.set_day db (watermark + 1);
  let since_lsn = Dw_txn.Wal.next_lsn (Db.wal db) in
  let handle = Trigger_extract.install db ~table:"parts" in
  (* the change activity: one update txn + one delete txn + one insert txn *)
  let t_workload_with_trigger =
    time_only (fun () ->
        Db.with_txn db (fun txn ->
            ignore (Db.exec db txn (Workload.update_parts_stmt ~first_id:1 ~size:delta_rows)
                    : Db.exec_result));
        Db.with_txn db (fun txn ->
            ignore
              (Db.exec db txn
                 (Workload.delete_parts_stmt ~first_id:(table_rows - delta_rows) ~size:(delta_rows / 2))
                : Db.exec_result));
        Db.with_txn db (fun txn ->
            List.iter
              (fun stmt -> ignore (Db.exec db txn stmt : Db.exec_result))
              (Workload.insert_parts_txn ~first_id:(table_rows + 1) ~size:(delta_rows / 2)
                 ~day:(Db.current_day db) ())))
  in
  (* each method extracts the same change set *)
  let (_, t_trigger) = time (fun () -> Trigger_extract.collect db handle) in
  let (_, t_log) = time (fun () -> Log_extract.extract ~since_lsn db ~table:"parts" ()) in
  let (_, t_ts) =
    time (fun () ->
        Timestamp_extract.extract db ~table:"parts" ~since:watermark
          ~output:(Timestamp_extract.To_file "ts.asc"))
  in
  let sm = ref (Ok 0.0) in
  let t_snap_sort =
    time_only (fun () ->
        match
          Snapshot_extract.extract db ~table:"parts" ~prev_snapshot:(Some "s0.snap")
            ~snapshot_dest:"s1.snap" ~algorithm:Snapshot_extract.Sort_merge
        with
        | Ok _ -> ()
        | Error e -> sm := Error e)
  in
  let t_snap_hash =
    time_only (fun () ->
        match
          Snapshot_extract.extract db ~table:"parts" ~prev_snapshot:(Some "s0.snap")
            ~snapshot_dest:"s2.snap" ~algorithm:(Snapshot_extract.Partitioned_hash 16)
        with
        | Ok _ -> ()
        | Error e -> sm := Error e)
  in
  let t_snap_window =
    time_only (fun () ->
        match
          Snapshot_extract.extract db ~table:"parts" ~prev_snapshot:(Some "s0.snap")
            ~snapshot_dest:"s3.snap" ~algorithm:(Snapshot_extract.Window 4096)
        with
        | Ok _ -> ()
        | Error e -> sm := Error e)
  in
  (match !sm with Ok _ -> () | Error e -> failwith e);
  print_table ~title:(Printf.sprintf "Extraction of a %d-row change set from a %d-row table" (2 * delta_rows) table_rows)
    ~header:[ "Method"; "extraction time"; "note" ]
    ~rows:
      [
        [ "trigger (collect)"; dur t_trigger;
          Printf.sprintf "capture already paid during txns (%s)" (dur t_workload_with_trigger) ];
        [ "log (archive)"; dur t_log; "off the critical path" ];
        [ "timestamp (file)"; dur t_ts; "full scan; no deletes" ];
        [ "snapshot sort-merge"; dur t_snap_sort; "full dump + diff" ];
        [ "snapshot partitioned-hash"; dur t_snap_hash; "full dump + partition + diff" ];
        [ "snapshot window (LGM96)"; dur t_snap_window; "single pass, bounded memory" ];
      ];
  print_endline
    "shape check (paper): the snapshot methods cost the most per round; the log method has no \
     direct impact on source transactions"
