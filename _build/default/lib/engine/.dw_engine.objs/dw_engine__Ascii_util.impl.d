lib/engine/ascii_util.ml: Buffer Bytes Db Dw_relation Dw_storage List Printf Table
