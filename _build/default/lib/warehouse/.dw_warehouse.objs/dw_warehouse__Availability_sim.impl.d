lib/warehouse/availability_sim.ml: Array List Queue
