module Db = Dw_engine.Db
module Schema = Dw_relation.Schema
module Value = Dw_relation.Value
module Vfs = Dw_storage.Vfs
module Checksum = Dw_util.Checksum

type state = Bootstrapping | Complete

type row = {
  table : string;
  run_id : string;
  state : state;
  next_key : int;
  chunks_done : int;
  rows_loaded : int;
  last_txn : int;
  lease_owner : string;
  lease_expiry : float;
}

let table_name = "__bootstrap_state"

let schema =
  Schema.make
    [
      { Schema.name = "table_name"; ty = Value.Tstring 40; nullable = false };
      { Schema.name = "run_id"; ty = Value.Tstring 16; nullable = false };
      { Schema.name = "state"; ty = Value.Tint; nullable = false };
      { Schema.name = "next_key"; ty = Value.Tint; nullable = false };
      { Schema.name = "chunks_done"; ty = Value.Tint; nullable = false };
      { Schema.name = "rows_loaded"; ty = Value.Tint; nullable = false };
      { Schema.name = "last_txn"; ty = Value.Tint; nullable = false };
      { Schema.name = "lease_owner"; ty = Value.Tstring 16; nullable = false };
      { Schema.name = "lease_expiry"; ty = Value.Tfloat; nullable = false };
    ]

let ensure_table db =
  match Db.table_opt db table_name with
  | Some _ -> ()
  | None -> ignore (Db.create_table db ~name:table_name schema : Dw_engine.Table.t)

let int_of_state = function Bootstrapping -> 0 | Complete -> 1

let state_of_int = function
  | 0 -> Bootstrapping
  | 1 -> Complete
  | n -> invalid_arg (Printf.sprintf "Run_state: unknown state %d" n)

let tuple_of_row r =
  [|
    Value.Str r.table;
    Value.Str r.run_id;
    Value.Int (int_of_state r.state);
    Value.Int r.next_key;
    Value.Int r.chunks_done;
    Value.Int r.rows_loaded;
    Value.Int r.last_txn;
    Value.Str r.lease_owner;
    Value.Float r.lease_expiry;
  |]

let row_of_tuple t =
  match t with
  | [|
      Value.Str table;
      Value.Str run_id;
      Value.Int state;
      Value.Int next_key;
      Value.Int chunks_done;
      Value.Int rows_loaded;
      Value.Int last_txn;
      Value.Str lease_owner;
      Value.Float lease_expiry;
    |] ->
    {
      table;
      run_id;
      state = state_of_int state;
      next_key;
      chunks_done;
      rows_loaded;
      last_txn;
      lease_owner;
      lease_expiry;
    }
  | _ -> invalid_arg "Run_state: malformed state row"

let get db txn ~table =
  match Db.find_by_key db txn table_name [| Value.Str table |] with
  | Some (_, tuple) -> Some (row_of_tuple tuple)
  | None -> None

let put db txn r =
  let tuple = tuple_of_row r in
  match Db.find_by_key db txn table_name [| Value.Str r.table |] with
  | Some (rid, _) -> Db.update_rid db txn table_name rid tuple
  | None -> ignore (Db.insert_row db txn table_name tuple : Dw_storage.Heap_file.rid)

(* ---------- advisory run/step journal ---------- *)

let journal_name table = Printf.sprintf "bootstrap.%s.journal" table

let journal_append vfs ~table record =
  if String.contains record '\n' then invalid_arg "Run_state.journal_append: newline in record";
  let file = Vfs.open_or_create vfs (journal_name table) in
  let line = Printf.sprintf "%s|%s\n" record (Checksum.hex record) in
  ignore (Vfs.append file (Bytes.of_string line) : int);
  Vfs.fsync file;
  Vfs.close file

let journal_read vfs ~table =
  let name = journal_name table in
  if not (Vfs.exists vfs name) then []
  else begin
    let file = Vfs.open_existing vfs name in
    let len = Vfs.size file in
    let data = if len = 0 then "" else Bytes.to_string (Vfs.read_at file ~off:0 ~len) in
    Vfs.close file;
    let rec go acc = function
      | [] -> List.rev acc
      | "" :: rest -> go acc rest
      | line :: rest -> (
        match String.rindex_opt line '|' with
        | None -> List.rev acc
        | Some i ->
          let body = String.sub line 0 i in
          let crc = String.sub line (i + 1) (String.length line - i - 1) in
          if String.equal (Checksum.hex body) crc then go (body :: acc) rest else List.rev acc)
    in
    go [] (String.split_on_char '\n' data)
  end
