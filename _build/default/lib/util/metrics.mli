(** Lightweight named counters used for I/O and cost accounting.

    A {!t} is a registry of integer counters.  The storage layer counts page
    reads/writes and bytes moved; benches snapshot a registry before and
    after a measured region and report the difference, which explains the
    shape of the wall-clock results. *)

type t

val create : unit -> t

val incr : t -> string -> unit
(** [incr t name] adds 1 to counter [name], creating it at 0 if needed. *)

val add : t -> string -> int -> unit
(** [add t name n] adds [n] to counter [name]. *)

val get : t -> string -> int
(** [get t name] is the counter value, 0 if never touched. *)

val reset : t -> unit
(** Zero every counter. *)

val snapshot : t -> (string * int) list
(** All counters, sorted by name. *)

val diff : before:(string * int) list -> after:(string * int) list -> (string * int) list
(** Per-counter difference [after - before], dropping zero entries. *)

val pp : Format.formatter -> t -> unit
