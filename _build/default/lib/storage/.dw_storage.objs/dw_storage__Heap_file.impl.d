lib/storage/heap_file.ml: Buffer_pool Bytes Dw_relation Int List Page Printf Vfs
