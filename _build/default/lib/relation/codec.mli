(** Record codecs.

    Two encodings are used throughout the system:

    - {b binary}: fixed-width records (what heap pages, Export dumps and the
      redo log store).  Width is [Schema.record_size]; layout is a null
      bitmap followed by each column at its fixed offset.
    - {b ascii}: one [|]-separated line per record (what the timestamp
      extractor's file output and the ASCII Loader consume, mirroring the
      paper's dump-to-file path). *)

val encode_binary : Schema.t -> Tuple.t -> bytes
(** Fixed-width encoding.  The tuple must validate against the schema. *)

val encode_binary_into : Schema.t -> Tuple.t -> bytes -> int -> unit
(** [encode_binary_into schema tuple buf off] writes in place. *)

val decode_binary : Schema.t -> bytes -> int -> Tuple.t
(** [decode_binary schema buf off] reads a record at offset [off]. *)

val encode_ascii : Schema.t -> Tuple.t -> string
(** One line, no trailing newline.  [|], [\n] and [\\] in strings are
    escaped. *)

val decode_ascii : Schema.t -> string -> (Tuple.t, string) result
(** Inverse of {!encode_ascii}. *)
