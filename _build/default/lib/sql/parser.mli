(** Recursive-descent parser for the SQL dialect.

    Grammar (keywords case-insensitive):

    {v
    stmt    := SELECT items FROM ident [WHERE expr] [ORDER BY ident {, ident}] [;]
             | INSERT INTO ident [( ident {, ident} )] VALUES row {, row} [;]
             | UPDATE ident SET ident = expr {, ident = expr} [WHERE expr] [;]
             | DELETE FROM ident [WHERE expr] [;]
             | CREATE TABLE ident ( coldef {, coldef} ) [;]
    row     := ( literal {, literal} )
    coldef  := ident type [NOT NULL] [PRIMARY KEY | KEY]
    type    := INT | FLOAT | BOOL | DATE | STRING ( int )
    expr    := or-expr with AND/OR/NOT, comparisons, IS [NOT] NULL,
               + - * /, parentheses, column refs, literals
    literal := int | float | 'string' | TRUE | FALSE | NULL | DATE int
               (numeric literals may be negated)
    v} *)

val parse : string -> (Ast.stmt, string) result

val parse_expr : string -> (Dw_relation.Expr.t, string) result
(** Parse a standalone expression (used by tests). *)
