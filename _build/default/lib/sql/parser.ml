module Expr = Dw_relation.Expr
module Value = Dw_relation.Value

exception Parse_error of string

type state = {
  tokens : Lexer.token array;
  mutable pos : int;
}

let peek st = st.tokens.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let expect st tok =
  if peek st = tok then advance st
  else fail "expected %s, found %s" (Lexer.token_to_string tok) (Lexer.token_to_string (peek st))

let expect_kw st kw = expect st (Lexer.KW kw)

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let accept_kw st kw = accept st (Lexer.KW kw)

let ident st =
  match peek st with
  | Lexer.IDENT name ->
    advance st;
    name
  | tok -> fail "expected identifier, found %s" (Lexer.token_to_string tok)

(* literals *)

let literal st =
  match peek st with
  | Lexer.INT n -> advance st; Value.Int n
  | Lexer.FLOAT f -> advance st; Value.Float f
  | Lexer.STRING s -> advance st; Value.Str s
  | Lexer.KW "TRUE" -> advance st; Value.Bool true
  | Lexer.KW "FALSE" -> advance st; Value.Bool false
  | Lexer.KW "NULL" -> advance st; Value.Null
  | Lexer.KW "DATE" -> (
      advance st;
      match peek st with
      | Lexer.INT d -> advance st; Value.Date d
      | tok -> fail "expected day number after DATE, found %s" (Lexer.token_to_string tok))
  | Lexer.MINUS -> (
      advance st;
      match peek st with
      | Lexer.INT n -> advance st; Value.Int (-n)
      | Lexer.FLOAT f -> advance st; Value.Float (-.f)
      | tok -> fail "expected number after -, found %s" (Lexer.token_to_string tok))
  | tok -> fail "expected literal, found %s" (Lexer.token_to_string tok)

(* expressions: precedence climbing *)

let rec expr_or st =
  let left = expr_and st in
  if accept_kw st "OR" then Expr.Or (left, expr_or st) else left

and expr_and st =
  let left = expr_not st in
  if accept_kw st "AND" then Expr.And (left, expr_and st) else left

and expr_not st =
  if accept_kw st "NOT" then Expr.Not (expr_not st) else expr_cmp st

and expr_cmp st =
  let left = expr_add st in
  match peek st with
  | Lexer.EQ -> advance st; Expr.Cmp (Expr.Eq, left, expr_add st)
  | Lexer.NEQ -> advance st; Expr.Cmp (Expr.Neq, left, expr_add st)
  | Lexer.LT -> advance st; Expr.Cmp (Expr.Lt, left, expr_add st)
  | Lexer.LE -> advance st; Expr.Cmp (Expr.Le, left, expr_add st)
  | Lexer.GT -> advance st; Expr.Cmp (Expr.Gt, left, expr_add st)
  | Lexer.GE -> advance st; Expr.Cmp (Expr.Ge, left, expr_add st)
  | Lexer.KW "IS" ->
    advance st;
    if accept_kw st "NOT" then begin
      expect_kw st "NULL";
      Expr.Is_not_null left
    end
    else begin
      expect_kw st "NULL";
      Expr.Is_null left
    end
  | _ -> left

and expr_add st =
  let rec loop left =
    match peek st with
    | Lexer.PLUS -> advance st; loop (Expr.Binop (Expr.Add, left, expr_mul st))
    | Lexer.MINUS -> advance st; loop (Expr.Binop (Expr.Sub, left, expr_mul st))
    | _ -> left
  in
  loop (expr_mul st)

and expr_mul st =
  let rec loop left =
    match peek st with
    | Lexer.STAR -> advance st; loop (Expr.Binop (Expr.Mul, left, expr_atom st))
    | Lexer.SLASH -> advance st; loop (Expr.Binop (Expr.Div, left, expr_atom st))
    | _ -> left
  in
  loop (expr_atom st)

and expr_atom st =
  match peek st with
  | Lexer.LPAREN ->
    advance st;
    let e = expr_or st in
    expect st Lexer.RPAREN;
    e
  | Lexer.IDENT name -> advance st; Expr.Col name
  | Lexer.INT _ | Lexer.FLOAT _ | Lexer.STRING _ | Lexer.MINUS
  | Lexer.KW ("TRUE" | "FALSE" | "NULL" | "DATE") ->
    Expr.Lit (literal st)
  | tok -> fail "expected expression, found %s" (Lexer.token_to_string tok)

(* statements *)

let comma_sep st parse_item =
  let rec loop acc =
    let item = parse_item st in
    if accept st Lexer.COMMA then loop (item :: acc) else List.rev (item :: acc)
  in
  loop []

let where_clause st = if accept_kw st "WHERE" then Some (expr_or st) else None

let agg_fn_of_kw = function
  | "COUNT" -> Some Ast.Count
  | "SUM" -> Some Ast.Sum
  | "AVG" -> Some Ast.Avg
  | "MIN" -> Some Ast.Min
  | "MAX" -> Some Ast.Max
  | _ -> None

let select_item st =
  let agg =
    match peek st with
    | Lexer.KW kw -> agg_fn_of_kw kw
    | _ -> None
  in
  match agg with
  | Some fn ->
    advance st;
    expect st Lexer.LPAREN;
    let item =
      if fn = Ast.Count && peek st = Lexer.STAR then begin
        advance st;
        expect st Lexer.RPAREN;
        Ast.Agg (Ast.Count_star, None, None)
      end
      else begin
        let e = expr_or st in
        expect st Lexer.RPAREN;
        Ast.Agg (fn, Some e, None)
      end
    in
    let alias = if accept_kw st "AS" then Some (ident st) else None in
    (match item, alias with
     | Ast.Agg (fn, e, None), alias -> Ast.Agg (fn, e, alias)
     | item, _ -> item)
  | None ->
    let e = expr_or st in
    let alias = if accept_kw st "AS" then Some (ident st) else None in
    Ast.Item (e, alias)

let select_stmt st =
  expect_kw st "SELECT";
  let items =
    if accept st Lexer.STAR then [ Ast.Star ] else comma_sep st select_item
  in
  expect_kw st "FROM";
  let table = ident st in
  let where = where_clause st in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      comma_sep st ident
    end
    else []
  in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      comma_sep st ident
    end
    else []
  in
  Ast.Select { items; table; where; group_by; order_by }

let insert_stmt st =
  expect_kw st "INSERT";
  expect_kw st "INTO";
  let table = ident st in
  let columns =
    if peek st = Lexer.LPAREN then begin
      advance st;
      let cols = comma_sep st ident in
      expect st Lexer.RPAREN;
      Some cols
    end
    else None
  in
  expect_kw st "VALUES";
  let row st =
    expect st Lexer.LPAREN;
    let vs = comma_sep st literal in
    expect st Lexer.RPAREN;
    vs
  in
  let rows = comma_sep st row in
  Ast.Insert { table; columns; rows }

let update_stmt st =
  expect_kw st "UPDATE";
  let table = ident st in
  expect_kw st "SET";
  let sets =
    comma_sep st (fun st ->
        let col = ident st in
        expect st Lexer.EQ;
        let e = expr_or st in
        (col, e))
  in
  let where = where_clause st in
  Ast.Update { table; sets; where }

let delete_stmt st =
  expect_kw st "DELETE";
  expect_kw st "FROM";
  let table = ident st in
  let where = where_clause st in
  Ast.Delete { table; where }

let column_def st =
  let col_name = ident st in
  let col_ty =
    match peek st with
    | Lexer.KW "INT" -> advance st; Value.Tint
    | Lexer.KW "FLOAT" -> advance st; Value.Tfloat
    | Lexer.KW "BOOL" -> advance st; Value.Tbool
    | Lexer.KW "DATE" -> advance st; Value.Tdate
    | Lexer.KW "STRING" -> (
        advance st;
        expect st Lexer.LPAREN;
        match peek st with
        | Lexer.INT n when n > 0 ->
          advance st;
          expect st Lexer.RPAREN;
          Value.Tstring n
        | tok -> fail "expected positive string length, found %s" (Lexer.token_to_string tok))
    | tok -> fail "expected column type, found %s" (Lexer.token_to_string tok)
  in
  let col_nullable =
    if accept_kw st "NOT" then begin
      expect_kw st "NULL";
      false
    end
    else true
  in
  let col_key =
    if accept_kw st "PRIMARY" then begin
      expect_kw st "KEY";
      true
    end
    else accept_kw st "KEY"
  in
  { Ast.col_name; col_ty; col_nullable; col_key }

let create_stmt st =
  expect_kw st "CREATE";
  expect_kw st "TABLE";
  let table = ident st in
  expect st Lexer.LPAREN;
  let columns = comma_sep st column_def in
  expect st Lexer.RPAREN;
  Ast.Create_table { table; columns }

let statement st =
  match peek st with
  | Lexer.KW "SELECT" -> select_stmt st
  | Lexer.KW "INSERT" -> insert_stmt st
  | Lexer.KW "UPDATE" -> update_stmt st
  | Lexer.KW "DELETE" -> delete_stmt st
  | Lexer.KW "CREATE" -> create_stmt st
  | tok -> fail "expected statement, found %s" (Lexer.token_to_string tok)

let finish st =
  ignore (accept st Lexer.SEMI : bool);
  match peek st with
  | Lexer.EOF -> ()
  | tok -> fail "trailing input: %s" (Lexer.token_to_string tok)

let run input parse_fn =
  match Lexer.tokenize input with
  | Error e -> Error e
  | Ok tokens -> (
      let st = { tokens = Array.of_list tokens; pos = 0 } in
      try
        let result = parse_fn st in
        finish st;
        Ok result
      with Parse_error msg -> Error msg)

let parse input = run input statement
let parse_expr input = run input expr_or
