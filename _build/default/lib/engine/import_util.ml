module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Codec = Dw_relation.Codec
module Vfs = Dw_storage.Vfs
module Page = Dw_storage.Page
module Heap_file = Dw_storage.Heap_file

type stats = { rows : int; staged_bytes : int; txns : int }

let import_table ?(batch_rows = 1000) db ~src ~table =
  match Export_util.read_header (Db.vfs db) src with
  | Error e -> Error e
  | Ok (dump_schema, _count) ->
    (match Db.table_opt db table with
     | None -> Error (Printf.sprintf "no such table %s" table)
     | Some tbl when not (Schema.equal (Table.schema tbl) dump_schema) ->
       Error "schema mismatch between dump and destination table"
     | Some tbl ->
       let schema = Table.schema tbl in
       let width = Schema.record_size schema in
       let vfs = Db.vfs db in
       (* phase 1: stage through the utility's internal pages *)
       let staging_name = src ^ ".import-staging" in
       let staging = Vfs.create vfs staging_name in
       let page_buf = Bytes.create Page.size in
       let per_page = Page.size / width in
       let in_page = ref 0 in
       let staged = ref 0 in
       let flush_page () =
         if !in_page > 0 then begin
           ignore (Vfs.append staging page_buf : int);
           staged := !staged + Page.size;
           Bytes.fill page_buf 0 Page.size '\000';
           in_page := 0
         end
       in
       let result =
         Export_util.iter_records vfs src ~f:(fun tuple ->
             Codec.encode_binary_into schema tuple page_buf (!in_page * width);
             incr in_page;
             if !in_page >= per_page then flush_page ())
       in
       (match result with
        | Error e ->
          Vfs.close staging;
          Vfs.delete vfs staging_name;
          Error e
        | Ok rows ->
          flush_page ();
          Vfs.fsync staging;
          (* phase 2: read staging pages back, insert transactionally *)
          let staging_size = Vfs.size staging in
          let txns = ref 0 in
          let inserted = ref 0 in
          let txn = ref (Db.begin_txn db) in
          incr txns;
          (* like the commercial utility: each staged record becomes an
             INSERT statement that goes through the full SQL path *)
          let insert_tuple tuple =
            let stmt =
              Dw_sql.Printer.to_string
                (Dw_sql.Ast.Insert { table; columns = None; rows = [ Array.to_list tuple ] })
            in
            (match Db.exec_sql db !txn stmt with
             | Ok _ -> ()
             | Error e -> failwith ("Import_util: " ^ e));
            incr inserted;
            if !inserted mod batch_rows = 0 then begin
              Db.commit db !txn;
              txn := Db.begin_txn db;
              incr txns
            end
          in
          let pos = ref 0 in
          let remaining = ref rows in
          while !pos < staging_size && !remaining > 0 do
            let page = Vfs.read_at staging ~off:!pos ~len:Page.size in
            staged := !staged + Page.size;
            let n = min per_page !remaining in
            for i = 0 to n - 1 do
              insert_tuple (Codec.decode_binary schema page (i * width))
            done;
            remaining := !remaining - n;
            pos := !pos + Page.size
          done;
          Db.commit db !txn;
          Vfs.close staging;
          Vfs.delete vfs staging_name;
          Db.flush_all db;
          Ok { rows = !inserted; staged_bytes = !staged; txns = !txns }))
