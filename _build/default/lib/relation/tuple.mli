(** Tuples: value arrays conforming to a schema. *)

type t = Value.t array

val validate : Schema.t -> t -> (unit, string) result
(** Arity check, per-column type compatibility, null-in-non-nullable and
    null-in-key checks. *)

val validate_exn : Schema.t -> t -> unit
(** Raises [Invalid_argument] with the error message. *)

val key : Schema.t -> t -> t
(** The key prefix of the tuple. *)

val compare_key : Schema.t -> t -> t -> int
(** Compare two tuples of the same schema by key columns only. *)

val compare : t -> t -> int
(** Full lexicographic comparison. *)

val equal : t -> t -> bool

val get : Schema.t -> t -> string -> Value.t
(** Field by column name.  Raises [Not_found]. *)

val set : Schema.t -> t -> string -> Value.t -> t
(** Functional update by column name; returns a fresh tuple. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
