module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Value = Dw_relation.Value
module Expr = Dw_relation.Expr
module Codec = Dw_relation.Codec
module Ast = Dw_sql.Ast
module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Heap_file = Dw_storage.Heap_file
module Prng = Dw_util.Prng

let parts_table = "parts"

(* record layout: 1 bitmap + 8 (int) + 2+65 (string) + 8 (int) + 8 (float)
   + 8 (date) = 100 bytes *)
let parts_schema =
  Schema.make
    [
      { Schema.name = "part_id"; ty = Value.Tint; nullable = false };
      { Schema.name = "descr"; ty = Value.Tstring 65; nullable = false };
      { Schema.name = "qty"; ty = Value.Tint; nullable = false };
      { Schema.name = "price"; ty = Value.Tfloat; nullable = false };
      { Schema.name = "last_modified"; ty = Value.Tdate; nullable = false };
    ]

let () = assert (Schema.record_size parts_schema = 100)

let gen_part rng ~id ~day =
  [|
    Value.Int id;
    Value.Str (Printf.sprintf "part-%08d-%s" id (Prng.alpha_string rng 20));
    Value.Int (Prng.int rng 1000);
    Value.Float (float_of_int (Prng.int rng 100000) /. 100.0);
    Value.Date day;
  |]

let create_parts_table db =
  Db.create_table db ~name:parts_table ~ts_column:"last_modified" parts_schema

let load_parts ?(seed = 1) db ~rows () =
  let rng = Prng.create ~seed in
  let tbl = Db.table db parts_table in
  let day = Db.current_day db in
  for id = 1 to rows do
    let tuple = gen_part rng ~id ~day in
    ignore (Table.raw_insert_blind tbl (Codec.encode_binary parts_schema tuple) : Heap_file.rid)
  done;
  Table.rebuild_indexes tbl;
  Db.flush_all db

let insert_stmt_of_tuple tuple =
  Ast.Insert { table = parts_table; columns = None; rows = [ Array.to_list tuple ] }

let insert_parts_txn ?(seed = 7) ~first_id ~size ~day () =
  let rng = Prng.create ~seed:(seed + first_id) in
  List.init size (fun i -> insert_stmt_of_tuple (gen_part rng ~id:(first_id + i) ~day))

let range_pred ~first_id ~size =
  Expr.And
    ( Expr.Cmp (Expr.Ge, Expr.Col "part_id", Expr.Lit (Value.Int first_id)),
      Expr.Cmp (Expr.Lt, Expr.Col "part_id", Expr.Lit (Value.Int (first_id + size))) )

let update_parts_stmt ~first_id ~size =
  Ast.Update
    {
      table = parts_table;
      sets = [ ("qty", Expr.Binop (Expr.Add, Expr.Col "qty", Expr.Lit (Value.Int 1))) ];
      where = Some (range_pred ~first_id ~size);
    }

let delete_parts_stmt ~first_id ~size =
  Ast.Delete { table = parts_table; where = Some (range_pred ~first_id ~size) }

type op = Mix_insert of int | Mix_update of int * int | Mix_delete of int * int

let gen_mix rng ~existing_ids ~txns ~max_txn_size =
  let next_id = ref (existing_ids + 1) in
  List.init txns (fun _ ->
      match Prng.int rng 3 with
      | 0 ->
        let id = !next_id in
        incr next_id;
        Mix_insert id
      | 1 ->
        let size = 1 + Prng.int rng max_txn_size in
        Mix_update (1 + Prng.int rng (max 1 existing_ids), size)
      | _ ->
        let size = 1 + Prng.int rng max_txn_size in
        Mix_delete (1 + Prng.int rng (max 1 existing_ids), size))

let op_to_stmts ?seed ~day op =
  match op with
  | Mix_insert id -> insert_parts_txn ?seed ~first_id:id ~size:1 ~day ()
  | Mix_update (first_id, size) -> [ update_parts_stmt ~first_id ~size ]
  | Mix_delete (first_id, size) -> [ delete_parts_stmt ~first_id ~size ]
