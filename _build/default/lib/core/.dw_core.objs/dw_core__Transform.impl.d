lib/core/transform.ml: Array Delta Dw_relation Dw_sql List Op_delta Option Printf String
