lib/storage/heap_file.mli: Buffer_pool Dw_relation Vfs
