(** Scalar expressions and predicates over tuples.

    This is the expression language of the SQL dialect's [WHERE] clauses,
    [UPDATE ... SET] right-hand sides and projection lists.  Evaluation is
    SQL-style three-valued for comparisons on NULL: a comparison involving
    NULL is false (conservative; adequate for the dialect used by the
    experiments). *)

type binop = Add | Sub | Mul | Div

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type t =
  | Col of string
  | Lit of Value.t
  | Binop of binop * t * t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of t
  | Is_not_null of t

val eval : Schema.t -> Tuple.t -> t -> Value.t
(** Evaluate to a value.  Boolean-valued nodes yield [Bool]; a comparison
    with a NULL operand yields [Bool false].  Raises [Not_found] on an
    unknown column and [Invalid_argument] on type errors. *)

val eval_pred : Schema.t -> Tuple.t -> t -> bool
(** Evaluate as a predicate: [Bool b] gives [b]; [Null] gives [false];
    any other result raises [Invalid_argument]. *)

val columns : t -> string list
(** Column names referenced, without duplicates, in first-use order. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** SQL-syntax rendering (parenthesised where precedence requires). *)

val to_string : t -> string

val conj : t list -> t option
(** [conj ps] is the AND of all predicates, or [None] for the empty list. *)
