type ty = Tint | Tfloat | Tbool | Tdate | Tstring of int

type t =
  | Int of int
  | Float of float
  | Bool of bool
  | Date of int
  | Str of string
  | Null

let ty_compatible ty v =
  match ty, v with
  | _, Null -> true
  | Tint, Int _ -> true
  | Tfloat, Float _ -> true
  | Tbool, Bool _ -> true
  | Tdate, Date _ -> true
  | Tstring n, Str s -> String.length s <= n
  | (Tint | Tfloat | Tbool | Tdate | Tstring _), _ -> false

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Date _ -> 3
  | Str _ -> 4

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Date x, Date y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | (Null | Bool _ | Int _ | Float _ | Date _ | Str _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0
let is_null = function Null -> true | Int _ | Float _ | Bool _ | Date _ | Str _ -> false

let arith name fint ffloat a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (fint x y)
  | Float x, Float y -> Float (ffloat x y)
  | Int x, Float y -> Float (ffloat (float_of_int x) y)
  | Float x, Int y -> Float (ffloat x (float_of_int y))
  | (Bool _ | Date _ | Str _ | Int _ | Float _), _ ->
    invalid_arg (Printf.sprintf "Value.%s: non-numeric operand" name)

let add a b = arith "add" ( + ) ( +. ) a b
let sub a b = arith "sub" ( - ) ( -. ) a b
let mul a b = arith "mul" ( * ) ( *. ) a b

let div a b =
  match b with
  | Int 0 -> invalid_arg "Value.div: division by zero"
  | Float f when f = 0.0 -> invalid_arg "Value.div: division by zero"
  | _ -> arith "div" ( / ) ( /. ) a b

let ty_to_string = function
  | Tint -> "INT"
  | Tfloat -> "FLOAT"
  | Tbool -> "BOOL"
  | Tdate -> "DATE"
  | Tstring n -> Printf.sprintf "STRING(%d)" n

let ty_of_string s =
  let s = String.uppercase_ascii (String.trim s) in
  match s with
  | "INT" -> Some Tint
  | "FLOAT" -> Some Tfloat
  | "BOOL" -> Some Tbool
  | "DATE" -> Some Tdate
  | _ ->
    if String.length s > 8 && String.sub s 0 7 = "STRING(" && s.[String.length s - 1] = ')' then
      match int_of_string_opt (String.sub s 7 (String.length s - 8)) with
      | Some n when n > 0 -> Some (Tstring n)
      | Some _ | None -> None
    else None

let days_in_month year m =
  let leap = (year mod 4 = 0 && year mod 100 <> 0) || year mod 400 = 0 in
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if leap then 29 else 28
  | _ -> invalid_arg "Value.days_in_month"

let date_of_ymd ~year ~month ~day =
  (* Days since 1970-01-01, proleptic Gregorian; valid for year >= 1970
     which is all the experiments need. *)
  let days = ref 0 in
  if year >= 1970 then begin
    for y = 1970 to year - 1 do
      let leap = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0 in
      days := !days + if leap then 366 else 365
    done;
    for m = 1 to month - 1 do
      days := !days + days_in_month year m
    done;
    days := !days + (day - 1)
  end
  else invalid_arg "Value.date_of_ymd: year < 1970 unsupported";
  Date !days

let to_string = function
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b
  | Date d -> Printf.sprintf "#%d" d
  | Str s -> s
  | Null -> "NULL"

let pp ppf v = Format.pp_print_string ppf (to_string v)

let to_sql_literal = function
  | Int n -> string_of_int n
  | Float f ->
    (* keep a decimal point so the literal round-trips as a float *)
    let s = Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"
  | Bool b -> if b then "TRUE" else "FALSE"
  | Date d -> Printf.sprintf "DATE %d" d
  | Str s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '\'';
    String.iter
      (fun c -> if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '\'';
    Buffer.contents buf
  | Null -> "NULL"

let encoded_size = function
  | Tint -> 8
  | Tfloat -> 8
  | Tbool -> 1
  | Tdate -> 8
  | Tstring n -> 2 + n
