type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = int64 t in
  { state = seed }

let copy t = { state = t.state }

let int t bound =
  assert (bound > 0);
  (* mask to 62 bits so the conversion to OCaml's 63-bit int stays
     non-negative *)
  let v = Int64.to_int (Int64.logand (int64 t) 0x3FFFFFFFFFFFFFFFL) in
  v mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let bool t = Int64.logand (int64 t) 1L = 1L

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let alpha_string t n = String.init n (fun _ -> Char.chr (Char.code 'a' + int t 26))
