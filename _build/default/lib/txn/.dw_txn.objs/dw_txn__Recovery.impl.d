lib/txn/recovery.ml: Dw_storage Format Hashtbl List Log_record Wal
