let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xffffffff)
    s;
  !h

let hex s = Printf.sprintf "%08x" (fnv1a s)
