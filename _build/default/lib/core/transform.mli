(** Transformation rules mapping source-schema deltas onto the warehouse
    schema (paper Section 4.1: "a set of transformation rules to directly
    apply the Op-Delta to various schema in data warehouses").

    A rule renames the table, renames/keeps a subset of columns, and can
    add constant-valued columns (e.g. a source-system tag).  Rules apply
    both to Op-Deltas (rewriting statements) and to value deltas
    (rewriting tuples), so every extraction method feeds the same
    integration code. *)

module Ast = Dw_sql.Ast
module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Value = Dw_relation.Value
module Expr = Dw_relation.Expr

type rule = {
  src_table : string;
  dst_table : string;
  column_map : (string * string) list;
      (** (source column, destination column); unlisted source columns are
          dropped *)
  constants : (string * Value.t) list;
      (** destination columns filled with a constant *)
}

val validate : rule -> src:Schema.t -> dst:Schema.t -> (unit, string) result
(** Every mapped source column exists in [src]; every mapped destination
    and constant column exists in [dst]; every non-nullable destination
    column is covered. *)

val dst_schema : rule -> src:Schema.t -> Schema.t
(** Derive the destination schema a rule implies (mapped columns with
    their source types, then constant columns; key = mapped source-key
    columns).  Useful for creating the warehouse table. *)

val apply_tuple : rule -> src:Schema.t -> dst:Schema.t -> Tuple.t -> Tuple.t
(** Map one source row image onto the destination schema. *)

val apply_delta : rule -> src:Schema.t -> dst:Schema.t -> Delta.t -> Delta.t

val apply_stmt : rule -> src:Schema.t -> Ast.stmt -> (Ast.stmt option, string) result
(** Rewrite a statement for the destination: rename table and columns,
    project inserts, extend them with constants.  [Ok None] when the
    statement targets a different table.  Errors when the statement's
    WHERE or SET references a dropped column (the operation cannot be
    replayed at the warehouse — capture before images instead). *)

val apply_op_delta : rule -> src:Schema.t -> Op_delta.t -> (Op_delta.t, string) result
(** Rewrite every op of the transaction; ops on other tables pass through
    unchanged. *)
