lib/core/trigger_extract.ml: Array Delta Dw_engine Dw_relation Dw_storage List Printf
