(** Group commit: amortize one WAL fsync over a group of committers.

    Committers append their commit records to the {!Wal} individually
    (fixing the durability {e order}), then register with a group-commit
    state via {!note_commit}.  The first registrant of a group is the
    {e leader}; it holds the group open until either the group reaches
    {!policy.max_group} pending commits or the registry clock has
    advanced {!policy.max_wait_s} past the group's opening, at which
    point a {e single} {!Wal.flush} makes every pending commit durable at
    once.  In the engine's cooperative single-threaded world the
    "concurrent committers" are logical sessions (see
    {!Dw_engine.Scheduler}); the deadline is evaluated on each
    registration and on {!poll} (which {!Dw_engine.Db} drives from
    statement boundaries).

    Time comes from the WAL registry's pluggable clock
    ({!Dw_util.Metrics.now}), so the max-wait bound is deterministic
    under {!Dw_util.Sim_clock} — crash tests and unit tests advance a
    logical clock instead of sleeping.

    Every flushed group observes its size into the [wal.group_size]
    histogram of the WAL's registry (alongside the [wal.fsync] latency
    histogram {!Wal.flush} already records), which is the evidence the
    [t5] experiment uses to show the per-transaction fsync count drop.

    A crash while a group is open loses no acknowledged durability: the
    pending commits were never reported durable, and recovery replays
    exactly the records that survived on the device — at least the
    fsynced prefix (see DESIGN.md §8 on prefix persistence). *)

type policy = {
  max_group : int;  (** flush when this many commits are pending (>= 1) *)
  max_wait_s : float;
      (** flush when the group has been open this long (clock seconds;
          [infinity] = size-only, [0.] = flush at every registration) *)
}

val default_policy : policy
(** [{ max_group = 8; max_wait_s = infinity }]. *)

val validate_policy : policy -> unit
(** Raises [Invalid_argument] unless [max_group >= 1] and
    [max_wait_s >= 0.] (NaN rejected). *)

type t

val create : ?policy:policy -> Wal.t -> t
(** A fresh group-commit state over the WAL; no commits pending. *)

val policy : t -> policy
(** The bounds currently in force. *)

val set_policy : t -> policy -> unit
(** Validates, then installs the new bounds.  Any open group is flushed
    first so commits acknowledged under the old policy never wait on the
    new one. *)

val note_commit : t -> unit
(** Register one committer whose commit record is already appended.
    Flushes the group (one fsync for all pending commits) when the size
    or deadline bound is reached; otherwise returns with the commit
    pending — the bounded durability window group commit trades for
    throughput. *)

val poll : t -> unit
(** Flush the open group if its deadline has passed; no-op otherwise
    (and free when nothing is pending).  Called from statement
    boundaries so a waiting leader cannot be starved by a commit lull. *)

val sync : t -> unit
(** Durability barrier: flush the open group if any commits are pending;
    no-op otherwise. *)

val flush_now : t -> unit
(** Unconditional {!Wal.flush}, accounting any pending commits into the
    flushed group.  Used by abort paths that must always reach the
    device. *)

val absorb : t -> unit
(** Account the pending commits as covered {e without} issuing a flush —
    for callers about to fsync through another path (checkpoint). *)

val pending : t -> int
(** Commits registered but not yet covered by a flush. *)
