test/test_scheduler.ml: Alcotest Dw_engine Dw_relation Dw_storage Dw_util Dw_workload List Str String
