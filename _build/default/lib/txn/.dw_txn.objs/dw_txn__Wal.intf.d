lib/txn/wal.mli: Dw_storage Log_record
