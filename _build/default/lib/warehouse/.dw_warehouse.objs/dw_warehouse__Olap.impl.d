lib/warehouse/olap.ml: Dw_engine List Printf Unix Warehouse
