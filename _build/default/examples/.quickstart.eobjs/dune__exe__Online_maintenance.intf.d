examples/online_maintenance.mli:
