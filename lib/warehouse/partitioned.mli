(** The partitioned warehouse: one engine shard per partition, refreshed
    in parallel.

    The engine ({!Dw_engine.Db}) is single-writer — its WAL, undo logs
    and trigger path assume one mutating domain — so partitioning is
    {e physical}: a partitioned warehouse is [partitions spec] complete
    {!Warehouse.t} shards, each over its own {!Dw_storage.Vfs} (own WAL,
    buffer pool, lock table and metrics registry), each owning exactly
    the fact-table rows the {!Partition} spec routes to it.  Replicated
    (dimension) tables are copied whole into every shard.  Because the
    shards share no mutable engine state, {!refresh} can apply
    independent partitions' delta buckets concurrently, one
    {!Dw_util.Domain_pool} worker per shard, and each shard keeps the
    PR 3 AIMD backpressure valve working against {e its own} [lock.wait]
    p95 — a hot partition throttles without slowing its siblings.

    {b Equivalence.}  The staged-and-partitioned refresh is logically
    equivalent to {!Warehouse.integrate_op_deltas} on a monolithic
    warehouse: every routed statement executes on the one shard owning
    its rows, broadcast statements execute everywhere but only match
    each shard's own rows, and per-partition delta order preserves
    source commit order.  Merged reads ({!replica_rows}, {!view_rows},
    {!agg_view_rows}) return sorted logical state, pinned equal to the
    sequential integrator by a qcheck property (heap order is the one
    thing scheduling may permute).  Aggregate merging combines COUNT and
    SUM additively and MIN/MAX by comparison; exactness therefore relies
    on associative addition — the pinned workloads aggregate integer
    columns, and float SUMs may differ in low-order bits from the
    monolithic accumulation order.

    {b Crash semantics.}  Each shard stores an applied-through source
    transaction id ([__refresh_progress]) committed in the same shard
    transaction as every run it applies, so a crash mid-refresh leaves
    every shard at a source-transaction boundary of its own bucket
    stream, and re-running {!refresh} with the same buckets after
    {!reopen} applies only what is missing — exactly-once per shard. *)

module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Db = Dw_engine.Db
module Op_delta = Dw_core.Op_delta
module Spj_view = Dw_core.Spj_view
module Agg_view = Dw_core.Agg_view
module Vfs = Dw_storage.Vfs
module Domain_pool = Dw_util.Domain_pool

type t
(** A partitioned warehouse: [Partition.partitions spec] shards. *)

(** {2 Shard health} — per-shard circuit state driving the guarded
    refresh ({!refresh_guarded}) and degraded reads.

    Each shard carries a {!Dw_util.Breaker} and walks
    [Healthy -> Suspect -> Quarantined -> Rebuilding -> Healthy]:
    refresh/read failures (fail-stop crashes, transient faults past the
    retry budget, timeout breaches) count against the breaker;
    [failure_threshold] consecutive failures trip it and quarantine the
    shard.  A quarantined shard is excluded from refresh and from
    degraded reads until the breaker's dwell elapses, when the next
    {!refresh_guarded} admits one half-open {e probe}: the shard's
    simulated process is restarted over its surviving bytes
    ({!Vfs.revive} + reopen, keeping any sustained fault schedule armed)
    and its bucket attempted; success closes the breaker, failure
    re-trips it with a doubled (equal-jitter) dwell.  A shard that never
    stabilises is rebuilt from scratch ({!begin_rebuild} /
    {!readmit}). *)

type health = Healthy | Suspect | Quarantined | Rebuilding

val health_to_string : health -> string
(** Lower-case state name, as reported in logs and [health.state.*]
    gauges. *)

type health_config = {
  breaker : Dw_util.Breaker.config;
      (** trip threshold, dwell, probe count, dwell cap, jitter seed
          (per-shard breakers use [seed + shard index]) *)
  max_retries : int;  (** in-task transient-fault retries per shard refresh *)
  retry_backoff_s : float;  (** base of the equal-jitter in-task retry backoff *)
  refresh_timeout_s : float;
      (** post-hoc breach threshold (wall-clock seconds) on one shard's
          refresh: the work stays applied, but the shard is counted
          against its breaker *)
}

val default_health_config : health_config
(** [{ breaker = Dw_util.Breaker.default_config; max_retries = 2;
      retry_backoff_s = 0.0; refresh_timeout_s = infinity }]. *)

val create :
  ?pool_pages:int ->
  ?pool_stripes:int ->
  ?op_delay:float ->
  ?health:health_config ->
  ?metrics:Dw_util.Metrics.t ->
  spec:Partition.t ->
  name:string ->
  unit ->
  t
(** Build the shards, each over a fresh in-memory {!Vfs} (created with
    [op_delay] simulated seconds per I/O — the experiments' I/O-bound
    knob), persist [spec] into every shard's metadata, and create the
    per-shard [__refresh_progress] watermark table.  [pool_pages] and
    [pool_stripes] are per shard.  [metrics] is the {e fleet} registry:
    it receives the [health.*], [breaker.*] and [degraded.*] series and
    its clock ({!Dw_util.Metrics.now}, {!Dw_util.Metrics.use_sim_clock})
    drives every breaker's dwell — deterministic under a
    {!Dw_util.Sim_clock}. *)

val spec : t -> Partition.t
(** The placement spec the warehouse was created (or reopened) with. *)

val partitions : t -> int
(** Shard count ([Partition.partitions (spec t)]). *)

val shard : t -> int -> Warehouse.t
(** Direct access to one shard (tests and metrics inspection; shard
    registries are [Db.metrics (Warehouse.db (shard t i))]). *)

val vfss : t -> Vfs.t array
(** The per-shard file systems, index-aligned with shards — what a
    crash explorer arms faults on and {!reopen} re-adopts. *)

val add_replica : t -> table:string -> schema:Schema.t -> unit
(** Create the replica on every shard.  For the partitioned fact table
    ([Partition.table (spec t)]) the schema's leading key column must be
    the spec's key column (raises [Invalid_argument] otherwise); any
    other table is treated as replicated — every shard holds a full
    copy. *)

val load_replica : t -> table:string -> Tuple.t list -> unit
(** Initial load: fact-table rows are routed each to its owning shard;
    replicated-table rows are copied to every shard. *)

val define_view : t -> Spj_view.t -> unit
(** Define a select-project view on every shard (each maintains it over
    its own row slice).  Join views raise [Invalid_argument]: their
    cross-partition row pairs would be invisible to every shard. *)

val define_agg_view : t -> Agg_view.t -> unit
(** Define an aggregate view on every shard; reads merge the per-shard
    groups ({!agg_view_rows}).  All of COUNT/SUM/MIN/MAX merge. *)

val replica_rows : t -> string -> Tuple.t list
(** Merged logical contents: the fact table is the concatenation of the
    shards' slices, a replicated table is shard 0's copy; both sorted
    (heap order is shard-local and scheduling-dependent). *)

val view_rows : t -> string -> (Tuple.t * int) list
(** Merged materialized view rows: per-shard multiplicities summed per
    output row (each base row lives on exactly one shard), sorted. *)

val agg_view_rows : t -> string -> (Tuple.t * int) list
(** Merged aggregate view rows: group cardinalities and COUNT/SUM
    combine additively, MIN/MAX by comparison, sorted by group. *)

val watermarks : t -> int array
(** Per-shard applied-through source transaction id (0 before any
    refresh) — the exactly-once filter {!refresh} applies. *)

val refresh :
  ?policy:Warehouse.batch_policy ->
  pool:Domain_pool.t ->
  t ->
  Op_delta.t list array ->
  Warehouse.stats
(** Apply staged per-partition delta buckets (index-aligned with shards,
    as produced by [Dw_etl.Stage.split]) concurrently, one pool task per
    shard.  Each shard filters its bucket by its watermark, then applies
    valve-governed runs: each run is one shard transaction
    ({!Warehouse.integrate_op_delta_run_marked}) carrying the watermark
    advance, its size observed into that shard's [warehouse.batch_size]
    histogram; the run-length target halves (floored at
    [policy.min_batch]) when the {e shard's own} [lock.wait] p95 exceeds
    [policy.lock_wait_p95_s] and recovers +1 otherwise — the per-
    partition valve.  Returns summed stats (durations add across shards;
    wall-clock is the caller's to measure).  Raises [Invalid_argument]
    on a bucket array of the wrong length or an invalid policy. *)

val reopen :
  ?pool_pages:int ->
  ?pool_stripes:int ->
  ?op_delay:float ->
  ?health:health_config ->
  ?metrics:Dw_util.Metrics.t ->
  replicas:(string * Schema.t) list ->
  views:Spj_view.t list ->
  agg_views:Agg_view.t list ->
  spec:Partition.t ->
  name:string ->
  vfss:Vfs.t array ->
  unit ->
  t
(** Re-adopt a crashed partitioned warehouse from its shards' surviving
    bytes: per shard, {!Vfs.crash_reset} + {!Db.reopen} (catalog built
    from [replicas], the views' backing schemas and the metadata
    tables), then re-attach replicas, views and aggregate views without
    re-materializing anything.  The persisted spec of every shard must
    match [spec] (raises [Invalid_argument] on mismatch or a missing
    spec row — the shard bytes belong to a different layout).  After
    reopen, re-running {!refresh} with the same buckets completes an
    interrupted refresh exactly-once.  Health state starts over: every
    shard [Healthy], breakers closed ([health], [metrics], [op_delay] as
    in {!create}). *)

(** {2 Guarded refresh, degraded reads, rebuild} *)

val health_metrics : t -> Dw_util.Metrics.t
(** The fleet registry passed to (or created by) {!create}/{!reopen}. *)

val shard_health : t -> int -> health
(** Shard [i]'s current state in the health machine. *)

val healths : t -> health array
(** Per-shard health, index-aligned with shards. *)

val shard_breaker : t -> int -> Dw_util.Breaker.t
(** Shard [i]'s breaker (tests and experiments inspect trip/probe
    counts). *)

type shard_outcome =
  | Applied of Warehouse.stats  (** bucket applied (possibly after retries) *)
  | Skipped of health  (** not attempted: breaker open or shard rebuilding *)
  | Failed of string  (** attempted and failed; counted against the breaker *)

val refresh_guarded :
  ?policy:Warehouse.batch_policy ->
  pool:Domain_pool.t ->
  t ->
  Op_delta.t list array ->
  Warehouse.stats * shard_outcome array
(** {!refresh} under the health state machine: healthy and suspect
    shards apply their buckets concurrently (transient faults retried
    in-task up to [max_retries] with equal-jitter backoff; a fail-stop
    crash fails the shard immediately); a quarantined shard is skipped
    until its breaker dwell elapses, then given one revive-and-reopen
    probe; a rebuilding shard is always skipped (the rebuild owns it).
    One shard's failure never fails the fleet — the summed stats cover
    the shards that applied, and the outcome array says what happened
    to each.  Deliver {e cumulative} buckets while any shard lags (the
    per-shard watermark filter keeps re-delivery exactly-once).
    Breaker bookkeeping runs on the calling domain only.

    Metrics (fleet registry): [health.refresh_failures],
    [health.refresh_skipped], [health.retries],
    [health.timeout_breaches], [health.recovered], [breaker.trips],
    [breaker.probes], [breaker.probe_failures], gauges
    [health.shard<i>] (0 healthy / 1 suspect / 2 quarantined /
    3 rebuilding) and [health.healthy_shards]. *)

type read_policy = [ `Fail_closed | `Degraded ]

type coverage = {
  shards : int;  (** fleet size *)
  served : int list;  (** shard indices that answered *)
  skipped : (int * health) list;  (** unserved shards and why *)
  watermarks : int array;
      (** per-shard applied-through txn id; live for served shards
          (falling back to the last known value when the watermark probe
          itself faults), the last known value for skipped ones *)
  max_watermark : int;
      (** fleet-wide freshest watermark — [max_watermark -
          watermarks.(i)] is shard [i]'s staleness in source
          transactions *)
}

exception Unhealthy of (int * health) list
(** A read could not be answered within policy: under [`Fail_closed]
    any unserved shard; under [`Degraded] an empty serving set. *)

val replica_rows_checked :
  ?policy:read_policy -> t -> string -> Tuple.t list * coverage
(** {!replica_rows} with an explicit availability policy.
    [`Fail_closed] (default) raises {!Unhealthy} unless every shard
    serves.  [`Degraded] answers from the serving (healthy + suspect)
    shards only — for the fact table the merged rows are the union of
    the served slices; a replicated table is answered by the first
    serving shard — and reports the gap in the returned {!coverage}.  A
    shard that faults {e during} the read is recorded against its
    breaker and moved to the skipped set (under [`Fail_closed] the read
    then raises).  Metrics: [degraded.reads], [degraded.skipped_shards],
    [degraded.read_failures]. *)

val view_rows_checked :
  ?policy:read_policy -> t -> string -> (Tuple.t * int) list * coverage
(** {!view_rows} with an availability policy (see
    {!replica_rows_checked}). *)

val agg_view_rows_checked :
  ?policy:read_policy -> t -> string -> (Tuple.t * int) list * coverage
(** {!agg_view_rows} with an availability policy (see
    {!replica_rows_checked}). *)

val begin_rebuild : ?donor:int -> t -> int -> Warehouse.t
(** Abandon quarantined shard [i]'s bytes and swap in a fresh empty
    shard over a fresh {!Vfs}: the partition spec and watermark table
    are recreated, every registered replica table is re-created (the
    fact table empty — {!Dw_etl.Bootstrap} with a shard slice reloads
    it online — and replicated tables copied from [donor], default the
    first serving shard, then checkpointed so the bulk copy survives a
    kill during the rebuild), and views re-defined.  The shard enters
    [Rebuilding]: refresh and reads skip it until {!readmit}.  Returns
    the fresh shard for the rebuild driver.  Raises [Invalid_argument]
    unless the shard is [Quarantined], or when replicated tables exist
    but no serving donor does.  Replicated tables must stay quiescent
    during the rebuild — the slice bootstrap replays fact-table deltas
    only.  Counted under [health.rebuilds]. *)

val reattach_rebuilding : ?extra:(string * Schema.t) list -> t -> int -> unit
(** Resume a rebuild interrupted by a crash: {!Vfs.crash_reset} +
    reopen shard [i] over its surviving bytes (catalog extended with
    [extra] — the rebuild driver passes its [__bootstrap_state] table)
    and swap the re-adopted warehouse in, leaving health [Rebuilding].
    Raises [Invalid_argument] if the shard is not rebuilding. *)

val readmit : t -> int -> watermark:int -> unit
(** Complete shard [i]'s rebuild: verify the persisted spec belongs to
    slot [i], require [watermark] (the rebuild's applied-through source
    txn id) to be at least the serving fleet's maximum (re-admitting a
    stale shard would roll merged reads backwards), persist it as the
    shard's refresh watermark, reset the breaker and mark the shard
    [Healthy].  Raises [Invalid_argument] on a non-rebuilding shard,
    spec mismatch, or watermark lag.  Counted under
    [health.readmitted]. *)
