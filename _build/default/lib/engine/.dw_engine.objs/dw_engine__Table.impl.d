lib/engine/table.ml: Array Dw_relation Dw_storage List Printf
