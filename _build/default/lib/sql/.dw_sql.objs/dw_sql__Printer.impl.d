lib/sql/printer.ml: Ast Buffer Dw_relation Format List Printf String
