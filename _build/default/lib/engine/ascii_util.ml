module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Codec = Dw_relation.Codec
module Expr = Dw_relation.Expr
module Vfs = Dw_storage.Vfs
module Heap_file = Dw_storage.Heap_file

type dump_stats = { rows : int; bytes : int }
type load_stats = { rows : int; bad_lines : int }

let write_lines vfs dest emit =
  let file = Vfs.create vfs dest in
  let chunk = Buffer.create 8192 in
  let rows = ref 0 in
  let flush_chunk () =
    if Buffer.length chunk > 0 then begin
      ignore (Vfs.append file (Buffer.to_bytes chunk) : int);
      Buffer.clear chunk
    end
  in
  emit (fun line ->
      Buffer.add_string chunk line;
      Buffer.add_char chunk '\n';
      incr rows;
      if Buffer.length chunk >= 8192 then flush_chunk ());
  flush_chunk ();
  Vfs.fsync file;
  let bytes = Vfs.size file in
  Vfs.close file;
  { rows = !rows; bytes }

let dump db ~table ?where ~dest () =
  let tbl = Db.table db table in
  let schema = Table.schema tbl in
  write_lines (Db.vfs db) dest (fun out ->
      Table.scan tbl (fun _ tuple ->
          let keep =
            match where with None -> true | Some e -> Expr.eval_pred schema tuple e
          in
          if keep then out (Codec.encode_ascii schema tuple)))

let dump_tuples vfs ~schema ~dest tuples =
  write_lines vfs dest (fun out ->
      List.iter (fun tuple -> out (Codec.encode_ascii schema tuple)) tuples)

let iter_lines vfs fname ~f =
  match Vfs.open_existing vfs fname with
  | exception Not_found -> Error (Printf.sprintf "no such file %s" fname)
  | file ->
    let len = Vfs.size file in
    let data = if len = 0 then Bytes.create 0 else Vfs.read_at file ~off:0 ~len in
    Vfs.close file;
    let count = ref 0 in
    let pos = ref 0 in
    while !pos < len do
      let nl =
        let rec go i = if i >= len || Bytes.get data i = '\n' then i else go (i + 1) in
        go !pos
      in
      if nl > !pos then begin
        f (Bytes.sub_string data !pos (nl - !pos));
        incr count
      end;
      pos := nl + 1
    done;
    Ok !count

let load db ~table ~src =
  match Db.table_opt db table with
  | None -> Error (Printf.sprintf "no such table %s" table)
  | Some tbl ->
    let schema = Table.schema tbl in
    let rows = ref 0 in
    let bad = ref 0 in
    let result =
      iter_lines (Db.vfs db) src ~f:(fun line ->
          match Codec.decode_ascii schema line with
          | Ok tuple ->
            (* direct block write, bypassing WAL and index maintenance *)
            ignore (Table.raw_insert_blind tbl (Codec.encode_binary schema tuple)
                    : Heap_file.rid);
            incr rows
          | Error _ -> incr bad)
    in
    (match result with
     | Error e -> Error e
     | Ok _ ->
       Table.rebuild_indexes tbl;
       Db.flush_all db;
       Ok { rows = !rows; bad_lines = !bad })
