lib/core/agg_view.ml: Array Dw_relation List Map Printf
