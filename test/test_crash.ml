(* Crash-point recovery invariants, CI-bounded: exhaustive enumeration on
   a small source-DB workload, strided sweeps elsewhere, file shipping
   under a heavy transient-fault rate, and random-seed properties.  The
   deeper sweep is `dune build @crash` (test/crash_sweep.ml). *)

module Cs = Dw_experiments.Crash_sim
module Metrics = Dw_util.Metrics

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let no_failures name (r : Cs.report) =
  check Alcotest.bool (name ^ ": explored some crash points") true (r.Cs.explored > 0);
  check
    Alcotest.(list (pair int string))
    (name ^ ": every crash point recovers") [] r.Cs.failures

let db_exhaustive_small () = no_failures "db small" (Cs.explore ~spec:Cs.small_db_spec ())

let db_strided_standard () =
  no_failures "db standard" (Cs.explore ~spec:Cs.default_db_spec ~stride:8 ())

let db_grouped_exhaustive () =
  (* group commit holds commits pending between append and the group's
     one fsync; every event in between (including fail-stop AT the
     leader's fsync) must still recover to a transaction boundary *)
  no_failures "db group-commit"
    (Cs.explore ~spec:{ Cs.small_db_spec with Cs.group = 3 } ())

let queue_strided () = no_failures "queue" (Cs.explore_queue ~stride:4 ())

let queue_batched_exhaustive () =
  (* coalesced transport: crash mid-batch-append may keep only a
     frame-boundary prefix; crash mid-ack_run consumes all-or-nothing *)
  no_failures "queue batched" (Cs.explore_batched_queue ())

let refresh_strided () = no_failures "refresh" (Cs.explore_refresh ~stride:4 ())

let refresh_batched_strided () =
  no_failures "refresh batched" (Cs.explore_refresh_batched ~run:3 ~stride:2 ())

let fault_counters_exported () =
  let r = Cs.explore ~spec:Cs.small_db_spec ~stride:4 () in
  let get name = match List.assoc_opt name r.Cs.fault_metrics with Some v -> v | None -> 0 in
  check Alcotest.bool "fail-stop crashes counted" true (get "fault.crashes" > 0);
  check Alcotest.bool "some crashing writes were torn" true (get "fault.torn_writes" > 0)

let flake_seeds_pinned () =
  (* regression: these (seed, crash point) pairs used to fail with
     "recovered db missing committed row" before Db.reopen deferred the
     attach-time index rebuild until after WAL recovery — the secondary
     index was built over a crash-inconsistent heap and served stale
     rids.  Keep them pinned so the fix cannot silently regress. *)
  List.iter
    (fun (seed, index) ->
      let spec = { Cs.small_db_spec with Cs.seed } in
      let ops = Cs.ops_of_spec spec in
      match Cs.run_db_crash_point spec ops ~totals:(Metrics.create ()) index with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "seed %d, event %d: %s" seed index msg)
    [ (13, 22); (18, 22); (24, 22); (29, 23); (71, 23); (72, 22) ]

let ship_under_heavy_transient_faults () =
  (* >= 20% of destination writes and fsyncs fail transiently; bounded
     retry must absorb every fault and keep the copy byte-identical *)
  match Cs.ship_under_faults ~bytes:(64 * 1024) ~fault_p:0.25 ~seed:123 () with
  | Error e -> Alcotest.fail e
  | Ok (stats, identical) ->
    check Alcotest.bool "retried at least once" true (stats.Dw_transport.File_ship.retries > 0);
    check Alcotest.int "all bytes shipped" (64 * 1024) stats.Dw_transport.File_ship.bytes;
    check Alcotest.bool "byte-identical copy" true identical

(* random-seed properties: the explorers' invariants hold for arbitrary
   seeds and crash points, not just the curated specs *)

let prop_queue_random_crash_never_loses =
  QCheck2.Test.make ~name:"queue never loses an unacked message at a random crash point"
    ~count:40
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 0 80))
    (fun (qseed, index) ->
      let spec = { Cs.default_queue_spec with Cs.qseed } in
      match Cs.run_queue_crash_point spec ~totals:(Metrics.create ()) index with
      | Ok () -> true
      | Error msg -> QCheck2.Test.fail_reportf "seed %d, event %d: %s" qseed index msg)

let prop_db_random_crash_exact_rows =
  QCheck2.Test.make
    ~name:"recovery after a random fail-stop leaves exactly the committed rows" ~count:25
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 0 60))
    (fun (seed, index) ->
      let spec = { Cs.small_db_spec with Cs.seed } in
      let ops = Cs.ops_of_spec spec in
      match Cs.run_db_crash_point spec ops ~totals:(Metrics.create ()) index with
      | Ok () -> true
      | Error msg -> QCheck2.Test.fail_reportf "seed %d, event %d: %s" seed index msg)

let prop_grouped_db_random_crash =
  QCheck2.Test.make
    ~name:"group-commit recovery holds at random crash points and group sizes" ~count:25
    QCheck2.Gen.(triple (int_range 0 10_000) (int_range 0 60) (int_range 2 6))
    (fun (seed, index, group) ->
      let spec = { Cs.small_db_spec with Cs.seed; Cs.group = group } in
      let ops = Cs.ops_of_spec spec in
      match Cs.run_db_crash_point spec ops ~totals:(Metrics.create ()) index with
      | Ok () -> true
      | Error msg ->
        QCheck2.Test.fail_reportf "seed %d, event %d, group %d: %s" seed index group msg)

let prop_batched_queue_random_crash =
  QCheck2.Test.make
    ~name:"batched queue keeps at-least-once and prefix-only tears at random crash points"
    ~count:40
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 0 60))
    (fun (bseed, index) ->
      let spec = { Cs.default_batched_queue_spec with Cs.bseed } in
      match Cs.run_batched_queue_crash_point spec ~totals:(Metrics.create ()) index with
      | Ok () -> true
      | Error msg -> QCheck2.Test.fail_reportf "seed %d, event %d: %s" bseed index msg)

let suite =
  [
    test "db crash points (small, exhaustive)" db_exhaustive_small;
    test "db crash points (standard, stride 8)" db_strided_standard;
    test "db crash points under group commit (exhaustive)" db_grouped_exhaustive;
    test "queue crash points (stride 4)" queue_strided;
    test "batched queue crash points (exhaustive)" queue_batched_exhaustive;
    test "warehouse refresh idempotent on redelivery (stride 4)" refresh_strided;
    test "micro-batched refresh idempotent on redelivery (stride 2)" refresh_batched_strided;
    test "fault counters exported" fault_counters_exported;
    test "index-rebuild-before-recovery flake seeds stay green" flake_seeds_pinned;
    test "ship under 25% transient faults" ship_under_heavy_transient_faults;
    QCheck_alcotest.to_alcotest prop_queue_random_crash_never_loses;
    QCheck_alcotest.to_alcotest prop_db_random_crash_exact_rows;
    QCheck_alcotest.to_alcotest prop_grouped_db_random_crash;
    QCheck_alcotest.to_alcotest prop_batched_queue_random_crash;
  ]
