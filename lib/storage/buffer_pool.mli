(** Buffer pool: a fixed number of page frames cached over a {!Vfs.t}, with
    LRU eviction and dirty-page write-back.

    Victim selection is O(1): frames are threaded on an intrusive doubly
    linked LRU list (plus a free list of invalid frames), so a miss never
    scans the frame array.

    Metric names (in the pool's own metrics registry, which is the Vfs
    registry): counters [pool.hits], [pool.misses], [pool.evictions],
    [pool.writebacks]; latency histogram [pool.miss] (one sample per miss,
    covering victim selection, write-back and the page read).

    {b Striping}: the frame budget can be split into independently-mutexed
    stripes keyed by (file, page) hash so parallel scan domains fault
    pages without serialising on one latch; [stripes = 1] (the default)
    preserves the classic single global LRU order exactly. *)

type t

val create : ?stripes:int -> vfs:Vfs.t -> capacity:int -> unit -> t
(** [capacity] is the number of frames (>= 1), divided as evenly as
    possible over [stripes] (default 1) independently-locked sub-pools,
    each with its own LRU list; [stripes] is clamped to [capacity] so
    every stripe owns at least one frame. *)

val stripe_count : t -> int
(** Number of stripes actually created (after clamping). *)

val capacity : t -> int
(** Total frame count across all stripes. *)

val vfs : t -> Vfs.t

val page_count : t -> Vfs.file -> int
(** Number of pages currently in the file (size / page size). *)

val with_page : t -> Vfs.file -> int -> dirty:bool -> (bytes -> 'a) -> 'a
(** [with_page t file pno ~dirty f] runs [f] on the frame holding page
    [pno] of [file], faulting it in if needed.  If [dirty] the frame is
    marked dirty and written back on eviction or {!flush}.  The bytes must
    not be retained after [f] returns.  Raises [Invalid_argument] if [pno]
    is outside the file. *)

val append_page : t -> Vfs.file -> (bytes -> unit) -> int
(** Extend the file by one zeroed page, run the initialiser on it in the
    cache (marked dirty), and return its page number. *)

val flush_file : t -> Vfs.file -> unit
(** Write back all dirty frames belonging to the file. *)

val flush_all : t -> unit

val invalidate_file : t -> Vfs.file -> unit
(** Drop all frames of the file without write-back (used after external
    rewrites of the underlying file, e.g. recovery). *)
