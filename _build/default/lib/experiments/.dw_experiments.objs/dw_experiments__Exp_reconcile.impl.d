lib/experiments/exp_reconcile.ml: Bench_support Dw_core Dw_cots Dw_util Dw_workload List Printf
