lib/sql/parser.mli: Ast Dw_relation
