test/test_util.ml: Alcotest Array Dw_util Fun List String
