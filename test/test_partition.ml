(* Partitioned warehouse: spec roundtrip/persistence, staging-tier
   routing totality, partitioned-vs-sequential byte identity (qcheck),
   crash-mid-refresh recovery, and per-partition valve independence. *)

module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Value = Dw_relation.Value
module Db = Dw_engine.Db
module Vfs = Dw_storage.Vfs
module Metrics = Dw_util.Metrics
module Domain_pool = Dw_util.Domain_pool
module Prng = Dw_util.Prng
module Workload = Dw_workload.Workload
module Op_delta = Dw_core.Op_delta
module Spj_view = Dw_core.Spj_view
module Agg_view = Dw_core.Agg_view
module Warehouse = Dw_warehouse.Warehouse
module Partition = Dw_warehouse.Partition
module Partitioned = Dw_warehouse.Partitioned
module Stage = Dw_etl.Stage
module Exp_partition = Dw_experiments.Exp_partition

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

(* ---------- spec construction, serialization, persistence ---------- *)

let spec_validation () =
  let mk m = ignore (Partition.make ~table:"parts" ~key_column:"part_id" m : Partition.t) in
  let rejects m =
    match mk m with
    | () -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  mk (Partition.Hash 1);
  mk (Partition.Range []);
  mk (Partition.Range [ 10; 20; 30 ]);
  rejects (Partition.Hash 0);
  rejects (Partition.Range [ 20; 10 ]);
  rejects (Partition.Range [ 10; 10 ]);
  (match Partition.make ~table:"a:b" ~key_column:"k" (Partition.Hash 2) with
   | (_ : Partition.t) -> Alcotest.fail "expected delimiter rejection"
   | exception Invalid_argument _ -> ());
  let s = Partition.make ~table:"parts" ~key_column:"part_id" (Partition.Range [ 100 ]) in
  check Alcotest.int "range partitions" 2 (Partition.partitions s);
  check Alcotest.int "below bound" 0 (Partition.route_key s 99);
  check Alcotest.int "at bound" 1 (Partition.route_key s 100)

let gen_method =
  QCheck2.Gen.(
    oneof
      [
        map (fun n -> Partition.Hash n) (int_range 1 8);
        map
          (fun steps ->
            (* strictly ascending bounds from positive step sums *)
            let _, bounds =
              List.fold_left
                (fun (at, acc) step ->
                  let at = at + 1 + step in
                  (at, at :: acc))
                (0, []) steps
            in
            Partition.Range (List.rev bounds))
          (list_size (int_range 0 6) (int_range 0 500));
      ])

let prop_spec_roundtrip =
  QCheck2.Test.make ~name:"spec survives to_string/of_string" ~count:200 gen_method
    (fun m ->
      let s = Partition.make ~table:"parts" ~key_column:"part_id" m in
      match Partition.of_string (Partition.to_string s) with
      | Ok s' -> Partition.equal s s'
      | Error msg -> QCheck2.Test.fail_reportf "parse failed: %s" msg)

let prop_routing_total =
  QCheck2.Test.make ~name:"every key routes to exactly one partition" ~count:200
    QCheck2.Gen.(pair gen_method (int_range (-10_000) 10_000))
    (fun (m, k) ->
      let s = Partition.make ~table:"parts" ~key_column:"part_id" m in
      let p = Partition.route_key s k in
      0 <= p && p < Partition.partitions s && p = Partition.route_key s k)

let spec_persistence () =
  let vfs = Vfs.in_memory () in
  let db = Db.create ~vfs ~name:"spec_persist" () in
  let s = Partition.make ~table:"parts" ~key_column:"part_id" (Partition.Range [ 64; 128 ]) in
  check Alcotest.bool "empty before save" true (Partition.load db = None);
  Partition.save db ~shard:2 s;
  (match Partition.load db with
   | Some (shard, s') ->
     check Alcotest.int "shard index" 2 shard;
     check Alcotest.bool "spec equal" true (Partition.equal s s')
   | None -> Alcotest.fail "no spec after save");
  (* overwrite with a different spec; the latest one wins *)
  let s2 = Partition.make ~table:"parts" ~key_column:"part_id" (Partition.Hash 4) in
  Partition.save db ~shard:0 s2;
  match Partition.load db with
  | Some (0, s') -> check Alcotest.bool "overwritten" true (Partition.equal s2 s')
  | _ -> Alcotest.fail "bad spec after overwrite"

(* ---------- staging-tier routing ---------- *)

let mix_deltas ~seed ~rows ~txns =
  let rng = Prng.create ~seed in
  let ops = Workload.gen_mix rng ~existing_ids:rows ~txns ~max_txn_size:6 in
  List.mapi
    (fun i op -> Op_delta.make ~txn_id:(i + 1) (Workload.op_to_stmts ~seed ~day:0 op))
    ops

let split_conserves_statements () =
  let spec = Partition.make ~table:"parts" ~key_column:"part_id" (Partition.Range [ 30; 60 ]) in
  let ods = mix_deltas ~seed:5 ~rows:80 ~txns:40 in
  let buckets, stats = Stage.split ~spec ods in
  check Alcotest.int "bucket per partition" (Partition.partitions spec) (Array.length buckets);
  check Alcotest.int "every statement routed or broadcast" stats.Stage.statements
    (stats.Stage.routed + stats.Stage.broadcast);
  (* each bucket's txn_ids are a strictly increasing subsequence of the
     source history, so per-shard watermarks stay exactly-once *)
  Array.iter
    (fun bucket ->
      ignore
        (List.fold_left
           (fun prev od ->
             check Alcotest.bool "txn ids ascend" true (od.Op_delta.txn_id > prev);
             od.Op_delta.txn_id)
           0 bucket
          : int))
    buckets;
  (* ops conservation: routed statements appear once across buckets,
     broadcast ones once per bucket, insert rows exactly once *)
  let total_ops =
    Array.fold_left
      (fun acc bucket ->
        acc + List.fold_left (fun a od -> a + List.length od.Op_delta.ops) 0 bucket)
      0 buckets
  in
  check Alcotest.bool "bucketed op count bounded" true
    (total_ops <= stats.Stage.routed + (stats.Stage.broadcast * Array.length buckets)
    && total_ops >= stats.Stage.routed + stats.Stage.broadcast)

let split_rejects_key_update () =
  let spec = Partition.make ~table:"parts" ~key_column:"part_id" (Partition.Hash 2) in
  let stmt =
    match Dw_sql.Parser.parse "UPDATE parts SET part_id = 99 WHERE part_id = 1" with
    | Ok s -> s
    | Error e -> Alcotest.failf "parse: %s" e
  in
  let ods = [ Op_delta.make ~txn_id:1 [ stmt ] ] in
  match Stage.split ~spec ods with
  | _ -> Alcotest.fail "expected key-update rejection"
  | exception Invalid_argument _ -> ()

(* ---------- partitioned == sequential (qcheck-pinned) ---------- *)

let view =
  {
    Agg_view.name = "band_stats";
    table = "parts";
    schema = Workload.parts_schema;
    filter = None;
    group_by = [ "qty" ];
    aggregates = [ ("n", Agg_view.Count); ("max_id", Agg_view.Max "part_id") ];
  }

let proj col = { Spj_view.out_name = col; from_side = Spj_view.L; from_col = col }

let spj =
  Spj_view.Select_project
    {
      name = "cheap";
      table = "parts";
      schema = Workload.parts_schema;
      filter =
        Some
          (Dw_relation.Expr.Cmp
             (Dw_relation.Expr.Lt, Dw_relation.Expr.Col "qty",
              Dw_relation.Expr.Lit (Value.Int 500)));
      project = [ proj "part_id"; proj "qty" ];
    }

let load_rows ~rows ~seed =
  let rng = Prng.create ~seed in
  List.init rows (fun i -> Workload.gen_part rng ~id:(i + 1) ~day:0)

let sequential_state ~rows ~seed ods =
  let wh = Warehouse.create ~vfs:(Vfs.in_memory ()) ~name:"seq_ref" () in
  Warehouse.add_replica wh ~table:"parts" ~schema:Workload.parts_schema;
  Warehouse.load_replica wh ~table:"parts" (load_rows ~rows ~seed);
  Warehouse.define_view wh spj;
  Warehouse.define_agg_view wh view;
  ignore (Warehouse.integrate_op_deltas wh ods : Warehouse.stats);
  ( List.sort Tuple.compare (Warehouse.replica_rows wh "parts"),
    Warehouse.view_rows wh "cheap",
    Warehouse.agg_view_rows wh "band_stats" )

let partitioned_state ~spec ~rows ~seed ods =
  let pw = Partitioned.create ~spec ~name:"eqv" () in
  Partitioned.add_replica pw ~table:"parts" ~schema:Workload.parts_schema;
  Partitioned.load_replica pw ~table:"parts" (load_rows ~rows ~seed);
  Partitioned.define_view pw spj;
  Partitioned.define_agg_view pw view;
  let buckets, (_ : Stage.stats) = Stage.split ~spec ods in
  Domain_pool.with_pool ~domains:2 (fun pool ->
      ignore (Partitioned.refresh ~pool pw buckets : Warehouse.stats));
  ( Partitioned.replica_rows pw "parts",
    Partitioned.view_rows pw "cheap",
    Partitioned.agg_view_rows pw "band_stats" )

let gen_equiv_case =
  QCheck2.Gen.(
    tup3 (int_range 0 1_000_000)
      (oneof
         [
           map (fun n -> `Hash n) (int_range 1 5);
           map (fun n -> `Range n) (int_range 1 5);
         ])
      (int_range 10 40))

let prop_partitioned_equals_sequential =
  QCheck2.Test.make ~name:"partitioned refresh == sequential integrator" ~count:12
    gen_equiv_case (fun (seed, placement, txns) ->
      let rows = 60 in
      let spec =
        Partition.make ~table:"parts" ~key_column:"part_id"
          (match placement with
           | `Hash n -> Partition.Hash n
           | `Range n ->
             Partition.Range (List.init (n - 1) (fun i -> (rows + txns) * (i + 1) / n)))
      in
      let ods = mix_deltas ~seed ~rows ~txns in
      partitioned_state ~spec ~rows ~seed ods = sequential_state ~rows ~seed ods)

(* ---------- crash mid-refresh recovery ---------- *)

let crash_recovery () =
  let report =
    Exp_partition.explore_partitioned
      ~spec:{ Exp_partition.c_rows = 48; c_txns = 10; c_parts = 3; c_seed = 11 }
      ~stride:7 ()
  in
  check Alcotest.bool "explored crash points" true
    (report.Dw_experiments.Crash_sim.explored > 0);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "no recovery failures" [] report.Dw_experiments.Crash_sim.failures

(* ---------- per-partition valve independence ---------- *)

let valve_independence () =
  let spec = Partition.make ~table:"parts" ~key_column:"part_id" (Partition.Range [ 50 ]) in
  let pw = Partitioned.create ~spec ~name:"valve" () in
  Partitioned.add_replica pw ~table:"parts" ~schema:Workload.parts_schema;
  Partitioned.load_replica pw ~table:"parts" (load_rows ~rows:100 ~seed:3);
  (* congest shard 0 only: pre-observe lock waits far above the policy
     threshold so its valve must shrink while shard 1's stays open *)
  let congested = Db.metrics (Warehouse.db (Partitioned.shard pw 0)) in
  for _ = 1 to 200 do
    Metrics.observe congested "lock.wait" 0.5
  done;
  let ods =
    List.init 40 (fun i ->
        Op_delta.make ~txn_id:(i + 1)
          [ Workload.update_parts_stmt ~first_id:(1 + (i * 29 mod 90)) ~size:2 ])
  in
  let buckets, (_ : Stage.stats) = Stage.split ~spec ods in
  let policy = { Warehouse.max_batch = 8; min_batch = 1; lock_wait_p95_s = 0.010 } in
  Domain_pool.with_pool ~domains:2 (fun pool ->
      ignore (Partitioned.refresh ~policy ~pool pw buckets : Warehouse.stats));
  let target i =
    Metrics.gauge (Db.metrics (Warehouse.db (Partitioned.shard pw i))) "warehouse.batch_size_target"
  in
  check Alcotest.bool "congested shard throttled" true (target 0 < float_of_int policy.Warehouse.max_batch);
  check Alcotest.bool "healthy shard unthrottled" true
    (target 1 = float_of_int policy.Warehouse.max_batch);
  (* watermarks advanced to each bucket's last txn despite the throttle *)
  let wms = Partitioned.watermarks pw in
  Array.iteri
    (fun i bucket ->
      let last = List.fold_left (fun acc od -> max acc od.Op_delta.txn_id) 0 bucket in
      check Alcotest.int (Printf.sprintf "shard %d watermark" i) last wms.(i))
    buckets

(* ---------- guard rails ---------- *)

let rejects_join_view () =
  let spec = Partition.make ~table:"parts" ~key_column:"part_id" (Partition.Hash 2) in
  let pw = Partitioned.create ~spec ~name:"guard" () in
  Partitioned.add_replica pw ~table:"parts" ~schema:Workload.parts_schema;
  let join =
    Spj_view.Join
      {
        name = "j";
        left_table = "parts";
        left_schema = Workload.parts_schema;
        right_table = "parts";
        right_schema = Workload.parts_schema;
        on = [ ("part_id", "part_id") ];
        left_filter = None;
        right_filter = None;
        project = [ proj "part_id" ];
      }
  in
  match Partitioned.define_view pw join with
  | () -> Alcotest.fail "expected join-view rejection"
  | exception Invalid_argument _ -> ()

let rejects_wrong_leading_key () =
  let spec = Partition.make ~table:"parts" ~key_column:"qty" (Partition.Hash 2) in
  let pw = Partitioned.create ~spec ~name:"guard2" () in
  match Partitioned.add_replica pw ~table:"parts" ~schema:Workload.parts_schema with
  | () -> Alcotest.fail "expected leading-key rejection"
  | exception Invalid_argument _ -> ()

let suite =
  [
    test "spec validation and range routing" spec_validation;
    QCheck_alcotest.to_alcotest prop_spec_roundtrip;
    QCheck_alcotest.to_alcotest prop_routing_total;
    test "spec save/load persistence" spec_persistence;
    test "split conserves statements" split_conserves_statements;
    test "split rejects partition-key update" split_rejects_key_update;
    QCheck_alcotest.to_alcotest prop_partitioned_equals_sequential;
    test "crash mid-refresh recovers" crash_recovery;
    test "per-partition valve independence" valve_independence;
    test "rejects join views" rejects_join_view;
    test "rejects mismatched leading key" rejects_wrong_leading_key;
  ]
