(** Crash recovery: redo committed work, undo losers.

    Three passes over the retained log, in the classic style:

    + {b analysis} — find winners (transactions with a Commit record) and
      losers (Begin without Commit/Abort);
    + {b redo} — reapply every DML record of winning transactions, in LSN
      order, via {!Dw_storage.Heap_file.force_at} (idempotent full-record
      images);
    + {b undo} — reverse losers' DML records in reverse LSN order,
      {e except} records whose rid a committed transaction rewrote at a
      higher LSN: under strict 2PL the winner can only have acquired
      that rid after the loser's rollback completed (typically in a
      previous incarnation, before a second crash), so the redone winner
      image is the correct final state and stale undo must not clobber
      it.

    Aborted transactions' records are skipped in redo and also undone
    (the engine applies changes eagerly, so an abort that didn't finish
    rolling back is completed here). *)

type stats = {
  records_scanned : int;
  winners : int;
  losers : int;
  redone : int;
  undone : int;
}

val run :
  wal:Wal.t ->
  resolve:(string -> Dw_storage.Heap_file.t option) ->
  stats
(** [resolve] maps a table name from the log to its heap file; records for
    unknown tables (dropped since) are skipped. *)

val pp_stats : Format.formatter -> stats -> unit
(** One-line human summary (records replayed, txns won/lost, bytes). *)
