module Db = Dw_engine.Db
module Op_delta = Dw_core.Op_delta
module Metrics = Dw_util.Metrics
module Partition = Dw_warehouse.Partition
module Partitioned = Dw_warehouse.Partitioned
module Warehouse = Dw_warehouse.Warehouse
module Pq = Dw_transport.Persistent_queue

let queue_name = "rebuild.q"

type outcome = {
  progress : Bootstrap.progress;
  watermark : int;
}

(* slice one delta transaction down to the ops the shard owns.  Stage
   does the routing (fact inserts decomposed row-wise, confined
   updates/deletes to their one partition, everything else broadcast);
   a transaction contributing nothing still comes back with its txn_id,
   so the bootstrap's exactly-once mark advances over it. *)
let restrict_to ~spec ~shard od =
  let buckets, (_ : Stage.stats) = Stage.split ~spec [ od ] in
  match buckets.(shard) with
  | [ sliced ] -> sliced
  | [] -> { od with Op_delta.ops = [] }
  | _ :: _ :: _ -> assert false

let owns ~spec ~shard k = Partition.route_key spec k = shard

(* run the slice bootstrap against the (fresh or re-adopted) shard and
   re-admit it into the fleet at its applied-through source txn *)
let drive ?config ?hook ~owner ~source ~capture ~watermark ~fleet ~shard wh =
  let spec = Partitioned.spec fleet in
  let table = Partition.table spec in
  let vfs = (Partitioned.vfss fleet).(shard) in
  let queue = Pq.open_ vfs ~name:queue_name in
  match
    Bootstrap.start ?config ?hook
      ~restrict:(restrict_to ~spec ~shard)
      ~owns:(owns ~spec ~shard)
      ~owner ~source ~capture ~table ~queue ~warehouse:wh ~watermark ()
  with
  | Error e -> Error e
  | Ok b -> (
    match Bootstrap.run b with
    | Error e -> Error e
    | Ok progress ->
      let wm_txn =
        match Bootstrap.state (Warehouse.db wh) ~table with
        | Some row -> row.Run_state.last_txn
        | None -> 0
      in
      Partitioned.readmit fleet shard ~watermark:wm_txn;
      Metrics.incr (Partitioned.health_metrics fleet) "health.rebuild_complete";
      Ok { progress; watermark = wm_txn })

let rebuild_shard ?config ?hook ?donor ~owner ~source ~capture ~watermark ~fleet ~shard () =
  let wh = Partitioned.begin_rebuild ?donor fleet shard in
  drive ?config ?hook ~owner ~source ~capture ~watermark ~fleet ~shard wh

let resume_shard ?config ?hook ~owner ~source ~capture ~watermark ~fleet ~shard () =
  Partitioned.reattach_rebuilding
    ~extra:[ (Run_state.table_name, Run_state.schema) ]
    fleet shard;
  let wh = Partitioned.shard fleet shard in
  drive ?config ?hook ~owner ~source ~capture ~watermark ~fleet ~shard wh
