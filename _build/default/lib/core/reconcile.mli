(** Reconciliation of deltas extracted from replicated sources
    (paper Sections 2.2 and 4.1).

    When the same logical entity is replicated across k source databases,
    every low-level value-delta method (trigger, log, snapshot) observes k
    physical copies of each change.  Before integration the copies must be
    reduced to one {e authoritative} delta.  Op-Delta avoids this entirely
    by capturing at the business-transaction level, above the replication
    logic; this module is the price value deltas pay.

    Policy: replica streams are listed in priority order (first =
    authoritative).  Changes are matched across streams by (key, kind);
    matched duplicates are dropped, and when matched copies disagree on
    the images (replicas that are "not exact replicas"), the highest-
    priority copy wins and the disagreement is counted as a conflict. *)

type stats = {
  input_changes : int;     (** across all replica streams *)
  output_changes : int;    (** authoritative changes kept *)
  duplicates_dropped : int;
  conflicts_resolved : int;
}

val reconcile : Delta.t list -> Delta.t * stats
(** All deltas must target the same table/schema (the replicas).
    Raises [Invalid_argument] on mismatch or empty input. *)
