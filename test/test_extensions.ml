(* Tests for the extension features: timestamp-extraction restriction and
   sub-setting, extraction watermarks, group commit, and the aggregate
   view unit pieces not covered by the warehouse suite. *)

module Vfs = Dw_storage.Vfs
module Value = Dw_relation.Value
module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Expr = Dw_relation.Expr
module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Workload = Dw_workload.Workload
module Delta = Dw_core.Delta
module Timestamp_extract = Dw_core.Timestamp_extract
module Watermark = Dw_core.Watermark
module Log_extract = Dw_core.Log_extract
module Prng = Dw_util.Prng

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let mk_source ?(rows = 40) () =
  let vfs = Vfs.in_memory () in
  let db = Db.create ~archive_log:true ~vfs ~name:"src" () in
  let _ = Workload.create_parts_table db in
  if rows > 0 then Workload.load_parts db ~rows ();
  db

let touch db ~first_id ~size =
  let watermark = Db.current_day db in
  Db.set_day db (watermark + 1);
  Db.with_txn db (fun txn ->
      ignore (Db.exec db txn (Workload.update_parts_stmt ~first_id ~size) : Db.exec_result));
  watermark

(* ---------- restriction / sub-setting ---------- *)

let ts_restrict () =
  let db = mk_source () in
  let watermark = touch db ~first_id:1 ~size:20 in
  (* only even-qty rows of the delta *)
  let delta, _ =
    Timestamp_extract.extract
      ~restrict:(Expr.Cmp (Expr.Le, Expr.Col "part_id", Expr.Lit (Value.Int 5)))
      db ~table:"parts" ~since:watermark
      ~output:(Timestamp_extract.To_file "r.asc")
  in
  check Alcotest.int "restricted rows" 5 (Delta.row_count delta)

let ts_project () =
  let db = mk_source () in
  let watermark = touch db ~first_id:1 ~size:7 in
  let delta, _ =
    Timestamp_extract.extract ~project:[ "part_id"; "qty" ] db ~table:"parts" ~since:watermark
      ~output:(Timestamp_extract.To_file "p.asc")
  in
  check Alcotest.int "rows" 7 (Delta.row_count delta);
  check Alcotest.int "projected arity" 2 (Schema.arity delta.Delta.schema);
  List.iter
    (fun change ->
      match change with
      | Delta.Upsert row -> check Alcotest.int "tuple arity" 2 (Array.length row)
      | _ -> Alcotest.fail "expected upserts")
    delta.Delta.changes

let ts_project_must_keep_key () =
  let db = mk_source () in
  let watermark = touch db ~first_id:1 ~size:3 in
  try
    ignore
      (Timestamp_extract.extract ~project:[ "qty" ] db ~table:"parts" ~since:watermark
         ~output:(Timestamp_extract.To_file "x.asc"));
    Alcotest.fail "expected key-projection failure"
  with Invalid_argument _ -> ()

let ts_restrict_and_project_to_table () =
  let db = mk_source () in
  let watermark = touch db ~first_id:1 ~size:10 in
  let delta, _ =
    Timestamp_extract.extract
      ~restrict:(Expr.Cmp (Expr.Gt, Expr.Col "part_id", Expr.Lit (Value.Int 4)))
      ~project:[ "part_id"; "price" ] db ~table:"parts" ~since:watermark
      ~output:(Timestamp_extract.To_table "slim_delta")
  in
  check Alcotest.int "rows" 6 (Delta.row_count delta);
  let tbl = Db.table db "slim_delta" in
  check Alcotest.int "table arity" 2 (Schema.arity (Table.schema tbl));
  check Alcotest.int "table rows" 6 (Table.row_count tbl)

(* ---------- watermarks ---------- *)

let watermark_roundtrip () =
  let vfs = Vfs.in_memory () in
  let wm = Watermark.load vfs ~name:"marks" in
  check Alcotest.int "virgin day" (-1) (Watermark.get wm ~table:"parts").Watermark.day;
  Watermark.advance wm ~table:"parts" { Watermark.day = 10; lsn = 512 };
  Watermark.advance wm ~table:"orders" { Watermark.day = 4; lsn = 100 };
  (* re-open: state survives *)
  let wm2 = Watermark.load vfs ~name:"marks" in
  check Alcotest.int "day persisted" 10 (Watermark.get wm2 ~table:"parts").Watermark.day;
  check Alcotest.int "lsn persisted" 512 (Watermark.get wm2 ~table:"parts").Watermark.lsn;
  check (Alcotest.list Alcotest.string) "tables" [ "orders"; "parts" ] (Watermark.tables wm2)

let watermark_no_regression () =
  let vfs = Vfs.in_memory () in
  let wm = Watermark.load vfs ~name:"marks" in
  Watermark.advance wm ~table:"parts" { Watermark.day = 10; lsn = 512 };
  try
    Watermark.advance wm ~table:"parts" { Watermark.day = 9; lsn = 600 };
    Alcotest.fail "expected regression failure"
  with Invalid_argument _ -> ()

let watermark_drives_incremental_rounds () =
  (* two extraction rounds; round 2 only sees round-2 changes *)
  let db = mk_source () in
  let vfs = Db.vfs db in
  let wm = Watermark.load vfs ~name:"marks" in
  (* round 1 *)
  let w1 = touch db ~first_id:1 ~size:5 in
  ignore w1;
  let mark = Watermark.get wm ~table:"parts" in
  let d1, _ =
    Timestamp_extract.extract db ~table:"parts" ~since:mark.Watermark.day
      ~output:(Timestamp_extract.To_file "r1.asc")
  in
  Watermark.advance wm ~table:"parts"
    { Watermark.day = Db.current_day db; lsn = Dw_txn.Wal.next_lsn (Db.wal db) };
  (* round 1 sees the full table (initial mark = -1) *)
  check Alcotest.int "round 1 = everything" 40 (Delta.row_count d1);
  (* round 2 *)
  ignore (touch db ~first_id:11 ~size:3 : int);
  let mark = Watermark.get wm ~table:"parts" in
  let d2, _ =
    Timestamp_extract.extract db ~table:"parts" ~since:mark.Watermark.day
      ~output:(Timestamp_extract.To_file "r2.asc")
  in
  check Alcotest.int "round 2 = new changes only" 3 (Delta.row_count d2);
  (* log-based round with the lsn watermark *)
  let d3, _ = Log_extract.extract ~since_lsn:mark.Watermark.lsn db ~table:"parts" () in
  check Alcotest.int "log round matches" 3 (Delta.row_count d3)

(* ---------- watermark torn-tail / fault hardening ---------- *)

let append_raw vfs name s =
  let f = Vfs.open_or_create vfs name in
  ignore (Vfs.append f (Bytes.of_string s) : int);
  Vfs.fsync f;
  Vfs.close f

(* a crash mid-append leaves a partial record: load falls back to the
   last durable state and truncates the tail, so post-recovery advances
   stay visible to every later load *)
let watermark_torn_tail () =
  let vfs = Vfs.in_memory () in
  let wm = Watermark.load vfs ~name:"marks" in
  Watermark.advance wm ~table:"parts" { Watermark.day = 3; lsn = 30 };
  Watermark.advance wm ~table:"orders" { Watermark.day = 1; lsn = 10 };
  append_raw vfs "marks" "m|parts|9|9";
  let wm2 = Watermark.load vfs ~name:"marks" in
  check Alcotest.int "parts fell back" 3 (Watermark.get wm2 ~table:"parts").Watermark.day;
  check Alcotest.int "orders unaffected" 1 (Watermark.get wm2 ~table:"orders").Watermark.day;
  Watermark.advance wm2 ~table:"parts" { Watermark.day = 4; lsn = 40 };
  let wm3 = Watermark.load vfs ~name:"marks" in
  check Alcotest.int "recovery advance visible" 4 (Watermark.get wm3 ~table:"parts").Watermark.day;
  check Alcotest.int "lsn too" 40 (Watermark.get wm3 ~table:"parts").Watermark.lsn

let watermark_corrupt_checksum () =
  let vfs = Vfs.in_memory () in
  let wm = Watermark.load vfs ~name:"marks" in
  Watermark.advance wm ~table:"parts" { Watermark.day = 1; lsn = 10 };
  Watermark.advance wm ~table:"parts" { Watermark.day = 2; lsn = 20 };
  (* flip bytes inside the last record's checksum field *)
  let f = Vfs.open_existing vfs "marks" in
  let len = Vfs.size f in
  Vfs.write_at f ~off:(len - 3) (Bytes.of_string "zz");
  Vfs.fsync f;
  Vfs.close f;
  let wm2 = Watermark.load vfs ~name:"marks" in
  check Alcotest.int "fell back to last valid record" 1
    (Watermark.get wm2 ~table:"parts").Watermark.day

(* fault-injection regression: kill the store at every write/fsync event
   of one advance; whatever survives must be one of the two adjacent
   durable states, and the store must stay fully usable *)
let watermark_crash_during_advance () =
  let mk () =
    let vfs = Vfs.in_memory () in
    let wm = Watermark.load vfs ~name:"marks" in
    Watermark.advance wm ~table:"parts" { Watermark.day = 1; lsn = 10 };
    (vfs, wm)
  in
  let vfs0, wm0 = mk () in
  Vfs.set_fault vfs0 (Some (Vfs.Fault.make ~seed:1 ()));
  Watermark.advance wm0 ~table:"parts" { Watermark.day = 2; lsn = 20 };
  let total = match Vfs.fault vfs0 with Some f -> Vfs.Fault.events f | None -> 0 in
  check Alcotest.bool "events counted" true (total > 0);
  for k = 0 to total - 1 do
    let vfs, wm = mk () in
    Vfs.set_fault vfs (Some (Vfs.Fault.make ~fail_stop_after:k ~seed:(10 + k) ()));
    (try Watermark.advance wm ~table:"parts" { Watermark.day = 2; lsn = 20 }
     with Vfs.Fault.Crash _ -> ());
    Vfs.crash_reset vfs;
    let wm2 = Watermark.load vfs ~name:"marks" in
    let day = (Watermark.get wm2 ~table:"parts").Watermark.day in
    check Alcotest.bool "durable state only" true (day = 1 || day = 2);
    Watermark.advance wm2 ~table:"parts" { Watermark.day = 3; lsn = 30 };
    check Alcotest.int "usable after crash" 3
      (Watermark.get (Watermark.load vfs ~name:"marks") ~table:"parts").Watermark.day
  done

let watermark_cursor_roundtrip () =
  let vfs = Vfs.in_memory () in
  let wm = Watermark.load vfs ~name:"marks" in
  check Alcotest.bool "no cursor" true (Watermark.cursor wm ~table:"parts" = None);
  Watermark.set_cursor wm ~table:"parts" { Watermark.next_key = 100; chunks_done = 2 };
  (match Watermark.cursor (Watermark.load vfs ~name:"marks") ~table:"parts" with
   | Some c ->
     check Alcotest.int "next_key" 100 c.Watermark.next_key;
     check Alcotest.int "chunks_done" 2 c.Watermark.chunks_done
   | None -> Alcotest.fail "cursor lost");
  (* chunks_done may only move forward *)
  (try
     Watermark.set_cursor wm ~table:"parts" { Watermark.next_key = 0; chunks_done = 1 };
     Alcotest.fail "expected cursor regression failure"
   with Invalid_argument _ -> ());
  Watermark.clear_cursor wm ~table:"parts";
  check Alcotest.bool "cleared persists" true
    (Watermark.cursor (Watermark.load vfs ~name:"marks") ~table:"parts" = None);
  (* clearing again is a no-op *)
  Watermark.clear_cursor wm ~table:"parts"

(* ---------- group commit ---------- *)

let group_commit_fewer_fsyncs () =
  let metrics = Dw_util.Metrics.create () in
  let vfs = Vfs.in_memory ~metrics () in
  let db = Db.create ~vfs ~name:"src" () in
  let _ = Workload.create_parts_table db in
  Db.set_sync_mode db (`Group 10);
  let before = Dw_util.Metrics.get metrics "vfs.fsyncs" in
  for i = 1 to 25 do
    Db.with_txn db (fun txn ->
        List.iter
          (fun stmt -> ignore (Db.exec db txn stmt : Db.exec_result))
          (Workload.insert_parts_txn ~first_id:i ~size:1 ~day:0 ()))
  done;
  let commits_synced = Dw_util.Metrics.get metrics "vfs.fsyncs" - before in
  check Alcotest.int "2 group syncs for 25 commits" 2 commits_synced;
  (* recovery still sees all flushed work plus the tail (in-memory vfs
     retains everything; the mode only changes fsync cadence) *)
  ignore (Db.recover db : Dw_txn.Recovery.stats);
  check Alcotest.int "all rows" 25 (Table.row_count (Db.table db "parts"))

let group_commit_validates () =
  let db = mk_source ~rows:0 () in
  try
    Db.set_sync_mode db (`Group 0);
    Alcotest.fail "expected failure"
  with Invalid_argument _ -> ()

let suite =
  [
    test "ts restrict" ts_restrict;
    test "ts project" ts_project;
    test "ts project must keep key" ts_project_must_keep_key;
    test "ts restrict+project to table" ts_restrict_and_project_to_table;
    test "watermark roundtrip" watermark_roundtrip;
    test "watermark no regression" watermark_no_regression;
    test "watermark drives incremental rounds" watermark_drives_incremental_rounds;
    test "watermark torn tail truncated" watermark_torn_tail;
    test "watermark corrupt checksum ignored" watermark_corrupt_checksum;
    test "watermark crash sweep during advance" watermark_crash_during_advance;
    test "watermark bootstrap cursor" watermark_cursor_roundtrip;
    test "group commit fewer fsyncs" group_commit_fewer_fsyncs;
    test "group commit validates" group_commit_validates;
  ]
