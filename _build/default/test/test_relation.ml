(* Tests for Dw_relation: values, schemas, tuples, codecs, expressions.
   Includes qcheck round-trip properties for both codecs. *)

module Value = Dw_relation.Value
module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Codec = Dw_relation.Codec
module Expr = Dw_relation.Expr

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

(* ---------- fixtures ---------- *)

let parts_schema =
  Schema.make ~key_arity:1
    [
      { Schema.name = "part_id"; ty = Value.Tint; nullable = false };
      { Schema.name = "descr"; ty = Value.Tstring 40; nullable = true };
      { Schema.name = "qty"; ty = Value.Tint; nullable = true };
      { Schema.name = "price"; ty = Value.Tfloat; nullable = true };
      { Schema.name = "active"; ty = Value.Tbool; nullable = true };
      { Schema.name = "last_modified"; ty = Value.Tdate; nullable = false };
    ]

let part ?(id = 1) ?(descr = "widget") ?(qty = 10) ?(price = 9.99) ?(active = true) ?(day = 10950)
    () =
  [| Value.Int id; Value.Str descr; Value.Int qty; Value.Float price; Value.Bool active;
     Value.Date day |]

(* ---------- values ---------- *)

let value_compare_numeric () =
  check Alcotest.bool "int<int" true (Value.compare (Value.Int 1) (Value.Int 2) < 0);
  check Alcotest.bool "int/float mixed" true
    (Value.compare (Value.Int 1) (Value.Float 1.5) < 0);
  check Alcotest.bool "float/int equal" true
    (Value.compare (Value.Float 2.0) (Value.Int 2) = 0);
  check Alcotest.bool "null smallest" true (Value.compare Value.Null (Value.Int min_int) < 0)

let value_arith () =
  check Alcotest.bool "add ints" true (Value.equal (Value.add (Value.Int 2) (Value.Int 3)) (Value.Int 5));
  check Alcotest.bool "promote" true
    (Value.equal (Value.mul (Value.Int 2) (Value.Float 1.5)) (Value.Float 3.0));
  check Alcotest.bool "null propagates" true (Value.is_null (Value.add Value.Null (Value.Int 1)));
  Alcotest.check_raises "div by zero" (Invalid_argument "Value.div: division by zero") (fun () ->
      ignore (Value.div (Value.Int 1) (Value.Int 0)))

let value_ty_compat () =
  check Alcotest.bool "int ok" true (Value.ty_compatible Value.Tint (Value.Int 3));
  check Alcotest.bool "null ok anywhere" true (Value.ty_compatible Value.Tbool Value.Null);
  check Alcotest.bool "str fits" true (Value.ty_compatible (Value.Tstring 3) (Value.Str "abc"));
  check Alcotest.bool "str too long" false (Value.ty_compatible (Value.Tstring 3) (Value.Str "abcd"));
  check Alcotest.bool "wrong type" false (Value.ty_compatible Value.Tint (Value.Str "x"))

let value_ty_string_roundtrip () =
  List.iter
    (fun ty ->
      check Alcotest.bool "ty roundtrip" true
        (Value.ty_of_string (Value.ty_to_string ty) = Some ty))
    [ Value.Tint; Value.Tfloat; Value.Tbool; Value.Tdate; Value.Tstring 17 ]

let value_dates () =
  (match Value.date_of_ymd ~year:1970 ~month:1 ~day:1 with
   | Value.Date 0 -> ()
   | v -> Alcotest.failf "epoch should be day 0, got %s" (Value.to_string v));
  (match Value.date_of_ymd ~year:1999 ~month:12 ~day:5 with
   | Value.Date d ->
     (* 1999-12-05 is 10930 days after 1970-01-01 *)
     check Alcotest.int "1999-12-05" 10930 d
   | v -> Alcotest.failf "unexpected %s" (Value.to_string v))

let value_sql_literal () =
  check Alcotest.string "escaping" "'o''brien'" (Value.to_sql_literal (Value.Str "o'brien"));
  check Alcotest.string "null" "NULL" (Value.to_sql_literal Value.Null);
  check Alcotest.string "bool" "TRUE" (Value.to_sql_literal (Value.Bool true))

(* ---------- schema ---------- *)

let schema_lookup () =
  check Alcotest.int "arity" 6 (Schema.arity parts_schema);
  check Alcotest.int "key arity" 1 (Schema.key_arity parts_schema);
  check Alcotest.int "index_of" 3 (Schema.index_of parts_schema "price");
  check Alcotest.bool "mem" true (Schema.mem parts_schema "qty");
  check Alcotest.bool "not mem" false (Schema.mem parts_schema "nope")

let schema_validation_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Schema.make: empty column list") (fun () ->
      ignore (Schema.make []));
  Alcotest.check_raises "dup" (Invalid_argument "Schema.make: duplicate column a") (fun () ->
      ignore
        (Schema.make
           [
             { Schema.name = "a"; ty = Value.Tint; nullable = false };
             { Schema.name = "a"; ty = Value.Tint; nullable = false };
           ]))

let schema_record_size () =
  (* 1 bitmap byte (6 cols) + 8 + (2+40) + 8 + 8 + 1 + 8 = 76 *)
  check Alcotest.int "record size" 76 (Schema.record_size parts_schema)

let schema_project () =
  let sub = Schema.project parts_schema [ "qty"; "part_id" ] in
  check Alcotest.int "sub arity" 2 (Schema.arity sub);
  check Alcotest.int "order preserved" 0 (Schema.index_of sub "qty")

(* ---------- tuples ---------- *)

let tuple_validate () =
  check Alcotest.bool "valid" true (Tuple.validate parts_schema (part ()) = Ok ());
  let bad_arity = [| Value.Int 1 |] in
  check Alcotest.bool "arity" true (Result.is_error (Tuple.validate parts_schema bad_arity));
  let null_key = part () in
  null_key.(0) <- Value.Null;
  check Alcotest.bool "null key" true (Result.is_error (Tuple.validate parts_schema null_key));
  let wrong_ty = part () in
  wrong_ty.(2) <- Value.Str "x";
  check Alcotest.bool "type" true (Result.is_error (Tuple.validate parts_schema wrong_ty))

let tuple_key_ops () =
  let a = part ~id:1 () and b = part ~id:2 ~descr:"other" () in
  check Alcotest.bool "key compare" true (Tuple.compare_key parts_schema a b < 0);
  check Alcotest.int "key arity" 1 (Array.length (Tuple.key parts_schema a))

let tuple_get_set () =
  let t = part () in
  let t' = Tuple.set parts_schema t "qty" (Value.Int 99) in
  check Alcotest.bool "functional" true (Value.equal (Tuple.get parts_schema t "qty") (Value.Int 10));
  check Alcotest.bool "updated" true (Value.equal (Tuple.get parts_schema t' "qty") (Value.Int 99))

(* ---------- codecs ---------- *)

let binary_roundtrip_simple () =
  let t = part ~descr:"hello world" () in
  let b = Codec.encode_binary parts_schema t in
  check Alcotest.int "width" (Schema.record_size parts_schema) (Bytes.length b);
  let t' = Codec.decode_binary parts_schema b 0 in
  check Alcotest.bool "roundtrip" true (Tuple.equal t t')

let binary_roundtrip_nulls () =
  let t = part () in
  t.(1) <- Value.Null;
  t.(3) <- Value.Null;
  let t' = Codec.decode_binary parts_schema (Codec.encode_binary parts_schema t) 0 in
  check Alcotest.bool "roundtrip with nulls" true (Tuple.equal t t')

let ascii_roundtrip_escapes () =
  let t = part ~descr:"a|b\\c\nd" () in
  let line = Codec.encode_ascii parts_schema t in
  check Alcotest.bool "single line" false (String.contains line '\n');
  match Codec.decode_ascii parts_schema line with
  | Ok t' -> check Alcotest.bool "roundtrip" true (Tuple.equal t t')
  | Error e -> Alcotest.fail e

let ascii_rejects_garbage () =
  check Alcotest.bool "bad field count" true
    (Result.is_error (Codec.decode_ascii parts_schema "1|2"));
  check Alcotest.bool "bad int" true
    (Result.is_error (Codec.decode_ascii parts_schema "x|d|1|1.0|T|10"))

(* qcheck generators *)

let gen_value ty =
  let open QCheck2.Gen in
  match ty with
  | Value.Tint -> map (fun n -> Value.Int n) int
  | Value.Tfloat -> map (fun f -> Value.Float f) (float_bound_inclusive 1e9)
  | Value.Tbool -> map (fun b -> Value.Bool b) bool
  | Value.Tdate -> map (fun d -> Value.Date d) (int_range 0 100000)
  | Value.Tstring n ->
    map (fun s -> Value.Str s) (string_size ~gen:printable (int_range 0 (min n 20)))

let gen_tuple schema =
  let open QCheck2.Gen in
  let cols = Schema.columns schema in
  let gens =
    List.mapi
      (fun i c ->
        if c.Schema.nullable && i >= Schema.key_arity schema then
          frequency [ (1, return Value.Null); (4, gen_value c.Schema.ty) ]
        else gen_value c.Schema.ty)
      cols
  in
  map Array.of_list (flatten_l gens)

let prop_binary_roundtrip =
  QCheck2.Test.make ~name:"binary codec roundtrip" ~count:500 (gen_tuple parts_schema)
    (fun t ->
      let t' = Codec.decode_binary parts_schema (Codec.encode_binary parts_schema t) 0 in
      Tuple.equal t t')

let prop_ascii_roundtrip =
  QCheck2.Test.make ~name:"ascii codec roundtrip" ~count:500 (gen_tuple parts_schema)
    (fun t ->
      match Codec.decode_ascii parts_schema (Codec.encode_ascii parts_schema t) with
      | Ok t' -> Tuple.equal t t'
      | Error _ -> false)

(* ---------- expressions ---------- *)

let expr_eval_basics () =
  let t = part ~qty:10 ~price:2.5 () in
  let e = Expr.Cmp (Expr.Gt, Expr.Col "qty", Expr.Lit (Value.Int 5)) in
  check Alcotest.bool "qty > 5" true (Expr.eval_pred parts_schema t e);
  let e2 =
    Expr.And
      ( Expr.Cmp (Expr.Ge, Expr.Col "price", Expr.Lit (Value.Float 2.5)),
        Expr.Not (Expr.Cmp (Expr.Eq, Expr.Col "descr", Expr.Lit (Value.Str "nope"))) )
  in
  check Alcotest.bool "conjunction" true (Expr.eval_pred parts_schema t e2)

let expr_null_semantics () =
  let t = part () in
  let t = Tuple.set parts_schema t "qty" Value.Null in
  let cmp = Expr.Cmp (Expr.Eq, Expr.Col "qty", Expr.Lit (Value.Int 10)) in
  check Alcotest.bool "null cmp false" false (Expr.eval_pred parts_schema t cmp);
  check Alcotest.bool "is null" true (Expr.eval_pred parts_schema t (Expr.Is_null (Expr.Col "qty")));
  check Alcotest.bool "is not null" false
    (Expr.eval_pred parts_schema t (Expr.Is_not_null (Expr.Col "qty")))

let expr_arith_eval () =
  let t = part ~qty:4 () in
  let e = Expr.Binop (Expr.Mul, Expr.Col "qty", Expr.Lit (Value.Int 3)) in
  check Alcotest.bool "4*3" true (Value.equal (Expr.eval parts_schema t e) (Value.Int 12))

let expr_columns () =
  let e =
    Expr.And
      ( Expr.Cmp (Expr.Gt, Expr.Col "qty", Expr.Col "part_id"),
        Expr.Cmp (Expr.Lt, Expr.Col "qty", Expr.Lit (Value.Int 3)) )
  in
  check (Alcotest.list Alcotest.string) "refs" [ "qty"; "part_id" ] (Expr.columns e)

let expr_pp_parens () =
  let e =
    Expr.Binop
      (Expr.Mul, Expr.Binop (Expr.Add, Expr.Col "a", Expr.Col "b"), Expr.Lit (Value.Int 2))
  in
  check Alcotest.string "parens" "(a + b) * 2" (Expr.to_string e)

let expr_conj () =
  check Alcotest.bool "empty" true (Expr.conj [] = None);
  let p = Expr.Cmp (Expr.Eq, Expr.Col "a", Expr.Lit (Value.Int 1)) in
  (match Expr.conj [ p; p ] with
   | Some (Expr.And _) -> ()
   | _ -> Alcotest.fail "expected And")

let suite =
  [
    test "value compare numeric" value_compare_numeric;
    test "value arith" value_arith;
    test "value type compatibility" value_ty_compat;
    test "value type string roundtrip" value_ty_string_roundtrip;
    test "value dates" value_dates;
    test "value sql literal" value_sql_literal;
    test "schema lookup" schema_lookup;
    test "schema validation errors" schema_validation_errors;
    test "schema record size" schema_record_size;
    test "schema project" schema_project;
    test "tuple validate" tuple_validate;
    test "tuple key ops" tuple_key_ops;
    test "tuple get/set" tuple_get_set;
    test "binary roundtrip simple" binary_roundtrip_simple;
    test "binary roundtrip nulls" binary_roundtrip_nulls;
    test "ascii roundtrip escapes" ascii_roundtrip_escapes;
    test "ascii rejects garbage" ascii_rejects_garbage;
    QCheck_alcotest.to_alcotest prop_binary_roundtrip;
    QCheck_alcotest.to_alcotest prop_ascii_roundtrip;
    test "expr eval basics" expr_eval_basics;
    test "expr null semantics" expr_null_semantics;
    test "expr arith eval" expr_arith_eval;
    test "expr columns" expr_columns;
    test "expr pp parens" expr_pp_parens;
    test "expr conj" expr_conj;
  ]
