lib/util/fmt_util.ml: Array Float List Printf String
