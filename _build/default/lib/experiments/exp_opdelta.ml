(* Experiments F3, T4 and V1 — paper Figure 3 (Op-Delta capture overhead),
   Table 4 (response time with DB log vs file log), and the delta-volume
   claim of Section 4.1.

   Expected shapes:
   - F3: insert capture overhead ~comparable to the trigger method
     (~66%); delete/update capture overhead tiny (a few %) because one
     small SQL string is written regardless of transaction size;
   - T4: file log <= DB log for every cell, the gap largest on inserts;
   - V1: op-delta bytes flat in txn size for update/delete, value-delta
     bytes linear. *)

module Db = Dw_engine.Db
module Workload = Dw_workload.Workload
module Opdelta_capture = Dw_core.Opdelta_capture
module Trigger_extract = Dw_core.Trigger_extract
module Delta = Dw_core.Delta
module Op_delta = Dw_core.Op_delta
open Bench_support

type op_kind = Insert | Delete | Update

let op_name = function Insert -> "insert" | Delete -> "delete" | Update -> "update"

let stmts_for ~table_rows kind size day =
  match kind with
  | Insert -> Workload.insert_parts_txn ~first_id:(table_rows + 1) ~size ~day ()
  | Delete -> [ Workload.delete_parts_stmt ~first_id:1 ~size ]
  | Update -> [ Workload.update_parts_stmt ~first_id:1 ~size ]

(* response time of one transaction, with capture = None | DB | File *)
let response_time ~table_rows ~capture kind size =
  let setup () =
    let db = fresh_source ~rows:table_rows () in
    let day = Db.current_day db + 1 in
    Db.set_day db day;
    let stmts = stmts_for ~table_rows kind size day in
    let exec =
      match capture with
      | `None ->
        fun () ->
          Db.with_txn db (fun txn ->
              List.iter (fun stmt -> ignore (Db.exec db txn stmt : Db.exec_result)) stmts)
      | `Db_log ->
        let cap =
          Opdelta_capture.create db ~sink:(Opdelta_capture.To_db_table "opdelta_log")
        in
        fun () ->
          (match Opdelta_capture.exec_txn cap stmts with
           | Ok _ -> ()
           | Error e -> failwith e)
      | `File_log ->
        let cap = Opdelta_capture.create db ~sink:(Opdelta_capture.To_file "opdelta.log") in
        fun () ->
          (match Opdelta_capture.exec_txn cap stmts with
           | Ok _ -> ()
           | Error e -> failwith e)
    in
    exec
  in
  best_of ~setup (fun exec -> exec ())

let run_f3 ~scale =
  section "F3 (Figure 3): Op-Delta extraction overhead";
  let table_rows = 20_000 * scale in
  let header = "Txn size" :: List.map string_of_int txn_sizes in
  let rows =
    List.concat_map
      (fun kind ->
        let base = List.map (response_time ~table_rows ~capture:`None kind) txn_sizes in
        let cap = List.map (response_time ~table_rows ~capture:`Db_log kind) txn_sizes in
        let overhead =
          List.map2 (fun b c -> Printf.sprintf "%.1f%%" ((c -. b) /. b *. 100.0)) base cap
        in
        [ (op_name kind ^ " overhead") :: overhead ])
      [ Insert; Delete; Update ]
  in
  print_table ~title:"Figure 3: Op-Delta capture overhead (DB-table sink) vs txn size" ~header
    ~rows;
  print_endline
    "shape check (paper): insert ~66% avg (comparable to trigger); delete ~2.5% avg; update \
     ~3.7% avg"

let run_t4 ~scale =
  section "T4 (Table 4): response time - DB log vs file log";
  let table_rows = 20_000 * scale in
  let ms t = Printf.sprintf "%.1f" (t *. 1000.0) in
  let header =
    [ "Txn Size"; "Insert(DBLog)"; "Insert(FileLog)"; "Delete(DBLog)"; "Delete(FileLog)";
      "Update(DBLog)"; "Update(FileLog)" ]
  in
  let rows =
    List.map
      (fun size ->
        let cell kind capture = response_time ~table_rows ~capture kind size in
        [
          string_of_int size;
          ms (cell Insert `Db_log);
          ms (cell Insert `File_log);
          ms (cell Delete `Db_log);
          ms (cell Delete `File_log);
          ms (cell Update `Db_log);
          ms (cell Update `File_log);
        ])
      txn_sizes
  in
  print_table ~title:"Table 4: response time (ms) - DB log vs file log" ~header ~rows;
  print_endline
    "shape check (paper): FileLog <= DBLog everywhere; the gap is largest for inserts"

let run_v1 ~scale =
  section "V1 (Section 4.1): delta volume - Op-Delta vs value delta";
  let table_rows = 20_000 * scale in
  let header = [ "Op"; "Txn size"; "Op-Delta bytes"; "Value-delta bytes"; "ratio" ] in
  let rows = ref [] in
  List.iter
    (fun kind ->
      List.iter
        (fun size ->
          let db = fresh_source ~rows:table_rows () in
          let day = Db.current_day db + 1 in
          Db.set_day db day;
          let handle = Trigger_extract.install db ~table:"parts" in
          let cap = Opdelta_capture.create db ~sink:(Opdelta_capture.To_file "op.log") in
          (match Opdelta_capture.exec_txn cap (stmts_for ~table_rows kind size day) with
           | Ok _ -> ()
           | Error e -> failwith e);
          let value_delta = Trigger_extract.collect db handle in
          let op_bytes = Opdelta_capture.captured_bytes cap in
          let value_bytes = Delta.size_bytes value_delta in
          rows :=
            [
              op_name kind;
              string_of_int size;
              string_of_int op_bytes;
              string_of_int value_bytes;
              Printf.sprintf "%.1fx" (float_of_int value_bytes /. float_of_int (max 1 op_bytes));
            ]
            :: !rows)
        txn_sizes)
    [ Insert; Delete; Update ];
  print_table ~title:"Delta volume: Op-Delta vs value delta" ~header ~rows:(List.rev !rows);
  print_endline
    "shape check (paper): update/delete Op-Delta size independent of txn size; insert sizes \
     comparable between methods"
