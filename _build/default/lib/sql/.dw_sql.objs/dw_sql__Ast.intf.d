lib/sql/ast.mli: Dw_relation
