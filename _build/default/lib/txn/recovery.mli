(** Crash recovery: redo committed work, undo losers.

    Three passes over the retained log, in the classic style:

    + {b analysis} — find winners (transactions with a Commit record) and
      losers (Begin without Commit/Abort);
    + {b redo} — reapply every DML record of winning transactions, in LSN
      order, via {!Dw_storage.Heap_file.force_at} (idempotent full-record
      images);
    + {b undo} — reverse losers' DML records in reverse LSN order.

    Aborted transactions' records are skipped in redo and also undone
    (the engine applies changes eagerly, so an abort that didn't finish
    rolling back is completed here). *)

type stats = {
  records_scanned : int;
  winners : int;
  losers : int;
  redone : int;
  undone : int;
}

val run :
  wal:Wal.t ->
  resolve:(string -> Dw_storage.Heap_file.t option) ->
  stats
(** [resolve] maps a table name from the log to its heap file; records for
    unknown tables (dropped since) are skipped. *)

val pp_stats : Format.formatter -> stats -> unit
