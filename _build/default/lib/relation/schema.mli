(** Table schemas: ordered, named, typed columns.

    The first [key_arity] columns form the primary key (delta extraction,
    snapshot differentials and warehouse integration all identify rows by
    this key). *)

type column = {
  name : string;
  ty : Value.ty;
  nullable : bool;
}

type t

val make : ?key_arity:int -> column list -> t
(** [make cols] builds a schema.  Column names must be unique and
    non-empty; [key_arity] defaults to 1 and must be between 1 and the
    number of columns.  Raises [Invalid_argument] otherwise. *)

val columns : t -> column list
val arity : t -> int
val key_arity : t -> int

val column : t -> int -> column
(** Raises [Invalid_argument] if out of bounds. *)

val index_of : t -> string -> int
(** Position of the named column.  Raises [Not_found]. *)

val index_of_opt : t -> string -> int option
val mem : t -> string -> bool

val record_size : t -> int
(** Fixed on-disk byte width of a tuple (1 null-bitmap byte per 8 columns
    plus the sum of column widths). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val project : t -> string list -> t
(** [project t names] is the sub-schema with the given columns in the given
    order; key_arity resets to the full width of the projection.  Raises
    [Not_found] on an unknown name. *)
