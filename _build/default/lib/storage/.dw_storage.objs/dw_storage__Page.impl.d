lib/storage/page.ml: Bytes Char Printf
