module Vfs = Dw_storage.Vfs
module Metrics = Dw_util.Metrics

type lsn = int

type segment = {
  base : lsn;
  sname : string;
  mutable closed : bool;
}

type t = {
  vfs : Vfs.t;
  name : string;
  archive : bool;
  mutable segments : segment list;  (* oldest first; last is current *)
  mutable current : Vfs.file;
  mutable next : lsn;
  mutable last_checkpoint : lsn option;
}

let segment_name name base = Printf.sprintf "%s.%012d" name base

let parse_segment_name name fname =
  let prefix = name ^ "." in
  let pl = String.length prefix in
  (* only the fixed-width decimal suffixes [segment_name] writes are
     segments; [int_of_string_opt] alone would also accept 0x/0o/0b
     prefixes, sign characters and '_' separators, adopting stray files
     like "wal.0x01" on re-open *)
  let sl = String.length fname - pl in
  if sl >= 12 && String.sub fname 0 pl = prefix then begin
    let suffix = String.sub fname pl sl in
    if String.for_all (fun c -> c >= '0' && c <= '9') suffix then int_of_string_opt suffix
    else None
  end
  else None

(* Scan a segment file for its valid record prefix and truncate anything
   after it.  A crash can tear the last append; if the garbage tail were
   left in place, later appends would land after it and be unreachable to
   iteration (which stops at the first undecodable record).  Truncating on
   re-open restores the invariant that a segment is a clean prefix of
   records.  Returns the valid length. *)
let truncate_torn_tail vfs file =
  let len = Vfs.size file in
  let data = if len = 0 then Bytes.create 0 else Vfs.read_at file ~off:0 ~len in
  let rec go off =
    if off >= len then off
    else match Log_record.decode data ~off with Ok (_, next) -> go next | Error _ -> off
  in
  let valid = go 0 in
  if valid < len then begin
    Vfs.truncate file valid;
    Metrics.incr (Vfs.metrics vfs) "wal.torn_segments";
    Metrics.add (Vfs.metrics vfs) "wal.torn_bytes" (len - valid)
  end;
  valid

let create vfs ~name ~archive =
  (* adopt any segments already present (re-open after crash) *)
  let existing =
    Vfs.list_files vfs
    |> List.filter_map (fun f ->
           match parse_segment_name name f with Some base -> Some (base, f) | None -> None)
    |> List.sort compare
  in
  match existing with
  | [] ->
    let sname = segment_name name 0 in
    let current = Vfs.create vfs sname in
    {
      vfs;
      name;
      archive;
      segments = [ { base = 0; sname; closed = false } ];
      current;
      next = 0;
      last_checkpoint = None;
    }
  | segs ->
    let segments =
      List.map (fun (base, sname) -> { base; sname; closed = true }) segs
    in
    (* every adopted segment may carry a torn tail from the crash that
       orphaned it; truncate each one back to its last whole record *)
    List.iter
      (fun seg ->
        let file = Vfs.open_existing vfs seg.sname in
        ignore (truncate_torn_tail vfs file : int);
        Vfs.close file)
      segments;
    let last = List.nth segments (List.length segments - 1) in
    last.closed <- false;
    let current = Vfs.open_existing vfs last.sname in
    {
      vfs;
      name;
      archive;
      segments;
      current;
      next = last.base + Vfs.size current;
      last_checkpoint = None;
    }

let archive_enabled t = t.archive
let metrics t = Vfs.metrics t.vfs
let next_lsn t = t.next
let last_checkpoint t = t.last_checkpoint

let append t record =
  let lsn = t.next in
  let data = Log_record.encode record in
  Metrics.time (Vfs.metrics t.vfs) "wal.append" (fun () ->
      ignore (Vfs.append t.current data : int));
  t.next <- lsn + Bytes.length data;
  lsn

let flush t = Metrics.time (Vfs.metrics t.vfs) "wal.fsync" (fun () -> Vfs.fsync t.current)

let rotate t =
  Vfs.fsync t.current;
  Vfs.close t.current;
  (match t.segments with
   | [] -> assert false
   | segs ->
     let last = List.nth segs (List.length segs - 1) in
     last.closed <- true);
  let sname = segment_name t.name t.next in
  let current = Vfs.create t.vfs sname in
  t.segments <- t.segments @ [ { base = t.next; sname; closed = false } ];
  t.current <- current

let checkpoint t ~active =
  let lsn = append t { Log_record.tx = 0; body = Log_record.Checkpoint active } in
  flush t;
  rotate t;
  t.last_checkpoint <- Some lsn;
  if not t.archive then begin
    (* recycling policy: delete every closed segment except the one holding
       the checkpoint record itself (recovery needs the checkpoint) *)
    let holds_ckpt seg next_base = seg.base <= lsn && lsn < next_base in
    let rec bases = function
      | [] -> []
      | [ seg ] -> [ (seg, max_int) ]
      | a :: (b :: _ as rest) -> (a, b.base) :: bases rest
    in
    let annotated = bases t.segments in
    let to_delete =
      List.filter
        (fun (seg, next_base) -> seg.closed && not (holds_ckpt seg next_base))
        annotated
      |> List.map fst
    in
    List.iter (fun seg -> Vfs.delete t.vfs seg.sname) to_delete;
    t.segments <- List.filter (fun seg -> not (List.memq seg to_delete)) t.segments
  end;
  lsn

let iter_segment t seg ~from f =
  let file =
    if seg.closed then Vfs.open_existing t.vfs seg.sname
    else t.current
  in
  let len = Vfs.size file in
  let data = if len = 0 then Bytes.create 0 else Vfs.read_at file ~off:0 ~len in
  let rec go off =
    if off < len then
      match Log_record.decode data ~off with
      | Ok (record, next_off) ->
        let lsn = seg.base + off in
        if lsn >= from then f lsn record;
        go next_off
      | Error _ -> ()  (* torn tail: stop *)
  in
  go 0;
  if seg.closed then Vfs.close file

let iter_from t from f = List.iter (fun seg -> iter_segment t seg ~from f) t.segments
let iter_all t f = iter_from t 0 f

let archived_segments t =
  t.segments |> List.filter (fun seg -> seg.closed) |> List.map (fun seg -> seg.sname)

let prune_archived t ~upto =
  (* a closed segment ends where the next one begins *)
  let rec annotate = function
    | [] -> []
    | [ seg ] -> [ (seg, max_int) ]
    | a :: (b :: _ as rest) -> (a, b.base) :: annotate rest
  in
  let deletable =
    annotate t.segments
    |> List.filter (fun (seg, next_base) -> seg.closed && next_base <= upto)
    |> List.map fst
  in
  List.iter (fun seg -> Vfs.delete t.vfs seg.sname) deletable;
  t.segments <- List.filter (fun seg -> not (List.memq seg deletable)) t.segments;
  List.length deletable

let segment_bytes t =
  List.fold_left
    (fun acc seg ->
      if seg.closed then
        let file = Vfs.open_existing t.vfs seg.sname in
        let n = Vfs.size file in
        Vfs.close file;
        acc + n
      else acc + Vfs.size t.current)
    0 t.segments
