type t =
  | Data of string
  | Wm_low of { run : string; chunk : int; nonce : int }
  | Wm_high of { run : string; chunk : int; nonce : int }

(* "d:" + raw payload keeps Data round-trips byte-exact whatever the
   delta encoding contains; watermark brackets are '|'-separated (run
   ids are Prng alpha strings, so '|' cannot appear in them) *)
let encode = function
  | Data payload -> "d:" ^ payload
  | Wm_low { run; chunk; nonce } -> Printf.sprintf "wl|%s|%d|%d" run chunk nonce
  | Wm_high { run; chunk; nonce } -> Printf.sprintf "wh|%s|%d|%d" run chunk nonce

let decode_bracket tag line =
  match String.split_on_char '|' line with
  | [ _; run; chunk; nonce ] when not (String.equal run "") -> (
    match (int_of_string_opt chunk, int_of_string_opt nonce) with
    | Some chunk, Some nonce ->
      if String.equal tag "wl" then Ok (Wm_low { run; chunk; nonce })
      else Ok (Wm_high { run; chunk; nonce })
    | _ -> Error (Printf.sprintf "Frame.decode: bad %s fields in %S" tag line))
  | _ -> Error (Printf.sprintf "Frame.decode: bad %s frame %S" tag line)

let decode line =
  let n = String.length line in
  if n >= 2 && String.sub line 0 2 = "d:" then Ok (Data (String.sub line 2 (n - 2)))
  else if n >= 3 && String.sub line 0 3 = "wl|" then decode_bracket "wl" line
  else if n >= 3 && String.sub line 0 3 = "wh|" then decode_bracket "wh" line
  else Error (Printf.sprintf "Frame.decode: unknown tag in %S" line)
