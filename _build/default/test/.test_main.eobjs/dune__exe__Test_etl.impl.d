test/test_etl.ml: Alcotest Array Dw_core Dw_engine Dw_etl Dw_relation Dw_storage Dw_util Dw_warehouse Dw_workload List Option
