(* Tests for Dw_util: PRNG determinism, metrics, clock, formatting. *)

module Prng = Dw_util.Prng
module Metrics = Dw_util.Metrics
module Sim_clock = Dw_util.Sim_clock
module Fmt_util = Dw_util.Fmt_util

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let prng_deterministic () =
  let a = Prng.create ~seed:42 in
  let b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.int64 a) (Prng.int64 b)
  done

let prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 in
  let b = Prng.create ~seed:2 in
  check Alcotest.bool "different streams" true (Prng.int64 a <> Prng.int64 b)

let prng_bounds () =
  let g = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.int g 17 in
    check Alcotest.bool "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Prng.int_in g 5 9 in
    check Alcotest.bool "in closed range" true (v >= 5 && v <= 9)
  done

let prng_split_independent () =
  let parent = Prng.create ~seed:3 in
  let child = Prng.split parent in
  (* child and parent produce different streams from here *)
  check Alcotest.bool "independent" true (Prng.int64 parent <> Prng.int64 child)

let prng_float_range () =
  let g = Prng.create ~seed:11 in
  for _ = 1 to 1000 do
    let f = Prng.float g 2.5 in
    check Alcotest.bool "float range" true (f >= 0.0 && f < 2.5)
  done

let prng_shuffle_permutation () =
  let g = Prng.create ~seed:5 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "is permutation" (Array.init 50 Fun.id) sorted

let prng_alpha_string () =
  let g = Prng.create ~seed:9 in
  let s = Prng.alpha_string g 64 in
  check Alcotest.int "length" 64 (String.length s);
  String.iter (fun c -> check Alcotest.bool "lowercase" true (c >= 'a' && c <= 'z')) s

let metrics_basic () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.add m "a" 4;
  Metrics.add m "b" 10;
  check Alcotest.int "a" 5 (Metrics.get m "a");
  check Alcotest.int "b" 10 (Metrics.get m "b");
  check Alcotest.int "absent" 0 (Metrics.get m "zzz")

let metrics_snapshot_diff () =
  let m = Metrics.create () in
  Metrics.add m "x" 3;
  let before = Metrics.snapshot m in
  Metrics.add m "x" 2;
  Metrics.add m "y" 7;
  let after = Metrics.snapshot m in
  let d = Metrics.diff ~before ~after in
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "diff"
    [ ("x", 2); ("y", 7) ] d

let metrics_reset () =
  let m = Metrics.create () in
  Metrics.add m "x" 3;
  Metrics.reset m;
  check Alcotest.int "reset" 0 (Metrics.get m "x")

let clock_basic () =
  let c = Sim_clock.create () in
  check Alcotest.int "t0" 0 (Sim_clock.now c);
  Sim_clock.advance c 5;
  Sim_clock.advance c 3;
  check Alcotest.int "t8" 8 (Sim_clock.now c)

let clock_spans () =
  let c = Sim_clock.create () in
  let r = Sim_clock.Span_recorder.create c in
  Sim_clock.advance c 10;
  Sim_clock.Span_recorder.open_span r;
  Sim_clock.advance c 4;
  Sim_clock.Span_recorder.close_span r;
  Sim_clock.advance c 100;
  Sim_clock.Span_recorder.open_span r;
  Sim_clock.advance c 6;
  Sim_clock.Span_recorder.close_span r;
  check Alcotest.int "total" 10 (Sim_clock.Span_recorder.total r);
  check Alcotest.int "count" 2 (Sim_clock.Span_recorder.count r)

let clock_open_span_counts () =
  let c = Sim_clock.create () in
  let r = Sim_clock.Span_recorder.create c in
  Sim_clock.Span_recorder.open_span r;
  Sim_clock.advance c 3;
  check Alcotest.int "open span total" 3 (Sim_clock.Span_recorder.total r);
  (* double open is a no-op *)
  Sim_clock.Span_recorder.open_span r;
  Sim_clock.advance c 2;
  Sim_clock.Span_recorder.close_span r;
  check Alcotest.int "total after close" 5 (Sim_clock.Span_recorder.total r)

let human_bytes () =
  check Alcotest.string "b" "100B" (Fmt_util.human_bytes 100);
  check Alcotest.string "kb" "1.5KB" (Fmt_util.human_bytes 1536);
  check Alcotest.string "mb" "2MB" (Fmt_util.human_bytes (2 * 1024 * 1024))

let human_duration () =
  check Alcotest.string "ms" "250ms" (Fmt_util.human_duration 0.25);
  check Alcotest.string "s" "2.50s" (Fmt_util.human_duration 2.5);
  check Alcotest.string "min" "2min 5s" (Fmt_util.human_duration 125.0);
  check Alcotest.string "hr" "1hr 8min" (Fmt_util.human_duration 4080.0)

let table_render () =
  let s = Fmt_util.table ~header:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ] in
  let lines = String.split_on_char '\n' s in
  check Alcotest.int "line count" 4 (List.length lines);
  List.iter
    (fun line -> check Alcotest.bool "aligned" true (String.length line >= 6))
    lines

let suite =
  [
    test "prng deterministic" prng_deterministic;
    test "prng seed sensitivity" prng_seed_sensitivity;
    test "prng bounds" prng_bounds;
    test "prng split independent" prng_split_independent;
    test "prng float range" prng_float_range;
    test "prng shuffle permutation" prng_shuffle_permutation;
    test "prng alpha string" prng_alpha_string;
    test "metrics basic" metrics_basic;
    test "metrics snapshot diff" metrics_snapshot_diff;
    test "metrics reset" metrics_reset;
    test "clock basic" clock_basic;
    test "clock spans" clock_spans;
    test "clock open span counts" clock_open_span_counts;
    test "human bytes" human_bytes;
    test "human duration" human_duration;
    test "table render" table_render;
  ]
