lib/txn/lock_manager.ml: Dw_storage Hashtbl List
