module Metrics = Dw_util.Metrics

type frame = {
  mutable key : string * int;  (* file name, page number *)
  data : bytes;
  mutable dirty : bool;
  mutable last_used : int;  (* LRU stamp *)
  mutable valid : bool;
  mutable file : Vfs.file option;
}

type t = {
  vfs : Vfs.t;
  frames : frame array;
  table : (string * int, int) Hashtbl.t;  (* key -> frame index *)
  mutable tick : int;
}

let create ~vfs ~capacity =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity < 1";
  {
    vfs;
    frames =
      Array.init capacity (fun _ ->
          { key = ("", -1); data = Bytes.create Page.size; dirty = false; last_used = 0;
            valid = false; file = None });
    table = Hashtbl.create (capacity * 2);
    tick = 0;
  }

let vfs t = t.vfs

let page_count _t file = Vfs.size file / Page.size

let metrics t = Vfs.metrics t.vfs

let write_back t frame =
  match frame.file with
  | Some file when frame.dirty ->
    let _, pno = frame.key in
    Vfs.write_at file ~off:(pno * Page.size) frame.data;
    frame.dirty <- false;
    Metrics.incr (metrics t) "pool.writebacks"
  | Some _ | None -> ()

let victim t =
  (* least-recently-used valid or any invalid frame *)
  let best = ref 0 in
  let best_score = ref max_int in
  Array.iteri
    (fun i f ->
      let score = if f.valid then f.last_used else -1 in
      if score < !best_score then begin
        best := i;
        best_score := score
      end)
    t.frames;
  !best

let touch t frame =
  t.tick <- t.tick + 1;
  frame.last_used <- t.tick

let load t file pno =
  let key = (Vfs.name file, pno) in
  match Hashtbl.find_opt t.table key with
  | Some idx ->
    Metrics.incr (metrics t) "pool.hits";
    let frame = t.frames.(idx) in
    touch t frame;
    frame
  | None ->
    Metrics.incr (metrics t) "pool.misses";
    let idx = victim t in
    let frame = t.frames.(idx) in
    if frame.valid then begin
      write_back t frame;
      Hashtbl.remove t.table frame.key;
      Metrics.incr (metrics t) "pool.evictions"
    end;
    let data = Vfs.read_at file ~off:(pno * Page.size) ~len:Page.size in
    Bytes.blit data 0 frame.data 0 Page.size;
    frame.key <- key;
    frame.valid <- true;
    frame.dirty <- false;
    frame.file <- Some file;
    Hashtbl.replace t.table key idx;
    touch t frame;
    frame

let with_page t file pno ~dirty f =
  if pno < 0 || pno >= page_count t file then
    invalid_arg
      (Printf.sprintf "Buffer_pool.with_page: page %d outside file %s (%d pages)" pno
         (Vfs.name file) (page_count t file));
  let frame = load t file pno in
  if dirty then frame.dirty <- true;
  f frame.data

let append_page t file init =
  let pno = page_count t file in
  (* materialise the page on disk so page_count stays consistent *)
  Vfs.write_at file ~off:(pno * Page.size) (Bytes.make Page.size '\000');
  let frame = load t file pno in
  frame.dirty <- true;
  init frame.data;
  pno

let flush_file t file =
  let fname = Vfs.name file in
  Array.iter
    (fun frame ->
      if frame.valid && fst frame.key = fname then write_back t frame)
    t.frames

let flush_all t = Array.iter (fun frame -> if frame.valid then write_back t frame) t.frames

let invalidate_file t file =
  let fname = Vfs.name file in
  Array.iter
    (fun frame ->
      if frame.valid && fst frame.key = fname then begin
        Hashtbl.remove t.table frame.key;
        frame.valid <- false;
        frame.dirty <- false;
        frame.file <- None
      end)
    t.frames
