module Partition = Dw_warehouse.Partition
module Op_delta = Dw_core.Op_delta
module Ast = Dw_sql.Ast
module Expr = Dw_relation.Expr
module Value = Dw_relation.Value

type route =
  | To of int
  | All

(* conservative key bounds from a WHERE clause: conjunctions of
   comparisons between the partition-key column and integer literals
   (the same shape the engine's index planner recognises); anything it
   cannot see keeps the bounds open and the statement broadcasts *)
let key_bounds ~key where =
  let lo = ref None and hi = ref None in
  let set_lo v = lo := (match !lo with None -> Some v | Some x -> Some (max x v)) in
  let set_hi v = hi := (match !hi with None -> Some v | Some x -> Some (min x v)) in
  let int_of = function Value.Int n | Value.Date n -> Some n | _ -> None in
  let rec go e =
    match e with
    | Expr.And (a, b) ->
      go a;
      go b
    | Expr.Cmp (op, Expr.Col c, Expr.Lit v) when c = key -> (
        match int_of v with
        | None -> ()
        | Some n -> (
            match op with
            | Expr.Eq ->
              set_lo n;
              set_hi n
            | Expr.Ge -> set_lo n
            | Expr.Gt -> set_lo (n + 1)
            | Expr.Le -> set_hi n
            | Expr.Lt -> set_hi (n - 1)
            | Expr.Neq -> ()))
    | Expr.Cmp (op, Expr.Lit v, Expr.Col c) when c = key -> (
        match int_of v with
        | None -> ()
        | Some n -> (
            match op with
            | Expr.Eq ->
              set_lo n;
              set_hi n
            | Expr.Le -> set_lo n
            | Expr.Lt -> set_lo (n + 1)
            | Expr.Ge -> set_hi n
            | Expr.Gt -> set_hi (n - 1)
            | Expr.Neq -> ()))
    | Expr.Cmp _ | Expr.Or _ | Expr.Not _ | Expr.Is_null _ | Expr.Is_not_null _
    | Expr.Col _ | Expr.Lit _ | Expr.Binop _ ->
      ()
  in
  Option.iter go where;
  (!lo, !hi)

(* a bounded key interval confines the statement to one partition when
   both endpoints land there AND routing is monotonic over the interval:
   always for Range (contiguous key runs map to contiguous partitions),
   only for a point interval under Hash *)
let route_bounds spec = function
  | Some lo, Some hi when lo = hi -> To (Partition.route_key spec lo)
  | Some lo, Some hi -> (
      match Partition.method_ spec with
      | Partition.Range _ ->
        let pl = Partition.route_key spec lo and ph = Partition.route_key spec hi in
        if pl = ph then To pl else All
      | Partition.Hash _ -> All)
  | _ -> All

let key_value ~table v =
  match v with
  | Value.Int k | Value.Date k -> k
  | _ ->
    invalid_arg
      (Printf.sprintf "Stage: non-integer partition key %s in INSERT into %s"
         (Value.to_string v) table)

(* index of the partition key inside an INSERT's value lists: explicit
   column lists are searched; a schema-order insert relies on the fact
   table's leading key column being the partition key, which
   Partitioned.add_replica enforces *)
let insert_key_index ~spec ~table columns =
  match columns with
  | None -> 0
  | Some cols -> (
      let key = Partition.key_column spec in
      let rec find i = function
        | [] ->
          invalid_arg
            (Printf.sprintf "Stage: INSERT into %s omits partition key %s" table key)
        | c :: rest -> if String.equal c key then i else find (i + 1) rest
      in
      find 0 cols)

let insert_row_route ~spec ~table ~key_idx row =
  match List.nth_opt row key_idx with
  | Some v -> Partition.route_key spec (key_value ~table v)
  | None -> invalid_arg (Printf.sprintf "Stage: INSERT row into %s too short" table)

let reject_key_update ~spec ~table sets =
  let key = Partition.key_column spec in
  if List.exists (fun (c, (_ : Expr.t)) -> String.equal c key) sets then
    invalid_arg
      (Printf.sprintf
         "Stage: UPDATE %s assigns partition key %s (rows would migrate shards; capture \
          such changes as DELETE + INSERT)"
         table key)

let route_stmt ~spec stmt =
  let fact = Partition.table spec in
  let table = Ast.table_of stmt in
  if not (String.equal table fact) then All
  else
    match stmt with
    | Ast.Insert { columns; rows; _ } -> (
        let key_idx = insert_key_index ~spec ~table columns in
        match rows with
        | [] -> All
        | row :: _ -> To (insert_row_route ~spec ~table ~key_idx row))
    | Ast.Update { sets; where; _ } ->
      reject_key_update ~spec ~table sets;
      route_bounds spec (key_bounds ~key:(Partition.key_column spec) where)
    | Ast.Delete { where; _ } ->
      route_bounds spec (key_bounds ~key:(Partition.key_column spec) where)
    | Ast.Select _ | Ast.Create_table _ -> All

type stats = {
  txns : int;
  statements : int;
  routed : int;
  broadcast : int;
  split_rows : int;
}

let split ~spec ods =
  let n = Partition.partitions spec in
  let fact = Partition.table spec in
  let buckets = Array.make n [] in
  let statements = ref 0 and routed = ref 0 and broadcast = ref 0 and split_rows = ref 0 in
  List.iter
    (fun (od : Op_delta.t) ->
      let per_part = Array.make n [] in
      let emit p op = per_part.(p) <- op :: per_part.(p) in
      let emit_all op =
        incr broadcast;
        for p = 0 to n - 1 do
          emit p op
        done
      in
      List.iter
        (fun (op : Op_delta.op) ->
          incr statements;
          let stmt = op.Op_delta.stmt in
          match stmt with
          | Ast.Insert { table; columns; rows } when String.equal table fact ->
            (* decompose row-wise: each inserted row goes only to the
               shard owning its key *)
            let key_idx = insert_key_index ~spec ~table columns in
            let row_buckets = Array.make n [] in
            List.iter
              (fun row ->
                let p = insert_row_route ~spec ~table ~key_idx row in
                row_buckets.(p) <- row :: row_buckets.(p))
              rows;
            split_rows := !split_rows + List.length rows;
            incr routed;
            Array.iteri
              (fun p rws ->
                if rws <> [] then
                  emit p
                    {
                      Op_delta.stmt =
                        Ast.Insert { table; columns; rows = List.rev rws };
                      before_images = [];
                    })
              row_buckets
          | _ -> (
              match route_stmt ~spec stmt with
              | To p ->
                incr routed;
                emit p op
              | All -> emit_all op))
        od.Op_delta.ops;
      Array.iteri
        (fun p ops ->
          if ops <> [] then
            buckets.(p) <-
              { Op_delta.txn_id = od.Op_delta.txn_id; ops = List.rev ops } :: buckets.(p))
        per_part)
    ods;
  ( Array.map List.rev buckets,
    {
      txns = List.length ods;
      statements = !statements;
      routed = !routed;
      broadcast = !broadcast;
      split_rows = !split_rows;
    } )
