(* Experiment R1 — paper Sections 2.2/4.1: extracting deltas from a
   replicated, heterogeneous multi-source enterprise.

   Expected shape: the value-delta path pays k-fold extraction plus a
   reconciliation pass and ships k-fold bytes before reconciliation; the
   Op-Delta wrapper captures each business transaction once, with no
   reconciliation step at all. *)

module Workload = Dw_workload.Workload
module Delta = Dw_core.Delta
module Op_delta = Dw_core.Op_delta
module Reconcile = Dw_core.Reconcile
module Enterprise = Dw_cots.Enterprise
module Prng = Dw_util.Prng
open Bench_support

let run ~scale =
  section "R1: replicated sources - value-delta reconciliation vs Op-Delta";
  let sources = 3 in
  let seed_rows = 200 * scale in
  let txns = 100 * scale in
  let ent =
    Enterprise.create ~sources ~logical_table:"parts"
      ~logical_schema:Workload.parts_schema ()
  in
  (match Enterprise.submit ent (Workload.insert_parts_txn ~first_id:1 ~size:seed_rows ~day:0 ())
   with
   | Ok () -> ()
   | Error e -> failwith e);
  let rng = Prng.create ~seed:17 in
  let ops = Workload.gen_mix rng ~existing_ids:seed_rows ~txns ~max_txn_size:10 in
  let t_business =
    time_only (fun () ->
        List.iter
          (fun op ->
            match Enterprise.submit ent (Workload.op_to_stmts ~day:0 op) with
            | Ok () -> ()
            | Error e -> failwith e)
          ops)
  in
  (* value-delta path: k trigger extractions + inverse transform + reconcile *)
  let streams, t_extract = time (fun () -> Enterprise.extract_replica_value_deltas ent) in
  let (reconciled, rstats), t_reconcile = time (fun () -> Reconcile.reconcile streams) in
  let value_bytes = List.fold_left (fun acc d -> acc + Delta.size_bytes d) 0 streams in
  (* op-delta path: already captured by the wrapper during the business txns *)
  let ods = Enterprise.business_op_deltas ent in
  let op_bytes = List.fold_left (fun acc od -> acc + Op_delta.size_bytes od) 0 ods in
  print_table ~title:(Printf.sprintf "%d business txns over %d replicated sources" (txns + 1) sources)
    ~header:[ "Path"; "streams"; "bytes before reconcile"; "authoritative bytes"; "extra time" ]
    ~rows:
      [
        [
          "value delta (trigger/replica)";
          string_of_int (List.length streams);
          string_of_int value_bytes;
          string_of_int (Delta.size_bytes reconciled);
          Printf.sprintf "extract %s + reconcile %s" (dur t_extract) (dur t_reconcile);
        ];
        [
          "Op-Delta (business wrapper)";
          "1";
          string_of_int op_bytes;
          string_of_int op_bytes;
          "none (captured in-line)";
        ];
      ];
  Printf.printf
    "reconciliation dropped %d duplicate changes (%d conflicts resolved by priority); business \
     txn stream took %s with wrapper capture enabled\n"
    rstats.Reconcile.duplicates_dropped rstats.Reconcile.conflicts_resolved (dur t_business);
  Printf.printf "shape check (paper): value path ships ~%dx the authoritative volume; Op-Delta needs no reconciliation\n"
    sources
