(* Tests for Dw_sql: lexer, parser, printer, including the qcheck
   print-parse round-trip property over generated statements. *)

module Lexer = Dw_sql.Lexer
module Parser = Dw_sql.Parser
module Printer = Dw_sql.Printer
module Ast = Dw_sql.Ast
module Expr = Dw_relation.Expr
module Value = Dw_relation.Value

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let parse_ok input =
  match Parser.parse input with
  | Ok stmt -> stmt
  | Error e -> Alcotest.failf "parse %S failed: %s" input e

(* ---------- lexer ---------- *)

let lexer_basics () =
  match Lexer.tokenize "SELECT * FROM parts WHERE qty >= 10.5 AND name = 'o''brien'" with
  | Error e -> Alcotest.fail e
  | Ok tokens ->
    check Alcotest.int "token count" 13 (List.length tokens);
    check Alcotest.bool "string unescaped" true
      (List.exists (function Lexer.STRING "o'brien" -> true | _ -> false) tokens)

let lexer_case_insensitive_keywords () =
  match Lexer.tokenize "select From wHeRe" with
  | Ok [ Lexer.KW "SELECT"; Lexer.KW "FROM"; Lexer.KW "WHERE"; Lexer.EOF ] -> ()
  | Ok _ -> Alcotest.fail "unexpected tokens"
  | Error e -> Alcotest.fail e

let lexer_errors () =
  check Alcotest.bool "unterminated string" true (Result.is_error (Lexer.tokenize "'abc"));
  check Alcotest.bool "bad char" true (Result.is_error (Lexer.tokenize "a @ b"))

let lexer_numbers () =
  match Lexer.tokenize "1 2.5 3e2 1.5e-3" with
  | Ok [ Lexer.INT 1; Lexer.FLOAT 2.5; Lexer.INT 3; Lexer.IDENT "e2"; Lexer.FLOAT f; Lexer.EOF ]
    ->
    (* 3e2 without decimal point lexes as INT 3 then ident; 1.5e-3 is a float *)
    check (Alcotest.float 1e-9) "sci float" 0.0015 f
  | Ok toks ->
    Alcotest.failf "unexpected: %s" (String.concat " " (List.map Lexer.token_to_string toks))
  | Error e -> Alcotest.fail e

(* ---------- parser ---------- *)

let parse_select () =
  match parse_ok "SELECT * FROM parts WHERE last_modified > DATE 10930" with
  | Ast.Select { items = [ Ast.Star ]; table = "parts"; where = Some w; order_by = []; group_by = [] } ->
    check Alcotest.string "where" "last_modified > DATE 10930" (Expr.to_string w)
  | _ -> Alcotest.fail "wrong shape"

let parse_select_items () =
  match parse_ok "SELECT a, b + 1 AS c FROM t ORDER BY a, b" with
  | Ast.Select { items = [ Ast.Item (Expr.Col "a", None); Ast.Item (_, Some "c") ];
                 order_by = [ "a"; "b" ]; _ } ->
    ()
  | _ -> Alcotest.fail "wrong shape"

let parse_insert () =
  match parse_ok "INSERT INTO parts (id, name) VALUES (1, 'bolt'), (2, NULL)" with
  | Ast.Insert { table = "parts"; columns = Some [ "id"; "name" ]; rows = [ r1; r2 ] } ->
    check Alcotest.bool "row1" true (r1 = [ Value.Int 1; Value.Str "bolt" ]);
    check Alcotest.bool "row2 null" true (List.nth r2 1 = Value.Null)
  | _ -> Alcotest.fail "wrong shape"

let parse_update () =
  match parse_ok "UPDATE parts SET status = 'revised', qty = qty - 1 WHERE qty > 0" with
  | Ast.Update { table = "parts"; sets = [ ("status", _); ("qty", _) ]; where = Some _ } -> ()
  | _ -> Alcotest.fail "wrong shape"

let parse_delete () =
  match parse_ok "DELETE FROM parts WHERE id = 7;" with
  | Ast.Delete { table = "parts"; where = Some _ } -> ()
  | _ -> Alcotest.fail "wrong shape"

let parse_create () =
  match
    parse_ok
      "CREATE TABLE parts (id INT NOT NULL KEY, name STRING(40), price FLOAT, added DATE NOT NULL)"
  with
  | Ast.Create_table { table = "parts"; columns = [ c1; c2; _; c4 ] } ->
    check Alcotest.bool "c1 key" true c1.Ast.col_key;
    check Alcotest.bool "c1 not null" false c1.Ast.col_nullable;
    check Alcotest.bool "c2 type" true (c2.Ast.col_ty = Value.Tstring 40);
    check Alcotest.bool "c4 date" true (c4.Ast.col_ty = Value.Tdate)
  | _ -> Alcotest.fail "wrong shape"

let parse_precedence () =
  match Parser.parse_expr "a + b * c = d AND NOT e < f OR g = h" with
  | Ok e ->
    check Alcotest.string "normalised" "a + b * c = d AND NOT e < f OR g = h"
      (Expr.to_string e)
  | Error e -> Alcotest.fail e

let parse_errors () =
  List.iter
    (fun input ->
      check Alcotest.bool (Printf.sprintf "reject %S" input) true
        (Result.is_error (Parser.parse input)))
    [
      "SELECT";
      "SELECT * FROM";
      "INSERT INTO t VALUES";
      "UPDATE t SET";
      "DELETE t WHERE x = 1";
      "CREATE TABLE t ()";
      "SELECT * FROM t WHERE";
      "SELECT * FROM t extra";
      "INSERT INTO t VALUES (1,)";
    ]

let parse_aggregates () =
  match
    parse_ok
      "SELECT qty, COUNT(*) AS n, SUM(price), AVG(price), MIN(part_id), MAX(part_id) FROM \
       parts WHERE qty > 0 GROUP BY qty ORDER BY qty"
  with
  | Ast.Select
      { items =
          [ Ast.Item (Expr.Col "qty", None); Ast.Agg (Ast.Count_star, None, Some "n");
            Ast.Agg (Ast.Sum, Some _, None); Ast.Agg (Ast.Avg, Some _, None);
            Ast.Agg (Ast.Min, Some _, None); Ast.Agg (Ast.Max, Some _, None) ];
        group_by = [ "qty" ]; order_by = [ "qty" ]; _ } ->
    ()
  | _ -> Alcotest.fail "wrong aggregate shape"

let parse_count_expr () =
  match parse_ok "SELECT COUNT(descr) FROM parts" with
  | Ast.Select { items = [ Ast.Agg (Ast.Count, Some (Expr.Col "descr"), None) ]; _ } -> ()
  | _ -> Alcotest.fail "wrong shape"

let aggregate_roundtrip () =
  List.iter
    (fun input ->
      let s1 = parse_ok input in
      let printed = Printer.to_string s1 in
      let s2 = parse_ok printed in
      check Alcotest.bool (Printf.sprintf "roundtrip %S -> %S" input printed) true
        (Ast.equal s1 s2))
    [
      "SELECT COUNT(*) FROM t";
      "SELECT a, SUM(b) AS total FROM t GROUP BY a";
      "SELECT a, b, MIN(c), MAX(c) FROM t WHERE c > 0 GROUP BY a, b ORDER BY a";
      "SELECT AVG(x + y) FROM t";
      "SELECT COUNT(descr) FROM t GROUP BY k";
    ]

(* the paper's running example: an Op-Delta is ~70 bytes *)
let opdelta_size_example () =
  let stmt = parse_ok "UPDATE PARTS SET status = 'revised' WHERE last_modified > DATE 10910" in
  let n = Printer.size_bytes stmt in
  check Alcotest.bool "about 70 bytes" true (n >= 50 && n <= 90)

(* ---------- printer round-trip ---------- *)

let roundtrip_cases =
  [
    "SELECT * FROM parts";
    "SELECT a, b AS c FROM t WHERE x = 1 ORDER BY a";
    "SELECT a + b * 2 FROM t WHERE NOT (x = 1 OR y = 2) AND z IS NOT NULL";
    "INSERT INTO t VALUES (1, 'a', TRUE, NULL, DATE 100)";
    "INSERT INTO t (x, y) VALUES (-5, 2.5)";
    "UPDATE t SET a = a + 1, b = 'x''y' WHERE a < 10";
    "DELETE FROM t WHERE a IS NULL";
    "CREATE TABLE t (id INT NOT NULL KEY, v STRING(10))";
  ]

let printer_roundtrip () =
  List.iter
    (fun input ->
      let s1 = parse_ok input in
      let printed = Printer.to_string s1 in
      let s2 = parse_ok printed in
      check Alcotest.bool (Printf.sprintf "roundtrip %S -> %S" input printed) true
        (Ast.equal s1 s2))
    roundtrip_cases

(* qcheck: generated statements survive print-parse *)

let gen_ident =
  (* avoid generating keywords: the dialect has no identifier quoting *)
  QCheck2.Gen.(
    map2
      (fun c s ->
        let word = Printf.sprintf "%c%s" c s in
        if List.mem (String.uppercase_ascii word) Lexer.keywords then word ^ "_" else word)
      (char_range 'a' 'z')
      (string_size ~gen:(char_range 'a' 'z') (int_range 0 6)))

let gen_literal =
  QCheck2.Gen.(
    oneof
      [
        map (fun n -> Value.Int n) (int_range (-1000) 1000);
        map (fun f -> Value.Float (float_of_int f /. 4.0)) (int_range (-100) 100);
        map (fun s -> Value.Str s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 8));
        map (fun b -> Value.Bool b) bool;
        map (fun d -> Value.Date d) (int_range 0 20000);
        return Value.Null;
      ])

let rec gen_expr_sized n =
  let open QCheck2.Gen in
  if n <= 0 then oneof [ map (fun c -> Expr.Col c) gen_ident; map (fun v -> Expr.Lit v) gen_literal ]
  else
    let sub = gen_expr_sized (n / 2) in
    frequency
      [
        (2, map (fun c -> Expr.Col c) gen_ident);
        (2, map (fun v -> Expr.Lit v) gen_literal);
        (2, map2 (fun a b -> Expr.Binop (Expr.Add, a, b)) sub sub);
        (1, map2 (fun a b -> Expr.Binop (Expr.Mul, a, b)) sub sub);
        (2, map2 (fun a b -> Expr.Cmp (Expr.Le, a, b)) sub sub);
        (2, map2 (fun a b -> Expr.And (a, b)) sub sub);
        (2, map2 (fun a b -> Expr.Or (a, b)) sub sub);
        (1, map (fun a -> Expr.Not a) sub);
        (1, map (fun a -> Expr.Is_null a) sub);
      ]

let gen_stmt =
  let open QCheck2.Gen in
  let gen_expr = int_range 0 8 >>= gen_expr_sized in
  let gen_where = oneof [ return None; map Option.some gen_expr ] in
  oneof
    [
      map3
        (fun items table where -> Ast.Select { items; table; where; group_by = []; order_by = [] })
        (oneof
           [
             return [ Ast.Star ];
             list_size (int_range 1 4) (map (fun e -> Ast.Item (e, None)) gen_expr);
           ])
        gen_ident gen_where;
      map3
        (fun table cols rows ->
          let arity = List.length cols in
          let rows = List.map (fun row -> List.filteri (fun i _ -> i < arity) (row @ row)) rows in
          Ast.Insert { table; columns = Some cols; rows })
        gen_ident
        (list_size (int_range 1 4) gen_ident)
        (list_size (int_range 1 3) (list_size (int_range 4 4) gen_literal));
      map3
        (fun table sets where -> Ast.Update { table; sets; where })
        gen_ident
        (list_size (int_range 1 3) (pair gen_ident gen_expr))
        gen_where;
      map2 (fun table where -> Ast.Delete { table; where }) gen_ident gen_where;
    ]

let prop_print_parse =
  QCheck2.Test.make ~name:"print/parse roundtrip" ~count:300 gen_stmt (fun stmt ->
      let printed = Printer.to_string stmt in
      match Parser.parse printed with
      | Ok stmt' -> Ast.equal stmt stmt'
      | Error _ -> false)

let suite =
  [
    test "lexer basics" lexer_basics;
    test "lexer case-insensitive keywords" lexer_case_insensitive_keywords;
    test "lexer errors" lexer_errors;
    test "lexer numbers" lexer_numbers;
    test "parse select" parse_select;
    test "parse select items" parse_select_items;
    test "parse insert" parse_insert;
    test "parse update" parse_update;
    test "parse delete" parse_delete;
    test "parse create" parse_create;
    test "parse precedence" parse_precedence;
    test "parse errors" parse_errors;
    test "parse aggregates" parse_aggregates;
    test "parse count expr" parse_count_expr;
    test "aggregate roundtrip" aggregate_roundtrip;
    test "op-delta size example" opdelta_size_example;
    test "printer roundtrip" printer_roundtrip;
    QCheck_alcotest.to_alcotest prop_print_parse;
  ]
