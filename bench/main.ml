(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (scaled) plus the warehouse-side and multi-source
   experiments, and a bechamel micro suite.

     dune exec bench/main.exe            # everything, scale 1
     dune exec bench/main.exe -- t1 f2   # selected experiments
     dune exec bench/main.exe -- --scale 2 all

   Experiment ids: t1 t2 t3 t5 f2 f3 t4 w1 w2 s1 r1 v1 ablate micro (see DESIGN.md). *)

let usage () =
  print_endline
    "usage: main.exe [--scale N] \
     [t1|t2|t3|t5|t6|f2|f2r|f3|t4|w1|w2|w2r|w1agg|w3|w5|w6|s1|r1|v1|ablate|micro|all ...]";
  exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let scale = ref 1 in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--scale" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v >= 1 ->
          scale := v;
          parse acc rest
        | Some _ | None -> usage ())
    | ("-h" | "--help") :: _ -> usage ()
    | x :: rest -> parse (String.lowercase_ascii x :: acc) rest
  in
  let selected = parse [] args in
  let selected = if selected = [] || List.mem "all" selected then [ "all" ] else selected in
  let want id = List.mem id selected || List.mem "all" selected in
  let scale = !scale in
  let total = Unix.gettimeofday () in
  Printf.printf
    "Delta-extraction experiment harness (scale %d; paper sizes are scaled to row counts, see \
     EXPERIMENTS.md)\n"
    scale;
  if want "t1" then Dw_experiments.Exp_dump_load.run ~scale;
  if want "t2" then ignore (Dw_experiments.Exp_timestamp.run_t2 ~scale);
  if want "t3" then Dw_experiments.Exp_timestamp.run_t3 ~scale;
  if want "t5" then Dw_experiments.Exp_batching.run_t5 ~scale;
  if want "f2" then Dw_experiments.Exp_trigger.run ~scale;
  if want "f2r" then Dw_experiments.Exp_trigger.run_remote ~scale;
  if want "f3" then Dw_experiments.Exp_opdelta.run_f3 ~scale;
  if want "t4" then Dw_experiments.Exp_opdelta.run_t4 ~scale;
  if want "v1" then Dw_experiments.Exp_opdelta.run_v1 ~scale;
  if want "w1" then Dw_experiments.Exp_warehouse.run_w1 ~scale;
  if want "w2" then Dw_experiments.Exp_warehouse.run_w2 ~scale;
  if want "w2r" then Dw_experiments.Exp_warehouse.run_w2_real ~scale;
  if want "w1agg" then Dw_experiments.Exp_warehouse.run_w1_agg ~scale;
  if want "w3" then Dw_experiments.Exp_mvcc.run_w3 ~scale;
  if want "w5" then Dw_experiments.Exp_parallel.run_w5 ~scale;
  if want "t6" then Dw_experiments.Exp_partition.run_t6 ~scale;
  if want "w6" then Dw_experiments.Exp_chaos.run_bench ~scale;
  if want "s1" then Dw_experiments.Exp_snapshot.run ~scale;
  if want "r1" then Dw_experiments.Exp_reconcile.run ~scale;
  if want "ablate" then Dw_experiments.Exp_ablation.run_all ~scale;
  if want "micro" then Dw_experiments.Micro.run ();
  Printf.printf "\ntotal harness time: %s\n"
    (Dw_util.Fmt_util.human_duration (Unix.gettimeofday () -. total))
