(** Redo/undo log records (physiological logging: full record images keyed
    by table name and rid, as in Gray & Reuter's terminology the paper
    cites).

    An [Insert] carries only the after image, a [Delete] only the before
    image, an [Update] both — exactly the images the trigger-based
    value-delta extraction captures, which is what lets the log-based
    extractor of the paper recover value deltas from the archive log. *)

type txid = int

type rid = Dw_storage.Heap_file.rid

type body =
  | Begin
  | Commit
  | Abort
  | Insert of { table : string; rid : rid; after : bytes }
  | Delete of { table : string; rid : rid; before : bytes }
  | Update of { table : string; rid : rid; before : bytes; after : bytes }
  | Checkpoint of txid list  (** transactions active at checkpoint time *)

type t = {
  tx : txid;
  body : body;
}

val encode : t -> bytes
(** Framed and checksummed: [u32 total_len][u32 fnv1a of payload][payload].
    [decode] validates the checksum. *)

val decode : bytes -> off:int -> (t * int, string) result
(** [decode buf ~off] returns the record and the offset just past it. *)

val pp : Format.formatter -> t -> unit
(** Debug printer ([tx] plus the body constructor and its sizes). *)

val table_of : t -> string option
(** The table a DML record touches; [None] for control records. *)
