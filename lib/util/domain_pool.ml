(* Fixed pool of worker domains with a shared FIFO work queue and a
   deterministic join: [run_all] returns results in task-submission
   order regardless of which domain ran what, and re-raises the
   lowest-index exception after every task of the batch has settled, so
   a failing parallel query cannot leave stragglers mutating shared
   state behind the caller's back.

   Shutdown drains: workers keep taking queued tasks until the queue is
   empty AND the pool is stopped, then exit; [shutdown] joins them all,
   so it is safe to call mid-sweep — every already-submitted task still
   runs to completion before the domains are reclaimed. *)

type t = {
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work : Condition.t; (* signalled when tasks arrive or on shutdown *)
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
  size : int;
}

let size t = t.size

let worker t =
  let rec loop () =
    Mutex.lock t.lock;
    let rec next () =
      match Queue.take_opt t.queue with
      | Some task ->
        Mutex.unlock t.lock;
        task ();
        loop ()
      | None ->
        if t.stopped then Mutex.unlock t.lock
        else begin
          Condition.wait t.work t.lock;
          next ()
        end
    in
    next ()
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Domain_pool.create: domains < 1";
  let t =
    { queue = Queue.create (); lock = Mutex.create (); work = Condition.create ();
      stopped = false; workers = []; size = domains }
  in
  t.workers <- List.init domains (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.stopped <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

let run_all t fs =
  let n = List.length fs in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let remaining = ref n in
    let batch_lock = Mutex.create () in
    let batch_done = Condition.create () in
    let task i f () =
      (match f () with
       | v -> results.(i) <- Some v
       | exception e -> errors.(i) <- Some e);
      Mutex.lock batch_lock;
      decr remaining;
      if !remaining = 0 then Condition.signal batch_done;
      Mutex.unlock batch_lock
    in
    Mutex.lock t.lock;
    if t.stopped then begin
      Mutex.unlock t.lock;
      invalid_arg "Domain_pool.run_all: pool is shut down"
    end;
    List.iteri (fun i f -> Queue.add (task i f) t.queue) fs;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    Mutex.lock batch_lock;
    while !remaining > 0 do
      Condition.wait batch_done batch_lock
    done;
    Mutex.unlock batch_lock;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    List.init n (fun i -> Option.get results.(i))
  end

let run t f = match run_all t [ f ] with [ v ] -> v | _ -> assert false

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
