lib/core/watermark.ml: Buffer Bytes Dw_storage Dw_txn Hashtbl List Printf String
