lib/warehouse/olap.mli: Warehouse
