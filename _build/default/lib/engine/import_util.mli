(** Import utility: load an {!Export_util} dump into a table.

    Mirrors the commercial Import the paper measures in Table 1: records
    are first staged through the utility's *own internal pages* (written
    to a staging file and read back — the "extra I/O" the paper points
    at), then inserted through the normal transactional, logged insert
    path.  This is structurally more expensive than {!Ascii_loader}'s
    direct block writes, which is exactly the Import ≫ Loader gap in
    Table 1. *)

type stats = {
  rows : int;
  staged_bytes : int;   (** bytes written to + read from staging pages *)
  txns : int;           (** commit batches used *)
}

val import_table :
  ?batch_rows:int ->  (* rows per commit batch, default 1000 *)
  Db.t ->
  src:string ->
  table:string ->
  (stats, string) result
(** The destination [table] must exist with a schema equal to the dump's
    (same product constraint is enforced via the header product tag). *)
