(** Hand-written lexer for the SQL dialect. *)

type token =
  | IDENT of string     (** case preserved; keywords are case-insensitive *)
  | INT of int
  | FLOAT of float
  | STRING of string    (** single-quoted, [''] escapes a quote *)
  | KW of string        (** upper-cased keyword *)
  | LPAREN | RPAREN | COMMA | STAR | DOT | SEMI
  | EQ | NEQ | LT | LE | GT | GE
  | PLUS | MINUS | SLASH
  | EOF

val keywords : string list

val tokenize : string -> (token list, string) result
(** Errors carry a character position message. *)

val token_to_string : token -> string
