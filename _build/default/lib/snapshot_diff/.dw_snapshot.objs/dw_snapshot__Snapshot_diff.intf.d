lib/snapshot_diff/snapshot_diff.mli: Dw_relation Dw_storage
