lib/txn/recovery.mli: Dw_storage Format Wal
