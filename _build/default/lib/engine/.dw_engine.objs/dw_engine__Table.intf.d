lib/engine/table.mli: Dw_relation Dw_storage
