(** Export utility: dump a table to a proprietary-format binary file.

    Mirrors commercial DBMS Export (paper, Section 3): the output can only
    be read back by {!Import_util} of the same "product" (a product tag is
    embedded and checked), which is the restrictive constraint the paper
    calls out for the table-output extraction path. *)

type stats = {
  rows : int;
  bytes : int;
}

val product_tag : string
(** Identifies this engine build; Import refuses files from another tag. *)

val export_table :
  Db.t -> table:string -> ?where:Dw_relation.Expr.t -> dest:string -> unit -> stats
(** Write all (matching) rows of [table] into vfs file [dest].  Sequential
    scan + sequential write. *)

(** Reading (used by Import and by tests): *)

val read_header :
  Dw_storage.Vfs.t -> string -> (Dw_relation.Schema.t * int, string) result
(** Schema and row count, or an error for wrong magic/product/corrupt
    header. *)

val iter_records :
  Dw_storage.Vfs.t -> string -> f:(Dw_relation.Tuple.t -> unit) -> (int, string) result
(** Stream all records; returns the count read. *)
