(** A clock-driven circuit breaker: trip after consecutive failures,
    dwell open, half-open probe, close after consecutive probe
    successes.

    The breaker is a pure state machine over an injected clock — pass
    [Metrics.now] of a registry (Sim_clock-compatible) and the whole
    trip/dwell/probe cycle runs on logical time in tests.  Re-trips
    back off: every reopen doubles the open dwell (equal-jitter via
    {!Backoff}, deterministic under [config.seed], capped at
    [max_reset_timeout_s]) so a flapping resource is probed less and
    less often until it stays up.

    State machine:
    - [Closed]: calls allowed.  [record_failure] increments the
      consecutive-failure count; reaching [failure_threshold] trips to
      [Open].  [record_success] resets the count.
    - [Open]: calls refused until the jittered dwell elapses, at which
      point the next {!allow} transitions to [Half_open] and admits a
      probe.
    - [Half_open]: calls allowed (probes).  [probe_successes]
      consecutive successes close the breaker (dwell backoff resets);
      one failure reopens it with a doubled dwell.

    A breaker is owned by one shard's refresh task; calls are not
    serialised internally (rounds synchronise via the domain pool's
    join). *)

type state = Closed | Open | Half_open

type config = {
  failure_threshold : int;  (** consecutive failures that trip (>= 1) *)
  reset_timeout_s : float;  (** first open dwell; 0 probes immediately *)
  probe_successes : int;  (** consecutive probe successes to close (>= 1) *)
  max_reset_timeout_s : float;  (** dwell cap under repeated re-trips *)
  seed : int;  (** dwell jitter seed *)
}

val default_config : config
(** threshold 3, dwell 30 s capped at 300 s, 1 probe success, seed 17. *)

type t

val create : ?config:config -> clock:(unit -> float) -> unit -> t
(** Raises [Invalid_argument] on a non-positive threshold or probe
    count, or a negative dwell. *)

val state : t -> state
(** Current state.  Reading it never transitions; only {!allow} moves
    [Open] to [Half_open]. *)

val allow : t -> bool
(** May the protected call proceed?  [Closed]/[Half_open]: yes.
    [Open]: yes exactly when the dwell has elapsed on the clock, in
    which case the breaker moves to [Half_open] and the admitted call
    is the probe. *)

val record_success : t -> unit
val record_failure : t -> unit

val consecutive_failures : t -> int
(** Consecutive failures since the last success (meaningful in
    [Closed]: [> 0] is the "suspect" signal). *)

val trips : t -> int
(** Transitions into [Open], ever (including half-open probe failures
    that reopen). *)

val probes : t -> int
(** Half-open probes admitted by {!allow}, ever. *)

val reset : t -> unit
(** Force-close and clear counts — operator re-admission after an
    out-of-band repair (e.g. a shard rebuild). *)

val force_open : t -> unit
(** Trip immediately regardless of counts — operator quarantine. *)
