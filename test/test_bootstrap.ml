(* Tests for Dw_etl.Bootstrap (resumable chunked online load) and its
   Pipeline integration: convergence with and without live writes,
   window dedup, lease mutual exclusion, crash/resume at systematic
   fault points, clean abort on exhausted retries, the AIMD chunk valve,
   the advisory journal, and a qcheck property randomizing the crash
   point under concurrent commits. *)

module Vfs = Dw_storage.Vfs
module Fault = Vfs.Fault
module Metrics = Dw_util.Metrics
module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Tuple = Dw_relation.Tuple
module Workload = Dw_workload.Workload
module Warehouse = Dw_warehouse.Warehouse
module Watermark = Dw_core.Watermark
module Opdelta_capture = Dw_core.Opdelta_capture
module Bootstrap = Dw_etl.Bootstrap
module Run_state = Dw_etl.Run_state
module Pipeline = Dw_etl.Pipeline
module EB = Dw_experiments.Exp_bootstrap

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let has_prefix p s = String.length s >= String.length p && String.equal (String.sub s 0 (String.length p)) p

let spec ?(rows = 40) ?(commits = 0) ?(chunk = 8) ?(seed = 1) () =
  { EB.rows; commits; chunk; seed }

let start_exn ?owner env =
  match EB.start_bootstrap ?owner env with
  | Ok b -> b
  | Error (Bootstrap.Lease_held { owner; _ }) -> Alcotest.fail ("lease held by " ^ owner)
  | Error (Bootstrap.Failed e) -> Alcotest.fail e

let run_exn b =
  match Bootstrap.run b with
  | Ok p -> p
  | Error (Bootstrap.Lease_held { owner; _ }) -> Alcotest.fail ("lease held by " ^ owner)
  | Error (Bootstrap.Failed e) -> Alcotest.fail e

(* ---------- plain convergence, durable state, journal ---------- *)

let basic_convergence () =
  let env = EB.mk_env (spec ()) in
  let p = run_exn (start_exn env) in
  check Alcotest.bool "complete" true p.Bootstrap.complete;
  check Alcotest.bool "not resumed" false p.Bootstrap.resumed;
  check Alcotest.int "all rows loaded" 40 p.Bootstrap.rows_loaded;
  check Alcotest.bool "converged" true (EB.converged env);
  (* durable state row: Complete, lease released *)
  (match Bootstrap.state (Warehouse.db env.EB.wh) ~table:"parts" with
   | Some row ->
     check Alcotest.bool "state complete" true (row.Run_state.state = Run_state.Complete);
     check Alcotest.string "lease released" "" row.Run_state.lease_owner
   | None -> Alcotest.fail "no state row");
  (* source-side watermark: mark advanced past the load, cursor cleared *)
  check Alcotest.bool "cursor cleared" true (Watermark.cursor env.EB.wm ~table:"parts" = None);
  check Alcotest.bool "mark advanced" true
    ((Watermark.get env.EB.wm ~table:"parts").Watermark.day >= 0);
  (* advisory journal tells the run's story *)
  let records = Run_state.journal_read env.EB.whvfs ~table:"parts" in
  check Alcotest.bool "journal start" true
    (List.exists (has_prefix "start|") records);
  check Alcotest.bool "journal chunks" true
    (List.exists (has_prefix "chunk|") records);
  check Alcotest.bool "journal complete" true
    (List.exists (has_prefix "complete|") records)

let live_writes_converge () =
  let env = EB.mk_env (spec ~rows:48 ~commits:9 ~seed:3 ()) in
  let p = run_exn (start_exn env) in
  check Alcotest.bool "complete" true p.Bootstrap.complete;
  check Alcotest.bool "deltas applied" true (p.Bootstrap.delta_txns_applied > 0);
  check Alcotest.bool "converged under live writes" true (EB.converged env)

(* a delta inside the watermark window supersedes the whole overlapping
   chunk: every key it touches is dropped from the chunk upsert *)
let window_dedup () =
  let env = EB.mk_env (spec ()) in
  let fired = ref false in
  let hook = function
    | Bootstrap.Window_open _ when not !fired ->
      fired := true;
      (match
         Opdelta_capture.exec_txn env.EB.cap
           [ Workload.update_parts_stmt ~first_id:1 ~size:40 ]
       with
       | Ok _ -> ()
       | Error e -> Alcotest.fail e)
    | _ -> ()
  in
  let b =
    match
      Bootstrap.start ~config:(EB.config env.EB.spec) ~hook ~owner:"dedup" ~source:env.EB.src
        ~capture:env.EB.cap ~table:"parts" ~queue:env.EB.queue ~warehouse:env.EB.wh
        ~watermark:env.EB.wm ()
    with
    | Ok b -> b
    | Error _ -> Alcotest.fail "start refused"
  in
  let p = run_exn b in
  (* the update touched all 40 keys inside chunk 0's window, so the whole
     first chunk (8 rows) arrives via the delta path, not the chunk *)
  check Alcotest.int "first chunk fully deduped" 8 p.Bootstrap.rows_deduped;
  check Alcotest.bool "converged" true (EB.converged env)

(* ---------- lease mutual exclusion ---------- *)

let lease_refused () =
  let env = EB.mk_env (spec ()) in
  let b = start_exn ~owner:"primary" env in
  (match EB.start_bootstrap ~owner:"intruder" env with
   | Error (Bootstrap.Lease_held { owner; _ }) -> check Alcotest.string "holder" "primary" owner
   | Ok _ -> Alcotest.fail "second start not refused"
   | Error (Bootstrap.Failed e) -> Alcotest.fail e);
  let p = run_exn b in
  check Alcotest.bool "primary completed" true p.Bootstrap.complete;
  (* after completion the lease is gone; a new start is a no-op re-run *)
  match EB.start_bootstrap ~owner:"intruder" env with
  | Ok b2 ->
    let p2 = run_exn b2 in
    check Alcotest.bool "re-run is complete no-op" true p2.Bootstrap.complete;
    check Alcotest.int "no chunks re-done" 0 p2.Bootstrap.chunks_this_run
  | Error _ -> Alcotest.fail "start after completion refused"

(* ---------- lease contention on a simulated clock ---------- *)

let with_sim_clock env =
  let sim = Dw_util.Sim_clock.create () in
  Metrics.use_sim_clock (Db.metrics (Warehouse.db env.EB.wh)) sim;
  sim

let lease_expiry_steal () =
  (* an abandoned run's lease lapses on the registry clock; a new owner
     steals it, and the stale handle aborts cleanly on its next renewal
     instead of corrupting the winner's run *)
  let env = EB.mk_env (spec ()) in
  let sim = with_sim_clock env in
  let stale = start_exn ~owner:"primary" env in
  Dw_util.Sim_clock.advance sim (int_of_float Bootstrap.default_config.Bootstrap.lease_ttl_s + 1);
  let winner =
    match EB.start_bootstrap ~owner:"thief" env with
    | Ok b -> b
    | Error _ -> Alcotest.fail "expired lease not stolen"
  in
  (match Bootstrap.run stale with
   | Error (Bootstrap.Failed msg) ->
     check Alcotest.bool "stale run aborts on the lost lease" true
       (has_prefix "lease lost" msg)
   | Ok _ -> Alcotest.fail "stale handle ran to completion over a stolen lease"
   | Error (Bootstrap.Lease_held _) -> Alcotest.fail "stale run refused at start, not renewal");
  let p = run_exn winner in
  check Alcotest.bool "thief completes" true p.Bootstrap.complete;
  check Alcotest.bool "converged" true (EB.converged env)

let lease_same_owner_reacquires () =
  (* the same owner re-acquiring a live lease is a resume, not contention
     — crash recovery must not have to wait out its own TTL *)
  let env = EB.mk_env (spec ()) in
  let (_ : Dw_util.Sim_clock.t) = with_sim_clock env in
  let (_ : Bootstrap.t) = start_exn ~owner:"primary" env in
  let b2 =
    match EB.start_bootstrap ~owner:"primary" env with
    | Ok b -> b
    | Error _ -> Alcotest.fail "same owner refused its own live lease"
  in
  let p = run_exn b2 in
  check Alcotest.bool "re-acquired handle completes" true p.Bootstrap.complete

let lease_expired_single_winner () =
  (* two acquirers arriving after the expiry: the first steal commits a
     fresh lease, so the second must be refused *)
  let env = EB.mk_env (spec ()) in
  let sim = with_sim_clock env in
  let (_ : Bootstrap.t) = start_exn ~owner:"primary" env in
  Dw_util.Sim_clock.advance sim (int_of_float Bootstrap.default_config.Bootstrap.lease_ttl_s + 1);
  (match EB.start_bootstrap ~owner:"a" env with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "first acquirer refused an expired lease");
  match EB.start_bootstrap ~owner:"b" env with
  | Error (Bootstrap.Lease_held { owner; _ }) -> check Alcotest.string "winner holds" "a" owner
  | Ok _ -> Alcotest.fail "both acquirers won the expired lease"
  | Error (Bootstrap.Failed e) -> Alcotest.fail e

(* ---------- crash / resume ---------- *)

let crash_mid_load_resumes () =
  let s = spec ~rows:48 ~commits:6 ~seed:5 () in
  let _, _, total = EB.baseline s in
  check Alcotest.bool "events counted" true (total > 0);
  let totals = Metrics.create () in
  List.iter
    (fun k ->
      match EB.run_crash_point s ~totals k with
      | Ok extra -> check Alcotest.bool "resume re-does <= 1 chunk" true (extra <= 1)
      | Error msg -> Alcotest.fail (Printf.sprintf "crash point %d: %s" k msg))
    [ 1; total / 3; total / 2; total - 2 ]

let abort_then_resume () =
  let env = EB.mk_env (spec ~rows:32 ~seed:9 ()) in
  let config = { (EB.config env.EB.spec) with Bootstrap.max_retries = 2 } in
  let b =
    match
      Bootstrap.start ~config ~owner:"o1" ~source:env.EB.src ~capture:env.EB.cap
        ~table:"parts" ~queue:env.EB.queue ~warehouse:env.EB.wh ~watermark:env.EB.wm ()
    with
    | Ok b -> b
    | Error _ -> Alcotest.fail "start refused"
  in
  (* every warehouse write now fails transiently: the retry budget runs
     out and the run aborts cleanly instead of crashing *)
  Vfs.set_fault env.EB.whvfs
    (Some (Fault.make ~write_fail_p:1.0 ~fsync_fail_p:1.0 ~seed:1 ()));
  (match Bootstrap.run b with
   | Error (Bootstrap.Failed _) -> ()
   | Ok _ -> Alcotest.fail "run succeeded under a total-failure fault"
   | Error (Bootstrap.Lease_held _) -> Alcotest.fail "unexpected lease error");
  Vfs.set_fault env.EB.whvfs None;
  (* the table is visibly still bootstrapping *)
  (match Bootstrap.state (Warehouse.db env.EB.wh) ~table:"parts" with
   | Some row ->
     check Alcotest.bool "still bootstrapping" true
       (row.Run_state.state = Run_state.Bootstrapping)
   | None -> Alcotest.fail "no state row");
  (* the same owner resumes straight through *)
  let b2 =
    match
      Bootstrap.start ~config ~owner:"o1" ~source:env.EB.src ~capture:env.EB.cap
        ~table:"parts" ~queue:env.EB.queue ~warehouse:env.EB.wh ~watermark:env.EB.wm ()
    with
    | Ok b -> b
    | Error _ -> Alcotest.fail "resume refused"
  in
  let p = run_exn b2 in
  check Alcotest.bool "resumed" true p.Bootstrap.resumed;
  check Alcotest.bool "complete" true p.Bootstrap.complete;
  check Alcotest.bool "converged" true (EB.converged env)

(* ---------- AIMD chunk valve ---------- *)

let aimd_shrinks_under_lock_pressure () =
  let env = EB.mk_env (spec ~rows:64 ~seed:11 ()) in
  let m = Db.metrics (Warehouse.db env.EB.wh) in
  (* simulate reader lock pressure: a fat lock.wait tail on the warehouse
     registry, well above the configured p95 threshold *)
  for _ = 1 to 50 do
    Metrics.observe m "lock.wait" 0.5
  done;
  let config = { (EB.config env.EB.spec) with Bootstrap.chunk_min = 2 } in
  let b =
    match
      Bootstrap.start ~config ~owner:"aimd" ~source:env.EB.src ~capture:env.EB.cap
        ~table:"parts" ~queue:env.EB.queue ~warehouse:env.EB.wh ~watermark:env.EB.wm ()
    with
    | Ok b -> b
    | Error _ -> Alcotest.fail "start refused"
  in
  let p = run_exn b in
  check Alcotest.bool "complete" true p.Bootstrap.complete;
  check (Alcotest.float 0.001) "target shrunk to the floor" 2.0
    (List.assoc "bootstrap.chunk_target" (Metrics.gauges m));
  (* halving 8 -> 4 -> 2 -> 2 ... needs strictly more chunks than 64/8 *)
  check Alcotest.bool "more, smaller chunks" true (p.Bootstrap.chunks_done > 8);
  check Alcotest.bool "converged" true (EB.converged env)

(* ---------- pipeline integration ---------- *)

let pipeline_bootstrap_then_rounds () =
  let src = Db.create ~archive_log:true ~vfs:(Vfs.in_memory ()) ~name:"src" () in
  let (_ : Table.t) = Workload.create_parts_table src in
  Workload.load_parts src ~rows:40 ();
  let wh = Warehouse.create ~vfs:(Vfs.in_memory ()) ~name:"dw" () in
  Warehouse.add_replica wh ~table:"parts" ~schema:Workload.parts_schema;
  let pipe =
    Pipeline.create ~capture_images:true ~source:src ~warehouse:wh ~table:"parts"
      ~method_:Pipeline.Op_delta_wrapper ~transport:(Pipeline.Queued "bq") ()
  in
  let cap = Option.get (Pipeline.capture pipe) in
  let exec stmts =
    match Opdelta_capture.exec_txn cap stmts with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  in
  (* live writes land mid-bootstrap through the pipeline's own capture *)
  let hook = function
    | Bootstrap.Window_open 1 -> exec [ Workload.update_parts_stmt ~first_id:5 ~size:10 ]
    | Bootstrap.After_select 2 ->
      exec (Workload.insert_parts_txn ~first_id:500 ~size:4 ~day:(Db.current_day src) ())
    | _ -> ()
  in
  (match Pipeline.bootstrap ~hook pipe ~owner:"pipe" with
   | Ok p -> check Alcotest.bool "bootstrap complete" true p.Bootstrap.complete
   | Error (Bootstrap.Failed e) -> Alcotest.fail e
   | Error (Bootstrap.Lease_held _) -> Alcotest.fail "lease held");
  let rows db =
    let acc = ref [] in
    Table.scan (Db.table db "parts") (fun _ t -> acc := t :: !acc);
    List.sort Tuple.compare !acc
  in
  check Alcotest.bool "converged after bootstrap" true (rows src = rows (Warehouse.db wh));
  (* steady state: the same pipeline keeps maintaining incrementally and
     does not re-apply what the bootstrap already integrated *)
  exec [ Workload.update_parts_stmt ~first_id:1 ~size:7 ];
  exec [ Workload.delete_parts_stmt ~first_id:20 ~size:2 ];
  (match Pipeline.run_round pipe with
   | Ok stats -> check Alcotest.int "round sees only fresh txns" 2 stats.Pipeline.extracted_changes
   | Error e -> Alcotest.fail e);
  check Alcotest.bool "converged after round" true (rows src = rows (Warehouse.db wh))

let pipeline_bootstrap_guards () =
  let src = Db.create ~archive_log:true ~vfs:(Vfs.in_memory ()) ~name:"src" () in
  let (_ : Table.t) = Workload.create_parts_table src in
  let wh = Warehouse.create ~vfs:(Vfs.in_memory ()) ~name:"dw" () in
  Warehouse.add_replica wh ~table:"parts" ~schema:Workload.parts_schema;
  (* wrong method *)
  let p1 =
    Pipeline.create ~source:src ~warehouse:wh ~table:"parts" ~method_:Pipeline.Trigger
      ~transport:(Pipeline.Queued "g1") ()
  in
  check Alcotest.bool "non-op-delta refused" true
    (Result.is_error (Pipeline.bootstrap p1 ~owner:"g"));
  (* no image capture *)
  let p2 =
    Pipeline.create ~source:src ~warehouse:wh ~table:"parts"
      ~method_:Pipeline.Op_delta_wrapper ~transport:(Pipeline.Queued "g2") ()
  in
  check Alcotest.bool "no-images refused" true
    (Result.is_error (Pipeline.bootstrap p2 ~owner:"g"));
  (* direct transport *)
  let p3 =
    Pipeline.create ~capture_images:true ~source:src ~warehouse:wh ~table:"parts"
      ~method_:Pipeline.Op_delta_wrapper ~transport:Pipeline.Direct ()
  in
  check Alcotest.bool "direct transport refused" true
    (Result.is_error (Pipeline.bootstrap p3 ~owner:"g"))

(* ---------- property: any crash point converges ---------- *)

let prop_random_crash_converges =
  QCheck2.Test.make ~name:"bootstrap resumes and converges from any crash point" ~count:8
    QCheck2.Gen.(triple (int_range 0 400) (int_range 0 8) (int_range 0 999))
    (fun (k, commits, seed) ->
      let s = spec ~rows:48 ~commits ~seed () in
      let totals = Metrics.create () in
      match EB.run_crash_point s ~totals k with
      | Ok extra -> extra <= 1
      | Error msg -> QCheck2.Test.fail_report msg)

let suite =
  [
    test "basic convergence + durable state + journal" basic_convergence;
    test "live writes converge" live_writes_converge;
    test "window dedup drops superseded chunk rows" window_dedup;
    test "lease refused while held, free after completion" lease_refused;
    test "expired lease stolen, stale run aborts at renewal" lease_expiry_steal;
    test "same owner re-acquires its own live lease" lease_same_owner_reacquires;
    test "expired lease: exactly one acquirer wins" lease_expired_single_winner;
    test "crash mid-load resumes (<= 1 chunk re-done)" crash_mid_load_resumes;
    test "retry exhaustion aborts cleanly, then resumes" abort_then_resume;
    test "AIMD valve shrinks chunks under lock pressure" aimd_shrinks_under_lock_pressure;
    test "pipeline bootstrap then incremental rounds" pipeline_bootstrap_then_rounds;
    test "pipeline bootstrap guards" pipeline_bootstrap_guards;
    QCheck_alcotest.to_alcotest prop_random_crash_converges;
  ]
