(** Open-loop sustained-load generator for end-to-end planner scoring
    (experiment T7).

    Closed-loop drivers hide overload: a slow server slows the clients
    down, and the measured latency flattens.  This generator is {e
    open-loop}: each virtual second it {e offers} the phase's target
    op/s regardless of how the previous second went — arrival times are
    fixed by the rate, and an op's latency is [completion - arrival]
    through a single-server queue model (coordinated-omission-safe).
    Everything runs in virtual time ({!Dw_util.Sim_clock}) from a seeded
    {!Dw_util.Prng}, so a given config produces the identical op
    sequence, latencies and admission decisions on every run — the T7
    gates in [Bench_check] depend on this.

    The offered mix moves through {e phases} (insert-heavy,
    update-heavy, scan-heavy) so the cheapest extraction method changes
    under the planner's feet mid-run.  A latency SLO is tracked per
    second; an {b AIMD admission valve} (multiplicative decrease on
    breach, additive recovery) sheds offered ops before they reach the
    source when the queue falls behind, like the warehouse side's
    {!Dw_warehouse.Warehouse.batch_policy} valve but at the workload's
    front door. *)

module Ast = Dw_sql.Ast
module Sim_clock = Dw_util.Sim_clock
module Metrics = Dw_util.Metrics

type phase_kind = Insert_heavy | Update_heavy | Scan_heavy
    (** Which statement mix dominates the offered load. *)

val phase_name : phase_kind -> string
(** "insert-heavy" / "update-heavy" / "scan-heavy". *)

type phase = {
  kind : phase_kind;
  rate : int;  (** offered ops per virtual second (> 0) *)
  seconds : int;  (** phase duration in virtual seconds (> 0) *)
}

type config = {
  phases : phase list;  (** played in order; must be non-empty *)
  slo_ms : float;  (** per-second latency p95 SLO (> 0) *)
  service_fixed_ms : float;  (** fixed service time per op (>= 0) *)
  service_per_row_ms : float;  (** service time per row touched (>= 0) *)
  update_size : int;  (** rows per range UPDATE/DELETE op (>= 1) *)
  scan_rows : int;  (** rows per scan op (>= 1) *)
  aimd_decrease : float;  (** valve multiplier on SLO breach (in (0, 1)) *)
  aimd_increase : int;  (** valve op/s recovery per met second (>= 1) *)
  min_rate : int;  (** valve floor in op/s (>= 1) *)
}
(** Generator knobs; see OPERATIONS.md for symptoms and defaults. *)

val default_config : config
(** Three phases of 30 virtual seconds at 40 op/s (insert-heavy →
    update-heavy → scan-heavy), 250 ms SLO, 1 ms + 0.4 ms/row service,
    8-row updates, 160-row scans, halve/+8 AIMD with a 4 op/s floor. *)

val validate_config : config -> unit
(** Raises [Invalid_argument] on out-of-range knobs. *)

type op =
  | Dml of Workload.op  (** one source transaction's worth of DML *)
  | Scan of int  (** read-only range scan over [n] rows (drives lock waits) *)

val op_rows : config -> op -> int
(** Rows an op touches (service-time and delta-rate driver). *)

type tick_stats = {
  tick : int;  (** 1-based virtual second since the run started *)
  phase : phase_kind;
  phase_tick : int;  (** 1-based second within the current phase *)
  offered : int;
  admitted : int;
  shed : int;  (** [offered - admitted], dropped by the AIMD valve *)
  ops : op list;  (** the admitted ops, in arrival order *)
  p95_ms : float;  (** admitted-op latency p95 this second *)
  slo_met : bool;
  valve : int;  (** admission valve (op/s) after this second's AIMD step *)
  lock_wait_p95_s : float;
      (** queue-wait p95 this second — the contention signal a [Planned]
          pipeline feeds to its planner *)
}
(** What one virtual second produced.  The driver executes [ops] against
    the source, then calls {!tick} again. *)

type t

val create :
  ?config:config -> ?metrics:Metrics.t -> ?seed:int -> clock:Sim_clock.t ->
  existing_ids:int -> unit -> t
(** A generator positioned before the first phase.  [existing_ids] is
    the source table's current max id (updates/deletes range below it,
    inserts allocate above it).  [metrics] receives the [loadgen.*]
    counters and gauges.  The clock is advanced 1000 virtual ms per
    {!tick}. *)

val finished : t -> bool
(** All phases exhausted. *)

val total_seconds : t -> int
(** Sum of the configured phase durations. *)

val tick : t -> tick_stats
(** Generate the next virtual second: offer the phase rate, admit what
    the valve allows, lay the admitted ops on the arrival timeline,
    push them through the single-server queue model, score the SLO and
    step the valve.  Raises [Invalid_argument] once {!finished}. *)

val stmts_of_op : t -> day:int -> op -> Ast.stmt list
(** The source statements for an op — one transaction's worth for
    [Dml], [[]] for [Scan] (the driver runs scans through its own
    read path). *)

type summary = {
  ticks : int;
  total_offered : int;
  total_admitted : int;
  total_shed : int;
  slo_breaches : int;  (** seconds whose p95 exceeded the SLO *)
  slo_attainment : float;  (** fraction of seconds meeting the SLO *)
  worst_p95_ms : float;
}

val summary : t -> summary
(** Totals over every {!tick} so far. *)
