module Ast = Dw_sql.Ast

type op_kind = K_insert | K_update | K_delete

let kind_of_stmt = function
  | Ast.Insert _ -> Some K_insert
  | Ast.Update _ -> Some K_update
  | Ast.Delete _ -> Some K_delete
  | Ast.Select _ | Ast.Create_table _ -> None

type verdict = {
  self_maintainable : bool;
  needs_before_images : bool;
  reason : string;
}

let analyze view kind ~replicas =
  if replicas then
    {
      self_maintainable = true;
      needs_before_images = false;
      reason = "warehouse keeps source replicas: the operation replays locally";
    }
  else
    match view, kind with
    | Spj_view.Select_project _, K_insert ->
      {
        self_maintainable = true;
        needs_before_images = false;
        reason = "INSERT carries the full tuple; project/select it directly";
      }
    | Spj_view.Select_project _, (K_update | K_delete) ->
      {
        self_maintainable = true;
        needs_before_images = true;
        reason =
          "without replicas the warehouse cannot resolve the statement's \
           predicate to rows; ship the before images (hybrid capture)";
      }
    | Spj_view.Join _, _ ->
      {
        self_maintainable = false;
        needs_before_images = false;
        reason = "join view needs the other side's rows; keep replicas at the warehouse";
      }

let requirement ~views ~replicas stmt =
  match kind_of_stmt stmt with
  | None -> `Op_only
  | Some kind ->
    let table = Ast.table_of stmt in
    let relevant =
      List.filter (fun v -> List.mem table (Spj_view.source_tables v)) views
    in
    let verdicts = List.map (fun v -> (v, analyze v kind ~replicas)) relevant in
    let not_sm =
      List.find_opt (fun (_, verdict) -> not verdict.self_maintainable) verdicts
    in
    (match not_sm with
     | Some (v, verdict) ->
       `Not_self_maintainable (Printf.sprintf "view %s: %s" (Spj_view.name v) verdict.reason)
     | None ->
       if List.exists (fun (_, verdict) -> verdict.needs_before_images) verdicts then
         `Op_with_before_images
       else `Op_only)
