(** Cooperative session scheduler over a single {!Db.t}, built on OCaml 5
    effect handlers.

    Each {!session} is a logical client (an OLAP query, an integration
    transaction stream, …) running ordinary [Db] code.  The scheduler
    interleaves sessions at {e statement} boundaries (via the engine's
    yield hook) and suspends a session whose lock request conflicts (via
    the block hook) until its blockers release — so 2PL interactions
    between concurrent clients are exercised for real, not simulated.

    Logical time: one {b slice} per statement executed by any session.
    The per-session report accounts arrival, first-run, completion and
    the number of slices spent blocked on locks — the availability
    metrics of experiment W2, measured against the real lock manager. *)

type session = {
  name : string;
  start_at : int;          (** arrival slice; the session is held until then *)
  work : unit -> unit;     (** ordinary Db code; runs inside the scheduler *)
}

type session_report = {
  session : string;
  arrived : int;
  started : int;           (** first slice the session ran *)
  finished : int;
  blocked_slices : int;    (** slices spent suspended on lock conflicts *)
  failed : string option;  (** exception message, e.g. a deadlock abort *)
}

type report = {
  total_slices : int;
  sessions : session_report list;  (** in input order *)
}

val run : Db.t -> session list -> report
(** Round-robin over runnable sessions; a blocked session retries its
    lock acquisition whenever it is rescheduled and is accounted blocked
    until it is granted.  The hooks are restored on exit.  A session that
    raises is recorded as [failed] (its transaction, if any, is the
    session's responsibility — use {!Db.with_txn}).

    Deadlocks: the engine raises {!Db.Deadlock_abort} into the requesting
    session rather than suspending it, so scheduled workloads cannot hang. *)
