(** Equal-jitter exponential backoff, deterministic under a seed.

    One policy object owns a seeded {!Prng.t} and a sleep function, so
    every consumer of retry pauses in the tree ({!Dw_transport.File_ship},
    {!Dw_etl.Bootstrap}, the {!Breaker}) draws from the same
    distribution: for attempt [n] (0-based) the pause is

    {[ base/2 * 2^n  +  uniform(0, base/2 * 2^n) ]}

    — half the doubled base is fixed, half is uniform random, so
    concurrent retriers decorrelate without ever retrying sooner than
    half the nominal pause.  Two policies built with the same seed
    produce identical pause sequences, which is what makes retry-heavy
    tests and crash sweeps reproducible.

    Sleeping is pluggable: the default is [Unix.sleepf], tests pass the
    advance function of a {!Sim_clock.t} (or [ignore]) so backoff costs
    logical time only. *)

type t

val create : ?sleep:(float -> unit) -> ?max_s:float -> base_s:float -> seed:int -> unit -> t
(** [base_s] is the nominal first-attempt pause; [0.0] disables pausing
    entirely (and never consumes the Prng, so a zero-backoff run stays
    bit-identical to one without a policy).  [max_s] caps the doubled
    base (default: no cap).  Raises [Invalid_argument] on a negative
    [base_s]. *)

val pause_s : t -> attempt:int -> float
(** Draw the jittered pause for 0-based [attempt] without sleeping
    (consumes one Prng draw unless [base_s] is 0). *)

val wait : t -> attempt:int -> float
(** {!pause_s}, then sleep it (skipped when 0); returns the pause so
    callers can observe it into a histogram. *)
