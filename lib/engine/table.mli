(** A table: heap file + primary-key B+tree + optional timestamp column
    with its own index + attached triggers.

    This module provides the *non-transactional* primitives; {!Db} wraps
    them with locking, logging and trigger firing.  The timestamp column,
    when configured, is set by {!Db} on every insert/update — it is how
    the timestamp-based extraction method of the paper finds deltas. *)

module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Heap_file = Dw_storage.Heap_file
module Btree = Dw_storage.Btree

type t

val create :
  pool:Dw_storage.Buffer_pool.t ->
  file:Dw_storage.Vfs.file ->
  name:string ->
  schema:Schema.t ->
  ts_column:string option ->
  t
(** [ts_column], if given, must name a [Tdate] column of the schema;
    it gets a secondary index. *)

val attach :
  rebuild_index:bool ->
  pool:Dw_storage.Buffer_pool.t ->
  file:Dw_storage.Vfs.file ->
  name:string ->
  schema:Schema.t ->
  ts_column:string option ->
  t
(** Re-adopt a heap file that already holds pages (post-crash re-open):
    the heap is attached rather than created and both indexes are rebuilt
    from its live records.  The schema must match the one the file was
    written with.

    [rebuild_index] must be false for callers that run WAL recovery
    next: a crash mid-checkpoint can leave heap pages whose union holds
    one key at two rids (the page with the re-insert flushed, the page
    with the old row's delete not yet), so an index built before
    redo/undo would see duplicate keys — recovery calls
    {!rebuild_indexes} itself once the heap is consistent. *)

val name : t -> string
val schema : t -> Schema.t
val heap : t -> Heap_file.t
val ts_column : t -> string option

val raw_insert : t -> Tuple.t -> Heap_file.rid
(** Inserts and maintains indexes.  Raises [Invalid_argument] on a
    duplicate primary key. *)

val raw_insert_blind : t -> bytes -> Heap_file.rid
(** Direct-block load path (ASCII Loader): no key-uniqueness check, no
    index maintenance; call {!rebuild_indexes} afterwards.  This is what
    makes the Loader structurally cheaper than Import in Table 1. *)

val raw_insert_at : t -> Heap_file.rid -> Tuple.t -> unit
(** Re-insert a tuple at an exact rid (the slot must be free — undo of a
    delete).  Keeping the rid stable matters to the snapshot read path:
    version chains are keyed by rid, so a row must never migrate to a
    different slot while old snapshots are live. *)

val raw_update : t -> Heap_file.rid -> old_tuple:Tuple.t -> Tuple.t -> unit
val raw_delete : t -> Heap_file.rid -> old_tuple:Tuple.t -> unit

val rebuild_indexes : t -> unit

val find_key : t -> Tuple.t -> (Heap_file.rid * Tuple.t) option
(** Lookup by primary-key tuple (key columns only). *)

val scan : t -> (Heap_file.rid -> Tuple.t -> unit) -> unit

val ts_range : t -> after:int -> (Heap_file.rid -> Tuple.t -> unit) -> unit
(** Rows whose timestamp column is strictly greater than [after], via the
    timestamp index.  Raises [Invalid_argument] if the table has no
    timestamp column. *)

val key_range :
  t ->
  lo:Dw_relation.Value.t option ->
  hi:Dw_relation.Value.t option ->
  (Heap_file.rid -> Tuple.t -> unit) ->
  unit
(** Rows whose first key column lies in the inclusive range, via the
    primary-key index. *)

val row_count : t -> int
val cardinality : t -> int
(** Index cardinality (O(1)); equals {!row_count} when indexes are fresh.
    After {!raw_insert_blind} call {!rebuild_indexes} first. *)
