test/test_warehouse.ml: Alcotest Array Dw_core Dw_engine Dw_relation Dw_sql Dw_storage Dw_util Dw_warehouse Dw_workload List Printf QCheck2 QCheck_alcotest Result
