module Vfs = Dw_storage.Vfs

type stats = { bytes : int; chunks : int }

let ship ?(chunk_size = 64 * 1024) ~src ~src_name ~dst ~dst_name () =
  if chunk_size <= 0 then invalid_arg "File_ship.ship: chunk_size <= 0";
  match Vfs.open_existing src src_name with
  | exception Not_found -> Error (Printf.sprintf "no such file %s" src_name)
  | src_file ->
    let out = Vfs.create dst dst_name in
    let total = Vfs.size src_file in
    let rec go off chunks =
      if off >= total then chunks
      else begin
        let len = min chunk_size (total - off) in
        let data = Vfs.read_at src_file ~off ~len in
        ignore (Vfs.append out data : int);
        go (off + len) (chunks + 1)
      end
    in
    let chunks = go 0 0 in
    Vfs.fsync out;
    Vfs.close out;
    Vfs.close src_file;
    Ok { bytes = total; chunks }
