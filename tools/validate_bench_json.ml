(* Schema check for dwbench's --json output, run by the @bench-json
   alias: a quick-mode experiment subset must produce a document that
   parses, carries the stable top-level keys, and reports latency
   percentiles for the histograms the acceptance criteria name
   (wal.fsync, pool.miss, warehouse.refresh).  Exits 1 with a message on
   the first violation, so a schema regression fails `dune runtest`
   rather than surfacing downstream in whatever consumes the JSON. *)

module Json = Dw_util.Json

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("bench-json: " ^ msg); exit 1) fmt

let require_member name j =
  match Json.member name j with
  | Some v -> v
  | None -> fail "missing key %S" name

let require_number ctx name j =
  match Json.to_number (require_member name j) with
  | Some v -> v
  | None -> fail "%s: %S is not a number" ctx name

let check_histogram ~exp_id name h =
  let ctx = Printf.sprintf "experiment %S histogram %S" exp_id name in
  let count = require_number ctx "count" h in
  if count < 1.0 then fail "%s: empty (count = %g)" ctx count;
  List.iter (fun k -> ignore (require_number ctx k h : float)) [ "sum"; "min"; "max"; "p50"; "p95"; "p99" ]

let required_histograms = [ "wal.fsync"; "pool.miss"; "warehouse.refresh" ]

let check_experiment seen j =
  let id =
    match Json.to_str (require_member "id" j) with
    | Some s -> s
    | None -> fail "experiment \"id\" is not a string"
  in
  ignore (require_number id "wall_s" j : float);
  (match Json.member "counters" j with
   | Some (Json.Obj _) -> ()
   | Some _ | None -> fail "experiment %S: \"counters\" is not an object" id);
  match Json.member "histograms" j with
  | Some (Json.Obj fields) ->
    List.iter
      (fun (name, h) ->
        check_histogram ~exp_id:id name h;
        Hashtbl.replace seen name ())
      fields
  | Some _ | None -> fail "experiment %S: \"histograms\" is not an object" id

let () =
  let file =
    match Sys.argv with
    | [| _; file |] -> file
    | _ -> fail "usage: validate_bench_json FILE"
  in
  let doc =
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Json.of_string s with
    | Ok j -> j
    | Error e -> fail "%s does not parse: %s" file e
  in
  (match Json.to_number (require_member "schema_version" doc) with
   | Some 1.0 -> ()
   | Some v -> fail "schema_version %g, expected 1" v
   | None -> fail "schema_version is not a number");
  (match Json.to_str (require_member "suite" doc) with
   | Some "dwbench" -> ()
   | _ -> fail "suite is not \"dwbench\"");
  let experiments =
    match Json.to_list (require_member "experiments" doc) with
    | Some [] -> fail "\"experiments\" is empty"
    | Some l -> l
    | None -> fail "\"experiments\" is not a list"
  in
  let seen = Hashtbl.create 32 in
  List.iter (check_experiment seen) experiments;
  List.iter
    (fun name ->
      if not (Hashtbl.mem seen name) then
        fail "required histogram %S missing from every experiment" name)
    required_histograms;
  Printf.printf "bench-json: %s ok (%d experiments, %d histograms)\n" file
    (List.length experiments) (Hashtbl.length seen)
