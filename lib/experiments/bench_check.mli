(** Schema and acceptance-gate validation for dwbench's [--json] output,
    shared by [tools/validate_bench_json] (the @bench-json alias) and by
    dwbench itself, which exits non-zero if the document it just emitted
    fails validation. *)

val gated_ids : string list
(** The experiment ids whose metrics the strict gates reference
    ([t3 w1 t5 w3 w4 w5 t6 w6 t7]); strict validation only makes sense
    on documents covering all of them. *)

val validate : ?strict:bool -> Dw_util.Json.t -> (string, string) result
(** [validate doc] checks the stable document shape (top-level keys,
    per-experiment metric objects, non-empty histograms with numeric
    percentiles) and — when [strict] (the default) — the required
    histogram/gauge inventory plus the deterministic relational gates
    (group-commit fsync reduction, lock-free snapshot reads, bootstrap
    resume cost, lease exclusion, crash-sweep convergence, parallel-OLAP
    result identity, partitioned-refresh identity, planner-vs-static cost
    envelope with warehouse identity on every T7 arm).  The W5 speedup gate
    (>= 2x at 4 domains) and the T6 refresh-window gate (>= 1.8x shrink
    at 4 partitions) bind only when the document's top-level [quick]
    flag is false — quick workloads are too small for stable ratios.  [Ok] carries a one-line
    summary; [Error] the first violation. *)
