(* Cross-cutting qcheck property suites that don't belong to a single
   module's tests: lock-manager safety against a brute-force model,
   Op-Delta wire-format round-trips over generated transactions, and WAL
   record-stream round-trips. *)

module Vfs = Dw_storage.Vfs
module Heap_file = Dw_storage.Heap_file
module Lock_manager = Dw_txn.Lock_manager
module Log_record = Dw_txn.Log_record
module Wal = Dw_txn.Wal
module Value = Dw_relation.Value
module Tuple = Dw_relation.Tuple
module Ast = Dw_sql.Ast
module Op_delta = Dw_core.Op_delta
module Workload = Dw_workload.Workload

let test name f = Alcotest.test_case name `Quick f
let _ = test

(* ---------- lock manager vs. brute-force model ---------- *)

type lock_op =
  | Acquire of int * int * bool * bool  (* tx, resource id, is_row, exclusive *)
  | Release of int

let gen_lock_ops =
  QCheck2.Gen.(
    list_size (int_range 1 120)
      (frequency
         [
           (6, map (fun ((tx, r), (row, x)) -> Acquire (tx, r, row, x))
                 (pair (pair (int_range 1 5) (int_range 0 4)) (pair bool bool)));
           (2, map (fun tx -> Release tx) (int_range 1 5));
         ]))

let resource_of r is_row =
  if is_row then Lock_manager.Row ("t", { Heap_file.page = r; slot = 0 })
  else Lock_manager.Table "t"

(* model resource identity: all table locks are the one table "t" *)
let model_id r is_row = if is_row then Some r else None

(* model: set of granted (tx, id option, exclusive) *)
let model_conflicts held tx resource_id is_row exclusive =
  let id = model_id resource_id is_row in
  List.filter
    (fun (otx, oid, ox) ->
      otx <> tx
      && (not ((not exclusive) && not ox))  (* S/S compatible *)
      && (oid = id  (* same resource *)
          || (oid = None) <> (id = None) (* coarse: table lock vs any row lock *)))
    held
  |> List.map (fun (otx, _, _) -> otx)
  |> List.sort_uniq compare

let prop_lock_manager_model =
  QCheck2.Test.make ~name:"lock manager matches brute-force model" ~count:300 gen_lock_ops
    (fun ops ->
      let lm = Lock_manager.create () in
      let held = ref [] in  (* (tx, id, is_row, exclusive) granted in model *)
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Release tx ->
            Lock_manager.release_all lm tx;
            held := List.filter (fun (otx, _, _) -> otx <> tx) !held
          | Acquire (tx, r, is_row, x) -> (
              let resource = resource_of r is_row in
              let id = model_id r is_row in
              let mode = if x then Lock_manager.X else Lock_manager.S in
              let model_blockers = model_conflicts !held tx r is_row x in
              match Lock_manager.acquire lm tx resource mode with
              | Lock_manager.Granted ->
                if model_blockers <> [] then ok := false
                else begin
                  (* model grant: upgrade keeps the strongest mode *)
                  let existing =
                    List.find_opt (fun (otx, oid, _) -> otx = tx && oid = id) !held
                  in
                  let new_x = match existing with Some (_, _, ox) -> ox || x | None -> x in
                  held :=
                    (tx, id, new_x)
                    :: List.filter (fun (otx, oid, _) -> not (otx = tx && oid = id)) !held
                end
              | Lock_manager.Blocked blockers | Lock_manager.Deadlock blockers ->
                if model_blockers = [] then ok := false
                else if List.sort compare blockers <> model_blockers then ok := false))
        ops;
      !ok)

(* ---------- op-delta wire format over generated transactions ---------- *)

let gen_txn =
  QCheck2.Gen.(
    let gen_stmt =
      oneof
        [
          map2
            (fun first size -> List.hd (Workload.insert_parts_txn ~first_id:first ~size:1 ~day:size ()))
            (int_range 1 100000) (int_range 0 20000);
          map2 (fun f s -> Workload.update_parts_stmt ~first_id:f ~size:s) (int_range 1 1000)
            (int_range 1 1000);
          map2 (fun f s -> Workload.delete_parts_stmt ~first_id:f ~size:s) (int_range 1 1000)
            (int_range 1 1000);
        ]
    in
    pair (int_range 0 1_000_000) (list_size (int_range 1 8) gen_stmt))

let prop_opdelta_wire_roundtrip =
  QCheck2.Test.make ~name:"op-delta wire roundtrip (generated txns)" ~count:300 gen_txn
    (fun (txn_id, stmts) ->
      let od = Op_delta.make ~txn_id stmts in
      match Op_delta.decode_line (Op_delta.encode_line od) with
      | Error _ -> false
      | Ok od' ->
        od'.Op_delta.txn_id = txn_id
        && List.length od'.Op_delta.ops = List.length stmts
        && List.for_all2
             (fun stmt (op : Op_delta.op) -> Ast.equal stmt op.Op_delta.stmt)
             stmts od'.Op_delta.ops)

let gen_images =
  QCheck2.Gen.(
    list_size (int_range 1 5)
      (map2
         (fun id day -> Workload.gen_part (Dw_util.Prng.create ~seed:id) ~id ~day)
         (int_range 1 1000) (int_range 0 20000)))

let prop_opdelta_wire_with_images =
  QCheck2.Test.make ~name:"op-delta wire roundtrip with before images" ~count:200
    QCheck2.Gen.(pair gen_images (pair (int_range 1 500) (int_range 1 500)))
    (fun (images, (first_id, size)) ->
      let od =
        Op_delta.with_before_images ~txn_id:9
          [ (Workload.delete_parts_stmt ~first_id ~size, images) ]
      in
      let schema_of name = if name = "parts" then Some Workload.parts_schema else None in
      match Op_delta.decode_line ~schema_of (Op_delta.encode_line ~schema_of od) with
      | Error _ -> false
      | Ok od' -> (
          match od'.Op_delta.ops with
          | [ op ] ->
            List.length op.Op_delta.before_images = List.length images
            && List.for_all2 Tuple.equal images op.Op_delta.before_images
          | _ -> false))

(* ---------- WAL stream round-trip ---------- *)

let gen_records =
  QCheck2.Gen.(
    let bytes_gen = map Bytes.of_string (string_size ~gen:printable (int_range 0 50)) in
    let rid = map2 (fun p s -> { Heap_file.page = p; slot = s }) (int_range 0 100) (int_range 0 60) in
    list_size (int_range 1 60)
      (oneof
         [
           map (fun tx -> { Log_record.tx; body = Log_record.Begin }) (int_range 1 50);
           map (fun tx -> { Log_record.tx; body = Log_record.Commit }) (int_range 1 50);
           map (fun tx -> { Log_record.tx; body = Log_record.Abort }) (int_range 1 50);
           map3
             (fun tx rid after ->
               { Log_record.tx; body = Log_record.Insert { table = "t"; rid; after } })
             (int_range 1 50) rid bytes_gen;
           map3
             (fun tx rid before ->
               { Log_record.tx; body = Log_record.Delete { table = "t"; rid; before } })
             (int_range 1 50) rid bytes_gen;
         ]))

let record_equal (a : Log_record.t) (b : Log_record.t) =
  a.Log_record.tx = b.Log_record.tx
  &&
  match a.Log_record.body, b.Log_record.body with
  | Log_record.Begin, Log_record.Begin
  | Log_record.Commit, Log_record.Commit
  | Log_record.Abort, Log_record.Abort ->
    true
  | Log_record.Insert x, Log_record.Insert y ->
    x.table = y.table && x.rid = y.rid && Bytes.equal x.after y.after
  | Log_record.Delete x, Log_record.Delete y ->
    x.table = y.table && x.rid = y.rid && Bytes.equal x.before y.before
  | _, _ -> false

let prop_wal_stream_roundtrip =
  QCheck2.Test.make ~name:"wal stream roundtrip (with checkpoints interleaved)" ~count:150
    QCheck2.Gen.(pair gen_records (int_range 0 3))
    (fun (records, checkpoints_every) ->
      let vfs = Vfs.in_memory () in
      let wal = Wal.create vfs ~name:"p.wal" ~archive:true in
      List.iteri
        (fun i record ->
          ignore (Wal.append wal record : int);
          if checkpoints_every > 0 && i mod (checkpoints_every * 7) = 6 then
            ignore (Wal.checkpoint wal ~active:[] : int))
        records;
      let got = ref [] in
      Wal.iter_all wal (fun _ r ->
          match r.Log_record.body with
          | Log_record.Checkpoint _ -> ()
          | _ -> got := r :: !got);
      let got = List.rev !got in
      List.length got = List.length records && List.for_all2 record_equal records got)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_lock_manager_model;
    QCheck_alcotest.to_alcotest prop_opdelta_wire_roundtrip;
    QCheck_alcotest.to_alcotest prop_opdelta_wire_with_images;
    QCheck_alcotest.to_alcotest prop_wal_stream_roundtrip;
  ]
