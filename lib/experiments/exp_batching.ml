(* Experiment T5 — batching ablation across the refresh pipeline.

   The paper's Table 3/4 measure the end-to-end window of one extract →
   transport → integrate cycle; T5 asks how much of that window is
   per-transaction / per-message fixed cost, by sweeping the three
   batching knobs this repo adds:

     a. group-commit WAL: source-side fsyncs per committed transaction
        vs group size (Dw_txn.Group_commit);
     b. transport coalescing: queue fsyncs per message and ship blocks
        per message vs batched enqueue/ack and block packing
        (Persistent_queue.enqueue_batch, File_ship.ship_messages);
     c. micro-batched refresh: warehouse maintenance window for the same
        op-delta stream applied one source transaction per warehouse
        transaction (the Table 3/4 baseline) vs runs of consecutive
        source transactions per warehouse transaction
        (Warehouse.integrate_op_deltas_batched).

   Deterministic results (counter ratios) land in t5.* gauges for the
   JSON schema check; wall-clock windows are reported but only their
   presence is validated. *)

module Vfs = Dw_storage.Vfs
module Db = Dw_engine.Db
module Metrics = Dw_util.Metrics
module Value = Dw_relation.Value
module Expr = Dw_relation.Expr
module Workload = Dw_workload.Workload
module Op_delta = Dw_core.Op_delta
module Spj_view = Dw_core.Spj_view
module Warehouse = Dw_warehouse.Warehouse
module Persistent_queue = Dw_transport.Persistent_queue
module File_ship = Dw_transport.File_ship
module Prng = Dw_util.Prng
open Bench_support

let group_sizes = [ 1; 2; 4; 8; 16 ]
let batch_sizes = [ 1; 4; 8; 16 ]

(* ---------- part a: group-commit WAL ---------- *)

let run_group_commit ~scale =
  section "T5a: group commit - WAL fsyncs per committed source transaction";
  let txns = if is_quick () then 60 else 400 * scale in
  let header = [ "group size"; "txns"; "wal fsyncs"; "fsync/txn"; "mean group" ] in
  let rows =
    List.map
      (fun g ->
        let db = fresh_source ~rows:0 () in
        Db.set_sync_mode db (`Group g);
        let m = Db.metrics db in
        let fsyncs0 = Metrics.observed_count m "wal.fsync" in
        let day = Db.current_day db in
        for i = 0 to txns - 1 do
          Db.with_txn db (fun txn ->
              List.iter
                (fun stmt -> ignore (Db.exec db txn stmt : Db.exec_result))
                (Workload.insert_parts_txn ~first_id:(i + 1) ~size:1 ~day ()))
        done;
        (* durability barrier: close the last (possibly partial) group so
           every mode has made all [txns] commits durable *)
        Db.sync db;
        let fsyncs = Metrics.observed_count m "wal.fsync" - fsyncs0 in
        let per_txn = float_of_int fsyncs /. float_of_int txns in
        let mean_group =
          Metrics.observed_sum m "wal.group_size"
          /. float_of_int (max 1 (Metrics.observed_count m "wal.group_size"))
        in
        Metrics.set_gauge m (Printf.sprintf "t5.fsync_per_txn_g%d" g) per_txn;
        [
          string_of_int g; string_of_int txns; string_of_int fsyncs;
          Printf.sprintf "%.3f" per_txn; Printf.sprintf "%.1f" mean_group;
        ])
      group_sizes
  in
  print_table ~title:"Group commit (single-row insert transactions)" ~header ~rows;
  print_endline
    "shape check: fsync/txn ~ 1/group - the commit fsync is pure fixed cost, so group \
     commit removes it linearly until the log write itself dominates"

(* ---------- part b: transport coalescing ---------- *)

let t5_payload i =
  (* representative small op-delta line: one UPDATE statement as SQL text *)
  Printf.sprintf "%d\tUPDATE parts SET qty = qty + 1 WHERE part_id = %d;" i (1 + (i mod 997))

let run_transport ~scale =
  section "T5b: transport coalescing - queue fsyncs and ship blocks per message";
  let msgs = if is_quick () then 200 else 1000 * scale in
  let payloads = List.init msgs t5_payload in
  let count_fsyncs vfs = Metrics.get (Vfs.metrics vfs) "vfs.fsyncs" in
  (* per-message path: enqueue+fsync and ack+fsync for every message *)
  let vfs1 = Vfs.in_memory () in
  let q1 = Persistent_queue.open_ vfs1 ~name:"xfer" in
  let f0 = count_fsyncs vfs1 in
  List.iter (Persistent_queue.enqueue q1) payloads;
  let rec drain1 () =
    match Persistent_queue.peek q1 with
    | None -> ()
    | Some _ ->
      Persistent_queue.ack q1;
      drain1 ()
  in
  drain1 ();
  let single_fsyncs = count_fsyncs vfs1 - f0 in
  Persistent_queue.close q1;
  (* coalesced path: batches of 16 in, runs of 64 out *)
  let vfs2 = Vfs.in_memory () in
  let q2 = Persistent_queue.open_ vfs2 ~name:"xfer" in
  let f0 = count_fsyncs vfs2 in
  let rec enqueue_batches = function
    | [] -> ()
    | rest ->
      let batch = List.filteri (fun i _ -> i < 16) rest in
      let rest = List.filteri (fun i _ -> i >= 16) rest in
      Persistent_queue.enqueue_batch q2 batch;
      enqueue_batches rest
  in
  enqueue_batches payloads;
  let rec drain2 () =
    match Persistent_queue.peek_run q2 ~max:64 with
    | [] -> ()
    | run ->
      Persistent_queue.ack_run q2 (List.length run);
      drain2 ()
  in
  drain2 ();
  let batched_fsyncs = count_fsyncs vfs2 - f0 in
  Persistent_queue.close q2;
  (* ship round-trips: one file per message vs packed blocks *)
  let dst = Vfs.in_memory () in
  let block_size = Bench_support.scaled_chunk (64 * 1024) in
  let blocks, shipped_ok =
    match File_ship.ship_messages ~block_size ~dst ~dst_name:"t5.block" payloads with
    | Ok stats -> (stats.File_ship.chunks, true)
    | Error _ -> (0, false)
  in
  let roundtrip_ok =
    shipped_ok
    && (match File_ship.fetch_messages dst ~name:"t5.block" with
        | Ok back -> back = payloads
        | Error _ -> false)
  in
  let m = Vfs.metrics dst in
  let per_msg_single = float_of_int single_fsyncs /. float_of_int msgs in
  let per_msg_batched = float_of_int batched_fsyncs /. float_of_int msgs in
  Metrics.set_gauge m "t5.queue_fsync_per_msg_single" per_msg_single;
  Metrics.set_gauge m "t5.queue_fsync_per_msg_batched" per_msg_batched;
  Metrics.set_gauge m "t5.ship_blocks" (float_of_int blocks);
  Metrics.set_gauge m "t5.ship_msgs" (float_of_int msgs);
  print_table ~title:"Queue round-trip fsyncs (enqueue + ack)"
    ~header:[ "path"; "msgs"; "fsyncs"; "fsync/msg" ]
    ~rows:
      [
        [ "per-message"; string_of_int msgs; string_of_int single_fsyncs;
          Printf.sprintf "%.3f" per_msg_single ];
        [ "batch 16 / run 64"; string_of_int msgs; string_of_int batched_fsyncs;
          Printf.sprintf "%.3f" per_msg_batched ];
      ];
  Printf.printf
    "ship coalescing: %d messages packed into %d block(s) of <= %d B (vs %d per-message \
     round-trips); checksummed round-trip %s\n"
    msgs blocks block_size msgs
    (if roundtrip_ok then "ok" else "FAILED");
  if not roundtrip_ok then failwith "T5b: ship_messages round-trip failed"

(* ---------- part c: micro-batched warehouse refresh ---------- *)

let sp_view =
  Spj_view.Select_project
    {
      name = "cheap_parts";
      table = "parts";
      schema = Workload.parts_schema;
      filter = Some (Expr.Cmp (Expr.Lt, Expr.Col "price", Expr.Lit (Value.Float 500.0)));
      project =
        [
          { Spj_view.out_name = "part_id"; from_side = Spj_view.L; from_col = "part_id" };
          { Spj_view.out_name = "qty"; from_side = Spj_view.L; from_col = "qty" };
        ];
    }

(* the warehouse device gets a per-operation latency so the per-commit
   fixed cost (commit record + fsync) is physically real, as on the
   paper's staging database, instead of an in-memory no-op *)
let mk_wh ~replica_rows ~op_delay =
  let wh =
    Warehouse.create ~pool_pages:2048 ~vfs:(Vfs.in_memory ~op_delay ()) ~name:"dw" ()
  in
  Warehouse.add_replica wh ~table:"parts" ~schema:Workload.parts_schema;
  let rng = Prng.create ~seed:77 in
  Warehouse.load_replica wh ~table:"parts"
    (List.init replica_rows (fun i -> Workload.gen_part rng ~id:(i + 1) ~day:0));
  Warehouse.define_view wh sp_view;
  wh

let run_refresh ~scale =
  section "T5c: refresh window - one txn per source txn vs micro-batched runs";
  let replica_rows = if is_quick () then 800 else 4_000 * scale in
  let n_txns = if is_quick () then 24 else 48 in
  let op_delay = 100e-6 in
  (* the maintenance stream: n_txns UPDATE transactions of 8 rows each,
     ranges staggered across the replica *)
  let ods =
    List.init n_txns (fun i ->
        Op_delta.make ~txn_id:i
          [ Workload.update_parts_stmt ~first_id:(1 + (i * 31 mod (replica_rows - 8))) ~size:8 ])
  in
  let wh_seq = mk_wh ~replica_rows ~op_delay in
  let seq_stats = ref Warehouse.zero_stats in
  let t_seq =
    time_only (fun () -> seq_stats := Warehouse.integrate_op_deltas wh_seq ods)
  in
  let reference = Warehouse.view_rows wh_seq "cheap_parts" in
  let header = [ "max batch"; "wh txns"; "window"; "vs sequential" ] in
  let best = ref (t_seq, !seq_stats) in
  let rows =
    List.map
      (fun b ->
        let wh = mk_wh ~replica_rows ~op_delay in
        let policy = { Warehouse.default_batch_policy with Warehouse.max_batch = b } in
        let stats = ref Warehouse.zero_stats in
        let t =
          time_only (fun () -> stats := Warehouse.integrate_op_deltas_batched ~policy wh ods)
        in
        if Warehouse.view_rows wh "cheap_parts" <> reference then
          failwith "T5c: batched refresh diverged from sequential refresh";
        if b = 16 then best := (t, !stats);
        [
          string_of_int b;
          string_of_int (!stats).Warehouse.txns;
          dur t;
          Printf.sprintf "%.1f%% shorter" (pct_change ~base:t_seq ~other:t);
        ])
      batch_sizes
  in
  let rows =
    [ "1/txn (baseline)"; string_of_int (!seq_stats).Warehouse.txns; dur t_seq; "-" ] :: rows
  in
  print_table
    ~title:
      (Printf.sprintf "%d source txns (8-row updates) into a %d-row warehouse replica"
         n_txns replica_rows)
    ~header ~rows;
  let t_batched, batched_stats = !best in
  let m = Metrics.create () in
  (* a private registry: set_gauge mirrors into the dwbench sink *)
  Metrics.set_gauge m "t5.window_sequential_s" t_seq;
  Metrics.set_gauge m "t5.window_batched_s" t_batched;
  Metrics.set_gauge m "t5.window_speedup" (t_seq /. t_batched);
  Metrics.set_gauge m "t5.txns_sequential" (float_of_int (!seq_stats).Warehouse.txns);
  Metrics.set_gauge m "t5.txns_batched" (float_of_int batched_stats.Warehouse.txns);
  Printf.printf
    "shape check: identical view contents in every mode; batching trades refresh \
     granularity (readers see runs of %d source txns at once) for %.1f%% of the window\n"
    (List.fold_left max 1 batch_sizes)
    (pct_change ~base:t_seq ~other:t_batched)

let run_t5 ~scale =
  run_group_commit ~scale;
  run_transport ~scale;
  run_refresh ~scale
