(* Systematic crash-point sweep (dune alias: @crash).

   Exhaustively enumerates every write/fsync event of a small source-DB
   workload, then sweeps the standard parts workload, the persistent
   queue and the warehouse-refresh flow at stride <= 8.  Any violated
   recovery invariant prints the reproducing event index and fails the
   run. *)

module Cs = Dw_experiments.Crash_sim

let failed = ref false

let check name report =
  Printf.printf "%-22s %5d events  %4d crash points  %d failures\n%!" name
    report.Cs.total_events report.Cs.explored
    (List.length report.Cs.failures);
  List.iter
    (fun (k, msg) ->
      failed := true;
      Printf.printf "    FAIL at event %d: %s\n%!" k msg)
    report.Cs.failures

let () =
  check "db (exhaustive)" (Cs.explore ~spec:Cs.small_db_spec ~stride:1 ());
  check "db (standard)" (Cs.explore ~spec:Cs.default_db_spec ~stride:8 ());
  check "db group-commit (exhaustive)"
    (Cs.explore ~spec:{ Cs.small_db_spec with Cs.group = 3 } ~stride:1 ());
  check "db group-commit (standard)" (Cs.explore ~spec:Cs.grouped_db_spec ~stride:8 ());
  check "queue (exhaustive)" (Cs.explore_queue ~spec:Cs.default_queue_spec ~stride:1 ());
  check "queue batched (exhaustive)"
    (Cs.explore_batched_queue ~spec:Cs.default_batched_queue_spec ~stride:1 ());
  check "refresh (stride 2)" (Cs.explore_refresh ~spec:Cs.default_refresh_spec ~stride:2 ());
  check "refresh batched (stride 2)"
    (Cs.explore_refresh_batched ~spec:Cs.default_refresh_spec ~run:3 ~stride:2 ());
  check "bootstrap (exhaustive)"
    (Dw_experiments.Exp_bootstrap.explore_bootstrap
       ~spec:{ Dw_experiments.Exp_bootstrap.rows = 48; commits = 6; chunk = 8; seed = 5 }
       ~stride:1 ());
  check "bootstrap (standard)"
    (Dw_experiments.Exp_bootstrap.explore_bootstrap ~stride:4 ());
  (match Cs.ship_under_faults ~bytes:(256 * 1024) ~fault_p:0.25 ~seed:123 () with
   | Ok (stats, true) when stats.Dw_transport.File_ship.retries > 0 ->
     Printf.printf "ship under faults: %d bytes, %d retries, byte-identical\n%!"
       stats.Dw_transport.File_ship.bytes stats.Dw_transport.File_ship.retries
   | Ok (stats, true) ->
     Printf.printf "ship under faults: no fault fired (%d chunks) — seed too lucky\n%!"
       stats.Dw_transport.File_ship.chunks
   | Ok (_, false) ->
     failed := true;
     Printf.printf "ship under faults: FAIL — copy not byte-identical\n%!"
   | Error e ->
     failed := true;
     Printf.printf "ship under faults: FAIL — %s\n%!" e);
  if !failed then exit 1
