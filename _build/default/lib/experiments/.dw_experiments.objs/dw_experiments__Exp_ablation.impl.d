lib/experiments/exp_ablation.ml: Array Bench_support Buffer Dw_core Dw_engine Dw_relation Dw_snapshot Dw_storage Dw_util Dw_warehouse Dw_workload Filename List Printf Sys Unix
