lib/core/spj_view.ml: Array Dw_relation List Map Printf
