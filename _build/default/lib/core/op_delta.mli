(** Op-Delta — the paper's contribution (Section 4).

    An Op-Delta captures a source {e transaction} as the ordered list of
    {e operations} (SQL statements) it executed, optionally augmented with
    before images when the warehouse configuration is not self-maintainable
    from the operations alone ({!Self_maintain}).

    Properties the paper leans on, all reflected here:
    - {!size_bytes} of a delete/update Op-Delta is independent of how many
      rows the transaction touched — it is the SQL text length;
    - source transaction boundaries are preserved ([txn_id] + one value
      per transaction), so the warehouse can apply each Op-Delta as its
      own transaction, interleaved with OLAP queries;
    - a wire codec ({!encode_line} / {!decode_line}) for shipping through
      files and queues. *)

module Ast = Dw_sql.Ast
module Tuple = Dw_relation.Tuple
module Schema = Dw_relation.Schema

type op = {
  stmt : Ast.stmt;
  before_images : Tuple.t list;
      (** non-empty only in hybrid mode (partial value delta: the before
          image portion, paper Section 4.1) *)
}

type t = {
  txn_id : int;       (** source transaction identifier *)
  ops : op list;      (** statements in execution order *)
}

val make : txn_id:int -> Ast.stmt list -> t
(** All ops without before images. *)

val with_before_images : txn_id:int -> (Ast.stmt * Tuple.t list) list -> t

val op_size_bytes : op -> schema_of:(string -> Schema.t option) -> int
(** SQL text length plus, in hybrid mode, the before images' record bytes
    ([schema_of] must resolve the statement's table when images are
    present). *)

val size_bytes : ?schema_of:(string -> Schema.t option) -> t -> int

val tables : t -> string list
(** Tables touched, deduplicated, in first-use order. *)

(** {2 Wire format} — one line per transaction:
    [txn_id <TAB> stmt ; stmt ; ...] with statements SQL-printed.  Hybrid
    before-images ride as ASCII records after a [#] separator per op. *)

val encode_line : ?schema_of:(string -> Schema.t option) -> t -> string
val decode_line : ?schema_of:(string -> Schema.t option) -> string -> (t, string) result
(** [schema_of] resolves each statement's table schema and is required to
    encode/decode before images; without it a line with images is an
    error. *)

val pp : Format.formatter -> t -> unit
