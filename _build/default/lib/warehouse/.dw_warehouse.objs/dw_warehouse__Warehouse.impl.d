lib/warehouse/warehouse.ml: Array Dw_core Dw_engine Dw_relation Dw_sql Dw_storage Hashtbl List Printf Unix
