type txid = int
type rid = Dw_storage.Heap_file.rid

type body =
  | Begin
  | Commit
  | Abort
  | Insert of { table : string; rid : rid; after : bytes }
  | Delete of { table : string; rid : rid; before : bytes }
  | Update of { table : string; rid : rid; before : bytes; after : bytes }
  | Checkpoint of txid list

type t = { tx : txid; body : body }

let fnv1a bytes off len =
  let h = ref 0x811c9dc5 in
  for i = off to off + len - 1 do
    h := (!h lxor Char.code (Bytes.get bytes i)) * 0x01000193 land 0xFFFFFFFF
  done;
  !h

(* payload serialisation *)

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let put_i64 buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Buffer.add_bytes buf b

let put_bytes buf b =
  put_u32 buf (Bytes.length b);
  Buffer.add_bytes buf b

let put_string buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let put_rid buf (rid : rid) =
  put_u32 buf rid.Dw_storage.Heap_file.page;
  put_u32 buf rid.Dw_storage.Heap_file.slot

let tag_of_body = function
  | Begin -> 0
  | Commit -> 1
  | Abort -> 2
  | Insert _ -> 3
  | Delete _ -> 4
  | Update _ -> 5
  | Checkpoint _ -> 6

let encode t =
  let payload = Buffer.create 64 in
  Buffer.add_char payload (Char.chr (tag_of_body t.body));
  put_i64 payload t.tx;
  (match t.body with
   | Begin | Commit | Abort -> ()
   | Insert { table; rid; after } ->
     put_string payload table;
     put_rid payload rid;
     put_bytes payload after
   | Delete { table; rid; before } ->
     put_string payload table;
     put_rid payload rid;
     put_bytes payload before
   | Update { table; rid; before; after } ->
     put_string payload table;
     put_rid payload rid;
     put_bytes payload before;
     put_bytes payload after
   | Checkpoint active ->
     put_u32 payload (List.length active);
     List.iter (fun tx -> put_i64 payload tx) active);
  let plen = Buffer.length payload in
  let out = Bytes.create (8 + plen) in
  Bytes.set_int32_le out 0 (Int32.of_int (8 + plen));
  Buffer.blit payload 0 out 8 plen;
  Bytes.set_int32_le out 4 (Int32.of_int (fnv1a out 8 plen));
  out

exception Bad of string

let decode buf ~off =
  try
    let remaining = Bytes.length buf - off in
    if remaining < 8 then raise (Bad "truncated frame header");
    let total = Int32.to_int (Bytes.get_int32_le buf off) in
    if total < 9 || off + total > Bytes.length buf then raise (Bad "bad frame length");
    let csum = Int32.to_int (Bytes.get_int32_le buf (off + 4)) land 0xFFFFFFFF in
    let plen = total - 8 in
    if fnv1a buf (off + 8) plen <> csum then raise (Bad "checksum mismatch");
    let pos = ref (off + 8) in
    let limit = off + total in
    let u8 () =
      if !pos >= limit then raise (Bad "truncated payload");
      let v = Char.code (Bytes.get buf !pos) in
      incr pos;
      v
    in
    let u32 () =
      if !pos + 4 > limit then raise (Bad "truncated payload");
      let v =
        Char.code (Bytes.get buf !pos)
        lor (Char.code (Bytes.get buf (!pos + 1)) lsl 8)
        lor (Char.code (Bytes.get buf (!pos + 2)) lsl 16)
        lor (Char.code (Bytes.get buf (!pos + 3)) lsl 24)
      in
      pos := !pos + 4;
      v
    in
    let i64 () =
      if !pos + 8 > limit then raise (Bad "truncated payload");
      let v = Int64.to_int (Bytes.get_int64_le buf !pos) in
      pos := !pos + 8;
      v
    in
    let bytes_fld () =
      let n = u32 () in
      if !pos + n > limit then raise (Bad "truncated bytes field");
      let b = Bytes.sub buf !pos n in
      pos := !pos + n;
      b
    in
    let string_fld () = Bytes.to_string (bytes_fld ()) in
    let rid_fld () : rid =
      let page = u32 () in
      let slot = u32 () in
      { Dw_storage.Heap_file.page; slot }
    in
    let tag = u8 () in
    let tx = i64 () in
    let body =
      match tag with
      | 0 -> Begin
      | 1 -> Commit
      | 2 -> Abort
      | 3 ->
        let table = string_fld () in
        let rid = rid_fld () in
        let after = bytes_fld () in
        Insert { table; rid; after }
      | 4 ->
        let table = string_fld () in
        let rid = rid_fld () in
        let before = bytes_fld () in
        Delete { table; rid; before }
      | 5 ->
        let table = string_fld () in
        let rid = rid_fld () in
        let before = bytes_fld () in
        let after = bytes_fld () in
        Update { table; rid; before; after }
      | 6 ->
        let n = u32 () in
        let active = List.init n (fun _ -> i64 ()) in
        Checkpoint active
      | n -> raise (Bad (Printf.sprintf "unknown tag %d" n))
    in
    Ok ({ tx; body }, off + total)
  with Bad msg -> Error msg

let table_of t =
  match t.body with
  | Insert { table; _ } | Delete { table; _ } | Update { table; _ } -> Some table
  | Begin | Commit | Abort | Checkpoint _ -> None

let pp ppf t =
  let rid_str (r : rid) = Dw_storage.Heap_file.rid_to_string r in
  match t.body with
  | Begin -> Format.fprintf ppf "BEGIN tx=%d" t.tx
  | Commit -> Format.fprintf ppf "COMMIT tx=%d" t.tx
  | Abort -> Format.fprintf ppf "ABORT tx=%d" t.tx
  | Insert { table; rid; after } ->
    Format.fprintf ppf "INSERT tx=%d %s%s (%dB)" t.tx table (rid_str rid) (Bytes.length after)
  | Delete { table; rid; before } ->
    Format.fprintf ppf "DELETE tx=%d %s%s (%dB)" t.tx table (rid_str rid) (Bytes.length before)
  | Update { table; rid; before; after } ->
    Format.fprintf ppf "UPDATE tx=%d %s%s (%d->%dB)" t.tx table (rid_str rid)
      (Bytes.length before) (Bytes.length after)
  | Checkpoint active ->
    Format.fprintf ppf "CHECKPOINT active=[%s]"
      (String.concat ";" (List.map string_of_int active))
