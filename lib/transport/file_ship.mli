(** File shipping between a source system and the warehouse/staging area
    (the paper's "ftp" transport option).

    Copies a file across {!Dw_storage.Vfs.t} instances in bounded chunks,
    counting bytes.  An optional per-chunk latency cost feeds the
    simulated clock when transport time matters to an experiment.

    Transient destination faults ({!Dw_storage.Vfs.Fault.Transient} from
    an attached fault plan, standing in for a flaky network or device) are
    retried with bounded exponential backoff; chunk writes are idempotent
    (fixed offsets), so a retried transfer still produces byte-identical
    output.  Retries are counted in the destination registry as
    [retry.ship] and reported in {!stats}. *)

module Vfs = Dw_storage.Vfs

type stats = {
  bytes : int;
  chunks : int;
  retries : int;  (** transient faults absorbed by retry *)
}

val ship :
  ?chunk_size:int ->   (* default 64 KiB *)
  ?max_retries:int ->  (* per-operation retry budget, default 8 *)
  ?backoff_s:float ->  (* base backoff (doubles per retry), default 0 = no sleep *)
  src:Vfs.t ->
  src_name:string ->
  dst:Vfs.t ->
  dst_name:string ->
  unit ->
  (stats, string) result
(** Overwrites [dst_name].  [Error _] if the source is missing or a
    transient fault persists through the whole retry budget. *)
