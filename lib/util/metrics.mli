(** Instrumentation registry: counters, gauges, latency histograms,
    scoped timers and trace spans.

    A {!t} is a registry of named metrics.  The storage layer counts page
    reads/writes and bytes moved; hot paths (Vfs I/O, buffer-pool misses,
    WAL fsyncs, lock waits, queue and transport operations, warehouse
    refreshes) additionally record latency distributions, and benches
    snapshot a registry before and after a measured region and report the
    difference, which explains the shape of the wall-clock results.

    {b Metric taxonomy} (see DESIGN.md §9 for naming conventions):
    - {e counters}: monotonically increasing ints ([incr]/[add]);
    - {e gauges}: last-write-wins floats ([set_gauge]);
    - {e histograms}: log-bucketed latency/size distributions ([observe],
      [time], percentile queries);
    - {e spans}: named, nested timed regions with counter deltas
      ([with_span]), for decomposing e.g. a warehouse refresh into
      extract → transport → load → apply segments.

    Timers and spans read a pluggable {!clock}; substitute a
    {!Sim_clock.t} ({!use_sim_clock}) for deterministic tests.

    A metric name denotes one kind; using it as another raises
    [Invalid_argument].

    {b Domain-safety}: every registry operation (mutation, percentile
    fold, reset, span bookkeeping) is serialised by a per-registry
    mutex, so concurrent domains may share one registry; the recording
    sink is atomic and scoped ({!with_sink}).  The clock setters are the
    exception: install clocks before going parallel. *)

type t

type clock = unit -> float
(** Seconds; only differences are meaningful.  The default is
    [Unix.gettimeofday]. *)

val create : unit -> t

val set_clock : t -> clock -> unit

val use_sim_clock : t -> Sim_clock.t -> unit
(** Drive timers/spans from a logical clock: one tick = one second. *)

val now : t -> float
(** The registry clock's current reading. *)

(** {2 Counters} *)

val incr : t -> string -> unit
(** [incr t name] adds 1 to counter [name], creating it at 0 if needed. *)

val add : t -> string -> int -> unit
(** [add t name n] adds [n] to counter [name]. *)

val get : t -> string -> int
(** [get t name] is the counter value, 0 if never touched. *)

val snapshot : t -> (string * int) list
(** All counters, sorted by name (gauges/histograms are not included). *)

val diff : before:(string * int) list -> after:(string * int) list -> (string * int) list
(** Per-counter difference [after - before], dropping zero entries. *)

(** {2 Gauges} *)

val set_gauge : t -> string -> float -> unit
val gauge : t -> string -> float
(** 0.0 if never set. *)

val gauges : t -> (string * float) list

(** {2 Histograms}

    Log-spaced buckets (8 per doubling, ~4.4% relative quantile error);
    bucket indices are clamped into under/overflow buckets, and exact
    min/max are tracked so percentile results are always within the
    observed range — exact for the empty, one-sample, and overflow
    edges. *)

val observe : t -> string -> float -> unit
(** Record one sample (typically seconds of latency). *)

val observed_count : t -> string -> int
val observed_sum : t -> string -> float

val percentile : t -> string -> float -> float
(** [percentile t name q] for [q] in [0, 1]; [q <= 0] is the minimum,
    [q >= 1] the maximum; 0.0 on an empty or absent histogram. *)

type histogram_summary = {
  count : int;
  sum : float;
  vmin : float;
  vmax : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summary : t -> string -> histogram_summary option
(** [None] if [name] is not a histogram. *)

val histograms : t -> (string * histogram_summary) list

(** {2 Scoped timers} — measure a region into a histogram. *)

type timer

val start_timer : t -> string -> timer
val stop_timer : timer -> float
(** Observes the elapsed time into histogram [name], returns it. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t name f] runs [f], observing its duration even on raise. *)

(** {2 Trace spans} — nested timed regions.  A span's parent is whatever
    span was open on the same registry when it started; finishing records
    (name, parent, start, duration, counter deltas) and observes the
    duration into histogram [name].  [finish_span] is idempotent. *)

type span

type span_record = {
  span_name : string;
  span_parent : string option;
  span_start : float;
  span_duration : float;
  span_deltas : (string * int) list;  (** nonzero counter movement *)
}

val start_span : t -> string -> span
val finish_span : span -> unit
val with_span : t -> string -> (unit -> 'a) -> 'a
(** Balanced open/finish even on raise. *)

val spans : t -> span_record list
(** Completed spans in completion order. *)

val span_depth : t -> int
(** Currently open spans (0 when balanced — property-tested). *)

val clear_spans : t -> unit

(** {2 Reset, rendering, export} *)

val reset : t -> unit
(** Remove every entry and span.  Entries are {e cleared}, not zeroed:
    a later {!snapshot}/{!pp} shows nothing from before the reset. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Json.t
(** [{"counters": {..}, "gauges": {..}, "histograms": {name: {count, sum,
    min, max, p50, p95, p99}}, "spans": [{name, parent, count, total}]}] —
    the per-experiment payload of [dwbench run --json]. *)

(** {2 Recording sink}

    When a sink registry is installed, every counter/gauge/histogram
    mutation on any other registry is mirrored into it, and finished
    spans are appended to it.  The bench harness uses this to capture the
    union of the per-Vfs registries an experiment creates internally.
    Not mirrored recursively (mutating the sink itself is local). *)

val with_sink : t option -> (unit -> 'a) -> 'a
(** [with_sink s f] installs [s] as the sink, runs [f], and restores the
    previously installed sink even when [f] raises — the scoped form
    harnesses should use instead of the raw {!set_sink}, which leaks the
    installation on exception. *)

val set_sink : t option -> unit
(** Replace the process-global sink unconditionally.  Prefer
    {!with_sink}; this remains for REPL-style use. *)

val sink : unit -> t option
