(* Tests for Dw_transport: file shipping across vfs instances, persistent
   queue semantics incl. crash recovery (redelivery of unacked messages). *)

module Vfs = Dw_storage.Vfs
module File_ship = Dw_transport.File_ship
module Persistent_queue = Dw_transport.Persistent_queue

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let write_file vfs name contents =
  let f = Vfs.create vfs name in
  ignore (Vfs.append f (Bytes.of_string contents) : int);
  Vfs.close f

let read_file vfs name =
  let f = Vfs.open_existing vfs name in
  let s = Bytes.to_string (Vfs.read_at f ~off:0 ~len:(Vfs.size f)) in
  Vfs.close f;
  s

let ship_roundtrip () =
  let src = Vfs.in_memory () and dst = Vfs.in_memory () in
  let payload = String.concat "\n" (List.init 1000 (fun i -> Printf.sprintf "line-%d" i)) in
  write_file src "delta.asc" payload;
  (match
     File_ship.ship ~chunk_size:256 ~src ~src_name:"delta.asc" ~dst ~dst_name:"staged.asc" ()
   with
   | Ok stats ->
     check Alcotest.int "bytes" (String.length payload) stats.File_ship.bytes;
     check Alcotest.bool "chunked" true (stats.File_ship.chunks > 1)
   | Error e -> Alcotest.fail e);
  check Alcotest.string "identical" payload (read_file dst "staged.asc")

let ship_missing_source () =
  let src = Vfs.in_memory () and dst = Vfs.in_memory () in
  check Alcotest.bool "missing" true
    (Result.is_error (File_ship.ship ~src ~src_name:"nope" ~dst ~dst_name:"x" ()))

let ship_empty_file () =
  let src = Vfs.in_memory () and dst = Vfs.in_memory () in
  write_file src "empty" "";
  match File_ship.ship ~src ~src_name:"empty" ~dst ~dst_name:"empty2" () with
  | Ok stats -> check Alcotest.int "zero bytes" 0 stats.File_ship.bytes
  | Error e -> Alcotest.fail e

let ship_retries_transient_faults () =
  let src = Vfs.in_memory () and dst = Vfs.in_memory () in
  let payload = String.concat "" (List.init 2000 (fun i -> Printf.sprintf "row-%05d\n" i)) in
  write_file src "delta.asc" payload;
  Vfs.set_fault dst
    (Some (Vfs.Fault.make ~write_fail_p:0.3 ~fsync_fail_p:0.3 ~seed:99 ()));
  (match
     File_ship.ship ~chunk_size:512 ~max_retries:64 ~src ~src_name:"delta.asc" ~dst
       ~dst_name:"staged.asc" ()
   with
   | Ok stats ->
     check Alcotest.int "bytes" (String.length payload) stats.File_ship.bytes;
     check Alcotest.bool "absorbed transient faults" true (stats.File_ship.retries > 0)
   | Error e -> Alcotest.fail e);
  Vfs.set_fault dst None;
  check Alcotest.string "identical despite faults" payload (read_file dst "staged.asc")

let ship_gives_up_past_retry_budget () =
  let src = Vfs.in_memory () and dst = Vfs.in_memory () in
  write_file src "delta.asc" "payload";
  Vfs.set_fault dst (Some (Vfs.Fault.make ~write_fail_p:1.0 ~seed:7 ()));
  check Alcotest.bool "persistent fault reported" true
    (Result.is_error
       (File_ship.ship ~max_retries:3 ~src ~src_name:"delta.asc" ~dst ~dst_name:"x" ()))

let queue_fifo () =
  let vfs = Vfs.in_memory () in
  let q = Persistent_queue.open_ vfs ~name:"dq" in
  Persistent_queue.enqueue q "a";
  Persistent_queue.enqueue q "b";
  Persistent_queue.enqueue q "c";
  check Alcotest.int "pending" 3 (Persistent_queue.pending q);
  check (Alcotest.option Alcotest.string) "peek a" (Some "a") (Persistent_queue.peek q);
  Persistent_queue.ack q;
  check (Alcotest.option Alcotest.string) "peek b" (Some "b") (Persistent_queue.peek q);
  Persistent_queue.ack q;
  Persistent_queue.ack q;
  check (Alcotest.option Alcotest.string) "drained" None (Persistent_queue.peek q);
  check Alcotest.int "pending 0" 0 (Persistent_queue.pending q);
  Persistent_queue.close q

let queue_ack_empty_raises () =
  let vfs = Vfs.in_memory () in
  let q = Persistent_queue.open_ vfs ~name:"dq" in
  (try
     Persistent_queue.ack q;
     Alcotest.fail "expected failure"
   with Invalid_argument _ -> ());
  Persistent_queue.close q

let queue_crash_redelivery () =
  let vfs = Vfs.in_memory () in
  let q = Persistent_queue.open_ vfs ~name:"dq" in
  Persistent_queue.enqueue q "batch1";
  Persistent_queue.enqueue q "batch2";
  ignore (Persistent_queue.peek q : string option);
  Persistent_queue.ack q;
  (* "crash": drop the handle without acking batch2, re-open *)
  ignore (Persistent_queue.peek q : string option);
  Persistent_queue.close q;
  let q2 = Persistent_queue.open_ vfs ~name:"dq" in
  check Alcotest.int "one pending" 1 (Persistent_queue.pending q2);
  check (Alcotest.option Alcotest.string) "batch2 redelivered" (Some "batch2")
    (Persistent_queue.peek q2);
  check Alcotest.int "total" 2 (Persistent_queue.enqueued_total q2);
  Persistent_queue.close q2

let queue_binary_safe () =
  let vfs = Vfs.in_memory () in
  let q = Persistent_queue.open_ vfs ~name:"dq" in
  let payload = String.init 256 Char.chr in
  Persistent_queue.enqueue q payload;
  check (Alcotest.option Alcotest.string) "binary payload" (Some payload)
    (Persistent_queue.peek q);
  Persistent_queue.close q

let queue_survives_torn_tail () =
  let vfs = Vfs.in_memory () in
  let q = Persistent_queue.open_ vfs ~name:"dq" in
  Persistent_queue.enqueue q "ok";
  Persistent_queue.close q;
  (* simulate a torn enqueue *)
  let f = Vfs.open_existing vfs "dq.q" in
  ignore (Vfs.append f (Bytes.of_string "\x10\x00\x00\x00????") : int);
  Vfs.close f;
  let q2 = Persistent_queue.open_ vfs ~name:"dq" in
  check Alcotest.int "clean messages only" 1 (Persistent_queue.pending q2);
  Persistent_queue.close q2

(* regression: the torn tail must be truncated on open, or a later
   enqueue appends after the garbage and is never delivered *)
let queue_enqueue_after_torn_tail () =
  let vfs = Vfs.in_memory () in
  let q = Persistent_queue.open_ vfs ~name:"dq" in
  Persistent_queue.enqueue q "before";
  Persistent_queue.close q;
  let f = Vfs.open_existing vfs "dq.q" in
  ignore (Vfs.append f (Bytes.of_string "\x10\x00\x00\x00????") : int);
  Vfs.close f;
  let q2 = Persistent_queue.open_ vfs ~name:"dq" in
  check Alcotest.bool "torn frame counted" true
    (Dw_util.Metrics.get (Vfs.metrics vfs) "queue.torn_frames" > 0);
  Persistent_queue.enqueue q2 "after";
  Persistent_queue.close q2;
  let q3 = Persistent_queue.open_ vfs ~name:"dq" in
  check Alcotest.int "both reachable" 2 (Persistent_queue.pending q3);
  check (Alcotest.option Alcotest.string) "fifo kept" (Some "before")
    (Persistent_queue.peek q3);
  Persistent_queue.ack q3;
  check (Alcotest.option Alcotest.string) "new message delivered" (Some "after")
    (Persistent_queue.peek q3);
  Persistent_queue.close q3

(* a corrupted or torn sidecar resets the position: redelivery, not loss *)
let queue_corrupt_sidecar_redelivers () =
  let vfs = Vfs.in_memory () in
  let q = Persistent_queue.open_ vfs ~name:"dq" in
  Persistent_queue.enqueue q "m1";
  Persistent_queue.enqueue q "m2";
  ignore (Persistent_queue.peek q : string option);
  Persistent_queue.ack q;
  Persistent_queue.close q;
  (* flip the stored offset without fixing the checksum *)
  let f = Vfs.open_existing vfs "dq.q.off" in
  Vfs.write_at f ~off:0 (Bytes.make 1 '\xFF');
  Vfs.close f;
  let q2 = Persistent_queue.open_ vfs ~name:"dq" in
  check Alcotest.bool "reset counted" true
    (Dw_util.Metrics.get (Vfs.metrics vfs) "queue.offset_resets" > 0);
  check Alcotest.int "acked m1 redelivered rather than m2 lost" 2
    (Persistent_queue.pending q2);
  check (Alcotest.option Alcotest.string) "from the start" (Some "m1")
    (Persistent_queue.peek q2);
  Persistent_queue.close q2

let queue_torn_sidecar_redelivers () =
  let vfs = Vfs.in_memory () in
  let q = Persistent_queue.open_ vfs ~name:"dq" in
  Persistent_queue.enqueue q "m1";
  Persistent_queue.enqueue q "m2";
  ignore (Persistent_queue.peek q : string option);
  Persistent_queue.ack q;
  Persistent_queue.close q;
  (* torn offset write: only 5 of 12 bytes survive *)
  let f = Vfs.open_existing vfs "dq.q.off" in
  Vfs.truncate f 5;
  Vfs.close f;
  let q2 = Persistent_queue.open_ vfs ~name:"dq" in
  check Alcotest.int "conservative reset" 2 (Persistent_queue.pending q2);
  Persistent_queue.close q2

(* end-to-end: op-deltas through the queue *)
let queue_ships_op_deltas () =
  let vfs = Vfs.in_memory () in
  let q = Persistent_queue.open_ vfs ~name:"dq" in
  let ods =
    List.init 5 (fun i ->
        Dw_core.Op_delta.make ~txn_id:i
          [ Dw_workload.Workload.update_parts_stmt ~first_id:i ~size:3 ])
  in
  List.iter (fun od -> Persistent_queue.enqueue q (Dw_core.Op_delta.encode_line od)) ods;
  let rec drain acc =
    match Persistent_queue.peek q with
    | None -> List.rev acc
    | Some line ->
      Persistent_queue.ack q;
      (match Dw_core.Op_delta.decode_line line with
       | Ok od -> drain (od :: acc)
       | Error e -> Alcotest.fail e)
  in
  let received = drain [] in
  check Alcotest.int "all delivered" 5 (List.length received);
  List.iter2
    (fun (a : Dw_core.Op_delta.t) (b : Dw_core.Op_delta.t) ->
      check Alcotest.int "txn ids in order" a.Dw_core.Op_delta.txn_id b.Dw_core.Op_delta.txn_id)
    ods received;
  Persistent_queue.close q

(* ---------- jittered backoff ---------- *)

let ship_backoff_jitter_bounded () =
  let metrics = Dw_util.Metrics.create () in
  let src = Vfs.in_memory () and dst = Vfs.in_memory ~metrics () in
  let payload = String.concat "" (List.init 500 (fun i -> Printf.sprintf "row-%04d\n" i)) in
  write_file src "delta.asc" payload;
  Vfs.set_fault dst (Some (Vfs.Fault.make ~write_fail_p:0.4 ~fsync_fail_p:0.2 ~seed:7 ()));
  let backoff_s = 1e-6 and max_retries = 16 in
  let retries =
    match
      File_ship.ship ~chunk_size:128 ~max_retries ~backoff_s ~jitter_seed:5 ~src
        ~src_name:"delta.asc" ~dst ~dst_name:"staged.asc" ()
    with
    | Ok stats -> stats.File_ship.retries
    | Error e -> Alcotest.fail e
  in
  check Alcotest.bool "faults absorbed" true (retries > 0);
  check Alcotest.string "identical despite retries" payload (read_file dst "staged.asc");
  (* every pause was observed, inside the equal-jitter envelope:
     [base/2, base] with base = backoff_s * 2^attempt *)
  match Dw_util.Metrics.summary metrics "ship.backoff" with
  | None -> Alcotest.fail "no ship.backoff histogram"
  | Some s ->
    check Alcotest.int "one observation per retry" retries s.Dw_util.Metrics.count;
    check Alcotest.bool "pause >= base/2" true (s.Dw_util.Metrics.vmin >= backoff_s /. 2.0);
    check Alcotest.bool "pause bounded by the doubled base" true
      (s.Dw_util.Metrics.vmax <= backoff_s *. (2.0 ** float_of_int max_retries))

let ship_backoff_deterministic_under_seed () =
  let run seed =
    let metrics = Dw_util.Metrics.create () in
    let src = Vfs.in_memory () and dst = Vfs.in_memory ~metrics () in
    write_file src "d" (String.make 4096 'x');
    Vfs.set_fault dst (Some (Vfs.Fault.make ~write_fail_p:0.4 ~seed:3 ()));
    match
      File_ship.ship ~chunk_size:256 ~max_retries:32 ~backoff_s:1e-6 ~jitter_seed:seed ~src
        ~src_name:"d" ~dst ~dst_name:"d2" ()
    with
    | Ok stats ->
      (stats.File_ship.retries,
       Option.map
         (fun (s : Dw_util.Metrics.histogram_summary) -> s.Dw_util.Metrics.vmax)
         (Dw_util.Metrics.summary metrics "ship.backoff"))
    | Error e -> Alcotest.fail e
  in
  check Alcotest.bool "same seed, same pauses" true (run 11 = run 11);
  check Alcotest.bool "same fault plan either way" true (fst (run 11) = fst (run 12))

(* ---------- watermark frames ---------- *)

let frame_roundtrip () =
  let module Frame = Dw_transport.Frame in
  let cases =
    [
      Frame.Data "plain delta line";
      Frame.Data "tricky|payload:with\tseparators";
      Frame.Data "";
      Frame.Wm_low { run = "r1abc"; chunk = 0; nonce = 42 };
      Frame.Wm_high { run = "r1abc"; chunk = 17; nonce = 1041 };
    ]
  in
  List.iter
    (fun f ->
      match Frame.decode (Frame.encode f) with
      | Ok f' -> check Alcotest.bool "roundtrip" true (f = f')
      | Error e -> Alcotest.fail e)
    cases

let frame_rejects_malformed () =
  let module Frame = Dw_transport.Frame in
  List.iter
    (fun s -> check Alcotest.bool s true (Result.is_error (Frame.decode s)))
    [ ""; "garbage"; "wl|run|notanint|7"; "wh|run|3"; "w|x|1|2"; "dl:half-tagged" ]

let suite =
  [
    test "ship roundtrip" ship_roundtrip;
    test "ship missing source" ship_missing_source;
    test "ship empty file" ship_empty_file;
    test "ship retries transient faults" ship_retries_transient_faults;
    test "ship gives up past retry budget" ship_gives_up_past_retry_budget;
    test "queue fifo" queue_fifo;
    test "queue ack empty raises" queue_ack_empty_raises;
    test "queue crash redelivery" queue_crash_redelivery;
    test "queue binary safe" queue_binary_safe;
    test "queue survives torn tail" queue_survives_torn_tail;
    test "queue enqueue after torn tail" queue_enqueue_after_torn_tail;
    test "queue corrupt sidecar redelivers" queue_corrupt_sidecar_redelivers;
    test "queue torn sidecar redelivers" queue_torn_sidecar_redelivers;
    test "queue ships op-deltas" queue_ships_op_deltas;
    test "ship backoff jitter bounded" ship_backoff_jitter_bounded;
    test "ship backoff deterministic under seed" ship_backoff_deterministic_under_seed;
    test "frame roundtrip" frame_roundtrip;
    test "frame rejects malformed" frame_rejects_malformed;
  ]
