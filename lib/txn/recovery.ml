module Heap_file = Dw_storage.Heap_file
module Metrics = Dw_util.Metrics

type stats = {
  records_scanned : int;
  winners : int;
  losers : int;
  redone : int;
  undone : int;
}

type tx_state = Active | Committed | Aborted

let run ~wal ~resolve =
  let m = Wal.metrics wal in
  Metrics.with_span m "recovery" @@ fun () ->
  (* analysis *)
  let states : (int, tx_state) Hashtbl.t = Hashtbl.create 32 in
  let scanned = ref 0 in
  Metrics.with_span m "recovery.analysis" (fun () ->
      Wal.iter_all wal (fun _ record ->
          incr scanned;
          match record.Log_record.body with
          | Log_record.Begin -> Hashtbl.replace states record.tx Active
          | Log_record.Commit -> Hashtbl.replace states record.tx Committed
          | Log_record.Abort -> Hashtbl.replace states record.tx Aborted
          | Log_record.Insert _ | Log_record.Delete _ | Log_record.Update _ ->
            if not (Hashtbl.mem states record.tx) then Hashtbl.replace states record.tx Active
          | Log_record.Checkpoint _ -> ()));
  let state tx = match Hashtbl.find_opt states tx with Some s -> s | None -> Active in
  let winners = Hashtbl.fold (fun _ s n -> if s = Committed then n + 1 else n) states 0 in
  let losers =
    Hashtbl.fold (fun _ s n -> if s = Active || s = Aborted then n + 1 else n) states 0
  in
  (* redo committed; remember the highest committed LSN per (table, rid)
     so the undo pass cannot clobber a slot a winner later reused *)
  let redone = ref 0 in
  let committed_touch : (string * Heap_file.rid, int) Hashtbl.t = Hashtbl.create 64 in
  let touch table rid lsn =
    match Hashtbl.find_opt committed_touch (table, rid) with
    | Some l when l >= lsn -> ()
    | Some _ | None -> Hashtbl.replace committed_touch (table, rid) lsn
  in
  Metrics.with_span m "recovery.redo" (fun () ->
      Wal.iter_all wal (fun lsn record ->
          if state record.Log_record.tx = Committed then
            match record.Log_record.body with
            | Log_record.Insert { table; rid; after } ->
              touch table rid lsn;
              (match resolve table with
               | Some heap ->
                 Heap_file.force_at heap rid (Some after);
                 incr redone
               | None -> ())
            | Log_record.Delete { table; rid; _ } ->
              touch table rid lsn;
              (match resolve table with
               | Some heap ->
                 Heap_file.force_at heap rid None;
                 incr redone
               | None -> ())
            | Log_record.Update { table; rid; after; _ } ->
              touch table rid lsn;
              (match resolve table with
               | Some heap ->
                 Heap_file.force_at heap rid (Some after);
                 incr redone
               | None -> ())
            | Log_record.Begin | Log_record.Commit | Log_record.Abort
            | Log_record.Checkpoint _ -> ()));
  (* undo losers, reverse order.  A loser record whose rid was later
     rewritten by a committed transaction is skipped: under strict 2PL
     the winner can only have acquired the rid after the loser's
     rollback completed (e.g. in a previous incarnation, before a second
     crash), so the redone winner image is the correct final state. *)
  let loser_dml = ref [] in
  let undone = ref 0 in
  Metrics.with_span m "recovery.undo" (fun () ->
      Wal.iter_all wal (fun lsn record ->
          match state record.Log_record.tx with
          | Active | Aborted -> (
              match record.Log_record.body with
              | Log_record.Insert _ | Log_record.Delete _ | Log_record.Update _ ->
                loser_dml := (lsn, record) :: !loser_dml
              | Log_record.Begin | Log_record.Commit | Log_record.Abort
              | Log_record.Checkpoint _ ->
                ())
          | Committed -> ());
      let superseded table rid lsn =
        match Hashtbl.find_opt committed_touch (table, rid) with
        | Some winner_lsn -> winner_lsn > lsn
        | None -> false
      in
      List.iter
        (fun (lsn, record) ->
          match record.Log_record.body with
          | Log_record.Insert { table; rid; _ } ->
            (match resolve table with
             | Some heap when not (superseded table rid lsn) ->
               Heap_file.force_at heap rid None;
               incr undone
             | Some _ | None -> ())
          | Log_record.Delete { table; rid; before } ->
            (match resolve table with
             | Some heap when not (superseded table rid lsn) ->
               Heap_file.force_at heap rid (Some before);
               incr undone
             | Some _ | None -> ())
          | Log_record.Update { table; rid; before; _ } ->
            (match resolve table with
             | Some heap when not (superseded table rid lsn) ->
               Heap_file.force_at heap rid (Some before);
               incr undone
             | Some _ | None -> ())
          | Log_record.Begin | Log_record.Commit | Log_record.Abort | Log_record.Checkpoint _ ->
            ())
        !loser_dml);
  { records_scanned = !scanned; winners; losers; redone = !redone; undone = !undone }

let pp_stats ppf s =
  Format.fprintf ppf "scanned=%d winners=%d losers=%d redone=%d undone=%d" s.records_scanned
    s.winners s.losers s.redone s.undone
