lib/storage/buffer_pool.mli: Vfs
