(** Time-stamp based delta extraction (paper Section 3, method 1;
    analysed in 3.1.1, measured in Tables 2 and 3).

    [SELECT * FROM t WHERE last_modified > since] — the result is the set
    of rows inserted or updated since the watermark.  Deletes are
    invisible and intermediate states are lost, hence the delta contains
    only {!Delta.Upsert} entries.

    Three output modes, matching the paper's rows:
    - {b file output}: write matching rows to an ASCII file (cheap;
      composes with the DBMS Loader at the warehouse — Table 3 row 1);
    - {b table output}: insert matching rows into a local delta table
      through the transactional path (expensive — Table 2 row 2);
    - {b table output + Export}: additionally run the Export utility on
      the delta table (Table 2 row 3; composes with Import — Table 3
      row 2). *)

module Expr = Dw_relation.Expr
module Db = Dw_engine.Db

type output =
  | To_file of string
  | To_table of string
  | To_table_export of { delta_table : string; export_file : string }

type stats = {
  rows : int;
  bytes_out : int;      (** bytes written to the file / export dump *)
  scanned_rows : int;   (** rows visited at the source *)
}

val work_units : table_rows:int -> delta_rows:int -> float
(** Deterministic extraction-work estimate in abstract row-visit units —
    the cost hook {!Dw_etl.Planner} calibrates and compares across
    methods.  A timestamp extraction scans every source row (the paper's
    common no-index case) and writes each qualifying row out:
    [table_rows + delta_rows]. *)

val extract :
  ?via:[ `Scan | `Ts_index ] ->  (* default `Scan: the paper's common case *)
  ?restrict:Expr.t ->
  (* extra predicate ANDed with the timestamp condition — the paper's
     "restricting ... deltas during the extraction process" *)
  ?project:string list ->
  (* column subset to extract (must include the key columns) — the
     paper's "sub-setting".  The delta then carries the projected schema. *)
  Db.t ->
  table:string ->
  since:int ->
  output:output ->
  Delta.t * stats
(** The source table must have a timestamp column.  [To_table]/[To_table_export]
    create the delta table (dropping an existing one) with the (projected)
    source schema. *)
