test/test_transport.ml: Alcotest Bytes Char Dw_core Dw_storage Dw_transport Dw_workload List Printf Result String
