(** Write-ahead log manager with segment rotation and archive mode.

    The log is a sequence of {!Log_record.t} framed records spread over
    segment files named [<name>.<base-lsn>].  An LSN is the byte offset in
    the logical log stream.  {!checkpoint} rotates the current segment;
    with [archive:false] pre-checkpoint segments are recycled (deleted),
    with [archive:true] they accumulate — this is the paper's "archiving
    turned on" mode that the log-based delta extractor depends on
    (Section 3, method 4). *)

type t
type lsn = int

val create : Dw_storage.Vfs.t -> name:string -> archive:bool -> t
(** Starts a fresh log (or re-opens one left by a previous run with the
    same name).  On re-open, every adopted segment is scanned and a torn
    tail — a partial record left by a crash mid-append — is truncated back
    to the last whole record, so that subsequent appends never land after
    garbage.  Truncations are counted as [wal.torn_segments] /
    [wal.torn_bytes] in the Vfs metrics registry. *)

val archive_enabled : t -> bool
(** Whether rotated segments are retained (the [archive:true] mode). *)

val metrics : t -> Dw_util.Metrics.t
(** The underlying Vfs registry.  The WAL records [wal.append] and
    [wal.fsync] latency histograms there, besides the torn-tail
    counters. *)

val next_lsn : t -> lsn
(** The LSN the next {!append} will return. *)

val append : t -> Log_record.t -> lsn
(** Returns the LSN the record was placed at.  Does not flush. *)

val flush : t -> unit
(** fsync the current segment (the commit durability point). *)

val checkpoint : t -> active:Log_record.txid list -> lsn
(** Append a checkpoint record, flush, rotate segments; returns the
    checkpoint's LSN.  Without archive mode, fully-checkpointed older
    segments are deleted. *)

val iter_from : t -> lsn -> (lsn -> Log_record.t -> unit) -> unit
(** Replay retained records with LSN >= the argument, in order.  Corrupt
    or torn trailing records terminate iteration (crash semantics) —
    defence in depth; {!create} already truncates torn tails on
    re-open. *)

val iter_all : t -> (lsn -> Log_record.t -> unit) -> unit
(** {!iter_from} from the start of the retained log. *)

val archived_segments : t -> string list
(** File names of rotated segments still on disk, oldest first (empty
    when archiving is off).  These are what gets "shipped" by the
    log-based extractor. *)

val segment_bytes : t -> int
(** Total bytes across retained segments including the current one. *)

val last_checkpoint : t -> lsn option
(** LSN of the most recent checkpoint record, [None] before the first. *)

val prune_archived : t -> upto:lsn -> int
(** Delete archived (closed) segments consisting entirely of records below
    [upto] — the log-retention companion of watermark-driven extraction:
    once a round has shipped everything below its watermark LSN, the
    segments feeding it can be reclaimed.  Returns the number of segments
    deleted.  The current segment is never touched. *)
