(* Documentation lint for the public interfaces, run by `dune build @doc`
   (odoc is not part of the toolchain this repo builds with, so the doc
   alias carries this checker instead).

   For every .mli under the directories given on the command line:

   - the file must open with a module-level ocamldoc comment;
   - every [val] item must have a doc comment attached — either the
     special comment immediately after its signature (the style used
     throughout this repo) or immediately before the [val].

   Exits 1 listing every undocumented item. *)

let errors = ref []
let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      Array.of_list (List.rev acc)
  in
  go []

let is_blank s = String.trim s = ""
let starts_with prefix s = String.length s >= String.length prefix
                           && String.sub s 0 (String.length prefix) = prefix
let trimmed_starts prefix s = starts_with prefix (String.trim s)

(* an "item start" ends the forward search for a val's trailing doc *)
let item_start s =
  let t = String.trim s in
  List.exists (fun p -> starts_with p t) [ "val "; "type "; "module "; "exception "; "end" ]

let has_doc_comment_forward lines i =
  (* scan past the signature: the val is documented if a doc-comment
     opener appears before the next item starts *)
  let n = Array.length lines in
  let rec go j first =
    if j >= n then false
    else
      let t = String.trim lines.(j) in
      if (not first) && item_start lines.(j) then false
      else if
        (* a doc comment on the tail of the signature line itself, or on
           its own line after it *)
        (let rec find_sub k =
           k + 3 <= String.length t
           && (String.sub t k 3 = "(**" || find_sub (k + 1))
         in
         find_sub 0)
      then true
      else go (j + 1) false
  in
  go i true

let has_doc_comment_backward lines i =
  (* the line immediately above ends a comment (a doc directly attached
     before the val; a blank line in between detaches it) *)
  i > 0
  &&
  let t = String.trim lines.(i - 1) in
  let len = String.length t in
  len >= 2 && String.sub t (len - 2) 2 = "*)"

let lint_file path =
  let lines = read_lines path in
  let n = Array.length lines in
  (* module-level doc: first non-blank line opens an ocamldoc comment *)
  let rec first_non_blank i = if i >= n then None else if is_blank lines.(i) then first_non_blank (i + 1) else Some i in
  (match first_non_blank 0 with
   | Some i when trimmed_starts "(**" lines.(i) -> ()
   | Some _ | None -> err "%s: missing module-level doc-comment header" path);
  for i = 0 to n - 1 do
    if trimmed_starts "val " lines.(i) then
      if not (has_doc_comment_forward lines i || has_doc_comment_backward lines i) then
        let name =
          let t = String.trim lines.(i) in
          match String.index_opt t ':' with
          | Some j -> String.trim (String.sub t 4 (j - 4))
          | None -> t
        in
        err "%s:%d: val %s has no doc comment" path (i + 1) name
  done

let rec walk path =
  if Sys.is_directory path then
    Array.iter (fun entry -> walk (Filename.concat path entry)) (Sys.readdir path)
  else if Filename.check_suffix path ".mli" then lint_file path

let () =
  let dirs = List.tl (Array.to_list Sys.argv) in
  if dirs = [] then begin
    prerr_endline "usage: doc_lint DIR ...";
    exit 2
  end;
  List.iter walk dirs;
  match List.rev !errors with
  | [] -> Printf.printf "doc-lint: ok (%s)\n" (String.concat " " dirs)
  | es ->
    List.iter prerr_endline es;
    Printf.eprintf "doc-lint: %d undocumented item(s)\n" (List.length es);
    exit 1
