(** In-memory multi-version store: before-image chains keyed by heap rid,
    giving snapshot-isolation reads without any locks.

    The heap always holds the {e newest} version of a row (possibly an
    uncommitted one — the engine updates in place under 2PL).  Whenever a
    writer modifies a row, it {!note}s the row's {e before image} here;
    at WAL commit the writer's entries are {!publish}ed under the
    transaction's commit sequence number (CSN).  A published entry with
    [superseded_at = c] records "this image was the committed state of
    the row until the transaction that committed at CSN [c] replaced
    it"; an entry whose image is [None] records that the row did not
    exist before [c] (an insert).

    A snapshot reader at CSN [s] resolves a rid by taking the {e oldest}
    chain entry with [superseded_at > s] (pending entries count as
    [+inf]): its image is the row's state as of [s].  If no such entry
    exists, the heap's current tuple is already the right version
    ([`Current]).

    Chains are bounded by {!gc}: an entry superseded at or below the
    oldest active reader's snapshot CSN can never be resolved again
    (future readers start at the current CSN) and is dropped.  The store
    is process-local and deliberately {e not} persisted: crash recovery
    rebuilds committed state in the heaps and restarts the store empty
    ({!clear}), which is always safe because an empty store makes every
    rid resolve to [`Current]. *)

module Tuple = Dw_relation.Tuple
module Heap_file = Dw_storage.Heap_file

type t

val create : unit -> t
(** An empty store. *)

val note :
  t -> tx:int -> table:string -> rid:Heap_file.rid -> image:Tuple.t option -> unit
(** Record the pre-statement image of [(table, rid)] on behalf of writer
    [tx] ([None] = the row did not exist).  Only the {e first} write of a
    transaction to a given rid matters — if [tx] already holds the
    pending head entry of the chain, the call is a no-op, so the chain
    keeps the image from before the transaction. *)

val publish : t -> tx:int -> csn:int -> unit
(** Stamp every pending entry of [tx] with commit sequence number [csn],
    making the images visible to readers with snapshots below [csn].
    Called at WAL commit, so publication is atomic per transaction:
    readers either see all of a transaction's before-images superseded
    or none. *)

val discard : t -> tx:int -> unit
(** Drop every pending entry of [tx] (abort path: the undo log restores
    the heap, so the noted before-images describe nothing). *)

val resolve :
  t -> table:string -> rid:Heap_file.rid -> csn:int ->
  [ `Current | `Image of Tuple.t | `Absent ]
(** The version of [(table, rid)] visible to a snapshot at [csn]:
    [`Current] — the heap's present content (including "row absent") is
    the right answer; [`Image tuple] — the row existed with this content;
    [`Absent] — the row did not exist at [csn]. *)

val iter_table : t -> table:string -> (Heap_file.rid -> unit) -> unit
(** Every rid of [table] that currently has a chain.  Snapshot scans
    union these with the heap's rids so rows deleted (or moved out of an
    index range) after the snapshot are still found. *)

val entries : t -> int
(** Live entries across all chains (pending + published), O(1). *)

val pending_txns : t -> int
(** Writers with at least one unpublished entry. *)

val drop_table : t -> table:string -> unit
(** Remove every chain of [table] (the table itself is being dropped; a
    later table of the same name must not inherit stale versions). *)

val gc : t -> horizon:int -> int
(** Drop published entries with [superseded_at <= horizon] — [horizon]
    is the oldest active snapshot CSN (or the newest committed CSN when
    no reader is active).  Pending entries are never dropped.  Returns
    the number of entries removed. *)

val clear : t -> unit
(** Empty the store (crash recovery / re-attach). *)
